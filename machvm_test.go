package machvm_test

// Public-API tests: everything a downstream user does goes through the
// machvm facade, so these tests double as documentation of the supported
// surface.

import (
	"bytes"
	"fmt"
	"testing"

	"machvm"
)

func TestFacadeBootAllArchitectures(t *testing.T) {
	for _, arch := range []machvm.Arch{
		machvm.VAX, machvm.VAX8200, machvm.VAX8650,
		machvm.RTPC, machvm.Sun3, machvm.NS32082, machvm.TLBOnly,
	} {
		sys := machvm.MustNew(arch, machvm.Options{MemoryMB: 4})
		if sys.Arch() != arch {
			t.Fatalf("arch mismatch")
		}
		tk := sys.NewTask("boot")
		th := tk.SpawnThread(sys.CPU(0))
		addr, err := tk.Map.Allocate(0, 32<<10, true)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if err := th.Write(addr, []byte("portable")); err != nil {
			t.Fatalf("%v write: %v", arch, err)
		}
		b := make([]byte, 8)
		if err := th.Read(addr, b); err != nil {
			t.Fatalf("%v read: %v", arch, err)
		}
		if string(b) != "portable" {
			t.Fatalf("%v: got %q", arch, b)
		}
		if sys.VirtualTime() == 0 {
			t.Fatalf("%v: virtual clock never advanced", arch)
		}
		st := sys.Statistics()
		if st.Faults == 0 || st.ZeroFillFaults == 0 {
			t.Fatalf("%v: statistics empty: %+v", arch, st)
		}
		tk.Destroy()
	}
}

func TestFacadeMapFile(t *testing.T) {
	sys := machvm.MustNew(machvm.VAX8200, machvm.Options{MemoryMB: 8})
	content := bytes.Repeat([]byte("mapped file content "), 500)
	if _, err := sys.FS().Create("doc.txt", content); err != nil {
		t.Fatal(err)
	}
	tk := sys.NewTask("reader")
	defer tk.Destroy()
	th := tk.SpawnThread(sys.CPU(0))
	addr, size, err := sys.MapFile(tk, "doc.txt", machvm.ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if size < uint64(len(content)) {
		t.Fatalf("mapped size %d < content %d", size, len(content))
	}
	got := make([]byte, len(content))
	if err := th.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("mapped file content mismatch")
	}
	// ReadFile path too.
	buf := make([]byte, len(content))
	n, err := sys.ReadFile(sys.CPU(0), tk, "doc.txt", buf)
	if err != nil || n != len(content) {
		t.Fatalf("ReadFile = %d, %v", n, err)
	}
	if !bytes.Equal(buf[:n], content) {
		t.Fatal("ReadFile content mismatch")
	}
}

func TestFacadeUserPager(t *testing.T) {
	sys := machvm.MustNew(machvm.TLBOnly, machvm.Options{MemoryMB: 8})
	up := machvm.NewUserPager("facade")
	defer up.Stop()
	up.OnRequest = func(req machvm.DataRequest) {
		data := bytes.Repeat([]byte{0x42}, req.Length)
		req.Provide(data, 0)
	}
	obj := sys.NewUserPagerObject(up, 64<<10, "facade-obj")
	tk := sys.NewTask("client")
	defer tk.Destroy()
	th := tk.SpawnThread(sys.CPU(0))
	addr, err := tk.Map.AllocateWithObject(0, obj.Size(), true, obj, 0,
		machvm.ProtDefault, machvm.ProtAll, machvm.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 4)
	if err := th.Read(addr+8192, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x42 {
		t.Fatalf("user pager data missing: %x", b[0])
	}
}

func TestFacadeOOLTransfer(t *testing.T) {
	sys := machvm.MustNew(machvm.RTPC, machvm.Options{MemoryMB: 8, CPUs: 2})
	src := sys.NewTask("src")
	dst := sys.NewTask("dst")
	defer src.Destroy()
	defer dst.Destroy()
	ths := src.SpawnThread(sys.CPU(0))
	thd := dst.SpawnThread(sys.CPU(1))

	addr, _ := src.Map.Allocate(0, 128<<10, true)
	payload := bytes.Repeat([]byte("ool"), 128<<10/3)
	if err := ths.Write(addr, payload); err != nil {
		t.Fatal(err)
	}
	region, err := sys.MoveOut(src, addr, 128<<10, true)
	if err != nil {
		t.Fatal(err)
	}
	port := machvm.NewPort("xfer")
	if err := port.Send(&machvm.Message{Items: []machvm.Item{{OOL: region}}}); err != nil {
		t.Fatal(err)
	}
	msg, err := port.Receive()
	if err != nil {
		t.Fatal(err)
	}
	at, err := sys.MoveIn(msg.Items[0].OOL, dst)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := thd.Read(at, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted in transfer")
	}
}

func TestFacadeShootdownOption(t *testing.T) {
	for _, s := range []machvm.ShootdownStrategy{machvm.ShootImmediate, machvm.ShootDeferred, machvm.ShootLazy} {
		sys := machvm.MustNew(machvm.NS32082, machvm.Options{MemoryMB: 4, CPUs: 2, Strategy: s})
		if sys.PmapModule().Shootdown().Strategy() != s {
			t.Fatalf("strategy not applied: %v", s)
		}
	}
}

func TestFacadeForkIsolation(t *testing.T) {
	sys := machvm.MustNew(machvm.Sun3, machvm.Options{MemoryMB: 8})
	parent := sys.NewTask("p")
	defer parent.Destroy()
	th := parent.SpawnThread(sys.CPU(0))
	addr, _ := parent.Map.Allocate(0, 64<<10, true)
	if err := th.Write(addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
	child := parent.Fork("c")
	defer child.Destroy()
	thc := child.SpawnThread(sys.CPU(0))
	if err := thc.Write(addr, []byte{2}); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if err := th.Read(addr, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 {
		t.Fatal("fork isolation broken through the facade")
	}
}

// ExampleNew demonstrates the basic public API: boot a machine, make a
// task, allocate and touch memory, fork.
func ExampleNew() {
	sys := machvm.MustNew(machvm.VAX, machvm.Options{MemoryMB: 4})
	tk := sys.NewTask("example")
	th := tk.SpawnThread(sys.CPU(0))

	addr, _ := tk.Map.Allocate(0, 32<<10, true)
	_ = th.Write(addr, []byte("machine independent"))

	child := tk.Fork("child")
	cth := child.SpawnThread(sys.CPU(0))
	buf := make([]byte, 19)
	_ = cth.Read(addr, buf)
	fmt.Println(string(buf))
	// Output: machine independent
}

// ExampleSystem_MoveOut shows a whole region moving between tasks in one
// message with no physical copy.
func ExampleSystem_MoveOut() {
	sys := machvm.MustNew(machvm.Sun3, machvm.Options{MemoryMB: 8})
	src := sys.NewTask("src")
	dst := sys.NewTask("dst")
	ths := src.SpawnThread(sys.CPU(0))

	addr, _ := src.Map.Allocate(0, 64<<10, true)
	_ = ths.Write(addr, []byte("bulk payload"))

	region, _ := sys.MoveOut(src, addr, 64<<10, true)
	at, _ := sys.MoveIn(region, dst)

	thd := dst.SpawnThread(sys.CPU(0))
	buf := make([]byte, 12)
	_ = thd.Read(at, buf)
	fmt.Println(string(buf))
	// Output: bulk payload
}
