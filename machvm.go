// Package machvm is a working reproduction of the Mach virtual memory
// system from Rashid et al., "Machine-Independent Virtual Memory
// Management for Paged Uniprocessor and Multiprocessor Architectures"
// (ASPLOS 1987), built as a Go library over a simulated hardware
// substrate.
//
// It provides the paper's five abstractions — tasks, threads, ports,
// messages and memory objects — on top of the four machine-independent VM
// structures (resident page table, address maps, memory objects with
// shadow chains, and the pmap interface) with five machine-dependent pmap
// modules: VAX, IBM RT PC (inverted page table), SUN 3 (segments and 8
// contexts), NS32082 (Encore MultiMax / Sequent Balance) and an RP3-style
// TLB-only machine.
//
// Quick start:
//
//	sys, err := machvm.New(machvm.VAX, machvm.Options{MemoryMB: 8})
//	if err != nil {
//		log.Fatal(err)
//	}
//	tk := sys.NewTask("init")
//	th := tk.SpawnThread(sys.CPU(0))
//	addr, _ := tk.Map.Allocate(0, 64<<10, true)
//	_ = th.Write(addr, []byte("hello, mach"))
//
// (MustNew panics instead of returning the error, for examples and tests.)
//
// The kernel↔pager boundary is context-aware and error-returning: every
// DataRequest/DataWrite is bounded by a configurable deadline with retries
// (PagerPolicy, Options.Pager), concurrent faults on one page share a
// single pager conversation, and a pager that hangs or fails surfaces
// ErrPagerTimeout through the fault — or degrades to zero-fill or the
// default pager, per Object.SetPagerFallback. Thread.ReadContext/
// WriteContext let a caller cancel an access stuck behind a slow pager.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package machvm

import (
	"fmt"
	"io"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/ipc"
	"machvm/internal/measure"
	"machvm/internal/pager"
	"machvm/internal/pager/netpager"
	"machvm/internal/pager/ztier"
	"machvm/internal/pmap"
	"machvm/internal/replay"
	"machvm/internal/task"
	"machvm/internal/trace"
	"machvm/internal/unixfs"
	"machvm/internal/vmtypes"
	"machvm/internal/workload"
)

// Re-exported primitive types: addresses, protections, inheritance.
type (
	// VA is a virtual address.
	VA = vmtypes.VA
	// PA is a physical address.
	PA = vmtypes.PA
	// PFN is a hardware page frame number.
	PFN = vmtypes.PFN
	// Prot is a protection code (read/write/execute).
	Prot = vmtypes.Prot
	// Inherit is a fork-inheritance attribute.
	Inherit = vmtypes.Inherit
)

// Protection and inheritance values.
const (
	ProtNone    = vmtypes.ProtNone
	ProtRead    = vmtypes.ProtRead
	ProtWrite   = vmtypes.ProtWrite
	ProtExecute = vmtypes.ProtExecute
	ProtDefault = vmtypes.ProtDefault
	ProtAll     = vmtypes.ProtAll

	InheritShared = vmtypes.InheritShared
	InheritCopy   = vmtypes.InheritCopy
	InheritNone   = vmtypes.InheritNone
)

// Re-exported system objects. Their methods are documented in the
// underlying packages; the facade exists so a user of the library needs
// only this import.
type (
	// Kernel is the machine-independent VM layer.
	Kernel = core.Kernel
	// Map is an address map (or sharing map).
	Map = core.Map
	// MapEntry is one address map entry.
	MapEntry = core.MapEntry
	// Object is a memory object.
	Object = core.Object
	// Pager is the kernel-side memory manager interface.
	Pager = core.Pager
	// PagerPolicy bounds every kernel→pager conversation (deadline,
	// retries, backoff).
	PagerPolicy = core.PagerPolicy
	// PagerFallback selects an object's degradation policy on pager
	// failure.
	PagerFallback = core.PagerFallback
	// FlakyPager wraps a Pager with injectable delays, drops, errors and
	// short reads (fault injection for robustness testing).
	FlakyPager = pager.FlakyPager
	// Statistics is the vm_statistics snapshot.
	Statistics = core.Statistics
	// RegionInfo describes one region (vm_regions).
	RegionInfo = core.RegionInfo

	// Task is an execution environment; Thread a unit of CPU use.
	Task = task.Task
	// Thread is the basic unit of CPU utilization.
	Thread = task.Thread

	// Port is a protected message queue; Message a typed message.
	Port = ipc.Port
	// Message is a typed collection of data items.
	Message = ipc.Message
	// Item is one typed message datum.
	Item = ipc.Item
	// OOLRegion is out-of-line message memory.
	OOLRegion = ipc.OOLRegion

	// UserPager is a user-state memory manager (external pager).
	UserPager = pager.UserPager
	// DataRequest is one fault forwarded to a user pager.
	DataRequest = pager.DataRequest
	// InodePager backs memory objects with files.
	InodePager = pager.InodePager

	// Machine is the simulated hardware.
	Machine = hw.Machine
	// CPU is one simulated processor.
	CPU = hw.CPU
	// CostModel is a per-architecture virtual-time cost model.
	CostModel = hw.CostModel

	// FS is the simulated filesystem; Inode one file.
	FS = unixfs.FS
	// Inode is one simulated file.
	Inode = unixfs.Inode

	// PmapModule is the machine-dependent module interface (Table 3-3).
	PmapModule = pmap.Module
	// Pmap is one task's physical map.
	Pmap = pmap.Map

	// CompressedTier is a zswap-style compressed in-memory paging tier
	// interposed in front of a slower backing pager.
	CompressedTier = ztier.Tier
	// CompressedTierConfig tunes a CompressedTier (budget, batch sizes).
	CompressedTierConfig = ztier.Config

	// NetPagerClient is a Pager whose storage lives across a connection:
	// pipelined, tag-matched, many requests in flight at once.
	NetPagerClient = netpager.Client
	// NetPagerBackend is the store a netpager server answers from.
	NetPagerBackend = netpager.Backend
	// NetMemBackend is an in-memory NetPagerBackend (a remote memory
	// server).
	NetMemBackend = netpager.MemBackend

	// Tier is a memory object's placement in the paging hierarchy.
	Tier = core.Tier

	// StatsSnapshot is a plain-struct copy of every kernel counter, taken
	// at one instant by Kernel.Stats().Snapshot().
	StatsSnapshot = core.StatsSnapshot

	// SLOReport is the typed service-level snapshot: fault-latency
	// percentiles from the kernel's virtual-clock histogram, pager
	// timeout rate, invariant-violation count, and sustained fault
	// throughput. Produced by System.SLOReport.
	SLOReport = measure.SLOReport
	// SLOThresholds is the checked-in gate configuration (SLO.json);
	// zero-valued limits are not enforced.
	SLOThresholds = measure.SLOThresholds
	// SLOGateResult is the outcome of SLOThresholds.Evaluate: pass/fail
	// plus one line per violated threshold.
	SLOGateResult = measure.GateResult
	// FaultHistogram is the fixed-bucket log-linear latency histogram
	// underlying the SLO percentiles.
	FaultHistogram = measure.Histogram

	// TraceLog collects trace events while recording is enabled.
	TraceLog = trace.Log
	// Trace is a complete recording: world header, event stream, and final
	// clock/stats for end-state verification. Encode/Decode give it a
	// stable text form; replay it with Replay.
	Trace = trace.Trace
	// TraceEvent is one recorded event.
	TraceEvent = trace.Event
	// ReplayResult reports how a replay compared to its recording.
	ReplayResult = replay.Result
)

// Tier placement values: TierAuto lets refault/pageout behaviour decide,
// TierHot pins an object's pages in the fast tier, TierCold bypasses it.
const (
	TierAuto = core.TierAuto
	TierHot  = core.TierHot
	TierCold = core.TierCold
)

// Arch selects a machine architecture.
type Arch int

// The architectures of the paper.
const (
	// VAX boots a MicroVAX II-class machine (512-byte hardware pages,
	// on-demand linear page tables).
	VAX Arch = iota
	// VAX8200 and VAX8650 are faster VAXes (the paper's file-read and
	// compilation machines).
	VAX8200
	VAX8650
	// RTPC boots an IBM RT PC (inverted page table).
	RTPC
	// Sun3 boots a SUN 3/160 (segment maps, 8 contexts, display-memory
	// hole in physical memory).
	Sun3
	// NS32082 boots an Encore MultiMax / Sequent Balance class machine
	// (16MB VA limit, 32MB PA limit, the read-modify-write fault bug).
	NS32082
	// TLBOnly boots an IBM RP3-style machine with no hardware-defined
	// in-memory mapping structure.
	TLBOnly
)

// Pager-boundary errors and degradation policies.
var (
	// ErrPagerTimeout wraps errors from pager conversations that
	// exhausted the configured deadline.
	ErrPagerTimeout = core.ErrPagerTimeout
	// ErrDataUnavailable is a pager's definitive "no data here" answer.
	ErrDataUnavailable = core.ErrDataUnavailable
	// ErrInjected is the error a FlakyPager returns for injected failures.
	ErrInjected = pager.ErrInjected
)

// Degradation policies for Object.SetPagerFallback.
const (
	// FallbackError surfaces the pager error through the fault (default).
	FallbackError = core.FallbackError
	// FallbackZeroFill zero-fills when the pager fails.
	FallbackZeroFill = core.FallbackZeroFill
	// FallbackSwap falls back to the kernel's default pager.
	FallbackSwap = core.FallbackSwap
)

// NewFlakyPager wraps a Pager with injectable failures.
func NewFlakyPager(inner Pager) *FlakyPager { return pager.NewFlakyPager(inner) }

// DefaultPagerPolicy returns the deadline/retry policy used when
// Options.Pager is zero.
func DefaultPagerPolicy() PagerPolicy { return core.DefaultPagerPolicy() }

// ShootdownStrategy selects the multiprocessor TLB consistency strategy
// (§5.2).
type ShootdownStrategy = pmap.Strategy

// The three strategies of §5.2.
const (
	ShootImmediate = pmap.ShootImmediate
	ShootDeferred  = pmap.ShootDeferred
	ShootLazy      = pmap.ShootLazy
)

// Options configure a System.
type Options struct {
	// MemoryMB is physical memory in megabytes (default 8).
	MemoryMB int
	// CPUs is the processor count (default 1).
	CPUs int
	// DiskMB sizes the simulated disk (default 64).
	DiskMB int
	// Strategy selects TLB consistency (default immediate).
	Strategy ShootdownStrategy
	// ObjectCacheSize bounds the cache of unreferenced persistent
	// objects.
	ObjectCacheSize int
	// Pager bounds every kernel→pager conversation; the zero value
	// selects DefaultPagerPolicy.
	Pager PagerPolicy
}

// System is a booted machine running the Mach VM stack.
type System struct {
	arch  Arch
	world *workload.MachWorld
}

// New boots a system of the given architecture. It returns an error for
// unknown architectures or unusable options instead of panicking; MustNew
// keeps the panicking convenience.
func New(arch Arch, opts Options) (*System, error) {
	var wa workload.Arch
	switch arch {
	case VAX:
		wa = workload.ArchUVAX2
	case VAX8200:
		wa = workload.ArchVAX8200
	case VAX8650:
		wa = workload.ArchVAX8650
	case RTPC:
		wa = workload.ArchRTPC
	case Sun3:
		wa = workload.ArchSun3
	case NS32082:
		wa = workload.ArchNS32082
	case TLBOnly:
		wa = workload.ArchTLBOnly
	default:
		return nil, fmt.Errorf("machvm: unknown architecture %d", arch)
	}
	cfg := workload.NewConfig()
	if opts.MemoryMB != 0 {
		cfg.MemoryMB = opts.MemoryMB
	}
	if opts.CPUs != 0 {
		cfg.CPUs = opts.CPUs
	}
	if opts.DiskMB != 0 {
		cfg.DiskMB = opts.DiskMB
	}
	if opts.ObjectCacheSize != 0 {
		cfg.ObjectCacheSize = opts.ObjectCacheSize
	}
	cfg.Strategy = opts.Strategy
	cfg.Pager = opts.Pager
	w, err := workload.BuildMachWorld(wa, cfg)
	if err != nil {
		return nil, err
	}
	return &System{arch: arch, world: w}, nil
}

// MustNew is New, panicking on error.
func MustNew(arch Arch, opts Options) *System {
	s, err := New(arch, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Arch returns the system's architecture.
func (s *System) Arch() Arch { return s.arch }

// Kernel returns the machine-independent VM layer.
func (s *System) Kernel() *Kernel { return s.world.Kernel }

// Machine returns the simulated hardware.
func (s *System) Machine() *Machine { return s.world.Machine }

// CPU returns simulated processor i.
func (s *System) CPU(i int) *CPU { return s.world.Machine.CPU(i) }

// FS returns the simulated filesystem.
func (s *System) FS() *FS { return s.world.FS }

// PmapModule returns the machine-dependent module.
func (s *System) PmapModule() PmapModule { return s.world.Mod }

// NewTask creates a task with an empty address space.
func (s *System) NewTask(name string) *Task { return task.New(s.world.Kernel, name) }

// MapFile maps the named file into the task's address space and returns
// the address (a memory-mapped file through the inode pager).
func (s *System) MapFile(t *Task, name string, prot Prot) (VA, uint64, error) {
	obj, err := s.world.FileObject(name)
	if err != nil {
		return 0, 0, err
	}
	size := obj.Size()
	addr, err := t.Map.AllocateWithObject(0, size, true, obj, 0, prot, ProtAll, InheritCopy, false)
	if err != nil {
		s.world.Kernel.ReleaseObjectRef(obj)
		return 0, 0, err
	}
	return addr, size, nil
}

// ReadFile performs the Mach read path (map, fault through the object
// cache, copy out) into buf, returning the byte count.
func (s *System) ReadFile(cpu *CPU, t *Task, name string, buf []byte) (int, error) {
	return s.world.ReadFileMach(cpu, t.Map, name, buf)
}

// NewUserPagerObject creates a memory object of the given size managed by
// the user pager, ready to be mapped with Task.Map.AllocateWithObject.
func (s *System) NewUserPagerObject(up *UserPager, size uint64, name string) *Object {
	_, obj := pager.NewExternalObject(s.world.Kernel, up.Port, size, name)
	return obj
}

// NewUserPager creates a user-state memory manager with a fresh service
// port and a running server loop.
func NewUserPager(name string) *UserPager { return pager.NewUserPager(name) }

// NewCompressedTier builds a compressed in-memory tier in front of
// backing, wired to this system's kernel statistics and cost model.
// Close it when done (per-object state is purged by object Terminate).
func (s *System) NewCompressedTier(backing Pager, budget int64) *CompressedTier {
	k := s.world.Kernel
	return ztier.New(backing, ztier.Config{
		Budget:   budget,
		PageSize: k.PageSize(),
		Stats:    k.Stats(),
		Machine:  s.world.Machine,
	})
}

// EnableCompressedSwap interposes a compressed tier between the kernel
// and its default (swap) pager: anonymous pageouts compress into RAM and
// only spill to swap when the budget overflows — the tiered-paging
// quickstart. Returns the tier for stats inspection and draining.
func (s *System) EnableCompressedSwap(budget int64) *CompressedTier {
	k := s.world.Kernel
	t := s.NewCompressedTier(k.SwapPager(), budget)
	k.SetSwapPager(t)
	return t
}

// NewNetPagerClient attaches a network pager client to conn; the result
// is a Pager any memory object can be backed by. name may be empty.
func NewNetPagerClient(conn io.ReadWriteCloser, name string) *NetPagerClient {
	return netpager.NewClient(conn, name)
}

// ServeNetPager answers pager requests on conn from backend until the
// connection dies; run it in its own goroutine.
func ServeNetPager(conn io.ReadWriteCloser, backend NetPagerBackend) error {
	return netpager.Serve(conn, backend)
}

// NewNetMemBackend builds an in-memory remote store for ServeNetPager.
func NewNetMemBackend(pageSize uint64) *NetMemBackend {
	return netpager.NewMemBackend(pageSize)
}

// Statistics returns the vm_statistics snapshot.
func (s *System) Statistics() Statistics { return s.world.Kernel.VMStatistics() }

// StatsSnapshot copies every kernel counter at one instant. Prefer this
// over repeated Statistics calls when several counters must be read
// consistently (deltas across a workload step, test assertions).
func (s *System) StatsSnapshot() StatsSnapshot { return s.world.Kernel.Stats().Snapshot() }

// SLOReport assembles the typed service-level snapshot: virtual-clock
// fault-latency percentiles (p50/p90/p99/max/mean), the pager timeout
// rate, the live structural-invariant violation count, and sustained
// fault throughput per virtual second. Everything is derived from the
// virtual clock, so reports are host-independent and comparable across
// runs. Gate one against checked-in thresholds with
// ParseSLOThresholds + Evaluate.
func (s *System) SLOReport() SLOReport { return s.world.Kernel.SLOReport() }

// ParseSLOThresholds reads a gate configuration (the SLO.json schema);
// unknown fields are rejected so typos fail loudly.
func ParseSLOThresholds(data []byte) (SLOThresholds, error) {
	return measure.ParseSLOThresholds(data)
}

// CreateFile creates a file in the simulated filesystem. Unlike writing
// through FS() directly, files created here are recorded in an active
// trace, so a recorded run can be replayed on an empty disk.
func (s *System) CreateFile(name string, data []byte) error {
	return s.world.CreateFile(name, data)
}

// StartTrace begins recording every externally visible kernel event
// (operations, faults, pager conversations, pageout decisions) with
// virtual-clock timestamps. Recording assumes the single-threaded
// deterministic driving discipline described in DESIGN.md §11.
func (s *System) StartTrace() *TraceLog { return s.world.StartTrace() }

// StopTrace ends recording and returns the completed trace, including the
// final virtual clock and stats snapshot for replay verification.
func (s *System) StopTrace() *Trace { return s.world.StopTrace() }

// Replay re-executes a recorded trace against a freshly booted system and
// verifies the event stream, final clock and final stats are bit-identical
// to the recording. The returned result reports any divergence; the error
// is non-nil only when the trace itself is unusable (corrupt, truncated).
func Replay(tr *Trace) (*ReplayResult, error) { return replay.Run(tr) }

// DecodeTrace reads a trace in the text form written by Trace.Encode.
func DecodeTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }

// VirtualTime returns the machine's virtual clock in nanoseconds.
func (s *System) VirtualTime() int64 { return s.world.Machine.Clock.Now() }

// NewPort allocates a message port.
func NewPort(name string) *Port { return ipc.NewPort(name) }

// MoveOut detaches memory into an out-of-line region for a message.
func (s *System) MoveOut(t *Task, addr VA, size uint64, dealloc bool) (*OOLRegion, error) {
	return ipc.MoveOut(s.world.Kernel, t.Map, addr, size, dealloc)
}

// MoveIn maps an out-of-line region into a task.
func (s *System) MoveIn(region *OOLRegion, t *Task) (VA, error) {
	return region.MoveIn(s.world.Kernel, t.Map)
}
