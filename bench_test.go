package machvm_test

// The benchmark harness regenerates the paper's evaluation:
//
//	Table 7-1  — BenchmarkTable71ZeroFill, BenchmarkTable71Fork,
//	             BenchmarkTable71ReadBig, BenchmarkTable71ReadSmall
//	Table 7-2  — BenchmarkTable72Programs, BenchmarkTable72Kernel,
//	             BenchmarkTable72SunCompile
//	§5.1 RT    — BenchmarkRTAliasFaults
//	§5.1 SUN 3 — BenchmarkSun3ContextSteal
//	§5.2       — BenchmarkTLBShootdown
//
// Each benchmark reports the *virtual* time of the operation on the
// simulated machine via ReportMetric (vms/op = virtual milliseconds), next
// to Go's real ns/op for the simulation itself. cmd/benchtables prints the
// same data as paper-style tables.

import (
	"fmt"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/rtpc"
	"machvm/internal/pmap/sun3"
	"machvm/internal/task"
	"machvm/internal/vmtypes"
	"machvm/internal/workload"
)

// table71Archs are the machines of Table 7-1's zero-fill and fork rows.
var table71Archs = []workload.Arch{workload.ArchRTPC, workload.ArchUVAX2, workload.ArchSun3}

func reportVirtual(b *testing.B, totalVirtualNS int64, ops int) {
	b.Helper()
	b.ReportMetric(float64(totalVirtualNS)/float64(ops)/1e6, "vms/op")
}

func BenchmarkTable71ZeroFill(b *testing.B) {
	for _, arch := range table71Archs {
		b.Run("Mach/"+arch.String(), func(b *testing.B) {
			w := workload.MustNewMachWorld(arch, workload.Options{MemoryMB: 8})
			b.ResetTimer()
			var virt int64
			for i := 0; i < b.N; i++ {
				v, err := workload.MachZeroFill(w, 1024, 1)
				if err != nil {
					b.Fatal(err)
				}
				virt += v
			}
			reportVirtual(b, virt, b.N)
		})
		b.Run("UNIX/"+arch.String(), func(b *testing.B) {
			u := workload.NewUnixWorld(arch, workload.Options{MemoryMB: 8})
			b.ResetTimer()
			var virt int64
			for i := 0; i < b.N; i++ {
				v, err := workload.UnixZeroFill(u, 1024, 1)
				if err != nil {
					b.Fatal(err)
				}
				virt += v
			}
			reportVirtual(b, virt, b.N)
		})
	}
}

func BenchmarkTable71Fork(b *testing.B) {
	for _, arch := range table71Archs {
		b.Run("Mach/"+arch.String(), func(b *testing.B) {
			w := workload.MustNewMachWorld(arch, workload.Options{MemoryMB: 8})
			b.ResetTimer()
			var virt int64
			for i := 0; i < b.N; i++ {
				v, err := workload.MachFork(w, 256<<10, 1)
				if err != nil {
					b.Fatal(err)
				}
				virt += v
			}
			reportVirtual(b, virt, b.N)
		})
		b.Run("UNIX/"+arch.String(), func(b *testing.B) {
			u := workload.NewUnixWorld(arch, workload.Options{MemoryMB: 8})
			b.ResetTimer()
			var virt int64
			for i := 0; i < b.N; i++ {
				v, err := workload.UnixFork(u, 256<<10, 1)
				if err != nil {
					b.Fatal(err)
				}
				virt += v
			}
			reportVirtual(b, virt, b.N)
		})
	}
}

func benchFileRead(b *testing.B, size int) {
	b.Run("Mach/VAX 8200", func(b *testing.B) {
		var first, second int64
		for i := 0; i < b.N; i++ {
			w := workload.MustNewMachWorld(workload.ArchVAX8200, workload.Options{MemoryMB: 16, DiskMB: 128})
			r, err := workload.MachFileRead(w, size)
			if err != nil {
				b.Fatal(err)
			}
			first += r.First
			second += r.Second
		}
		b.ReportMetric(float64(first)/float64(b.N)/1e9, "first-vs/op")
		b.ReportMetric(float64(second)/float64(b.N)/1e9, "second-vs/op")
	})
	b.Run("UNIX/VAX 8200", func(b *testing.B) {
		var first, second int64
		for i := 0; i < b.N; i++ {
			u := workload.NewUnixWorld(workload.ArchVAX8200, workload.Options{MemoryMB: 16, DiskMB: 128, NBufs: 400})
			r, err := workload.UnixFileRead(u, size)
			if err != nil {
				b.Fatal(err)
			}
			first += r.First
			second += r.Second
		}
		b.ReportMetric(float64(first)/float64(b.N)/1e9, "first-vs/op")
		b.ReportMetric(float64(second)/float64(b.N)/1e9, "second-vs/op")
	})
}

func BenchmarkTable71ReadBig(b *testing.B)   { benchFileRead(b, 2500<<10) }
func BenchmarkTable71ReadSmall(b *testing.B) { benchFileRead(b, 50<<10) }

func benchCompile(b *testing.B, arch workload.Arch, cfg workload.CompileConfig, nbufs int) {
	b.Run(fmt.Sprintf("Mach/%s/%dbufs", arch, nbufs), func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			w := workload.MustNewMachWorld(arch, workload.Options{MemoryMB: 16, DiskMB: 256})
			v, err := workload.MachCompile(w, cfg)
			if err != nil {
				b.Fatal(err)
			}
			virt += v
		}
		b.ReportMetric(float64(virt)/float64(b.N)/1e9, "vs/op")
	})
	b.Run(fmt.Sprintf("UNIX/%s/%dbufs", arch, nbufs), func(b *testing.B) {
		var virt int64
		for i := 0; i < b.N; i++ {
			u := workload.NewUnixWorld(arch, workload.Options{MemoryMB: 16, DiskMB: 256, NBufs: nbufs})
			v, err := workload.UnixCompile(u, cfg)
			if err != nil {
				b.Fatal(err)
			}
			virt += v
		}
		b.ReportMetric(float64(virt)/float64(b.N)/1e9, "vs/op")
	})
}

func BenchmarkTable72Programs(b *testing.B) {
	cfg := workload.ThirteenPrograms()
	benchCompile(b, workload.ArchVAX8650, cfg, 400)
	benchCompile(b, workload.ArchVAX8650, cfg, 64) // generic configuration
}

func BenchmarkTable72Kernel(b *testing.B) {
	if testing.Short() {
		b.Skip("kernel build is heavy")
	}
	cfg := workload.KernelBuild()
	benchCompile(b, workload.ArchVAX8650, cfg, 400)
	benchCompile(b, workload.ArchVAX8650, cfg, 64)
}

func BenchmarkTable72SunCompile(b *testing.B) {
	benchCompile(b, workload.ArchSun3, workload.ForkTestProgram(), 400)
}

// BenchmarkRTAliasFaults measures §5.1's RT PC behaviour: two tasks
// sharing a page read/write alternate accesses; every access by the other
// task evicts the single inverted-table mapping and refaults.
func BenchmarkRTAliasFaults(b *testing.B) {
	w := workload.MustNewMachWorld(workload.ArchRTPC, workload.Options{MemoryMB: 8, CPUs: 2})
	k := w.Kernel
	parent := task.New(k, "a")
	defer parent.Destroy()
	thA := parent.SpawnThread(w.Machine.CPU(0))
	addr, err := parent.Map.Allocate(0, 8192, true)
	if err != nil {
		b.Fatal(err)
	}
	if err := parent.Map.SetInherit(addr, 8192, vmtypes.InheritShared); err != nil {
		b.Fatal(err)
	}
	if err := thA.Write(addr, []byte{1}); err != nil {
		b.Fatal(err)
	}
	child := parent.Fork("b")
	defer child.Destroy()
	thB := child.SpawnThread(w.Machine.CPU(1))

	mod := w.Mod.(*rtpc.Module)
	start := mod.Stats().AliasReplaces.Load()
	t0 := w.Machine.Clock.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := thA.Touch(addr, true); err != nil {
			b.Fatal(err)
		}
		if err := thB.Touch(addr, true); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	replaces := mod.Stats().AliasReplaces.Load() - start
	b.ReportMetric(float64(replaces)/float64(b.N), "alias-replaces/op")
	b.ReportMetric(float64(w.Machine.Clock.Now()-t0)/float64(b.N)/1e3, "vus/op")
}

// BenchmarkSun3ContextSteal measures §5.1's SUN 3 behaviour: N tasks
// round-robin on one CPU; beyond 8 they compete for contexts and pay
// refault storms.
func BenchmarkSun3ContextSteal(b *testing.B) {
	for _, n := range []int{4, 8, 12, 16} {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			w := workload.MustNewMachWorld(workload.ArchSun3, workload.Options{MemoryMB: 16})
			k := w.Kernel
			cpu := w.Machine.CPU(0)
			mod := w.Mod.(*sun3.Module)

			tasks := make([]*task.Task, n)
			threads := make([]*task.Thread, n)
			addrs := make([]vmtypes.VA, n)
			for i := range tasks {
				tasks[i] = task.New(k, "t")
				threads[i] = tasks[i].SpawnThread(cpu)
				addrs[i], _ = tasks[i].Map.Allocate(0, 64<<10, true)
				if err := threads[i].Write(addrs[i], make([]byte, 64<<10)); err != nil {
					b.Fatal(err)
				}
			}
			steals0 := mod.ContextSteals()
			faults0 := k.Stats().Faults.Load()
			t0 := w.Machine.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range tasks {
					tasks[j].Map.Pmap().Activate(cpu)
					if err := threads[j].Touch(addrs[j], false); err != nil {
						b.Fatal(err)
					}
					if err := threads[j].Touch(addrs[j]+32<<10, false); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(mod.ContextSteals()-steals0)/float64(b.N), "steals/op")
			b.ReportMetric(float64(k.Stats().Faults.Load()-faults0)/float64(b.N), "refaults/op")
			b.ReportMetric(float64(w.Machine.Clock.Now()-t0)/float64(b.N)/1e3, "vus/op")
			for _, tk := range tasks {
				tk.Destroy()
			}
		})
	}
}

// BenchmarkTLBShootdown compares §5.2's three consistency strategies under
// a protection-change storm on a 4-CPU machine.
func BenchmarkTLBShootdown(b *testing.B) {
	for _, strat := range []pmap.Strategy{pmap.ShootImmediate, pmap.ShootDeferred, pmap.ShootLazy} {
		b.Run(strat.String(), func(b *testing.B) {
			w := workload.MustNewMachWorld(workload.ArchNS32082, workload.Options{MemoryMB: 16, CPUs: 4, Strategy: strat})
			k := w.Kernel
			tk := task.New(k, "shared")
			defer tk.Destroy()
			threads := make([]*task.Thread, w.Machine.NumCPUs())
			for i := range threads {
				threads[i] = tk.SpawnThread(w.Machine.CPU(i))
			}
			const size = 256 << 10
			addr, err := tk.Map.Allocate(0, size, true)
			if err != nil {
				b.Fatal(err)
			}
			// Warm all CPUs' TLBs.
			buf := make([]byte, size)
			for _, th := range threads {
				if err := th.Write(addr, buf); err != nil {
					b.Fatal(err)
				}
			}
			ipis0 := w.Machine.IPIsSent()
			t0 := w.Machine.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tk.Map.Protect(addr, size, false, vmtypes.ProtRead); err != nil {
					b.Fatal(err)
				}
				if err := tk.Map.Protect(addr, size, false, vmtypes.ProtDefault); err != nil {
					b.Fatal(err)
				}
				// Everybody touches again (refault under lazy).
				for _, th := range threads {
					if err := th.Touch(addr, true); err != nil {
						b.Fatal(err)
					}
				}
				w.Machine.TickAll()
			}
			b.StopTimer()
			b.ReportMetric(float64(w.Machine.IPIsSent()-ipis0)/float64(b.N), "ipis/op")
			b.ReportMetric(float64(w.Machine.Clock.Now()-t0)/float64(b.N)/1e3, "vus/op")
		})
	}
}

// BenchmarkHW exercises the raw simulation substrate for -benchmem
// visibility into the simulator's own cost.
func BenchmarkHW(b *testing.B) {
	b.Run("TLBLookup", func(b *testing.B) {
		tlb := hw.NewTLB(64)
		tlb.Insert(hw.TLBKey{Space: 1, VPN: 1}, hw.TLBEntry{PFN: 1, Prot: vmtypes.ProtDefault})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tlb.Lookup(hw.TLBKey{Space: 1, VPN: 1})
		}
	})
	b.Run("Fault", func(b *testing.B) {
		w := workload.MustNewMachWorld(workload.ArchVAX8650, workload.Options{MemoryMB: 32})
		k := w.Kernel
		cpu := w.Machine.CPU(0)
		m := k.NewMap()
		defer m.Destroy()
		m.Pmap().Activate(cpu)
		addr, _ := m.Allocate(0, uint64(b.N+1)*k.PageSize(), true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			va := addr + vmtypes.VA(uint64(i)*k.PageSize())
			if err := k.Touch(cpu, m, va, true); err != nil {
				b.Fatal(err)
			}
			if i%1024 == 1023 {
				b.StopTimer()
				// Recycle memory so the bench scales with b.N.
				_ = m.Deallocate(addr, uint64(b.N+1)*k.PageSize())
				addr, _ = m.Allocate(0, uint64(b.N+1)*k.PageSize(), true)
				b.StartTimer()
			}
		}
	})
}
