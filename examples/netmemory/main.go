// netmemory: the §6 integration of loosely-coupled systems — "tasks may
// map into their address spaces references to memory objects which can
// be implemented by pagers anywhere on the network".
//
// This is now a thin demo of the netpager package. The memory server is
// a NetMemBackend served over a pipe (stand in any net.Conn); the client
// node maps a memory object backed by a NetPagerClient and faults the
// server's pages across the wire — pipelined, many requests in flight,
// replies matched back by tag. A compressed tier (ztier) then stacks in
// front of the same connection: refaults that hit the tier finish
// without touching the network at all.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"machvm"
)

const (
	pageSize   = 4096
	regionSize = 512 << 10
	remoteID   = 1 // the first object the client introduces gets wire ID 1
)

func main() {
	// "Node A": the remote memory server. No kernel needed — it is just a
	// store behind the wire protocol.
	backend := machvm.NewNetMemBackend(pageSize)
	for off := 0; off < regionSize; off += pageSize {
		page := make([]byte, pageSize)
		for rec := 0; rec < pageSize; rec += 512 {
			copy(page[rec:], fmt.Sprintf("nodeA-rec-%06d", off+rec))
		}
		backend.Put(remoteID, uint64(off), page)
	}
	cliConn, srvConn := net.Pipe()
	go machvm.ServeNetPager(srvConn, backend)

	// "Node B": an RT PC — a different MMU entirely — mapping node A's
	// memory through the network pager client.
	nodeB := machvm.MustNew(machvm.RTPC, machvm.Options{MemoryMB: 4})
	client := machvm.NewNetPagerClient(cliConn, "nodeA-memory")
	defer client.Close()
	taskB := nodeB.NewTask("netclient")
	defer taskB.Destroy()
	thB := taskB.SpawnThread(nodeB.CPU(0))

	remote := nodeB.Kernel().NewObject(regionSize, client, "remote-memory")
	base, err := taskB.Map.AllocateWithObject(0, regionSize, true, remote, 0,
		machvm.ProtDefault, machvm.ProtAll, machvm.InheritCopy, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node B (%s) mapped %dKB of remote memory at %#x\n",
		nodeB.Machine().Cost.Name, regionSize/1024, base)

	// Copy-on-reference: only what node B touches crosses the network.
	for _, off := range []int{0, 64 << 10, 300 << 10, 511 << 10} {
		want := fmt.Sprintf("nodeA-rec-%06d", off&^511)
		got := make([]byte, len(want))
		if err := thB.Read(base+machvm.VA(off&^511), got); err != nil {
			log.Fatal(err)
		}
		if string(got) != want {
			log.Fatalf("remote read mismatch at %d: %q", off, got)
		}
		fmt.Printf("  remote read at offset %6dKB: %q\n", off/1024, got)
	}
	st := nodeB.Statistics()
	fmt.Printf("network faults: %d pageins, %d pager round trips\n",
		st.Pageins, st.PagerRoundTrips)

	// Write back: node B modifies a record and cleans the range; the
	// mutation lands in node A's store over the same connection.
	if err := thB.Write(base, []byte("nodeB-modified!!")); err != nil {
		log.Fatal(err)
	}
	if err := nodeB.Kernel().CleanObjectRange(remote, 0, pageSize); err != nil {
		log.Fatal(err)
	}
	check, err := client.DataRequest(context.Background(), remote, 0, 16)
	if err != nil || string(check) != "nodeB-modified!!" {
		log.Fatalf("write-back did not reach the server: %q err=%v", check, err)
	}
	fmt.Printf("node A store after node B's write-back: %q\n", check)

	// Stack the compressed tier in front of the connection: cleaned pages
	// compress into local RAM, so refaults hit the tier and never touch
	// the wire unless the budget overflows.
	tier := nodeB.NewCompressedTier(client, 1<<20)
	defer tier.Close()
	tiered := nodeB.Kernel().NewObject(regionSize, tier, "remote-tiered")
	tbase, err := taskB.Map.AllocateWithObject(0, regionSize, true, tiered, 0,
		machvm.ProtDefault, machvm.ProtAll, machvm.InheritCopy, false)
	if err != nil {
		log.Fatal(err)
	}
	for off := 0; off < regionSize; off += pageSize {
		rec := []byte(fmt.Sprintf("nodeB-tier-%06d", off))
		if err := thB.Write(tbase+machvm.VA(off), rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := nodeB.Kernel().CleanObjectRange(tiered, 0, regionSize); err != nil {
		log.Fatal(err)
	}
	nodeB.Kernel().FlushObjectRange(tiered, 0, regionSize)
	got := make([]byte, 16)
	for off := 0; off < regionSize; off += pageSize {
		if err := thB.Read(tbase+machvm.VA(off), got); err != nil {
			log.Fatal(err)
		}
	}
	st = nodeB.Statistics()
	fmt.Printf("tiered refaults: tier hits=%d, chunks sent to the server: %d\n",
		st.ZtierHits, backend.Pages(remoteID+1))
	fmt.Println("one wire protocol, two storage tiers, one memory object — §6 works")
}
