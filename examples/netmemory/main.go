// netmemory: the §6 integration of loosely-coupled systems. Two simulated
// machines ("nodes") of *different architectures* run their own kernels;
// a task on node B maps a memory object whose pager lives on node A, so
// node A's memory is faulted across the "network" page by page — shared
// copy-on-reference, exactly the possibility §6 sketches: "tasks may map
// into their address spaces references to memory objects which can be
// implemented by pagers anywhere on the network".
package main

import (
	"fmt"
	"log"
	"time"

	"machvm"
)

// Network message IDs (a user protocol above MsgUserBase).
const (
	msgFetch = 0x2000 + iota
	msgFetchReply
	msgWriteBack
)

func main() {
	// Node A: a VAX holding the master copy of the data.
	nodeA := machvm.MustNew(machvm.VAX, machvm.Options{MemoryMB: 8})
	server := nodeA.NewTask("memserver")
	defer server.Destroy()
	thA := server.SpawnThread(nodeA.CPU(0))

	const regionSize = 512 << 10
	master, err := server.Map.Allocate(0, regionSize, true)
	if err != nil {
		log.Fatal(err)
	}
	// Fill the master region with recognizable records.
	for off := 0; off < regionSize; off += 512 {
		rec := fmt.Sprintf("nodeA-rec-%06d", off)
		if err := thA.Write(master+machvm.VA(off), []byte(rec)); err != nil {
			log.Fatal(err)
		}
	}

	// The memory server: answers page fetches out of its own task
	// memory and accepts write-backs into it.
	servicePort := machvm.NewPort("netmem-service")
	wbDone := make(chan struct{}, 8)
	go func() {
		for {
			msg, err := servicePort.Receive()
			if err != nil {
				return
			}
			switch msg.ID {
			case msgFetch:
				offset := msg.Items[0].Int
				length := msg.Items[1].Int
				data, err := nodeA.Kernel().VMRead(server.Map, master+machvm.VA(offset), length)
				if err != nil {
					data = nil
				}
				_ = msg.Reply.Send(&machvm.Message{
					ID:    msgFetchReply,
					Items: []machvm.Item{{Tag: 1 /* bytes */, Bytes: data}},
				})
			case msgWriteBack:
				offset := msg.Items[0].Int
				_ = nodeA.Kernel().VMWrite(server.Map, master+machvm.VA(offset), msg.Items[1].Bytes)
				select {
				case wbDone <- struct{}{}:
				default:
				}
			}
		}
	}()

	// Node B: an RT PC — a different MMU entirely — mapping node A's
	// memory through a proxy pager.
	nodeB := machvm.MustNew(machvm.RTPC, machvm.Options{MemoryMB: 4})
	proxy := machvm.NewUserPager("netmem-proxy")
	defer proxy.Stop()
	fetches := 0
	proxy.OnRequest = func(req machvm.DataRequest) {
		fetches++
		reply := machvm.NewPort("fetch-reply")
		defer reply.Destroy()
		err := servicePort.Send(&machvm.Message{
			ID:    msgFetch,
			Items: []machvm.Item{{Int: req.Offset}, {Int: uint64(req.Length)}},
			Reply: reply,
		})
		if err != nil {
			req.Unavailable()
			return
		}
		ans, err := reply.Receive()
		if err != nil || ans.Items[0].Bytes == nil {
			req.Unavailable()
			return
		}
		req.Provide(ans.Items[0].Bytes, 0)
	}
	proxy.OnWrite = func(offset uint64, data []byte) {
		_ = servicePort.Send(&machvm.Message{
			ID:    msgWriteBack,
			Items: []machvm.Item{{Int: offset}, {Bytes: data}},
		})
	}

	remote := nodeB.NewUserPagerObject(proxy, regionSize, "nodeA-memory")
	client := nodeB.NewTask("client")
	defer client.Destroy()
	thB := client.SpawnThread(nodeB.CPU(0))
	base, err := client.Map.AllocateWithObject(0, regionSize, true, remote, 0,
		machvm.ProtDefault, machvm.ProtAll, machvm.InheritCopy, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node B (%s) mapped %dKB of node A (%s) memory at %#x\n",
		nodeB.Machine().Cost.Name, regionSize/1024, nodeA.Machine().Cost.Name, base)

	// Copy-on-reference: only what node B touches crosses the network.
	probe := []int{0, 64 << 10, 300 << 10, 511 << 10}
	for _, off := range probe {
		want := fmt.Sprintf("nodeA-rec-%06d", off&^511)
		got := make([]byte, len(want))
		if err := thB.Read(base+machvm.VA(off&^511), got); err != nil {
			log.Fatal(err)
		}
		if string(got) != want {
			log.Fatalf("remote read mismatch at %d: %q", off, got)
		}
		fmt.Printf("  remote read at offset %6dKB: %q\n", off/1024, got)
	}
	fmt.Printf("pages fetched across the network: %d (of %d in the region)\n",
		fetches, regionSize/int(nodeB.Kernel().PageSize()))

	// Node B modifies a record; memory pressure (or an explicit clean)
	// pushes it home.
	if err := thB.Write(base, []byte("nodeB-modified!!")); err != nil {
		log.Fatal(err)
	}
	nodeB.Kernel().CleanObjectRange(remote, 0, nodeB.Kernel().PageSize())
	// The write-back travels pager -> port -> server; wait for it.
	select {
	case <-wbDone:
	case <-time.After(5 * time.Second):
		log.Fatal("write-back never arrived at node A")
	}
	check := make([]byte, 16)
	if err := thA.Read(master, check); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node A master after node B's write-back: %q\n", check)
	if string(check) != "nodeB-modified!!" {
		log.Fatal("write-back did not reach the master copy")
	}
	fmt.Println("two kernels, two MMUs, one memory object — §6 works")
}
