// Serverworld: the multi-tenant server scenario through the unified
// scenario API. Builds the world with functional options, runs the
// deterministic fork/exec churn on the virtual clock, prints the typed
// SLO report (fault-latency percentiles, pager health, invariant
// verdict), then runs one cell of the fault/failover matrix — a flaky
// external pager under OOM pressure with racy task teardown.
package main

import (
	"context"
	"fmt"
	"log"

	"machvm/internal/workload"
	"machvm/internal/workload/server"
)

func main() {
	// The deterministic side: every number below is virtual-clock
	// derived, so this program prints the same output on any host.
	sc := server.Scenario(server.Config{
		Tenants:        4,
		TasksPerTenant: 12,
	}, workload.WithMemoryMB(8))
	w, err := sc.Build(workload.ArchVAX8650)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	rep, err := w.Run(context.Background())
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Printf("server world: %d tasks on %s, %.3fms virtual\n",
		rep.Ops, rep.Arch, float64(rep.VirtualNS)/1e6)
	fmt.Println(rep.SLO.String())

	// One matrix cell: injected pager failures x memory exhaustion x
	// concurrent teardown. The cell passes when the churn completes with
	// zero structural invariant violations.
	cell := server.Cell{Pager: server.PagerFlaky, OOM: true, TeardownRace: true}
	res := server.RunCell(context.Background(), workload.ArchVAX8650, cell,
		server.MatrixConfig{Tasks: 8})
	fmt.Println()
	fmt.Print(server.Grid([]server.CellResult{res}))
	if !res.Pass {
		log.Fatalf("cell failed: %s", res.Reason)
	}
}
