// forklab: the §3.5 shadow-chain story, live. A process forks repeatedly
// while writing its memory — the pattern that would build an ever-growing
// chain of shadow objects down to the object backing the stack — and the
// kernel's shadow collapse keeps the chain short. The same scenario is run
// on every architecture to show the machine-independent layer behaving
// identically over five very different MMUs.
package main

import (
	"fmt"
	"log"

	"machvm"
)

func main() {
	archs := []struct {
		arch machvm.Arch
		name string
	}{
		{machvm.VAX, "VAX (linear page tables)"},
		{machvm.RTPC, "IBM RT PC (inverted page table)"},
		{machvm.Sun3, "SUN 3 (segments + 8 contexts)"},
		{machvm.NS32082, "NS32082 (MultiMax/Balance)"},
		{machvm.TLBOnly, "RP3-style (TLB only)"},
	}

	fmt.Println("repeated fork+write, 16 generations, per architecture:")
	fmt.Printf("%-34s %10s %10s %10s %12s\n", "architecture", "shadows", "collapsed", "faults", "virt time")
	for _, a := range archs {
		sys := machvm.MustNew(a.arch, machvm.Options{MemoryMB: 8})
		cpu := sys.CPU(0)

		tk := sys.NewTask("gen0")
		th := tk.SpawnThread(cpu)
		addr, err := tk.Map.Allocate(0, 64<<10, true)
		if err != nil {
			log.Fatal(err)
		}
		if err := th.Write(addr, []byte{1}); err != nil {
			log.Fatal(err)
		}

		const generations = 16
		for g := 0; g < generations; g++ {
			child := tk.Fork(fmt.Sprintf("gen%d", g+1))
			// The parent writes (forcing a shadow), then exits.
			if err := th.Write(addr, []byte{byte(g)}); err != nil {
				log.Fatal(err)
			}
			th.Detach()
			tk.Destroy()
			tk = child
			th = tk.SpawnThread(cpu)
			// The child writes too.
			if err := th.Write(addr+4096, []byte{byte(g)}); err != nil {
				log.Fatal(err)
			}
		}
		// The survivor must still see its latest writes.
		b := make([]byte, 1)
		if err := th.Read(addr+4096, b); err != nil {
			log.Fatal(err)
		}
		if b[0] != byte(generations-1) {
			log.Fatalf("%s: data corrupted across generations", a.name)
		}
		st := sys.Statistics()
		fmt.Printf("%-34s %10d %10d %10d %10.2fms\n",
			a.name, st.ShadowsCreated, st.ShadowsCollapsed, st.Faults,
			float64(sys.VirtualTime())/1e6)
		if st.ShadowsCollapsed == 0 {
			log.Fatalf("%s: shadow chains never collapsed", a.name)
		}
		tk.Destroy()
	}
	fmt.Println("\nevery architecture ran the identical machine-independent code;")
	fmt.Println("only the pmap module differed (the paper's whole point).")
}
