// Quickstart: boot a simulated VAX, create a task, exercise the basic VM
// operations of Table 2-1 (allocate, write, protect, copy, deallocate),
// and print vm_statistics.
package main

import (
	"fmt"
	"log"

	"machvm"
)

func main() {
	sys, err := machvm.New(machvm.VAX, machvm.Options{MemoryMB: 8})
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	cpu := sys.CPU(0)

	tk := sys.NewTask("quickstart")
	th := tk.SpawnThread(cpu)

	// vm_allocate: 64KB of zero-filled memory, anywhere.
	addr, err := tk.Map.Allocate(0, 64<<10, true)
	if err != nil {
		log.Fatalf("vm_allocate: %v", err)
	}
	fmt.Printf("allocated 64KB at %#x\n", addr)

	// Touch it: zero-fill faults happen on demand.
	if err := th.Write(addr, []byte("hello, mach")); err != nil {
		log.Fatalf("write: %v", err)
	}
	buf := make([]byte, 11)
	if err := th.Read(addr, buf); err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("read back: %q\n", buf)

	// vm_copy: a virtual (copy-on-write) copy of the region.
	dst, err := tk.Map.Allocate(0, 64<<10, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := tk.Map.Copy(addr, 64<<10, dst); err != nil {
		log.Fatalf("vm_copy: %v", err)
	}
	if err := th.Read(dst, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual copy reads: %q (no page was copied yet)\n", buf)

	// Writing the copy pushes just that page into a shadow object.
	if err := th.Write(dst, []byte("HELLO")); err != nil {
		log.Fatal(err)
	}
	if err := th.Read(addr, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original after writing the copy: %q\n", buf)

	// vm_protect: make the original read-only; writes now fault.
	if err := tk.Map.Protect(addr, 64<<10, false, machvm.ProtRead); err != nil {
		log.Fatalf("vm_protect: %v", err)
	}
	if err := th.Write(addr, []byte("x")); err == nil {
		log.Fatal("write through read-only region unexpectedly succeeded")
	} else {
		fmt.Println("write to protected region correctly faulted")
	}

	// UNIX-style fork: the child is a copy-on-write copy of the parent.
	child := tk.Fork("child")
	thc := child.SpawnThread(cpu)
	if err := thc.Read(dst, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("child sees parent data after fork: %q\n", buf[:5])

	// vm_deallocate and vm_statistics.
	if err := tk.Map.Deallocate(dst, 64<<10); err != nil {
		log.Fatal(err)
	}
	st := sys.Statistics()
	fmt.Printf("\nvm_statistics: faults=%d zero-fill=%d cow=%d free=%d active=%d\n",
		st.Faults, st.ZeroFillFaults, st.CowFaults, st.FreeCount, st.ActiveCount)
	fmt.Printf("virtual time elapsed: %.3fms on %s\n",
		float64(sys.VirtualTime())/1e6, sys.Machine().Cost.Name)

	child.Destroy()
	tk.Destroy()
}
