// extpager: a user-state memory manager (§3.3). A "database" pager task
// serves page faults for a memory object from its own store, sees dirty
// pages come back as pager_data_write when memory pressure forces pageout,
// and serves them again on the next touch — all through the message
// protocol of Tables 3-1/3-2.
package main

import (
	"fmt"
	"log"
	"sync"

	"machvm"
)

// recordStore is the pager task's private backing store: a toy database
// of fixed-size records, one page each.
type recordStore struct {
	mu            sync.Mutex
	pages         map[uint64][]byte
	reads, writes int
}

func main() {
	// A deliberately small machine so pageout happens: 2MB of memory,
	// a 4MB object.
	sys := machvm.MustNew(machvm.VAX8200, machvm.Options{MemoryMB: 2})
	cpu := sys.CPU(0)
	pageSize := sys.Kernel().PageSize()

	store := &recordStore{pages: make(map[uint64][]byte)}

	// The external pager: an ordinary user-state task with a port.
	up := machvm.NewUserPager("recorddb")
	up.OnRequest = func(req machvm.DataRequest) {
		store.mu.Lock()
		data, ok := store.pages[req.Offset]
		store.reads++
		store.mu.Unlock()
		if !ok {
			// Never-written record: let the kernel zero-fill.
			req.Unavailable()
			return
		}
		req.Provide(data, 0)
	}
	up.OnWrite = func(offset uint64, data []byte) {
		store.mu.Lock()
		store.pages[offset] = data
		store.writes++
		store.mu.Unlock()
	}
	defer up.Stop()

	const objSize = 4 << 20
	obj := sys.NewUserPagerObject(up, objSize, "records")

	client := sys.NewTask("client")
	defer client.Destroy()
	th := client.SpawnThread(cpu)
	base, err := client.Map.AllocateWithObject(0, objSize, true, obj, 0,
		machvm.ProtDefault, machvm.ProtAll, machvm.InheritCopy, false)
	if err != nil {
		log.Fatalf("map object: %v", err)
	}
	fmt.Printf("mapped 4MB externally-managed object at %#x (page size %d)\n", base, pageSize)

	// Write a record into every page: with 2MB of memory this must page
	// out through the external pager.
	records := int(objSize / pageSize)
	for i := 0; i < records; i++ {
		rec := fmt.Sprintf("record-%04d", i)
		if err := th.Write(base+machvm.VA(uint64(i)*pageSize), []byte(rec)); err != nil {
			log.Fatalf("write record %d: %v", i, err)
		}
	}
	store.mu.Lock()
	fmt.Printf("after filling %d records: pager saw %d data writes (pageout)\n", records, store.writes)
	store.mu.Unlock()

	// Read every record back; evicted ones come from the pager.
	bad := 0
	for i := 0; i < records; i++ {
		want := fmt.Sprintf("record-%04d", i)
		got := make([]byte, len(want))
		if err := th.Read(base+machvm.VA(uint64(i)*pageSize), got); err != nil {
			log.Fatalf("read record %d: %v", i, err)
		}
		if string(got) != want {
			bad++
		}
	}
	store.mu.Lock()
	fmt.Printf("verified %d records (%d bad); pager served %d data requests\n", records, bad, store.reads)
	store.mu.Unlock()
	st := sys.Statistics()
	fmt.Printf("vm_statistics: pageins=%d pageouts=%d faults=%d\n", st.Pageins, st.Pageouts, st.Faults)
	if bad != 0 {
		log.Fatal("data corruption through the external pager")
	}
}
