// sharedmem: read/write memory sharing between tasks through inheritance
// and sharing maps (§3.4), plus a whole-region message transfer moved by
// copy-on-write remapping instead of copying (§2.1).
package main

import (
	"bytes"
	"fmt"
	"log"

	"machvm"
)

func main() {
	sys := machvm.MustNew(machvm.Sun3, machvm.Options{MemoryMB: 16, CPUs: 2})
	cpuA, cpuB := sys.CPU(0), sys.CPU(1)

	parent := sys.NewTask("producer")
	thA := parent.SpawnThread(cpuA)

	// A ring-buffer region shared read/write with the child.
	ring, err := parent.Map.Allocate(0, 64<<10, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := parent.Map.SetInherit(ring, 64<<10, machvm.InheritShared); err != nil {
		log.Fatal(err)
	}
	// A private scratch region, inherited copy (the default).
	private, err := parent.Map.Allocate(0, 32<<10, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := thA.Write(private, []byte("parent private")); err != nil {
		log.Fatal(err)
	}

	child := parent.Fork("consumer")
	thB := child.SpawnThread(cpuB)

	// Parent writes into the shared ring; child sees it immediately.
	if err := thA.Write(ring, []byte("message 1 via shared memory")); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, 27)
	if err := thB.Read(ring, got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("child reads shared ring: %q\n", got)

	// Child answers in place.
	if err := thB.Write(ring+32768, []byte("ack from child")); err != nil {
		log.Fatal(err)
	}
	ack := make([]byte, 14)
	if err := thA.Read(ring+32768, ack); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parent reads child's ack: %q\n", ack)

	// The private region stays private.
	if err := thB.Write(private, []byte("child overwrite")); err != nil {
		log.Fatal(err)
	}
	mine := make([]byte, 14)
	if err := thA.Read(private, mine); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parent private after child write: %q (unchanged)\n", mine)

	// Out-of-line message transfer: ship a 1MB region to a third task in
	// one message with no physical copying.
	payload := bytes.Repeat([]byte("bulk"), 256<<10/4)
	bulk, err := parent.Map.Allocate(0, 1<<20, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := thA.Write(bulk, payload); err != nil {
		log.Fatal(err)
	}
	cow0 := sys.Statistics().CowFaults

	region, err := sys.MoveOut(parent, bulk, 1<<20, true)
	if err != nil {
		log.Fatal(err)
	}
	port := machvm.NewPort("bulk-transfer")
	if err := port.Send(&machvm.Message{Items: []machvm.Item{{OOL: region}}}); err != nil {
		log.Fatal(err)
	}

	sink := sys.NewTask("sink")
	thS := sink.SpawnThread(cpuB)
	msg, err := port.Receive()
	if err != nil {
		log.Fatal(err)
	}
	at, err := sys.MoveIn(msg.Items[0].OOL, sink)
	if err != nil {
		log.Fatal(err)
	}
	check := make([]byte, len(payload))
	if err := thS.Read(at, check); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sink received 1MB out-of-line at %#x, intact=%v, pages physically copied during transfer=%d\n",
		at, bytes.Equal(check, payload), sys.Statistics().CowFaults-cow0)

	st := sys.Statistics()
	fmt.Printf("vm_statistics: faults=%d zero-fill=%d cow=%d share-maps in play\n",
		st.Faults, st.ZeroFillFaults, st.CowFaults)

	sink.Destroy()
	child.Destroy()
	parent.Destroy()
}
