package machvm_test

// TestPmapModuleSize reports the §4/§9 claim: "the size of the machine
// dependent mapping module is approximately 6K bytes on a VAX — about the
// size of a device driver", against thousands of lines of shared
// machine-independent code. The test fails if any machine module grows to
// rival the machine-independent layer, which would mean the split has
// eroded.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sourceLines(t *testing.T, dir string) (lines int, bytes int) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		bytes += len(data)
		lines += strings.Count(string(data), "\n")
	}
	return lines, bytes
}

func TestPmapModuleSize(t *testing.T) {
	machines := []string{"vax", "rtpc", "sun3", "ns32082", "tlbonly"}
	miDirs := []string{"internal/core", "internal/ipc", "internal/task", "internal/pager"}

	miLines := 0
	for _, d := range miDirs {
		l, _ := sourceLines(t, d)
		miLines += l
	}
	t.Logf("machine-independent layer: %d lines", miLines)
	for _, m := range machines {
		lines, bytes := sourceLines(t, filepath.Join("internal/pmap", m))
		t.Logf("pmap module %-8s: %4d lines, %5d bytes", m, lines, bytes)
		if lines == 0 {
			t.Fatalf("module %s has no sources?", m)
		}
		if lines*4 > miLines {
			t.Errorf("module %s (%d lines) rivals the machine-independent layer (%d lines); the paper's split requires pmaps to stay small", m, lines, miLines)
		}
	}
}
