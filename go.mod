module machvm

go 1.22
