package measure

import (
	"strings"
	"testing"
)

func TestSLOEvaluate(t *testing.T) {
	r := SLOReport{
		Faults:              10000,
		FaultP50NS:          2000,
		FaultP99NS:          90000,
		PagerRoundTrips:     500,
		PagerTimeouts:       1,
		PagerTimeoutRate:    1.0 / 500,
		FaultsPerVirtualSec: 150000,
	}
	pass := SLOThresholds{
		MaxFaultP50NS:          5000,
		MaxFaultP99NS:          100000,
		MaxPagerTimeoutRate:    0.01,
		MinFaultsPerVirtualSec: 100000,
		MinFaults:              1000,
	}
	if g := pass.Evaluate(r); !g.Pass {
		t.Fatalf("expected pass, got failures: %v", g.Failures)
	}

	fail := SLOThresholds{
		MaxFaultP50NS:       1000,
		MaxFaultP99NS:       50000,
		MaxPagerTimeoutRate: 0.0001,
		RequireZeroTimeouts: true,
	}
	g := fail.Evaluate(r)
	if g.Pass {
		t.Fatal("expected failure")
	}
	if len(g.Failures) != 4 {
		t.Fatalf("expected 4 failures, got %d: %v", len(g.Failures), g.Failures)
	}

	// Invariant violations always gate, even with zero thresholds.
	r2 := SLOReport{InvariantViolations: 1}
	if g := (SLOThresholds{}).Evaluate(r2); g.Pass {
		t.Fatal("invariant violations must fail the gate")
	}
}

func TestSLOZeroLimitsNotEnforced(t *testing.T) {
	r := SLOReport{FaultP50NS: 1 << 40, FaultP99NS: 1 << 50, PagerTimeoutRate: 0.99}
	if g := (SLOThresholds{}).Evaluate(r); !g.Pass {
		t.Fatalf("zero thresholds must not gate: %v", g.Failures)
	}
}

func TestParseSLOThresholds(t *testing.T) {
	good := []byte(`{
		"max_fault_p50_ns": 5000,
		"max_fault_p99_ns": 100000,
		"max_pager_timeout_rate": 0.01,
		"max_invariant_violations": 0,
		"min_faults_per_virtual_sec": 100000,
		"min_faults": 1000
	}`)
	th, err := ParseSLOThresholds(good)
	if err != nil {
		t.Fatal(err)
	}
	if th.MaxFaultP99NS != 100000 || th.MinFaults != 1000 {
		t.Fatalf("bad parse: %+v", th)
	}

	if _, err := ParseSLOThresholds([]byte(`{"max_falt_p99_ns": 1}`)); err == nil {
		t.Fatal("typo'd field must be rejected")
	}
}

func TestSLOReportString(t *testing.T) {
	s := SLOReport{Faults: 42, FaultP99NS: 7}.String()
	if !strings.Contains(s, "faults=42") || !strings.Contains(s, "p99=7ns") {
		t.Fatalf("unexpected rendering: %q", s)
	}
}
