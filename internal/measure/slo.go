package measure

import (
	"encoding/json"
	"fmt"
	"strings"
)

// SLOReport is the typed service-level snapshot of one world run: fault
// latency percentiles off the per-fault histogram, pager health off the
// kernel counters, and the structural invariant verdict. Every field is
// virtual-time derived, so a deterministic world produces bit-identical
// reports on any host.
type SLOReport struct {
	// Faults is the total number of vm_fault calls observed.
	Faults uint64 `json:"faults"`
	// FaultP50NS/FaultP90NS/FaultP99NS/FaultMaxNS are per-fault latency
	// quantiles in virtual nanoseconds (histogram upper bounds, ≤6.25%
	// overstatement).
	FaultP50NS int64 `json:"fault_p50_ns"`
	FaultP90NS int64 `json:"fault_p90_ns"`
	FaultP99NS int64 `json:"fault_p99_ns"`
	FaultMaxNS int64 `json:"fault_max_ns"`
	// FaultMeanNS is the mean per-fault latency in virtual nanoseconds.
	FaultMeanNS float64 `json:"fault_mean_ns"`

	// Pager-boundary health.
	PagerRoundTrips  uint64  `json:"pager_round_trips"`
	PagerTimeouts    uint64  `json:"pager_timeouts"`
	PagerErrors      uint64  `json:"pager_errors"`
	PagerFallbacks   uint64  `json:"pager_fallbacks"`
	PagerTimeoutRate float64 `json:"pager_timeout_rate"`

	// InvariantViolations counts structural invariant failures found by
	// the kernel's runtime checker (must be 0 on a healthy quiesced
	// kernel).
	InvariantViolations int `json:"invariant_violations"`

	// VirtualNS is the virtual clock at snapshot time;
	// FaultsPerVirtualSec the sustained fault throughput in virtual time.
	VirtualNS           int64   `json:"virtual_ns"`
	FaultsPerVirtualSec float64 `json:"faults_per_virtual_sec"`
}

// SLOThresholds are the gate limits checked into SLO.json. Zero-valued
// limits are not enforced, so a partial file gates only what it names.
type SLOThresholds struct {
	// MaxFaultP50NS / MaxFaultP99NS bound per-fault latency (virtual ns).
	MaxFaultP50NS int64 `json:"max_fault_p50_ns,omitempty"`
	MaxFaultP99NS int64 `json:"max_fault_p99_ns,omitempty"`
	// MaxPagerTimeoutRate bounds PagerTimeouts/PagerRoundTrips. Use a
	// tiny positive value (not 0) to require a strictly zero rate, since
	// 0 means "not enforced".
	MaxPagerTimeoutRate float64 `json:"max_pager_timeout_rate,omitempty"`
	// RequireZeroTimeouts, when true, fails on any pager timeout at all.
	RequireZeroTimeouts bool `json:"require_zero_timeouts,omitempty"`
	// MaxInvariantViolations is almost always 0; the gate always enforces
	// it (a report with violations never passes).
	MaxInvariantViolations int `json:"max_invariant_violations"`
	// MinFaultsPerVirtualSec bounds sustained fault throughput from
	// below — the "max sustained faults/sec at p99 < target" number.
	MinFaultsPerVirtualSec float64 `json:"min_faults_per_virtual_sec,omitempty"`
	// MinFaults guards against the gate trivially passing on an
	// empty run.
	MinFaults uint64 `json:"min_faults,omitempty"`
}

// GateResult is the outcome of evaluating a report against thresholds.
type GateResult struct {
	Pass     bool
	Failures []string
}

// Evaluate checks the report against the thresholds and returns the gate
// verdict with one failure line per violated limit.
func (t SLOThresholds) Evaluate(r SLOReport) GateResult {
	var fails []string
	add := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}
	if t.MinFaults > 0 && r.Faults < t.MinFaults {
		add("faults %d < required minimum %d (run too small to gate)", r.Faults, t.MinFaults)
	}
	if t.MaxFaultP50NS > 0 && r.FaultP50NS > t.MaxFaultP50NS {
		add("fault p50 %dns exceeds limit %dns", r.FaultP50NS, t.MaxFaultP50NS)
	}
	if t.MaxFaultP99NS > 0 && r.FaultP99NS > t.MaxFaultP99NS {
		add("fault p99 %dns exceeds limit %dns", r.FaultP99NS, t.MaxFaultP99NS)
	}
	if t.RequireZeroTimeouts && r.PagerTimeouts > 0 {
		add("pager timeouts %d, zero required", r.PagerTimeouts)
	}
	if t.MaxPagerTimeoutRate > 0 && r.PagerTimeoutRate > t.MaxPagerTimeoutRate {
		add("pager timeout rate %.6f exceeds limit %.6f", r.PagerTimeoutRate, t.MaxPagerTimeoutRate)
	}
	if r.InvariantViolations > t.MaxInvariantViolations {
		add("%d invariant violations, at most %d allowed", r.InvariantViolations, t.MaxInvariantViolations)
	}
	if t.MinFaultsPerVirtualSec > 0 && r.FaultsPerVirtualSec < t.MinFaultsPerVirtualSec {
		add("sustained %.1f faults/virtual-sec below floor %.1f", r.FaultsPerVirtualSec, t.MinFaultsPerVirtualSec)
	}
	return GateResult{Pass: len(fails) == 0, Failures: fails}
}

// ParseSLOThresholds decodes an SLO.json document. Unknown fields are an
// error so a typo in the checked-in file cannot silently disable a gate.
func ParseSLOThresholds(data []byte) (SLOThresholds, error) {
	var t SLOThresholds
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return SLOThresholds{}, fmt.Errorf("measure: parsing SLO thresholds: %w", err)
	}
	return t, nil
}

// String renders the report as a stable multi-line summary.
func (r SLOReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults=%d p50=%dns p90=%dns p99=%dns max=%dns mean=%.0fns\n",
		r.Faults, r.FaultP50NS, r.FaultP90NS, r.FaultP99NS, r.FaultMaxNS, r.FaultMeanNS)
	fmt.Fprintf(&b, "pager trips=%d timeouts=%d errors=%d fallbacks=%d timeout-rate=%.6f\n",
		r.PagerRoundTrips, r.PagerTimeouts, r.PagerErrors, r.PagerFallbacks, r.PagerTimeoutRate)
	fmt.Fprintf(&b, "invariant-violations=%d virtual=%.3fms sustained=%.1f faults/vsec",
		r.InvariantViolations, float64(r.VirtualNS)/1e6, r.FaultsPerVirtualSec)
	return b.String()
}
