// Package measure formats experiment results in the style of the paper's
// tables: rows of operations with Mach and UNIX columns in virtual time.
package measure

import (
	"fmt"
	"strings"
)

// Row is one table line.
type Row struct {
	Label string
	// Mach and Unix are virtual nanoseconds (or any paired quantity).
	Mach, Unix int64
	// Paper records the published numbers for reference, as strings
	// (e.g. "41ms / 145ms"); optional.
	Paper string
}

// Table is a paper-style results table.
type Table struct {
	Title   string
	Unit    Unit
	Rows    []Row
	Comment string
}

// Unit selects time rendering.
type Unit int

// Units.
const (
	Millis Unit = iota
	Seconds
	MinutesSeconds
)

func render(u Unit, ns int64) string {
	switch u {
	case Millis:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case Seconds:
		return fmt.Sprintf("%.1fs", float64(ns)/1e9)
	case MinutesSeconds:
		total := ns / 1e9
		return fmt.Sprintf("%d:%02dmin", total/60, total%60)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// Ratio returns unix/mach as a factor string.
func Ratio(mach, unix int64) string {
	if mach == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(unix)/float64(mach))
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-34s %12s %12s %8s", "Operation", "Mach", "UNIX", "ratio")
	hasPaper := false
	for _, r := range t.Rows {
		if r.Paper != "" {
			hasPaper = true
		}
	}
	if hasPaper {
		fmt.Fprintf(&b, "   %s", "paper (Mach/UNIX)")
	}
	b.WriteString("\n")
	width := 70
	if hasPaper {
		width = 92
	}
	b.WriteString(strings.Repeat("-", width) + "\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-34s %12s %12s %8s", r.Label, render(t.Unit, r.Mach), render(t.Unit, r.Unix), Ratio(r.Mach, r.Unix))
		if hasPaper {
			fmt.Fprintf(&b, "   %s", r.Paper)
		}
		b.WriteString("\n")
	}
	if t.Comment != "" {
		fmt.Fprintf(&b, "%s\n", t.Comment)
	}
	return b.String()
}

// MS converts milliseconds to nanoseconds (for paper reference values).
func MS(ms float64) int64 { return int64(ms * 1e6) }
