package measure_test

import (
	"strings"
	"testing"

	"machvm/internal/measure"
)

func TestTableRendering(t *testing.T) {
	tbl := &measure.Table{
		Title: "Test Table",
		Unit:  measure.Millis,
		Rows: []measure.Row{
			{Label: "op one", Mach: 1_500_000, Unix: 3_000_000, Paper: "1ms / 3ms"},
			{Label: "op two", Mach: 2_000_000, Unix: 2_000_000},
		},
		Comment: "a comment",
	}
	s := tbl.String()
	for _, want := range []string{"Test Table", "op one", "1.50ms", "3.00ms", "2.00x", "paper", "a comment"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestUnits(t *testing.T) {
	secs := &measure.Table{Unit: measure.Seconds, Rows: []measure.Row{{Label: "x", Mach: 1_500_000_000, Unix: 500_000_000}}}
	if !strings.Contains(secs.String(), "1.5s") {
		t.Error("seconds rendering wrong")
	}
	mins := &measure.Table{Unit: measure.MinutesSeconds, Rows: []measure.Row{{Label: "x", Mach: 95_000_000_000, Unix: 60_000_000_000}}}
	if !strings.Contains(mins.String(), "1:35min") {
		t.Errorf("minutes rendering wrong: %s", mins.String())
	}
}

func TestRatio(t *testing.T) {
	if measure.Ratio(0, 5) != "-" {
		t.Error("zero denominator should render '-'")
	}
	if measure.Ratio(2, 5) != "2.50x" {
		t.Errorf("ratio = %s", measure.Ratio(2, 5))
	}
	if measure.MS(1.5) != 1_500_000 {
		t.Error("MS conversion wrong")
	}
}
