package measure

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-bucket, HDR-style latency histogram over
// non-negative int64 values (virtual nanoseconds). The bucket layout is
// log-linear: values below 2*histSub land in exact unit buckets; above
// that, each power of two is split into histSub linear sub-buckets, so
// the relative quantization error is bounded by 1/histSub (6.25%) at any
// magnitude up to the full int64 range.
//
// Record is wait-free and allocation-free — a bucket index computation
// and three atomic adds plus a bounded CAS loop for the maximum — so it
// can sit on the kernel's fault path without disturbing the zero-allocs
// CI gate. All buckets are plain atomics; the zero value is ready to use
// and a Histogram can be embedded by value.
//
// Driven from a single goroutine (the deterministic-world discipline of
// DESIGN.md §11) the recorded distribution is exactly reproducible;
// under concurrent load the counts are still exact, only cross-bucket
// snapshots are not an atomic cut.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

const (
	// histSubBits fixes the precision: 2^histSubBits linear sub-buckets
	// per power of two.
	histSubBits = 4
	histSub     = 1 << histSubBits
	// histBuckets covers unit buckets [0, 2*histSub) plus histSub
	// sub-buckets for each remaining octave up to MaxInt64: the top set
	// bit of a positive int64 ranges over 2*histSub..2^62, giving
	// 62-histSubBits octaves beyond the unit region.
	histBuckets = 2*histSub + (62-histSubBits)*histSub
)

// bucketOf maps a value to its bucket index. Negative values clamp to
// bucket 0 (virtual time never runs backwards; a clamp beats a panic on
// the fault path).
func bucketOf(v int64) int {
	if v < 2*histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	u := uint64(v)
	// shift is the octave: the value's top histSubBits+1 bits start at
	// bit position shift.
	shift := uint(bits.Len64(u)) - histSubBits - 1
	sub := int(u>>shift) & (histSub - 1)
	return 2*histSub + int(shift-1)*histSub + sub
}

// bucketUpper returns the largest value mapping to bucket i — the
// deterministic representative Percentile reports.
func bucketUpper(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	shift := uint(i-2*histSub)/histSub + 1
	sub := uint64(i-2*histSub) % histSub
	return int64((histSub+sub+1)<<shift - 1)
}

// Record adds one observation. Safe for concurrent use; never allocates.
func (h *Histogram) Record(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Percentile returns the upper bound of the bucket holding the q-th
// quantile (0 < q <= 1), so the reported value is deterministic and
// conservative: at least a fraction q of observations are <= it, and it
// overstates the true quantile by at most the bucket width (6.25%).
// Returns 0 when empty.
func (h *Histogram) Percentile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return h.max.Load()
}

// Reset clears the histogram. Not atomic with respect to concurrent
// Records; quiesce first.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}
