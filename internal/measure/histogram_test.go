package measure

import (
	"math"
	"testing"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value
	// and within the documented 6.25% relative error.
	values := []int64{0, 1, 15, 31, 32, 33, 63, 64, 100, 1000, 4096,
		1 << 20, 1<<20 + 12345, 1 << 40, math.MaxInt64}
	for _, v := range values {
		i := bucketOf(v)
		up := bucketUpper(i)
		if up < v {
			t.Fatalf("bucketUpper(%d)=%d < value %d", i, up, v)
		}
		if v >= 2*histSub {
			if rel := float64(up-v) / float64(v); rel > 1.0/histSub {
				t.Fatalf("value %d: upper %d relative error %.4f > %.4f", v, up, rel, 1.0/histSub)
			}
		} else if up != v {
			t.Fatalf("unit bucket: value %d got upper %d", v, up)
		}
	}
}

func TestBucketMonotone(t *testing.T) {
	// bucketOf must be monotone and bucketUpper must be the max value of
	// its bucket: bucketOf(bucketUpper(i)) == i and bucketOf(upper+1) > i.
	for i := 0; i < histBuckets; i++ {
		up := bucketUpper(i)
		if got := bucketOf(up); got != i {
			t.Fatalf("bucketOf(bucketUpper(%d)=%d) = %d", i, up, got)
		}
		if up < math.MaxInt64 {
			if got := bucketOf(up + 1); got != i+1 {
				t.Fatalf("bucketOf(%d+1) = %d, want %d", up, got, i+1)
			}
		}
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Percentile(1) != 0 {
		t.Fatalf("negative record: count=%d p100=%d", h.Count(), h.Percentile(1))
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 observations 1..100: exact unit buckets below 32, log-linear
	// above, so p50 is within one bucket of 50.
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d", h.Max())
	}
	p50 := h.Percentile(0.50)
	if p50 < 50 || p50 > 53 {
		t.Fatalf("p50 = %d, want ~50", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 99 || p99 > 103 {
		t.Fatalf("p99 = %d, want ~99", p99)
	}
	if got := h.Percentile(1.0); got < 100 {
		t.Fatalf("p100 = %d, want >= 100", got)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHistogramDeterministic(t *testing.T) {
	// Same inputs -> identical percentiles, independent of host.
	run := func() [4]int64 {
		var h Histogram
		v := int64(12345)
		for i := 0; i < 10000; i++ {
			v = v*6364136223846793005 + 1442695040888963407
			h.Record((v >> 33) & 0xfffff)
		}
		return [4]int64{h.Percentile(0.5), h.Percentile(0.9), h.Percentile(0.99), h.Max()}
	}
	if run() != run() {
		t.Fatal("histogram percentiles are not deterministic")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 37)
	}
	if h.Count() == 0 {
		b.Fatal("no records")
	}
}
