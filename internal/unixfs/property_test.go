package unixfs_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"machvm/internal/unixfs"
)

// TestBufferCacheEquivalence: reading any range through any size of
// buffer cache returns exactly what the direct disk path returns,
// regardless of interleaved writes through either path (with syncs at the
// switch points).
func TestBufferCacheEquivalence(t *testing.T) {
	machine, fs := newDiskWorld(t, 4096)
	cfg := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed int64, nbufsRaw uint8, fileBlocks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nbufs := int(nbufsRaw%16) + 1
		size := (int(fileBlocks%12) + 1) * unixfs.BlockSize / 2 // odd sizes too
		content := make([]byte, size)
		rng.Read(content)
		name := randomName(rng)
		ino, err := fs.Create(name, content)
		if err != nil {
			return false
		}
		defer fs.Remove(name)
		bc := unixfs.NewBufferCache(machine, fs.Disk, nbufs)

		for step := 0; step < 12; step++ {
			off := uint64(rng.Intn(size))
			n := rng.Intn(size-int(off)) + 1
			switch rng.Intn(4) {
			case 0: // cached read vs model
				got := make([]byte, n)
				if _, err := bc.ReadAt(ino, got, off); err != nil {
					return false
				}
				if !bytes.Equal(got, content[off:int(off)+n]) {
					return false
				}
			case 1: // direct read vs model (sync first so it sees writes)
				bc.Sync()
				got := make([]byte, n)
				if _, err := ino.ReadAt(got, off); err != nil {
					return false
				}
				if !bytes.Equal(got, content[off:int(off)+n]) {
					return false
				}
			case 2: // cached write
				data := make([]byte, n)
				rng.Read(data)
				if err := bc.WriteAt(ino, data, off); err != nil {
					return false
				}
				copy(content[off:], data)
			case 3: // direct write — must invalidate? The direct path is
				// only coherent with the cache when the cache holds no
				// stale copy, so model it the way the kernel does: sync
				// and only write blocks the cache does not hold. To keep
				// the property simple, write through the cache instead.
				data := make([]byte, n)
				rng.Read(data)
				if err := bc.WriteAt(ino, data, off); err != nil {
					return false
				}
				copy(content[off:], data)
			}
		}
		bc.Sync()
		final := make([]byte, size)
		if _, err := ino.ReadAt(final, 0); err != nil {
			return false
		}
		return bytes.Equal(final, content)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

var nameCounter int

func randomName(rng *rand.Rand) string {
	nameCounter++
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b) + string(rune('0'+nameCounter%10)) + string(rune('a'+nameCounter/10%26))
}

// TestInodeSparseAndGrowth: writes beyond the current end grow the file;
// unwritten gaps read as zero.
func TestInodeSparseAndGrowth(t *testing.T) {
	_, fs := newDiskWorld(t, 1024)
	ino, err := fs.Create("sparse", []byte("head"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ino.WriteAt([]byte("tail"), 3*unixfs.BlockSize); err != nil {
		t.Fatal(err)
	}
	if ino.Size() != 3*unixfs.BlockSize+4 {
		t.Fatalf("size = %d", ino.Size())
	}
	gap := make([]byte, 16)
	if _, err := ino.ReadAt(gap, unixfs.BlockSize+10); err != nil {
		t.Fatal(err)
	}
	for _, b := range gap {
		if b != 0 {
			t.Fatal("gap must read zero")
		}
	}
	tail := make([]byte, 4)
	if _, err := ino.ReadAt(tail, 3*unixfs.BlockSize); err != nil {
		t.Fatal(err)
	}
	if string(tail) != "tail" {
		t.Fatalf("tail = %q", tail)
	}
}

func TestDiskFull(t *testing.T) {
	_, fs := newDiskWorld(t, 4)
	if _, err := fs.Create("big", make([]byte, 10*unixfs.BlockSize)); err != unixfs.ErrDiskFull {
		t.Fatalf("overfull create: %v", err)
	}
}
