// Package unixfs simulates the storage substrate the paper's systems sit
// on: a disk with seek/transfer costs, a simple inode-based filesystem,
// and a 4.3bsd-style fixed-size buffer cache.
//
// Two consumers use it in opposite ways, which is exactly the contrast
// Table 7-1's file-reading rows measure: the 4.3bsd baseline reads files
// through the buffer cache (a fixed number of buffers, so a 2.5MB file
// never stays cached), while Mach's inode pager moves file blocks straight
// between disk and the object cache's physical pages, letting all of free
// memory act as a file cache.
package unixfs

import (
	"errors"
	"fmt"
	"sync"

	"machvm/internal/hw"
)

// Filesystem errors.
var (
	// ErrNotFound means no file has the given name.
	ErrNotFound = errors.New("unixfs: file not found")
	// ErrExists means a file with the name already exists.
	ErrExists = errors.New("unixfs: file exists")
	// ErrDiskFull means the disk has no free blocks.
	ErrDiskFull = errors.New("unixfs: disk full")
)

// BlockSize is the filesystem block size (4.3bsd commonly used 4KB/8KB).
const BlockSize = 4096

// Disk is the simulated storage device. All reads and writes charge the
// machine's disk cost model.
type Disk struct {
	machine *hw.Machine

	mu     sync.Mutex
	blocks [][]byte
	free   []int

	reads, writes uint64
}

// NewDisk creates a disk with the given number of blocks.
func NewDisk(machine *hw.Machine, nblocks int) *Disk {
	d := &Disk{machine: machine, blocks: make([][]byte, nblocks)}
	for i := nblocks - 1; i >= 0; i-- {
		d.free = append(d.free, i)
	}
	return d
}

// alloc grabs a free block.
func (d *Disk) alloc() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.free) == 0 {
		return 0, ErrDiskFull
	}
	b := d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	d.blocks[b] = make([]byte, BlockSize)
	return b, nil
}

// release returns a block to the free list.
func (d *Disk) release(b int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.blocks[b] = nil
	d.free = append(d.free, b)
}

// ReadBlock reads one block, charging seek + transfer.
func (d *Disk) ReadBlock(b int, buf []byte) {
	d.machine.Charge(d.machine.Cost.DiskLatency)
	d.machine.ChargeKB(d.machine.Cost.DiskPerKB, BlockSize)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads++
	if d.blocks[b] == nil {
		clear(buf[:BlockSize])
		return
	}
	copy(buf, d.blocks[b])
}

// WriteBlock writes one block, charging seek + transfer.
func (d *Disk) WriteBlock(b int, data []byte) {
	d.machine.Charge(d.machine.Cost.DiskLatency)
	d.machine.ChargeKB(d.machine.Cost.DiskPerKB, BlockSize)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	if d.blocks[b] == nil {
		d.blocks[b] = make([]byte, BlockSize)
	}
	copy(d.blocks[b], data)
}

// Traffic returns the read and write block counts.
func (d *Disk) Traffic() (reads, writes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// Inode is one file's metadata.
type Inode struct {
	fs     *FS
	name   string
	mu     sync.Mutex
	size   uint64
	blocks []int
}

// Name returns the file name.
func (ino *Inode) Name() string { return ino.name }

// Size returns the file size in bytes.
func (ino *Inode) Size() uint64 {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	return ino.size
}

// FS is a flat-namespace inode filesystem.
type FS struct {
	Disk *Disk

	mu    sync.Mutex
	files map[string]*Inode
}

// NewFS creates a filesystem on the disk.
func NewFS(d *Disk) *FS {
	return &FS{Disk: d, files: make(map[string]*Inode)}
}

// Create makes a file with the given contents.
func (fs *FS) Create(name string, data []byte) (*Inode, error) {
	fs.mu.Lock()
	if _, ok := fs.files[name]; ok {
		fs.mu.Unlock()
		return nil, ErrExists
	}
	ino := &Inode{fs: fs, name: name}
	fs.files[name] = ino
	fs.mu.Unlock()
	if len(data) > 0 {
		if err := ino.WriteAt(data, 0); err != nil {
			return nil, err
		}
	}
	return ino, nil
}

// Open looks up a file.
func (fs *FS) Open(name string) (*Inode, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, ok := fs.files[name]
	if !ok {
		return nil, ErrNotFound
	}
	return ino, nil
}

// Remove deletes a file, releasing its blocks.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	ino, ok := fs.files[name]
	if !ok {
		fs.mu.Unlock()
		return ErrNotFound
	}
	delete(fs.files, name)
	fs.mu.Unlock()
	ino.mu.Lock()
	defer ino.mu.Unlock()
	for _, b := range ino.blocks {
		fs.Disk.release(b)
	}
	ino.blocks = nil
	ino.size = 0
	return nil
}

// ensureBlocks grows the file's block list to cover n bytes.
func (ino *Inode) ensureBlocksLocked(n uint64) error {
	need := int((n + BlockSize - 1) / BlockSize)
	for len(ino.blocks) < need {
		b, err := ino.fs.Disk.alloc()
		if err != nil {
			return err
		}
		ino.blocks = append(ino.blocks, b)
	}
	return nil
}

// ReadAt reads len(buf) bytes at offset directly from disk (no cache).
// The Mach inode pager uses this path: the data lands in object-cache
// pages, not in fixed buffers.
func (ino *Inode) ReadAt(buf []byte, offset uint64) (int, error) {
	ino.mu.Lock()
	size := ino.size
	blocks := append([]int(nil), ino.blocks...)
	ino.mu.Unlock()
	if offset >= size {
		return 0, nil
	}
	n := len(buf)
	if uint64(n) > size-offset {
		n = int(size - offset)
	}
	var block [BlockSize]byte
	done := 0
	for done < n {
		bi := int((offset + uint64(done)) / BlockSize)
		bo := int((offset + uint64(done)) % BlockSize)
		chunk := BlockSize - bo
		if chunk > n-done {
			chunk = n - done
		}
		if bi < len(blocks) {
			ino.fs.Disk.ReadBlock(blocks[bi], block[:])
			copy(buf[done:done+chunk], block[bo:bo+chunk])
		} else {
			clear(buf[done : done+chunk])
		}
		done += chunk
	}
	return n, nil
}

// WriteAt writes buf at offset directly to disk.
func (ino *Inode) WriteAt(buf []byte, offset uint64) error {
	ino.mu.Lock()
	if err := ino.ensureBlocksLocked(offset + uint64(len(buf))); err != nil {
		ino.mu.Unlock()
		return err
	}
	if offset+uint64(len(buf)) > ino.size {
		ino.size = offset + uint64(len(buf))
	}
	blocks := append([]int(nil), ino.blocks...)
	ino.mu.Unlock()

	var block [BlockSize]byte
	done := 0
	for done < len(buf) {
		bi := int((offset + uint64(done)) / BlockSize)
		bo := int((offset + uint64(done)) % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(buf)-done {
			chunk = len(buf) - done
		}
		if bo != 0 || chunk != BlockSize {
			// Read-modify-write of a partial block.
			ino.fs.Disk.ReadBlock(blocks[bi], block[:])
		}
		copy(block[bo:bo+chunk], buf[done:done+chunk])
		ino.fs.Disk.WriteBlock(blocks[bi], block[:])
		done += chunk
	}
	return nil
}

// String renders the filesystem state.
func (fs *FS) String() string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fmt.Sprintf("fs(%d files)", len(fs.files))
}
