package unixfs_test

import (
	"bytes"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap/vax"
	"machvm/internal/unixfs"
)

func newDiskWorld(t testing.TB, blocks int) (*hw.Machine, *unixfs.FS) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 1024,
		CPUs:       1,
	})
	return machine, unixfs.NewFS(unixfs.NewDisk(machine, blocks))
}

func TestFileCreateReadWrite(t *testing.T) {
	_, fs := newDiskWorld(t, 1024)
	data := bytes.Repeat([]byte("0123456789"), 2000) // 20000 bytes, unaligned
	ino, err := fs.Create("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if ino.Size() != uint64(len(data)) {
		t.Fatalf("size = %d; want %d", ino.Size(), len(data))
	}
	buf := make([]byte, len(data))
	n, err := ino.ReadAt(buf, 0)
	if err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("content mismatch")
	}
	// Partial overwrite across a block boundary.
	patch := []byte("PATCHED")
	if err := ino.WriteAt(patch, unixfs.BlockSize-3); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, len(patch))
	if _, err := ino.ReadAt(small, unixfs.BlockSize-3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(small, patch) {
		t.Fatalf("patch readback %q", small)
	}
	// Reads past EOF return short.
	if n, _ := ino.ReadAt(buf, ino.Size()+5); n != 0 {
		t.Fatalf("read past EOF = %d", n)
	}
}

func TestFSNamespace(t *testing.T) {
	_, fs := newDiskWorld(t, 64)
	if _, err := fs.Open("missing"); err != unixfs.ErrNotFound {
		t.Fatalf("Open missing = %v", err)
	}
	if _, err := fs.Create("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("a", nil); err != unixfs.ErrExists {
		t.Fatalf("duplicate create = %v", err)
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("a"); err != unixfs.ErrNotFound {
		t.Fatal("file survived Remove")
	}
	// Blocks are recycled: fill the disk, remove, fill again.
	big := make([]byte, 32*unixfs.BlockSize)
	if _, err := fs.Create("big1", big); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("big2", big); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("big1"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("big3", big); err != nil {
		t.Fatalf("blocks not recycled: %v", err)
	}
}

func TestDiskChargesTime(t *testing.T) {
	machine, fs := newDiskWorld(t, 256)
	before := machine.Clock.Now()
	ino, _ := fs.Create("f", bytes.Repeat([]byte{1}, 64*1024))
	mid := machine.Clock.Now()
	if mid <= before {
		t.Fatal("writes should charge disk time")
	}
	buf := make([]byte, 64*1024)
	_, _ = ino.ReadAt(buf, 0)
	if machine.Clock.Now() <= mid {
		t.Fatal("reads should charge disk time")
	}
}

func TestBufferCacheHitsAndEviction(t *testing.T) {
	machine, fs := newDiskWorld(t, 2048)
	data := bytes.Repeat([]byte{0xCD}, 40*unixfs.BlockSize)
	ino, _ := fs.Create("f", data)

	// A cache big enough for the file: second read is all hits and much
	// cheaper in virtual time.
	big := unixfs.NewBufferCache(machine, fs.Disk, 64)
	buf := make([]byte, len(data))
	t0 := machine.Clock.Now()
	if _, err := big.ReadAt(ino, buf, 0); err != nil {
		t.Fatal(err)
	}
	t1 := machine.Clock.Now()
	if _, err := big.ReadAt(ino, buf, 0); err != nil {
		t.Fatal(err)
	}
	t2 := machine.Clock.Now()
	firstCost, secondCost := t1-t0, t2-t1
	if secondCost >= firstCost/2 {
		t.Fatalf("cached reread cost %d vs first %d; expected much cheaper", secondCost, firstCost)
	}
	hits, misses, _ := big.Stats()
	if misses != 40 || hits != 40 {
		t.Fatalf("hits=%d misses=%d; want 40/40", hits, misses)
	}

	// A cache smaller than the file: the second read misses again —
	// the fixed-buffer behaviour Table 7-1's 2.5M row shows for UNIX.
	small := unixfs.NewBufferCache(machine, fs.Disk, 8)
	if _, err := small.ReadAt(ino, buf, 0); err != nil {
		t.Fatal(err)
	}
	_, misses1, _ := small.Stats()
	if _, err := small.ReadAt(ino, buf, 0); err != nil {
		t.Fatal(err)
	}
	_, misses2, _ := small.Stats()
	if misses2 != 2*misses1 {
		t.Fatalf("small cache second read: misses %d -> %d; want full re-miss", misses1, misses2)
	}
}

func TestBufferCacheWriteBack(t *testing.T) {
	machine, fs := newDiskWorld(t, 256)
	ino, _ := fs.Create("f", make([]byte, 4*unixfs.BlockSize))
	c := unixfs.NewBufferCache(machine, fs.Disk, 16)
	payload := []byte("buffered write")
	if err := c.WriteAt(ino, payload, 100); err != nil {
		t.Fatal(err)
	}
	// Before sync, the direct path may see stale data; after sync it
	// must see the write.
	c.Sync()
	got := make([]byte, len(payload))
	if _, err := ino.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("after sync got %q", got)
	}
}
