package unixfs

import (
	"sync"

	"machvm/internal/hw"
)

// BufferCache is a 4.3bsd-style fixed-size block buffer cache: the
// baseline UNIX file path reads through it. Its capacity is a boot-time
// configuration ("generic configuration reflects the normal allocation of
// 4.3bsd buffers; the 400 buffer times reflect specific limits", Table
// 7-2), and that fixed capacity — rather than all of free memory — is what
// Mach's object cache beats on large or many files.
type BufferCache struct {
	machine *hw.Machine
	disk    *Disk

	mu      sync.Mutex
	nbufs   int
	bufs    map[bufKey]*buffer
	lru     []*buffer // front = oldest
	hits    uint64
	misses  uint64
	flushes uint64
}

type bufKey struct {
	ino   *Inode
	block int
}

type buffer struct {
	key   bufKey
	data  []byte
	dirty bool
}

// NewBufferCache creates a cache of nbufs block buffers.
func NewBufferCache(machine *hw.Machine, disk *Disk, nbufs int) *BufferCache {
	if nbufs < 1 {
		nbufs = 1
	}
	return &BufferCache{
		machine: machine,
		disk:    disk,
		nbufs:   nbufs,
		bufs:    make(map[bufKey]*buffer, nbufs),
	}
}

// NBufs returns the configured buffer count.
func (c *BufferCache) NBufs() int { return c.nbufs }

// Stats returns hit/miss/flush counters.
func (c *BufferCache) Stats() (hits, misses, flushes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.flushes
}

// getBuffer returns the cached buffer for (ino, block), reading it from
// disk on a miss and evicting the least recently used buffer if needed.
func (c *BufferCache) getBuffer(ino *Inode, block int) *buffer {
	key := bufKey{ino: ino, block: block}
	c.mu.Lock()
	if b, ok := c.bufs[key]; ok {
		c.hits++
		c.touchLocked(b)
		c.mu.Unlock()
		// A cache hit still costs a memory copy through the buffer.
		c.machine.ChargeKB(c.machine.Cost.CopyPerKB, BlockSize)
		return b
	}
	c.misses++
	// Evict if full.
	for len(c.bufs) >= c.nbufs {
		victim := c.lru[0]
		c.lru = c.lru[1:]
		delete(c.bufs, victim.key)
		if victim.dirty {
			c.flushes++
			c.mu.Unlock()
			c.writeVictim(victim)
			c.mu.Lock()
		}
	}
	b := &buffer{key: key, data: make([]byte, BlockSize)}
	c.bufs[key] = b
	c.lru = append(c.lru, b)
	c.mu.Unlock()

	// Fill from disk.
	ino.mu.Lock()
	var diskBlock = -1
	if block < len(ino.blocks) {
		diskBlock = ino.blocks[block]
	}
	ino.mu.Unlock()
	if diskBlock >= 0 {
		c.disk.ReadBlock(diskBlock, b.data)
	}
	return b
}

func (c *BufferCache) writeVictim(b *buffer) {
	ino := b.key.ino
	ino.mu.Lock()
	var diskBlock = -1
	if b.key.block < len(ino.blocks) {
		diskBlock = ino.blocks[b.key.block]
	}
	ino.mu.Unlock()
	if diskBlock >= 0 {
		c.disk.WriteBlock(diskBlock, b.data)
	}
}

func (c *BufferCache) touchLocked(b *buffer) {
	for i, cand := range c.lru {
		if cand == b {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			break
		}
	}
	c.lru = append(c.lru, b)
}

// ReadAt reads through the buffer cache (the 4.3bsd read(2) path).
func (c *BufferCache) ReadAt(ino *Inode, buf []byte, offset uint64) (int, error) {
	size := ino.Size()
	if offset >= size {
		return 0, nil
	}
	n := len(buf)
	if uint64(n) > size-offset {
		n = int(size - offset)
	}
	done := 0
	for done < n {
		bi := int((offset + uint64(done)) / BlockSize)
		bo := int((offset + uint64(done)) % BlockSize)
		chunk := BlockSize - bo
		if chunk > n-done {
			chunk = n - done
		}
		b := c.getBuffer(ino, bi)
		copy(buf[done:done+chunk], b.data[bo:bo+chunk])
		done += chunk
	}
	return n, nil
}

// WriteAt writes through the buffer cache (write-back).
func (c *BufferCache) WriteAt(ino *Inode, buf []byte, offset uint64) error {
	ino.mu.Lock()
	if err := ino.ensureBlocksLocked(offset + uint64(len(buf))); err != nil {
		ino.mu.Unlock()
		return err
	}
	if offset+uint64(len(buf)) > ino.size {
		ino.size = offset + uint64(len(buf))
	}
	ino.mu.Unlock()

	done := 0
	for done < len(buf) {
		bi := int((offset + uint64(done)) / BlockSize)
		bo := int((offset + uint64(done)) % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(buf)-done {
			chunk = len(buf) - done
		}
		b := c.getBuffer(ino, bi)
		copy(b.data[bo:bo+chunk], buf[done:done+chunk])
		c.mu.Lock()
		b.dirty = true
		c.mu.Unlock()
		done += chunk
	}
	return nil
}

// Sync writes every dirty buffer back to disk.
func (c *BufferCache) Sync() {
	c.mu.Lock()
	var dirty []*buffer
	for _, b := range c.bufs {
		if b.dirty {
			b.dirty = false
			dirty = append(dirty, b)
		}
	}
	c.mu.Unlock()
	for _, b := range dirty {
		c.writeVictim(b)
	}
}
