// Package sun3 implements the machine-dependent pmap module for the SUN 3.
//
// The SUN 3 MMU combines segment maps and page maps held in dedicated MMU
// RAM, which makes sparse 256-megabyte address maps reasonably cheap — but
// only 8 contexts exist at any one time. With more than 8 active tasks,
// tasks compete for contexts, and a task whose context is stolen loses its
// loaded translations and refaults them on its next run, "introducing
// additional page faults as on the RT" (§5.1). The machine's other quirk
// is a physical address space with large holes (display memory addressed
// as high physical memory); the hole handling lives in hw.PhysMem and this
// module simply never sees the unpopulated frames, mirroring how the SUN
// port contained the problem entirely within machine-dependent code.
package sun3

import (
	"fmt"
	"sync"
	"sync/atomic"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/vmtypes"
)

// Hardware constants.
const (
	// HWPageSize is the SUN 3 hardware page size.
	HWPageSize = 8192
	// pagesPerPMEG is the number of page entries in one page-map entry
	// group; a PMEG maps one 128KB segment.
	pagesPerPMEG = 16
	// segmentSize is the span of one segment-map entry.
	segmentSize = HWPageSize * pagesPerPMEG
	// NumContexts is the number of hardware contexts.
	NumContexts = 8
	// MaxUserVA: the SUN 3 manages per-task address maps up to 256
	// megabytes each (§5.1).
	MaxUserVA = vmtypes.VA(256) << 20
	// mmuRAMBytes approximates the fixed MMU RAM: 8 contexts of segment
	// map plus the PMEG array.
	mmuRAMBytes = NumContexts*(int(MaxUserVA/segmentSize))*2 + 256*pagesPerPMEG*4
)

// DefaultCost approximates a SUN 3/160 (16.67 MHz 68020).
func DefaultCost() hw.CostModel {
	return hw.CostModel{
		Name:         "SUN 3/160",
		TLBMiss:      300,
		WalkLevel:    500,
		MemAccess:    250,
		FaultTrap:    hw.Microseconds(90),
		Syscall:      hw.Microseconds(70),
		ZeroPerKB:    hw.Microseconds(55),
		CopyPerKB:    hw.Microseconds(110),
		PTEOp:        hw.Microseconds(2),
		MapEntryOp:   hw.Microseconds(20),
		TLBFlushPage: hw.Microseconds(2),
		TLBFlushAll:  hw.Microseconds(20),
		IPI:          hw.Microseconds(100),
		ContextLoad:  hw.Microseconds(40),
		TaskCreate:   hw.Milliseconds(55),
		MsgOp:        hw.Microseconds(150),
		DiskLatency:  hw.Milliseconds(4),
		DiskPerKB:    hw.Microseconds(1100),
	}
}

// Module is the SUN 3 machine-dependent module.
type Module struct {
	pmap.ModuleBase

	mu       sync.Mutex
	contexts [NumContexts]*sun3Map
	lruClock uint64
}

// New creates a SUN 3 pmap module for the machine. Declare the display-
// memory hole when building the hw.Machine (see DisplayHole).
func New(m *hw.Machine, strategy pmap.Strategy) *Module {
	if m.Mem.PageSize() != HWPageSize {
		panic("sun3: machine must use 8192-byte hardware pages")
	}
	mod := &Module{}
	mod.InitBase("SUN 3", m, strategy, MaxUserVA, 0)
	mod.Stats().AddTableBytes(int64(mmuRAMBytes))
	return mod
}

// DisplayHole returns a frame range describing display memory mapped as
// high physical memory, covering holeFrames frames ending at totalFrames.
func DisplayHole(totalFrames, holeFrames int) hw.FrameRange {
	if holeFrames >= totalFrames {
		holeFrames = totalFrames / 2
	}
	return hw.FrameRange{
		Start: vmtypes.PFN(totalFrames - holeFrames),
		End:   vmtypes.PFN(totalFrames),
	}
}

// Create makes a new physical map. It owns no hardware context until it is
// activated or entered into.
func (mod *Module) Create() pmap.Map {
	sm := &sun3Map{mod: mod, segments: make(map[uint64]*pmeg)}
	sm.InitCore()
	return sm
}

type pentry struct {
	pfn   vmtypes.PFN
	prot  vmtypes.Prot
	valid bool
	wired bool
}

// pmeg is a page-map entry group: the page table for one 128KB segment.
// A PMEG whose every entry is valid with one uniform protection is
// "super": the MMU can satisfy the translation from the segment probe
// alone, so Walk on a promoted PMEG charges one level instead of two.
type pmeg struct {
	entries [pagesPerPMEG]pentry
	used    int
	super   bool
}

type sun3Map struct {
	pmap.MapCore
	mod *Module

	mu         sync.Mutex
	segments   map[uint64]*pmeg
	resident   int
	superCount int

	// context and lastUsed are guarded by mod.mu; haveContext is
	// atomic because the hot Walk path reads it.
	context     int
	lastUsed    uint64
	haveContext atomic.Bool
}

// ContextSteals returns the module-wide count of stolen contexts.
func (mod *Module) ContextSteals() uint64 { return mod.Stats().ContextSteals.Load() }

// acquireContext gives m a hardware context, stealing the least recently
// used one if all 8 are taken. The victim loses its loaded translations:
// its MMU-RAM segment and page maps are reused, so the machine-independent
// layer must rebuild them by refaulting.
func (mod *Module) acquireContext(m *sun3Map) {
	mod.mu.Lock()
	mod.lruClock++
	m.lastUsed = mod.lruClock
	if m.haveContext.Load() {
		mod.mu.Unlock()
		return
	}
	slot := -1
	var victim *sun3Map
	for i, owner := range mod.contexts {
		if owner == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		// Steal the least recently used context.
		var oldest uint64 = ^uint64(0)
		for i, owner := range mod.contexts {
			if owner.lastUsed < oldest && owner != m {
				oldest = owner.lastUsed
				slot = i
			}
		}
		victim = mod.contexts[slot]
		mod.Stats().ContextSteals.Add(1)
	}
	mod.contexts[slot] = m
	m.context = slot
	m.haveContext.Store(true)
	if victim != nil {
		victim.haveContext.Store(false)
		victim.context = -1
	}
	mod.mu.Unlock()

	if victim != nil {
		victim.dropHardwareState()
	}
	mod.Machine().Charge(mod.Machine().Cost.ContextLoad)
}

// dropHardwareState discards every non-wired translation, as happens when
// the map's context (and thus its MMU RAM) is given to another task.
func (m *sun3Map) dropHardwareState() {
	mod := m.mod
	type victim struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var victims []victim
	m.mu.Lock()
	for seg, p := range m.segments {
		allGone := true
		for i := range p.entries {
			e := &p.entries[i]
			if !e.valid {
				continue
			}
			if e.wired {
				// Wired entries survive: Mach keeps a shadow of
				// them and reloads eagerly.
				allGone = false
				continue
			}
			victims = append(victims, victim{
				vpn: seg*pagesPerPMEG + uint64(i),
				pfn: e.pfn,
			})
			*e = pentry{}
			p.used--
			m.resident--
		}
		if p.super && p.used != pagesPerPMEG {
			m.demoteLocked(p)
		}
		if allGone && p.used == 0 {
			delete(m.segments, seg)
		}
	}
	m.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

func (m *sun3Map) pmegFor(vpn uint64, create bool) *pmeg {
	seg := vpn / pagesPerPMEG
	p := m.segments[seg]
	if p == nil && create {
		p = &pmeg{}
		m.segments[seg] = p
		m.mod.Machine().Charge(m.mod.Machine().Cost.PTEOp * pagesPerPMEG / 4)
	}
	return p
}

// updateSuperLocked re-derives the PMEG's superpage status after entry
// changes: super exactly when every entry is valid with one uniform
// protection. O(1) unless the PMEG is full. Called with m.mu held.
func (m *sun3Map) updateSuperLocked(p *pmeg) {
	want := p.used == pagesPerPMEG
	if want {
		p0 := p.entries[0].prot
		for i := 1; i < pagesPerPMEG; i++ {
			if p.entries[i].prot != p0 {
				want = false
				break
			}
		}
	}
	switch {
	case want && !p.super:
		p.super = true
		m.superCount++
		m.mod.Stats().Promotions.Add(1)
	case !want && p.super:
		p.super = false
		m.superCount--
		m.mod.Stats().Demotions.Add(1)
	}
}

// demoteLocked clears a PMEG's superpage status on a partial operation
// known to break it (a removal). Called with m.mu held.
func (m *sun3Map) demoteLocked(p *pmeg) {
	if p.super {
		p.super = false
		m.superCount--
		m.mod.Stats().Demotions.Add(1)
	}
}

// Enter establishes one hardware mapping, acquiring a context first if
// necessary (hardware state can exist only inside a context's MMU RAM).
func (m *sun3Map) Enter(va vmtypes.VA, pfn vmtypes.PFN, prot vmtypes.Prot, wired bool) {
	if va >= MaxUserVA {
		panic("sun3: virtual address beyond the 256MB map limit")
	}
	mod := m.mod
	mod.acquireContext(m)
	vpn := uint64(va) / HWPageSize
	mod.Stats().Enters.Add(1)
	mod.Machine().Charge(mod.Machine().Cost.PTEOp)

	m.mu.Lock()
	p := m.pmegFor(vpn, true)
	e := &p.entries[vpn%pagesPerPMEG]
	replaced := e.valid
	oldPFN := e.pfn
	if !e.valid {
		p.used++
		m.resident++
	}
	*e = pentry{pfn: pfn, prot: prot, valid: true, wired: wired}
	m.updateSuperLocked(p)
	m.mu.Unlock()

	if replaced {
		if oldPFN != pfn {
			mod.DB().RemovePV(oldPFN, m, va&^vmtypes.VA(HWPageSize-1))
		}
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
	mod.DB().AddPV(pfn, m, va&^vmtypes.VA(HWPageSize-1))
}

// Remove invalidates mappings in [start, end).
func (m *sun3Map) Remove(start, end vmtypes.VA) {
	mod := m.mod
	mod.Stats().Removes.Add(1)
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		m.mu.Lock()
		p := m.pmegFor(vpn, false)
		if p == nil {
			m.mu.Unlock()
			vpn = (vpn/pagesPerPMEG+1)*pagesPerPMEG - 1
			continue
		}
		e := &p.entries[vpn%pagesPerPMEG]
		if !e.valid {
			m.mu.Unlock()
			continue
		}
		pfn := e.pfn
		*e = pentry{}
		p.used--
		m.resident--
		m.demoteLocked(p)
		if p.used == 0 {
			delete(m.segments, vpn/pagesPerPMEG)
		}
		m.mu.Unlock()

		mod.Machine().Charge(mod.Machine().Cost.PTEOp)
		mod.DB().RemovePV(pfn, m, vmtypes.VA(vpn*HWPageSize))
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
}

// Protect reduces protection on [start, end).
func (m *sun3Map) Protect(start, end vmtypes.VA, prot vmtypes.Prot) {
	mod := m.mod
	mod.Stats().Protects.Add(1)
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		m.mu.Lock()
		p := m.pmegFor(vpn, false)
		if p == nil {
			m.mu.Unlock()
			vpn = (vpn/pagesPerPMEG+1)*pagesPerPMEG - 1
			continue
		}
		e := &p.entries[vpn%pagesPerPMEG]
		changed := false
		if e.valid {
			np := e.prot.Intersect(prot)
			changed = np != e.prot
			e.prot = np
		}
		if changed {
			m.updateSuperLocked(p)
		}
		m.mu.Unlock()
		if changed {
			mod.Machine().Charge(mod.Machine().Cost.PTEOp)
			mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), false)
		}
	}
}

// Walk performs the hardware translation (segment map, then page map).
// A map without a context has no loaded translations: everything faults
// until the context is re-acquired.
func (m *sun3Map) Walk(va vmtypes.VA) (vmtypes.PFN, vmtypes.Prot, bool) {
	mod := m.mod
	mod.Stats().Walks.Add(1)
	if !m.haveContext.Load() {
		mod.Machine().Charge(2 * mod.Machine().Cost.WalkLevel)
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	vpn := uint64(va) / HWPageSize
	p := m.pmegFor(vpn, false)
	if p != nil && p.super {
		// A promoted PMEG acts as one segment-level mapping: the segment
		// probe alone resolves the translation.
		mod.Machine().Charge(mod.Machine().Cost.WalkLevel)
	} else {
		mod.Machine().Charge(2 * mod.Machine().Cost.WalkLevel)
	}
	if p == nil || !p.entries[vpn%pagesPerPMEG].valid {
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	e := p.entries[vpn%pagesPerPMEG]
	return e.pfn, e.prot, true
}

// Extract returns the frame mapped at va (pmap_extract).
func (m *sun3Map) Extract(va vmtypes.VA) (vmtypes.PFN, bool) {
	vpn := uint64(va) / HWPageSize
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pmegFor(vpn, false)
	if p == nil || !p.entries[vpn%pagesPerPMEG].valid {
		return 0, false
	}
	return p.entries[vpn%pagesPerPMEG].pfn, true
}

// Access reports whether va is mapped (pmap_access).
func (m *sun3Map) Access(va vmtypes.VA) bool {
	_, ok := m.Extract(va)
	return ok
}

// Activate makes the map current on a CPU, competing for one of the 8
// contexts.
func (m *sun3Map) Activate(cpu *hw.CPU) {
	m.mod.acquireContext(m)
	m.ActivateOn(cpu)
}

// Deactivate unloads the map from a CPU. The context is retained — that is
// the point of contexts — until another task steals it.
func (m *sun3Map) Deactivate(cpu *hw.CPU) {
	m.DeactivateOn(cpu)
	m.mod.Machine().Charge(m.mod.Machine().Cost.TLBFlushAll)
	cpu.TLB.FlushSpace(m.Space())
}

// Collect discards non-wired hardware state (equivalent to losing the
// context voluntarily).
func (m *sun3Map) Collect() {
	m.mod.Stats().Collects.Add(1)
	m.dropHardwareState()
}

// Destroy releases the map, freeing its context.
func (m *sun3Map) Destroy() {
	if !m.Release() {
		return
	}
	mod := m.mod
	type victim struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var victims []victim
	m.mu.Lock()
	for seg, p := range m.segments {
		for i := range p.entries {
			if e := p.entries[i]; e.valid {
				victims = append(victims, victim{vpn: seg*pagesPerPMEG + uint64(i), pfn: e.pfn})
			}
		}
		m.demoteLocked(p)
		delete(m.segments, seg)
	}
	m.resident = 0
	m.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())

	mod.mu.Lock()
	if m.haveContext.Load() {
		mod.contexts[m.context] = nil
		m.haveContext.Store(false)
		m.context = -1
	}
	mod.mu.Unlock()
}

// ResidentCount returns the number of loaded hardware mappings.
func (m *sun3Map) ResidentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resident
}

// HasContext reports whether the map currently holds a hardware context.
func (m *sun3Map) HasContext() bool { return m.haveContext.Load() }

// EnterRange implements the optional pmap.RangeEnterer: one context
// acquisition and one lock hold per PMEG for a run of consecutive
// mappings, with promotion checked once per touched PMEG.
func (m *sun3Map) EnterRange(va vmtypes.VA, pfns []vmtypes.PFN, prot vmtypes.Prot, wired bool) {
	if len(pfns) == 0 {
		return
	}
	if uint64(va)%HWPageSize != 0 {
		panic("sun3: EnterRange address not hardware-page aligned")
	}
	if va+vmtypes.VA(len(pfns))*HWPageSize > MaxUserVA {
		panic("sun3: virtual address beyond the 256MB map limit")
	}
	mod := m.mod
	mod.acquireContext(m)
	mod.Stats().RangeEnters.Add(1)
	mod.Stats().Enters.Add(uint64(len(pfns)))

	type replacement struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var replaced []replacement
	startVPN := uint64(va) / HWPageSize
	for i := 0; i < len(pfns); {
		seg := (startVPN + uint64(i)) / pagesPerPMEG
		m.mu.Lock()
		p := m.pmegFor(startVPN+uint64(i), true)
		for ; i < len(pfns); i++ {
			vpn := startVPN + uint64(i)
			if vpn/pagesPerPMEG != seg {
				break
			}
			mod.Machine().Charge(mod.Machine().Cost.PTEOp)
			e := &p.entries[vpn%pagesPerPMEG]
			want := pentry{pfn: pfns[i], prot: prot, valid: true, wired: wired}
			if *e == want {
				continue
			}
			if e.valid {
				replaced = append(replaced, replacement{vpn: vpn, pfn: e.pfn})
			} else {
				p.used++
				m.resident++
			}
			*e = want
		}
		m.updateSuperLocked(p)
		m.mu.Unlock()
	}
	for _, r := range replaced {
		if r.pfn != pfns[r.vpn-startVPN] {
			mod.DB().RemovePV(r.pfn, m, vmtypes.VA(r.vpn*HWPageSize))
		}
		mod.Shootdown().InvalidatePage(m.Space(), r.vpn, m.ActiveCPUs(), true)
	}
	for i, pfn := range pfns {
		mod.DB().AddPV(pfn, m, vmtypes.VA((startVPN+uint64(i))*HWPageSize))
	}
}

// SuperSpan returns the SUN 3 promotion granule: one 128KB segment.
func (m *sun3Map) SuperSpan() uint64 { return segmentSize }

// SuperActive reports whether the PMEG containing va is promoted.
func (m *sun3Map) SuperActive(va vmtypes.VA) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.segments[uint64(va)/HWPageSize/pagesPerPMEG]
	return p != nil && p.super
}

// SuperCount returns the number of currently promoted PMEGs.
func (m *sun3Map) SuperCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.superCount
}

// CheckSuperInvariants verifies the promotion bookkeeping: each PMEG's
// used matches its count of valid entries, a PMEG is marked super exactly
// when fully mapped with uniform protection, and the map-wide counter
// matches the marked PMEGs.
func (m *sun3Map) CheckSuperInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	supers := 0
	for seg, p := range m.segments {
		used := 0
		mixed := false
		var p0 vmtypes.Prot
		for i := range p.entries {
			if !p.entries[i].valid {
				continue
			}
			if used == 0 {
				p0 = p.entries[i].prot
			} else if p.entries[i].prot != p0 {
				mixed = true
			}
			used++
		}
		if used != p.used {
			return fmt.Errorf("sun3: segment %d records used=%d but holds %d valid entries", seg, p.used, used)
		}
		uniform := used == pagesPerPMEG && !mixed
		if p.super != uniform {
			return fmt.Errorf("sun3: segment %d super=%v but full-and-uniform=%v", seg, p.super, uniform)
		}
		if p.super {
			supers++
		}
	}
	if supers != m.superCount {
		return fmt.Errorf("sun3: superCount=%d but %d segments are marked super", m.superCount, supers)
	}
	return nil
}

var _ pmap.RangeEnterer = (*sun3Map)(nil)
