package pmap

import (
	"sync/atomic"

	"machvm/internal/hw"
)

// Strategy selects how TLB consistency is maintained on a multiprocessor.
// None of the machines that ran Mach supported hardware TLB consistency,
// and none allowed a remote TLB to be referenced or modified, so §5.2
// offers exactly three software answers; all three are employed by Mach in
// different settings and all three are implemented here.
type Strategy int

const (
	// ShootImmediate forcibly interrupts every CPU that may be using a
	// shared portion of an address map so its TLB can be flushed —
	// strategy (1), for changes that are time critical and must be
	// propagated at all costs.
	ShootImmediate Strategy = iota
	// ShootDeferred postpones use of the changed mapping until all CPUs
	// have taken a timer interrupt and had a chance to flush — strategy
	// (2), used by the paging system before pageout I/O. Callers that
	// need the change committed invoke Module.Update (or the machine's
	// TickAll).
	ShootDeferred
	// ShootLazy allows temporary inconsistency — strategy (3),
	// acceptable when the semantics of the operation do not require
	// simultaneity (e.g. a protection change may reach one task's CPU
	// first and another's later). Removals are never lazy: a stale
	// translation to a reused frame would violate memory integrity, so
	// lazy demotes to deferred for removals.
	ShootLazy
)

func (s Strategy) String() string {
	switch s {
	case ShootImmediate:
		return "immediate"
	case ShootDeferred:
		return "deferred"
	case ShootLazy:
		return "lazy"
	default:
		return "unknown"
	}
}

// ShootStats counts consistency traffic.
type ShootStats struct {
	LocalFlushes    atomic.Uint64
	RemoteIPIs      atomic.Uint64
	DeferredFlushes atomic.Uint64
	LazySkips       atomic.Uint64
}

// Shooter implements the three strategies over the hw layer.
type Shooter struct {
	machine  *hw.Machine
	strategy Strategy
	stats    ShootStats
}

// NewShooter creates a shooter for the machine with the given strategy.
func NewShooter(m *hw.Machine, s Strategy) *Shooter {
	return &Shooter{machine: m, strategy: s}
}

// Strategy returns the configured strategy.
func (s *Shooter) Strategy() Strategy { return s.strategy }

// SetStrategy changes the strategy (benchmarks sweep it).
func (s *Shooter) SetStrategy(st Strategy) { s.strategy = st }

// Stats returns the shooter's counters.
func (s *Shooter) Stats() *ShootStats { return &s.stats }

// flushLocal invalidates the page in every TLB as seen from the calling
// context's own CPU set; with no notion of "current CPU" in the simulation
// the local flush is applied to the first active CPU and remote handling
// covers the rest. When active is empty nothing is stale.
func (s *Shooter) flushPageOn(cpu *hw.CPU, key hw.TLBKey) {
	s.machine.Charge(s.machine.Cost.TLBFlushPage)
	cpu.TLB.FlushPage(key)
}

// InvalidatePage propagates the invalidation of (space, vpn) to every CPU
// in active. removal distinguishes mapping removal (never lazy) from
// protection reduction (may be lazy).
func (s *Shooter) InvalidatePage(space uint32, vpn uint64, active []*hw.CPU, removal bool) {
	if len(active) == 0 {
		return
	}
	key := hw.TLBKey{Space: space, VPN: vpn}
	strategy := s.strategy
	if strategy == ShootLazy && removal {
		strategy = ShootDeferred
	}
	// The first active CPU stands for the CPU performing the operation:
	// its flush is local and always immediate.
	s.flushPageOn(active[0], key)
	s.stats.LocalFlushes.Add(1)
	for _, cpu := range active[1:] {
		switch strategy {
		case ShootImmediate:
			s.stats.RemoteIPIs.Add(1)
			s.machine.IPI(cpu, func(c *hw.CPU) {
				c.Charge(c.Machine().Cost.TLBFlushPage)
				c.TLB.FlushPage(key)
			})
		case ShootDeferred:
			s.stats.DeferredFlushes.Add(1)
			cpu.Defer(func(c *hw.CPU) {
				c.Charge(c.Machine().Cost.TLBFlushPage)
				c.TLB.FlushPage(key)
			})
		case ShootLazy:
			s.stats.LazySkips.Add(1)
		}
	}
}

// InvalidateSpace flushes an entire address space from the TLBs of the
// active CPUs (used on pmap destruction and SUN 3 context stealing).
func (s *Shooter) InvalidateSpace(space uint32, active []*hw.CPU) {
	for i, cpu := range active {
		if i == 0 || s.strategy == ShootImmediate {
			if i != 0 {
				s.stats.RemoteIPIs.Add(1)
				s.machine.IPI(cpu, func(c *hw.CPU) {
					c.Charge(c.Machine().Cost.TLBFlushAll)
					c.TLB.FlushSpace(space)
				})
				continue
			}
			s.machine.Charge(s.machine.Cost.TLBFlushAll)
			cpu.TLB.FlushSpace(space)
			s.stats.LocalFlushes.Add(1)
			continue
		}
		s.stats.DeferredFlushes.Add(1)
		cpu.Defer(func(c *hw.CPU) {
			c.Charge(c.Machine().Cost.TLBFlushAll)
			c.TLB.FlushSpace(space)
		})
	}
}

// Update forces every pending deferred flush to completion by delivering a
// timer tick to all CPUs (pmap_update).
func (s *Shooter) Update() {
	s.machine.TickAll()
}

// ModuleStats are the counters every machine-dependent module maintains.
type ModuleStats struct {
	Enters        atomic.Uint64
	Removes       atomic.Uint64
	Protects      atomic.Uint64
	Walks         atomic.Uint64
	WalkMisses    atomic.Uint64
	Collects      atomic.Uint64
	ZeroPages     atomic.Uint64
	CopyPages     atomic.Uint64
	RemoveAlls    atomic.Uint64
	CopyOnWrites  atomic.Uint64
	AliasReplaces atomic.Uint64 // RT PC: one-mapping-per-page evictions
	ContextSteals atomic.Uint64 // SUN 3: >8 active tasks compete
	RangeEnters   atomic.Uint64 // batched EnterRange calls (RangeEnterer modules)
	Promotions    atomic.Uint64 // table granules promoted to superpage status
	Demotions     atomic.Uint64 // superpages broken back to base pages
	TableBytes    atomic.Int64  // current machine-dependent table memory
	TableBytesMax atomic.Int64  // high-water mark
}

// AddTableBytes adjusts the machine-dependent table-memory accounting, a
// signal the paper uses when comparing architectures (the RT PC's inverted
// table "significantly reduced memory requirements for large programs";
// a full VAX user page table would need 8 megabytes).
func (ms *ModuleStats) AddTableBytes(delta int64) {
	v := ms.TableBytes.Add(delta)
	for {
		max := ms.TableBytesMax.Load()
		if v <= max || ms.TableBytesMax.CompareAndSwap(max, v) {
			return
		}
	}
}
