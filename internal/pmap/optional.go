package pmap

import "machvm/internal/vmtypes"

// Table 3-4 lists two exported but optional pmap routines: pmap_copy and
// pmap_pageable. "These routines need not perform any hardware function" —
// a module implements them only when doing so helps that machine.

// Copier is the optional pmap_copy(dst_pmap, src_pmap, dst_addr, len,
// src_addr): copy the specified virtual mapping. A machine whose mapping
// entries are cheap to duplicate can prewarm a child's map at fork so the
// child does not refault everything; machines where that is a bad trade
// simply do not implement the interface.
type Copier interface {
	// CopyMappings duplicates the mappings of [srcAddr, srcAddr+length)
	// into dst at dstAddr, write-protected (the caller uses this for
	// copy-on-write fork, so the copies must fault on first write).
	CopyMappings(dst Map, dstAddr vmtypes.VA, length uint64, srcAddr vmtypes.VA)
}

// Pageabler is the optional pmap_pageable(pmap, start, end, pageable):
// a hint that a range's mappings will (not) be subject to pageout, letting
// a module keep fragile structures (like VAX page-table pages) resident.
type Pageabler interface {
	Pageable(start, end vmtypes.VA, pageable bool)
}

// RangeEnterer is the optional range extension of pmap_enter: establish a
// run of consecutive hardware mappings in one call. The paper's interface
// is strictly per-page; a module implements RangeEnterer when its table
// structure lets it do materially better than a loop of Enter calls —
// batching lock holds and shootdowns per table granule, and recognizing
// when a granule has become fully and uniformly mapped so it can be
// treated as one large mapping ("superpage"). Machines with nothing to
// gain (ns32082, rtpc, tlbonly) simply do not implement the interface and
// the machine-independent layer falls back to the per-page loop.
//
// Every mapping established through EnterRange must be indistinguishable,
// through Extract/Access/Walk and the physical-to-virtual database, from
// the same mappings established by individual Enter calls; promotion is a
// module-private representation change, never a semantic one.
type RangeEnterer interface {
	// EnterRange maps len(pfns) consecutive hardware pages starting at
	// va, all with the same protection and wiring. va must be hardware-
	// page aligned; pfns[i] backs va + i*pagesize.
	EnterRange(va vmtypes.VA, pfns []vmtypes.PFN, prot vmtypes.Prot, wired bool)

	// SuperSpan returns the byte span of the module's promotion granule
	// (the VAX page-table page, the SUN 3 segment). The machine-
	// independent layer uses it to size promotion attempts.
	SuperSpan() uint64

	// SuperActive reports whether the granule containing va is currently
	// promoted, letting callers skip redundant promotion work.
	SuperActive(va vmtypes.VA) bool
}
