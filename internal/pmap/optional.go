package pmap

import "machvm/internal/vmtypes"

// Table 3-4 lists two exported but optional pmap routines: pmap_copy and
// pmap_pageable. "These routines need not perform any hardware function" —
// a module implements them only when doing so helps that machine.

// Copier is the optional pmap_copy(dst_pmap, src_pmap, dst_addr, len,
// src_addr): copy the specified virtual mapping. A machine whose mapping
// entries are cheap to duplicate can prewarm a child's map at fork so the
// child does not refault everything; machines where that is a bad trade
// simply do not implement the interface.
type Copier interface {
	// CopyMappings duplicates the mappings of [srcAddr, srcAddr+length)
	// into dst at dstAddr, write-protected (the caller uses this for
	// copy-on-write fork, so the copies must fault on first write).
	CopyMappings(dst Map, dstAddr vmtypes.VA, length uint64, srcAddr vmtypes.VA)
}

// Pageabler is the optional pmap_pageable(pmap, start, end, pageable):
// a hint that a range's mappings will (not) be subject to pageout, letting
// a module keep fragile structures (like VAX page-table pages) resident.
type Pageabler interface {
	Pageable(start, end vmtypes.VA, pageable bool)
}
