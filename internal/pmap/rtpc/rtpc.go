// Package rtpc implements the machine-dependent pmap module for the
// IBM RT PC, whose ROMP MMU uses a single system-wide inverted page table.
//
// The inverted table describes which virtual address maps to each physical
// frame; translation hashes the virtual address to query it. A full
// 4-gigabyte address space costs no extra table space (Mach benefited from
// "significantly reduced memory requirements for large programs"), but the
// design allows only one valid mapping per physical page, so sharing a
// frame between tasks triggers alias faults: each access by a different
// task evicts the previous owner's mapping and the previous owner refaults.
// Mach treats the inverted table as "a kind of large, in-memory cache for
// the RT's translation lookaside buffer" (§5.1) — the machine-independent
// layer happily re-enters whatever the table forgot, and the paper reports
// those extra faults were rare enough in practice that Mach outperformed
// ACIS 4.2a, which avoided aliasing with shared segments.
package rtpc

import (
	"sync"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/vmtypes"
)

// Hardware constants.
const (
	// HWPageSize is the RT PC hardware page size.
	HWPageSize = 2048
	// iptEntryBytes approximates one inverted-page-table entry plus its
	// hash anchor share.
	iptEntryBytes = 16
	// MaxUserVA: an RT PC task can address a full 4 gigabytes under
	// Mach (§2.1).
	MaxUserVA = vmtypes.VA(4) << 30
)

// DefaultCost approximates an IBM RT PC (~2 MIPS RISC, slow memory).
func DefaultCost() hw.CostModel {
	return hw.CostModel{
		Name:         "RT PC",
		TLBMiss:      500,
		WalkLevel:    900, // one hash probe
		MemAccess:    350,
		FaultTrap:    hw.Microseconds(140),
		Syscall:      hw.Microseconds(110),
		ZeroPerKB:    hw.Microseconds(120),
		CopyPerKB:    hw.Microseconds(240),
		PTEOp:        hw.Microseconds(4),
		MapEntryOp:   hw.Microseconds(30),
		TLBFlushPage: hw.Microseconds(3),
		TLBFlushAll:  hw.Microseconds(30),
		IPI:          hw.Microseconds(130),
		ContextLoad:  hw.Microseconds(20), // load segment registers
		TaskCreate:   hw.Milliseconds(38),
		MsgOp:        hw.Microseconds(250),
		DiskLatency:  hw.Milliseconds(30),
		DiskPerKB:    hw.Microseconds(1700),
	}
}

type hashKey struct {
	space uint32
	vpn   uint64
}

type iptEntry struct {
	valid bool
	wired bool
	owner *rtMap
	vpn   uint64
	prot  vmtypes.Prot
}

// Module is the RT PC machine-dependent module. All per-mapping state
// lives in the single inverted page table shared by every map.
type Module struct {
	pmap.ModuleBase

	mu   sync.Mutex
	ipt  []iptEntry
	hash map[hashKey]vmtypes.PFN
}

// New creates an RT PC pmap module for the machine. The inverted table is
// sized by physical memory, once, at boot.
func New(m *hw.Machine, strategy pmap.Strategy) *Module {
	if m.Mem.PageSize() != HWPageSize {
		panic("rtpc: machine must use 2048-byte hardware pages")
	}
	mod := &Module{
		ipt:  make([]iptEntry, m.Mem.NumFrames()),
		hash: make(map[hashKey]vmtypes.PFN),
	}
	mod.InitBase("RT PC", m, strategy, MaxUserVA, 0)
	mod.Stats().AddTableBytes(int64(m.Mem.NumFrames()) * iptEntryBytes)
	return mod
}

// Create makes a new physical map (pmap_create): on the RT this is just a
// set of segment-register values; the mapping state is the shared IPT.
func (mod *Module) Create() pmap.Map {
	rm := &rtMap{mod: mod}
	rm.InitCore()
	return rm
}

type rtMap struct {
	pmap.MapCore
	mod      *Module
	resident int // guarded by mod.mu
}

// Enter establishes a mapping. If the frame already holds a different
// mapping — aliasing — the old owner is evicted and will refault, which is
// exactly the RT behaviour the paper describes.
func (m *rtMap) Enter(va vmtypes.VA, pfn vmtypes.PFN, prot vmtypes.Prot, wired bool) {
	mod := m.mod
	vpn := uint64(va) / HWPageSize
	mod.Stats().Enters.Add(1)
	mod.Machine().Charge(mod.Machine().Cost.PTEOp)

	var evicted *iptEntry
	var evictedCopy iptEntry
	mod.mu.Lock()
	e := &mod.ipt[pfn]
	if e.valid && (e.owner != m || e.vpn != vpn) {
		// One valid mapping per physical page: replace the alias.
		evictedCopy = *e
		evicted = &evictedCopy
		delete(mod.hash, hashKey{space: e.owner.Space(), vpn: e.vpn})
		e.owner.resident--
		mod.Stats().AliasReplaces.Add(1)
	}
	// A task may also remap a different frame at the same virtual
	// address; drop the stale hash target if it points elsewhere.
	k := hashKey{space: m.Space(), vpn: vpn}
	if old, ok := mod.hash[k]; ok && old != pfn {
		oe := &mod.ipt[old]
		if oe.valid && oe.owner == m && oe.vpn == vpn {
			oe.valid = false
			m.resident--
			mod.DBRemoveLocked(old, m, vpn)
		}
		delete(mod.hash, k)
	}
	fresh := !(e.valid && e.owner == m && e.vpn == vpn)
	*e = iptEntry{valid: true, wired: wired, owner: m, vpn: vpn, prot: prot}
	mod.hash[k] = pfn
	if fresh {
		m.resident++
	}
	mod.mu.Unlock()

	if evicted != nil {
		mod.DB().RemovePV(pfn, evicted.owner, vmtypes.VA(evicted.vpn*HWPageSize))
		mod.Shootdown().InvalidatePage(evicted.owner.Space(), evicted.vpn, evicted.owner.ActiveCPUs(), true)
	}
	mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	mod.DB().AddPV(pfn, m, va&^vmtypes.VA(HWPageSize-1))
}

// DBRemoveLocked removes a PV entry while mod.mu is held. The PhysDB has
// its own lock, so this is safe; it exists to keep lock ordering obvious.
func (mod *Module) DBRemoveLocked(pfn vmtypes.PFN, m pmap.Map, vpn uint64) {
	mod.DB().RemovePV(pfn, m, vmtypes.VA(vpn*HWPageSize))
}

// Remove invalidates mappings in [start, end).
func (m *rtMap) Remove(start, end vmtypes.VA) {
	mod := m.mod
	mod.Stats().Removes.Add(1)
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		k := hashKey{space: m.Space(), vpn: vpn}
		mod.mu.Lock()
		pfn, ok := mod.hash[k]
		if !ok {
			mod.mu.Unlock()
			continue
		}
		e := &mod.ipt[pfn]
		if !e.valid || e.owner != m || e.vpn != vpn {
			mod.mu.Unlock()
			continue
		}
		e.valid = false
		delete(mod.hash, k)
		m.resident--
		mod.mu.Unlock()

		mod.Machine().Charge(mod.Machine().Cost.PTEOp)
		mod.DB().RemovePV(pfn, m, vmtypes.VA(vpn*HWPageSize))
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
}

// Protect reduces protection on [start, end).
func (m *rtMap) Protect(start, end vmtypes.VA, prot vmtypes.Prot) {
	mod := m.mod
	mod.Stats().Protects.Add(1)
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		k := hashKey{space: m.Space(), vpn: vpn}
		mod.mu.Lock()
		pfn, ok := mod.hash[k]
		changed := false
		if ok {
			e := &mod.ipt[pfn]
			if e.valid && e.owner == m && e.vpn == vpn {
				np := e.prot.Intersect(prot)
				changed = np != e.prot
				e.prot = np
			}
		}
		mod.mu.Unlock()
		if changed {
			mod.Machine().Charge(mod.Machine().Cost.PTEOp)
			mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), false)
		}
	}
}

// Walk performs the hardware hash lookup into the inverted table.
func (m *rtMap) Walk(va vmtypes.VA) (vmtypes.PFN, vmtypes.Prot, bool) {
	mod := m.mod
	mod.Stats().Walks.Add(1)
	mod.Machine().Charge(mod.Machine().Cost.WalkLevel)
	vpn := uint64(va) / HWPageSize
	mod.mu.Lock()
	defer mod.mu.Unlock()
	pfn, ok := mod.hash[hashKey{space: m.Space(), vpn: vpn}]
	if !ok {
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	e := mod.ipt[pfn]
	if !e.valid || e.owner != m || e.vpn != vpn {
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	return pfn, e.prot, true
}

// Extract returns the frame mapped at va (pmap_extract).
func (m *rtMap) Extract(va vmtypes.VA) (vmtypes.PFN, bool) {
	vpn := uint64(va) / HWPageSize
	m.mod.mu.Lock()
	defer m.mod.mu.Unlock()
	pfn, ok := m.mod.hash[hashKey{space: m.Space(), vpn: vpn}]
	if !ok {
		return 0, false
	}
	e := m.mod.ipt[pfn]
	if !e.valid || e.owner != m || e.vpn != vpn {
		return 0, false
	}
	return pfn, true
}

// Access reports whether va is mapped (pmap_access).
func (m *rtMap) Access(va vmtypes.VA) bool {
	_, ok := m.Extract(va)
	return ok
}

// Activate loads the map's segment registers on a CPU.
func (m *rtMap) Activate(cpu *hw.CPU) {
	m.mod.Machine().Charge(m.mod.Machine().Cost.ContextLoad)
	m.ActivateOn(cpu)
}

// Deactivate unloads the map from a CPU.
func (m *rtMap) Deactivate(cpu *hw.CPU) {
	m.DeactivateOn(cpu)
	m.mod.Machine().Charge(m.mod.Machine().Cost.TLBFlushAll)
	cpu.TLB.FlushSpace(m.Space())
}

// Collect discards this map's non-wired inverted-table entries.
func (m *rtMap) Collect() {
	mod := m.mod
	mod.Stats().Collects.Add(1)
	type victim struct {
		pfn vmtypes.PFN
		vpn uint64
	}
	var victims []victim
	mod.mu.Lock()
	for pfn := range mod.ipt {
		e := &mod.ipt[pfn]
		if e.valid && e.owner == m && !e.wired {
			victims = append(victims, victim{pfn: vmtypes.PFN(pfn), vpn: e.vpn})
			delete(mod.hash, hashKey{space: m.Space(), vpn: e.vpn})
			e.valid = false
			m.resident--
		}
	}
	mod.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

// Destroy drops a reference and clears the map's entries when it was the
// last one.
func (m *rtMap) Destroy() {
	if !m.Release() {
		return
	}
	mod := m.mod
	type victim struct {
		pfn vmtypes.PFN
		vpn uint64
	}
	var victims []victim
	mod.mu.Lock()
	for pfn := range mod.ipt {
		e := &mod.ipt[pfn]
		if e.valid && e.owner == m {
			victims = append(victims, victim{pfn: vmtypes.PFN(pfn), vpn: e.vpn})
			delete(mod.hash, hashKey{space: m.Space(), vpn: e.vpn})
			e.valid = false
		}
	}
	m.resident = 0
	mod.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

// ResidentCount returns the number of inverted-table entries owned.
func (m *rtMap) ResidentCount() int {
	m.mod.mu.Lock()
	defer m.mod.mu.Unlock()
	return m.resident
}
