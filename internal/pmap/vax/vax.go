// Package vax implements the machine-dependent pmap module for the VAX
// family — the architecture Mach was first implemented on.
//
// A VAX pmap "corresponds to a VAX page table" (§3.6). The hardware wants
// linear page tables, and a full two-gigabyte user space would need eight
// megabytes of them (§5.1); VMS paged the tables, traditional UNIX just
// limited process addressibility. Mach's solution, reproduced here, is to
// keep page tables in physical memory but construct only those parts
// needed to map what is actually in use, creating and destroying page-table
// pages as necessary to conserve space or improve runtime. That necessity,
// plus the small 512-byte VAX page, is what made the VAX's machine-
// dependent module the most complex of the ports.
package vax

import (
	"sync"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/vmtypes"
)

// Hardware constants.
const (
	// HWPageSize is the VAX hardware page ("pagelet") size.
	HWPageSize = 512
	// pteBytes is the size of one VAX page-table entry.
	pteBytes = 4
	// ptesPerChunk is the number of PTEs in one page-table page; Mach
	// allocates and frees page tables at this granularity.
	ptesPerChunk = HWPageSize / pteBytes
	// MaxUserVA is the VAX user address-space limit: the architecture
	// allows at most 2 gigabytes of user address space (§2.1).
	MaxUserVA = vmtypes.VA(2) << 30
)

// DefaultCost is a cost model plausible for a MicroVAX II-class machine
// (~0.9 VUPS). See DESIGN.md §2 for why only relative shape matters.
func DefaultCost() hw.CostModel {
	return hw.CostModel{
		Name:         "uVAX II",
		TLBMiss:      400,
		WalkLevel:    1200,
		MemAccess:    400,
		FaultTrap:    hw.Microseconds(180),
		Syscall:      hw.Microseconds(150),
		ZeroPerKB:    hw.Microseconds(160),
		CopyPerKB:    hw.Microseconds(320),
		PTEOp:        hw.Microseconds(3),
		MapEntryOp:   hw.Microseconds(40),
		TLBFlushPage: hw.Microseconds(2),
		TLBFlushAll:  hw.Microseconds(25),
		IPI:          hw.Microseconds(120),
		ContextLoad:  hw.Microseconds(60),
		TaskCreate:   hw.Milliseconds(55),
		MsgOp:        hw.Microseconds(300),
		DiskLatency:  hw.Milliseconds(28),
		DiskPerKB:    hw.Microseconds(1600),
	}
}

// Cost8200 approximates a VAX 8200 (used for the paper's file-read rows).
func Cost8200() hw.CostModel {
	c := DefaultCost()
	c.Name = "VAX 8200"
	c.FaultTrap = hw.Microseconds(120)
	c.Syscall = hw.Microseconds(100)
	c.ZeroPerKB = hw.Microseconds(90)
	c.CopyPerKB = hw.Microseconds(180)
	c.TaskCreate = hw.Milliseconds(12)
	c.DiskLatency = hw.Milliseconds(2)
	c.DiskPerKB = hw.Microseconds(1200)
	return c
}

// Cost8650 approximates a VAX 8650 (~6 VUPS; used for Table 7-2).
func Cost8650() hw.CostModel {
	c := DefaultCost()
	c.Name = "VAX 8650"
	c.TLBMiss = 100
	c.WalkLevel = 300
	c.MemAccess = 100
	c.FaultTrap = hw.Microseconds(45)
	c.Syscall = hw.Microseconds(35)
	c.ZeroPerKB = hw.Microseconds(25)
	c.CopyPerKB = hw.Microseconds(50)
	c.PTEOp = hw.Microseconds(1)
	c.MapEntryOp = hw.Microseconds(10)
	c.TaskCreate = hw.Milliseconds(4)
	c.MsgOp = hw.Microseconds(80)
	c.DiskLatency = hw.Milliseconds(5)
	c.DiskPerKB = hw.Microseconds(900)
	return c
}

// Module is the VAX machine-dependent module.
type Module struct {
	pmap.ModuleBase
}

// New creates a VAX pmap module for the machine.
func New(m *hw.Machine, strategy pmap.Strategy) *Module {
	if m.Mem.PageSize() != HWPageSize {
		panic("vax: machine must use 512-byte hardware pages")
	}
	mod := &Module{}
	mod.InitBase("VAX", m, strategy, MaxUserVA, 0)
	return mod
}

// Create makes a new, empty VAX physical map (pmap_create). The page
// table starts entirely unconstructed.
func (mod *Module) Create() pmap.Map {
	vm := &vaxMap{mod: mod, chunks: make(map[uint64]*ptChunk)}
	vm.InitCore()
	return vm
}

type pte struct {
	pfn   vmtypes.PFN
	prot  vmtypes.Prot
	valid bool
	wired bool
}

// ptChunk is one page-table page: the granule at which Mach creates and
// destroys VAX page tables.
type ptChunk struct {
	ptes [ptesPerChunk]pte
	used int
}

type vaxMap struct {
	pmap.MapCore
	mod *Module

	mu       sync.Mutex
	chunks   map[uint64]*ptChunk
	resident int
}

func (m *vaxMap) chunkFor(vpn uint64, create bool) *ptChunk {
	ci := vpn / ptesPerChunk
	c := m.chunks[ci]
	if c == nil && create {
		c = &ptChunk{}
		m.chunks[ci] = c
		// Constructing a page-table page costs a zeroed page of table
		// memory.
		m.mod.Machine().ChargeKB(m.mod.Machine().Cost.ZeroPerKB, HWPageSize)
		m.mod.Stats().AddTableBytes(HWPageSize)
	}
	return c
}

func (m *vaxMap) freeChunkIfEmpty(vpn uint64) {
	ci := vpn / ptesPerChunk
	if c := m.chunks[ci]; c != nil && c.used == 0 {
		delete(m.chunks, ci)
		m.mod.Stats().AddTableBytes(-HWPageSize)
	}
}

// Enter establishes one hardware mapping (pmap_enter).
func (m *vaxMap) Enter(va vmtypes.VA, pfn vmtypes.PFN, prot vmtypes.Prot, wired bool) {
	if va >= MaxUserVA {
		panic("vax: virtual address beyond the 2GB user limit")
	}
	mod := m.mod
	vpn := uint64(va) / HWPageSize
	mod.Stats().Enters.Add(1)
	mod.Machine().Charge(mod.Machine().Cost.PTEOp)

	want := pte{pfn: pfn, prot: prot, valid: true, wired: wired}
	m.mu.Lock()
	c := m.chunkFor(vpn, true)
	e := &c.ptes[vpn%ptesPerChunk]
	if *e == want {
		// Re-entering an identical mapping (a refault on a resident
		// page): the PTE and every TLB copy of it are already correct,
		// so no shootdown — and no PV update — is needed.
		m.mu.Unlock()
		return
	}
	replaced := e.valid
	oldPFN := e.pfn
	if !e.valid {
		c.used++
	}
	*e = want
	m.resident++
	if replaced {
		m.resident--
	}
	m.mu.Unlock()

	if replaced {
		if oldPFN != pfn {
			mod.DB().RemovePV(oldPFN, m, va&^vmtypes.VA(HWPageSize-1))
		}
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
	mod.DB().AddPV(pfn, m, va&^vmtypes.VA(HWPageSize-1))
}

// Remove invalidates mappings in [start, end) (pmap_remove).
func (m *vaxMap) Remove(start, end vmtypes.VA) {
	mod := m.mod
	mod.Stats().Removes.Add(1)
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		m.mu.Lock()
		c := m.chunkFor(vpn, false)
		if c == nil {
			// Skip the rest of an unconstructed page-table page.
			m.mu.Unlock()
			vpn = (vpn/ptesPerChunk+1)*ptesPerChunk - 1
			continue
		}
		e := &c.ptes[vpn%ptesPerChunk]
		if !e.valid {
			m.mu.Unlock()
			continue
		}
		pfn := e.pfn
		*e = pte{}
		c.used--
		m.resident--
		m.freeChunkIfEmpty(vpn)
		m.mu.Unlock()

		mod.Machine().Charge(mod.Machine().Cost.PTEOp)
		mod.DB().RemovePV(pfn, m, vmtypes.VA(vpn*HWPageSize))
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
}

// Protect reduces protection on [start, end) (pmap_protect).
func (m *vaxMap) Protect(start, end vmtypes.VA, prot vmtypes.Prot) {
	mod := m.mod
	mod.Stats().Protects.Add(1)
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		m.mu.Lock()
		c := m.chunkFor(vpn, false)
		if c == nil {
			m.mu.Unlock()
			vpn = (vpn/ptesPerChunk+1)*ptesPerChunk - 1
			continue
		}
		e := &c.ptes[vpn%ptesPerChunk]
		if !e.valid {
			m.mu.Unlock()
			continue
		}
		newProt := e.prot.Intersect(prot)
		changed := newProt != e.prot
		e.prot = newProt
		m.mu.Unlock()
		if changed {
			mod.Machine().Charge(mod.Machine().Cost.PTEOp)
			mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), false)
		}
	}
}

// Walk is the hardware translation: one extra memory reference through the
// (simulated) linear page table.
func (m *vaxMap) Walk(va vmtypes.VA) (vmtypes.PFN, vmtypes.Prot, bool) {
	mod := m.mod
	mod.Stats().Walks.Add(1)
	mod.Machine().Charge(mod.Machine().Cost.WalkLevel)
	vpn := uint64(va) / HWPageSize
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.chunkFor(vpn, false)
	if c == nil {
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	e := c.ptes[vpn%ptesPerChunk]
	if !e.valid {
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	return e.pfn, e.prot, true
}

// Extract returns the frame mapped at va (pmap_extract).
func (m *vaxMap) Extract(va vmtypes.VA) (vmtypes.PFN, bool) {
	vpn := uint64(va) / HWPageSize
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.chunkFor(vpn, false)
	if c == nil || !c.ptes[vpn%ptesPerChunk].valid {
		return 0, false
	}
	return c.ptes[vpn%ptesPerChunk].pfn, true
}

// Access reports whether va is mapped (pmap_access).
func (m *vaxMap) Access(va vmtypes.VA) bool {
	_, ok := m.Extract(va)
	return ok
}

// Activate loads this map on a CPU (pmap_activate): set P0BR/P0LR.
func (m *vaxMap) Activate(cpu *hw.CPU) {
	m.mod.Machine().Charge(m.mod.Machine().Cost.ContextLoad)
	m.ActivateOn(cpu)
}

// Deactivate unloads this map (pmap_deactivate). The VAX TLB is untagged,
// so a context switch flushes the process's translations.
func (m *vaxMap) Deactivate(cpu *hw.CPU) {
	m.DeactivateOn(cpu)
	m.mod.Machine().Charge(m.mod.Machine().Cost.TLBFlushAll)
	cpu.TLB.FlushSpace(m.Space())
}

// Collect throws away all non-wired mappings and their page-table pages to
// reclaim table space — legal because everything can be reconstructed at
// fault time.
func (m *vaxMap) Collect() {
	mod := m.mod
	mod.Stats().Collects.Add(1)
	type victim struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var victims []victim
	m.mu.Lock()
	for ci, c := range m.chunks {
		for i := range c.ptes {
			e := &c.ptes[i]
			if e.valid && !e.wired {
				victims = append(victims, victim{vpn: ci*ptesPerChunk + uint64(i), pfn: e.pfn})
				*e = pte{}
				c.used--
				m.resident--
			}
		}
		if c.used == 0 {
			delete(m.chunks, ci)
			mod.Stats().AddTableBytes(-HWPageSize)
		}
	}
	m.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

// Destroy drops a reference and frees the map when none remain
// (pmap_destroy).
func (m *vaxMap) Destroy() {
	if !m.Release() {
		return
	}
	mod := m.mod
	type victim struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var victims []victim
	m.mu.Lock()
	for ci, c := range m.chunks {
		for i := range c.ptes {
			if e := c.ptes[i]; e.valid {
				victims = append(victims, victim{vpn: ci*ptesPerChunk + uint64(i), pfn: e.pfn})
			}
		}
		delete(m.chunks, ci)
		mod.Stats().AddTableBytes(-HWPageSize)
	}
	m.resident = 0
	m.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

// ResidentCount returns the number of hardware mappings held.
func (m *vaxMap) ResidentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resident
}

// TablePages returns the number of constructed page-table pages — the
// space the on-demand construction strategy is conserving.
func (m *vaxMap) TablePages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.chunks)
}

// CopyMappings implements the optional pmap_copy of Table 3-4: duplicate
// the valid mappings of [srcAddr, srcAddr+length) into dst, write-
// protected. On the VAX this is a cheap PTE walk, so a fork can prewarm
// the child's page table and spare it a refault per resident page.
func (m *vaxMap) CopyMappings(dst pmap.Map, dstAddr vmtypes.VA, length uint64, srcAddr vmtypes.VA) {
	d, ok := dst.(*vaxMap)
	if !ok || d.mod != m.mod {
		return
	}
	delta := int64(dstAddr) - int64(srcAddr)
	endVPN := (uint64(srcAddr) + length + HWPageSize - 1) / HWPageSize
	for vpn := uint64(srcAddr) / HWPageSize; vpn < endVPN; vpn++ {
		m.mu.Lock()
		c := m.chunkFor(vpn, false)
		if c == nil {
			m.mu.Unlock()
			vpn = (vpn/ptesPerChunk+1)*ptesPerChunk - 1
			continue
		}
		e := c.ptes[vpn%ptesPerChunk]
		m.mu.Unlock()
		if !e.valid {
			continue
		}
		dva := vmtypes.VA(int64(vpn*HWPageSize) + delta)
		d.Enter(dva, e.pfn, e.prot.Intersect(vmtypes.ProtRead|vmtypes.ProtExecute), false)
	}
}

// Pageable implements the optional pmap_pageable of Table 3-4. The VAX
// module keeps all page-table pages resident, so it has no work to do —
// exactly the "need not perform any hardware function" case.
func (m *vaxMap) Pageable(start, end vmtypes.VA, pageable bool) {}

var (
	_ pmap.Copier    = (*vaxMap)(nil)
	_ pmap.Pageabler = (*vaxMap)(nil)
)
