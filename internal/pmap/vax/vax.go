// Package vax implements the machine-dependent pmap module for the VAX
// family — the architecture Mach was first implemented on.
//
// A VAX pmap "corresponds to a VAX page table" (§3.6). The hardware wants
// linear page tables, and a full two-gigabyte user space would need eight
// megabytes of them (§5.1); VMS paged the tables, traditional UNIX just
// limited process addressibility. Mach's solution, reproduced here, is to
// keep page tables in physical memory but construct only those parts
// needed to map what is actually in use, creating and destroying page-table
// pages as necessary to conserve space or improve runtime. That necessity,
// plus the small 512-byte VAX page, is what made the VAX's machine-
// dependent module the most complex of the ports.
package vax

import (
	"fmt"
	"sync"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/vmtypes"
)

// Hardware constants.
const (
	// HWPageSize is the VAX hardware page ("pagelet") size.
	HWPageSize = 512
	// pteBytes is the size of one VAX page-table entry.
	pteBytes = 4
	// ptesPerChunk is the number of PTEs in one page-table page; Mach
	// allocates and frees page tables at this granularity.
	ptesPerChunk = HWPageSize / pteBytes
	// MaxUserVA is the VAX user address-space limit: the architecture
	// allows at most 2 gigabytes of user address space (§2.1).
	MaxUserVA = vmtypes.VA(2) << 30
)

// DefaultCost is a cost model plausible for a MicroVAX II-class machine
// (~0.9 VUPS). See DESIGN.md §2 for why only relative shape matters.
func DefaultCost() hw.CostModel {
	return hw.CostModel{
		Name:         "uVAX II",
		TLBMiss:      400,
		WalkLevel:    1200,
		MemAccess:    400,
		FaultTrap:    hw.Microseconds(180),
		Syscall:      hw.Microseconds(150),
		ZeroPerKB:    hw.Microseconds(160),
		CopyPerKB:    hw.Microseconds(320),
		PTEOp:        hw.Microseconds(3),
		MapEntryOp:   hw.Microseconds(40),
		TLBFlushPage: hw.Microseconds(2),
		TLBFlushAll:  hw.Microseconds(25),
		IPI:          hw.Microseconds(120),
		ContextLoad:  hw.Microseconds(60),
		TaskCreate:   hw.Milliseconds(55),
		MsgOp:        hw.Microseconds(300),
		DiskLatency:  hw.Milliseconds(28),
		DiskPerKB:    hw.Microseconds(1600),
	}
}

// Cost8200 approximates a VAX 8200 (used for the paper's file-read rows).
func Cost8200() hw.CostModel {
	c := DefaultCost()
	c.Name = "VAX 8200"
	c.FaultTrap = hw.Microseconds(120)
	c.Syscall = hw.Microseconds(100)
	c.ZeroPerKB = hw.Microseconds(90)
	c.CopyPerKB = hw.Microseconds(180)
	c.TaskCreate = hw.Milliseconds(12)
	c.DiskLatency = hw.Milliseconds(2)
	c.DiskPerKB = hw.Microseconds(1200)
	return c
}

// Cost8650 approximates a VAX 8650 (~6 VUPS; used for Table 7-2).
func Cost8650() hw.CostModel {
	c := DefaultCost()
	c.Name = "VAX 8650"
	c.TLBMiss = 100
	c.WalkLevel = 300
	c.MemAccess = 100
	c.FaultTrap = hw.Microseconds(45)
	c.Syscall = hw.Microseconds(35)
	c.ZeroPerKB = hw.Microseconds(25)
	c.CopyPerKB = hw.Microseconds(50)
	c.PTEOp = hw.Microseconds(1)
	c.MapEntryOp = hw.Microseconds(10)
	c.TaskCreate = hw.Milliseconds(4)
	c.MsgOp = hw.Microseconds(80)
	c.DiskLatency = hw.Milliseconds(5)
	c.DiskPerKB = hw.Microseconds(900)
	return c
}

// Module is the VAX machine-dependent module.
type Module struct {
	pmap.ModuleBase
}

// New creates a VAX pmap module for the machine.
func New(m *hw.Machine, strategy pmap.Strategy) *Module {
	if m.Mem.PageSize() != HWPageSize {
		panic("vax: machine must use 512-byte hardware pages")
	}
	mod := &Module{}
	mod.InitBase("VAX", m, strategy, MaxUserVA, 0)
	return mod
}

// Create makes a new, empty VAX physical map (pmap_create). The page
// table starts entirely unconstructed.
func (mod *Module) Create() pmap.Map {
	vm := &vaxMap{mod: mod, chunks: make(map[uint64]*ptChunk, 8)}
	vm.InitCore()
	// Prime the chunk pool so a map's first page-table pages come off
	// the free list: allocation counts stay flat from the first fault.
	// Six 64KB-span chunks cover a 256KB region plus straddle.
	for i := 0; i < 6; i++ {
		vm.chunkPool = append(vm.chunkPool, &ptChunk{})
	}
	return vm
}

type pte struct {
	pfn   vmtypes.PFN
	prot  vmtypes.Prot
	valid bool
	wired bool
}

// ptChunk is one page-table page: the granule at which Mach creates and
// destroys VAX page tables. A chunk whose every PTE is valid with one
// uniform protection is "super": the closest thing 1987 VAX hardware has
// to a superpage, a page-table page the module can treat as one large
// mapping when batching range operations.
type ptChunk struct {
	ptes  [ptesPerChunk]pte
	used  int
	super bool
}

type vaxMap struct {
	pmap.MapCore
	mod *Module

	mu         sync.Mutex
	chunks     map[uint64]*ptChunk
	resident   int
	superCount int

	// chunkPool recycles empty page-table pages within this map. Safe
	// because Remove and Collect zero each PTE before used can reach
	// zero, so a pooled chunk is indistinguishable from a fresh one.
	// Destroy deliberately does not feed the pool: it drops chunks with
	// their stale PTEs intact, and the map dies with them anyway.
	chunkPool []*ptChunk
}

// maxChunkPool bounds the per-map free list of page-table pages.
const maxChunkPool = 8

func (m *vaxMap) chunkFor(vpn uint64, create bool) *ptChunk {
	ci := vpn / ptesPerChunk
	c := m.chunks[ci]
	if c == nil && create {
		if n := len(m.chunkPool); n > 0 {
			c = m.chunkPool[n-1]
			m.chunkPool[n-1] = nil
			m.chunkPool = m.chunkPool[:n-1]
		} else {
			c = &ptChunk{}
		}
		m.chunks[ci] = c
		// Constructing a page-table page costs a zeroed page of table
		// memory — charged even for a recycled chunk: in the virtual
		// cost model the hardware still hands out a zeroed table page,
		// and only the host-side Go allocation is being avoided.
		m.mod.Machine().ChargeKB(m.mod.Machine().Cost.ZeroPerKB, HWPageSize)
		m.mod.Stats().AddTableBytes(HWPageSize)
	}
	return c
}

// recycleChunkLocked pools an empty, fully zeroed chunk for the next
// chunkFor create. Called with m.mu held.
func (m *vaxMap) recycleChunkLocked(c *ptChunk) {
	if len(m.chunkPool) < maxChunkPool {
		m.chunkPool = append(m.chunkPool, c)
	}
}

func (m *vaxMap) freeChunkIfEmpty(vpn uint64) {
	ci := vpn / ptesPerChunk
	if c := m.chunks[ci]; c != nil && c.used == 0 {
		delete(m.chunks, ci)
		m.mod.Stats().AddTableBytes(-HWPageSize)
		m.recycleChunkLocked(c)
	}
}

// updateSuperLocked re-derives the chunk's superpage status after PTE
// changes: super exactly when every PTE is valid with one uniform
// protection. O(1) unless the chunk is full. Called with m.mu held.
func (m *vaxMap) updateSuperLocked(c *ptChunk) {
	want := c.used == ptesPerChunk
	if want {
		p0 := c.ptes[0].prot
		for i := 1; i < ptesPerChunk; i++ {
			if c.ptes[i].prot != p0 {
				want = false
				break
			}
		}
	}
	switch {
	case want && !c.super:
		c.super = true
		m.superCount++
		m.mod.Stats().Promotions.Add(1)
	case !want && c.super:
		c.super = false
		m.superCount--
		m.mod.Stats().Demotions.Add(1)
	}
}

// demoteLocked clears a chunk's superpage status on a partial operation
// that is known to break it (a removal). Called with m.mu held.
func (m *vaxMap) demoteLocked(c *ptChunk) {
	if c.super {
		c.super = false
		m.superCount--
		m.mod.Stats().Demotions.Add(1)
	}
}

// Enter establishes one hardware mapping (pmap_enter).
func (m *vaxMap) Enter(va vmtypes.VA, pfn vmtypes.PFN, prot vmtypes.Prot, wired bool) {
	if va >= MaxUserVA {
		panic("vax: virtual address beyond the 2GB user limit")
	}
	mod := m.mod
	vpn := uint64(va) / HWPageSize
	mod.Stats().Enters.Add(1)
	mod.Machine().Charge(mod.Machine().Cost.PTEOp)

	want := pte{pfn: pfn, prot: prot, valid: true, wired: wired}
	m.mu.Lock()
	c := m.chunkFor(vpn, true)
	e := &c.ptes[vpn%ptesPerChunk]
	if *e == want {
		// Re-entering an identical mapping (a refault on a resident
		// page): the PTE and every TLB copy of it are already correct,
		// so no shootdown — and no PV update — is needed.
		m.mu.Unlock()
		return
	}
	replaced := e.valid
	oldPFN := e.pfn
	if !e.valid {
		c.used++
	}
	*e = want
	m.resident++
	if replaced {
		m.resident--
	}
	m.updateSuperLocked(c)
	m.mu.Unlock()

	if replaced {
		if oldPFN != pfn {
			mod.DB().RemovePV(oldPFN, m, va&^vmtypes.VA(HWPageSize-1))
		}
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
	mod.DB().AddPV(pfn, m, va&^vmtypes.VA(HWPageSize-1))
}

// Remove invalidates mappings in [start, end) (pmap_remove).
func (m *vaxMap) Remove(start, end vmtypes.VA) {
	mod := m.mod
	mod.Stats().Removes.Add(1)
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		m.mu.Lock()
		c := m.chunkFor(vpn, false)
		if c == nil {
			// Skip the rest of an unconstructed page-table page.
			m.mu.Unlock()
			vpn = (vpn/ptesPerChunk+1)*ptesPerChunk - 1
			continue
		}
		e := &c.ptes[vpn%ptesPerChunk]
		if !e.valid {
			m.mu.Unlock()
			continue
		}
		pfn := e.pfn
		*e = pte{}
		c.used--
		m.resident--
		m.demoteLocked(c)
		m.freeChunkIfEmpty(vpn)
		m.mu.Unlock()

		mod.Machine().Charge(mod.Machine().Cost.PTEOp)
		mod.DB().RemovePV(pfn, m, vmtypes.VA(vpn*HWPageSize))
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
}

// Protect reduces protection on [start, end) (pmap_protect).
func (m *vaxMap) Protect(start, end vmtypes.VA, prot vmtypes.Prot) {
	mod := m.mod
	mod.Stats().Protects.Add(1)
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		m.mu.Lock()
		c := m.chunkFor(vpn, false)
		if c == nil {
			m.mu.Unlock()
			vpn = (vpn/ptesPerChunk+1)*ptesPerChunk - 1
			continue
		}
		e := &c.ptes[vpn%ptesPerChunk]
		if !e.valid {
			m.mu.Unlock()
			continue
		}
		newProt := e.prot.Intersect(prot)
		changed := newProt != e.prot
		e.prot = newProt
		if changed {
			m.updateSuperLocked(c)
		}
		m.mu.Unlock()
		if changed {
			mod.Machine().Charge(mod.Machine().Cost.PTEOp)
			mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), false)
		}
	}
}

// Walk is the hardware translation: one extra memory reference through the
// (simulated) linear page table.
func (m *vaxMap) Walk(va vmtypes.VA) (vmtypes.PFN, vmtypes.Prot, bool) {
	mod := m.mod
	mod.Stats().Walks.Add(1)
	mod.Machine().Charge(mod.Machine().Cost.WalkLevel)
	vpn := uint64(va) / HWPageSize
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.chunkFor(vpn, false)
	if c == nil {
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	e := c.ptes[vpn%ptesPerChunk]
	if !e.valid {
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	return e.pfn, e.prot, true
}

// Extract returns the frame mapped at va (pmap_extract).
func (m *vaxMap) Extract(va vmtypes.VA) (vmtypes.PFN, bool) {
	vpn := uint64(va) / HWPageSize
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.chunkFor(vpn, false)
	if c == nil || !c.ptes[vpn%ptesPerChunk].valid {
		return 0, false
	}
	return c.ptes[vpn%ptesPerChunk].pfn, true
}

// Access reports whether va is mapped (pmap_access).
func (m *vaxMap) Access(va vmtypes.VA) bool {
	_, ok := m.Extract(va)
	return ok
}

// Activate loads this map on a CPU (pmap_activate): set P0BR/P0LR.
func (m *vaxMap) Activate(cpu *hw.CPU) {
	m.mod.Machine().Charge(m.mod.Machine().Cost.ContextLoad)
	m.ActivateOn(cpu)
}

// Deactivate unloads this map (pmap_deactivate). The VAX TLB is untagged,
// so a context switch flushes the process's translations.
func (m *vaxMap) Deactivate(cpu *hw.CPU) {
	m.DeactivateOn(cpu)
	m.mod.Machine().Charge(m.mod.Machine().Cost.TLBFlushAll)
	cpu.TLB.FlushSpace(m.Space())
}

// Collect throws away all non-wired mappings and their page-table pages to
// reclaim table space — legal because everything can be reconstructed at
// fault time.
func (m *vaxMap) Collect() {
	mod := m.mod
	mod.Stats().Collects.Add(1)
	type victim struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var victims []victim
	m.mu.Lock()
	for ci, c := range m.chunks {
		for i := range c.ptes {
			e := &c.ptes[i]
			if e.valid && !e.wired {
				victims = append(victims, victim{vpn: ci*ptesPerChunk + uint64(i), pfn: e.pfn})
				*e = pte{}
				c.used--
				m.resident--
			}
		}
		if c.super && c.used != ptesPerChunk {
			m.demoteLocked(c)
		}
		if c.used == 0 {
			delete(m.chunks, ci)
			mod.Stats().AddTableBytes(-HWPageSize)
			m.recycleChunkLocked(c)
		}
	}
	m.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

// Destroy drops a reference and frees the map when none remain
// (pmap_destroy).
func (m *vaxMap) Destroy() {
	if !m.Release() {
		return
	}
	mod := m.mod
	type victim struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var victims []victim
	m.mu.Lock()
	for ci, c := range m.chunks {
		for i := range c.ptes {
			if e := c.ptes[i]; e.valid {
				victims = append(victims, victim{vpn: ci*ptesPerChunk + uint64(i), pfn: e.pfn})
			}
		}
		m.demoteLocked(c)
		delete(m.chunks, ci)
		mod.Stats().AddTableBytes(-HWPageSize)
	}
	m.resident = 0
	m.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

// ResidentCount returns the number of hardware mappings held.
func (m *vaxMap) ResidentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resident
}

// TablePages returns the number of constructed page-table pages — the
// space the on-demand construction strategy is conserving.
func (m *vaxMap) TablePages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.chunks)
}

// CopyMappings implements the optional pmap_copy of Table 3-4: duplicate
// the valid mappings of [srcAddr, srcAddr+length) into dst, write-
// protected. On the VAX this is a cheap PTE walk, so a fork can prewarm
// the child's page table and spare it a refault per resident page.
func (m *vaxMap) CopyMappings(dst pmap.Map, dstAddr vmtypes.VA, length uint64, srcAddr vmtypes.VA) {
	d, ok := dst.(*vaxMap)
	if !ok || d.mod != m.mod {
		return
	}
	delta := int64(dstAddr) - int64(srcAddr)
	endVPN := (uint64(srcAddr) + length + HWPageSize - 1) / HWPageSize
	for vpn := uint64(srcAddr) / HWPageSize; vpn < endVPN; vpn++ {
		m.mu.Lock()
		c := m.chunkFor(vpn, false)
		if c == nil {
			m.mu.Unlock()
			vpn = (vpn/ptesPerChunk+1)*ptesPerChunk - 1
			continue
		}
		e := c.ptes[vpn%ptesPerChunk]
		m.mu.Unlock()
		if !e.valid {
			continue
		}
		dva := vmtypes.VA(int64(vpn*HWPageSize) + delta)
		d.Enter(dva, e.pfn, e.prot.Intersect(vmtypes.ProtRead|vmtypes.ProtExecute), false)
	}
}

// Pageable implements the optional pmap_pageable of Table 3-4. The VAX
// module keeps all page-table pages resident, so it has no work to do —
// exactly the "need not perform any hardware function" case.
func (m *vaxMap) Pageable(start, end vmtypes.VA, pageable bool) {}

// EnterRange implements the optional pmap.RangeEnterer: establish a run of
// consecutive hardware mappings with one lock hold, one promotion check,
// and one PV pass per page-table page rather than per PTE.
func (m *vaxMap) EnterRange(va vmtypes.VA, pfns []vmtypes.PFN, prot vmtypes.Prot, wired bool) {
	if len(pfns) == 0 {
		return
	}
	if uint64(va)%HWPageSize != 0 {
		panic("vax: EnterRange address not hardware-page aligned")
	}
	if va+vmtypes.VA(len(pfns))*HWPageSize > MaxUserVA {
		panic("vax: virtual address beyond the 2GB user limit")
	}
	mod := m.mod
	mod.Stats().RangeEnters.Add(1)
	mod.Stats().Enters.Add(uint64(len(pfns)))

	type replacement struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var replaced []replacement
	startVPN := uint64(va) / HWPageSize
	for i := 0; i < len(pfns); {
		ci := (startVPN + uint64(i)) / ptesPerChunk
		m.mu.Lock()
		c := m.chunkFor(startVPN+uint64(i), true)
		for ; i < len(pfns); i++ {
			vpn := startVPN + uint64(i)
			if vpn/ptesPerChunk != ci {
				break
			}
			mod.Machine().Charge(mod.Machine().Cost.PTEOp)
			e := &c.ptes[vpn%ptesPerChunk]
			want := pte{pfn: pfns[i], prot: prot, valid: true, wired: wired}
			if *e == want {
				continue
			}
			if e.valid {
				replaced = append(replaced, replacement{vpn: vpn, pfn: e.pfn})
			} else {
				c.used++
				m.resident++
			}
			*e = want
		}
		m.updateSuperLocked(c)
		m.mu.Unlock()
	}
	for _, r := range replaced {
		if r.pfn != pfns[r.vpn-startVPN] {
			mod.DB().RemovePV(r.pfn, m, vmtypes.VA(r.vpn*HWPageSize))
		}
		mod.Shootdown().InvalidatePage(m.Space(), r.vpn, m.ActiveCPUs(), true)
	}
	for i, pfn := range pfns {
		mod.DB().AddPV(pfn, m, vmtypes.VA((startVPN+uint64(i))*HWPageSize))
	}
}

// SuperSpan returns the VAX promotion granule: one page-table page's span.
func (m *vaxMap) SuperSpan() uint64 { return ptesPerChunk * HWPageSize }

// SuperActive reports whether the chunk containing va is promoted.
func (m *vaxMap) SuperActive(va vmtypes.VA) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.chunks[uint64(va)/HWPageSize/ptesPerChunk]
	return c != nil && c.super
}

// SuperCount returns the number of currently promoted page-table pages.
func (m *vaxMap) SuperCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.superCount
}

// CheckSuperInvariants verifies the bookkeeping the promotion machinery
// relies on: each chunk's used matches its count of valid PTEs, a chunk is
// marked super exactly when fully mapped with uniform protection, and the
// map-wide super counter matches the marked chunks.
func (m *vaxMap) CheckSuperInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	supers := 0
	for ci, c := range m.chunks {
		used := 0
		mixed := false
		var p0 vmtypes.Prot
		for i := range c.ptes {
			if !c.ptes[i].valid {
				continue
			}
			if used == 0 {
				p0 = c.ptes[i].prot
			} else if c.ptes[i].prot != p0 {
				mixed = true
			}
			used++
		}
		if used != c.used {
			return fmt.Errorf("vax: chunk %d records used=%d but holds %d valid PTEs", ci, c.used, used)
		}
		uniform := used == ptesPerChunk && !mixed
		if c.super != uniform {
			return fmt.Errorf("vax: chunk %d super=%v but full-and-uniform=%v", ci, c.super, uniform)
		}
		if c.super {
			supers++
		}
	}
	if supers != m.superCount {
		return fmt.Errorf("vax: superCount=%d but %d chunks are marked super", m.superCount, supers)
	}
	return nil
}

var (
	_ pmap.Copier       = (*vaxMap)(nil)
	_ pmap.Pageabler    = (*vaxMap)(nil)
	_ pmap.RangeEnterer = (*vaxMap)(nil)
)
