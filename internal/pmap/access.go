package pmap

import (
	"machvm/internal/hw"
	"machvm/internal/vmtypes"
)

// AccessResult is the outcome of one hardware memory access attempt.
type AccessResult struct {
	// PFN is the frame the access resolved to (valid when Fault is
	// FaultNone).
	PFN vmtypes.PFN
	// Fault is the MMU's verdict.
	Fault vmtypes.FaultKind
	// Reported is the access type the MMU *reported* — on the NS32082
	// read-modify-write faults are always reported as read faults
	// (§5.1), so Reported may differ from the real access.
	Reported vmtypes.Prot
	// MappingProt is the protection of the faulting mapping, if one was
	// present (used by the machine-dependent fault-correction hook).
	MappingProt vmtypes.Prot
	// TLBHit reports whether the TLB satisfied the translation.
	TLBHit bool
}

// Access performs one hardware access of the given type at va through
// cpu's TLB and m's translation structures, charging costs as the real
// machine would. Costs accumulate in cpu's local charge buffer (this is
// a per-CPU hardware event) and reach the global clock at the caller's
// batch boundary. It does not resolve faults — that is the
// machine-independent fault handler's job.
func Access(mod Module, cpu *hw.CPU, m Map, va vmtypes.VA, access vmtypes.Prot) AccessResult {
	machine := mod.Machine()
	pageSize := uint64(machine.Mem.PageSize())
	vpn := uint64(va) / pageSize
	key := hw.TLBKey{Space: m.Space(), VPN: vpn}

	if e, hit := cpu.TLB.Lookup(key); hit {
		cpu.Charge(machine.Cost.MemAccess)
		if e.Prot.Allows(access) {
			mod.MarkAccess(e.PFN, access.Allows(vmtypes.ProtWrite))
			return AccessResult{PFN: e.PFN, Fault: vmtypes.FaultNone, Reported: access, TLBHit: true}
		}
		// A protection mismatch in the TLB may be stale (the mapping
		// was upgraded but this CPU was not shot down — legitimate
		// under the lazy strategy). Hardware refaults; the effect is a
		// flush of the stale entry and a fresh walk.
		cpu.TLB.FlushPage(key)
	}

	cpu.Charge(machine.Cost.TLBMiss)
	pfn, prot, ok := m.Walk(va)
	if !ok {
		return AccessResult{Fault: vmtypes.FaultTranslation, Reported: mod.ReportFault(access)}
	}
	if !prot.Allows(access) {
		return AccessResult{
			Fault:       vmtypes.FaultProtection,
			Reported:    mod.ReportFault(access),
			MappingProt: prot,
		}
	}
	cpu.TLB.Insert(key, hw.TLBEntry{PFN: pfn, Prot: prot})
	cpu.Charge(machine.Cost.MemAccess)
	mod.MarkAccess(pfn, access.Allows(vmtypes.ProtWrite))
	return AccessResult{PFN: pfn, Fault: vmtypes.FaultNone, Reported: access}
}
