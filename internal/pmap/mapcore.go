package pmap

import (
	"sync"
	"sync/atomic"

	"machvm/internal/hw"
)

var spaceCounter atomic.Uint32

// AllocSpace returns a fresh address-space identifier for TLB tagging.
func AllocSpace() uint32 { return spaceCounter.Add(1) }

// MapCore is the state every machine-dependent Map shares: a space
// identifier, a reference count, and the set of CPUs the map is active on.
// It is embedded by each machine's map implementation.
type MapCore struct {
	space uint32
	refs  atomic.Int32

	activeMu sync.Mutex
	active   []*hw.CPU
	// activeSnap is a copy-on-write snapshot of active, rebuilt on every
	// (rare) activate/deactivate so the hot shootdown paths can read the
	// CPU set without locking or allocating. The slice behind the pointer
	// is immutable: readers iterate it, never mutate or retain it.
	activeSnap atomic.Pointer[[]*hw.CPU]
}

// InitCore initialises the core with a fresh space and one reference.
func (mc *MapCore) InitCore() {
	mc.space = AllocSpace()
	mc.refs.Store(1)
}

// Space returns the TLB space identifier.
func (mc *MapCore) Space() uint32 { return mc.space }

// Reference adds a reference (pmap_reference).
func (mc *MapCore) Reference() { mc.refs.Add(1) }

// Release drops a reference and reports whether it was the last.
func (mc *MapCore) Release() bool { return mc.refs.Add(-1) <= 0 }

// Refs returns the current reference count.
func (mc *MapCore) Refs() int32 { return mc.refs.Load() }

// ActivateOn records that cpu is now running with this map.
func (mc *MapCore) ActivateOn(cpu *hw.CPU) {
	mc.activeMu.Lock()
	defer mc.activeMu.Unlock()
	for _, c := range mc.active {
		if c == cpu {
			return
		}
	}
	mc.active = append(mc.active, cpu)
	mc.snapLocked()
	cpu.SetActiveSpace(mc.space)
}

// snapLocked rebuilds the immutable active-CPU snapshot; activeMu held.
func (mc *MapCore) snapLocked() {
	snap := make([]*hw.CPU, len(mc.active))
	copy(snap, mc.active)
	mc.activeSnap.Store(&snap)
}

// DeactivateOn records that cpu no longer runs with this map.
func (mc *MapCore) DeactivateOn(cpu *hw.CPU) {
	mc.activeMu.Lock()
	defer mc.activeMu.Unlock()
	for i, c := range mc.active {
		if c == cpu {
			mc.active[i] = mc.active[len(mc.active)-1]
			mc.active = mc.active[:len(mc.active)-1]
			mc.snapLocked()
			return
		}
	}
}

// ActiveCPUs returns a snapshot of the CPUs this map is active on.
// Full information as to which processors are currently using which maps
// is provided to pmap from machine-independent code (§3.6). The returned
// slice is a shared immutable snapshot (copy-on-write, refreshed by
// ActivateOn/DeactivateOn): callers iterate it but must not mutate or
// retain it, which keeps per-page shootdowns allocation-free.
func (mc *MapCore) ActiveCPUs() []*hw.CPU {
	if snap := mc.activeSnap.Load(); snap != nil {
		return *snap
	}
	return nil
}

// IsActive reports whether any CPU currently uses the map.
func (mc *MapCore) IsActive() bool {
	mc.activeMu.Lock()
	defer mc.activeMu.Unlock()
	return len(mc.active) > 0
}
