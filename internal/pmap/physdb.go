package pmap

import (
	"sync"

	"machvm/internal/vmtypes"
)

// PV is one physical-to-virtual entry: a map and the virtual address at
// which it holds a given physical page. The pv lists let the physical-page
// operations (RemoveAll, CopyOnWrite) find every mapping of a frame.
type PV struct {
	Map Map
	VA  vmtypes.VA
}

type frameState struct {
	// mu guards this frame's entry only: the database is striped
	// per-frame so that faults entering mappings for unrelated frames
	// never contend (every fault crosses AddPV hwRatio times).
	mu sync.Mutex
	// pvs starts as a capacity-1 slice over inline storage (see
	// NewPhysDB), so the common case — a frame mapped in exactly one
	// place — appends without allocating; shared frames grow onto the
	// heap as before.
	pvs        []PV
	pv0        [1]PV
	modified   bool
	referenced bool
}

// PhysDB is the per-machine physical page database shared by all the pmap
// modules: reverse (physical-to-virtual) mappings plus the modify and
// reference bits the paper's Table 3-3 groups under "modify/reference bit
// maintenance". Locking is per frame.
type PhysDB struct {
	frames []frameState
}

// NewPhysDB creates a database covering nframes hardware frames.
func NewPhysDB(nframes int) *PhysDB {
	db := &PhysDB{frames: make([]frameState, nframes)}
	for i := range db.frames {
		fs := &db.frames[i]
		fs.pvs = fs.pv0[:0:1]
	}
	return db
}

func (db *PhysDB) valid(pfn vmtypes.PFN) bool { return pfn < vmtypes.PFN(len(db.frames)) }

// AddPV records that m maps pfn at va. Duplicate (m, va) pairs are
// coalesced.
func (db *PhysDB) AddPV(pfn vmtypes.PFN, m Map, va vmtypes.VA) {
	if !db.valid(pfn) {
		return
	}
	fs := &db.frames[pfn]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, pv := range fs.pvs {
		if pv.Map == m && pv.VA == va {
			return
		}
	}
	fs.pvs = append(fs.pvs, PV{Map: m, VA: va})
}

// RemovePV forgets the (m, va) mapping of pfn.
func (db *PhysDB) RemovePV(pfn vmtypes.PFN, m Map, va vmtypes.VA) {
	if !db.valid(pfn) {
		return
	}
	fs := &db.frames[pfn]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i, pv := range fs.pvs {
		if pv.Map == m && pv.VA == va {
			fs.pvs[i] = fs.pvs[len(fs.pvs)-1]
			fs.pvs = fs.pvs[:len(fs.pvs)-1]
			return
		}
	}
}

// PVs returns a snapshot of the mappings of pfn. The snapshot is safe to
// iterate while the underlying lists change (RemoveAll mutates them).
func (db *PhysDB) PVs(pfn vmtypes.PFN) []PV {
	if !db.valid(pfn) {
		return nil
	}
	fs := &db.frames[pfn]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]PV, len(fs.pvs))
	copy(out, fs.pvs)
	return out
}

// PVCount returns how many maps currently hold pfn.
func (db *PhysDB) PVCount(pfn vmtypes.PFN) int {
	if !db.valid(pfn) {
		return 0
	}
	fs := &db.frames[pfn]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.pvs)
}

// MarkAccess sets the reference bit, and the modify bit if write is true.
func (db *PhysDB) MarkAccess(pfn vmtypes.PFN, write bool) {
	if !db.valid(pfn) {
		return
	}
	fs := &db.frames[pfn]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.referenced = true
	if write {
		fs.modified = true
	}
}

// IsModified reports the modify bit.
func (db *PhysDB) IsModified(pfn vmtypes.PFN) bool {
	if !db.valid(pfn) {
		return false
	}
	fs := &db.frames[pfn]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.modified
}

// ClearModify clears the modify bit.
func (db *PhysDB) ClearModify(pfn vmtypes.PFN) {
	if !db.valid(pfn) {
		return
	}
	fs := &db.frames[pfn]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.modified = false
}

// IsReferenced reports the reference bit.
func (db *PhysDB) IsReferenced(pfn vmtypes.PFN) bool {
	if !db.valid(pfn) {
		return false
	}
	fs := &db.frames[pfn]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.referenced
}

// ClearReference clears the reference bit.
func (db *PhysDB) ClearReference(pfn vmtypes.PFN) {
	if !db.valid(pfn) {
		return
	}
	fs := &db.frames[pfn]
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.referenced = false
}
