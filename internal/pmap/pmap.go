// Package pmap defines the machine-independent/machine-dependent interface
// of the paper's §3.6 (Tables 3-3 and 3-4) and the helpers shared by the
// machine-dependent modules in its subpackages.
//
// The contract mirrors the paper's unusual property: a pmap need not keep
// track of all currently valid mappings. Virtual-to-physical mappings may
// be thrown away at almost any time (Collect, context stealing on the
// SUN 3, alias replacement on the IBM RT PC), and new mappings need not be
// made immediately, because all virtual memory information can be
// reconstructed at fault time from the machine-independent structures.
// The only mappings that must stay complete are the kernel's own; this
// simulation's "kernel" addresses physical frames directly, so that
// obligation is discharged by construction.
package pmap

import (
	"machvm/internal/hw"
	"machvm/internal/vmtypes"
)

// Map is one task's physical address map: the per-address-space half of
// the pmap interface (pmap_create .. pmap_deactivate in Table 3-3).
//
// All addresses are in hardware pages; the machine-independent layer is
// responsible for decomposing Mach pages (a power-of-two multiple of the
// hardware page size) into hardware-page operations.
type Map interface {
	// Enter establishes a mapping from va to pfn with the given
	// protection (pmap_enter). Entering over an existing mapping
	// replaces it. Wired mappings survive Collect.
	Enter(va vmtypes.VA, pfn vmtypes.PFN, prot vmtypes.Prot, wired bool)

	// Remove invalidates all mappings in [start, end) (pmap_remove).
	Remove(start, end vmtypes.VA)

	// Protect sets the protection on [start, end) to at most prot
	// (pmap_protect). Protection can only be reduced through this call;
	// raising protection is done by re-entering the mapping at fault
	// time.
	Protect(start, end vmtypes.VA, prot vmtypes.Prot)

	// Extract returns the frame a virtual address maps to, if any
	// (pmap_extract); Access reports whether the address is mapped
	// (pmap_access). These are software queries and charge nothing.
	Extract(va vmtypes.VA) (vmtypes.PFN, bool)
	Access(va vmtypes.VA) bool

	// Walk performs the hardware translation: the table walk (or hash
	// probe) the MMU would do on a TLB miss. It charges walk costs and
	// returns the frame and the protection of the mapping.
	Walk(va vmtypes.VA) (vmtypes.PFN, vmtypes.Prot, bool)

	// Activate and Deactivate track which CPUs are using this map
	// (pmap_activate / pmap_deactivate). The machine-independent side
	// supplies full information about which processors use which maps
	// (§3.6); the module uses it to target TLB invalidations.
	Activate(cpu *hw.CPU)
	Deactivate(cpu *hw.CPU)

	// Collect garbage-collects non-wired mapping state to save space or
	// time, as the paper permits. Subsequent accesses refault and the
	// machine-independent layer re-enters the mappings.
	Collect()

	// Space returns the address-space identifier used to tag TLB
	// entries belonging to this map.
	Space() uint32

	// Reference and Destroy manage the map's life
	// (pmap_reference / pmap_destroy).
	Reference()
	Destroy()

	// ResidentCount returns the number of hardware mappings currently
	// held (an accounting aid, not part of the historical interface).
	ResidentCount() int
}

// Module is the per-machine half of the interface: the operations indexed
// by physical page (pmap_remove_all, pmap_copy_on_write, pmap_zero_page,
// pmap_copy_page, modify/reference bit maintenance) plus machine limits.
type Module interface {
	// Name identifies the architecture, e.g. "VAX".
	Name() string

	// Machine returns the simulated hardware this module drives.
	Machine() *hw.Machine

	// Create makes a new, empty physical map (pmap_create).
	Create() Map

	// RemoveAll removes a physical page from every map that holds it
	// (pmap_remove_all; used by pageout).
	RemoveAll(pfn vmtypes.PFN)

	// CopyOnWrite revokes write access to a physical page in every map
	// (pmap_copy_on_write; used by virtual copy of shared pages).
	CopyOnWrite(pfn vmtypes.PFN)

	// ZeroPage zero-fills and CopyPage copies physical pages
	// (pmap_zero_page / pmap_copy_page).
	ZeroPage(pfn vmtypes.PFN)
	CopyPage(src, dst vmtypes.PFN)

	// Modify/reference bit maintenance. MarkAccess is the simulation's
	// stand-in for the MMU setting bits on access.
	IsModified(pfn vmtypes.PFN) bool
	ClearModify(pfn vmtypes.PFN)
	IsReferenced(pfn vmtypes.PFN) bool
	ClearReference(pfn vmtypes.PFN)
	MarkAccess(pfn vmtypes.PFN, write bool)

	// Update forces all delayed invalidations to completion
	// (pmap_update: "one pmap system"). With the deferred shootdown
	// strategy this delivers the pending timer-tick flushes.
	Update()

	// ReportFault translates the real access into what this machine's
	// MMU would report. The NS32082 reports read-modify-write faults as
	// read faults (§5.1); other machines report faithfully.
	ReportFault(real vmtypes.Prot) vmtypes.Prot

	// CorrectFaultAccess is the machine-dependent workaround hook: given
	// the reported access and the protection the faulting mapping
	// carried, it returns the access the fault handler should service.
	CorrectFaultAccess(reported, mappingProt vmtypes.Prot) vmtypes.Prot

	// MaxVA returns the highest usable virtual address + 1 for a user
	// map (the NS32082 can address only 16 megabytes per page table).
	MaxVA() vmtypes.VA

	// MaxFrames returns the number of physical frames this MMU can
	// address (the NS32082 caps physical memory at 32 megabytes);
	// frames at or beyond the limit are unusable.
	MaxFrames() int

	// Shootdown returns the module's TLB consistency machinery.
	Shootdown() *Shooter

	// Stats returns the module-wide counters.
	Stats() *ModuleStats
}
