package pmap_test

// Model-based property tests for every machine-dependent module: random
// Enter/Remove/Protect/Collect sequences against a flat reference model.
// Because a pmap is allowed to forget mappings (and the RT PC *must*
// forget on alias), the property is one-sided where forgetting is legal:
// anything the pmap still reports must match the model; wired mappings
// must never be forgotten; and after Remove nothing may remain.

import (
	"math/rand"
	"testing"

	"machvm/internal/pmap"
	"machvm/internal/vmtypes"
)

type modelMapping struct {
	pfn   vmtypes.PFN
	prot  vmtypes.Prot
	wired bool
}

func TestPmapModelProperty(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		machine, mod := newTestMachine(a, 1)
		_ = machine
		pm := mod.Create()
		defer pm.Destroy()
		ps := uint64(a.hwPageSize)

		rng := rand.New(rand.NewSource(1234))
		model := make(map[uint64]modelMapping) // vpn -> mapping
		// Distinct pfn per vpn avoids RT PC aliasing (tested on its own).
		pfnFor := func(vpn uint64) vmtypes.PFN { return vmtypes.PFN(vpn % uint64(a.frames)) }

		const vpnSpace = 256
		const steps = 2000
		for i := 0; i < steps; i++ {
			vpn := uint64(rng.Intn(vpnSpace))
			va := vmtypes.VA(vpn * ps)
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // enter
				prot := []vmtypes.Prot{vmtypes.ProtRead, vmtypes.ProtDefault, vmtypes.ProtAll}[rng.Intn(3)]
				wired := rng.Intn(10) == 0
				pm.Enter(va, pfnFor(vpn), prot, wired)
				model[vpn] = modelMapping{pfn: pfnFor(vpn), prot: prot, wired: wired}
			case 4, 5: // remove a small range
				n := uint64(rng.Intn(4) + 1)
				pm.Remove(va, va+vmtypes.VA(n*ps))
				for d := uint64(0); d < n; d++ {
					delete(model, vpn+d)
				}
			case 6: // protect (reduce)
				n := uint64(rng.Intn(4) + 1)
				pm.Protect(va, va+vmtypes.VA(n*ps), vmtypes.ProtRead)
				for d := uint64(0); d < n; d++ {
					if mm, ok := model[vpn+d]; ok {
						mm.prot = mm.prot.Intersect(vmtypes.ProtRead)
						model[vpn+d] = mm
					}
				}
			case 8: // range enter (EnterRange or the MI per-page fallback)
				n := uint64(rng.Intn(6) + 2)
				if vpn+n > vpnSpace {
					n = vpnSpace - vpn
				}
				prot := []vmtypes.Prot{vmtypes.ProtRead, vmtypes.ProtDefault, vmtypes.ProtAll}[rng.Intn(3)]
				pfns := make([]vmtypes.PFN, n)
				for d := range pfns {
					pfns[d] = pfnFor(vpn + uint64(d))
				}
				enterRange(pm, va, pfns, vmtypes.VA(ps), prot, false)
				for d := uint64(0); d < n; d++ {
					model[vpn+d] = modelMapping{pfn: pfnFor(vpn + d), prot: prot}
				}
				if sm, ok := pm.(superMap); ok {
					if err := sm.CheckSuperInvariants(); err != nil {
						t.Fatalf("%s: superpage invariants after EnterRange: %v", a.name, err)
					}
				}
			case 7: // collect: pmap may forget all non-wired mappings
				pm.Collect()
				for v, mm := range model {
					if !mm.wired {
						delete(model, v)
					}
				}
				// Note: after Collect the pmap must still hold the
				// wired ones — verified below every iteration.
			default: // verify a random probe
				checkVPN := uint64(rng.Intn(vpnSpace))
				verifyVPN(t, a, pm, model, checkVPN, ps)
			}
		}
		// Full final sweep.
		for vpn := uint64(0); vpn < vpnSpace; vpn++ {
			verifyVPN(t, a, pm, model, vpn, ps)
		}
	})
}

// verifyVPN enforces the one-sided contract described above.
func verifyVPN(t *testing.T, a testArch, pm pmap.Map, model map[uint64]modelMapping, vpn uint64, ps uint64) {
	t.Helper()
	va := vmtypes.VA(vpn * ps)
	pfn, ok := pm.Extract(va)
	mm, inModel := model[vpn]
	switch {
	case ok && !inModel:
		t.Fatalf("%s: pmap invents mapping for vpn %d", a.name, vpn)
	case ok && pfn != mm.pfn:
		t.Fatalf("%s: vpn %d maps to %d, model says %d", a.name, vpn, pfn, mm.pfn)
	case !ok && inModel && mm.wired:
		t.Fatalf("%s: wired mapping for vpn %d was forgotten", a.name, vpn)
	case !ok && inModel:
		// Forgetting a non-wired mapping is legal (tlbonly evicts,
		// sun3 loses contexts); the model just forgives it.
		delete(model, vpn)
	}
	if ok {
		wpfn, wprot, wok := pm.Walk(va)
		if !wok || wpfn != pfn {
			t.Fatalf("%s: Walk and Extract disagree at vpn %d", a.name, vpn)
		}
		if wprot&^mm.prot != 0 {
			t.Fatalf("%s: vpn %d prot %v exceeds model %v", a.name, vpn, wprot, mm.prot)
		}
	}
}

func TestPmapDestroyLeavesNothing(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		_, mod := newTestMachine(a, 1)
		pm := mod.Create()
		ps := vmtypes.VA(a.hwPageSize)
		for i := 0; i < 64; i++ {
			pm.Enter(vmtypes.VA(i)*ps, vmtypes.PFN(i%a.frames), vmtypes.ProtDefault, i%5 == 0)
		}
		pm.Destroy()
		// A second map must see a pristine physical database: no stale
		// reverse mappings cause spurious invalidations.
		pm2 := mod.Create()
		defer pm2.Destroy()
		for i := 0; i < 64; i++ {
			if got := mod.Stats().RemoveAlls.Load(); got != 0 {
				break
			}
			mod.RemoveAll(vmtypes.PFN(i % a.frames))
		}
		if pm2.ResidentCount() != 0 {
			t.Fatal("fresh map shows residents")
		}
	})
}

func TestReferenceCountingKeepsMapAlive(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		_, mod := newTestMachine(a, 1)
		pm := mod.Create()
		ps := vmtypes.VA(a.hwPageSize)
		pm.Enter(ps, 1, vmtypes.ProtDefault, false)
		pm.Reference()
		pm.Destroy() // drops to 1: must stay alive
		if !pm.Access(ps) {
			t.Fatal("map destroyed while referenced")
		}
		pm.Destroy() // now it goes
		if pm.Access(ps) {
			t.Fatal("map survived final destroy")
		}
	})
}

func TestPhysDBPVMaintenance(t *testing.T) {
	a := allArchs()[0] // vax
	_, mod := newTestMachine(a, 1)
	vaxMod := mod.(interface{ DB() *pmap.PhysDB })
	db := vaxMod.DB()
	pm1 := mod.Create()
	pm2 := mod.Create()
	defer pm1.Destroy()
	defer pm2.Destroy()
	ps := vmtypes.VA(a.hwPageSize)

	pm1.Enter(ps, 5, vmtypes.ProtDefault, false)
	pm2.Enter(3*ps, 5, vmtypes.ProtDefault, false)
	if db.PVCount(5) != 2 {
		t.Fatalf("PVCount = %d; want 2", db.PVCount(5))
	}
	pvs := db.PVs(5)
	if len(pvs) != 2 {
		t.Fatal("PVs snapshot wrong")
	}
	pm1.Remove(ps, 2*ps)
	if db.PVCount(5) != 1 {
		t.Fatalf("PVCount after remove = %d", db.PVCount(5))
	}
	// Duplicate AddPV coalesces.
	db.AddPV(7, pm1, ps)
	db.AddPV(7, pm1, ps)
	if db.PVCount(7) != 1 {
		t.Fatal("duplicate PV not coalesced")
	}
	// Out-of-range frames are ignored, not fatal.
	db.AddPV(vmtypes.PFN(1<<40), pm1, ps)
	db.MarkAccess(vmtypes.PFN(1<<40), true)
	if db.IsModified(vmtypes.PFN(1 << 40)) {
		t.Fatal("out-of-range frame tracked")
	}
}

func TestShooterStats(t *testing.T) {
	a := allArchs()[4]
	machine, mod := newTestMachine(a, 2)
	sh := mod.Shootdown()
	pm := mod.Create()
	defer pm.Destroy()
	for _, c := range machine.CPUs() {
		pm.Activate(c)
	}
	ps := vmtypes.VA(a.hwPageSize)
	pm.Enter(ps, 1, vmtypes.ProtDefault, false)
	// A fresh Enter has nothing stale to shoot; Remove does.
	pm.Remove(ps, 2*ps)
	if sh.Stats().LocalFlushes.Load() == 0 {
		t.Fatal("no local flushes recorded")
	}
	if sh.Stats().RemoteIPIs.Load() == 0 {
		t.Fatal("immediate strategy should record remote IPIs with 2 active CPUs")
	}
}
