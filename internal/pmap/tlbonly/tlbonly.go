// Package tlbonly implements the pmap module for a machine that provides
// only an easily manipulated TLB and no in-memory hardware-defined mapping
// structure — the situation the paper describes for the IBM RP3 simulator
// ("a version of Mach has already run on a simulator for the IBM RP3 which
// assumed only TLB hardware support", §5).
//
// In principle Mach needs no in-memory hardware-defined data structure at
// all: every fault can be served from the machine-independent structures.
// This module demonstrates that minimum. It keeps only a small, fixed-size
// software refill cache — the moral equivalent of the TLB-miss handler's
// scratch state — and discards entries from it freely, which is legal
// because the machine-independent layer reconstructs any mapping at fault
// time. It is by far the smallest pmap module, supporting the paper's
// point that such machines "would need little code to be written".
package tlbonly

import (
	"sync"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/vmtypes"
)

// Hardware constants.
const (
	// HWPageSize is the hardware page size (RP3-like).
	HWPageSize = 4096
	// cacheEntries bounds the software refill cache per map.
	cacheEntries = 1024
	// MaxUserVA is a full 32-bit address space.
	MaxUserVA = vmtypes.VA(4) << 30
)

// DefaultCost approximates one RP3-class processor node.
func DefaultCost() hw.CostModel {
	return hw.CostModel{
		Name:         "RP3 (TLB-only)",
		TLBMiss:      800, // miss traps to software
		WalkLevel:    700, // software refill lookup
		MemAccess:    300,
		FaultTrap:    hw.Microseconds(100),
		Syscall:      hw.Microseconds(80),
		ZeroPerKB:    hw.Microseconds(70),
		CopyPerKB:    hw.Microseconds(140),
		PTEOp:        hw.Microseconds(1),
		MapEntryOp:   hw.Microseconds(25),
		TLBFlushPage: hw.Microseconds(2),
		TLBFlushAll:  hw.Microseconds(15),
		IPI:          hw.Microseconds(60),
		ContextLoad:  hw.Microseconds(10),
		TaskCreate:   hw.Milliseconds(8),
		MsgOp:        hw.Microseconds(120),
		DiskLatency:  hw.Milliseconds(25),
		DiskPerKB:    hw.Microseconds(1000),
	}
}

// Module is the TLB-only machine-dependent module.
type Module struct {
	pmap.ModuleBase
}

// New creates a TLB-only pmap module for the machine.
func New(m *hw.Machine, strategy pmap.Strategy) *Module {
	if m.Mem.PageSize() != HWPageSize {
		panic("tlbonly: machine must use 4096-byte hardware pages")
	}
	mod := &Module{}
	mod.InitBase("TLB-only", m, strategy, MaxUserVA, 0)
	return mod
}

// Create makes a new physical map: just a refill cache.
func (mod *Module) Create() pmap.Map {
	tm := &tlbMap{mod: mod, cache: make(map[uint64]centry, cacheEntries)}
	tm.InitCore()
	return tm
}

type centry struct {
	pfn   vmtypes.PFN
	prot  vmtypes.Prot
	wired bool
}

type tlbMap struct {
	pmap.MapCore
	mod *Module

	mu    sync.Mutex
	cache map[uint64]centry
	fifo  []uint64
}

// Enter records a mapping in the refill cache, evicting freely when full —
// evicted mappings simply refault.
func (m *tlbMap) Enter(va vmtypes.VA, pfn vmtypes.PFN, prot vmtypes.Prot, wired bool) {
	mod := m.mod
	vpn := uint64(va) / HWPageSize
	mod.Stats().Enters.Add(1)
	mod.Machine().Charge(mod.Machine().Cost.PTEOp)

	type evictedEntry struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var evicted []evictedEntry
	m.mu.Lock()
	old, replaced := m.cache[vpn]
	scanned := 0
	for len(m.cache) >= cacheEntries && !replaced && scanned <= len(m.fifo) {
		v := m.fifo[0]
		m.fifo = m.fifo[1:]
		scanned++
		e, ok := m.cache[v]
		switch {
		case !ok:
			// Stale FIFO slot; skip.
		case e.wired:
			// Wired entries survive eviction: rotate to the back.
			m.fifo = append(m.fifo, v)
		default:
			delete(m.cache, v)
			evicted = append(evicted, evictedEntry{vpn: v, pfn: e.pfn})
		}
	}
	m.cache[vpn] = centry{pfn: pfn, prot: prot, wired: wired}
	if !replaced {
		m.fifo = append(m.fifo, vpn)
	}
	m.mu.Unlock()

	if replaced {
		if old.pfn != pfn {
			mod.DB().RemovePV(old.pfn, m, va&^vmtypes.VA(HWPageSize-1))
		}
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
	for _, ev := range evicted {
		mod.DB().RemovePV(ev.pfn, m, vmtypes.VA(ev.vpn*HWPageSize))
		mod.Shootdown().InvalidatePage(m.Space(), ev.vpn, m.ActiveCPUs(), true)
	}
	mod.DB().AddPV(pfn, m, va&^vmtypes.VA(HWPageSize-1))
}

// Remove invalidates mappings in [start, end).
func (m *tlbMap) Remove(start, end vmtypes.VA) {
	mod := m.mod
	mod.Stats().Removes.Add(1)
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		m.mu.Lock()
		e, ok := m.cache[vpn]
		if ok {
			delete(m.cache, vpn)
		}
		m.mu.Unlock()
		if !ok {
			continue
		}
		mod.Machine().Charge(mod.Machine().Cost.PTEOp)
		mod.DB().RemovePV(e.pfn, m, vmtypes.VA(vpn*HWPageSize))
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
}

// Protect reduces protection on [start, end).
func (m *tlbMap) Protect(start, end vmtypes.VA, prot vmtypes.Prot) {
	mod := m.mod
	mod.Stats().Protects.Add(1)
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		m.mu.Lock()
		e, ok := m.cache[vpn]
		changed := false
		if ok {
			np := e.prot.Intersect(prot)
			changed = np != e.prot
			e.prot = np
			m.cache[vpn] = e
		}
		m.mu.Unlock()
		if changed {
			mod.Machine().Charge(mod.Machine().Cost.PTEOp)
			mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), false)
		}
	}
}

// Walk is the software TLB-refill handler: look in the refill cache.
func (m *tlbMap) Walk(va vmtypes.VA) (vmtypes.PFN, vmtypes.Prot, bool) {
	mod := m.mod
	mod.Stats().Walks.Add(1)
	mod.Machine().Charge(mod.Machine().Cost.WalkLevel)
	vpn := uint64(va) / HWPageSize
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.cache[vpn]
	if !ok {
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	return e.pfn, e.prot, true
}

// Extract returns the frame mapped at va (pmap_extract).
func (m *tlbMap) Extract(va vmtypes.VA) (vmtypes.PFN, bool) {
	vpn := uint64(va) / HWPageSize
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.cache[vpn]
	if !ok {
		return 0, false
	}
	return e.pfn, true
}

// Access reports whether va is mapped (pmap_access).
func (m *tlbMap) Access(va vmtypes.VA) bool {
	_, ok := m.Extract(va)
	return ok
}

// Activate makes the map current on a CPU.
func (m *tlbMap) Activate(cpu *hw.CPU) {
	m.mod.Machine().Charge(m.mod.Machine().Cost.ContextLoad)
	m.ActivateOn(cpu)
}

// Deactivate unloads the map from a CPU.
func (m *tlbMap) Deactivate(cpu *hw.CPU) {
	m.DeactivateOn(cpu)
	m.mod.Machine().Charge(m.mod.Machine().Cost.TLBFlushAll)
	cpu.TLB.FlushSpace(m.Space())
}

// Collect empties the refill cache of non-wired entries.
func (m *tlbMap) Collect() {
	mod := m.mod
	mod.Stats().Collects.Add(1)
	type victim struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var victims []victim
	m.mu.Lock()
	for vpn, e := range m.cache {
		if !e.wired {
			victims = append(victims, victim{vpn: vpn, pfn: e.pfn})
			delete(m.cache, vpn)
		}
	}
	m.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

// Destroy drops a reference and frees everything when it was the last.
func (m *tlbMap) Destroy() {
	if !m.Release() {
		return
	}
	mod := m.mod
	type victim struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var victims []victim
	m.mu.Lock()
	for vpn, e := range m.cache {
		victims = append(victims, victim{vpn: vpn, pfn: e.pfn})
		delete(m.cache, vpn)
	}
	m.fifo = nil
	m.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

// ResidentCount returns the refill-cache population.
func (m *tlbMap) ResidentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}
