package pmap

import (
	"machvm/internal/hw"
	"machvm/internal/vmtypes"
)

// ModuleBase carries the state and default behaviour shared by every
// machine-dependent module: the machine handle, the physical page
// database, the shootdown machinery and the counters. Machine modules
// embed it and override what their hardware does differently.
type ModuleBase struct {
	name      string
	machine   *hw.Machine
	db        *PhysDB
	shooter   *Shooter
	stats     ModuleStats
	maxVA     vmtypes.VA
	maxFrames int
}

// InitBase initialises the shared state. maxVA is the user address-space
// limit; maxFrames caps usable physical frames (0 means all of physical
// memory is addressable).
func (b *ModuleBase) InitBase(name string, m *hw.Machine, strategy Strategy, maxVA vmtypes.VA, maxFrames int) {
	b.name = name
	b.machine = m
	b.db = NewPhysDB(m.Mem.NumFrames())
	b.shooter = NewShooter(m, strategy)
	b.maxVA = maxVA
	if maxFrames <= 0 || maxFrames > m.Mem.NumFrames() {
		maxFrames = m.Mem.NumFrames()
	}
	b.maxFrames = maxFrames
}

// Name returns the architecture name.
func (b *ModuleBase) Name() string { return b.name }

// Machine returns the simulated hardware.
func (b *ModuleBase) Machine() *hw.Machine { return b.machine }

// DB returns the physical page database.
func (b *ModuleBase) DB() *PhysDB { return b.db }

// Shootdown returns the TLB consistency machinery.
func (b *ModuleBase) Shootdown() *Shooter { return b.shooter }

// Stats returns the module counters.
func (b *ModuleBase) Stats() *ModuleStats { return &b.stats }

// MaxVA returns the user address-space limit.
func (b *ModuleBase) MaxVA() vmtypes.VA { return b.maxVA }

// MaxFrames returns the physical addressing limit in frames.
func (b *ModuleBase) MaxFrames() int { return b.maxFrames }

// ZeroPage zero-fills a physical page (pmap_zero_page).
func (b *ModuleBase) ZeroPage(pfn vmtypes.PFN) {
	b.stats.ZeroPages.Add(1)
	b.machine.ZeroFrame(pfn)
}

// CopyPage copies a physical page (pmap_copy_page).
func (b *ModuleBase) CopyPage(src, dst vmtypes.PFN) {
	b.stats.CopyPages.Add(1)
	b.machine.CopyFrame(src, dst)
}

// RemoveAll removes a physical page from all maps (pmap_remove_all).
func (b *ModuleBase) RemoveAll(pfn vmtypes.PFN) {
	b.stats.RemoveAlls.Add(1)
	pageSize := vmtypes.VA(b.machine.Mem.PageSize())
	for _, pv := range b.db.PVs(pfn) {
		pv.Map.Remove(pv.VA, pv.VA+pageSize)
	}
}

// CopyOnWrite revokes write access to a physical page in all maps
// (pmap_copy_on_write).
func (b *ModuleBase) CopyOnWrite(pfn vmtypes.PFN) {
	b.stats.CopyOnWrites.Add(1)
	pageSize := vmtypes.VA(b.machine.Mem.PageSize())
	for _, pv := range b.db.PVs(pfn) {
		pv.Map.Protect(pv.VA, pv.VA+pageSize, vmtypes.ProtRead|vmtypes.ProtExecute)
	}
}

// Modify/reference bit maintenance, backed by the physical page database.

// IsModified reports the page's modify bit.
func (b *ModuleBase) IsModified(pfn vmtypes.PFN) bool { return b.db.IsModified(pfn) }

// ClearModify clears the page's modify bit.
func (b *ModuleBase) ClearModify(pfn vmtypes.PFN) { b.db.ClearModify(pfn) }

// IsReferenced reports the page's reference bit.
func (b *ModuleBase) IsReferenced(pfn vmtypes.PFN) bool { return b.db.IsReferenced(pfn) }

// ClearReference clears the page's reference bit.
func (b *ModuleBase) ClearReference(pfn vmtypes.PFN) { b.db.ClearReference(pfn) }

// MarkAccess records an access, as the MMU would on the real machine.
func (b *ModuleBase) MarkAccess(pfn vmtypes.PFN, write bool) { b.db.MarkAccess(pfn, write) }

// Update forces delayed invalidations to completion (pmap_update).
func (b *ModuleBase) Update() { b.shooter.Update() }

// ReportFault reports the access faithfully; machines with reporting bugs
// override it.
func (b *ModuleBase) ReportFault(real vmtypes.Prot) vmtypes.Prot { return real }

// CorrectFaultAccess passes the reported access through unchanged;
// machines with reporting bugs override it with their workaround.
func (b *ModuleBase) CorrectFaultAccess(reported, mappingProt vmtypes.Prot) vmtypes.Prot {
	return reported
}

// HWPageSize returns the machine's hardware page size in bytes.
func (b *ModuleBase) HWPageSize() int { return b.machine.Mem.PageSize() }
