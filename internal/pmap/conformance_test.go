package pmap_test

// Conformance tests run every machine-dependent module through the same
// contract: the machine-independent layer must be able to treat all pmaps
// identically (the paper's whole point), so any behaviour the MI layer
// relies on is tested here against all five machines.

import (
	"fmt"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/ns32082"
	"machvm/internal/pmap/rtpc"
	"machvm/internal/pmap/sun3"
	"machvm/internal/pmap/tlbonly"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

type testArch struct {
	name       string
	hwPageSize int
	frames     int
	newModule  func(*hw.Machine, pmap.Strategy) pmap.Module
	cost       hw.CostModel
}

func allArchs() []testArch {
	return []testArch{
		{"vax", vax.HWPageSize, 4096, func(m *hw.Machine, s pmap.Strategy) pmap.Module { return vax.New(m, s) }, vax.DefaultCost()},
		{"rtpc", rtpc.HWPageSize, 2048, func(m *hw.Machine, s pmap.Strategy) pmap.Module { return rtpc.New(m, s) }, rtpc.DefaultCost()},
		{"sun3", sun3.HWPageSize, 1024, func(m *hw.Machine, s pmap.Strategy) pmap.Module { return sun3.New(m, s) }, sun3.DefaultCost()},
		{"ns32082", ns32082.HWPageSize, 4096, func(m *hw.Machine, s pmap.Strategy) pmap.Module { return ns32082.New(m, s) }, ns32082.DefaultCost()},
		{"tlbonly", tlbonly.HWPageSize, 2048, func(m *hw.Machine, s pmap.Strategy) pmap.Module { return tlbonly.New(m, s) }, tlbonly.DefaultCost()},
	}
}

func newTestMachine(a testArch, cpus int) (*hw.Machine, pmap.Module) {
	m := hw.NewMachine(hw.Config{
		Cost:       a.cost,
		HWPageSize: a.hwPageSize,
		PhysFrames: a.frames,
		CPUs:       cpus,
		TLBSize:    64,
	})
	return m, a.newModule(m, pmap.ShootImmediate)
}

func forEachArch(t *testing.T, fn func(t *testing.T, a testArch)) {
	for _, a := range allArchs() {
		t.Run(a.name, func(t *testing.T) { fn(t, a) })
	}
}

func TestEnterExtractRemove(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		_, mod := newTestMachine(a, 1)
		pm := mod.Create()
		defer pm.Destroy()
		ps := vmtypes.VA(a.hwPageSize)

		pm.Enter(3*ps, 7, vmtypes.ProtDefault, false)
		if pfn, ok := pm.Extract(3 * ps); !ok || pfn != 7 {
			t.Fatalf("Extract = %d,%v; want 7,true", pfn, ok)
		}
		if !pm.Access(3 * ps) {
			t.Fatal("Access should see the mapping")
		}
		if pm.Access(4 * ps) {
			t.Fatal("Access should not see an unmapped page")
		}
		if got := pm.ResidentCount(); got != 1 {
			t.Fatalf("ResidentCount = %d; want 1", got)
		}

		pm.Remove(3*ps, 4*ps)
		if pm.Access(3 * ps) {
			t.Fatal("mapping should be gone after Remove")
		}
		if got := pm.ResidentCount(); got != 0 {
			t.Fatalf("ResidentCount after Remove = %d; want 0", got)
		}
	})
}

func TestWalkMatchesExtract(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		_, mod := newTestMachine(a, 1)
		pm := mod.Create()
		defer pm.Destroy()
		ps := vmtypes.VA(a.hwPageSize)

		for i := vmtypes.PFN(1); i < 20; i++ {
			pm.Enter(vmtypes.VA(i)*ps, i, vmtypes.ProtRead, false)
		}
		for i := vmtypes.PFN(1); i < 20; i++ {
			pfn, prot, ok := pm.Walk(vmtypes.VA(i) * ps)
			if !ok || pfn != i {
				t.Fatalf("Walk(%d) = %d,%v; want %d,true", i, pfn, ok, i)
			}
			if prot != vmtypes.ProtRead {
				t.Fatalf("Walk prot = %v; want r--", prot)
			}
		}
		if _, _, ok := pm.Walk(100 * ps); ok {
			t.Fatal("Walk of unmapped page should miss")
		}
	})
}

func TestProtectReduces(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		_, mod := newTestMachine(a, 1)
		pm := mod.Create()
		defer pm.Destroy()
		ps := vmtypes.VA(a.hwPageSize)

		pm.Enter(ps, 5, vmtypes.ProtDefault, false)
		pm.Protect(ps, 2*ps, vmtypes.ProtRead)
		_, prot, ok := pm.Walk(ps)
		if !ok {
			t.Fatal("mapping vanished on Protect")
		}
		if prot.Allows(vmtypes.ProtWrite) {
			t.Fatalf("prot = %v; want write revoked", prot)
		}
	})
}

func TestRemoveAllAndCopyOnWrite(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		if a.name == "rtpc" {
			// The RT allows only one mapping per physical page;
			// multi-map sharing is exercised by its own alias test.
			t.Skip("rtpc cannot hold two mappings of one frame")
		}
		_, mod := newTestMachine(a, 1)
		pm1 := mod.Create()
		pm2 := mod.Create()
		defer pm1.Destroy()
		defer pm2.Destroy()
		ps := vmtypes.VA(a.hwPageSize)

		pm1.Enter(ps, 9, vmtypes.ProtDefault, false)
		pm2.Enter(5*ps, 9, vmtypes.ProtDefault, false)

		mod.CopyOnWrite(9)
		for _, pm := range []pmap.Map{pm1, pm2} {
			va := ps
			if pm == pm2 {
				va = 5 * ps
			}
			_, prot, ok := pm.Walk(va)
			if !ok || prot.Allows(vmtypes.ProtWrite) {
				t.Fatalf("CopyOnWrite left prot=%v ok=%v", prot, ok)
			}
		}

		mod.RemoveAll(9)
		if pm1.Access(ps) || pm2.Access(5*ps) {
			t.Fatal("RemoveAll left a mapping behind")
		}
	})
}

func TestModRefBits(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		_, mod := newTestMachine(a, 1)
		if mod.IsModified(3) || mod.IsReferenced(3) {
			t.Fatal("fresh frame should be clean")
		}
		mod.MarkAccess(3, false)
		if !mod.IsReferenced(3) || mod.IsModified(3) {
			t.Fatal("read access should set only the reference bit")
		}
		mod.MarkAccess(3, true)
		if !mod.IsModified(3) {
			t.Fatal("write access should set the modify bit")
		}
		mod.ClearModify(3)
		mod.ClearReference(3)
		if mod.IsModified(3) || mod.IsReferenced(3) {
			t.Fatal("clear should clear")
		}
	})
}

func TestCollectForgetsButKeepsWired(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		_, mod := newTestMachine(a, 1)
		pm := mod.Create()
		defer pm.Destroy()
		ps := vmtypes.VA(a.hwPageSize)

		pm.Enter(ps, 1, vmtypes.ProtDefault, false)
		pm.Enter(2*ps, 2, vmtypes.ProtDefault, true) // wired
		pm.Collect()
		if pm.Access(ps) {
			t.Fatal("Collect should discard non-wired mappings")
		}
		if !pm.Access(2 * ps) {
			t.Fatal("Collect must keep wired mappings")
		}
	})
}

func TestAccessThroughTLB(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		machine, mod := newTestMachine(a, 1)
		pm := mod.Create()
		defer pm.Destroy()
		cpu := machine.CPU(0)
		pm.Activate(cpu)
		ps := vmtypes.VA(a.hwPageSize)

		// Unmapped access faults.
		res := pmap.Access(mod, cpu, pm, ps, vmtypes.ProtRead)
		if res.Fault != vmtypes.FaultTranslation {
			t.Fatalf("fault = %v; want translation", res.Fault)
		}

		pm.Enter(ps, 3, vmtypes.ProtDefault, false)
		res = pmap.Access(mod, cpu, pm, ps, vmtypes.ProtWrite)
		if res.Fault != vmtypes.FaultNone || res.PFN != 3 {
			t.Fatalf("access = %+v; want pfn 3 no fault", res)
		}
		if res.TLBHit {
			t.Fatal("first access should not hit the TLB")
		}
		res = pmap.Access(mod, cpu, pm, ps, vmtypes.ProtWrite)
		if !res.TLBHit {
			t.Fatal("second access should hit the TLB")
		}
		if !mod.IsModified(3) {
			t.Fatal("write access should mark the frame modified")
		}

		// Protection fault on read-only mapping.
		pm.Protect(ps, 2*ps, vmtypes.ProtRead)
		res = pmap.Access(mod, cpu, pm, ps, vmtypes.ProtWrite)
		if res.Fault != vmtypes.FaultProtection {
			t.Fatalf("fault = %v; want protection", res.Fault)
		}
	})
}

func TestShootdownStrategies(t *testing.T) {
	for _, strategy := range []pmap.Strategy{pmap.ShootImmediate, pmap.ShootDeferred, pmap.ShootLazy} {
		t.Run(strategy.String(), func(t *testing.T) {
			a := allArchs()[4] // tlbonly: simplest module
			machine := hw.NewMachine(hw.Config{
				Cost:       a.cost,
				HWPageSize: a.hwPageSize,
				PhysFrames: a.frames,
				CPUs:       4,
				TLBSize:    64,
			})
			mod := a.newModule(machine, strategy)
			pm := mod.Create()
			defer pm.Destroy()
			ps := vmtypes.VA(a.hwPageSize)
			for _, cpu := range machine.CPUs() {
				pm.Activate(cpu)
			}
			pm.Enter(ps, 3, vmtypes.ProtDefault, false)
			// Warm every CPU's TLB.
			for _, cpu := range machine.CPUs() {
				if res := pmap.Access(mod, cpu, pm, ps, vmtypes.ProtRead); res.Fault != vmtypes.FaultNone {
					t.Fatalf("warmup fault on cpu %d: %v", cpu.ID, res.Fault)
				}
			}
			before := machine.IPIsSent()
			pm.Remove(ps, 2*ps)
			switch strategy {
			case pmap.ShootImmediate:
				if machine.IPIsSent() == before {
					t.Fatal("immediate strategy should send IPIs")
				}
			case pmap.ShootDeferred, pmap.ShootLazy:
				if machine.IPIsSent() != before {
					t.Fatal("deferred/lazy removal must not send IPIs")
				}
				// Until the tick, remote TLBs may be stale; after
				// Update they must not be.
				mod.Update()
			}
			for _, cpu := range machine.CPUs() {
				if res := pmap.Access(mod, cpu, pm, ps, vmtypes.ProtRead); res.Fault == vmtypes.FaultNone {
					t.Fatalf("cpu %d still translates a removed page under %v", cpu.ID, strategy)
				}
			}
		})
	}
}

func TestRTAliasReplacement(t *testing.T) {
	machine := hw.NewMachine(hw.Config{
		Cost:       rtpc.DefaultCost(),
		HWPageSize: rtpc.HWPageSize,
		PhysFrames: 1024,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := rtpc.New(machine, pmap.ShootImmediate)
	pm1 := mod.Create()
	pm2 := mod.Create()
	defer pm1.Destroy()
	defer pm2.Destroy()
	ps := vmtypes.VA(rtpc.HWPageSize)

	pm1.Enter(ps, 9, vmtypes.ProtDefault, false)
	if !pm1.Access(ps) {
		t.Fatal("pm1 mapping missing")
	}
	// A second task mapping the same frame evicts the first mapping:
	// only one valid mapping per physical page.
	pm2.Enter(7*ps, 9, vmtypes.ProtDefault, false)
	if pm1.Access(ps) {
		t.Fatal("RT must have evicted pm1's mapping of frame 9")
	}
	if !pm2.Access(7 * ps) {
		t.Fatal("pm2 mapping missing")
	}
	if got := mod.Stats().AliasReplaces.Load(); got != 1 {
		t.Fatalf("AliasReplaces = %d; want 1", got)
	}
}

func TestSun3ContextStealing(t *testing.T) {
	machine := hw.NewMachine(hw.Config{
		Cost:       sun3.DefaultCost(),
		HWPageSize: sun3.HWPageSize,
		PhysFrames: 1024,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := sun3.New(machine, pmap.ShootImmediate)
	cpu := machine.CPU(0)
	ps := vmtypes.VA(sun3.HWPageSize)

	maps := make([]pmap.Map, sun3.NumContexts+2)
	for i := range maps {
		maps[i] = mod.Create()
		maps[i].Activate(cpu)
		maps[i].Enter(ps, vmtypes.PFN(i+1), vmtypes.ProtDefault, false)
		maps[i].Deactivate(cpu)
	}
	if got := mod.ContextSteals(); got != 2 {
		t.Fatalf("ContextSteals = %d; want 2", got)
	}
	// The two earliest maps lost their contexts and with them their
	// loaded translations.
	stolen := 0
	for _, m := range maps {
		if !m.Access(ps) {
			stolen++
		}
	}
	if stolen != 2 {
		t.Fatalf("%d maps lost hardware state; want 2", stolen)
	}
	for _, m := range maps {
		m.Destroy()
	}
}

func TestNS32082Limits(t *testing.T) {
	machine := hw.NewMachine(hw.Config{
		Cost:       ns32082.DefaultCost(),
		HWPageSize: ns32082.HWPageSize,
		PhysFrames: (ns32082.MaxPhysBytes / ns32082.HWPageSize) + 100,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := ns32082.New(machine, pmap.ShootImmediate)
	if mod.MaxVA() != ns32082.MaxUserVA {
		t.Fatalf("MaxVA = %d; want 16MB", mod.MaxVA())
	}
	if mod.MaxFrames() != ns32082.MaxPhysBytes/ns32082.HWPageSize {
		t.Fatalf("MaxFrames = %d; want the 32MB cap", mod.MaxFrames())
	}
	pm := mod.Create()
	defer pm.Destroy()
	mustPanic(t, "VA beyond 16MB", func() {
		pm.Enter(ns32082.MaxUserVA, 1, vmtypes.ProtRead, false)
	})
	mustPanic(t, "frame beyond 32MB", func() {
		pm.Enter(0, vmtypes.PFN(mod.MaxFrames()), vmtypes.ProtRead, false)
	})
}

func TestNS32082RMWBugAndWorkaround(t *testing.T) {
	machine := hw.NewMachine(hw.Config{
		Cost:       ns32082.DefaultCost(),
		HWPageSize: ns32082.HWPageSize,
		PhysFrames: 1024,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := ns32082.New(machine, pmap.ShootImmediate)
	pm := mod.Create()
	defer pm.Destroy()
	cpu := machine.CPU(0)
	pm.Activate(cpu)
	ps := vmtypes.VA(ns32082.HWPageSize)

	pm.Enter(ps, 3, vmtypes.ProtRead, false)
	res := pmap.Access(mod, cpu, pm, ps, vmtypes.ProtWrite)
	if res.Fault != vmtypes.FaultProtection {
		t.Fatalf("fault = %v; want protection", res.Fault)
	}
	// The chip bug: the write fault is *reported* as a read fault.
	if res.Reported != vmtypes.ProtRead {
		t.Fatalf("reported = %v; want read (the chip bug)", res.Reported)
	}
	// The workaround: a reported read fault on a readable mapping must
	// really be a write.
	if got := mod.CorrectFaultAccess(res.Reported, res.MappingProt); got != vmtypes.ProtWrite {
		t.Fatalf("CorrectFaultAccess = %v; want write", got)
	}
}

func TestTableMemoryAccounting(t *testing.T) {
	// The VAX constructs page tables on demand and frees them; the RT's
	// inverted table is fixed-size regardless of address-space use. This
	// is the §5.1 space comparison.
	machineV := hw.NewMachine(hw.Config{Cost: vax.DefaultCost(), HWPageSize: vax.HWPageSize, PhysFrames: 4096, CPUs: 1})
	modV := vax.New(machineV, pmap.ShootImmediate)
	base := modV.Stats().TableBytes.Load()
	pmV := modV.Create()
	ps := vmtypes.VA(vax.HWPageSize)
	for i := 0; i < 1000; i++ {
		pmV.Enter(vmtypes.VA(i)*ps, vmtypes.PFN(i%4000), vmtypes.ProtDefault, false)
	}
	grown := modV.Stats().TableBytes.Load()
	if grown <= base {
		t.Fatal("VAX table memory should grow with mappings")
	}
	pmV.Destroy()
	if got := modV.Stats().TableBytes.Load(); got != base {
		t.Fatalf("VAX table memory after destroy = %d; want %d", got, base)
	}

	machineR := hw.NewMachine(hw.Config{Cost: rtpc.DefaultCost(), HWPageSize: rtpc.HWPageSize, PhysFrames: 2048, CPUs: 1})
	modR := rtpc.New(machineR, pmap.ShootImmediate)
	fixed := modR.Stats().TableBytes.Load()
	pmR := modR.Create()
	for i := 0; i < 1000; i++ {
		pmR.Enter(vmtypes.VA(i)*vmtypes.VA(rtpc.HWPageSize), vmtypes.PFN(i), vmtypes.ProtDefault, false)
	}
	if got := modR.Stats().TableBytes.Load(); got != fixed {
		t.Fatalf("RT table memory grew to %d; the inverted table is fixed at %d", got, fixed)
	}
	pmR.Destroy()
}

// enterRange establishes a run of mappings the way the machine-independent
// layer does: one EnterRange when the module supports it, a per-page loop
// otherwise. Conformance: both paths must produce indistinguishable maps.
func enterRange(pm pmap.Map, va vmtypes.VA, pfns []vmtypes.PFN, ps vmtypes.VA, prot vmtypes.Prot, wired bool) {
	if re, ok := pm.(pmap.RangeEnterer); ok {
		re.EnterRange(va, pfns, prot, wired)
		return
	}
	for i, pfn := range pfns {
		pm.Enter(va+vmtypes.VA(i)*ps, pfn, prot, wired)
	}
}

// superMap is the introspection surface the superpage modules export for
// tests and invariant walkers.
type superMap interface {
	pmap.RangeEnterer
	SuperCount() int
	CheckSuperInvariants() error
}

func checkSuperInvariants(t *testing.T, pm pmap.Map) {
	t.Helper()
	if sm, ok := pm.(superMap); ok {
		if err := sm.CheckSuperInvariants(); err != nil {
			t.Fatalf("superpage invariants: %v", err)
		}
	}
}

// TestEnterRangeMatchesEnter runs every module through the MI layer's two
// range paths: whatever EnterRange (or its per-page fallback) established
// must be indistinguishable from individual Enter calls through
// Walk/Extract/Access, and sub-range Remove must behave identically —
// including demoting any promoted span rather than over-removing.
func TestEnterRangeMatchesEnter(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		_, mod := newTestMachine(a, 1)
		perPage := mod.Create()
		ranged := mod.Create()
		defer perPage.Destroy()
		defer ranged.Destroy()
		ps := vmtypes.VA(a.hwPageSize)
		const n = 16
		base := vmtypes.VA(32) * ps

		// Distinct frames per map so the RT PC's one-mapping-per-frame
		// rule cannot couple the two maps.
		var pfnsA, pfnsB []vmtypes.PFN
		for i := 0; i < n; i++ {
			pfnsA = append(pfnsA, vmtypes.PFN(1+i))
			pfnsB = append(pfnsB, vmtypes.PFN(101+i))
		}
		for i, pfn := range pfnsA {
			perPage.Enter(base+vmtypes.VA(i)*ps, pfn, vmtypes.ProtDefault, false)
		}
		enterRange(ranged, base, pfnsB, ps, vmtypes.ProtDefault, false)
		checkSuperInvariants(t, ranged)

		for i := 0; i < n; i++ {
			va := base + vmtypes.VA(i)*ps
			_, protA, okA := perPage.Walk(va)
			pfnB, protB, okB := ranged.Walk(va)
			if !okB {
				// A module that may forget (tlbonly) must forget from both
				// paths alike; a hit on the per-page map with a miss on the
				// ranged map would make the paths distinguishable.
				if okA {
					t.Fatalf("page %d: per-page path translates, range path lost it", i)
				}
				continue
			}
			if pfnB != pfnsB[i] {
				t.Fatalf("page %d: range path maps to %d, want %d", i, pfnB, pfnsB[i])
			}
			if okA && protA != protB {
				t.Fatalf("page %d: prot differs, per-page %v vs range %v", i, protA, protB)
			}
			if got, ok := ranged.Extract(va); !ok || got != pfnsB[i] {
				t.Fatalf("page %d: Extract = %d,%v; want %d,true", i, got, ok, pfnsB[i])
			}
		}

		// Sub-range removal must behave identically on both paths.
		perPage.Remove(base+4*ps, base+8*ps)
		ranged.Remove(base+4*ps, base+8*ps)
		checkSuperInvariants(t, ranged)
		for i := 0; i < n; i++ {
			va := base + vmtypes.VA(i)*ps
			inHole := i >= 4 && i < 8
			if inHole && (perPage.Access(va) || ranged.Access(va)) {
				t.Fatalf("page %d survived Remove", i)
			}
			if !inHole && ranged.Access(va) != perPage.Access(va) {
				t.Fatalf("page %d: Access disagrees between paths after Remove", i)
			}
		}
	})
}

// TestModuleSuperpageLifecycle drives the two superpage modules (vax
// page-table chunks, sun3 PMEG segments) through promotion and every
// demotion trigger, with the invariant walker run after each step.
func TestModuleSuperpageLifecycle(t *testing.T) {
	forEachArch(t, func(t *testing.T, a testArch) {
		_, mod := newTestMachine(a, 1)
		pm := mod.Create()
		defer pm.Destroy()
		sm, ok := pm.(superMap)
		if !ok {
			t.Skipf("%s has no superpage support (per-page fallback covered elsewhere)", a.name)
		}
		ps := vmtypes.VA(a.hwPageSize)
		span := vmtypes.VA(sm.SuperSpan())
		n := int(span / ps)
		base := 2 * span

		pfns := make([]vmtypes.PFN, n)
		for i := range pfns {
			pfns[i] = vmtypes.PFN(1 + i)
		}
		sm.EnterRange(base, pfns, vmtypes.ProtDefault, false)
		checkSuperInvariants(t, pm)
		if !sm.SuperActive(base) {
			t.Fatal("full uniform EnterRange did not promote the granule")
		}
		if sm.SuperCount() == 0 {
			t.Fatal("SuperCount = 0 after promotion")
		}
		// Promoted translations are still per-page correct.
		for i := 0; i < n; i++ {
			if pfn, _, ok := pm.Walk(base + vmtypes.VA(i)*ps); !ok || pfn != pfns[i] {
				t.Fatalf("promoted page %d: Walk = %d,%v; want %d,true", i, pfn, ok, pfns[i])
			}
		}

		// Demotion trigger 1: non-uniform protection.
		pm.Protect(base, base+ps, vmtypes.ProtRead)
		checkSuperInvariants(t, pm)
		if sm.SuperActive(base) {
			t.Fatal("granule still promoted after partial Protect")
		}
		if _, prot, ok := pm.Walk(base); !ok || prot.Allows(vmtypes.ProtWrite) {
			t.Fatalf("protected page: Walk = %v,%v; want read-only hit", prot, ok)
		}
		if _, prot, ok := pm.Walk(base + ps); !ok || !prot.Allows(vmtypes.ProtWrite) {
			t.Fatalf("neighbor lost write on demotion: %v,%v", prot, ok)
		}

		// Demotion trigger 2: partial Remove of a promoted granule.
		base2 := base + span
		sm.EnterRange(base2, pfns, vmtypes.ProtDefault, false)
		checkSuperInvariants(t, pm)
		if !sm.SuperActive(base2) {
			t.Fatal("second granule did not promote")
		}
		pm.Remove(base2, base2+ps)
		checkSuperInvariants(t, pm)
		if sm.SuperActive(base2) {
			t.Fatal("granule still promoted after partial Remove")
		}
		if pm.Access(base2) {
			t.Fatal("removed page still translates")
		}
		if !pm.Access(base2 + ps) {
			t.Fatal("demotion dropped a neighbor that was not removed")
		}

		// Collect drops unwired state (demoting as needed)...
		pm.Collect()
		checkSuperInvariants(t, pm)
		// ...but a wired promoted granule survives Collect whole.
		base3 := base2 + span
		sm.EnterRange(base3, pfns, vmtypes.ProtDefault, true)
		checkSuperInvariants(t, pm)
		pm.Collect()
		checkSuperInvariants(t, pm)
		for i := 0; i < n; i++ {
			if !pm.Access(base3 + vmtypes.VA(i)*ps) {
				t.Fatalf("Collect dropped wired page %d of a promoted granule", i)
			}
		}
	})
}

// TestRangeOpsUnderDeferredShootdown exercises promotion and demotion with
// the deferred shootdown strategy on multiple CPUs: removing a promoted
// granule queues per-CPU invalidations without IPIs, and after pmap_update
// no CPU may still translate through the dead span.
func TestRangeOpsUnderDeferredShootdown(t *testing.T) {
	for _, a := range allArchs() {
		t.Run(a.name, func(t *testing.T) {
			machine := hw.NewMachine(hw.Config{
				Cost:       a.cost,
				HWPageSize: a.hwPageSize,
				PhysFrames: a.frames,
				CPUs:       4,
				TLBSize:    64,
			})
			mod := a.newModule(machine, pmap.ShootDeferred)
			pm := mod.Create()
			defer pm.Destroy()
			sm, ok := pm.(superMap)
			if !ok {
				t.Skipf("%s has no range support", a.name)
			}
			for _, cpu := range machine.CPUs() {
				pm.Activate(cpu)
			}
			ps := vmtypes.VA(a.hwPageSize)
			span := vmtypes.VA(sm.SuperSpan())
			n := int(span / ps)
			base := 2 * span
			pfns := make([]vmtypes.PFN, n)
			for i := range pfns {
				pfns[i] = vmtypes.PFN(1 + i)
			}
			sm.EnterRange(base, pfns, vmtypes.ProtDefault, false)
			if !sm.SuperActive(base) {
				t.Fatal("granule did not promote")
			}
			// Warm every CPU's TLB through the promoted mapping.
			for _, cpu := range machine.CPUs() {
				if res := pmap.Access(mod, cpu, pm, base, vmtypes.ProtRead); res.Fault != vmtypes.FaultNone {
					t.Fatalf("warmup fault on cpu %d: %v", cpu.ID, res.Fault)
				}
			}
			before := machine.IPIsSent()
			pm.Remove(base, base+span)
			checkSuperInvariants(t, pm)
			if machine.IPIsSent() != before {
				t.Fatal("deferred strategy sent IPIs on Remove")
			}
			mod.Update()
			for _, cpu := range machine.CPUs() {
				if res := pmap.Access(mod, cpu, pm, base, vmtypes.ProtRead); res.Fault == vmtypes.FaultNone {
					t.Fatalf("cpu %d still translates a removed promoted span", cpu.ID)
				}
			}
		})
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func ExampleStrategy() {
	for _, s := range []pmap.Strategy{pmap.ShootImmediate, pmap.ShootDeferred, pmap.ShootLazy} {
		fmt.Println(s)
	}
	// Output:
	// immediate
	// deferred
	// lazy
}
