// Package ns32082 implements the machine-dependent pmap module for the
// National Semiconductor NS32082 MMU used by both the Encore MultiMax and
// the Sequent Balance — the multiprocessors Mach ran on.
//
// The chip posed several problems unrelated to multiprocessing (§5.1):
// only 16 megabytes of virtual memory may be addressed per page table,
// only 32 megabytes of physical memory may be addressed, and a chip bug
// causes read-modify-write faults to always be reported as read faults,
// even though Mach depends on detecting write faults for copy-on-write.
// The workaround reproduced here is the observation that a *reported* read
// fault against a mapping that already permits reading cannot actually be
// a read fault, so it must be serviced as a write.
package ns32082

import (
	"sync"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/vmtypes"
)

// Hardware constants.
const (
	// HWPageSize is the NS32082 hardware page size.
	HWPageSize = 512
	// l2Entries is the number of PTEs per second-level table and
	// l1Entries the number of second-level tables; together they cover
	// exactly the 16MB virtual limit (256 * 128 * 512 bytes).
	l1Entries = 256
	l2Entries = 128
	// MaxUserVA is the 16-megabyte per-page-table virtual limit.
	MaxUserVA = vmtypes.VA(16) << 20
	// MaxPhysBytes is the 32-megabyte physical addressing limit. (The
	// MultiMax later added special hardware to address a full 4GB; the
	// module models the stock chip.)
	MaxPhysBytes = 32 << 20
	// l2TableBytes is the memory footprint of one second-level table.
	l2TableBytes = l2Entries * 4
)

// DefaultCost approximates one NS32032 processor of an Encore MultiMax or
// Sequent Balance (~0.75 MIPS per CPU).
func DefaultCost() hw.CostModel {
	return hw.CostModel{
		Name:         "NS32082 (MultiMax/Balance)",
		TLBMiss:      600,
		WalkLevel:    1000,
		MemAccess:    450,
		FaultTrap:    hw.Microseconds(200),
		Syscall:      hw.Microseconds(160),
		ZeroPerKB:    hw.Microseconds(170),
		CopyPerKB:    hw.Microseconds(340),
		PTEOp:        hw.Microseconds(3),
		MapEntryOp:   hw.Microseconds(45),
		TLBFlushPage: hw.Microseconds(3),
		TLBFlushAll:  hw.Microseconds(30),
		IPI:          hw.Microseconds(90), // the buses were built for IPIs
		ContextLoad:  hw.Microseconds(50),
		TaskCreate:   hw.Milliseconds(20),
		MsgOp:        hw.Microseconds(320),
		DiskLatency:  hw.Milliseconds(28),
		DiskPerKB:    hw.Microseconds(1500),
	}
}

// Module is the NS32082 machine-dependent module.
type Module struct {
	pmap.ModuleBase
}

// New creates an NS32082 pmap module for the machine. Physical frames
// beyond the 32MB limit exist but are unusable: MaxFrames reports the cap
// and the machine-independent layer must not hand them out.
func New(m *hw.Machine, strategy pmap.Strategy) *Module {
	if m.Mem.PageSize() != HWPageSize {
		panic("ns32082: machine must use 512-byte hardware pages")
	}
	mod := &Module{}
	mod.InitBase("NS32082", m, strategy, MaxUserVA, MaxPhysBytes/HWPageSize)
	return mod
}

// ReportFault models the chip bug: a write (read-modify-write) access that
// faults is reported as a read fault.
func (mod *Module) ReportFault(real vmtypes.Prot) vmtypes.Prot {
	if real.Allows(vmtypes.ProtWrite) {
		return vmtypes.ProtRead
	}
	return real
}

// CorrectFaultAccess is the machine-dependent workaround: a reported read
// fault against a mapping that already allows reads must really have been
// a write, so service it as one. Translation faults (no mapping) cannot be
// disambiguated; they are serviced as reported, and if the access was
// actually a write the subsequent protection fault is corrected here.
func (mod *Module) CorrectFaultAccess(reported, mappingProt vmtypes.Prot) vmtypes.Prot {
	if reported == vmtypes.ProtRead && mappingProt.Allows(vmtypes.ProtRead) {
		return vmtypes.ProtWrite
	}
	return reported
}

// Create makes a new two-level page table (pmap_create).
func (mod *Module) Create() pmap.Map {
	nm := &nsMap{mod: mod, l1: make(map[uint32]*l2table)}
	nm.InitCore()
	return nm
}

type pte struct {
	pfn   vmtypes.PFN
	prot  vmtypes.Prot
	valid bool
	wired bool
}

type l2table struct {
	ptes [l2Entries]pte
	used int
}

type nsMap struct {
	pmap.MapCore
	mod *Module

	mu       sync.Mutex
	l1       map[uint32]*l2table
	resident int
}

func (m *nsMap) tableFor(vpn uint64, create bool) *l2table {
	idx := uint32(vpn / l2Entries)
	t := m.l1[idx]
	if t == nil && create {
		t = &l2table{}
		m.l1[idx] = t
		m.mod.Machine().ChargeKB(m.mod.Machine().Cost.ZeroPerKB, l2TableBytes)
		m.mod.Stats().AddTableBytes(l2TableBytes)
	}
	return t
}

// Enter establishes one hardware mapping (pmap_enter).
func (m *nsMap) Enter(va vmtypes.VA, pfn vmtypes.PFN, prot vmtypes.Prot, wired bool) {
	if va >= MaxUserVA {
		panic("ns32082: virtual address beyond the 16MB page-table limit")
	}
	if int(pfn) >= m.mod.MaxFrames() {
		panic("ns32082: physical frame beyond the 32MB addressing limit")
	}
	mod := m.mod
	vpn := uint64(va) / HWPageSize
	mod.Stats().Enters.Add(1)
	mod.Machine().Charge(mod.Machine().Cost.PTEOp)

	m.mu.Lock()
	t := m.tableFor(vpn, true)
	e := &t.ptes[vpn%l2Entries]
	replaced := e.valid
	oldPFN := e.pfn
	if !e.valid {
		t.used++
		m.resident++
	}
	*e = pte{pfn: pfn, prot: prot, valid: true, wired: wired}
	m.mu.Unlock()

	if replaced {
		if oldPFN != pfn {
			mod.DB().RemovePV(oldPFN, m, va&^vmtypes.VA(HWPageSize-1))
		}
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
	mod.DB().AddPV(pfn, m, va&^vmtypes.VA(HWPageSize-1))
}

// Remove invalidates mappings in [start, end) (pmap_remove).
func (m *nsMap) Remove(start, end vmtypes.VA) {
	mod := m.mod
	mod.Stats().Removes.Add(1)
	if end > MaxUserVA {
		end = MaxUserVA
	}
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		m.mu.Lock()
		t := m.tableFor(vpn, false)
		if t == nil {
			m.mu.Unlock()
			vpn = (vpn/l2Entries+1)*l2Entries - 1
			continue
		}
		e := &t.ptes[vpn%l2Entries]
		if !e.valid {
			m.mu.Unlock()
			continue
		}
		pfn := e.pfn
		*e = pte{}
		t.used--
		m.resident--
		if t.used == 0 {
			delete(m.l1, uint32(vpn/l2Entries))
			mod.Stats().AddTableBytes(-l2TableBytes)
		}
		m.mu.Unlock()

		mod.Machine().Charge(mod.Machine().Cost.PTEOp)
		mod.DB().RemovePV(pfn, m, vmtypes.VA(vpn*HWPageSize))
		mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), true)
	}
}

// Protect reduces protection on [start, end) (pmap_protect).
func (m *nsMap) Protect(start, end vmtypes.VA, prot vmtypes.Prot) {
	mod := m.mod
	mod.Stats().Protects.Add(1)
	if end > MaxUserVA {
		end = MaxUserVA
	}
	for vpn := uint64(start) / HWPageSize; vpn < (uint64(end)+HWPageSize-1)/HWPageSize; vpn++ {
		m.mu.Lock()
		t := m.tableFor(vpn, false)
		if t == nil {
			m.mu.Unlock()
			vpn = (vpn/l2Entries+1)*l2Entries - 1
			continue
		}
		e := &t.ptes[vpn%l2Entries]
		changed := false
		if e.valid {
			np := e.prot.Intersect(prot)
			changed = np != e.prot
			e.prot = np
		}
		m.mu.Unlock()
		if changed {
			mod.Machine().Charge(mod.Machine().Cost.PTEOp)
			mod.Shootdown().InvalidatePage(m.Space(), vpn, m.ActiveCPUs(), false)
		}
	}
}

// Walk performs the two-level hardware table walk.
func (m *nsMap) Walk(va vmtypes.VA) (vmtypes.PFN, vmtypes.Prot, bool) {
	mod := m.mod
	mod.Stats().Walks.Add(1)
	mod.Machine().Charge(2 * mod.Machine().Cost.WalkLevel)
	if va >= MaxUserVA {
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	vpn := uint64(va) / HWPageSize
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tableFor(vpn, false)
	if t == nil || !t.ptes[vpn%l2Entries].valid {
		mod.Stats().WalkMisses.Add(1)
		return 0, 0, false
	}
	e := t.ptes[vpn%l2Entries]
	return e.pfn, e.prot, true
}

// Extract returns the frame mapped at va (pmap_extract).
func (m *nsMap) Extract(va vmtypes.VA) (vmtypes.PFN, bool) {
	if va >= MaxUserVA {
		return 0, false
	}
	vpn := uint64(va) / HWPageSize
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tableFor(vpn, false)
	if t == nil || !t.ptes[vpn%l2Entries].valid {
		return 0, false
	}
	return t.ptes[vpn%l2Entries].pfn, true
}

// Access reports whether va is mapped (pmap_access).
func (m *nsMap) Access(va vmtypes.VA) bool {
	_, ok := m.Extract(va)
	return ok
}

// Activate loads the map's page-table base on a CPU.
func (m *nsMap) Activate(cpu *hw.CPU) {
	m.mod.Machine().Charge(m.mod.Machine().Cost.ContextLoad)
	m.ActivateOn(cpu)
}

// Deactivate unloads the map; the MMU's small translation cache does not
// survive a context switch.
func (m *nsMap) Deactivate(cpu *hw.CPU) {
	m.DeactivateOn(cpu)
	m.mod.Machine().Charge(m.mod.Machine().Cost.TLBFlushAll)
	cpu.TLB.FlushSpace(m.Space())
}

// Collect throws away non-wired mappings and empty second-level tables.
func (m *nsMap) Collect() {
	mod := m.mod
	mod.Stats().Collects.Add(1)
	type victim struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var victims []victim
	m.mu.Lock()
	for idx, t := range m.l1 {
		for i := range t.ptes {
			e := &t.ptes[i]
			if e.valid && !e.wired {
				victims = append(victims, victim{vpn: uint64(idx)*l2Entries + uint64(i), pfn: e.pfn})
				*e = pte{}
				t.used--
				m.resident--
			}
		}
		if t.used == 0 {
			delete(m.l1, idx)
			mod.Stats().AddTableBytes(-l2TableBytes)
		}
	}
	m.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

// Destroy drops a reference and frees the tables when none remain.
func (m *nsMap) Destroy() {
	if !m.Release() {
		return
	}
	mod := m.mod
	type victim struct {
		vpn uint64
		pfn vmtypes.PFN
	}
	var victims []victim
	m.mu.Lock()
	for idx, t := range m.l1 {
		for i := range t.ptes {
			if e := t.ptes[i]; e.valid {
				victims = append(victims, victim{vpn: uint64(idx)*l2Entries + uint64(i), pfn: e.pfn})
			}
		}
		delete(m.l1, idx)
		mod.Stats().AddTableBytes(-l2TableBytes)
	}
	m.resident = 0
	m.mu.Unlock()
	for _, v := range victims {
		mod.DB().RemovePV(v.pfn, m, vmtypes.VA(v.vpn*HWPageSize))
	}
	mod.Shootdown().InvalidateSpace(m.Space(), m.ActiveCPUs())
}

// ResidentCount returns the number of hardware mappings held.
func (m *nsMap) ResidentCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resident
}
