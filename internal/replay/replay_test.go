package replay

import (
	"bytes"
	"testing"

	"machvm/internal/trace"
	"machvm/internal/workload"
)

// recordWorld boots a world, runs fn under tracing, and returns the trace.
func recordWorld(t *testing.T, arch workload.Arch, opts workload.Options, fn func(w *workload.MachWorld)) *trace.Trace {
	t.Helper()
	w, err := workload.NewMachWorld(arch, opts)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	w.StartTrace()
	fn(w)
	return w.StopTrace()
}

// replayAndCheck replays tr and fails the test on any divergence. It also
// round-trips the trace through the text encoding first, so the golden
// check covers Encode/Decode fidelity too.
func replayAndCheck(t *testing.T, tr *trace.Trace) {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := trace.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d := trace.Diff(tr.Events, dec.Events); d != "" {
		t.Fatalf("encode/decode round trip not identical: %s", d)
	}
	res, err := Run(dec)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !res.OK() {
		t.Fatalf("replay diverged:\n%s", res.Divergence())
	}
}

func TestGoldenReplayTable71(t *testing.T) {
	tr := recordWorld(t, workload.ArchUVAX2, workload.Options{MemoryMB: 8, CPUs: 2, DiskMB: 16}, func(w *workload.MachWorld) {
		if _, err := workload.MachZeroFill(w, 256<<10, 2); err != nil {
			t.Fatalf("zerofill: %v", err)
		}
		if _, err := workload.MachFork(w, 128<<10, 2); err != nil {
			t.Fatalf("fork: %v", err)
		}
		if _, err := workload.MachFileRead(w, 192<<10); err != nil {
			t.Fatalf("fileread: %v", err)
		}
	})
	if len(tr.Events) == 0 {
		t.Fatal("recorded no events")
	}
	replayAndCheck(t, tr)
}

func TestGoldenReplayCompileWorld(t *testing.T) {
	tr := recordWorld(t, workload.ArchSun3, workload.Options{MemoryMB: 8, CPUs: 1, DiskMB: 32}, func(w *workload.MachWorld) {
		if _, err := workload.MachCompile(w, workload.ForkTestProgram()); err != nil {
			t.Fatalf("compile: %v", err)
		}
	})
	if len(tr.Events) == 0 {
		t.Fatal("recorded no events")
	}
	replayAndCheck(t, tr)
}

// TestReplayMemoryPressure records a run small enough to force pageouts, so
// the replay check covers reclaim ordering and pager write-back timing.
func TestReplayMemoryPressure(t *testing.T) {
	tr := recordWorld(t, workload.ArchUVAX2, workload.Options{MemoryMB: 2, CPUs: 1, DiskMB: 16}, func(w *workload.MachWorld) {
		if _, err := workload.MachZeroFill(w, 4<<20, 2); err != nil {
			t.Fatalf("zerofill: %v", err)
		}
		w.Kernel.PageoutScan()
	})
	sawReclaim := false
	for _, e := range tr.Events {
		if e.Kind == trace.EvReclaim {
			sawReclaim = true
			break
		}
	}
	if !sawReclaim {
		t.Fatal("pressure run recorded no reclaim events; shrink MemoryMB")
	}
	replayAndCheck(t, tr)
}

// TestRecordTwiceIdentical is the cheapest determinism check: two fresh
// worlds running the same workload must produce bit-identical traces.
func TestRecordTwiceIdentical(t *testing.T) {
	run := func() *trace.Trace {
		return recordWorld(t, workload.ArchUVAX2, workload.Options{MemoryMB: 4, CPUs: 2, DiskMB: 16}, func(w *workload.MachWorld) {
			if _, err := workload.MachZeroFill(w, 512<<10, 2); err != nil {
				t.Fatalf("zerofill: %v", err)
			}
			if _, err := workload.MachFileRead(w, 128<<10); err != nil {
				t.Fatalf("fileread: %v", err)
			}
		})
	}
	a, b := run(), run()
	if d := trace.Diff(a.Events, b.Events); d != "" {
		t.Fatalf("two recordings diverged: %s", d)
	}
	if a.Clock != b.Clock || a.Stats != b.Stats {
		t.Fatalf("end state diverged: clock %d vs %d\n  %s\n  %s", a.Clock, b.Clock, a.Stats, b.Stats)
	}
}
