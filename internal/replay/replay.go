// Package replay re-executes a recorded trace against a freshly booted
// kernel and verifies that the new kernel reproduces the recorded behavior
// bit for bit: the same event stream (input ops with the same results,
// observations at the same virtual-clock times) and the same final clock
// and stats snapshot.
//
// Replay executes only input ops (Kind.IsOp). Observations in the recorded
// stream are what the fresh kernel must regenerate on its own; any
// difference — an extra fault, a pager round trip at a different time, a
// different reclaim decision — is a determinism violation and is reported,
// not repaired.
package replay

import (
	"fmt"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/trace"
	"machvm/internal/vmtypes"
	"machvm/internal/workload"
)

// Result is the outcome of one replay.
type Result struct {
	// Replayed is the trace re-recorded during replay.
	Replayed *trace.Trace
	// EventDiff describes the first event-stream divergence ("" if the
	// streams are bit-identical).
	EventDiff string
	// ClockDiff and StatsDiff describe end-state divergences ("" if none).
	ClockDiff string
	StatsDiff string
}

// OK reports whether the replay was bit-identical to the recording.
func (r *Result) OK() bool {
	return r.EventDiff == "" && r.ClockDiff == "" && r.StatsDiff == ""
}

// Divergence summarizes every difference found ("" when OK).
func (r *Result) Divergence() string {
	out := ""
	for _, d := range []string{r.EventDiff, r.ClockDiff, r.StatsDiff} {
		if d == "" {
			continue
		}
		if out != "" {
			out += "\n"
		}
		out += d
	}
	return out
}

// Run boots a fresh world from the trace header, re-executes the trace's
// input ops against it, and compares what the fresh kernel did against
// what the recording says it must do. A returned error means the replay
// harness itself failed (unknown op, unbound ID — a corrupt or truncated
// trace); divergences of a well-formed replay are reported in the Result.
func Run(tr *trace.Trace) (*Result, error) {
	h := tr.Header
	// Boot through the scenario-API builder; zero header fields (old or
	// hand-written traces) keep the same defaults the recorder used.
	cfg := workload.NewConfig()
	if h.MemoryMB != 0 {
		cfg.MemoryMB = h.MemoryMB
	}
	if h.CPUs != 0 {
		cfg.CPUs = h.CPUs
	}
	if h.DiskMB != 0 {
		cfg.DiskMB = h.DiskMB
	}
	if h.ObjectCache != 0 {
		cfg.ObjectCacheSize = h.ObjectCache
	}
	cfg.Strategy = pmap.Strategy(h.Strategy)
	w, err := workload.BuildMachWorld(workload.Arch(h.Arch), cfg)
	if err != nil {
		return nil, fmt.Errorf("replay: booting world: %w", err)
	}
	w.StartTrace()

	st := &state{
		w:    w,
		k:    w.Kernel,
		maps: make(map[uint64]*core.Map),
		objs: make(map[uint64]*core.Object),
	}
	for i, e := range tr.Events {
		if !e.Kind.IsOp() {
			continue
		}
		if err := st.exec(e); err != nil {
			w.Kernel.SetTracer(nil)
			return nil, fmt.Errorf("replay: event %d (%s): %w", i, e.Kind, err)
		}
	}

	rep := w.StopTrace()
	res := &Result{Replayed: rep}
	res.EventDiff = trace.Diff(tr.Events, rep.Events)
	if rep.Clock != tr.Clock {
		res.ClockDiff = fmt.Sprintf("virtual clock diverged: recorded=%dns replayed=%dns", tr.Clock, rep.Clock)
	}
	if rep.Stats != tr.Stats {
		res.StatsDiff = fmt.Sprintf("stats snapshot diverged:\n  recorded: %s\n  replayed: %s", tr.Stats, rep.Stats)
	}
	return res, nil
}

// state binds the recorded map/object IDs to the live structures the
// replay run creates. If determinism holds, every live structure is
// assigned the exact ID the recording used; the event diff catches any
// drift even before an unbound-ID error would.
type state struct {
	w    *workload.MachWorld
	k    *core.Kernel
	maps map[uint64]*core.Map
	objs map[uint64]*core.Object
}

func (st *state) mapFor(id uint64) (*core.Map, error) {
	m, ok := st.maps[id]
	if !ok {
		return nil, fmt.Errorf("unbound map id %d", id)
	}
	return m, nil
}

func (st *state) objFor(id uint64) (*core.Object, error) {
	o, ok := st.objs[id]
	if !ok {
		return nil, fmt.Errorf("unbound object id %d", id)
	}
	return o, nil
}

func (st *state) cpuFor(idx int64) (*hw.CPU, error) {
	if idx < 0 {
		return nil, nil
	}
	if int(idx) >= st.w.Machine.NumCPUs() {
		return nil, fmt.Errorf("cpu %d out of range", idx)
	}
	return st.w.Machine.CPU(int(idx)), nil
}

// exec re-issues one input op. Op errors are deliberately not surfaced:
// the recorded event carries the error the original run saw, the replayed
// event carries this run's, and the event diff compares them.
func (st *state) exec(e trace.Event) error {
	switch e.Kind {
	case trace.OpNewMap:
		st.maps[e.Ret] = st.k.NewMap()
	case trace.OpDestroyMap:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		m.Destroy()
	case trace.OpActivate, trace.OpDeactivate:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		cpu, err := st.cpuFor(e.CPU)
		if err != nil || cpu == nil {
			return fmt.Errorf("activate needs a cpu: %v", err)
		}
		if e.Kind == trace.OpActivate {
			m.Activate(cpu)
		} else {
			m.Deactivate(cpu)
		}
	case trace.OpAllocate:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		_, _ = m.Allocate(vmtypes.VA(e.Addr), e.Size, e.Flag)
	case trace.OpAllocObject:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		obj, err := st.objFor(e.Obj)
		if err != nil {
			return err
		}
		prot := vmtypes.Prot(e.Arg & 0xff)
		maxProt := vmtypes.Prot((e.Arg >> 8) & 0xff)
		inherit := vmtypes.Inherit((e.Arg >> 16) & 0xff)
		cow := (e.Arg>>24)&1 != 0
		_, _ = m.AllocateWithObject(vmtypes.VA(e.Addr), e.Size, e.Flag, obj, e.Addr2, prot, maxProt, inherit, cow)
	case trace.OpDeallocate:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		_ = m.Deallocate(vmtypes.VA(e.Addr), e.Size)
	case trace.OpProtect:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		_ = m.Protect(vmtypes.VA(e.Addr), e.Size, e.Flag, vmtypes.Prot(e.Arg))
	case trace.OpInherit:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		_ = m.SetInherit(vmtypes.VA(e.Addr), e.Size, vmtypes.Inherit(e.Arg))
	case trace.OpWire:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		_ = m.Wire(vmtypes.VA(e.Addr), e.Size)
	case trace.OpUnwire:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		_ = m.Unwire(vmtypes.VA(e.Addr), e.Size)
	case trace.OpCopy:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		_ = m.Copy(vmtypes.VA(e.Addr), e.Size, vmtypes.VA(e.Addr2))
	case trace.OpCopyTo:
		src, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		dst, err := st.mapFor(e.Map2)
		if err != nil {
			return err
		}
		_, _ = src.CopyTo(dst, vmtypes.VA(e.Addr), e.Size, vmtypes.VA(e.Addr2), e.Flag)
	case trace.OpFork:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		st.maps[e.Ret] = m.Fork()
	case trace.OpFault:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		_ = st.k.Fault(m, vmtypes.VA(e.Addr), vmtypes.Prot(e.Arg))
	case trace.OpAccess:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		cpu, err := st.cpuFor(e.CPU)
		if err != nil {
			return err
		}
		var buf []byte
		if e.Flag {
			buf = e.Data.Bytes()
			if uint64(len(buf)) != e.Size {
				return fmt.Errorf("write payload %d bytes, size says %d", len(buf), e.Size)
			}
		} else {
			buf = make([]byte, e.Size)
		}
		_ = st.k.AccessBytes(cpu, m, vmtypes.VA(e.Addr), buf, e.Flag)
	case trace.OpVMRead:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		_, _ = st.k.VMRead(m, vmtypes.VA(e.Addr), e.Size)
	case trace.OpVMWrite:
		m, err := st.mapFor(e.Map)
		if err != nil {
			return err
		}
		_ = st.k.VMWrite(m, vmtypes.VA(e.Addr), e.Data.Bytes())
	case trace.OpScan:
		_ = st.k.PageoutScan()
	case trace.OpCharge:
		st.w.Machine.Charge(e.Arg)
	case trace.OpFileCreate:
		_ = st.w.CreateFile(e.Name, e.Data.Bytes())
	case trace.OpFileObject:
		obj, err := st.w.FileObject(e.Name)
		if err == nil && obj != nil {
			st.objs[e.Ret] = obj
		}
	case trace.OpReleaseObject:
		obj, err := st.objFor(e.Obj)
		if err != nil {
			return err
		}
		st.k.ReleaseObjectRef(obj)
	default:
		return fmt.Errorf("unknown input op %v", e.Kind)
	}
	return nil
}
