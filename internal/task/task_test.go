package task_test

import (
	"testing"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/sun3"
	"machvm/internal/task"
	"machvm/internal/vmtypes"
)

func newSun3Kernel(t testing.TB, cpus int) (*core.Kernel, *hw.Machine) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       sun3.DefaultCost(),
		HWPageSize: sun3.HWPageSize,
		PhysFrames: 1024,
		Holes:      []hw.FrameRange{sun3.DisplayHole(1024, 64)},
		CPUs:       cpus,
		TLBSize:    64,
	})
	mod := sun3.New(machine, pmap.ShootImmediate)
	k := core.MustNewKernel(core.Config{Machine: machine, Module: mod, PageSize: 8192})
	return k, machine
}

func TestTaskLifecycle(t *testing.T) {
	k, machine := newSun3Kernel(t, 1)
	tk := task.New(k, "init")
	th := tk.SpawnThread(machine.CPU(0))

	addr, err := tk.Map.Allocate(0, 64*1024, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Write(addr, []byte("task memory")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 11)
	if err := th.Read(addr, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "task memory" {
		t.Fatalf("got %q", buf)
	}
	tk.Destroy()
	// Destroy is idempotent.
	tk.Destroy()
}

func TestUNIXForkSemantics(t *testing.T) {
	// "When a fork operation is invoked, the newly created child task
	// address map is created based on the parent's inheritance values.
	// By default, all inheritance values ... are set to copy." (§2.1)
	k, machine := newSun3Kernel(t, 2)
	parent := task.New(k, "parent")
	thP := parent.SpawnThread(machine.CPU(0))

	addr, _ := parent.Map.Allocate(0, 128*1024, true)
	if err := thP.Write(addr, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}

	child := parent.Fork("child")
	thC := child.SpawnThread(machine.CPU(1))

	b := make([]byte, 1)
	if err := thC.Read(addr, b); err != nil {
		t.Fatalf("child read: %v", err)
	}
	if b[0] != 0xAA {
		t.Fatal("child must see parent data at fork")
	}
	if err := thC.Write(addr, []byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	if err := thP.Read(addr, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xAA {
		t.Fatal("child write visible in parent: fork is not copy-on-write-correct")
	}
	child.Destroy()
	parent.Destroy()
}

func TestThreadMigration(t *testing.T) {
	k, machine := newSun3Kernel(t, 2)
	tk := task.New(k, "mover")
	th := tk.SpawnThread(machine.CPU(0))
	addr, _ := tk.Map.Allocate(0, 8192, true)
	if err := th.Write(addr, []byte{1}); err != nil {
		t.Fatal(err)
	}
	th.MigrateTo(machine.CPU(1))
	b := make([]byte, 1)
	if err := th.Read(addr, b); err != nil {
		t.Fatalf("read after migration: %v", err)
	}
	if b[0] != 1 {
		t.Fatal("data lost across CPU migration")
	}
	tk.Destroy()
}

func TestManyTasksCompeteForSun3Contexts(t *testing.T) {
	// More than 8 active tasks on a SUN 3 must trigger context stealing
	// (§5.1) — and keep running correctly through the extra faults.
	k, machine := newSun3Kernel(t, 1)
	mod := k.Module().(*sun3.Module)
	cpu := machine.CPU(0)

	const n = sun3.NumContexts + 4
	tasks := make([]*task.Task, n)
	threads := make([]*task.Thread, n)
	addrs := make([]vmtypes.VA, n)
	for i := range tasks {
		tasks[i] = task.New(k, "t")
		threads[i] = tasks[i].SpawnThread(cpu)
		addrs[i], _ = tasks[i].Map.Allocate(0, 32*1024, true)
		if err := threads[i].Write(addrs[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Round-robin touches: every task keeps its data despite steals.
	for round := 0; round < 3; round++ {
		for i := range tasks {
			tasks[i].Map.Pmap().Activate(cpu)
			b := make([]byte, 1)
			if err := threads[i].Read(addrs[i], b); err != nil {
				t.Fatalf("task %d round %d: %v", i, round, err)
			}
			if b[0] != byte(i) {
				t.Fatalf("task %d data corrupted by context stealing", i)
			}
		}
	}
	if mod.ContextSteals() == 0 {
		t.Fatal("12 active tasks on 8 contexts should steal")
	}
	for _, tk := range tasks {
		tk.Destroy()
	}
}

func TestSuspendResume(t *testing.T) {
	k, _ := newSun3Kernel(t, 1)
	tk := task.New(k, "s")
	defer tk.Destroy()
	if tk.Suspended() {
		t.Fatal("fresh task must not be suspended")
	}
	tk.Suspend()
	tk.Suspend()
	tk.Resume()
	if !tk.Suspended() {
		t.Fatal("suspend count should still hold")
	}
	tk.Resume()
	if tk.Suspended() {
		t.Fatal("resume should clear suspension")
	}
}
