// Package task implements the Mach task and thread abstractions (§2):
// a task is an execution environment and the basic unit of resource
// allocation — a paged address space plus protected access to system
// resources; a thread is the basic unit of CPU utilization, roughly an
// independent program counter operating within a task. The UNIX notion of
// a process is a task with a single thread.
package task

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/ipc"
	"machvm/internal/vmtypes"
)

// Task is an execution environment and resource container.
type Task struct {
	kernel *core.Kernel

	// Map is the task's address map: an ordered collection of mappings
	// to memory objects.
	Map *core.Map

	// TaskPort represents the task itself; operations on the task are
	// performed by sending messages to it (§2: "the act of creating a
	// task ... returns access rights to a port which represents the new
	// object").
	TaskPort *ipc.Port

	name string
	id   uint64

	mu        sync.Mutex
	threads   []*Thread
	suspended int
	children  []*Task
	dead      bool
}

var taskIDs atomic.Uint64

// New creates a task with an empty address space and no threads.
func New(k *core.Kernel, name string) *Task {
	k.Machine().Charge(k.Machine().Cost.TaskCreate)
	t := &Task{
		kernel: k,
		Map:    k.NewMap(),
		name:   name,
		id:     taskIDs.Add(1),
	}
	t.TaskPort = ipc.NewPort(fmt.Sprintf("task:%s", name))
	return t
}

// Kernel returns the owning kernel.
func (t *Task) Kernel() *core.Kernel { return t.kernel }

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// ID returns the task's unique identifier.
func (t *Task) ID() uint64 { return t.id }

// Fork creates a child task whose address space is built from this task's
// inheritance values (§2.1): by default all inheritance is copy, so the
// child is a copy-on-write copy of the parent and UNIX address-space copy
// semantics are preserved.
func (t *Task) Fork(name string) *Task {
	child := &Task{
		kernel: t.kernel,
		Map:    t.Map.Fork(),
		name:   name,
		id:     taskIDs.Add(1),
	}
	child.TaskPort = ipc.NewPort(fmt.Sprintf("task:%s", name))
	t.mu.Lock()
	t.children = append(t.children, child)
	t.mu.Unlock()
	return child
}

// Destroy terminates the task, destroying its address space and ports.
func (t *Task) Destroy() {
	t.mu.Lock()
	if t.dead {
		t.mu.Unlock()
		return
	}
	t.dead = true
	threads := t.threads
	t.threads = nil
	t.mu.Unlock()
	for _, th := range threads {
		th.Detach()
	}
	t.TaskPort.Destroy()
	t.Map.Destroy()
}

// Suspend increments the task's suspend count (messages to the task port
// would do this in a full system; tests drive it directly).
func (t *Task) Suspend() {
	t.mu.Lock()
	t.suspended++
	t.mu.Unlock()
}

// Resume decrements the suspend count.
func (t *Task) Resume() {
	t.mu.Lock()
	if t.suspended > 0 {
		t.suspended--
	}
	t.mu.Unlock()
}

// Suspended reports whether the task is suspended.
func (t *Task) Suspended() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.suspended > 0
}

// Thread is the basic unit of CPU utilization. In the simulation a thread
// is bound to a simulated CPU while it runs; its memory accesses go
// through that CPU's TLB.
type Thread struct {
	task *Task
	cpu  *hw.CPU

	// ThreadPort represents the thread (suspend/resume messages etc.).
	ThreadPort *ipc.Port

	id uint64
}

var threadIDs atomic.Uint64

// SpawnThread creates a thread in the task and activates the task's
// address map on the given CPU (pmap_activate).
func (t *Task) SpawnThread(cpu *hw.CPU) *Thread {
	th := &Thread{
		task: t,
		cpu:  cpu,
		id:   threadIDs.Add(1),
	}
	th.ThreadPort = ipc.NewPort(fmt.Sprintf("thread:%s.%d", t.name, th.id))
	t.mu.Lock()
	t.threads = append(t.threads, th)
	t.mu.Unlock()
	t.Map.Activate(cpu)
	return th
}

// Task returns the thread's task.
func (th *Thread) Task() *Task { return th.task }

// CPU returns the CPU the thread is bound to.
func (th *Thread) CPU() *hw.CPU { return th.cpu }

// MigrateTo moves the thread to another CPU (deactivating and activating
// the pmap, as the machine-independent layer must tell the pmap which
// processors use which maps).
func (th *Thread) MigrateTo(cpu *hw.CPU) {
	th.task.Map.Deactivate(th.cpu)
	th.cpu = cpu
	th.task.Map.Activate(cpu)
}

// Detach unbinds the thread from its CPU.
func (th *Thread) Detach() {
	th.task.Map.Deactivate(th.cpu)
	th.ThreadPort.Destroy()
}

// Read performs a user-mode read of len(buf) bytes at va.
func (th *Thread) Read(va vmtypes.VA, buf []byte) error {
	return th.ReadContext(context.Background(), va, buf)
}

// ReadContext is Read with caller-controlled cancellation: a read stuck
// faulting against a slow or dead pager returns when ctx fires.
func (th *Thread) ReadContext(ctx context.Context, va vmtypes.VA, buf []byte) error {
	return th.task.kernel.AccessBytesContext(ctx, th.cpu, th.task.Map, va, buf, false)
}

// Write performs a user-mode write of buf at va.
func (th *Thread) Write(va vmtypes.VA, buf []byte) error {
	return th.WriteContext(context.Background(), va, buf)
}

// WriteContext is Write with caller-controlled cancellation.
func (th *Thread) WriteContext(ctx context.Context, va vmtypes.VA, buf []byte) error {
	return th.task.kernel.AccessBytesContext(ctx, th.cpu, th.task.Map, va, buf, true)
}

// Touch performs a single-byte access (fault driver).
func (th *Thread) Touch(va vmtypes.VA, write bool) error {
	return th.task.kernel.Touch(th.cpu, th.task.Map, va, write)
}

// TouchContext is Touch with caller-controlled cancellation.
func (th *Thread) TouchContext(ctx context.Context, va vmtypes.VA, write bool) error {
	return th.task.kernel.TouchContext(ctx, th.cpu, th.task.Map, va, write)
}
