package vmtypes_test

import (
	"testing"
	"testing/quick"

	"machvm/internal/vmtypes"
)

func TestProtAllows(t *testing.T) {
	cases := []struct {
		p, access vmtypes.Prot
		want      bool
	}{
		{vmtypes.ProtAll, vmtypes.ProtWrite, true},
		{vmtypes.ProtRead, vmtypes.ProtWrite, false},
		{vmtypes.ProtRead | vmtypes.ProtWrite, vmtypes.ProtRead | vmtypes.ProtWrite, true},
		{vmtypes.ProtNone, vmtypes.ProtNone, true},
		{vmtypes.ProtNone, vmtypes.ProtRead, false},
		{vmtypes.ProtExecute, vmtypes.ProtExecute, true},
	}
	for _, c := range cases {
		if got := c.p.Allows(c.access); got != c.want {
			t.Errorf("%v.Allows(%v) = %v", c.p, c.access, got)
		}
	}
}

func TestProtSetOps(t *testing.T) {
	if vmtypes.ProtRead.Union(vmtypes.ProtWrite) != vmtypes.ProtDefault {
		t.Fatal("union wrong")
	}
	if vmtypes.ProtAll.Intersect(vmtypes.ProtRead) != vmtypes.ProtRead {
		t.Fatal("intersect wrong")
	}
}

func TestProtString(t *testing.T) {
	cases := map[vmtypes.Prot]string{
		vmtypes.ProtNone:    "---",
		vmtypes.ProtRead:    "r--",
		vmtypes.ProtWrite:   "-w-",
		vmtypes.ProtExecute: "--x",
		vmtypes.ProtAll:     "rwx",
		vmtypes.ProtDefault: "rw-",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q; want %q", p, p.String(), want)
		}
	}
}

func TestInheritString(t *testing.T) {
	if vmtypes.InheritShared.String() != "shared" ||
		vmtypes.InheritCopy.String() != "copy" ||
		vmtypes.InheritNone.String() != "none" {
		t.Fatal("inherit strings wrong")
	}
	if vmtypes.Inherit(9).String() == "" {
		t.Fatal("unknown inherit should still render")
	}
}

func TestFaultKindString(t *testing.T) {
	for _, f := range []vmtypes.FaultKind{vmtypes.FaultNone, vmtypes.FaultTranslation, vmtypes.FaultProtection, vmtypes.FaultKind(7)} {
		if f.String() == "" {
			t.Fatal("empty fault kind string")
		}
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 1024, 1 << 40} {
		if !vmtypes.IsPowerOfTwo(v) {
			t.Errorf("%d should be a power of two", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 1023, (1 << 40) + 1} {
		if vmtypes.IsPowerOfTwo(v) {
			t.Errorf("%d should not be a power of two", v)
		}
	}
}

func TestRoundingProperties(t *testing.T) {
	sizes := []uint64{512, 1024, 4096, 8192}
	err := quick.Check(func(a uint32, sizeIdx uint8) bool {
		size := sizes[int(sizeIdx)%len(sizes)]
		v := uint64(a)
		down := vmtypes.RoundDown(v, size)
		up := vmtypes.RoundUp(v, size)
		return down <= v && v <= up &&
			down%size == 0 && up%size == 0 &&
			up-down < 2*size &&
			(v%size != 0 || (down == v && up == v))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
