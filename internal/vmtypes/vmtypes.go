// Package vmtypes defines the primitive types shared by every layer of the
// Mach VM reproduction: virtual and physical addresses, page frame numbers,
// protection codes, inheritance attributes and fault kinds.
//
// These correspond to the vocabulary of the paper's §2 and §3: protections
// are combinations of read, write and execute permission; inheritance is
// specified per page range as shared, copy or none; and a Mach page size is
// a boot-time parameter that must be a power-of-two multiple of the
// hardware page size.
package vmtypes

import "fmt"

// VA is a virtual address within a task address space.
type VA uint64

// PA is a physical address within simulated physical memory.
type PA uint64

// PFN is a hardware page frame number: PA / hardware page size.
type PFN uint64

// Prot is a protection code: a combination of read, write and execute
// permissions. The paper keeps two protections per address range — the
// current protection (controlling actual hardware permissions) and the
// maximum protection (a ceiling the current protection may never exceed).
type Prot uint8

// Protection bits.
const (
	ProtNone    Prot = 0
	ProtRead    Prot = 1 << 0
	ProtWrite   Prot = 1 << 1
	ProtExecute Prot = 1 << 2

	// ProtDefault is the default protection for freshly allocated memory.
	ProtDefault = ProtRead | ProtWrite
	// ProtAll is the most permissive protection.
	ProtAll = ProtRead | ProtWrite | ProtExecute
)

// Allows reports whether p grants every permission in access.
func (p Prot) Allows(access Prot) bool { return p&access == access }

// Union returns the union of the two protections.
func (p Prot) Union(q Prot) Prot { return p | q }

// Intersect returns the intersection of the two protections.
func (p Prot) Intersect(q Prot) Prot { return p & q }

func (p Prot) String() string {
	if p == ProtNone {
		return "---"
	}
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExecute != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Inherit is the inheritance attribute of an address range, consulted at
// fork time: shared ranges are shared read/write with the child, copy
// ranges are logically copied by value (implemented copy-on-write), and
// none ranges are left unallocated in the child.
type Inherit uint8

// Inheritance values.
const (
	InheritShared Inherit = iota
	InheritCopy
	InheritNone
)

func (i Inherit) String() string {
	switch i {
	case InheritShared:
		return "shared"
	case InheritCopy:
		return "copy"
	case InheritNone:
		return "none"
	default:
		return fmt.Sprintf("inherit(%d)", uint8(i))
	}
}

// FaultKind classifies the reason a memory access trapped.
type FaultKind uint8

// Fault kinds, as the simulated MMUs report them.
const (
	// FaultNone means the access completed without trapping.
	FaultNone FaultKind = iota
	// FaultTranslation means no valid mapping exists for the page.
	FaultTranslation
	// FaultProtection means a mapping exists but forbids the access.
	FaultProtection
)

func (f FaultKind) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTranslation:
		return "translation"
	case FaultProtection:
		return "protection"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// IsPowerOfTwo reports whether v is a nonzero power of two.
func IsPowerOfTwo(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// RoundDown rounds a down to a multiple of size (a power of two).
func RoundDown(a, size uint64) uint64 { return a &^ (size - 1) }

// RoundUp rounds a up to a multiple of size (a power of two).
func RoundUp(a, size uint64) uint64 { return (a + size - 1) &^ (size - 1) }

// IsZero reports whether every byte of b is zero. It is the shared
// zero-page detector behind the default pager's zero-page elision and the
// compressed swap tier's zero-blob fast path: a paged-out page of zeroes
// is stored as a sentinel instead of a copy. Word-at-a-time over the
// aligned body, byte checks for the edges.
func IsZero(b []byte) bool {
	i := 0
	// Unaligned (or short) head.
	for i < len(b) && (len(b)-i) >= 8 && i%8 != 0 {
		if b[i] != 0 {
			return false
		}
		i++
	}
	for ; i+8 <= len(b); i += 8 {
		if b[i]|b[i+1]|b[i+2]|b[i+3]|b[i+4]|b[i+5]|b[i+6]|b[i+7] != 0 {
			return false
		}
	}
	for ; i < len(b); i++ {
		if b[i] != 0 {
			return false
		}
	}
	return true
}
