package workload_test

import (
	"testing"

	"machvm/internal/workload"
)

// TestCompileWorkloadShape checks the Table 7-2 shape: Mach's compile
// times are nearly insensitive to the buffer configuration, while the
// traditional system collapses under the generic (small) configuration.
func TestCompileWorkloadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("compile workload is heavyweight")
	}
	cfg := workload.ThirteenPrograms()

	run := func(nbufs int) (mach, unix int64) {
		mw := workload.MustNewMachWorld(workload.ArchVAX8650, workload.Options{MemoryMB: 16, DiskMB: 128})
		uw := workload.NewUnixWorld(workload.ArchVAX8650, workload.Options{MemoryMB: 16, DiskMB: 128, NBufs: nbufs})
		m, err := workload.MachCompile(mw, cfg)
		if err != nil {
			t.Fatalf("MachCompile: %v", err)
		}
		u, err := workload.UnixCompile(uw, cfg)
		if err != nil {
			t.Fatalf("UnixCompile: %v", err)
		}
		return m, u
	}

	mach400, unix400 := run(400)
	machGen, unixGen := run(64) // "generic configuration": few buffers

	t.Logf("13 programs, 400 buffers: mach=%.0fs unix=%.0fs (paper: 23s / 28s)",
		float64(mach400)/1e9, float64(unix400)/1e9)
	t.Logf("13 programs, generic:     mach=%.0fs unix=%.0fs (paper: 19s / 76s)",
		float64(machGen)/1e9, float64(unixGen)/1e9)

	if mach400 >= unix400 {
		t.Errorf("Mach should win at 400 buffers: %d vs %d", mach400, unix400)
	}
	if machGen >= unixGen {
		t.Errorf("Mach should win at generic config: %d vs %d", machGen, unixGen)
	}
	// Mach is nearly configuration-insensitive...
	if float64(machGen) > 1.3*float64(mach400) {
		t.Errorf("Mach too sensitive to buffer config: %d vs %d", machGen, mach400)
	}
	// ...while the baseline collapses under the generic configuration.
	if float64(unixGen) < 1.8*float64(unix400) {
		t.Errorf("baseline should collapse at generic config: %d vs %d", unixGen, unix400)
	}
}

func TestSunCompileShape(t *testing.T) {
	cfg := workload.ForkTestProgram()
	mw := workload.MustNewMachWorld(workload.ArchSun3, workload.Options{MemoryMB: 16})
	uw := workload.NewUnixWorld(workload.ArchSun3, workload.Options{MemoryMB: 16})
	m, err := workload.MachCompile(mw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	u, err := workload.UnixCompile(uw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fork test compile SUN 3: mach=%.1fs sunos=%.1fs (paper: 3s / 6s)", float64(m)/1e9, float64(u)/1e9)
	if m >= u {
		t.Errorf("Mach should beat SunOS: %d vs %d", m, u)
	}
}
