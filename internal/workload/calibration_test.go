package workload_test

import (
	"testing"

	"machvm/internal/workload"
)

// TestCalibrationPrint prints the Table 7-1 micro-operations for each
// architecture so the cost models can be tuned against the paper's
// numbers. Run with -v to see the values; assertions only check the
// qualitative shape (who wins), which is what the reproduction promises.
func TestCalibrationPrint(t *testing.T) {
	type rowResult struct {
		arch     workload.Arch
		zfMach   int64
		zfUnix   int64
		forkMach int64
		forkUnix int64
	}
	for _, a := range []workload.Arch{workload.ArchRTPC, workload.ArchUVAX2, workload.ArchSun3} {
		mw := workload.MustNewMachWorld(a, workload.Options{MemoryMB: 8})
		uw := workload.NewUnixWorld(a, workload.Options{MemoryMB: 8})

		zfM, err := workload.MachZeroFill(mw, 1024, 50)
		if err != nil {
			t.Fatalf("%v MachZeroFill: %v", a, err)
		}
		zfU, err := workload.UnixZeroFill(uw, 1024, 50)
		if err != nil {
			t.Fatalf("%v UnixZeroFill: %v", a, err)
		}
		fkM, err := workload.MachFork(mw, 256*1024, 10)
		if err != nil {
			t.Fatalf("%v MachFork: %v", a, err)
		}
		fkU, err := workload.UnixFork(uw, 256*1024, 10)
		if err != nil {
			t.Fatalf("%v UnixFork: %v", a, err)
		}
		t.Logf("%-12s zero-fill 1K: mach=%.2fms unix=%.2fms | fork 256K: mach=%.1fms unix=%.1fms",
			a, float64(zfM)/1e6, float64(zfU)/1e6, float64(fkM)/1e6, float64(fkU)/1e6)
		if zfM >= zfU {
			t.Errorf("%v: Mach zero-fill (%d) should beat UNIX (%d)", a, zfM, zfU)
		}
		if fkM >= fkU {
			t.Errorf("%v: Mach fork (%d) should beat UNIX (%d)", a, fkM, fkU)
		}
	}

	// File reads on the VAX 8200.
	mw := workload.MustNewMachWorld(workload.ArchVAX8200, workload.Options{MemoryMB: 16})
	uw := workload.NewUnixWorld(workload.ArchVAX8200, workload.Options{MemoryMB: 16, NBufs: 400})
	big := 2500 * 1024
	small := 50 * 1024
	mBig, err := workload.MachFileRead(mw, big)
	if err != nil {
		t.Fatal(err)
	}
	uBig, err := workload.UnixFileRead(uw, big)
	if err != nil {
		t.Fatal(err)
	}
	mSmall, err := workload.MachFileRead(mw, small)
	if err != nil {
		t.Fatal(err)
	}
	uSmall, err := workload.UnixFileRead(uw, small)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("read 2.5M: mach first=%.2fs second=%.2fs | unix first=%.2fs second=%.2fs",
		float64(mBig.First)/1e9, float64(mBig.Second)/1e9, float64(uBig.First)/1e9, float64(uBig.Second)/1e9)
	t.Logf("read 50K:  mach first=%.2fs second=%.2fs | unix first=%.2fs second=%.2fs",
		float64(mSmall.First)/1e9, float64(mSmall.Second)/1e9, float64(uSmall.First)/1e9, float64(uSmall.Second)/1e9)

	// Shape: Mach's second big read is much cheaper than its first
	// (object cache); UNIX's is not (2.5MB > 400 buffers).
	if mBig.Second*3 >= mBig.First {
		t.Errorf("Mach second 2.5M read %.2fs not ≪ first %.2fs", float64(mBig.Second)/1e9, float64(mBig.First)/1e9)
	}
	if uBig.Second*2 < uBig.First {
		t.Errorf("UNIX second 2.5M read should not be cached (400 buffers): first=%.2fs second=%.2fs",
			float64(uBig.First)/1e9, float64(uBig.Second)/1e9)
	}
	// The 50K file fits both systems' caches: second reads are cheap.
	if uSmall.Second*2 >= uSmall.First {
		t.Errorf("UNIX second 50K read should be cached: first=%.2fs second=%.2fs",
			float64(uSmall.First)/1e9, float64(uSmall.Second)/1e9)
	}
}
