package server

// The fault/failover matrix: {healthy, slow, flaky, dead pager} × {normal,
// OOM pressure} × {clean, racy teardown} over a shrunk server world. Each
// cell boots a fresh world whose swap stack is a per-tenant-tier pager
// chain — flaky injector over a compressed tier over a network pager
// served in-process across a net.Pipe — drives the churn loop under a
// bounded context, and passes when it completes with zero structural
// invariant violations (healthy cells additionally require a clean pager
// boundary). Cells run real goroutines and wall-clock pager delays, so
// they are validated by invariants and the race detector, not by replay.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pager"
	"machvm/internal/pager/netpager"
	"machvm/internal/pager/ztier"
	"machvm/internal/task"
	"machvm/internal/vmtypes"
	"machvm/internal/workload"
)

// PagerMode is the cell's pager-failure axis.
type PagerMode int

// The pager failure modes.
const (
	PagerHealthy PagerMode = iota
	PagerSlow              // every call delayed, inside the deadline
	PagerFlaky             // periodic injected errors and short reads
	PagerDead              // requests never answered; only the deadline ends them
)

// String names the mode.
func (m PagerMode) String() string {
	switch m {
	case PagerHealthy:
		return "healthy"
	case PagerSlow:
		return "slow"
	case PagerFlaky:
		return "flaky"
	case PagerDead:
		return "dead"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Cell is one matrix coordinate.
type Cell struct {
	Pager        PagerMode
	OOM          bool
	TeardownRace bool
}

// Name renders the coordinate compactly.
func (c Cell) Name() string {
	p := "mem=ok"
	if c.OOM {
		p = "mem=oom"
	}
	t := "teardown=clean"
	if c.TeardownRace {
		t = "teardown=racy"
	}
	return fmt.Sprintf("pager=%s %s %s", c.Pager, p, t)
}

// CellResult is one cell's outcome.
type CellResult struct {
	Cell      Cell
	Pass      bool
	Reason    string // why the cell failed ("" when it passed)
	Completed bool

	TasksRun            int
	Faults              uint64
	FaultErrors         uint64 // tolerated per-task failures (OOM, teardown, pager)
	PagerTimeouts       uint64
	PagerErrors         uint64
	InvariantViolations int
	VirtualNS           int64
}

// DefaultMatrix is the full 16-cell sweep.
func DefaultMatrix() []Cell {
	var cells []Cell
	for _, pm := range []PagerMode{PagerHealthy, PagerSlow, PagerFlaky, PagerDead} {
		for _, oom := range []bool{false, true} {
			for _, race := range []bool{false, true} {
				cells = append(cells, Cell{Pager: pm, OOM: oom, TeardownRace: race})
			}
		}
	}
	return cells
}

// MatrixConfig tunes the per-cell workload. The zero value is the CI
// smoke configuration.
type MatrixConfig struct {
	// Tasks per cell (default 12).
	Tasks int
	// WorkPages per task (default 8; OOM cells get 4x).
	WorkPages int
	// CellTimeout bounds one cell (default 30s).
	CellTimeout time.Duration
}

func (mc MatrixConfig) withDefaults() MatrixConfig {
	if mc.Tasks == 0 {
		mc.Tasks = 12
	}
	if mc.WorkPages == 0 {
		mc.WorkPages = 8
	}
	if mc.CellTimeout == 0 {
		mc.CellTimeout = 30 * time.Second
	}
	return mc
}

// RunMatrix sweeps the cells sequentially and returns one result each.
func RunMatrix(ctx context.Context, a workload.Arch, cells []Cell, mc MatrixConfig) []CellResult {
	results := make([]CellResult, 0, len(cells))
	for _, c := range cells {
		results = append(results, RunCell(ctx, a, c, mc))
	}
	return results
}

// cellPagers is the per-cell pager chain, kept for knob access and
// teardown.
type cellPagers struct {
	flaky  *pager.FlakyPager
	tier   *ztier.Tier
	client *netpager.Client
	served sync.WaitGroup
}

func (cp *cellPagers) close() {
	if cp.tier != nil {
		cp.tier.Close()
	}
	if cp.client != nil {
		cp.client.Close() // unblocks Serve on the other pipe end
	}
	cp.served.Wait()
}

// RunCell boots a world for the cell, drives the shrunk server churn
// under a bounded context, and judges the outcome.
func RunCell(ctx context.Context, a workload.Arch, c Cell, mc MatrixConfig) CellResult {
	mc = mc.withDefaults()
	res := CellResult{Cell: c}
	ctx, cancel := context.WithTimeout(ctx, mc.CellTimeout)
	defer cancel()

	memMB := 8
	workPages := mc.WorkPages
	if c.OOM {
		// Undersized memory plus oversized working sets: the allocator
		// must reclaim continuously and sometimes report ErrNoMemory.
		memMB = 2
		workPages *= 4
	}
	pageSz := uint64(workload.SpecFor(a).MachPageSize)
	cp := &cellPagers{}
	sc := workload.Mach(
		func(ctx context.Context, w *workload.MachWorld) (workload.Report, error) {
			return driveCell(ctx, w, c, cp, workPages, mc.Tasks, &res)
		},
		workload.WithMemoryMB(memMB),
		// Short conversations so dead-pager cells resolve in bounded wall
		// time: one attempt, 100ms budget.
		workload.WithPagerPolicy(core.PagerPolicy{
			Deadline:    100 * time.Millisecond,
			Retries:     -1,
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
		}),
		workload.WithInjector(func(core.Pager) core.Pager {
			// Replace the swap stack wholesale: flaky(ztier(netpager)),
			// the per-tenant-tier chain, served in-process.
			cli, srv := net.Pipe()
			cp.served.Add(1)
			go func() {
				defer cp.served.Done()
				_ = netpager.Serve(srv, netpager.NewMemBackend(pageSz))
			}()
			cp.client = netpager.NewClient(cli, "tier")
			cp.tier = ztier.New(cp.client, ztier.Config{
				Budget:            256 << 10,
				PageSize:          pageSz,
				WritebackDeadline: 200 * time.Millisecond,
			})
			cp.flaky = pager.NewFlakyPager(cp.tier)
			switch c.Pager {
			case PagerSlow:
				cp.flaky.SetDelay(2 * time.Millisecond)
			case PagerDead:
				cp.flaky.SetDrop(true)
			}
			return cp.flaky
		}),
	)
	w, err := sc.Build(a)
	if err != nil {
		res.Reason = "build: " + err.Error()
		return res
	}
	defer cp.close()
	rep, err := w.Run(ctx)
	res.Faults = rep.Stats.Faults
	res.PagerTimeouts = rep.Stats.PagerTimeouts
	res.PagerErrors = rep.Stats.PagerErrors
	res.VirtualNS = rep.VirtualNS
	if err != nil {
		res.Reason = "run: " + err.Error()
		return res
	}
	res.Completed = true
	res.InvariantViolations = len(w.Kernel().CheckInvariants())

	switch {
	case res.InvariantViolations != 0:
		res.Reason = fmt.Sprintf("%d invariant violations", res.InvariantViolations)
	case res.TasksRun < mc.Tasks:
		res.Reason = fmt.Sprintf("only %d/%d tasks ran", res.TasksRun, mc.Tasks)
	case c.Pager == PagerHealthy && !c.OOM && !c.TeardownRace && res.FaultErrors != 0:
		res.Reason = fmt.Sprintf("%d fault errors in the clean cell", res.FaultErrors)
	case c.Pager == PagerHealthy && res.PagerTimeouts != 0:
		res.Reason = fmt.Sprintf("%d pager timeouts with a healthy pager", res.PagerTimeouts)
	default:
		res.Pass = true
	}
	return res
}

// tolerable reports whether a per-task error is an expected degradation
// for the cell — resource exhaustion, a torn-down map, a pager failure
// or the cell deadline — rather than a kernel defect. The judge above
// still fails cells where tolerated errors are not allowed.
func tolerable(err error) bool {
	return errors.Is(err, core.ErrNoMemory) ||
		errors.Is(err, core.ErrFaultNoEntry) ||
		errors.Is(err, pager.ErrInjected) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		strings.Contains(err.Error(), "pager") // deadline/fallback wrapping
}

// driveCell is the shrunk server churn: one tenant image, fork/exec
// tasks, working-set touches, pageout pressure — with injected pager
// behavior rearmed per task and, in racy cells, a concurrent goroutine
// destroying tasks out from under in-flight touches.
func driveCell(ctx context.Context, w *workload.MachWorld, c Cell, cp *cellPagers, workPages, tasks int, res *CellResult) (workload.Report, error) {
	k := w.Kernel
	cpu := w.Machine.CPU(0)
	pageSz := k.PageSize()

	countErr := func(err error) error {
		if err == nil {
			return nil
		}
		if tolerable(err) {
			res.FaultErrors++
			return nil
		}
		return err
	}

	// In OOM cells the base task's anonymous state plus each child's
	// fully written working set must exceed physical memory, so the
	// reclaimer pages out continuously, faults pull back through the
	// injected swap stack, and allocation sometimes fails outright.
	anonPages := uint64(workPages)
	if c.OOM {
		if tp := uint64(k.TotalPages()) / 2; tp > anonPages {
			anonPages = tp
		}
	}

	imgBuf := make([]byte, 8*pageSz)
	for j := range imgBuf {
		imgBuf[j] = 0x5C
	}
	if err := w.CreateFile("app", imgBuf); err != nil {
		return workload.Report{}, err
	}
	base := task.New(k, "base")
	baseTh := base.SpawnThread(cpu)
	anonSize := anonPages * pageSz
	anon, err := base.Map.Allocate(0, anonSize, true)
	if err != nil {
		return workload.Report{}, err
	}
	anonBuf := make([]byte, anonSize)
	if err := countErr(baseTh.WriteContext(ctx, anon, anonBuf)); err != nil {
		return workload.Report{}, err
	}

	// The teardown racer: destroys whatever tasks the main loop hands it,
	// concurrently with the main loop's touches on those same maps.
	var victims chan *task.Task
	var racer sync.WaitGroup
	var stopRacer sync.Once
	if c.TeardownRace {
		victims = make(chan *task.Task, tasks)
		racer.Add(1)
		go func() {
			defer racer.Done()
			for t := range victims {
				t.Destroy()
			}
		}()
		defer racer.Wait()
		defer stopRacer.Do(func() { close(victims) })
	}

	workBuf := make([]byte, 64)
	childBuf := make([]byte, anonSize)
	lcg := uint64(1)
	for n := 0; n < tasks; n++ {
		if ctx.Err() != nil {
			break
		}
		if c.Pager == PagerFlaky && n%3 == 0 {
			// Rearm intermittent misbehaviour: a burst of failures and a
			// short read, then clean again.
			cp.flaky.FailNextRequests(2)
			cp.flaky.SetShortRead(int(pageSz) / 2)
		}

		child := base.Fork(fmt.Sprintf("req%d", n))
		th := child.SpawnThread(cpu)

		// COW push from the parent, copy pull from the child.
		off := vmtypes.VA((uint64(n) % anonPages) * pageSz)
		if err := countErr(baseTh.WriteContext(ctx, anon+off, workBuf)); err != nil {
			return workload.Report{Ops: n}, err
		}
		if err := countErr(th.ReadContext(ctx, anon+off, workBuf)); err != nil {
			return workload.Report{Ops: n}, err
		}

		// exec: map the shared image.
		if err := countErr(execImage(ctx, w, child, cpu, workBuf, pageSz)); err != nil {
			return workload.Report{Ops: n}, err
		}

		// Private working set.
		workVA, aerr := child.Map.Allocate(0, anonSize, true)
		if aerr != nil {
			if err := countErr(aerr); err != nil {
				return workload.Report{Ops: n}, err
			}
			res.TasksRun++
			child.Destroy()
			continue
		}

		// Dirty the whole working set: in OOM cells base + child exceed
		// physical memory, so this is what forces the reclaimer's hand.
		if err := countErr(th.WriteContext(ctx, workVA, childBuf)); err != nil {
			return workload.Report{Ops: n}, err
		}

		// In racy cells the task is handed to the destroyer before its
		// touches finish — faults race Map.Destroy by design.
		if c.TeardownRace {
			victims <- child
		}
		for r := 0; r < 16; r++ {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			va := workVA + vmtypes.VA((lcg>>33)%anonPages*pageSz)
			var terr error
			if r%2 == 0 {
				terr = th.WriteContext(ctx, va, workBuf)
			} else {
				terr = th.ReadContext(ctx, va, workBuf)
			}
			if err := countErr(terr); err != nil {
				return workload.Report{Ops: n}, err
			}
		}
		if !c.TeardownRace {
			th.Detach()
			child.Destroy()
		}
		res.TasksRun++

		// Keep the reclaimer under sustained demand. Frequent scans also
		// push pages to swap in cells without allocation pressure, so even
		// mem=ok cells exercise the injected pager stack on the way back.
		if n%2 == 1 {
			k.PageoutScan()
		}
	}

	if c.TeardownRace {
		stopRacer.Do(func() { close(victims) })
		racer.Wait()
	}
	base.Destroy()
	return workload.Report{Ops: res.TasksRun}, nil
}

// execImage maps the shared app image into the task and strides through
// it — the exec text mapping, demand paged from the shared page cache.
func execImage(ctx context.Context, w *workload.MachWorld, t *task.Task, cpu *hw.CPU, buf []byte, pageSz uint64) error {
	k := w.Kernel
	obj, err := w.FileObject("app")
	if err != nil {
		return err
	}
	va, err := t.Map.AllocateWithObject(0, obj.Size(), true, obj, 0,
		vmtypes.ProtRead|vmtypes.ProtExecute, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		k.ReleaseObjectRef(obj)
		return err
	}
	for off := uint64(0); off < obj.Size(); off += 2 * pageSz {
		if err := k.AccessBytesContext(ctx, cpu, t.Map, va+vmtypes.VA(off), buf, false); err != nil {
			return err
		}
	}
	return nil
}

// Grid renders the matrix as an aligned pass/fail table.
func Grid(results []CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-6s %8s %8s %8s %8s %8s %6s  %s\n",
		"cell", "result", "tasks", "faults", "flterrs", "timeouts", "pgrerrs", "inv", "note")
	for _, r := range results {
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-44s %-6s %8d %8d %8d %8d %8d %6d  %s\n",
			r.Cell.Name(), verdict, r.TasksRun, r.Faults, r.FaultErrors,
			r.PagerTimeouts, r.PagerErrors, r.InvariantViolations, r.Reason)
	}
	return b.String()
}

// AllPass reports whether every cell passed.
func AllPass(results []CellResult) bool {
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return true
}
