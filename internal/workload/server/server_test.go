package server_test

import (
	"context"
	"testing"

	"machvm/internal/replay"
	"machvm/internal/workload"
	"machvm/internal/workload/server"
)

// smallCfg keeps the deterministic world fast enough for -race CI while
// still exercising every mechanism: multiple tenants, fork/exec churn,
// COW pushes, shared-image paging, output files, pageout scans.
var smallCfg = server.Config{
	Tenants:        2,
	TasksPerTenant: 6,
	ImagePages:     8,
	WorkPages:      4,
	Requests:       8,
	PageoutEvery:   5,
}

func runOnce(t *testing.T, a workload.Arch) (workload.Report, string, int64) {
	t.Helper()
	w, err := server.Scenario(smallCfg, workload.WithMemoryMB(4)).Build(a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mr := w.(*workload.MachRun)
	defer mr.World.Close()
	return rep, workload.StatsString(mr.World.Kernel), mr.World.Machine.Clock.Now()
}

func TestServerWorldDeterministic(t *testing.T) {
	// Two fresh worlds, same config: identical stats, clock, and SLO
	// percentiles, because everything runs on the virtual clock.
	rep1, stats1, clock1 := runOnce(t, workload.ArchSun3)
	rep2, stats2, clock2 := runOnce(t, workload.ArchSun3)
	if stats1 != stats2 {
		t.Errorf("stats diverged:\n  run1: %s\n  run2: %s", stats1, stats2)
	}
	if clock1 != clock2 {
		t.Errorf("virtual clock diverged: %d vs %d", clock1, clock2)
	}
	if rep1.SLO == nil || rep2.SLO == nil {
		t.Fatal("missing SLO snapshot")
	}
	if *rep1.SLO != *rep2.SLO {
		t.Errorf("SLO diverged:\n  run1: %+v\n  run2: %+v", *rep1.SLO, *rep2.SLO)
	}
	if rep1.SLO.Faults == 0 || rep1.SLO.FaultP99NS <= 0 {
		t.Errorf("implausible SLO snapshot: %+v", *rep1.SLO)
	}
	if rep1.SLO.InvariantViolations != 0 {
		t.Errorf("%d invariant violations", rep1.SLO.InvariantViolations)
	}
	if rep1.Ops != smallCfg.Tenants*smallCfg.TasksPerTenant {
		t.Errorf("ran %d tasks, want %d", rep1.Ops, smallCfg.Tenants*smallCfg.TasksPerTenant)
	}
}

func TestServerWorldRecordReplay(t *testing.T) {
	// Golden replay: record a full server-world run, replay it on a fresh
	// kernel, and require a bit-identical event stream, clock, and stats.
	cfg := workload.NewConfig()
	cfg.MemoryMB = 4
	w, err := workload.BuildMachWorld(workload.ArchVAX8650, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.StartTrace()
	if _, err := server.Run(context.Background(), w, smallCfg); err != nil {
		t.Fatal(err)
	}
	w.Machine.FlushAllCharges()
	tr := w.StopTrace()
	if len(tr.Events) == 0 {
		t.Fatal("recorded no events")
	}

	res, err := replay.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("replay diverged:\n%s", res.Divergence())
	}
}

var matrixCfg = server.MatrixConfig{Tasks: 5, WorkPages: 4}

func TestServerFaultMatrix(t *testing.T) {
	// The full {pager} x {memory} x {teardown} sweep on a shrunk world.
	if testing.Short() {
		t.Skip("full matrix includes dead-pager timeout cells")
	}
	results := server.RunMatrix(context.Background(), workload.ArchVAX8200, server.DefaultMatrix(), matrixCfg)
	if len(results) != 16 {
		t.Fatalf("expected 16 cells, got %d", len(results))
	}
	t.Logf("matrix:\n%s", server.Grid(results))
	if !server.AllPass(results) {
		t.Errorf("matrix failures:\n%s", server.Grid(results))
	}
	for _, r := range results {
		if r.InvariantViolations != 0 {
			t.Errorf("%s: %d invariant violations", r.Cell.Name(), r.InvariantViolations)
		}
	}
}

func TestServerMatrixRaceCell(t *testing.T) {
	// The nastiest single cell — injected pager failures, memory
	// exhaustion, and concurrent teardown — run under -race in CI.
	cell := server.Cell{Pager: server.PagerFlaky, OOM: true, TeardownRace: true}
	r := server.RunCell(context.Background(), workload.ArchVAX8200, cell, matrixCfg)
	if !r.Pass {
		t.Fatalf("cell failed: %s\n%s", r.Reason, server.Grid([]server.CellResult{r}))
	}
	if r.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations", r.InvariantViolations)
	}
}
