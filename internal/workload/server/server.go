// Package server is the multi-tenant server world: thousands of
// short-lived tasks churning through fork/exec over per-tenant shared
// app images (COW storms over a shared page cache), dirty anonymous
// state, deterministic request traffic, and periodic pageout pressure —
// all on the virtual clock, so fault-latency percentiles are
// host-independent and the whole run records and replays bit-for-bit
// through the trace layer.
//
// The deterministic driver in this file follows the DESIGN.md §11
// discipline (one goroutine, Background contexts, standard pagers only).
// The fault/failover matrix in matrix.go deliberately breaks it — real
// concurrency, external pager stacks, injected failures — and is
// validated by invariants and race-cleanliness instead of replay.
package server

import (
	"context"
	"fmt"

	"machvm/internal/task"
	"machvm/internal/vmtypes"
	"machvm/internal/workload"
)

// Config shapes the server workload. Zero fields take defaults.
type Config struct {
	// Tenants is the number of tenants, each with its own app image and
	// long-lived base task (default 4).
	Tenants int
	// TasksPerTenant is how many short-lived tasks each tenant churns
	// through (default 25).
	TasksPerTenant int
	// ImagePages sizes each tenant's app image in Mach pages
	// (default 16).
	ImagePages int
	// WorkPages is per-task working memory in pages (default 8).
	WorkPages int
	// Requests is the number of request touches a task serves before it
	// exits (default 32).
	Requests int
	// PageoutEvery runs a synchronous pageout scan every that many tasks
	// — the sustained background pressure (default 16; negative
	// disables).
	PageoutEvery int
	// Seed drives the request-traffic LCG (default 1).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.TasksPerTenant == 0 {
		c.TasksPerTenant = 25
	}
	if c.ImagePages == 0 {
		c.ImagePages = 16
	}
	if c.WorkPages == 0 {
		c.WorkPages = 8
	}
	if c.Requests == 0 {
		c.Requests = 32
	}
	if c.PageoutEvery == 0 {
		c.PageoutEvery = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Scenario wraps the deterministic server world in the scenario API.
func Scenario(cfg Config, opts ...workload.Option) workload.Scenario {
	return workload.Mach(func(ctx context.Context, w *workload.MachWorld) (workload.Report, error) {
		return Run(ctx, w, cfg)
	}, opts...)
}

// tenant is one tenant's long-lived state: the app image file and the
// base task every request task forks from.
type tenant struct {
	image    string
	base     *task.Task
	baseTh   *task.Thread
	anon     vmtypes.VA
	anonSize uint64
	fill     byte
}

// Run drives the server world on a booted Mach world, single-threaded
// and deterministic: every operation is a traced primitive, so a
// recording of this run replays bit-identically.
func Run(ctx context.Context, w *workload.MachWorld, cfg Config) (workload.Report, error) {
	cfg = cfg.withDefaults()
	k := w.Kernel
	cpu := w.Machine.CPU(0)
	pageSz := k.PageSize()

	// Boot each tenant: app image on disk, base task with the image
	// mapped and warmed plus dirty anonymous state — the address space
	// every request task is forked from.
	tenants := make([]*tenant, cfg.Tenants)
	imgBuf := make([]byte, uint64(cfg.ImagePages)*pageSz)
	strideBuf := make([]byte, 64)
	for i := range tenants {
		tt := &tenant{
			image:    fmt.Sprintf("t%d/app", i),
			anonSize: uint64(cfg.WorkPages) * pageSz,
			fill:     byte(0x41 + i%26),
		}
		for j := range imgBuf {
			imgBuf[j] = tt.fill
		}
		if err := w.CreateFile(tt.image, imgBuf); err != nil {
			return workload.Report{}, err
		}
		tt.base = task.New(k, fmt.Sprintf("tenant%d", i))
		tt.baseTh = tt.base.SpawnThread(cpu)
		addr, err := tt.base.Map.Allocate(0, tt.anonSize, true)
		if err != nil {
			return workload.Report{}, err
		}
		tt.anon = addr
		anonBuf := make([]byte, tt.anonSize)
		for j := range anonBuf {
			anonBuf[j] = tt.fill
		}
		if err := tt.baseTh.Write(tt.anon, anonBuf); err != nil {
			return workload.Report{}, err
		}
		if err := mapAndTouchImage(w, tt.base, tt.image, strideBuf, pageSz); err != nil {
			return workload.Report{}, err
		}
		tenants[i] = tt
	}

	// Churn: round-robin across tenants, one short-lived task at a time.
	total := cfg.Tenants * cfg.TasksPerTenant
	workBuf := make([]byte, uint64(cfg.WorkPages)*pageSz)
	pageBuf := make([]byte, pageSz)
	outBuf := make([]byte, 2*pageSz)
	lcg := cfg.Seed
	for n := 0; n < total; n++ {
		if err := ctx.Err(); err != nil {
			return workload.Report{Ops: n}, err
		}
		tt := tenants[n%cfg.Tenants]

		// fork(2): COW child of the tenant's base task.
		child := tt.base.Fork(fmt.Sprintf("req%d", n))
		th := child.SpawnThread(cpu)

		// The parent keeps serving: writing its anonymous state while the
		// child holds a copy forces the COW shadow push — the storm.
		off := (uint64(n/cfg.Tenants) % uint64(cfg.WorkPages)) * pageSz
		for j := range pageBuf {
			pageBuf[j] = tt.fill ^ 1
		}
		if err := tt.baseTh.Write(tt.anon+vmtypes.VA(off), pageBuf); err != nil {
			return workload.Report{Ops: n}, err
		}
		// The child reads the inherited page it now must copy-on-reference.
		if err := th.Read(tt.anon+vmtypes.VA(off), strideBuf); err != nil {
			return workload.Report{Ops: n}, err
		}

		// exec(2): map the tenant's app image — a shared page-cache hit
		// for every task after the first — and run through its text.
		if err := mapAndTouchImage(w, child, tt.image, strideBuf, pageSz); err != nil {
			return workload.Report{Ops: n}, err
		}

		// Task-private working memory.
		for j := range workBuf {
			workBuf[j] = tt.fill ^ 2
		}
		workVA, err := child.Map.Allocate(0, uint64(cfg.WorkPages)*pageSz, true)
		if err != nil {
			return workload.Report{Ops: n}, err
		}
		if err := th.Write(workVA, workBuf); err != nil {
			return workload.Report{Ops: n}, err
		}

		// Serve requests: LCG-driven touches over the working set,
		// alternating reads and writes.
		for r := 0; r < cfg.Requests; r++ {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			page := (lcg >> 33) % uint64(cfg.WorkPages)
			va := workVA + vmtypes.VA(page*pageSz)
			if r%2 == 0 {
				err = th.Read(va, strideBuf)
			} else {
				err = th.Write(va, strideBuf)
			}
			if err != nil {
				return workload.Report{Ops: n}, err
			}
		}

		// Every eighth task writes a response artifact back to disk.
		if n%8 == 7 {
			for j := range outBuf {
				outBuf[j] = tt.fill ^ 3
			}
			if err := w.CreateFile(fmt.Sprintf("t%d/out%d", n%cfg.Tenants, n), outBuf); err != nil {
				return workload.Report{Ops: n}, err
			}
		}

		th.Detach()
		child.Destroy()

		// Sustained background pressure: a synchronous daemon pass.
		if cfg.PageoutEvery > 0 && n%cfg.PageoutEvery == cfg.PageoutEvery-1 {
			k.PageoutScan()
		}
	}

	for _, tt := range tenants {
		tt.baseTh.Detach()
		tt.base.Destroy()
	}
	return workload.Report{
		Ops: total,
		Aux: map[string]int64{
			"tenants": int64(cfg.Tenants),
			"tasks":   int64(total),
		},
	}, nil
}

// mapAndTouchImage maps a tenant's app image into the task (the exec
// text mapping) and strides through it read-only — demand paging every
// other page straight from the shared page cache.
func mapAndTouchImage(w *workload.MachWorld, t *task.Task, image string, buf []byte, pageSz uint64) error {
	k := w.Kernel
	obj, err := w.FileObject(image)
	if err != nil {
		return err
	}
	va, err := t.Map.AllocateWithObject(0, obj.Size(), true, obj, 0,
		vmtypes.ProtRead|vmtypes.ProtExecute, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		k.ReleaseObjectRef(obj)
		return err
	}
	cpu := w.Machine.CPU(0)
	for off := uint64(0); off < obj.Size(); off += 2 * pageSz {
		if err := k.AccessBytes(cpu, t.Map, va+vmtypes.VA(off), buf, false); err != nil {
			return err
		}
	}
	return nil
}
