package workload

// The scenario API: one way to build and run every world. A Scenario
// describes an experiment independent of the machine it runs on;
// Build(arch) boots the world (reporting construction errors instead of
// panicking) and returns a World that can Run under a context and render
// a typed Report. Functional options replace the flat Options struct and
// are the only place fault injection, tiered paging and multi-tenancy
// compose with world construction.

import (
	"context"
	"fmt"

	"machvm/internal/baseline"
	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/measure"
	"machvm/internal/pager"
	"machvm/internal/pager/ztier"
	"machvm/internal/pmap"
	"machvm/internal/unixfs"
)

// Config is the resolved world configuration. Build it with NewConfig
// and functional options; the zero value of each field means "default".
type Config struct {
	// MemoryMB is physical memory size (default 8).
	MemoryMB int
	// CPUs is the processor count (default 1).
	CPUs int
	// DiskMB sizes the simulated disk (default 64).
	DiskMB int
	// NBufs is the baseline buffer-cache size (default 400, the paper's
	// explicitly limited configuration).
	NBufs int
	// ObjectCacheSize bounds Mach's object cache (default 4096).
	ObjectCacheSize int
	// Strategy selects TLB consistency (default immediate).
	Strategy pmap.Strategy
	// Pager bounds every kernel→pager conversation; the zero value
	// selects core.DefaultPagerPolicy.
	Pager core.PagerPolicy
	// Injector, when set, wraps the default pager stack (outermost, so
	// injected faults are what the kernel observes at the boundary).
	Injector func(core.Pager) core.Pager
	// TierBudget, when positive, interposes a compressed in-memory tier
	// of that many bytes in front of the swap pager.
	TierBudget int64
	// Tenants is the tenant count for multi-tenant scenarios (default 1;
	// single-tenant scenarios ignore it).
	Tenants int
	// Baseline selects the 4.3bsd-style comparison system instead of the
	// Mach stack, for scenarios that support both sides.
	Baseline bool
}

// Option adjusts a Config.
type Option func(*Config)

// NewConfig resolves options over the defaults.
func NewConfig(opts ...Option) Config {
	cfg := Config{
		MemoryMB:        8,
		CPUs:            1,
		DiskMB:          64,
		NBufs:           400,
		ObjectCacheSize: 4096,
		Tenants:         1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithMemoryMB sets physical memory size.
func WithMemoryMB(mb int) Option { return func(c *Config) { c.MemoryMB = mb } }

// WithCPUs sets the processor count.
func WithCPUs(n int) Option { return func(c *Config) { c.CPUs = n } }

// WithDiskMB sizes the simulated disk.
func WithDiskMB(mb int) Option { return func(c *Config) { c.DiskMB = mb } }

// WithNBufs sets the baseline buffer-cache size.
func WithNBufs(n int) Option { return func(c *Config) { c.NBufs = n } }

// WithObjectCache bounds Mach's object cache.
func WithObjectCache(n int) Option { return func(c *Config) { c.ObjectCacheSize = n } }

// WithStrategy selects the TLB consistency strategy.
func WithStrategy(s pmap.Strategy) Option { return func(c *Config) { c.Strategy = s } }

// WithPagerPolicy bounds kernel→pager conversations (deadline, retries,
// backoff).
func WithPagerPolicy(p core.PagerPolicy) Option { return func(c *Config) { c.Pager = p } }

// WithInjector wraps the world's default pager stack — outermost, so the
// kernel sees the injected behavior at the pager boundary. Compose fault
// injectors here (e.g. pager.NewFlakyPager).
func WithInjector(wrap func(core.Pager) core.Pager) Option {
	return func(c *Config) { c.Injector = wrap }
}

// WithTiering interposes a compressed in-memory tier of budget bytes in
// front of the swap pager.
func WithTiering(budget int64) Option { return func(c *Config) { c.TierBudget = budget } }

// WithTenants sets the tenant count for multi-tenant scenarios.
func WithTenants(n int) Option { return func(c *Config) { c.Tenants = n } }

// WithBaseline selects the 4.3bsd-style comparison system.
func WithBaseline() Option { return func(c *Config) { c.Baseline = true } }

// Report is the typed result of one World run.
type Report struct {
	// Arch names the machine the world ran on.
	Arch string
	// VirtualNS is the virtual time the driven portion consumed.
	VirtualNS int64
	// Ops counts the scenario's unit operations (reps, jobs, requests).
	Ops int
	// Stats is the kernel stats snapshot (zero for baseline worlds).
	Stats core.StatsSnapshot
	// Aux carries scenario-specific numbers (e.g. file-read first/second
	// pass) keyed by short names.
	Aux map[string]int64
	// SLO is the kernel's service-level snapshot (nil for baseline
	// worlds).
	SLO *measure.SLOReport
}

// World is a booted, runnable experiment.
type World interface {
	// Run drives the workload to completion or ctx cancellation.
	Run(ctx context.Context) (Report, error)
	// Kernel exposes the Mach kernel, nil for baseline worlds.
	Kernel() *core.Kernel
}

// Scenario builds a World for an architecture.
type Scenario interface {
	Build(a Arch) (World, error)
}

// ScenarioFunc adapts a function to the Scenario interface.
type ScenarioFunc func(a Arch) (World, error)

// Build implements Scenario.
func (f ScenarioFunc) Build(a Arch) (World, error) { return f(a) }

// specForErr is SpecFor with an error path instead of a panic, so
// Scenario.Build can report a bad architecture.
func specForErr(a Arch) (Spec, error) {
	if a < ArchUVAX2 || a > ArchTLBOnly {
		return Spec{}, fmt.Errorf("workload: unknown architecture %d", int(a))
	}
	return SpecFor(a), nil
}

// bootMachine builds the simulated hardware shared by both sides.
func bootMachine(spec Spec, cfg Config) *hw.Machine {
	frames := cfg.MemoryMB << 20 / spec.HWPageSize
	var holes []hw.FrameRange
	if spec.Holes != nil {
		holes = spec.Holes(frames)
	}
	return hw.NewMachine(hw.Config{
		Cost:       spec.Cost,
		HWPageSize: spec.HWPageSize,
		PhysFrames: frames,
		Holes:      holes,
		CPUs:       cfg.CPUs,
		TLBSize:    64,
	})
}

// BuildMachWorld boots Mach on the architecture with the resolved
// configuration, applying tiering and fault injection to the swap-pager
// stack: swap ← compressed tier (WithTiering) ← injector (WithInjector,
// outermost).
func BuildMachWorld(a Arch, cfg Config) (*MachWorld, error) {
	spec, err := specForErr(a)
	if err != nil {
		return nil, err
	}
	machine := bootMachine(spec, cfg)
	mod := spec.NewModule(machine, cfg.Strategy)
	k, err := core.NewKernel(core.Config{
		Machine:         machine,
		Module:          mod,
		PageSize:        spec.MachPageSize,
		ObjectCacheSize: cfg.ObjectCacheSize,
		Pager:           cfg.Pager,
	})
	if err != nil {
		return nil, err
	}
	fs := unixfs.NewFS(unixfs.NewDisk(machine, cfg.DiskMB<<20/unixfs.BlockSize))
	ip := pager.NewInodePager(fs)
	var swap core.Pager = pager.NewSwapPager(fs)
	var tier *ztier.Tier
	if cfg.TierBudget > 0 {
		tier = ztier.New(swap, ztier.Config{
			Budget:   cfg.TierBudget,
			PageSize: uint64(spec.MachPageSize),
			Machine:  machine,
			Stats:    k.Stats(),
		})
		swap = tier
	}
	if cfg.Injector != nil {
		swap = cfg.Injector(swap)
	}
	k.SetSwapPager(swap)
	return &MachWorld{
		Spec:    spec,
		Machine: machine,
		Mod:     mod,
		Kernel:  k,
		FS:      fs,
		Inode:   ip,
		cfg:     cfg,
		tier:    tier,
		objects: make(map[string]*core.Object),
	}, nil
}

// BuildUnixWorld boots the traditional comparison system on identical
// hardware, with an error path (the fix for NewUnixWorld's bare-pointer
// signature).
func BuildUnixWorld(a Arch, cfg Config) (*UnixWorld, error) {
	spec, err := specForErr(a)
	if err != nil {
		return nil, err
	}
	machine := bootMachine(spec, cfg)
	mod := spec.NewModule(machine, cfg.Strategy)
	fs := unixfs.NewFS(unixfs.NewDisk(machine, cfg.DiskMB<<20/unixfs.BlockSize))
	sys := baseline.New(baseline.Config{
		Machine:  machine,
		Module:   mod,
		Costs:    spec.BaselineCosts,
		FS:       fs,
		NBufs:    cfg.NBufs,
		PageSize: spec.MachPageSize,
	})
	return &UnixWorld{Spec: spec, Machine: machine, Mod: mod, Sys: sys, FS: fs}, nil
}

// MachRun is a booted Mach world plus the driver that runs it. MachWorld
// itself cannot implement World (Kernel is a field there), so scenarios
// return this thin pairing.
type MachRun struct {
	World *MachWorld
	// Drive runs the workload; Run fills in whatever Report fields it
	// leaves zero (Arch, VirtualNS, Stats, SLO).
	Drive func(ctx context.Context, w *MachWorld) (Report, error)
}

// Kernel implements World.
func (r *MachRun) Kernel() *core.Kernel { return r.World.Kernel }

// Run implements World: it invokes the driver, then completes the report
// with the final clock, stats snapshot and SLO snapshot.
func (r *MachRun) Run(ctx context.Context) (Report, error) {
	rep, err := r.Drive(ctx, r.World)
	w := r.World
	w.Machine.FlushAllCharges()
	if rep.Arch == "" {
		rep.Arch = w.Spec.Arch.String()
	}
	if rep.VirtualNS == 0 {
		rep.VirtualNS = w.Machine.Clock.Now()
	}
	rep.Stats = w.Kernel.Stats().Snapshot()
	if err != nil {
		return rep, err
	}
	if rep.SLO == nil {
		slo := w.Kernel.SLOReport()
		rep.SLO = &slo
	}
	return rep, nil
}

// UnixRun pairs a baseline world with its driver.
type UnixRun struct {
	World *UnixWorld
	Drive func(ctx context.Context, w *UnixWorld) (Report, error)
}

// Kernel implements World; baseline worlds have no Mach kernel.
func (r *UnixRun) Kernel() *core.Kernel { return nil }

// Run implements World.
func (r *UnixRun) Run(ctx context.Context) (Report, error) {
	rep, err := r.Drive(ctx, r.World)
	if rep.Arch == "" {
		rep.Arch = r.World.Spec.Arch.String()
	}
	if rep.VirtualNS == 0 {
		rep.VirtualNS = r.World.Machine.Clock.Now()
	}
	return rep, err
}

// twoSided builds the Mach or baseline side per cfg.Baseline.
type twoSided struct {
	cfg  Config
	mach func(ctx context.Context, w *MachWorld) (Report, error)
	unix func(ctx context.Context, w *UnixWorld) (Report, error)
}

// Build implements Scenario.
func (s twoSided) Build(a Arch) (World, error) {
	if s.cfg.Baseline {
		if s.unix == nil {
			return nil, fmt.Errorf("workload: scenario has no baseline side")
		}
		u, err := BuildUnixWorld(a, s.cfg)
		if err != nil {
			return nil, err
		}
		return &UnixRun{World: u, Drive: s.unix}, nil
	}
	w, err := BuildMachWorld(a, s.cfg)
	if err != nil {
		return nil, err
	}
	return &MachRun{World: w, Drive: s.mach}, nil
}

// ZeroFill is the Table 7-1 zero-fill scenario: vm_allocate + touch +
// vm_deallocate of size bytes, averaged over reps.
func ZeroFill(size uint64, reps int, opts ...Option) Scenario {
	return twoSided{
		cfg: NewConfig(opts...),
		mach: func(_ context.Context, w *MachWorld) (Report, error) {
			ns, err := MachZeroFill(w, size, reps)
			return Report{Ops: reps, Aux: map[string]int64{"ns_per_op": ns}}, err
		},
		unix: func(_ context.Context, u *UnixWorld) (Report, error) {
			ns, err := UnixZeroFill(u, size, reps)
			return Report{Ops: reps, Aux: map[string]int64{"ns_per_op": ns}}, err
		},
	}
}

// Fork is the Table 7-1 fork scenario: fork of a task with size bytes of
// dirty memory, averaged over reps.
func Fork(size uint64, reps int, opts ...Option) Scenario {
	return twoSided{
		cfg: NewConfig(opts...),
		mach: func(_ context.Context, w *MachWorld) (Report, error) {
			ns, err := MachFork(w, size, reps)
			return Report{Ops: reps, Aux: map[string]int64{"ns_per_op": ns}}, err
		},
		unix: func(_ context.Context, u *UnixWorld) (Report, error) {
			ns, err := UnixFork(u, size, reps)
			return Report{Ops: reps, Aux: map[string]int64{"ns_per_op": ns}}, err
		},
	}
}

// FileRead is the Table 7-1 file-read scenario: read a size-byte file
// twice; Aux carries the cold ("first") and cached ("second") passes.
func FileRead(size int, opts ...Option) Scenario {
	return twoSided{
		cfg: NewConfig(opts...),
		mach: func(_ context.Context, w *MachWorld) (Report, error) {
			res, err := MachFileRead(w, size)
			return Report{Ops: 2, Aux: map[string]int64{"first": res.First, "second": res.Second}}, err
		},
		unix: func(_ context.Context, u *UnixWorld) (Report, error) {
			res, err := UnixFileRead(u, size)
			return Report{Ops: 2, Aux: map[string]int64{"first": res.First, "second": res.Second}}, err
		},
	}
}

// Compile is the Table 7-2 compile scenario.
func Compile(build CompileConfig, opts ...Option) Scenario {
	return twoSided{
		cfg: NewConfig(opts...),
		mach: func(_ context.Context, w *MachWorld) (Report, error) {
			ns, err := MachCompile(w, build)
			return Report{Ops: len(build.Jobs), VirtualNS: ns}, err
		},
		unix: func(_ context.Context, u *UnixWorld) (Report, error) {
			ns, err := UnixCompile(u, build)
			return Report{Ops: len(build.Jobs), VirtualNS: ns}, err
		},
	}
}

// Mach adapts a bare Mach driver into a Scenario, for one-off worlds.
func Mach(drive func(ctx context.Context, w *MachWorld) (Report, error), opts ...Option) Scenario {
	return twoSided{cfg: NewConfig(opts...), mach: drive}
}

// Unix adapts a bare baseline driver into a Scenario.
func Unix(drive func(ctx context.Context, w *UnixWorld) (Report, error), opts ...Option) Scenario {
	cfg := NewConfig(opts...)
	cfg.Baseline = true
	return twoSided{cfg: cfg, unix: drive}
}
