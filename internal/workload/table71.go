package workload

import (
	"bytes"
	"fmt"

	"machvm/internal/task"
	"machvm/internal/vmtypes"
)

// This file drives the micro-operations of Table 7-1: zero-fill, fork of a
// 256KB address space, and file reading (first and second pass). Each
// returns virtual nanoseconds per operation.

// timeVirtual runs fn and returns the virtual time it consumed.
func timeVirtual(clockNow func() int64, fn func()) int64 {
	start := clockNow()
	fn()
	return clockNow() - start
}

// MachZeroFill measures vm_allocate + touch + vm_deallocate of size bytes,
// averaged over reps.
func MachZeroFill(w *MachWorld, size uint64, reps int) (int64, error) {
	k := w.Kernel
	cpu := w.Machine.CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Activate(cpu)
	buf := make([]byte, size)
	var total int64
	for i := 0; i < reps; i++ {
		var err error
		total += timeVirtual(w.Machine.Clock.Now, func() {
			var addr vmtypes.VA
			addr, err = m.Allocate(0, size, true)
			if err != nil {
				return
			}
			if err = k.AccessBytes(cpu, m, addr, buf, true); err != nil {
				return
			}
			err = m.Deallocate(addr, size)
		})
		if err != nil {
			return 0, err
		}
	}
	return total / int64(reps), nil
}

// UnixZeroFill measures the same operation on the baseline.
func UnixZeroFill(u *UnixWorld, size uint64, reps int) (int64, error) {
	cpu := u.Machine.CPU(0)
	buf := make([]byte, size)
	var total int64
	// A fresh proc every few hundred reps keeps segment lists small
	// (4.3bsd has no mid-segment deallocate).
	const perProc = 128
	for done := 0; done < reps; {
		p := u.Sys.NewProc()
		p.Pmap().Activate(cpu)
		for i := 0; i < perProc && done < reps; i++ {
			var err error
			total += timeVirtual(u.Machine.Clock.Now, func() {
				va := p.AllocZeroFill(size)
				if err = p.AccessBytes(cpu, va, buf, true); err != nil {
					return
				}
				// sbrk back down, as the paper's benchmark must have
				// to stay in bounded memory.
				u.Machine.Charge(u.Machine.Cost.Syscall)
			})
			if err != nil {
				p.Exit()
				return 0, err
			}
			done++
		}
		p.Exit()
	}
	return total / int64(reps), nil
}

// MachFork measures fork of a task with size bytes of dirty memory. The
// child is destroyed untouched, so Mach's copy-on-write fork never copies
// a page.
func MachFork(w *MachWorld, size uint64, reps int) (int64, error) {
	k := w.Kernel
	cpu := w.Machine.CPU(0)
	parent := task.New(k, "forker")
	defer parent.Destroy()
	th := parent.SpawnThread(cpu)
	addr, err := parent.Map.Allocate(0, size, true)
	if err != nil {
		return 0, err
	}
	dirty := bytes.Repeat([]byte{0x5A}, int(size))
	var total int64
	for i := 0; i < reps; i++ {
		// Re-dirty the space so each fork sees a fully resident image.
		if err := th.Write(addr, dirty); err != nil {
			return 0, err
		}
		var child *task.Task
		total += timeVirtual(w.Machine.Clock.Now, func() {
			child = parent.Fork("child")
		})
		child.Destroy()
	}
	return total / int64(reps), nil
}

// UnixFork measures fork of a baseline process with size bytes resident.
func UnixFork(u *UnixWorld, size uint64, reps int) (int64, error) {
	cpu := u.Machine.CPU(0)
	parent := u.Sys.NewProc()
	defer parent.Exit()
	parent.Pmap().Activate(cpu)
	va := parent.AllocZeroFill(size)
	dirty := bytes.Repeat([]byte{0x5A}, int(size))
	var total int64
	for i := 0; i < reps; i++ {
		if err := parent.AccessBytes(cpu, va, dirty, true); err != nil {
			return 0, err
		}
		var child interface{ Exit() }
		var err error
		total += timeVirtual(u.Machine.Clock.Now, func() {
			child, err = parent.Fork()
		})
		if err != nil {
			return 0, err
		}
		child.Exit()
	}
	return total / int64(reps), nil
}

// FileReadResult carries the two passes of the file-read experiment.
type FileReadResult struct {
	First, Second int64
}

// MachFileRead measures reading a file of size bytes twice through the
// Mach path (mapped object + object cache).
func MachFileRead(w *MachWorld, size int) (FileReadResult, error) {
	name := fmt.Sprintf("readtest-%d", size)
	if err := w.CreateFile(name, bytes.Repeat([]byte{0xF1}, size)); err != nil {
		return FileReadResult{}, err
	}
	k := w.Kernel
	cpu := w.Machine.CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Activate(cpu)
	buf := make([]byte, size)

	var res FileReadResult
	var err error
	res.First = timeVirtual(w.Machine.Clock.Now, func() {
		_, err = w.ReadFileMach(cpu, m, name, buf)
	})
	if err != nil {
		return res, err
	}
	res.Second = timeVirtual(w.Machine.Clock.Now, func() {
		_, err = w.ReadFileMach(cpu, m, name, buf)
	})
	return res, err
}

// UnixFileRead measures reading a file of size bytes twice through the
// baseline buffer cache.
func UnixFileRead(u *UnixWorld, size int) (FileReadResult, error) {
	name := fmt.Sprintf("readtest-%d", size)
	ino, err := u.FS.Create(name, bytes.Repeat([]byte{0xF1}, size))
	if err != nil {
		return FileReadResult{}, err
	}
	cpu := u.Machine.CPU(0)
	p := u.Sys.NewProc()
	defer p.Exit()
	p.Pmap().Activate(cpu)
	va := p.AllocZeroFill(uint64(size))

	const chunk = 8192
	readOnce := func() error {
		for off := 0; off < size; off += chunk {
			n := chunk
			if n > size-off {
				n = size - off
			}
			if _, err := p.ReadFile(cpu, ino, uint64(off), va+vmtypes.VA(off), n); err != nil {
				return err
			}
		}
		return nil
	}
	var res FileReadResult
	res.First = timeVirtual(u.Machine.Clock.Now, func() { err = readOnce() })
	if err != nil {
		return res, err
	}
	res.Second = timeVirtual(u.Machine.Clock.Now, func() { err = readOnce() })
	return res, err
}
