package workload_test

import (
	"context"
	"testing"

	"machvm/internal/core"
	"machvm/internal/pager"
	"machvm/internal/workload"
)

func TestScenarioBuildRejectsBadArch(t *testing.T) {
	// The old NewUnixWorld panicked here; the Scenario path must return
	// an error instead, on both sides.
	if _, err := workload.ZeroFill(64<<10, 1).Build(workload.Arch(99)); err == nil {
		t.Fatal("mach side: expected an error for an unknown arch")
	}
	if _, err := workload.ZeroFill(64<<10, 1, workload.WithBaseline()).Build(workload.Arch(-1)); err == nil {
		t.Fatal("baseline side: expected an error for an unknown arch")
	}
	if _, err := workload.BuildUnixWorld(workload.Arch(99), workload.NewConfig()); err == nil {
		t.Fatal("BuildUnixWorld: expected an error for an unknown arch")
	}
}

func TestScenarioRunBothSides(t *testing.T) {
	for _, baseline := range []bool{false, true} {
		opts := []workload.Option{workload.WithMemoryMB(4)}
		if baseline {
			opts = append(opts, workload.WithBaseline())
		}
		w, err := workload.ZeroFill(64<<10, 4, opts...).Build(workload.ArchVAX8200)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := w.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Arch != "VAX 8200" || rep.Ops != 4 || rep.Aux["ns_per_op"] <= 0 {
			t.Fatalf("baseline=%v: bad report %+v", baseline, rep)
		}
		if baseline {
			if w.Kernel() != nil || rep.SLO != nil {
				t.Fatal("baseline world must have no kernel or SLO")
			}
		} else {
			if w.Kernel() == nil {
				t.Fatal("mach world must expose its kernel")
			}
			if rep.SLO == nil || rep.SLO.Faults == 0 || rep.SLO.FaultP99NS <= 0 {
				t.Fatalf("missing SLO snapshot: %+v", rep.SLO)
			}
			if rep.SLO.InvariantViolations != 0 {
				t.Fatalf("invariant violations: %d", rep.SLO.InvariantViolations)
			}
			if rep.Stats.Faults != rep.SLO.Faults {
				t.Fatalf("stats/slo disagree: %d vs %d", rep.Stats.Faults, rep.SLO.Faults)
			}
		}
	}
}

func TestScenarioInjectorAndTiering(t *testing.T) {
	// A flaky injector over a compressed tier, composed purely through
	// options: force the swap-stack boundary to fail once, then verify
	// the kernel counted the injected error.
	var flaky *pager.FlakyPager
	sc := workload.Mach(
		func(_ context.Context, w *workload.MachWorld) (workload.Report, error) {
			k := w.Kernel
			cpu := w.Machine.CPU(0)
			m := k.NewMap()
			defer m.Destroy()
			m.Activate(cpu)
			addr, err := m.Allocate(0, 256<<10, true)
			if err != nil {
				return workload.Report{}, err
			}
			buf := make([]byte, 256<<10)
			if err := k.AccessBytes(cpu, m, addr, buf, true); err != nil {
				return workload.Report{}, err
			}
			// Push the dirty pages out through tier+injector.
			k.PageoutScan()
			return workload.Report{Ops: 1}, nil
		},
		workload.WithMemoryMB(4),
		workload.WithTiering(1<<20),
		workload.WithInjector(func(p core.Pager) core.Pager {
			flaky = pager.NewFlakyPager(p)
			return flaky
		}),
	)
	w, err := sc.Build(workload.ArchVAX8650)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if flaky == nil {
		t.Fatal("injector was never applied")
	}
	if name := w.Kernel().SwapPager().Name(); name != flaky.Name() {
		t.Fatalf("swap pager is %q, want the injected stack", name)
	}
	mr := w.(*workload.MachRun)
	defer mr.World.Close()
}

func TestDeprecatedShimsStillBoot(t *testing.T) {
	w := workload.MustNewMachWorld(workload.ArchUVAX2, workload.Options{MemoryMB: 4})
	if w.Kernel == nil {
		t.Fatal("shim built no kernel")
	}
	u := workload.NewUnixWorld(workload.ArchUVAX2, workload.Options{MemoryMB: 4})
	if u.Sys == nil {
		t.Fatal("shim built no baseline system")
	}
	if _, err := workload.NewMachWorld(workload.Arch(42), workload.Options{}); err == nil {
		t.Fatal("NewMachWorld must now return an error for a bad arch")
	}
	var panicked bool
	func() {
		defer func() { panicked = recover() != nil }()
		workload.NewUnixWorld(workload.Arch(42), workload.Options{})
	}()
	if !panicked {
		t.Fatal("NewUnixWorld keeps its panicking contract")
	}
}
