package workload_test

import (
	"bytes"
	"testing"

	"machvm/internal/workload"
)

func TestSpecForAllArchitectures(t *testing.T) {
	archs := []workload.Arch{
		workload.ArchUVAX2, workload.ArchVAX8200, workload.ArchVAX8650,
		workload.ArchRTPC, workload.ArchSun3, workload.ArchNS32082, workload.ArchTLBOnly,
	}
	seen := map[string]bool{}
	for _, a := range archs {
		spec := workload.SpecFor(a)
		if spec.HWPageSize == 0 || spec.MachPageSize == 0 || spec.NewModule == nil {
			t.Fatalf("%v: incomplete spec", a)
		}
		if spec.MachPageSize%spec.HWPageSize != 0 {
			t.Fatalf("%v: Mach page %d not a multiple of hw page %d", a, spec.MachPageSize, spec.HWPageSize)
		}
		if a.String() == "" || seen[a.String()] {
			t.Fatalf("%v: bad or duplicate name", a)
		}
		seen[a.String()] = true
	}
}

func TestMachWorldBootsEveryArch(t *testing.T) {
	for _, a := range []workload.Arch{
		workload.ArchUVAX2, workload.ArchRTPC, workload.ArchSun3,
		workload.ArchNS32082, workload.ArchTLBOnly,
	} {
		w := workload.MustNewMachWorld(a, workload.Options{MemoryMB: 4})
		if w.Kernel.TotalPages() == 0 {
			t.Fatalf("%v: no usable pages", a)
		}
		u := workload.NewUnixWorld(a, workload.Options{MemoryMB: 4})
		if u.Sys.FreePages() == 0 {
			t.Fatalf("%v: baseline has no memory", a)
		}
	}
}

func TestNS32082WorldHonoursPhysicalLimit(t *testing.T) {
	// Boot with 64MB; the chip can address only 32MB, so the kernel must
	// see at most 32MB of usable pages.
	w := workload.MustNewMachWorld(workload.ArchNS32082, workload.Options{MemoryMB: 64})
	usable := uint64(w.Kernel.TotalPages()) * w.Kernel.PageSize()
	if usable > 32<<20 {
		t.Fatalf("kernel uses %dMB; the NS32082 caps at 32MB", usable>>20)
	}
}

func TestSun3WorldHasDisplayHole(t *testing.T) {
	w := workload.MustNewMachWorld(workload.ArchSun3, workload.Options{MemoryMB: 8})
	if len(w.Machine.Mem.Holes()) == 0 {
		t.Fatal("SUN 3 world should declare a display-memory hole")
	}
	total := w.Machine.Mem.NumFrames()
	if w.Machine.Mem.PopulatedFrames() >= total {
		t.Fatal("hole not excluded from populated frames")
	}
}

func TestFileObjectCachingAcrossOpens(t *testing.T) {
	w := workload.MustNewMachWorld(workload.ArchVAX8650, workload.Options{MemoryMB: 8})
	if _, err := w.FS.Create("f", bytes.Repeat([]byte{1}, 64<<10)); err != nil {
		t.Fatal(err)
	}
	cpu := w.Machine.CPU(0)
	m := w.Kernel.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	buf := make([]byte, 64<<10)
	if _, err := w.ReadFileMach(cpu, m, "f", buf); err != nil {
		t.Fatal(err)
	}
	reads1, _ := w.Inode.Traffic()
	if _, err := w.ReadFileMach(cpu, m, "f", buf); err != nil {
		t.Fatal(err)
	}
	reads2, _ := w.Inode.Traffic()
	if reads2 != reads1 {
		t.Fatalf("second open re-read the disk: %d -> %d", reads1, reads2)
	}
	if _, err := w.ReadFileMach(cpu, m, "missing", buf); err == nil {
		t.Fatal("reading a missing file should fail")
	}
}

func TestZeroFillRejectsBadWorld(t *testing.T) {
	// Sanity on the micro-op drivers: they run and produce positive
	// virtual times.
	w := workload.MustNewMachWorld(workload.ArchTLBOnly, workload.Options{MemoryMB: 4})
	v, err := workload.MachZeroFill(w, 1024, 3)
	if err != nil || v <= 0 {
		t.Fatalf("MachZeroFill = %d, %v", v, err)
	}
	u := workload.NewUnixWorld(workload.ArchTLBOnly, workload.Options{MemoryMB: 4})
	v, err = workload.UnixZeroFill(u, 1024, 3)
	if err != nil || v <= 0 {
		t.Fatalf("UnixZeroFill = %d, %v", v, err)
	}
}
