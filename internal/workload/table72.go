package workload

import (
	"bytes"
	"fmt"

	"machvm/internal/baseline"
	"machvm/internal/hw"
	"machvm/internal/task"
	"machvm/internal/unixfs"
	"machvm/internal/vmtypes"
)

// This file drives the compile workloads of Table 7-2. A compile job is
// modelled as the VM-visible footprint of running a compiler: fork a
// process, "exec" the compiler image (map its text), read the source and
// its headers, allocate compiler working memory and touch it, write the
// object file, exit. Shared headers and the compiler image itself are
// where the systems diverge: Mach's object cache keeps them resident as
// mapped objects, while the baseline repeatedly pulls them through a
// fixed-size buffer cache.

// CompileJob describes one translation unit.
type CompileJob struct {
	// Source is the job's own source file.
	Source string
	// Headers are files included by this job (usually shared).
	Headers []string
	// WorkKB is compiler working memory touched during the job.
	WorkKB int
	// OutputKB is the object file written.
	OutputKB int
	// CPUNs is the pure computation charge.
	CPUNs int64
}

// CompileConfig is a full build.
type CompileConfig struct {
	Name string
	Jobs []CompileJob
	// CompilerKB sizes the compiler image ("/bin/cc" text).
	CompilerKB int
}

// ThirteenPrograms models the paper's "13 programs" row: small, separate
// C programs sharing the standard headers.
func ThirteenPrograms() CompileConfig {
	headers := []string{"h/stdio.h", "h/sys.h", "h/types.h"}
	var jobs []CompileJob
	for i := 0; i < 13; i++ {
		jobs = append(jobs, CompileJob{
			Source:   fmt.Sprintf("src/prog%d.c", i),
			Headers:  headers,
			WorkKB:   192,
			OutputKB: 24,
			CPUNs:    1100 * 1000 * 1000, // 1.1s of pure compilation
		})
	}
	return CompileConfig{Name: "13 programs", Jobs: jobs, CompilerKB: 640}
}

// KernelBuild models the paper's "Mach kernel" row: many translation
// units sharing a large header set.
func KernelBuild() CompileConfig {
	var headers []string
	for i := 0; i < 24; i++ {
		headers = append(headers, fmt.Sprintf("h/kern%d.h", i))
	}
	var jobs []CompileJob
	for i := 0; i < 160; i++ {
		jobs = append(jobs, CompileJob{
			Source:   fmt.Sprintf("kern/file%d.c", i),
			Headers:  headers,
			WorkKB:   384,
			OutputKB: 48,
			CPUNs:    6 * 1000 * 1000 * 1000, // 6s per unit
		})
	}
	return CompileConfig{Name: "Mach kernel", Jobs: jobs, CompilerKB: 768}
}

// ForkTestProgram models the SUN 3 row: compiling one small program.
func ForkTestProgram() CompileConfig {
	return CompileConfig{
		Name: "fork test program",
		Jobs: []CompileJob{{
			Source:   "src/forktest.c",
			Headers:  []string{"h/stdio.h"},
			WorkKB:   128,
			OutputKB: 16,
			CPUNs:    900 * 1000 * 1000,
		}},
		CompilerKB: 512,
	}
}

// fileKB returns the synthetic size of a workload file.
func fileKB(name string) int {
	switch {
	case name == "":
		return 0
	case name[0] == 'h': // headers
		return 24
	default: // sources
		return 28
	}
}

// prepareFiles creates the build's input files in a filesystem.
func prepareFiles(create func(name string, data []byte) error, cfg CompileConfig) error {
	made := map[string]bool{}
	mk := func(name string, kb int) error {
		if made[name] {
			return nil
		}
		made[name] = true
		return create(name, bytes.Repeat([]byte{0xCC}, kb*1024))
	}
	if err := mk("bin/cc", cfg.CompilerKB); err != nil {
		return err
	}
	for _, j := range cfg.Jobs {
		if err := mk(j.Source, fileKB(j.Source)); err != nil {
			return err
		}
		for _, h := range j.Headers {
			if err := mk(h, fileKB(h)); err != nil {
				return err
			}
		}
	}
	return nil
}

// MachCompile runs the build on the Mach world and returns virtual ns.
func MachCompile(w *MachWorld, cfg CompileConfig) (int64, error) {
	err := prepareFiles(func(name string, data []byte) error {
		return w.CreateFile(name, data)
	}, cfg)
	if err != nil {
		return 0, err
	}
	k := w.Kernel
	cpu := w.Machine.CPU(0)
	shell := task.New(k, "sh")
	defer shell.Destroy()
	shellth := shell.SpawnThread(cpu)
	// The shell has a modest dirty image that every fork must handle.
	shellImg, err := shell.Map.Allocate(0, 192*1024, true)
	if err != nil {
		return 0, err
	}
	if err := shellth.Write(shellImg, bytes.Repeat([]byte{1}, 192*1024)); err != nil {
		return 0, err
	}

	start := w.Machine.Clock.Now()
	for i, job := range cfg.Jobs {
		// fork(2): copy-on-write child.
		cc := shell.Fork(fmt.Sprintf("cc%d", i))
		th := cc.SpawnThread(cpu)

		// exec(2): map the compiler text — a cached file object.
		ccObj, err := w.FileObject("bin/cc")
		if err != nil {
			return 0, err
		}
		textVA, err := cc.Map.AllocateWithObject(0, ccObj.Size(), true, ccObj, 0,
			vmtypes.ProtRead|vmtypes.ProtExecute, vmtypes.ProtAll, vmtypes.InheritCopy, false)
		if err != nil {
			return 0, err
		}
		// Touch the text the compiler actually executes. Mapped text is
		// demand paged straight from the file object: only the pages the
		// compiler runs through are faulted in, and no copyout to a user
		// buffer happens (the mapping IS the text). The baseline's exec
		// must read the whole image through the buffer cache instead.
		pageSz := int(k.PageSize())
		var chunk = make([]byte, 256)
		for off := 0; off < int(ccObj.Size()); off += 2 * pageSz {
			if err := k.AccessBytes(cpu, cc.Map, textVA+vmtypes.VA(off), chunk, false); err != nil {
				return 0, err
			}
		}

		// Read the source and headers.
		buf := make([]byte, 64*1024)
		if _, err := w.ReadFileMach(cpu, cc.Map, job.Source, buf); err != nil {
			return 0, err
		}
		for _, h := range job.Headers {
			if _, err := w.ReadFileMach(cpu, cc.Map, h, buf); err != nil {
				return 0, err
			}
		}

		// Compiler working memory.
		work := uint64(job.WorkKB) * 1024
		workVA, err := cc.Map.Allocate(0, work, true)
		if err != nil {
			return 0, err
		}
		if err := th.Write(workVA, bytes.Repeat([]byte{2}, int(work))); err != nil {
			return 0, err
		}

		// Pure computation.
		w.Machine.Charge(job.CPUNs)

		// Write the object file.
		out := bytes.Repeat([]byte{3}, job.OutputKB*1024)
		outName := fmt.Sprintf("obj/%s-%d.o", cfg.Name, i)
		if err := w.CreateFile(outName, out); err != nil {
			return 0, err
		}

		th.Detach()
		cc.Destroy()
	}
	return w.Machine.Clock.Now() - start, nil
}

// UnixCompile runs the build on the baseline and returns virtual ns.
func UnixCompile(u *UnixWorld, cfg CompileConfig) (int64, error) {
	err := prepareFiles(func(name string, data []byte) error {
		_, e := u.FS.Create(name, data)
		return e
	}, cfg)
	if err != nil {
		return 0, err
	}
	cpu := u.Machine.CPU(0)
	shell := u.Sys.NewProc()
	defer shell.Exit()
	shell.Pmap().Activate(cpu)
	shellImg := shell.AllocZeroFill(192 * 1024)
	if err := shell.AccessBytes(cpu, shellImg, bytes.Repeat([]byte{1}, 192*1024), true); err != nil {
		return 0, err
	}

	start := u.Machine.Clock.Now()
	for i, job := range cfg.Jobs {
		cc, err := shell.Fork()
		if err != nil {
			return 0, err
		}
		cc.Pmap().Activate(cpu)

		// exec(2): read the compiler image through the buffer cache
		// into fresh text pages (no shared text object here — that is
		// the point).
		ccIno, err := u.FS.Open("bin/cc")
		if err != nil {
			return 0, err
		}
		textVA := cc.AllocZeroFill(ccIno.Size())
		if err := readAllUnix(u, cc, cpu, ccIno, textVA); err != nil {
			return 0, err
		}

		// Read the source and headers.
		for _, name := range append([]string{job.Source}, job.Headers...) {
			ino, err := u.FS.Open(name)
			if err != nil {
				return 0, err
			}
			bufVA := cc.AllocZeroFill(ino.Size())
			if err := readAllUnix(u, cc, cpu, ino, bufVA); err != nil {
				return 0, err
			}
		}

		// Compiler working memory.
		work := uint64(job.WorkKB) * 1024
		workVA := cc.AllocZeroFill(work)
		if err := cc.AccessBytes(cpu, workVA, bytes.Repeat([]byte{2}, int(work)), true); err != nil {
			return 0, err
		}

		u.Machine.Charge(job.CPUNs)

		// Write the object file through the buffer cache.
		outName := fmt.Sprintf("obj/%s-%d.o", cfg.Name, i)
		outIno, err := u.FS.Create(outName, nil)
		if err != nil {
			return 0, err
		}
		outVA := cc.AllocZeroFill(uint64(job.OutputKB) * 1024)
		if err := cc.AccessBytes(cpu, outVA, bytes.Repeat([]byte{3}, job.OutputKB*1024), true); err != nil {
			return 0, err
		}
		for off := 0; off < job.OutputKB*1024; off += 8192 {
			n := 8192
			if n > job.OutputKB*1024-off {
				n = job.OutputKB*1024 - off
			}
			if err := cc.WriteFile(cpu, outIno, uint64(off), outVA+vmtypes.VA(off), n); err != nil {
				return 0, err
			}
		}

		cc.Exit()
	}
	return u.Machine.Clock.Now() - start, nil
}

// readAllUnix reads an entire file through the buffer cache into process
// memory at va, in read(2)-sized chunks.
func readAllUnix(u *UnixWorld, p *baseline.Proc, cpu *hw.CPU, ino *unixfs.Inode, va vmtypes.VA) error {
	size := int(ino.Size())
	const chunk = 8192
	for off := 0; off < size; off += chunk {
		n := chunk
		if n > size-off {
			n = size - off
		}
		if _, err := p.ReadFile(cpu, ino, uint64(off), va+vmtypes.VA(off), n); err != nil {
			return err
		}
	}
	return nil
}
