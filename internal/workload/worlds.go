// Package workload builds matched pairs of experimental worlds — a Mach
// stack and a 4.3bsd-style baseline on identical simulated hardware — and
// drives the workloads behind the paper's Tables 7-1 and 7-2.
package workload

import (
	"fmt"
	"sync"

	"machvm/internal/baseline"
	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pager"
	"machvm/internal/pager/ztier"
	"machvm/internal/pmap"
	"machvm/internal/pmap/ns32082"
	"machvm/internal/pmap/rtpc"
	"machvm/internal/pmap/sun3"
	"machvm/internal/pmap/tlbonly"
	"machvm/internal/pmap/vax"
	"machvm/internal/trace"
	"machvm/internal/unixfs"
	"machvm/internal/vmtypes"
)

// Arch selects one of the paper's machines.
type Arch int

// The machines of §1/§7.
const (
	ArchUVAX2 Arch = iota // MicroVAX II
	ArchVAX8200
	ArchVAX8650
	ArchRTPC
	ArchSun3
	ArchNS32082 // Encore MultiMax / Sequent Balance (per CPU)
	ArchTLBOnly // IBM RP3-style
)

// String names the architecture as the paper does.
func (a Arch) String() string {
	switch a {
	case ArchUVAX2:
		return "uVAX II"
	case ArchVAX8200:
		return "VAX 8200"
	case ArchVAX8650:
		return "VAX 8650"
	case ArchRTPC:
		return "RT PC"
	case ArchSun3:
		return "SUN 3/160"
	case ArchNS32082:
		return "MultiMax/Balance"
	case ArchTLBOnly:
		return "RP3 (TLB-only)"
	default:
		return fmt.Sprintf("arch(%d)", int(a))
	}
}

// Spec describes how to boot an architecture.
type Spec struct {
	Arch       Arch
	Cost       hw.CostModel
	HWPageSize int
	// MachPageSize is the boot-time Mach page size used for the paper
	// benchmarks on this machine.
	MachPageSize int
	// BaselineCosts select which traditional system is compared.
	BaselineCosts baseline.Costs
	// NewModule boots the machine-dependent module.
	NewModule func(*hw.Machine, pmap.Strategy) pmap.Module
	// Holes in physical memory (SUN 3 display memory).
	Holes func(totalFrames int) []hw.FrameRange
}

// SpecFor returns the boot spec of an architecture.
func SpecFor(a Arch) Spec {
	switch a {
	case ArchUVAX2:
		return Spec{
			Arch: a, Cost: vax.DefaultCost(),
			HWPageSize: vax.HWPageSize, MachPageSize: 1024,
			BaselineCosts: baseline.BSD43(),
			NewModule:     func(m *hw.Machine, s pmap.Strategy) pmap.Module { return vax.New(m, s) },
		}
	case ArchVAX8200:
		return Spec{
			Arch: a, Cost: vax.Cost8200(),
			HWPageSize: vax.HWPageSize, MachPageSize: 4096,
			BaselineCosts: baseline.BSD43(),
			NewModule:     func(m *hw.Machine, s pmap.Strategy) pmap.Module { return vax.New(m, s) },
		}
	case ArchVAX8650:
		return Spec{
			Arch: a, Cost: vax.Cost8650(),
			HWPageSize: vax.HWPageSize, MachPageSize: 4096,
			BaselineCosts: baseline.BSD43(),
			NewModule:     func(m *hw.Machine, s pmap.Strategy) pmap.Module { return vax.New(m, s) },
		}
	case ArchRTPC:
		return Spec{
			Arch: a, Cost: rtpc.DefaultCost(),
			HWPageSize: rtpc.HWPageSize, MachPageSize: 2048,
			BaselineCosts: baseline.ACIS42(),
			NewModule:     func(m *hw.Machine, s pmap.Strategy) pmap.Module { return rtpc.New(m, s) },
		}
	case ArchSun3:
		return Spec{
			Arch: a, Cost: sun3.DefaultCost(),
			HWPageSize: sun3.HWPageSize, MachPageSize: 8192,
			BaselineCosts: baseline.SunOS32(),
			NewModule:     func(m *hw.Machine, s pmap.Strategy) pmap.Module { return sun3.New(m, s) },
			Holes: func(total int) []hw.FrameRange {
				return []hw.FrameRange{sun3.DisplayHole(total, total/16)}
			},
		}
	case ArchNS32082:
		return Spec{
			Arch: a, Cost: ns32082.DefaultCost(),
			HWPageSize: ns32082.HWPageSize, MachPageSize: 4096,
			BaselineCosts: baseline.BSD43(),
			NewModule:     func(m *hw.Machine, s pmap.Strategy) pmap.Module { return ns32082.New(m, s) },
		}
	case ArchTLBOnly:
		return Spec{
			Arch: a, Cost: tlbonly.DefaultCost(),
			HWPageSize: tlbonly.HWPageSize, MachPageSize: 4096,
			BaselineCosts: baseline.BSD43(),
			NewModule:     func(m *hw.Machine, s pmap.Strategy) pmap.Module { return tlbonly.New(m, s) },
		}
	default:
		panic("workload: unknown architecture")
	}
}

// Options tune a world.
//
// Deprecated: use NewConfig with functional options (WithMemoryMB,
// WithPagerPolicy, ...) and BuildMachWorld/BuildUnixWorld, or a Scenario.
type Options struct {
	// MemoryMB is physical memory size (default 8; the NS32082 caps at
	// its 32MB hardware limit regardless).
	MemoryMB int
	// CPUs is the processor count (default 1).
	CPUs int
	// DiskMB sizes the simulated disk (default 64).
	DiskMB int
	// NBufs is the baseline buffer-cache size (default 400, the paper's
	// explicitly limited configuration).
	NBufs int
	// Strategy selects TLB consistency (default immediate).
	Strategy pmap.Strategy
	// ObjectCacheSize bounds Mach's object cache (default: generous).
	ObjectCacheSize int
	// Pager bounds every kernel→pager conversation; the zero value
	// selects core.DefaultPagerPolicy.
	Pager core.PagerPolicy
}

// toConfig maps legacy Options onto the scenario Config, applying the
// same defaults NewConfig does.
func (o Options) toConfig() Config {
	cfg := NewConfig()
	if o.MemoryMB != 0 {
		cfg.MemoryMB = o.MemoryMB
	}
	if o.CPUs != 0 {
		cfg.CPUs = o.CPUs
	}
	if o.DiskMB != 0 {
		cfg.DiskMB = o.DiskMB
	}
	if o.NBufs != 0 {
		cfg.NBufs = o.NBufs
	}
	if o.ObjectCacheSize != 0 {
		cfg.ObjectCacheSize = o.ObjectCacheSize
	}
	cfg.Strategy = o.Strategy
	cfg.Pager = o.Pager
	return cfg
}

// MachWorld is a booted Mach stack.
type MachWorld struct {
	Spec    Spec
	Machine *hw.Machine
	Mod     pmap.Module
	Kernel  *core.Kernel
	FS      *unixfs.FS
	Inode   *pager.InodePager

	// cfg is the boot configuration, kept so a trace header can describe
	// how to boot an identical world for replay.
	cfg Config

	// tier is the compressed swap tier when WithTiering interposed one;
	// Close stops its writeback worker.
	tier *ztier.Tier

	mu      sync.Mutex
	objects map[string]*core.Object
}

// Close releases background resources (the compressed tier's writeback
// worker, when one was configured). Safe on any world, idempotent.
func (w *MachWorld) Close() {
	if w.tier != nil {
		w.tier.Close()
	}
}

// NewMachWorld boots Mach on the architecture.
//
// Deprecated: use BuildMachWorld with NewConfig, or a Scenario.
func NewMachWorld(a Arch, opts Options) (*MachWorld, error) {
	return BuildMachWorld(a, opts.toConfig())
}

// MustNewMachWorld is NewMachWorld, panicking on error (tests, examples).
//
// Deprecated: use BuildMachWorld with NewConfig, or a Scenario.
func MustNewMachWorld(a Arch, opts Options) *MachWorld {
	w, err := NewMachWorld(a, opts)
	if err != nil {
		panic(err)
	}
	return w
}

// FileObject returns the (cached) memory object for a file, reviving it
// from the object cache when possible — the Mach read path. Recorded as
// one trace input op: replay re-runs the same cache lookup / inode-pager
// path and must land on the same object ID.
func (w *MachWorld) FileObject(name string) (*core.Object, error) {
	l := w.Kernel.Tracer()
	var top bool
	if l != nil {
		top = l.BeginOp()
	}
	obj, err := w.fileObject(name)
	if l != nil {
		if top {
			e := trace.Event{Kind: trace.OpFileObject, Time: w.Machine.Clock.Now(), Name: name}
			if obj != nil {
				e.Ret = obj.ID()
			}
			if err != nil {
				e.Err = err.Error()
			}
			l.Append(e)
		}
		l.EndOp()
	}
	return obj, err
}

func (w *MachWorld) fileObject(name string) (*core.Object, error) {
	w.mu.Lock()
	obj := w.objects[name]
	w.mu.Unlock()
	if obj != nil && w.Kernel.LookupCached(obj) {
		return obj, nil
	}
	if obj != nil && obj.Refs() > 0 {
		obj.Reference()
		return obj, nil
	}
	obj, err := w.Inode.NewFileObject(w.Kernel, name)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.objects[name] = obj
	w.mu.Unlock()
	return obj, nil
}

// CreateFile creates (or replaces) a file in the simulated filesystem,
// recording one trace input op. Drivers under recording must use this
// instead of FS.Create directly: the filesystem charges disk costs while
// writing, and those charges belong to the file-create op, not to a
// stream of bare driver charges.
func (w *MachWorld) CreateFile(name string, data []byte) error {
	l := w.Kernel.Tracer()
	var top bool
	if l != nil {
		top = l.BeginOp()
	}
	_, err := w.FS.Create(name, data)
	if l != nil {
		if top {
			e := trace.Event{
				Kind: trace.OpFileCreate, Time: w.Machine.Clock.Now(),
				Name: name, Size: uint64(len(data)), Data: trace.FillOf(data),
			}
			if err != nil {
				e.Err = err.Error()
			}
			l.Append(e)
		}
		l.EndOp()
	}
	return err
}

// StartTrace begins recording this world's externally visible events.
// Recording requires the world to be driven deterministically: one
// goroutine, Background contexts (pager flights then run inline), no
// pageout daemon, no wall clock — see DESIGN.md §11.
func (w *MachWorld) StartTrace() *trace.Log {
	l := trace.NewLog()
	w.Kernel.SetTracer(l)
	return l
}

// StopTrace ends recording and packages the complete trace: boot header,
// event stream, final virtual clock and stats snapshot.
func (w *MachWorld) StopTrace() *trace.Trace {
	l := w.Kernel.Tracer()
	w.Kernel.SetTracer(nil)
	t := &trace.Trace{
		Header: trace.Header{
			Arch:        int(w.Spec.Arch),
			MemoryMB:    w.cfg.MemoryMB,
			CPUs:        w.cfg.CPUs,
			DiskMB:      w.cfg.DiskMB,
			ObjectCache: w.cfg.ObjectCacheSize,
			Strategy:    int(w.cfg.Strategy),
			PageSize:    uint64(w.Spec.MachPageSize),
		},
		Clock: w.Machine.Clock.Now(),
		Stats: StatsString(w.Kernel),
	}
	if l != nil {
		t.Events = l.Events()
	}
	return t
}

// StatsString renders the kernel's stats snapshot as one deterministic
// line (struct fields print in declaration order), the form stored in a
// trace footer and compared after replay.
func StatsString(k *core.Kernel) string {
	return fmt.Sprintf("%+v", k.Stats().Snapshot())
}

// ReadFileMach performs the Mach read path: map the file's memory object,
// fault the data through the object cache, copy it out to the caller's
// buffer, unmap. The object (and its pages) stays cached afterwards.
func (w *MachWorld) ReadFileMach(cpu *hw.CPU, m *core.Map, name string, buf []byte) (int, error) {
	k := w.Kernel
	k.Machine().Charge(k.Machine().Cost.Syscall)
	obj, err := w.FileObject(name)
	if err != nil {
		return 0, err
	}
	size := obj.Size()
	addr, err := m.AllocateWithObject(0, size, true, obj, 0,
		vmtypes.ProtRead, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		k.ReleaseObjectRef(obj)
		return 0, err
	}
	n := len(buf)
	if uint64(n) > size {
		n = int(size)
	}
	if err := k.AccessBytes(cpu, m, addr, buf[:n], false); err != nil {
		_ = m.Deallocate(addr, size)
		return 0, err
	}
	// copyout to the user buffer.
	k.Machine().ChargeKB(k.Machine().Cost.CopyPerKB, n)
	if err := m.Deallocate(addr, size); err != nil {
		return n, err
	}
	return n, nil
}

// UnixWorld is a booted baseline system.
type UnixWorld struct {
	Spec    Spec
	Machine *hw.Machine
	Mod     pmap.Module
	Sys     *baseline.System
	FS      *unixfs.FS
}

// NewUnixWorld boots the traditional comparison system on identical
// hardware, panicking on a bad architecture (the historical signature
// has no error return).
//
// Deprecated: use BuildUnixWorld with NewConfig, or a Scenario — those
// report construction errors instead of panicking.
func NewUnixWorld(a Arch, opts Options) *UnixWorld {
	u, err := BuildUnixWorld(a, opts.toConfig())
	if err != nil {
		panic(err)
	}
	return u
}
