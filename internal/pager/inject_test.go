package pager_test

// Fault-injection tests: a never-responding pager must surface
// ErrPagerTimeout within the configured deadline without wedging the
// faulting thread or leaving a permanently-busy page, short reads must
// zero-fill their tail, and concurrent faults must survive a pager that
// delays, errors and hangs while pageout runs — race-clean.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"machvm/internal/core"
	"machvm/internal/pager"
	"machvm/internal/vmtypes"
)

func TestFlakyPagerDropSurfacesTimeout(t *testing.T) {
	k, machine, fs := newWorld(t)
	cpu := machine.CPU(0)
	k.SetPagerPolicy(core.PagerPolicy{
		Deadline: 100 * time.Millisecond,
		Retries:  -1,
	})
	fp := pager.NewFlakyPager(pager.NewSwapPager(fs))
	fp.SetDrop(true)
	obj := k.NewObject(4096, fp, "dropped")
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, 4096, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	faultErr := k.Touch(cpu, m, addr, false)
	elapsed := time.Since(start)
	if !errors.Is(faultErr, core.ErrPagerTimeout) {
		t.Fatalf("dropped request should surface ErrPagerTimeout, got %v", faultErr)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout took %v against a 100ms deadline", elapsed)
	}
	// The failed flight freed the busy page: once the pager behaves, the
	// same offset faults normally (no swap data yet, so zero fill).
	fp.SetDrop(false)
	b := []byte{9}
	if err := k.AccessBytes(cpu, m, addr, b, false); err != nil {
		t.Fatalf("refault after drop: %v", err)
	}
	if b[0] != 0 {
		t.Fatalf("zero-fill refault read %d", b[0])
	}
	if reqs, _ := fp.Calls(); reqs < 2 {
		t.Fatalf("pager saw %d requests, want at least the drop and the refault", reqs)
	}
}

func TestFlakyPagerShortReadZeroFillsTail(t *testing.T) {
	k, machine, fs := newWorld(t)
	cpu := machine.CPU(0)
	content := bytes.Repeat([]byte{0xAB}, 4096)
	if _, err := fs.Create("short", content); err != nil {
		t.Fatal(err)
	}
	ip := pager.NewInodePager(fs)
	fp := pager.NewFlakyPager(ip)
	inner, err := ip.NewFileObject(k, "short")
	if err != nil {
		t.Fatal(err)
	}
	_ = inner
	// Build a flaky-backed object over the same file.
	ino, err := fs.Open("short")
	if err != nil {
		t.Fatal(err)
	}
	obj := k.NewObject(4096, fp, "short-flaky")
	ip.Bind(obj, ino)
	fp.SetShortRead(16)

	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, 4096, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if err := k.AccessBytes(cpu, m, addr, buf, false); err != nil {
		t.Fatalf("short-read fault: %v", err)
	}
	for i := 0; i < 16; i++ {
		if buf[i] != 0xAB {
			t.Fatalf("byte %d = %#x, want the pager's data", i, buf[i])
		}
	}
	for i := 16; i < 32; i++ {
		if buf[i] != 0 {
			t.Fatalf("byte %d = %#x, want zero-filled tail", i, buf[i])
		}
	}
}

// TestFlakyPagerConcurrentFaultStress races concurrent faulters (some
// cancellable, some not) against a pager whose behaviour is mutated under
// them — delays, bursts of injected errors, and a period of total silence
// — while the pageout daemon runs. The invariant under -race: nothing
// deadlocks, no page stays permanently busy, and once the injector is
// reset every page is readable again.
func TestFlakyPagerConcurrentFaultStress(t *testing.T) {
	k, machine, fs := newWorld(t)
	k.SetPagerPolicy(core.PagerPolicy{
		Deadline:    40 * time.Millisecond,
		Retries:     1,
		BackoffBase: time.Millisecond,
	})

	const pages = 16
	content := bytes.Repeat([]byte{0x5C}, pages*4096)
	ino, err := fs.Create("stress", content)
	if err != nil {
		t.Fatal(err)
	}
	ip := pager.NewInodePager(fs)
	fp := pager.NewFlakyPager(ip)
	obj := k.NewObject(pages*4096, fp, "stress")
	ip.Bind(obj, ino)
	// Degrade injected failures to zero fill so the stress loop measures
	// liveness, not error propagation (covered elsewhere).
	obj.SetPagerFallback(core.FallbackZeroFill)

	m := k.NewMap()
	defer m.Destroy()
	addr, err := m.AllocateWithObject(0, pages*4096, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		m.Pmap().Activate(machine.CPU(c))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var faults, failures atomic.Uint64
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cpu := machine.CPU(g % 2)
			rng := uint64(g)*2654435761 + 1
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				va := addr + vmtypes.VA((rng>>33)%pages*4096)
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if g%2 == 0 && i%4 == 3 {
					// Some faulters give up early, exercising abandonment.
					ctx, cancel = context.WithTimeout(ctx, 5*time.Millisecond)
				}
				err := k.TouchContext(ctx, cpu, m, va, i%8 == 0)
				cancel()
				faults.Add(1)
				if err != nil {
					failures.Add(1)
				}
			}
		}(g)
	}

	// A churn goroutine maps, faults and deallocates a second window onto
	// the same object, racing Deallocate against in-flight pager requests
	// and pageout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cpu := machine.CPU(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m2 := k.NewMap()
			m2.Pmap().Activate(cpu)
			obj.Reference()
			a2, err := m2.AllocateWithObject(0, pages*4096, true, obj, 0,
				vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
			if err != nil {
				k.ReleaseObjectRef(obj)
			} else {
				for p := 0; p < pages; p += 3 {
					_ = k.Touch(cpu, m2, a2+vmtypes.VA(p*4096), false)
				}
				_ = m2.Deallocate(a2, pages*4096)
			}
			m2.Pmap().Deactivate(cpu)
			m2.Destroy()
		}
	}()

	// Mutate the pager under the faulters, and keep flushing the object's
	// resident pages so faults actually reach the (mis)behaving pager
	// instead of settling into resident hits.
	for round := 0; round < 6; round++ {
		switch round % 3 {
		case 0:
			fp.SetDelay(2 * time.Millisecond)
			fp.FailNextRequests(5)
		case 1:
			fp.SetDelay(0)
			fp.SetDrop(true)
		case 2:
			fp.SetDrop(false)
			fp.FailNextWrites(3)
			k.PageoutScan()
		}
		k.FlushObjectRange(obj, 0, uint64(pages*4096))
		time.Sleep(30 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Reset every knob; the world must be fully live again.
	fp.SetDelay(0)
	fp.SetDrop(false)
	fp.FailNextRequests(0)
	fp.FailNextWrites(0)
	fp.SetShortRead(0)
	for i := 0; i < pages; i++ {
		b := []byte{0}
		if err := k.AccessBytes(machine.CPU(0), m, addr+vmtypes.VA(i*4096), b, false); err != nil {
			t.Fatalf("page %d unreadable after stress: %v", i, err)
		}
	}
	if faults.Load() == 0 {
		t.Fatal("stress loop never faulted")
	}
	st := k.VMStatistics()
	t.Logf("faults=%d failures=%d timeouts=%d retries=%d errors=%d fallbacks=%d joins=%d abandons=%d",
		faults.Load(), failures.Load(), st.PagerTimeouts, st.PagerRetries,
		st.PagerErrors, st.PagerFallbacks, st.PagerFlightJoins, st.PagerAbandons)
}
