package pager_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"machvm/internal/core"
	"machvm/internal/ipc"
	"machvm/internal/pager"
	"machvm/internal/vmtypes"
)

func TestSwapPagerRoundTrip(t *testing.T) {
	k, _, fs := newWorld(t)
	sp := pager.NewSwapPager(fs)
	obj := k.NewObject(16*4096, nil, "swap-client")
	sp.Init(obj)

	ctx := context.Background()
	// Nothing stored yet: unavailable.
	if _, err := sp.DataRequest(ctx, obj, 0, 4096); !errors.Is(err, core.ErrDataUnavailable) {
		t.Fatalf("fresh swap should be unavailable, got %v", err)
	}
	data := bytes.Repeat([]byte{0xEE}, 4096)
	if err := sp.DataWrite(ctx, obj, 8192, data); err != nil {
		t.Fatalf("DataWrite: %v", err)
	}
	got, err := sp.DataRequest(ctx, obj, 8192, 4096)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("swap round trip failed: %v", err)
	}
	// Other offsets are either unavailable or sparse zeros (the swap
	// file grew past them); both make the kernel produce a zero page.
	if d, err := sp.DataRequest(ctx, obj, 0, 4096); err == nil {
		for _, b := range d {
			if b != 0 {
				t.Fatal("unwritten swap offset returned non-zero data")
			}
		}
	}
	// Terminate releases the swap file.
	sp.Terminate(obj)
	if _, err := sp.DataRequest(ctx, obj, 8192, 4096); !errors.Is(err, core.ErrDataUnavailable) {
		t.Fatalf("terminated object should have no swap, got %v", err)
	}
	if sp.Name() == "" {
		t.Fatal("pager needs a name")
	}
}

func TestInodePagerEdges(t *testing.T) {
	k, _, fs := newWorld(t)
	ip := pager.NewInodePager(fs)
	if _, err := ip.NewFileObject(k, "missing"); err == nil {
		t.Fatal("mapping a missing file should fail")
	}
	content := bytes.Repeat([]byte{3}, 6000) // not page aligned
	ino, err := fs.Create("odd", content)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := ip.NewFileObject(k, "odd")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The object rounds up to a page; the tail past EOF is unavailable
	// at page granularity only beyond the last byte.
	data, err := ip.DataRequest(ctx, obj, 4096, 4096)
	if err != nil {
		t.Fatalf("page containing EOF must be available: %v", err)
	}
	if len(data) != 4096 || data[6000-4096-1] != 3 {
		t.Fatal("EOF page content wrong")
	}
	if _, err := ip.DataRequest(ctx, obj, 8192, 4096); !errors.Is(err, core.ErrDataUnavailable) {
		t.Fatalf("page past EOF must be unavailable, got %v", err)
	}
	// DataWrite past the logical size must not grow the file.
	grown := bytes.Repeat([]byte{7}, 4096)
	if err := ip.DataWrite(ctx, obj, 4096, grown); err != nil {
		t.Fatalf("DataWrite: %v", err)
	}
	if ino.Size() != 6000 {
		t.Fatalf("pageout grew the file to %d", ino.Size())
	}
	// But the in-range part must land.
	check := make([]byte, 100)
	if _, err := ino.ReadAt(check, 4096); err != nil {
		t.Fatal(err)
	}
	if check[0] != 7 {
		t.Fatal("pageout data did not land in the file")
	}
	// Writes entirely past EOF are dropped.
	if err := ip.DataWrite(ctx, obj, 16384, grown); err != nil {
		t.Fatalf("past-EOF DataWrite should be a silent no-op: %v", err)
	}
	if ino.Size() != 6000 {
		t.Fatal("fully-past-EOF pageout grew the file")
	}
	// Bind an unrelated object explicitly.
	other := k.NewObject(4096, nil, "bound")
	ip.Bind(other, ino)
	if d, err := ip.DataRequest(ctx, other, 0, 4096); err != nil || d[0] != 3 {
		t.Fatalf("Bind did not attach the inode: %v", err)
	}
	ip.Terminate(obj)
	if _, err := ip.DataRequest(ctx, obj, 0, 4096); !errors.Is(err, core.ErrDataUnavailable) {
		t.Fatalf("terminated object still served: %v", err)
	}
}

func TestExternalObjectCleanAndFlushMessages(t *testing.T) {
	k, machine, _ := newWorld(t)
	cpu := machine.CPU(0)
	store := map[uint64][]byte{}
	var storeMu = make(chan struct{}, 1)
	storeMu <- struct{}{}

	up := pager.NewUserPager("cf")
	up.OnRequest = func(req pager.DataRequest) {
		<-storeMu
		d, ok := store[req.Offset]
		storeMu <- struct{}{}
		if !ok {
			req.Unavailable()
			return
		}
		req.Provide(d, 0)
	}
	up.OnWrite = func(offset uint64, data []byte) {
		<-storeMu
		store[offset] = data
		storeMu <- struct{}{}
	}
	defer up.Stop()

	eo, obj := pager.NewExternalObject(k, up.Port, 4*4096, "cf")
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, _ := m.AllocateWithObject(0, obj.Size(), true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err := k.AccessBytes(cpu, m, addr, []byte("to be cleaned"), true); err != nil {
		t.Fatal(err)
	}

	// pager_clean_request via the message protocol, with a reply.
	reply := ipc.NewPort("clean-reply")
	if err := eo.Ports().RequestPort.Send(&ipc.Message{
		ID:    ipc.MsgPagerCleanRequest,
		Items: []ipc.Item{ipc.Int(0), ipc.Int(obj.Size())},
		Reply: reply,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reply.Receive(); err != nil {
		t.Fatal(err)
	}
	// The pager_data_write travels asynchronously to the user pager.
	deadline := time.Now().Add(2 * time.Second)
	for {
		<-storeMu
		d := store[0]
		storeMu <- struct{}{}
		if bytes.HasPrefix(d, []byte("to be cleaned")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clean never delivered the dirty page: %q", d)
		}
		time.Sleep(time.Millisecond)
	}

	// pager_flush_request destroys the cached copy.
	reply2 := ipc.NewPort("flush-reply")
	if err := eo.Ports().RequestPort.Send(&ipc.Message{
		ID:    ipc.MsgPagerFlushRequest,
		Items: []ipc.Item{ipc.Int(0), ipc.Int(obj.Size())},
		Reply: reply2,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reply2.Receive(); err != nil {
		t.Fatal(err)
	}
	if obj.Resident() != 0 {
		t.Fatal("flush left resident pages")
	}
	// The data still round-trips via the pager.
	b := make([]byte, 5)
	if err := k.AccessBytes(cpu, m, addr, b, false); err != nil {
		t.Fatal(err)
	}
	if string(b) != "to be" {
		t.Fatalf("post-flush refault read %q", b)
	}
}

func TestPagerReadonlyMessage(t *testing.T) {
	k, _, _ := newWorld(t)
	up := pager.NewUserPager("ro")
	up.OnRequest = func(req pager.DataRequest) { req.Unavailable() }
	defer up.Stop()
	eo, _ := pager.NewExternalObject(k, up.Port, 4096, "ro")
	if eo.Readonly() {
		t.Fatal("fresh object should not be readonly")
	}
	if err := eo.Ports().RequestPort.Send(&ipc.Message{ID: ipc.MsgPagerReadonly}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !eo.Readonly() {
		if time.Now().After(deadline) {
			t.Fatal("pager_readonly never registered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestExternalObjectTimeout(t *testing.T) {
	k, machine, _ := newWorld(t)
	cpu := machine.CPU(0)
	// A pager that never answers: under the default degradation policy
	// (FallbackError) the fault must surface ErrPagerTimeout rather than
	// hanging forever.
	k.SetPagerPolicy(core.PagerPolicy{
		Deadline: 50 * time.Millisecond,
		Retries:  -1,
	})
	up := pager.NewUserPager("mute")
	up.OnRequest = func(req pager.DataRequest) { /* silence */ }
	defer up.Stop()
	eo, obj := pager.NewExternalObject(k, up.Port, 4096, "mute")
	_ = eo
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, _ := m.AllocateWithObject(0, 4096, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	b := []byte{9}
	done := make(chan error, 1)
	go func() { done <- k.AccessBytes(cpu, m, addr, b, false) }()
	select {
	case err := <-done:
		if !errors.Is(err, core.ErrPagerTimeout) {
			t.Fatalf("mute pager should surface ErrPagerTimeout, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fault hung on a mute pager")
	}
	if got := k.VMStatistics().PagerTimeouts; got == 0 {
		t.Fatal("PagerTimeouts statistic not incremented")
	}
}

func TestExternalObjectTimeoutZeroFillFallback(t *testing.T) {
	k, machine, _ := newWorld(t)
	cpu := machine.CPU(0)
	// With the object's degradation policy set to zero-fill, the same
	// mute pager degrades to a zero page instead of an error.
	k.SetPagerPolicy(core.PagerPolicy{
		Deadline: 50 * time.Millisecond,
		Retries:  -1,
	})
	up := pager.NewUserPager("mute-zf")
	up.OnRequest = func(req pager.DataRequest) { /* silence */ }
	defer up.Stop()
	_, obj := pager.NewExternalObject(k, up.Port, 4096, "mute-zf")
	obj.SetPagerFallback(core.FallbackZeroFill)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, _ := m.AllocateWithObject(0, 4096, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	b := []byte{9}
	done := make(chan error, 1)
	go func() { done <- k.AccessBytes(cpu, m, addr, b, false) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("zero-fill fallback should succeed: %v", err)
		}
		if b[0] != 0 {
			t.Fatal("fallback should read zero")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fault hung on a mute pager")
	}
	if got := k.VMStatistics().PagerFallbacks; got == 0 {
		t.Fatal("PagerFallbacks statistic not incremented")
	}
}
