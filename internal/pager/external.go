package pager

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"machvm/internal/core"
	"machvm/internal/ipc"
	"machvm/internal/vmtypes"
)

// ExternalObject implements the optional locking interface.
var _ core.LockingPager = (*ExternalObject)(nil)

// ErrPagerTimeout is core.ErrPagerTimeout: an external pager failed to
// answer within the time allowed (the kernel's PagerPolicy deadline or
// this proxy's SetTimeout bound, whichever fires first).
var ErrPagerTimeout = core.ErrPagerTimeout

// ErrPagerDead means the pager conversation cannot complete because the
// object's request port was destroyed.
var ErrPagerDead = errors.New("pager: external pager port destroyed")

// ObjectPorts are the three ports the kernel associates with an
// externally managed memory object (§3.3): the paging_object port the
// kernel sends requests to, the paging_object_request port the pager uses
// to call back into the kernel, and the paging_name port that identifies
// the object.
type ObjectPorts struct {
	// PagerPort is the pager's service port (paging_object): the kernel
	// sends pager_data_request etc. here; the pager task receives.
	PagerPort *ipc.Port
	// RequestPort is the kernel's service port (paging_object_request):
	// the pager sends pager_data_provided etc. here.
	RequestPort *ipc.Port
	// NamePort identifies the object (paging_name).
	NamePort *ipc.Port
}

// ExternalObject is the kernel-side proxy for an externally managed
// memory object. It implements core.Pager by translating the synchronous
// kernel calls into the asynchronous message protocol of Tables 3-1/3-2
// and blocking the faulting thread until the pager answers — which is
// exactly what happens to a faulting thread on real Mach.
type ExternalObject struct {
	kernel *core.Kernel
	ports  ObjectPorts
	obj    *core.Object

	mu            sync.Mutex
	waiters       map[uint64][]chan provided
	unlockWaiters map[uint64][]chan struct{}
	readonly      bool
	locks         map[uint64]uint64 // offset -> lock_value (pager_data_lock)
	timeout       time.Duration
	done          chan struct{}
}

type provided struct {
	data        []byte
	unavailable bool
}

// NewExternalObject wires a kernel memory object to an external pager
// reachable at pagerPort. It allocates the request and name ports, starts
// the kernel-side service loop, sends pager_init, and returns the proxy
// plus the created object of the given size.
func NewExternalObject(k *core.Kernel, pagerPort *ipc.Port, size uint64, name string) (*ExternalObject, *core.Object) {
	eo := &ExternalObject{
		kernel: k,
		ports: ObjectPorts{
			PagerPort:   pagerPort,
			RequestPort: ipc.NewPort("paging_object_request:" + name),
			NamePort:    ipc.NewPort("paging_name:" + name),
		},
		waiters:       make(map[uint64][]chan provided),
		unlockWaiters: make(map[uint64][]chan struct{}),
		locks:         make(map[uint64]uint64),
		timeout:       10 * time.Second,
		done:          make(chan struct{}),
	}
	obj := k.NewObject(size, eo, name)
	eo.obj = obj
	go eo.serve()
	// pager_init(paging_object, pager_request_port, pager_name).
	_ = pagerPort.Send(&ipc.Message{
		ID: ipc.MsgPagerInit,
		Items: []ipc.Item{
			ipc.PortItem(eo.ports.RequestPort),
			ipc.PortItem(eo.ports.NamePort),
			ipc.String(name),
		},
	})
	return eo, obj
}

// Ports returns the object's port triple.
func (eo *ExternalObject) Ports() ObjectPorts { return eo.ports }

// SetTimeout changes this proxy's own per-call bound on how long it waits
// for the pager to answer a data request or unlock. It is secondary to
// the kernel's PagerPolicy deadline (carried in the context): whichever
// fires first wins.
func (eo *ExternalObject) SetTimeout(d time.Duration) {
	eo.mu.Lock()
	eo.timeout = d
	eo.mu.Unlock()
}

func (eo *ExternalObject) getTimeout() time.Duration {
	eo.mu.Lock()
	defer eo.mu.Unlock()
	return eo.timeout
}

// Readonly reports whether the pager demanded copy-on-write treatment
// (pager_readonly).
func (eo *ExternalObject) Readonly() bool {
	eo.mu.Lock()
	defer eo.mu.Unlock()
	return eo.readonly
}

// LockValue returns the pager_data_lock value recorded for offset.
func (eo *ExternalObject) LockValue(offset uint64) uint64 {
	eo.mu.Lock()
	defer eo.mu.Unlock()
	return eo.locks[offset]
}

// serve is the kernel-side loop handling pager → kernel calls
// (Table 3-2).
func (eo *ExternalObject) serve() {
	for {
		msg, err := eo.ports.RequestPort.Receive()
		if err != nil {
			// Port destroyed: fail any waiters.
			eo.mu.Lock()
			for off, ws := range eo.waiters {
				for _, w := range ws {
					w <- provided{unavailable: true}
				}
				delete(eo.waiters, off)
			}
			eo.mu.Unlock()
			close(eo.done)
			return
		}
		eo.kernel.Machine().Charge(eo.kernel.Machine().Cost.MsgOp)
		switch msg.ID {
		case ipc.MsgPagerDataProvided:
			// pager_data_provided(request, offset, data, lock_value).
			// Record the lock before waking the faulter so the mapping
			// is entered with the restriction in force.
			offset := msg.Items[0].Int
			data := msg.Items[1].Bytes
			lock := msg.Items[2].Int
			eo.mu.Lock()
			eo.locks[offset] = lock
			eo.mu.Unlock()
			eo.fulfill(offset, provided{data: data})
		case ipc.MsgPagerDataUnavailable:
			// pager_data_unavailable(request, offset, size)
			offset := msg.Items[0].Int
			eo.fulfill(offset, provided{unavailable: true})
		case ipc.MsgPagerDataLock:
			// pager_data_lock(request, offset, length, lock_value)
			offset := msg.Items[0].Int
			lock := msg.Items[2].Int
			eo.mu.Lock()
			eo.locks[offset] = lock
			ws := eo.unlockWaiters[offset]
			delete(eo.unlockWaiters, offset)
			eo.mu.Unlock()
			for _, w := range ws {
				close(w)
			}
		case ipc.MsgPagerCleanRequest:
			offset, length := msg.Items[0].Int, msg.Items[1].Int
			eo.kernel.CleanObjectRange(eo.obj, offset, length)
			if msg.Reply != nil {
				_ = msg.Reply.Send(&ipc.Message{ID: ipc.MsgPagerCleanRequest})
			}
		case ipc.MsgPagerFlushRequest:
			offset, length := msg.Items[0].Int, msg.Items[1].Int
			eo.kernel.FlushObjectRange(eo.obj, offset, length)
			if msg.Reply != nil {
				_ = msg.Reply.Send(&ipc.Message{ID: ipc.MsgPagerFlushRequest})
			}
		case ipc.MsgPagerReadonly:
			eo.mu.Lock()
			eo.readonly = true
			eo.mu.Unlock()
		case ipc.MsgPagerCache:
			// pager_cache(request, should_cache_object)
			eo.obj.SetCanPersist(msg.Items[0].Int != 0)
		}
	}
}

func (eo *ExternalObject) fulfill(offset uint64, p provided) {
	eo.mu.Lock()
	ws := eo.waiters[offset]
	delete(eo.waiters, offset)
	eo.mu.Unlock()
	for _, w := range ws {
		w <- p
	}
}

// Name implements core.Pager.
func (eo *ExternalObject) Name() string { return "external:" + eo.ports.PagerPort.Name() }

// Init implements core.Pager (pager_init was already sent at creation).
func (eo *ExternalObject) Init(obj *core.Object) {}

// removeWaiter drops ch from the offset's waiter list (the caller timed
// out or was cancelled and nobody will drain the channel again).
func (eo *ExternalObject) removeWaiter(offset uint64, ch chan provided) {
	eo.mu.Lock()
	ws := eo.waiters[offset]
	for i, w := range ws {
		if w == ch {
			eo.waiters[offset] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(eo.waiters[offset]) == 0 {
		delete(eo.waiters, offset)
	}
	eo.mu.Unlock()
}

// DataRequest implements core.Pager: send pager_data_request to the
// external pager and block until it answers with pager_data_provided or
// pager_data_unavailable, the context fires, or this proxy's own timeout
// elapses.
func (eo *ExternalObject) DataRequest(ctx context.Context, obj *core.Object, offset uint64, length int) ([]byte, error) {
	ch := make(chan provided, 1)
	eo.mu.Lock()
	eo.waiters[offset] = append(eo.waiters[offset], ch)
	eo.mu.Unlock()

	err := eo.ports.PagerPort.Send(&ipc.Message{
		ID: ipc.MsgPagerDataRequest,
		Items: []ipc.Item{
			ipc.Int(offset),
			ipc.Int(uint64(length)),
			ipc.PortItem(eo.ports.RequestPort),
		},
	})
	if err != nil {
		eo.removeWaiter(offset, ch)
		return nil, fmt.Errorf("%w: %v", ErrPagerDead, err)
	}
	t := time.NewTimer(eo.getTimeout())
	defer t.Stop()
	select {
	case p := <-ch:
		if p.unavailable {
			return nil, core.ErrDataUnavailable
		}
		return p.data, nil
	case <-ctx.Done():
		eo.removeWaiter(offset, ch)
		return nil, ctx.Err()
	case <-t.C:
		eo.removeWaiter(offset, ch)
		return nil, fmt.Errorf("%w: no pager_data_provided within %v", ErrPagerTimeout, eo.getTimeout())
	}
}

// DataWrite implements core.Pager: pageout sends pager_data_write. The
// send itself is asynchronous; an error means the pager port is gone.
func (eo *ExternalObject) DataWrite(ctx context.Context, obj *core.Object, offset uint64, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	err := eo.ports.PagerPort.Send(&ipc.Message{
		ID: ipc.MsgPagerDataWrite,
		Items: []ipc.Item{
			ipc.Int(offset),
			ipc.Bytes(cp),
		},
	})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPagerDead, err)
	}
	return nil
}

// CheckLock implements core.LockingPager: lock values are bitmasks of
// *prohibited* access kinds, as in pager_data_provided's lock_value.
func (eo *ExternalObject) CheckLock(obj *core.Object, offset uint64, access vmtypes.Prot) bool {
	eo.mu.Lock()
	defer eo.mu.Unlock()
	return vmtypes.Prot(eo.locks[offset])&access == 0
}

// RequestUnlock implements core.LockingPager: send pager_data_unlock and
// block the faulting thread until the pager grants a compatible lock, the
// context fires, or this proxy's own timeout elapses.
func (eo *ExternalObject) RequestUnlock(ctx context.Context, obj *core.Object, offset uint64, length int, access vmtypes.Prot) error {
	deadline := time.Now().Add(eo.getTimeout())
	for {
		eo.mu.Lock()
		if vmtypes.Prot(eo.locks[offset])&access == 0 {
			eo.mu.Unlock()
			return nil
		}
		w := make(chan struct{})
		eo.unlockWaiters[offset] = append(eo.unlockWaiters[offset], w)
		eo.mu.Unlock()

		err := eo.ports.PagerPort.Send(&ipc.Message{
			ID: ipc.MsgPagerDataUnlock,
			Items: []ipc.Item{
				ipc.Int(offset),
				ipc.Int(uint64(length)),
				ipc.Int(uint64(access)),
				ipc.PortItem(eo.ports.RequestPort),
			},
		})
		if err != nil {
			return fmt.Errorf("%w: %v", ErrPagerDead, err)
		}
		t := time.NewTimer(time.Until(deadline))
		select {
		case <-w:
			t.Stop()
			// Re-check the new lock value.
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
			return fmt.Errorf("%w: no pager_data_lock within %v", ErrPagerTimeout, eo.getTimeout())
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: pager_data_lock still incompatible at deadline", ErrPagerTimeout)
		}
	}
}

// Terminate implements core.Pager.
func (eo *ExternalObject) Terminate(obj *core.Object) {
	eo.ports.RequestPort.Destroy()
	eo.ports.NamePort.Destroy()
}

// UserPager is the user-task side of the protocol: a loop that receives
// kernel → pager messages on a service port and dispatches to handler
// callbacks ("pager_server: routine called by task to process a message
// from the kernel", Table 3-1). Simple pagers implement only OnRequest,
// largely ignoring the more sophisticated calls, exactly as the paper
// suggests trivial pagers can.
type UserPager struct {
	// Port is the pager's service port (give it to NewExternalObject).
	Port *ipc.Port

	// OnInit is called for pager_init.
	OnInit func(requestPort, namePort *ipc.Port, name string)
	// OnRequest must answer a pager_data_request by calling
	// Provide or Unavailable on the reply.
	OnRequest func(req DataRequest)
	// OnWrite handles pager_data_write.
	OnWrite func(offset uint64, data []byte)
	// OnUnlock handles pager_data_unlock: the kernel wants the given
	// access at [offset, offset+length); the pager answers by calling
	// grant with the new lock value (0 = fully unlocked).
	OnUnlock func(offset, length uint64, desired uint64, grant func(lockValue uint64))

	stopped chan struct{}
}

// DataRequest is one kernel fault forwarded to the user pager.
type DataRequest struct {
	Offset  uint64
	Length  int
	request *ipc.Port
}

// Provide answers the fault with data (pager_data_provided); lockValue 0
// imposes no lock.
func (r DataRequest) Provide(data []byte, lockValue uint64) {
	_ = r.request.Send(&ipc.Message{
		ID: ipc.MsgPagerDataProvided,
		Items: []ipc.Item{
			ipc.Int(r.Offset),
			ipc.Bytes(data),
			ipc.Int(lockValue),
		},
	})
}

// Unavailable reports that no data exists for the region
// (pager_data_unavailable); the kernel zero-fills.
func (r DataRequest) Unavailable() {
	_ = r.request.Send(&ipc.Message{
		ID: ipc.MsgPagerDataUnavailable,
		Items: []ipc.Item{
			ipc.Int(r.Offset),
			ipc.Int(uint64(r.Length)),
		},
	})
}

// NewUserPager creates a user pager with a fresh service port and starts
// its server loop.
func NewUserPager(name string) *UserPager {
	up := &UserPager{
		Port:    ipc.NewPort("pager:" + name),
		stopped: make(chan struct{}),
	}
	go up.serve()
	return up
}

// serve is pager_server: the dispatch loop of the user pager task.
func (up *UserPager) serve() {
	defer close(up.stopped)
	for {
		msg, err := up.Port.Receive()
		if err != nil {
			return
		}
		switch msg.ID {
		case ipc.MsgPagerInit:
			if up.OnInit != nil {
				up.OnInit(msg.Items[0].Port, msg.Items[1].Port, msg.Items[2].Str)
			}
		case ipc.MsgPagerDataRequest:
			req := DataRequest{
				Offset:  msg.Items[0].Int,
				Length:  int(msg.Items[1].Int),
				request: msg.Items[2].Port,
			}
			if up.OnRequest != nil {
				up.OnRequest(req)
			} else {
				req.Unavailable()
			}
		case ipc.MsgPagerDataWrite:
			if up.OnWrite != nil {
				up.OnWrite(msg.Items[0].Int, msg.Items[1].Bytes)
			}
		case ipc.MsgPagerDataUnlock:
			offset := msg.Items[0].Int
			length := msg.Items[1].Int
			desired := msg.Items[2].Int
			request := msg.Items[3].Port
			grant := func(lockValue uint64) {
				_ = request.Send(&ipc.Message{
					ID: ipc.MsgPagerDataLock,
					Items: []ipc.Item{
						ipc.Int(offset),
						ipc.Int(length),
						ipc.Int(lockValue),
					},
				})
			}
			if up.OnUnlock != nil {
				up.OnUnlock(offset, length, desired, grant)
			} else {
				// Simple pagers ignore locks: grant everything.
				grant(0)
			}
		}
	}
}

// Stop shuts the pager down.
func (up *UserPager) Stop() {
	up.Port.Destroy()
	<-up.stopped
}

// String renders the pager for diagnostics.
func (up *UserPager) String() string { return fmt.Sprintf("userpager(%s)", up.Port.Name()) }
