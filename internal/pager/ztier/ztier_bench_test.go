package ztier_test

// Benchmarks for the compressed tier: codec-level store/load costs and
// the working-set sweep (the benchtables headline, kept here so CI's
// bench smoke exercises it). Virtual-time metrics are reported alongside
// wall time — the repo's comparative numbers are virtual.

import (
	"context"
	"testing"

	"machvm/internal/core"
	"machvm/internal/pager/ztier"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

func BenchmarkTierStoreCompress(b *testing.B) {
	backing := newMemBacking(nil)
	tier := ztier.New(backing, ztier.Config{Budget: 1 << 30, PageSize: pgsz})
	defer tier.Close()
	obj := &core.Object{}
	data := make([]byte, pgsz)
	pagePattern(data, 3)
	b.SetBytes(pgsz)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tier.DataWrite(context.Background(), obj, uint64(i%256)*pgsz, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTierHitDecompress(b *testing.B) {
	backing := newMemBacking(nil)
	tier := ztier.New(backing, ztier.Config{Budget: 1 << 30, PageSize: pgsz})
	defer tier.Close()
	obj := &core.Object{}
	data := make([]byte, pgsz)
	pagePattern(data, 7)
	if err := tier.DataWrite(context.Background(), obj, 0, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(pgsz)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tier.DataRequest(context.Background(), obj, 0, pgsz); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkingSetSweep runs the tiered-paging working-set sweep: a
// task whose working set is a multiple of physical memory touches every
// page repeatedly against a delayed backing pager, with and without the
// compressed tier. The interesting output is virtual time per page
// (vns/page) — the graceful-degradation curve benchtables renders.
func BenchmarkWorkingSetSweep(b *testing.B) {
	const frames = 512 // × 512B = 256KB RAM = 64 mach pages
	ramPages := frames * vax.HWPageSize / pgsz
	for _, ws := range []struct {
		name  string
		num   int
		denom int
	}{
		{"ws0.5x", 1, 2}, {"ws1x", 1, 1}, {"ws1.5x", 3, 2}, {"ws2x", 2, 1},
	} {
		for _, tiered := range []bool{false, true} {
			name := ws.name + "/flat"
			if tiered {
				name = ws.name + "/ztier"
			}
			b.Run(name, func(b *testing.B) {
				wsPages := ramPages * ws.num / ws.denom
				var virtual int64
				var touched int64
				for i := 0; i < b.N; i++ {
					k, machine := newTierKernel(b, 1, frames)
					backing := newMemBacking(machine)
					backing.delayNS = 40e6
					var pg core.Pager = backing
					var tier *ztier.Tier
					if tiered {
						tier = ztier.New(backing, ztier.Config{
							Budget: 4 << 20, PageSize: pgsz, Stats: k.Stats(), Machine: machine,
						})
						pg = tier
					}
					size := uint64(wsPages) * pgsz
					obj := k.NewObject(size, pg, "sweep")
					m, addr := mapObject(b, k, machine, obj, size)
					cpu := machine.CPU(0)
					buf := make([]byte, pgsz)
					for p := 0; p < wsPages; p++ {
						pagePattern(buf, p)
						if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(p*pgsz), buf, true); err != nil {
							b.Fatal(err)
						}
					}
					for pass := 0; pass < 2; pass++ {
						k.PageoutScan()
						for p := 0; p < wsPages; p++ {
							if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(p*pgsz), buf[:64], false); err != nil {
								b.Fatal(err)
							}
							touched++
						}
					}
					cpu.FlushCharges()
					virtual += machine.Clock.Now()
					m.Destroy()
					if tier != nil {
						tier.Close()
					}
				}
				if touched > 0 {
					b.ReportMetric(float64(virtual)/float64(touched), "vns/page")
				}
			})
		}
	}
}
