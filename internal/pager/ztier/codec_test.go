package ztier

import (
	"bytes"
	"testing"
)

// lcg is a deterministic pseudo-random stream for test data.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r) >> 11
}

func roundTrip(t *testing.T, src []byte, wantCompressed bool) {
	t.Helper()
	maxLen := len(src) - len(src)/8
	comp := compress(src, maxLen)
	if comp == nil {
		if wantCompressed {
			t.Fatalf("len %d input unexpectedly incompressible", len(src))
		}
		return
	}
	if len(comp) >= maxLen {
		t.Fatalf("compress returned %d bytes, over its own threshold %d", len(comp), maxLen)
	}
	got, err := decompress(comp, len(src))
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch (len %d, compressed %d)", len(src), len(comp))
	}
}

func TestCodecRoundTripPatterns(t *testing.T) {
	// RLE page: the best case.
	roundTrip(t, bytes.Repeat([]byte{0xA5}, 4096), true)
	// Zero page (the tier elides these before the codec, but the codec
	// must still handle them).
	roundTrip(t, make([]byte, 4096), true)
	// Text-like periodic data.
	roundTrip(t, bytes.Repeat([]byte("the quick brown fox "), 205)[:4096], true)
	// Short tail chunk (partial page).
	roundTrip(t, bytes.Repeat([]byte{7}, 1000), true)
	// Structured binary: repeating 16-byte records with a counter.
	rec := make([]byte, 4096)
	for i := range rec {
		if i%16 == 0 {
			rec[i] = byte(i / 16)
		} else {
			rec[i] = byte(i % 16)
		}
	}
	roundTrip(t, rec, true)
}

func TestCodecIncompressibleReturnsNil(t *testing.T) {
	r := lcg(1)
	noise := make([]byte, 4096)
	for i := range noise {
		noise[i] = byte(r.next())
	}
	if comp := compress(noise, len(noise)-len(noise)/8); comp != nil {
		// High-entropy noise must not "compress"; if the encoder found
		// enough accidental matches, the bail-out threshold failed.
		t.Fatalf("random page compressed to %d bytes", len(comp))
	}
	// Tiny inputs can never pay for their framing.
	if comp := compress([]byte{1, 2, 3}, 2); comp != nil {
		t.Fatalf("3-byte input compressed")
	}
}

func TestCodecRandomizedRoundTrips(t *testing.T) {
	r := lcg(42)
	for iter := 0; iter < 300; iter++ {
		size := int(r.next()%8192) + 5
		src := make([]byte, size)
		mode := r.next() % 4
		for i := range src {
			switch mode {
			case 0: // low entropy: few distinct bytes
				src[i] = byte(r.next() % 4)
			case 1: // runs
				src[i] = byte((i / 37) % 7)
			case 2: // periodic with noise every 64 bytes
				if i%64 == 0 {
					src[i] = byte(r.next())
				} else {
					src[i] = byte(i % 13)
				}
			case 3: // full noise (usually incompressible — that's fine)
				src[i] = byte(r.next())
			}
		}
		roundTrip(t, src, false)
	}
}

func TestDecompressRejectsCorruptInput(t *testing.T) {
	src := bytes.Repeat([]byte("abcdabcdzz"), 410)[:4096]
	comp := compress(src, 4096)
	if comp == nil {
		t.Fatal("fixture did not compress")
	}
	// Truncations and bit flips must error or round-trip-fail cleanly,
	// never panic or read out of bounds.
	for cut := 0; cut < len(comp); cut += 7 {
		if got, err := decompress(comp[:cut], len(src)); err == nil && bytes.Equal(got, src) {
			t.Fatalf("truncation at %d round-tripped", cut)
		}
	}
	for i := 0; i < len(comp); i += 11 {
		mut := append([]byte(nil), comp...)
		mut[i] ^= 0xFF
		_, _ = decompress(mut, len(src)) // must not panic
	}
	if _, err := decompress([]byte{0xF0}, 100); err == nil {
		t.Fatal("dangling length extension accepted")
	}
}
