package ztier

import "errors"

// An LZ4-block-style codec sized for page-granule blobs. The format is a
// sequence of tokens: the high nibble is the literal length, the low
// nibble the match length minus minMatch, each extended by 255-run bytes
// when the nibble saturates at 15; literals follow the token, then a
// 2-byte little-endian back-reference offset. The final sequence carries
// literals only (no offset). This is deliberately a from-scratch
// implementation: the repo takes no dependencies, and a page-sized input
// needs none of a general codec's streaming machinery.
//
// compress is lossy about effort, never about data: it returns nil when
// the input does not shrink below maxLen, which the tier treats as "this
// page is incompressible — bypass to the backing store". decompress
// rejects any corrupt framing rather than reading out of bounds.

const (
	minMatch  = 4
	hashLog   = 12
	maxOffset = 65535
)

var errCorrupt = errors.New("ztier: corrupt compressed blob")

func load32(b []byte, i int) uint32 {
	_ = b[i+3]
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

func hash4(u uint32) uint32 { return (u * 2654435761) >> (32 - hashLog) }

// emitLen appends the 255-run extension encoding of v (the amount beyond
// the saturated nibble).
func emitLen(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// emitSeq appends one sequence: lit literals, then (when offset > 0) a
// match of mlen bytes at distance offset. It reports false when dst would
// meet or exceed maxLen — the incompressible bail-out.
func emitSeq(dst, lit []byte, offset, mlen, maxLen int) ([]byte, bool) {
	ll := len(lit)
	tok := byte(15) << 4
	if ll < 15 {
		tok = byte(ll) << 4
	}
	ml := 0
	if offset > 0 {
		ml = mlen - minMatch
		if ml < 15 {
			tok |= byte(ml)
		} else {
			tok |= 15
		}
	}
	dst = append(dst, tok)
	if ll >= 15 {
		dst = emitLen(dst, ll-15)
	}
	dst = append(dst, lit...)
	if offset > 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if ml >= 15 {
			dst = emitLen(dst, ml-15)
		}
	}
	if len(dst) >= maxLen {
		return dst, false
	}
	return dst, true
}

// compress encodes src and returns the compressed bytes, or nil when the
// result would not fit under maxLen bytes (incompressible at the caller's
// threshold). The returned slice is freshly allocated and immutable by
// convention — the tier shares it across readers without copying.
func compress(src []byte, maxLen int) []byte {
	if len(src) < minMatch+1 || maxLen <= 0 {
		return nil
	}
	var table [1 << hashLog]int32 // position+1 of the last occurrence
	dst := make([]byte, 0, maxLen)
	anchor, i := 0, 0
	ok := true
	for i+minMatch <= len(src) {
		h := hash4(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > maxOffset || load32(src, cand) != load32(src, i) {
			i++
			continue
		}
		mlen := minMatch
		for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		dst, ok = emitSeq(dst, src[anchor:i], i-cand, mlen, maxLen)
		if !ok {
			return nil
		}
		i += mlen
		anchor = i
	}
	dst, ok = emitSeq(dst, src[anchor:], 0, 0, maxLen)
	if !ok {
		return nil
	}
	return dst
}

// readLen resolves a saturated length nibble's 255-run extension.
func readLen(src []byte, i *int, base int) (int, error) {
	v := base
	for {
		if *i >= len(src) {
			return 0, errCorrupt
		}
		b := src[*i]
		*i++
		v += int(b)
		if b != 255 {
			return v, nil
		}
	}
}

// decompress decodes a blob produced by compress into a fresh buffer of
// exactly size bytes.
func decompress(src []byte, size int) ([]byte, error) {
	dst := make([]byte, 0, size)
	i := 0
	for i < len(src) {
		tok := src[i]
		i++
		ll := int(tok >> 4)
		if ll == 15 {
			var err error
			if ll, err = readLen(src, &i, 15); err != nil {
				return nil, err
			}
		}
		if i+ll > len(src) || len(dst)+ll > size {
			return nil, errCorrupt
		}
		dst = append(dst, src[i:i+ll]...)
		i += ll
		if i == len(src) {
			break // literal-only tail sequence
		}
		if i+2 > len(src) {
			return nil, errCorrupt
		}
		off := int(src[i]) | int(src[i+1])<<8
		i += 2
		if off == 0 || off > len(dst) {
			return nil, errCorrupt
		}
		ml := int(tok & 15)
		if ml == 15 {
			var err error
			if ml, err = readLen(src, &i, 15); err != nil {
				return nil, err
			}
		}
		ml += minMatch
		if len(dst)+ml > size {
			return nil, errCorrupt
		}
		// Byte-at-a-time: matches may overlap their own output (RLE).
		pos := len(dst) - off
		for j := 0; j < ml; j++ {
			dst = append(dst, dst[pos+j])
		}
	}
	if len(dst) != size {
		return nil, errCorrupt
	}
	return dst, nil
}
