package ztier_test

// Model-based fuzzer for the compressed tier: a byte-coded program of
// DataWrite/DataRequest/Drain/Terminate against a tier with a tiny budget
// (so admission, replacement, zero-page elision, eviction and writeback
// all churn constantly), checked against a plain map of expected page
// contents. Any read returning stale bytes — the shape of the
// stale-blob-bypass and pool-resident-clamp bugs the PR-8 review found —
// fails immediately.

import (
	"context"
	"testing"

	"machvm/internal/core"
	"machvm/internal/pager/ztier"
)

const (
	zfOpWrite = iota
	zfOpWriteZero
	zfOpWriteRun
	zfOpRead
	zfOpReadRun
	zfOpDrain
	zfOpTerminate
	zfOpCount
)

func FuzzTierModel(f *testing.F) {
	pg := func(ops ...byte) []byte { return ops }
	// Overwrite-then-read: a replaced blob must never serve the old bytes.
	f.Add(pg(zfOpWrite, 0, 1, 0x11, zfOpWrite, 0, 1, 0x22, zfOpRead, 0, 1))
	// Overwrite across a drain: the pool-resident copy is gone, the
	// backing copy must be the newest write, not the first.
	f.Add(pg(zfOpWrite, 0, 2, 0x33, zfOpDrain, zfOpWrite, 0, 2, 0x44, zfOpRead, 0, 2, zfOpDrain, zfOpRead, 0, 2))
	// Zero-page elision round trip, interleaved with data pages.
	f.Add(pg(zfOpWrite, 0, 3, 0x55, zfOpWriteZero, 0, 4, zfOpRead, 0, 4, zfOpRead, 0, 3, zfOpDrain, zfOpRead, 0, 4))
	// Budget overflow: a run of writes far past the budget forces CLOCK
	// eviction and clustered writeback; every page must survive.
	f.Add(pg(zfOpWriteRun, 0, 0, 12, 0x66, zfOpReadRun, 0, 0, 12, zfOpDrain, zfOpReadRun, 0, 0, 12))
	// Terminate purges one object without touching its neighbor.
	f.Add(pg(zfOpWrite, 0, 1, 0x77, zfOpWrite, 1, 1, 0x88, zfOpTerminate, 0, zfOpRead, 1, 1, zfOpRead, 0, 1))

	f.Fuzz(func(t *testing.T, program []byte) {
		k, machine := newTierKernel(t, 1, 2048)
		backing := newMemBacking(machine)
		tier := ztier.New(backing, ztier.Config{
			Budget:   4 * pgsz, // tiny: constant eviction pressure
			PageSize: pgsz,
			Stats:    k.Stats(),
			Machine:  machine,
		})
		defer tier.Close()
		ctx := context.Background()

		const nobjs, npages = 2, 16
		objs := make([]*core.Object, nobjs)
		for i := range objs {
			objs[i] = k.NewObject(npages*pgsz, tier, "fuzz-obj")
		}
		// model[obj][page] is the fill byte of the last successful write;
		// absent means never written (reads must report no data).
		model := make([]map[int]byte, nobjs)
		for i := range model {
			model[i] = map[int]byte{}
		}

		pos := 0
		next := func() (byte, bool) {
			if pos >= len(program) {
				return 0, false
			}
			b := program[pos]
			pos++
			return b, true
		}
		page := func(b byte) int { return int(b) % npages }
		fill := func(v byte, n int) []byte {
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = v
			}
			return buf
		}
		checkRead := func(oi, pageNo int) {
			data, err := tier.DataRequest(ctx, objs[oi], uint64(pageNo)*pgsz, pgsz)
			want, written := model[oi][pageNo]
			if !written {
				if err == nil && len(data) > 0 {
					t.Fatalf("obj %d page %d: read %d bytes from a never-written page", oi, pageNo, len(data))
				}
				return
			}
			if err != nil {
				t.Fatalf("obj %d page %d: written page unreadable: %v", oi, pageNo, err)
			}
			if len(data) < pgsz {
				t.Fatalf("obj %d page %d: short read %d bytes", oi, pageNo, len(data))
			}
			for i := 0; i < pgsz; i++ {
				if data[i] != want {
					t.Fatalf("obj %d page %d byte %d: read %#x, model says %#x (stale blob)", oi, pageNo, i, data[i], want)
				}
			}
		}

		steps := 0
		for {
			op, ok := next()
			if !ok || steps > 256 {
				break
			}
			steps++
			switch int(op) % zfOpCount {
			case zfOpWrite:
				ob, ok1 := next()
				pb, ok2 := next()
				v, ok3 := next()
				if !ok1 || !ok2 || !ok3 {
					break
				}
				oi, pageNo := int(ob)%nobjs, page(pb)
				if err := tier.DataWrite(ctx, objs[oi], uint64(pageNo)*pgsz, fill(v, pgsz)); err == nil {
					model[oi][pageNo] = v
				}
			case zfOpWriteZero:
				ob, ok1 := next()
				pb, ok2 := next()
				if !ok1 || !ok2 {
					break
				}
				oi, pageNo := int(ob)%nobjs, page(pb)
				if err := tier.DataWrite(ctx, objs[oi], uint64(pageNo)*pgsz, make([]byte, pgsz)); err == nil {
					model[oi][pageNo] = 0
				}
			case zfOpWriteRun:
				ob, ok1 := next()
				pb, ok2 := next()
				nb, ok3 := next()
				v, ok4 := next()
				if !ok1 || !ok2 || !ok3 || !ok4 {
					break
				}
				oi, start := int(ob)%nobjs, page(pb)
				n := int(nb)%(npages-start) + 1
				if err := tier.DataWrite(ctx, objs[oi], uint64(start)*pgsz, fill(v, n*pgsz)); err == nil {
					for p := start; p < start+n; p++ {
						model[oi][p] = v
					}
				}
			case zfOpRead:
				ob, ok1 := next()
				pb, ok2 := next()
				if !ok1 || !ok2 {
					break
				}
				checkRead(int(ob)%nobjs, page(pb))
			case zfOpReadRun:
				ob, ok1 := next()
				pb, ok2 := next()
				nb, ok3 := next()
				if !ok1 || !ok2 || !ok3 {
					break
				}
				oi, start := int(ob)%nobjs, page(pb)
				n := int(nb)%(npages-start) + 1
				for p := start; p < start+n; p++ {
					checkRead(oi, p)
				}
			case zfOpDrain:
				tier.Drain(ctx)
			case zfOpTerminate:
				ob, ok1 := next()
				if !ok1 {
					break
				}
				oi := int(ob) % nobjs
				tier.Terminate(objs[oi])
				model[oi] = map[int]byte{}
			}
		}
		// Final sweep: everything the model remembers must still be
		// readable with the right bytes, resident or evicted alike.
		for oi := range objs {
			for pageNo := range model[oi] {
				checkRead(oi, pageNo)
			}
		}
	})
}
