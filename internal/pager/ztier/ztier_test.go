package ztier_test

// Kernel-integration tests for the compressed tier: hits must complete
// with zero backing-pager round trips, evictions must land in the backing
// store as clustered writes without losing data, FallbackSwap retargeting
// must purge the tier instead of stranding blobs, and the whole stack
// must stay race-clean under concurrent faults, failures and teardown.

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pager"
	"machvm/internal/pager/ztier"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

const pgsz = 4096

// newTierKernel builds a VAX kernel whose pageout scans always reclaim
// everything (unreachable free target), the harness eviction tests use to
// force pages out to their pagers deterministically.
func newTierKernel(t testing.TB, cpus, frames int) (*core.Kernel, *hw.Machine) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: frames,
		CPUs:       cpus,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := core.MustNewKernel(core.Config{
		Machine:    machine,
		Module:     mod,
		PageSize:   pgsz,
		FreeTarget: frames + 1, // more than exists: scans always reclaim
		FreeMin:    2,
	})
	return k, machine
}

// memBacking is the slow tier for these tests: an in-memory store with
// the default pager's contiguous-run DataRequest semantics, optional
// disk-cost charging, and call counters.
type memBacking struct {
	machine *hw.Machine // when set, charge disk costs per conversation
	delayNS int64       // extra virtual latency per conversation

	mu       sync.Mutex
	store    map[*core.Object]map[uint64][]byte
	writeLen []int

	requests atomic.Uint64
	writes   atomic.Uint64
}

func newMemBacking(machine *hw.Machine) *memBacking {
	return &memBacking{machine: machine, store: make(map[*core.Object]map[uint64][]byte)}
}

func (b *memBacking) Name() string        { return "membacking" }
func (b *memBacking) Init(o *core.Object) {}
func (b *memBacking) chargeDisk(bytes int) {
	if b.machine != nil {
		b.machine.Charge(b.machine.Cost.DiskLatency + b.delayNS)
		b.machine.ChargeKB(b.machine.Cost.DiskPerKB, bytes)
	}
}

func (b *memBacking) DataRequest(ctx context.Context, o *core.Object, off uint64, n int) ([]byte, error) {
	b.requests.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	chunks := b.store[o]
	first, ok := chunks[off]
	if !ok {
		b.mu.Unlock()
		return nil, core.ErrDataUnavailable
	}
	data := append(make([]byte, 0, n), first...)
	for next := off + pgsz; len(data) < n; next += pgsz {
		c, ok := chunks[next]
		if !ok {
			break
		}
		data = append(data, c...)
	}
	b.mu.Unlock()
	if len(data) > n {
		data = data[:n]
	}
	b.chargeDisk(len(data))
	return data, nil
}

func (b *memBacking) DataWrite(ctx context.Context, o *core.Object, off uint64, data []byte) error {
	b.writes.Add(1)
	if err := ctx.Err(); err != nil {
		return err
	}
	b.chargeDisk(len(data))
	b.mu.Lock()
	m := b.store[o]
	if m == nil {
		m = make(map[uint64][]byte)
		b.store[o] = m
	}
	for lo := 0; lo < len(data); lo += pgsz {
		hi := lo + pgsz
		if hi > len(data) {
			hi = len(data)
		}
		m[off+uint64(lo)] = append([]byte(nil), data[lo:hi]...)
	}
	b.writeLen = append(b.writeLen, len(data))
	b.mu.Unlock()
	return nil
}

func (b *memBacking) Terminate(o *core.Object) {
	b.mu.Lock()
	delete(b.store, o)
	b.mu.Unlock()
}

func (b *memBacking) writeSizes() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.writeLen...)
}

// mapObject maps obj into a fresh task map activated on cpu 0.
func mapObject(t testing.TB, k *core.Kernel, machine *hw.Machine, obj *core.Object, size uint64) (*core.Map, vmtypes.VA) {
	t.Helper()
	m := k.NewMap()
	m.Pmap().Activate(machine.CPU(0))
	addr, err := m.AllocateWithObject(0, size, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	return m, addr
}

// pagePattern fills buf with a compressible page-unique pattern.
func pagePattern(buf []byte, page int) {
	for i := range buf {
		buf[i] = byte(page + 1)
	}
	buf[0] = byte(page >> 8)
	buf[1] = byte(page)
}

func TestZtierHitZeroBackingRoundTrips(t *testing.T) {
	k, machine := newTierKernel(t, 1, 4096)
	backing := newMemBacking(nil)
	tier := ztier.New(backing, ztier.Config{Budget: 8 << 20, PageSize: pgsz, Stats: k.Stats(), Machine: machine})
	defer tier.Close()

	const pages = 16
	size := uint64(pages) * pgsz
	obj := k.NewObject(size, tier, "zt-hit")
	m, addr := mapObject(t, k, machine, obj, size)
	defer m.Destroy()
	cpu := machine.CPU(0)

	buf := make([]byte, pgsz)
	for i := 0; i < pages; i++ {
		pagePattern(buf, i)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), buf, true); err != nil {
			t.Fatalf("populate page %d: %v", i, err)
		}
	}
	// Evict everything: the dirty pages ride DataWrites into the tier.
	k.PageoutScan()
	if n := tier.ObjectBlobs(obj); n == 0 {
		t.Fatal("pageout stored no blobs in the compressed tier")
	}

	// Refault every page: all served from the pool — the backing pager
	// must see ZERO DataRequests while the kernel's PagerRoundTrips grow.
	reqs0, _ := backing.requests.Load(), backing.writes.Load()
	rt0 := k.Stats().PagerRoundTrips.Load()
	got := make([]byte, pgsz)
	want := make([]byte, pgsz)
	for i := 0; i < pages; i++ {
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), got, false); err != nil {
			t.Fatalf("refault page %d: %v", i, err)
		}
		pagePattern(want, i)
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d corrupted through the compressed tier", i)
		}
	}
	if d := backing.requests.Load() - reqs0; d != 0 {
		t.Errorf("ztier hits issued %d backing DataRequests, want 0", d)
	}
	if d := k.Stats().PagerRoundTrips.Load() - rt0; d == 0 {
		t.Error("refaults recorded no kernel pager round trips")
	}
	st := k.VMStatistics()
	if st.ZtierHits == 0 {
		t.Error("no ZtierHits recorded")
	}
	if st.ZtierStoredBytes == 0 || st.ZtierCompressedBytes == 0 {
		t.Errorf("tier byte counters not wired: stored=%d compressed=%d",
			st.ZtierStoredBytes, st.ZtierCompressedBytes)
	}
	if st.ZtierCompressedBytes >= st.ZtierStoredBytes {
		t.Errorf("compressible pattern did not compress: %d >= %d",
			st.ZtierCompressedBytes, st.ZtierStoredBytes)
	}
}

func TestZtierEvictionWritesBackClustered(t *testing.T) {
	k, machine := newTierKernel(t, 1, 4096)
	backing := newMemBacking(nil)
	// A budget far below even the compressed working set forces writeback.
	tier := ztier.New(backing, ztier.Config{Budget: 64, PageSize: pgsz, EvictBatch: 16, Stats: k.Stats()})
	defer tier.Close()

	const pages = 32
	size := uint64(pages) * pgsz
	obj := k.NewObject(size, tier, "zt-evict")
	m, addr := mapObject(t, k, machine, obj, size)
	defer m.Destroy()
	cpu := machine.CPU(0)

	buf := make([]byte, pgsz)
	for i := 0; i < pages; i++ {
		pagePattern(buf, i)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), buf, true); err != nil {
			t.Fatal(err)
		}
	}
	k.PageoutScan()
	tier.Drain(context.Background())

	st := k.VMStatistics()
	if st.ZtierEvictions == 0 {
		t.Fatal("over-budget pool recorded no evictions")
	}
	if backing.writes.Load() == 0 {
		t.Fatal("evictions never reached the backing tier")
	}
	multi := false
	for _, n := range backing.writeSizes() {
		if n > pgsz {
			multi = true
		}
	}
	if !multi {
		t.Error("no clustered multi-page writeback observed")
	}

	// Every page must read back intact, wherever it now lives.
	got := make([]byte, pgsz)
	want := make([]byte, pgsz)
	for i := 0; i < pages; i++ {
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), got, false); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		pagePattern(want, i)
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d corrupted across eviction", i)
		}
	}
	if st = k.VMStatistics(); st.ZtierMisses == 0 {
		t.Error("reads after eviction recorded no tier misses")
	}
}

func TestZtierZeroAndIncompressibleBypass(t *testing.T) {
	k, machine := newTierKernel(t, 1, 4096)
	backing := newMemBacking(nil)
	tier := ztier.New(backing, ztier.Config{Budget: 8 << 20, PageSize: pgsz, Stats: k.Stats()})
	defer tier.Close()

	const pages = 8
	size := uint64(pages) * pgsz
	obj := k.NewObject(size, tier, "zt-bypass")
	m, addr := mapObject(t, k, machine, obj, size)
	defer m.Destroy()
	cpu := machine.CPU(0)

	// Even pages: incompressible noise. Odd pages: zeros (written as
	// zeros explicitly so they are dirty and ride a DataWrite).
	r := uint64(7)
	noise := func(buf []byte) {
		for i := range buf {
			r = r*6364136223846793005 + 1442695040888963407
			buf[i] = byte(r >> 33)
		}
	}
	pageData := make([][]byte, pages)
	for i := 0; i < pages; i++ {
		buf := make([]byte, pgsz)
		if i%2 == 0 {
			noise(buf)
		}
		pageData[i] = buf
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), buf, true); err != nil {
			t.Fatal(err)
		}
	}
	k.PageoutScan()

	st := k.VMStatistics()
	if st.ZtierBypasses == 0 {
		t.Fatal("incompressible pages were not bypassed to the backing tier")
	}
	if backing.writes.Load() == 0 {
		t.Fatal("bypass never wrote to the backing tier")
	}
	// Zero pages must be pool sentinels contributing no compressed bytes:
	// the pool's compressed footprint must stay far below 4 zero pages.
	if _, _, comp := tier.Stored(); comp > pgsz {
		t.Errorf("zero sentinels occupy %d compressed bytes", comp)
	}
	got := make([]byte, pgsz)
	for i := 0; i < pages; i++ {
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), got, false); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if !bytes.Equal(got, pageData[i]) {
			t.Fatalf("page %d corrupted (bypass/sentinel path)", i)
		}
	}
}

func TestFallbackSwapRetargetPurgesZtierBlobs(t *testing.T) {
	k, machine := newTierKernel(t, 1, 4096)
	backing := newMemBacking(nil)
	fp := pager.NewFlakyPager(backing)
	tier := ztier.New(fp, ztier.Config{Budget: 8 << 20, PageSize: pgsz, Stats: k.Stats()})
	defer tier.Close()
	k.SetPagerPolicy(core.PagerPolicy{Deadline: 500 * time.Millisecond, Retries: 1, BackoffBase: time.Millisecond})

	const pages = 8
	size := uint64(pages) * pgsz
	obj := k.NewObject(size, tier, "zt-retarget")
	obj.SetPagerFallback(core.FallbackSwap)
	m, addr := mapObject(t, k, machine, obj, size)
	defer m.Destroy()
	cpu := machine.CPU(0)

	// Phase 1: populate compressed blobs under automatic placement.
	buf := make([]byte, pgsz)
	for i := 0; i < pages; i++ {
		pagePattern(buf, i)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), buf, true); err != nil {
			t.Fatal(err)
		}
	}
	k.PageoutScan()
	if tier.ObjectBlobs(obj) == 0 {
		t.Fatal("phase 1 stored no blobs")
	}

	// Phase 2: demote the object cold — DataWrites now bypass to the
	// flaky backing — and make every backing write fail. The kernel must
	// retarget the object to the default pager AND terminate the tier's
	// view of it, so no compressed blob is stranded behind the retarget.
	obj.SetTier(core.TierCold)
	fp.FailNextWrites(-1)
	for i := 0; i < pages; i++ {
		pagePattern(buf, i+100)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), buf, true); err != nil {
			t.Fatal(err)
		}
	}
	k.PageoutScan()

	st := k.VMStatistics()
	if st.PagerFallbacks == 0 {
		t.Fatal("failing bypass write never triggered FallbackSwap")
	}
	if n := tier.ObjectBlobs(obj); n != 0 {
		t.Errorf("%d compressed blobs stranded in ztier after retarget", n)
	}
	// The retried data landed in the default pager: the fresh contents
	// must read back intact even though the tier was purged.
	got := make([]byte, pgsz)
	want := make([]byte, pgsz)
	for i := 0; i < pages; i++ {
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), got, false); err != nil {
			t.Fatalf("read page %d after retarget: %v", i, err)
		}
		pagePattern(want, i+100)
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d lost across FallbackSwap retarget", i)
		}
	}
}

// TestZtierTeardownStress races faulting threads against pageout-driven
// tier stores, budget-pressure writeback, injected backing failures, and
// object teardown (which must drain in-flight writebacks). The invariant
// under -race: no data race, no deadlock, and the world is live after the
// knobs reset.
func TestZtierTeardownStress(t *testing.T) {
	k, machine := newTierKernel(t, 2, 4096)
	backing := newMemBacking(nil)
	fp := pager.NewFlakyPager(backing)
	tier := ztier.New(fp, ztier.Config{Budget: 16 * pgsz, PageSize: pgsz, EvictBatch: 8, Stats: k.Stats()})
	defer tier.Close()
	k.SetPagerPolicy(core.PagerPolicy{Deadline: 50 * time.Millisecond, Retries: 1, BackoffBase: time.Millisecond})

	const pages = 32
	size := uint64(pages) * pgsz
	obj := k.NewObject(size, tier, "zt-stress")
	obj.SetPagerFallback(core.FallbackZeroFill)
	m, addr := mapObject(t, k, machine, obj, size)
	defer m.Destroy()
	m.Pmap().Activate(machine.CPU(1))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cpu := machine.CPU(g % 2)
			rng := uint64(g)*2654435761 + 1
			buf := make([]byte, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				va := addr + vmtypes.VA((rng>>33)%pages*pgsz)
				_ = k.AccessBytes(cpu, m, va, buf, i%3 == 0)
			}
		}(g)
	}
	// Churn goroutine: short-lived objects over the same tier, torn down
	// while writebacks may be in flight for them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cpu := machine.CPU(1)
		buf := make([]byte, pgsz)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o2 := k.NewObject(8*pgsz, tier, "zt-churn")
			o2.SetPagerFallback(core.FallbackZeroFill)
			m2 := k.NewMap()
			m2.Pmap().Activate(cpu)
			a2, err := m2.AllocateWithObject(0, 8*pgsz, true, o2, 0,
				vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
			if err == nil {
				for p := 0; p < 8; p += 2 {
					pagePattern(buf, p+i)
					_ = k.AccessBytes(cpu, m2, a2+vmtypes.VA(p*pgsz), buf, true)
				}
				k.PageoutScan()
				_ = m2.Deallocate(a2, 8*pgsz)
			} else {
				k.ReleaseObjectRef(o2)
			}
			m2.Pmap().Deactivate(cpu)
			m2.Destroy()
		}
	}()
	// Drain goroutine: races explicit writeback against the worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tier.Drain(context.Background())
			time.Sleep(time.Millisecond)
		}
	}()

	for round := 0; round < 8; round++ {
		switch round % 4 {
		case 0:
			fp.FailNextWrites(4)
		case 1:
			fp.SetDelay(time.Millisecond)
		case 2:
			fp.SetDelay(0)
			fp.FailNextRequests(4)
		case 3:
			fp.FailNextWrites(0)
			fp.FailNextRequests(0)
		}
		k.PageoutScan()
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	fp.SetDelay(0)
	fp.FailNextWrites(0)
	fp.FailNextRequests(0)
	b := make([]byte, 1)
	for i := 0; i < pages; i++ {
		if err := k.AccessBytes(machine.CPU(0), m, addr+vmtypes.VA(i*pgsz), b, false); err != nil {
			t.Fatalf("page %d unreadable after stress: %v", i, err)
		}
	}
}

// TestZtierBypassInvalidatesStaleBlobs drives the tier directly through
// the pager contract to pin the swap-cache staleness bug: a blob kept in
// the pool after a refault must die when a rewrite of the same page
// reaches the backing tier through a bypass route (incompressible page
// or cold-object run), or the next fault would resurrect the old bytes.
func TestZtierBypassInvalidatesStaleBlobs(t *testing.T) {
	k, _ := newTierKernel(t, 1, 64)
	backing := newMemBacking(nil)
	tier := ztier.New(backing, ztier.Config{Budget: 8 << 20, PageSize: pgsz, Stats: k.Stats()})
	defer tier.Close()
	ctx := context.Background()

	noise := func(buf []byte, seed uint64) {
		r := seed
		for i := range buf {
			r = r*6364136223846793005 + 1442695040888963407
			buf[i] = byte(r >> 33)
		}
	}
	old := make([]byte, pgsz)
	pagePattern(old, 1)

	// Route 1: incompressible rewrite of a pooled page.
	obj := k.NewObject(4*pgsz, tier, "zt-stale-incomp")
	if err := tier.DataWrite(ctx, obj, 0, old); err != nil {
		t.Fatal(err)
	}
	if got, err := tier.DataRequest(ctx, obj, 0, pgsz); err != nil || !bytes.Equal(got, old) {
		t.Fatalf("priming hit: %v", err) // blob stays pooled, swap-cache style
	}
	fresh := make([]byte, pgsz)
	noise(fresh, 7)
	if err := tier.DataWrite(ctx, obj, 0, fresh); err != nil {
		t.Fatal(err)
	}
	got, err := tier.DataRequest(ctx, obj, 0, pgsz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Error("incompressible bypass left a stale blob serving old bytes")
	}

	// Route 2: whole-run cold-object bypass over pooled pages.
	obj2 := k.NewObject(4*pgsz, tier, "zt-stale-cold")
	if err := tier.DataWrite(ctx, obj2, 0, old); err != nil {
		t.Fatal(err)
	}
	obj2.SetTier(core.TierCold)
	fresh2 := make([]byte, pgsz)
	pagePattern(fresh2, 99)
	if err := tier.DataWrite(ctx, obj2, 0, fresh2); err != nil {
		t.Fatal(err)
	}
	if got, err = tier.DataRequest(ctx, obj2, 0, pgsz); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh2) {
		t.Error("cold-object bypass left a stale blob serving old bytes")
	}
}

// TestZtierMissClampsAtPoolResidentPage pins the clustered-miss data-loss
// bug: when the first page misses but a later page in the range has a
// live blob — the newest copy, re-paged-out after an earlier eviction —
// the fall-through backing read must stop short of it, and admission
// must not replace it with the backing tier's stale copy.
func TestZtierMissClampsAtPoolResidentPage(t *testing.T) {
	k, _ := newTierKernel(t, 1, 64)
	backing := newMemBacking(nil)
	tier := ztier.New(backing, ztier.Config{Budget: 8 << 20, PageSize: pgsz, Stats: k.Stats()})
	defer tier.Close()
	ctx := context.Background()
	obj := k.NewObject(4*pgsz, tier, "zt-clamp")

	// Backing holds version A of pages 0 and 1 (an earlier eviction);
	// the pool then receives version B of page 1 only (re-paged-out).
	a := make([]byte, 2*pgsz)
	pagePattern(a[:pgsz], 0)
	pagePattern(a[pgsz:], 1)
	if err := backing.DataWrite(ctx, obj, 0, a); err != nil {
		t.Fatal(err)
	}
	b1 := make([]byte, pgsz)
	pagePattern(b1, 201)
	if err := tier.DataWrite(ctx, obj, pgsz, b1); err != nil {
		t.Fatal(err)
	}

	// A clustered fault over both pages: the miss must clamp at page 1.
	got, err := tier.DataRequest(ctx, obj, 0, 2*pgsz)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > pgsz {
		t.Fatalf("miss read %d bytes past the pool-resident page, want <= %d", len(got), pgsz)
	}
	if !bytes.Equal(got[:pgsz], a[:pgsz]) {
		t.Error("page 0 corrupted on clamped miss")
	}
	// The kernel re-asks for the remainder: page 1 must still be B.
	if got, err = tier.DataRequest(ctx, obj, pgsz, pgsz); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b1) {
		t.Error("stale backing copy clobbered the fresher pool blob")
	}
}

// hangBacking blocks every DataWrite until its context dies, modelling a
// remote pager whose far end stopped replying.
type hangBacking struct{ writes atomic.Uint64 }

func (h *hangBacking) Name() string             { return "hang" }
func (h *hangBacking) Init(o *core.Object)      {}
func (h *hangBacking) Terminate(o *core.Object) {}
func (h *hangBacking) DataRequest(ctx context.Context, o *core.Object, off uint64, n int) ([]byte, error) {
	return nil, core.ErrDataUnavailable
}
func (h *hangBacking) DataWrite(ctx context.Context, o *core.Object, off uint64, data []byte) error {
	h.writes.Add(1)
	<-ctx.Done()
	return ctx.Err()
}

// TestZtierWritebackDeadlineUnwedgesTerminate pins the worker-hang bug:
// a backing pager that never answers a writeback DataWrite must not wedge
// Terminate (which drains in-flight writebacks) — the per-round
// WritebackDeadline has to cut the write loose.
func TestZtierWritebackDeadlineUnwedgesTerminate(t *testing.T) {
	k, _ := newTierKernel(t, 1, 64)
	backing := &hangBacking{}
	tier := ztier.New(backing, ztier.Config{
		Budget: 64, PageSize: pgsz, EvictBatch: 4,
		WritebackDeadline: 20 * time.Millisecond, Stats: k.Stats(),
	})
	defer tier.Close()
	obj := k.NewObject(16*pgsz, tier, "zt-hang")

	// Overfill the pool so the worker kicks and wedges in the hung write.
	buf := make([]byte, pgsz)
	for i := 0; i < 16; i++ {
		pagePattern(buf, i)
		if err := tier.DataWrite(context.Background(), obj, uint64(i)*pgsz, buf); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for backing.writes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writeback worker never attempted a backing write")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		tier.Terminate(obj)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Terminate wedged behind a hung backing writeback")
	}
}

// TestZtierThroughputAdvantage is the acceptance headline measured in
// virtual time: a working set 1.5× physical memory against a delayed
// backing pager must sustain at least 3× the throughput with the
// compressed tier enabled versus disabled.
func TestZtierThroughputAdvantage(t *testing.T) {
	run := func(enableZtier bool) (virtualNS int64) {
		k, machine := newTierKernel(t, 1, 1024) // 1024×512B frames = 512KB RAM
		backing := newMemBacking(machine)       // charges disk costs
		backing.delayNS = 40e6                  // a slow tier: +40ms per conversation
		var pg core.Pager = backing
		var tier *ztier.Tier
		if enableZtier {
			tier = ztier.New(backing, ztier.Config{Budget: 4 << 20, PageSize: pgsz, Stats: k.Stats(), Machine: machine})
			defer tier.Close()
			pg = tier
		}
		ramPages := 1024 * vax.HWPageSize / pgsz
		wsPages := ramPages * 3 / 2 // 1.5× RAM
		size := uint64(wsPages) * pgsz
		obj := k.NewObject(size, pg, "ws")
		m, addr := mapObject(t, k, machine, obj, size)
		defer m.Destroy()
		cpu := machine.CPU(0)

		buf := make([]byte, pgsz)
		for i := 0; i < wsPages; i++ {
			pagePattern(buf, i)
			if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), buf, true); err != nil {
				t.Fatal(err)
			}
		}
		for pass := 0; pass < 4; pass++ {
			k.PageoutScan()
			for i := 0; i < wsPages; i++ {
				if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*pgsz), buf[:64], false); err != nil {
					t.Fatal(err)
				}
			}
		}
		cpu.FlushCharges()
		st := k.VMStatistics()
		t.Logf("ztier=%v: backingReqs=%d backingWrites=%d hits=%d misses=%d roundtrips=%d",
			enableZtier, backing.requests.Load(), backing.writes.Load(),
			st.ZtierHits, st.ZtierMisses, st.PagerRoundTrips)
		return machine.Clock.Now()
	}

	flat := run(false)
	tiered := run(true)
	t.Logf("ztier speedup = %.2fx in virtual time (flat=%dns tiered=%dns)",
		float64(flat)/float64(tiered), flat, tiered)
	if flat < 3*tiered {
		t.Errorf("ztier speedup = %.2fx in virtual time, want >= 3x (flat=%dns tiered=%dns)",
			float64(flat)/float64(tiered), flat, tiered)
	}
}
