// Package ztier is a zswap-style compressed in-memory paging tier that
// interposes on the kernel↔pager boundary (PR-5 contract). Pageout
// DataWrites land as per-page compressed blobs in a budgeted RAM pool;
// DataRequest hits decompress in memory with zero backing-pager round
// trips, and misses fall through to the wrapped pager. When the pool
// exceeds its budget a writeback worker evicts the coldest blobs — CLOCK
// over insertion order — to the backing tier in clustered multi-page
// writes, mirroring the pageout daemon's run coalescing.
//
// Placement honors Object.EffectiveTier: cold objects bypass the pool
// entirely (writeback-eager demotion), hot objects get extra CLOCK
// chances so refaulting working sets stay in the fast tier. All-zero
// pages store a sentinel blob (sharing the default pager's zero-page
// elision idea) and incompressible pages bypass straight to backing.
package ztier

import (
	"context"
	"sort"
	"sync"
	"time"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/vmtypes"
)

// Config parameterizes a Tier. The zero value of any field selects its
// default.
type Config struct {
	// Budget is the compressed-byte capacity of the pool; above it the
	// writeback worker evicts toward the backing tier. Default 1 MiB.
	Budget int64
	// PageSize is the kernel page size blobs are cut at. Default 4096.
	PageSize uint64
	// EvictBatch caps the blobs selected per writeback round; runs within
	// the round coalesce into clustered DataWrites. Default 32.
	EvictBatch int
	// WritebackDeadline bounds each worker-driven writeback round, so a
	// hung backing pager (a netpager whose remote stopped replying)
	// cannot wedge the worker — and with it Terminate, which drains
	// in-flight writebacks — forever. Default 2s, mirroring the kernel's
	// DefaultPagerPolicy deadline; negative disables the bound. Explicit
	// Drain calls are bounded only by the caller's context.
	WritebackDeadline time.Duration
	// Machine, when set, charges virtual time for compression and
	// decompression at CopyPerKB — the order-of-magnitude contrast with
	// the backing store's DiskLatency is the whole point of the tier.
	Machine *hw.Machine
	// Stats, when set, receives the Ztier* counters (wire the kernel's
	// own Stats here). When nil the tier keeps private counters.
	Stats *core.Stats
}

// blob is one compressed page in the pool. data is immutable once stored
// — readers decompress it outside the tier lock; a fresh DataWrite for
// the same offset replaces the blob rather than mutating it. A nil data
// with size > 0 is the zero-page sentinel.
type blob struct {
	obj  *core.Object
	off  uint64
	data []byte
	size int  // uncompressed size
	ref  bool // CLOCK referenced bit
	wb   bool // selected for writeback: off the clock, still readable
	dead bool // removed from the index (evicted, replaced or purged)
}

// Tier is the compressed tier; it implements core.Pager around a backing
// core.Pager.
//
// Lock order: t.mu is a leaf — no backing-pager call, no kernel call and
// no allocation-triggering fault ever happens while it is held. The
// kernel calls into the tier only from pager conversations, which it
// issues with no kernel locks held, so t.mu nests inside nothing.
type Tier struct {
	backing core.Pager
	cfg     Config
	stats   *core.Stats

	mu    sync.Mutex
	cond  *sync.Cond // writeback-drain waits (Terminate)
	objs  map[*core.Object]map[uint64]*blob
	clock []*blob // insertion order; front is the CLOCK hand
	dead  int     // dead entries still on the clock (lazy deletion)
	used  int64   // compressed bytes resident (sentinels count 0)
	inWB  map[*core.Object]int

	kick      chan struct{}
	stop      chan struct{}
	closeOnce sync.Once
}

// New wraps backing with a compressed tier and starts its writeback
// worker. Close stops the worker; the Tier remains usable as a pager
// afterwards (eviction then only happens via Drain).
func New(backing core.Pager, cfg Config) *Tier {
	if cfg.Budget <= 0 {
		cfg.Budget = 1 << 20
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.EvictBatch <= 0 {
		cfg.EvictBatch = 32
	}
	if cfg.WritebackDeadline == 0 {
		cfg.WritebackDeadline = 2 * time.Second
	} else if cfg.WritebackDeadline < 0 {
		cfg.WritebackDeadline = 0
	}
	st := cfg.Stats
	if st == nil {
		st = new(core.Stats)
	}
	t := &Tier{
		backing: backing,
		cfg:     cfg,
		stats:   st,
		objs:    make(map[*core.Object]map[uint64]*blob),
		inWB:    make(map[*core.Object]int),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	go t.worker()
	return t
}

// Close stops the writeback worker. It does not flush the pool; callers
// that want the backing store complete should Drain first.
func (t *Tier) Close() { t.closeOnce.Do(func() { close(t.stop) }) }

// Name implements core.Pager.
func (t *Tier) Name() string { return "ztier(" + t.backing.Name() + ")" }

// Init implements core.Pager; the backing tier must know the object too,
// since bypasses and writebacks land there.
func (t *Tier) Init(obj *core.Object) { t.backing.Init(obj) }

// Terminate implements core.Pager. It drains in-flight writebacks for the
// object first, so a completing writeback can never recreate store state
// for a terminated object in the backing pager, then purges the object's
// blobs and forwards the termination. This is what keeps a FallbackSwap
// retarget from stranding compressed blobs keyed by a dead *Object.
func (t *Tier) Terminate(obj *core.Object) {
	t.mu.Lock()
	for t.inWB[obj] > 0 {
		t.cond.Wait()
	}
	if chunks := t.objs[obj]; chunks != nil {
		for _, b := range chunks {
			if !b.dead {
				b.dead = true
				t.dead++
				t.used -= int64(len(b.data))
			}
		}
		delete(t.objs, obj)
	}
	t.compactClockLocked()
	t.mu.Unlock()
	t.backing.Terminate(obj)
}

// charge advances virtual time when a machine is wired.
func (t *Tier) charge(bytes int) {
	if t.cfg.Machine != nil && bytes > 0 {
		t.cfg.Machine.ChargeKB(t.cfg.Machine.Cost.CopyPerKB, bytes)
	}
}

// DataRequest implements core.Pager: serve the longest covered prefix
// from the pool (short reads are legal under the PR-6 contract — the
// kernel resolves the remainder separately), or fall through to the
// backing tier when the first page misses. A hit never touches the
// backing pager.
func (t *Tier) DataRequest(ctx context.Context, obj *core.Object, offset uint64, length int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	chunks := t.objs[obj]
	first := chunks[offset]
	if first == nil || first.dead {
		// Clamp the fall-through read at the first pool-resident page in
		// the range: its blob may be the newest copy (page evicted to
		// backing earlier, then re-paged-out into the pool), so the
		// backing tier must not be allowed to answer for it. The short
		// read is legal — the kernel re-asks for the remainder and hits
		// the pool.
		for n := int(t.cfg.PageSize); n < length; n += int(t.cfg.PageSize) {
			if b := chunks[offset+uint64(n)]; b != nil && !b.dead {
				length = n
				break
			}
		}
		t.mu.Unlock()
		t.stats.ZtierMisses.Add(1)
		data, err := t.backing.DataRequest(ctx, obj, offset, length)
		if err == nil {
			// Read admission: a miss fills the cache, so a page that
			// refaults clean out of the backing tier still earns a blob
			// and its next refault is a hit. The backing copy stays
			// valid — the page is clean — so a later eviction of the
			// admitted blob merely rewrites identical bytes.
			t.admit(obj, offset, data)
		}
		return data, err
	}
	run := make([]*blob, 1, length/int(t.cfg.PageSize)+1)
	run[0] = first
	first.ref = true
	total := first.size
	for next := offset + t.cfg.PageSize; total < length; next += t.cfg.PageSize {
		b := chunks[next]
		if b == nil || b.dead {
			break
		}
		b.ref = true
		run = append(run, b)
		total += b.size
	}
	t.mu.Unlock()

	// Decompress outside the lock; blob data is immutable once stored.
	out := make([]byte, 0, total)
	for _, b := range run {
		if b.data == nil {
			out = append(out, make([]byte, b.size)...)
			continue
		}
		page, err := decompress(b.data, b.size)
		if err != nil {
			return nil, err
		}
		out = append(out, page...)
	}
	if len(out) > length {
		out = out[:length]
	}
	t.stats.ZtierHits.Add(1)
	t.charge(len(out))
	return out, nil
}

// DataWrite implements core.Pager: cut the run into pages and store each
// as a compressed blob, with three bypass routes to the backing tier —
// the whole run when the object is demoted cold, and individual pages
// that are incompressible. All-zero pages store a sentinel.
func (t *Tier) DataWrite(ctx context.Context, obj *core.Object, offset uint64, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	pgsz := t.cfg.PageSize
	if obj.EffectiveTier() == core.TierCold {
		// Writeback-eager demotion: cold data must not consume pool
		// budget; it goes straight to the slow tier. Retire any pool
		// blobs the run shadows first — stored before the demotion, they
		// hold older bytes and would otherwise win the next DataRequest.
		t.invalidateRange(obj, offset, len(data))
		t.stats.ZtierBypasses.Add((uint64(len(data)) + pgsz - 1) / pgsz)
		return t.backing.DataWrite(ctx, obj, offset, data)
	}

	// Incompressible pages are forwarded in contiguous sub-runs so the
	// backing tier still sees clustered writes. Pool blobs the sub-run
	// shadows (the page was compressible last time around) are retired
	// first for the same stale-read reason as the cold path.
	bypassLo := -1
	flushBypass := func(hi int) error {
		if bypassLo < 0 {
			return nil
		}
		lo := bypassLo
		bypassLo = -1
		t.invalidateRange(obj, offset+uint64(lo), hi-lo)
		t.stats.ZtierBypasses.Add((uint64(hi-lo) + pgsz - 1) / pgsz)
		return t.backing.DataWrite(ctx, obj, offset+uint64(lo), data[lo:hi])
	}

	stored := 0
	for lo := 0; lo < len(data); lo += int(pgsz) {
		hi := lo + int(pgsz)
		if hi > len(data) {
			hi = len(data)
		}
		chunk := data[lo:hi]
		var comp []byte
		switch {
		case vmtypes.IsZero(chunk):
			comp = nil // sentinel
		default:
			comp = compress(chunk, len(chunk)-len(chunk)/8)
			if comp == nil {
				// Incompressible: extend (or start) the bypass run.
				if bypassLo < 0 {
					bypassLo = lo
				}
				continue
			}
		}
		if err := flushBypass(lo); err != nil {
			return err
		}
		t.insert(obj, offset+uint64(lo), comp, len(chunk), true)
		stored += len(chunk)
	}
	if err := flushBypass(len(data)); err != nil {
		return err
	}
	t.charge(stored)
	t.kickIfOver()
	return nil
}

// invalidateRange retires any live pool blobs covering [offset,
// offset+n) before a bypass write lands newer bytes in the backing tier
// — leaving them live would serve stale data on the next fault. A blob
// already selected for writeback is waited out first, so its in-flight
// backing DataWrite (carrying the old bytes) cannot land after the
// bypass write and resurrect them; the wait is bounded because
// worker-driven rounds run under WritebackDeadline.
func (t *Tier) invalidateRange(obj *core.Object, offset uint64, n int) {
	end := offset + uint64(n)
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		chunks := t.objs[obj]
		if chunks == nil {
			return
		}
		inflight := false
		for off := offset; off < end; off += t.cfg.PageSize {
			if b := chunks[off]; b != nil && !b.dead && b.wb {
				inflight = true
				break
			}
		}
		if inflight {
			t.cond.Wait()
			continue
		}
		for off := offset; off < end; off += t.cfg.PageSize {
			if b := chunks[off]; b != nil && !b.dead {
				b.dead = true
				t.dead++
				t.used -= int64(len(b.data))
				delete(chunks, off)
			}
		}
		if len(chunks) == 0 {
			delete(t.objs, obj)
		}
		t.compactClockLocked()
		return
	}
}

// admit stores pool blobs for data just read from the backing tier —
// zero and incompressible pages are simply skipped (their copy in the
// backing store remains authoritative for the skip case; zeroes get the
// sentinel). Cold objects are not admitted: they were demoted to keep
// them out of the pool. Admission never replaces a live blob: a blob
// that appeared while the backing read was in flight carries fresher
// bytes than the backing copy, and replacing it would lose data.
func (t *Tier) admit(obj *core.Object, offset uint64, data []byte) {
	if obj.EffectiveTier() == core.TierCold {
		return
	}
	pgsz := int(t.cfg.PageSize)
	stored := 0
	for lo := 0; lo < len(data); lo += pgsz {
		hi := lo + pgsz
		if hi > len(data) {
			hi = len(data)
		}
		chunk := data[lo:hi]
		var comp []byte
		if !vmtypes.IsZero(chunk) {
			if comp = compress(chunk, len(chunk)-len(chunk)/8); comp == nil {
				continue // incompressible: leave it to the backing tier
			}
		}
		if t.insert(obj, offset+uint64(lo), comp, len(chunk), false) {
			stored += len(chunk)
		}
	}
	t.charge(stored)
	t.kickIfOver()
}

// kickIfOver pokes the writeback worker when the pool exceeds budget.
func (t *Tier) kickIfOver() {
	t.mu.Lock()
	over := t.used > t.cfg.Budget
	t.mu.Unlock()
	if over {
		select {
		case t.kick <- struct{}{}:
		default:
		}
	}
}

// insert stores one blob at off and reports whether it was stored. When
// replace is set an existing live blob is superseded (pageout writes
// carry the newest bytes); when clear — read admission — an existing
// live blob wins and the insert is dropped, because the pool copy may be
// newer than whatever the backing tier just served.
func (t *Tier) insert(obj *core.Object, off uint64, comp []byte, size int, replace bool) bool {
	b := &blob{obj: obj, off: off, data: comp, size: size}
	t.mu.Lock()
	chunks := t.objs[obj]
	if chunks == nil {
		chunks = make(map[uint64]*blob)
		t.objs[obj] = chunks
	}
	if old := chunks[off]; old != nil && !old.dead {
		if !replace {
			t.mu.Unlock()
			return false
		}
		old.dead = true
		t.dead++
		t.used -= int64(len(old.data))
	}
	chunks[off] = b
	t.clock = append(t.clock, b)
	t.used += int64(len(comp))
	t.stats.ZtierStoredBytes.Add(uint64(size))
	t.stats.ZtierCompressedBytes.Add(uint64(len(comp)))
	t.compactClockLocked()
	t.mu.Unlock()
	return true
}

// compactClockLocked drops dead entries once they dominate the ring, so
// purged objects' blobs do not pin *Object pointers indefinitely.
func (t *Tier) compactClockLocked() {
	if t.dead <= len(t.clock)/2 || t.dead < 64 {
		return
	}
	live := t.clock[:0]
	for _, b := range t.clock {
		if !b.dead && !b.wb {
			live = append(live, b)
		}
	}
	// In-flight writebacks re-enter the clock only on failure; dropping
	// them here is fine because finishWriteback re-appends explicitly.
	t.clock = live
	t.dead = 0
}

// worker is the background writeback loop: each kick runs Drain rounds
// until the pool is back under budget or a round stops making progress.
// Its context dies with Close and every round runs under the configured
// WritebackDeadline, so a hung backing DataWrite can stall one round at
// most — never Terminate's drain of in-flight writebacks.
func (t *Tier) worker() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-t.stop
		cancel()
	}()
	for {
		select {
		case <-t.stop:
			return
		case <-t.kick:
			t.drain(ctx, t.cfg.WritebackDeadline)
		}
	}
}

// Drain runs writeback rounds on the caller's goroutine until the pool
// is within budget, a round makes no progress (e.g. the backing pager is
// failing every write), or ctx is done. Tests use it for deterministic
// eviction; Close callers use it to flush.
func (t *Tier) Drain(ctx context.Context) { t.drain(ctx, 0) }

// drain is Drain with an optional per-round deadline (0 means none);
// the writeback worker passes WritebackDeadline here.
func (t *Tier) drain(ctx context.Context, perRound time.Duration) {
	for ctx.Err() == nil {
		t.mu.Lock()
		over := t.used > t.cfg.Budget
		t.mu.Unlock()
		if !over {
			return
		}
		rctx, cancel := ctx, context.CancelFunc(nil)
		if perRound > 0 {
			rctx, cancel = context.WithTimeout(ctx, perRound)
		}
		n := t.writebackRound(rctx)
		if cancel != nil {
			cancel()
		}
		if n == 0 {
			return
		}
	}
}

// writebackRound selects up to EvictBatch victims by CLOCK over insertion
// order — referenced blobs get a second chance, hot objects' blobs get
// extra passes — writes them to the backing tier as clustered runs, and
// removes the survivors from the pool. It returns the number of blobs
// evicted. A blob under writeback stays readable in the index until the
// backing write succeeds: evicting first and writing second would let a
// concurrent DataRequest miss and zero-fill — data loss.
func (t *Tier) writebackRound(ctx context.Context) int {
	t.mu.Lock()
	need := t.used - t.cfg.Budget
	var victims []*blob
	// Bound the scan: two full CLOCK passes plus the batch, after which
	// even referenced/hot blobs are taken — the budget must win.
	maxScan := 2*len(t.clock) + t.cfg.EvictBatch
	var freed int64
	for scanned := 0; len(t.clock) > 0 && len(victims) < t.cfg.EvictBatch && freed < need; scanned++ {
		b := t.clock[0]
		t.clock = t.clock[1:]
		if b.dead {
			t.dead--
			continue
		}
		if scanned < maxScan {
			if b.ref {
				b.ref = false
				t.clock = append(t.clock, b)
				continue
			}
			if b.obj.EffectiveTier() == core.TierHot {
				// Hot objects evict last: leave the bit set so the next
				// pass still passes them over.
				t.clock = append(t.clock, b)
				continue
			}
		}
		b.wb = true
		t.inWB[b.obj]++
		victims = append(victims, b)
		freed += int64(len(b.data))
	}
	t.mu.Unlock()
	if len(victims) == 0 {
		return 0
	}

	// Cluster: group by object, sort by offset, coalesce adjacent pages
	// into single multi-page DataWrites (PR-6 run coalescing, tier-side).
	byObj := make(map[*core.Object][]*blob)
	for _, b := range victims {
		byObj[b.obj] = append(byObj[b.obj], b)
	}
	evicted := 0
	for obj, bs := range byObj {
		sort.Slice(bs, func(i, j int) bool { return bs[i].off < bs[j].off })
		runStart := 0
		for i := 1; i <= len(bs); i++ {
			if i < len(bs) && bs[i].off == bs[i-1].off+uint64(bs[i-1].size) {
				continue
			}
			evicted += t.writebackRun(ctx, obj, bs[runStart:i])
			runStart = i
		}
	}
	return evicted
}

// writebackRun writes one coalesced run to the backing tier and finishes
// each blob: on success the blob leaves the pool (unless a fresher write
// already replaced it); on failure it rejoins the clock with its
// referenced bit set, keeping the data safe for a later round.
func (t *Tier) writebackRun(ctx context.Context, obj *core.Object, run []*blob) int {
	total := 0
	for _, b := range run {
		total += b.size
	}
	buf := make([]byte, 0, total)
	ok := true
	for _, b := range run {
		if b.data == nil {
			buf = append(buf, make([]byte, b.size)...)
			continue
		}
		page, err := decompress(b.data, b.size)
		if err != nil {
			ok = false
			break
		}
		buf = append(buf, page...)
	}
	var err error
	if ok {
		t.charge(total)
		err = t.backing.DataWrite(ctx, obj, run[0].off, buf)
	}

	evicted := 0
	t.mu.Lock()
	for _, b := range run {
		b.wb = false
		t.inWB[obj]--
		if t.inWB[obj] == 0 {
			delete(t.inWB, obj)
		}
		if b.dead {
			continue // replaced or purged while in flight
		}
		if ok && err == nil {
			b.dead = true
			t.used -= int64(len(b.data))
			if chunks := t.objs[obj]; chunks != nil && chunks[b.off] == b {
				delete(chunks, b.off)
				if len(chunks) == 0 {
					delete(t.objs, obj)
				}
			}
			t.stats.ZtierEvictions.Add(1)
			evicted++
			continue
		}
		// Keep the data: back onto the clock with a second chance.
		b.ref = true
		t.clock = append(t.clock, b)
	}
	t.cond.Broadcast()
	t.mu.Unlock()
	return evicted
}

// Stored reports the live pool contents: blob count, uncompressed bytes
// represented, and compressed bytes resident (the budgeted figure).
func (t *Tier) Stored() (blobs int, raw, compressed int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, chunks := range t.objs {
		for _, b := range chunks {
			if !b.dead {
				blobs++
				raw += int64(b.size)
				compressed += int64(len(b.data))
			}
		}
	}
	return blobs, raw, compressed
}

// ObjectBlobs reports how many live blobs the pool holds for obj —
// the no-stranded-blobs assertion in retarget tests.
func (t *Tier) ObjectBlobs(obj *core.Object) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, b := range t.objs[obj] {
		if !b.dead {
			n++
		}
	}
	return n
}
