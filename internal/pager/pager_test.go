package pager_test

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"machvm/internal/ipc"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pager"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/unixfs"
	"machvm/internal/vmtypes"
)

func newWorld(t testing.TB) (*core.Kernel, *hw.Machine, *unixfs.FS) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 4096,
		CPUs:       2,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := core.MustNewKernel(core.Config{Machine: machine, Module: mod, PageSize: 4096})
	fs := unixfs.NewFS(unixfs.NewDisk(machine, 8192))
	k.SetSwapPager(pager.NewSwapPager(fs))
	return k, machine, fs
}

func TestMemoryMappedFile(t *testing.T) {
	k, machine, fs := newWorld(t)
	content := bytes.Repeat([]byte("file content block. "), 1000)
	if _, err := fs.Create("data", content); err != nil {
		t.Fatal(err)
	}
	ip := pager.NewInodePager(fs)
	obj, err := ip.NewFileObject(k, "data")
	if err != nil {
		t.Fatal(err)
	}

	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	obj.Reference()
	addr, err := m.AllocateWithObject(0, obj.Size(), true, obj, 0, vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(content))
	if err := k.AccessBytes(cpu, m, addr, got, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("mapped file content mismatch")
	}
	reads, _ := ip.Traffic()
	if reads == 0 {
		t.Fatal("expected pager reads")
	}
	// Pages past EOF zero-fill... there are none here; instead check
	// reading again costs no pager traffic (pages resident).
	if err := k.AccessBytes(cpu, m, addr, got[:4096], false); err != nil {
		t.Fatal(err)
	}
	reads2, _ := ip.Traffic()
	if reads2 != reads {
		t.Fatal("resident page re-read should not hit the pager")
	}
	k.ReleaseObjectRef(obj) // drop our extra reference
}

func TestObjectCacheMakesSecondMappingCheap(t *testing.T) {
	k, machine, fs := newWorld(t)
	content := bytes.Repeat([]byte{7}, 64*1024)
	if _, err := fs.Create("hot", content); err != nil {
		t.Fatal(err)
	}
	ip := pager.NewInodePager(fs)
	obj, err := ip.NewFileObject(k, "hot")
	if err != nil {
		t.Fatal(err)
	}
	cpu := machine.CPU(0)

	mapAndReadAll := func() {
		m := k.NewMap()
		defer m.Destroy()
		m.Pmap().Activate(cpu)
		obj.Reference()
		addr, err := m.AllocateWithObject(0, obj.Size(), true, obj, 0, vmtypes.ProtRead, vmtypes.ProtAll, vmtypes.InheritCopy, false)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(content))
		if err := k.AccessBytes(cpu, m, addr, buf, false); err != nil {
			t.Fatal(err)
		}
	}

	mapAndReadAll()
	reads1, _ := ip.Traffic()
	if reads1 == 0 {
		t.Fatal("first pass should read from pager")
	}
	// Drop the creation reference: the object goes to the cache, keeping
	// its pages.
	k.ReleaseObjectRef(obj)
	if !k.LookupCached(obj) {
		t.Fatal("object should be revivable from the cache")
	}

	mapAndReadAll()
	reads2, _ := ip.Traffic()
	if reads2 != reads1 {
		t.Fatalf("second pass hit the pager %d times; object cache should have served it", reads2-reads1)
	}
	k.ReleaseObjectRef(obj)
}

func TestExternalPagerFaultConversation(t *testing.T) {
	k, machine, _ := newWorld(t)

	var requests atomic.Uint64
	up := pager.NewUserPager("squares")
	up.OnRequest = func(req pager.DataRequest) {
		requests.Add(1)
		// Synthesize data: byte i of page = page index.
		data := make([]byte, req.Length)
		for i := range data {
			data[i] = byte(req.Offset / 4096)
		}
		req.Provide(data, 0)
	}
	defer up.Stop()

	eo, obj := pager.NewExternalObject(k, up.Port, 16*4096, "squares")
	_ = eo

	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, obj.Size(), true, obj, 0, vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		b := make([]byte, 1)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*4096), b, false); err != nil {
			t.Fatalf("fault page %d: %v", i, err)
		}
		if b[0] != byte(i) {
			t.Fatalf("page %d: got %d from external pager", i, b[0])
		}
	}
	if requests.Load() != 16 {
		t.Fatalf("external pager saw %d requests; want 16", requests.Load())
	}
}

func TestExternalPagerUnavailableZeroFills(t *testing.T) {
	k, machine, _ := newWorld(t)
	up := pager.NewUserPager("empty")
	up.OnRequest = func(req pager.DataRequest) { req.Unavailable() }
	defer up.Stop()

	_, obj := pager.NewExternalObject(k, up.Port, 8192, "empty")
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	addr, _ := m.AllocateWithObject(0, 8192, true, obj, 0, vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	b := []byte{9}
	if err := k.AccessBytes(cpu, m, addr, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Fatal("unavailable data must zero-fill")
	}
}

func TestExternalPagerSeesPageout(t *testing.T) {
	// A small machine: the external pager must receive pager_data_write
	// for its dirty pages when memory runs short, and serve them back.
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 512, // 256KB
		CPUs:       1,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootDeferred)
	k := core.MustNewKernel(core.Config{Machine: machine, Module: mod, PageSize: 4096})

	store := struct {
		m map[uint64][]byte
		n atomic.Uint64
	}{m: make(map[uint64][]byte)}
	var storeMu = make(chan struct{}, 1)
	storeMu <- struct{}{}

	up := pager.NewUserPager("store")
	up.OnRequest = func(req pager.DataRequest) {
		<-storeMu
		d, ok := store.m[req.Offset]
		storeMu <- struct{}{}
		if !ok {
			req.Unavailable()
			return
		}
		req.Provide(d, 0)
	}
	up.OnWrite = func(offset uint64, data []byte) {
		<-storeMu
		store.m[offset] = data
		storeMu <- struct{}{}
		store.n.Add(1)
	}
	defer up.Stop()

	const size = 512 * 1024 // 2x physical
	_, obj := pager.NewExternalObject(k, up.Port, size, "store")
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, size, true, obj, 0, vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < size; off += 4096 {
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(off), []byte{byte(off >> 12)}, true); err != nil {
			t.Fatal(err)
		}
	}
	if store.n.Load() == 0 {
		t.Fatal("external pager never saw pageout")
	}
	for off := uint64(0); off < size; off += 4096 {
		b := make([]byte, 1)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(off), b, false); err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(off>>12) {
			t.Fatalf("page %d corrupted through external pager roundtrip", off/4096)
		}
	}
}

func TestPagerCacheMessageControlsPersistence(t *testing.T) {
	k, _, _ := newWorld(t)
	up := pager.NewUserPager("cacheable")
	up.OnRequest = func(req pager.DataRequest) { req.Unavailable() }
	defer up.Stop()

	eo, obj := pager.NewExternalObject(k, up.Port, 4096, "cacheable")
	// pager_cache(request, TRUE): the kernel should retain the object
	// after all references are removed.
	if err := eo.Ports().RequestPort.Send(&ipc.Message{
		ID:    ipc.MsgPagerCache,
		Items: []ipc.Item{ipc.Int(1)},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !obj.CanPersist() {
		if time.Now().After(deadline) {
			t.Fatal("pager_cache never reached the object")
		}
		time.Sleep(time.Millisecond)
	}
	cached := k.CachedObjects()
	k.ReleaseObjectRef(obj)
	if k.CachedObjects() != cached+1 {
		t.Fatal("object should sit in the cache after last release")
	}
}
