package pager_test

import (
	"sync/atomic"
	"testing"
	"time"

	"machvm/internal/pager"
	"machvm/internal/vmtypes"
)

// TestPagerDataLockUnlockConversation exercises the full Tables 3-1/3-2
// locking flow: the pager provides a page write-locked; the first write
// fault triggers pager_data_unlock; the pager grants; the write proceeds.
func TestPagerDataLockUnlockConversation(t *testing.T) {
	k, machine, _ := newWorld(t)
	cpu := machine.CPU(0)

	var unlocks atomic.Uint64
	up := pager.NewUserPager("locking")
	up.OnRequest = func(req pager.DataRequest) {
		data := make([]byte, req.Length)
		for i := range data {
			data[i] = 0x77
		}
		// Provide the data locked against writes.
		req.Provide(data, uint64(vmtypes.ProtWrite))
	}
	up.OnUnlock = func(offset, length uint64, desired uint64, grant func(uint64)) {
		unlocks.Add(1)
		grant(0) // fully unlock
	}
	defer up.Stop()

	eo, obj := pager.NewExternalObject(k, up.Port, 4*4096, "locked")
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, obj.Size(), true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}

	// Reads are permitted by the lock.
	b := make([]byte, 1)
	if err := k.AccessBytes(cpu, m, addr, b, false); err != nil {
		t.Fatalf("locked read: %v", err)
	}
	if b[0] != 0x77 {
		t.Fatal("pager data missing")
	}
	if eo.LockValue(0) != uint64(vmtypes.ProtWrite) {
		t.Fatal("lock value not recorded")
	}
	if unlocks.Load() != 0 {
		t.Fatal("read should not trigger unlock")
	}

	// A write must go through the unlock conversation, then succeed.
	if err := k.AccessBytes(cpu, m, addr, []byte{1}, true); err != nil {
		t.Fatalf("write after unlock: %v", err)
	}
	if unlocks.Load() == 0 {
		t.Fatal("write never triggered pager_data_unlock")
	}
	if eo.LockValue(0) != 0 {
		t.Fatal("grant did not clear the lock")
	}
}

// TestPagerRefusesUnlock: a pager that re-asserts the lock keeps writes
// failing while reads continue.
func TestPagerRefusesUnlock(t *testing.T) {
	k, machine, _ := newWorld(t)
	cpu := machine.CPU(0)

	up := pager.NewUserPager("strict")
	up.OnRequest = func(req pager.DataRequest) {
		req.Provide(make([]byte, req.Length), uint64(vmtypes.ProtWrite))
	}
	refused := make(chan struct{}, 8)
	up.OnUnlock = func(offset, length uint64, desired uint64, grant func(uint64)) {
		// Refuse: re-grant the same restrictive lock.
		grant(uint64(vmtypes.ProtWrite))
		select {
		case refused <- struct{}{}:
		default:
		}
	}
	defer up.Stop()

	eo, obj := pager.NewExternalObject(k, up.Port, 4096, "strict")
	eo.SetTimeout(200 * time.Millisecond)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, _ := m.AllocateWithObject(0, 4096, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)

	if err := k.AccessBytes(cpu, m, addr, []byte{1}, false); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := k.AccessBytes(cpu, m, addr, []byte{1}, true); err == nil {
		t.Fatal("write should fail while the pager holds the lock")
	}
	select {
	case <-refused:
	default:
		t.Fatal("pager never saw the unlock request")
	}
}
