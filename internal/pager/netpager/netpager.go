// Package netpager is a concurrent network memory manager: the §6
// "pagers anywhere on the network" possibility, hardened from the
// examples/netmemory sketch into a reusable client/server pair.
//
// The client side implements core.Pager over a single pipelined
// connection: many requests may be in flight at once, each carrying a
// tag; replies arrive in any order and are matched back to their waiting
// callers by tag. The server side (see server.go) answers requests
// concurrently against a Backend, so a slow page does not convoy the
// fast ones — exactly the behaviour a remote memory server exhibits.
//
// Partial failure composes from the outside: wrap the Client in the
// existing pager.FlakyPager for injected errors, or wrap the Backend's
// conn in something lossy. The kernel's PagerPolicy (deadline, retries)
// and per-object fallback already govern what happens then.
package netpager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"context"

	"machvm/internal/core"
)

// Frame kinds.
const (
	kReq     byte = 1 // client→server: DataRequest(obj, off, aux=length)
	kData    byte = 2 // server→client: data payload
	kUnavail byte = 3 // server→client: pager_data_unavailable
	kErr     byte = 4 // server→client: error string payload
	kWrite   byte = 5 // client→server: DataWrite(obj, off, payload=data)
	kWriteOK byte = 6 // server→client: write acknowledged
	kInit    byte = 7 // client→server: object introduced (no reply)
	kTerm    byte = 8 // client→server: object terminated (no reply)
)

// headerLen is kind(1) + tag(8) + obj(8) + off(8) + aux(4) + plen(4).
const headerLen = 33

// maxPayload bounds a frame; anything larger is a corrupt stream.
const maxPayload = 16 << 20

// ErrNoData is the Backend's definitive "no data at this range" answer;
// the client surfaces it as core.ErrDataUnavailable.
var ErrNoData = errors.New("netpager: no data")

// ErrClosed is returned by client calls after the connection died.
var ErrClosed = errors.New("netpager: connection closed")

// frame is one protocol message.
type frame struct {
	kind    byte
	tag     uint64
	obj     uint64
	off     uint64
	aux     uint32
	payload []byte
}

func writeFrame(w io.Writer, f frame) error {
	var hdr [headerLen]byte
	hdr[0] = f.kind
	binary.LittleEndian.PutUint64(hdr[1:], f.tag)
	binary.LittleEndian.PutUint64(hdr[9:], f.obj)
	binary.LittleEndian.PutUint64(hdr[17:], f.off)
	binary.LittleEndian.PutUint32(hdr[25:], f.aux)
	binary.LittleEndian.PutUint32(hdr[29:], uint32(len(f.payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.payload) > 0 {
		if _, err := w.Write(f.payload); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r io.Reader) (frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	f := frame{
		kind: hdr[0],
		tag:  binary.LittleEndian.Uint64(hdr[1:]),
		obj:  binary.LittleEndian.Uint64(hdr[9:]),
		off:  binary.LittleEndian.Uint64(hdr[17:]),
		aux:  binary.LittleEndian.Uint32(hdr[25:]),
	}
	plen := binary.LittleEndian.Uint32(hdr[29:])
	if plen > maxPayload {
		return frame{}, fmt.Errorf("netpager: oversized frame (%d bytes)", plen)
	}
	if plen > 0 {
		f.payload = make([]byte, plen)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return frame{}, err
		}
	}
	return f, nil
}

// Client is the kernel-side proxy: a core.Pager whose storage lives
// across the connection. Safe for concurrent use; every in-flight call
// owns a tag and blocks only on its own reply (or its context).
type Client struct {
	conn io.ReadWriteCloser
	name string

	wmu sync.Mutex // serializes frame writes (frames interleave whole)

	tags atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan frame
	ids     map[*core.Object]uint64
	nextID  uint64
	sticky  error

	done      chan struct{}
	closeOnce sync.Once
}

// NewClient wraps conn and starts the reply-dispatch reader. The
// connection carries the pipelined request stream; replies may come back
// in any order.
func NewClient(conn io.ReadWriteCloser, name string) *Client {
	if name == "" {
		name = "netpager"
	}
	c := &Client{
		conn:    conn,
		name:    name,
		pending: make(map[uint64]chan frame),
		ids:     make(map[*core.Object]uint64),
		done:    make(chan struct{}),
	}
	go c.reader()
	return c
}

// Close tears down the connection; in-flight and future calls fail with
// ErrClosed (or the underlying read error).
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

// fail marks the client dead and releases every waiter: the sticky error
// is set once, the done channel wakes every blocked call, and the pending
// table is drained so no tag can ever match a reply again (the reader has
// exited or is about to) and no waiter channel outlives its caller.
func (c *Client) fail(err error) {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		if c.sticky == nil {
			c.sticky = err
		}
		for tag := range c.pending {
			delete(c.pending, tag)
		}
		c.mu.Unlock()
		close(c.done)
	})
}

// reader dispatches replies to their tagged waiters until the stream
// dies. A reply whose tag has no waiter (the caller's context fired
// first) is dropped — the caller already unregistered.
func (c *Client) reader() {
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		c.mu.Lock()
		ch := c.pending[f.tag]
		delete(c.pending, f.tag)
		c.mu.Unlock()
		if ch != nil {
			ch <- f // buffered: never blocks the reader
		}
	}
}

// objID returns (assigning if needed) the wire ID for obj.
func (c *Client) objID(obj *core.Object) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.ids[obj]; ok {
		return id
	}
	c.nextID++
	c.ids[obj] = c.nextID
	return c.nextID
}

// send writes one frame, respecting the sticky error.
func (c *Client) send(f frame) error {
	c.mu.Lock()
	err := c.sticky
	c.mu.Unlock()
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if werr := writeFrame(c.conn, f); werr != nil {
		return fmt.Errorf("%w: %v", ErrClosed, werr)
	}
	return nil
}

// call performs one tagged round trip: register, send, await the reply
// or the caller's context. Abandoning a call unregisters its tag, so a
// late reply is dropped instead of leaking a channel.
func (c *Client) call(ctx context.Context, f frame) (frame, error) {
	tag := c.tags.Add(1)
	f.tag = tag
	ch := make(chan frame, 1)
	c.mu.Lock()
	if c.sticky != nil {
		err := c.sticky
		c.mu.Unlock()
		return frame{}, err
	}
	c.pending[tag] = ch
	c.mu.Unlock()

	if err := c.send(f); err != nil {
		c.mu.Lock()
		delete(c.pending, tag)
		c.mu.Unlock()
		return frame{}, err
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, tag)
		c.mu.Unlock()
		return frame{}, ctx.Err()
	case <-c.done:
		c.mu.Lock()
		err := c.sticky
		delete(c.pending, tag)
		c.mu.Unlock()
		return frame{}, err
	}
}

// Name implements core.Pager.
func (c *Client) Name() string { return c.name }

// Init implements core.Pager (fire-and-forget pager_init).
func (c *Client) Init(obj *core.Object) {
	_ = c.send(frame{kind: kInit, obj: c.objID(obj)})
}

// Terminate implements core.Pager: the remote store drops the object and
// the local ID mapping is released (no dead *Object keys).
func (c *Client) Terminate(obj *core.Object) {
	c.mu.Lock()
	id, ok := c.ids[obj]
	delete(c.ids, obj)
	c.mu.Unlock()
	if ok {
		_ = c.send(frame{kind: kTerm, obj: id})
	}
}

// DataRequest implements core.Pager over one tagged conversation.
func (c *Client) DataRequest(ctx context.Context, obj *core.Object, offset uint64, length int) ([]byte, error) {
	reply, err := c.call(ctx, frame{kind: kReq, obj: c.objID(obj), off: offset, aux: uint32(length)})
	if err != nil {
		return nil, err
	}
	switch reply.kind {
	case kData:
		return reply.payload, nil
	case kUnavail:
		return nil, core.ErrDataUnavailable
	case kErr:
		return nil, fmt.Errorf("netpager: remote: %s", reply.payload)
	default:
		return nil, fmt.Errorf("netpager: unexpected reply kind %d", reply.kind)
	}
}

// DataWrite implements core.Pager. The data is copied onto the wire
// before the call returns, honoring the only-valid-during-the-call
// contract.
func (c *Client) DataWrite(ctx context.Context, obj *core.Object, offset uint64, data []byte) error {
	reply, err := c.call(ctx, frame{kind: kWrite, obj: c.objID(obj), off: offset, payload: data})
	if err != nil {
		return err
	}
	switch reply.kind {
	case kWriteOK:
		return nil
	case kErr:
		return fmt.Errorf("netpager: remote: %s", reply.payload)
	default:
		return fmt.Errorf("netpager: unexpected reply kind %d", reply.kind)
	}
}
