package netpager

// White-box shutdown tests: a Close or connection death must wake every
// pending waiter with the sticky error and leave no tag registered, and a
// reply arriving after its caller timed out must never be delivered to
// anyone — tags are monotonic, so a late reply can only miss.

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"machvm/internal/core"
)

func (c *Client) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

func (c *Client) stickyErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sticky
}

// TestCloseWithInflightRequests parks many callers on a remote that never
// answers, then closes the client: every caller must return the sticky
// error promptly and the pending table must end empty.
func TestCloseWithInflightRequests(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	// Swallow the request stream so callers stay in flight.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := srvConn.Read(buf); err != nil {
				return
			}
		}
	}()
	defer srvConn.Close()
	c := NewClient(cliConn, "")

	const inflight = 16
	obj := &core.Object{}
	errs := make(chan error, inflight)
	var started sync.WaitGroup
	started.Add(inflight)
	for i := 0; i < inflight; i++ {
		go func(off uint64) {
			started.Done()
			_, err := c.DataRequest(context.Background(), obj, off*4096, 4096)
			errs <- err
		}(uint64(i))
	}
	started.Wait()
	for deadline := time.Now().Add(2 * time.Second); c.pendingCount() < inflight; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d calls registered", c.pendingCount(), inflight)
		}
		time.Sleep(time.Millisecond)
	}

	c.Close()
	for i := 0; i < inflight; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("waiter %d returned %v, want ErrClosed", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d still blocked after Close", i)
		}
	}
	if n := c.pendingCount(); n != 0 {
		t.Fatalf("%d tags still registered after Close", n)
	}
	if _, err := c.DataRequest(context.Background(), obj, 0, 4096); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after Close returned %v, want the sticky ErrClosed", err)
	}
}

// TestConnDeathWakesAllWaiters severs the wire from the remote side; the
// reader's failure must wake every waiter with one sticky error that
// subsequent calls keep returning.
func TestConnDeathWakesAllWaiters(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := srvConn.Read(buf); err != nil {
				return
			}
		}
	}()
	c := NewClient(cliConn, "")
	defer c.Close()

	const inflight = 8
	obj := &core.Object{}
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func(off uint64) {
			_, err := c.DataRequest(context.Background(), obj, off*4096, 4096)
			errs <- err
		}(uint64(i))
	}
	for deadline := time.Now().Add(2 * time.Second); c.pendingCount() < inflight; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d calls registered", c.pendingCount(), inflight)
		}
		time.Sleep(time.Millisecond)
	}

	srvConn.Close() // remote dies
	var first error
	for i := 0; i < inflight; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("waiter survived connection death")
			}
			if first == nil {
				first = err
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d still blocked after connection death", i)
		}
	}
	if sticky := c.stickyErr(); sticky == nil || !errors.Is(sticky, ErrClosed) {
		t.Fatalf("sticky error %v, want wrapped ErrClosed", sticky)
	}
	if _, err := c.DataRequest(context.Background(), obj, 0, 4096); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after death returned %v, want sticky error", err)
	}
}

// TestLateReplyAfterTimeoutNotMisdelivered abandons a call by timeout,
// then has the remote answer that stale tag with poison bytes before
// serving the next call. The poison must vanish (no waiter holds that
// tag, and tags are never reused) and the next call must get its own
// reply.
func TestLateReplyAfterTimeoutNotMisdelivered(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	defer srvConn.Close()
	c := NewClient(cliConn, "")
	defer c.Close()
	obj := &core.Object{}

	frames := make(chan frame, 4)
	go func() {
		for {
			f, err := readFrame(srvConn)
			if err != nil {
				return
			}
			if f.kind == kReq || f.kind == kWrite {
				frames <- f
			}
		}
	}()

	// Call 1: the remote reads the request but never answers in time.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.DataRequest(ctx, obj, 0, 4096); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned call returned %v, want deadline exceeded", err)
	}
	var stale frame
	select {
	case stale = <-frames:
	case <-time.After(2 * time.Second):
		t.Fatal("request never reached the remote")
	}
	if n := c.pendingCount(); n != 0 {
		t.Fatalf("%d tags registered after timeout, want 0", n)
	}

	// The stale tag's reply arrives late, carrying poison.
	poison := frame{kind: kData, tag: stale.tag, payload: []byte("stale stale stale")}
	if err := writeFrame(srvConn, poison); err != nil {
		t.Fatalf("injecting stale reply: %v", err)
	}

	// Call 2 must receive its own payload, not the poison.
	want := []byte("fresh data")
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := <-frames
		if req.tag == stale.tag {
			t.Errorf("tag %d reused for a new call", stale.tag)
		}
		_ = writeFrame(srvConn, frame{kind: kData, tag: req.tag, payload: want})
	}()
	got, err := c.DataRequest(context.Background(), obj, 4096, 4096)
	<-done
	if err != nil {
		t.Fatalf("fresh call failed: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("fresh call read %q — the stale reply was misdelivered", got)
	}
}
