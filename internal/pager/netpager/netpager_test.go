package netpager_test

// Tests for the network pager: out-of-order tag matching, many
// concurrent in-flight conversations, kernel integration with injected
// partial failure (FlakyPager around the client), context cancellation
// against a hung remote, and connection-death degradation.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pager"
	"machvm/internal/pager/netpager"
	"machvm/internal/pager/ztier"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

const pgsz = 4096

// newPair wires a client and a served MemBackend over an in-process
// pipe, returning both plus a cleanup.
func newPair(t testing.TB) (*netpager.Client, *netpager.MemBackend) {
	t.Helper()
	backend := netpager.NewMemBackend(pgsz)
	cliConn, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = netpager.Serve(srvConn, backend)
	}()
	client := netpager.NewClient(cliConn, "")
	t.Cleanup(func() {
		client.Close()
		srvConn.Close()
		<-done
	})
	return client, backend
}

func pageFill(buf []byte, seed int) {
	for i := range buf {
		buf[i] = byte(seed*31 + i%97)
	}
}

func newNetKernel(t testing.TB, cpus, frames int) (*core.Kernel, *hw.Machine) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: frames,
		CPUs:       cpus,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := core.MustNewKernel(core.Config{
		Machine:    machine,
		Module:     mod,
		PageSize:   pgsz,
		FreeTarget: frames + 1, // scans always reclaim everything
		FreeMin:    2,
	})
	return k, machine
}

func mapObject(t testing.TB, k *core.Kernel, machine *hw.Machine, obj *core.Object, size uint64) (*core.Map, vmtypes.VA) {
	t.Helper()
	m := k.NewMap()
	m.Pmap().Activate(machine.CPU(0))
	addr, err := m.AllocateWithObject(0, size, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatalf("AllocateWithObject: %v", err)
	}
	return m, addr
}

// TestOutOfOrderReplies pins the pipelining claim: a slow page must not
// convoy a fast one. The first request is delayed server-side; a second
// request issued after it must complete first, and both must carry the
// right data back to the right caller.
func TestOutOfOrderReplies(t *testing.T) {
	client, backend := newPair(t)
	slow := make([]byte, pgsz)
	fast := make([]byte, pgsz)
	pageFill(slow, 1)
	pageFill(fast, 2)
	backend.Put(1, 0, slow)
	backend.Put(1, pgsz, fast)
	backend.Delay = func(obj, off uint64) time.Duration {
		if off == 0 {
			return 100 * time.Millisecond
		}
		return 0
	}

	obj := &core.Object{}
	var order [2]int32
	var seq atomic.Int32
	var wg sync.WaitGroup
	started := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		close(started)
		data, err := client.DataRequest(context.Background(), obj, 0, pgsz)
		if err != nil || !bytes.Equal(data, slow) {
			t.Errorf("slow request: err=%v match=%v", err, bytes.Equal(data, slow))
		}
		order[0] = seq.Add(1)
	}()
	go func() {
		defer wg.Done()
		<-started
		time.Sleep(10 * time.Millisecond) // ensure the slow request hit the wire first
		data, err := client.DataRequest(context.Background(), obj, pgsz, pgsz)
		if err != nil || !bytes.Equal(data, fast) {
			t.Errorf("fast request: err=%v match=%v", err, bytes.Equal(data, fast))
		}
		order[1] = seq.Add(1)
	}()
	wg.Wait()
	if order[1] != 1 || order[0] != 2 {
		t.Fatalf("replies arrived in issue order (slow=%d fast=%d); pipelining failed", order[0], order[1])
	}
}

// TestManyInFlight hammers one connection from many goroutines mixing
// reads and writes; every reply must match its own request's object and
// offset (a tag-mismatch bug shows up as cross-talk here).
func TestManyInFlight(t *testing.T) {
	client, backend := newPair(t)
	const pages = 64
	for p := 0; p < pages; p++ {
		buf := make([]byte, pgsz)
		pageFill(buf, p)
		backend.Put(1, uint64(p)*pgsz, buf)
	}
	// Jitter some offsets so replies interleave.
	backend.Delay = func(obj, off uint64) time.Duration {
		return time.Duration((off/pgsz)%5) * time.Millisecond
	}

	obj := &core.Object{}
	client.Init(obj)
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			want := make([]byte, pgsz)
			for i := 0; i < 40; i++ {
				p := (g*7 + i*13) % pages
				pageFill(want, p)
				data, err := client.DataRequest(context.Background(), obj, uint64(p)*pgsz, pgsz)
				if err != nil {
					errs <- fmt.Errorf("g%d read p%d: %v", g, p, err)
					return
				}
				if !bytes.Equal(data, want) {
					errs <- fmt.Errorf("g%d read p%d: cross-talk (got page for wrong tag)", g, p)
					return
				}
				if i%8 == 0 { // interleave writes on a disjoint object
					if err := client.DataWrite(context.Background(), obj, uint64(pages+g)*pgsz, want); err != nil {
						errs <- fmt.Errorf("g%d write: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestKernelIntegrationWithFlaky runs the kernel against the network
// pager with pager.FlakyPager composed kernel-side: pageouts land in the
// remote store, refaults come back intact, and injected request failures
// degrade through the object's fallback instead of wedging the fault.
func TestKernelIntegrationWithFlaky(t *testing.T) {
	client, backend := newPair(t)
	k, machine := newNetKernel(t, 1, 64)
	k.SetPagerPolicy(core.PagerPolicy{Deadline: time.Second, Retries: 1, BackoffBase: time.Millisecond})

	fp := pager.NewFlakyPager(client)
	const pages = 16
	size := uint64(pages) * pgsz
	obj := k.NewObject(size, fp, "remote")
	obj.SetPagerFallback(core.FallbackZeroFill)
	m, addr := mapObject(t, k, machine, obj, size)
	defer m.Destroy()
	cpu := machine.CPU(0)

	buf := make([]byte, pgsz)
	for p := 0; p < pages; p++ {
		pageFill(buf, p)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(p*pgsz), buf, true); err != nil {
			t.Fatalf("populate p%d: %v", p, err)
		}
	}
	k.PageoutScan()
	if got := backend.Pages(1); got == 0 {
		t.Fatalf("pageout wrote nothing to the remote store")
	}

	// Clean refaults pull the data back over the wire.
	got := make([]byte, pgsz)
	want := make([]byte, pgsz)
	for p := 0; p < pages; p++ {
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(p*pgsz), got, false); err != nil {
			t.Fatalf("refault p%d: %v", p, err)
		}
		pageFill(want, p)
		if !bytes.Equal(got, want) {
			t.Fatalf("p%d corrupted across the network round trip", p)
		}
	}

	// Partial failure: every remaining request fails; faults must resolve
	// via zero-fill fallback, not hang.
	k.PageoutScan()
	fp.FailNextRequests(-1)
	before := k.VMStatistics().PagerFallbacks
	if err := k.AccessBytes(cpu, m, addr, got, false); err != nil {
		t.Fatalf("fault under injected failure: %v", err)
	}
	if k.VMStatistics().PagerFallbacks == before {
		t.Fatalf("injected failures did not route through fallback")
	}
	fp.FailNextRequests(0)
}

// TestContextCancellation points the client at a hung remote: the
// caller's context must release the fault promptly, and the connection
// must stay usable — the eventual stale reply is dropped by tag.
func TestContextCancellation(t *testing.T) {
	client, backend := newPair(t)
	buf := make([]byte, pgsz)
	pageFill(buf, 9)
	backend.Put(1, 0, buf)
	var hang atomic.Bool
	hang.Store(true)
	backend.Delay = func(obj, off uint64) time.Duration {
		if hang.Load() {
			return 300 * time.Millisecond
		}
		return 0
	}

	obj := &core.Object{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.DataRequest(ctx, obj, 0, pgsz)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung remote returned %v, want deadline exceeded", err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatalf("cancellation took %v; caller stayed blocked on the remote", time.Since(start))
	}

	// The abandoned tag's late reply must not poison the next call.
	hang.Store(false)
	time.Sleep(350 * time.Millisecond) // let the stale reply drain
	data, err := client.DataRequest(context.Background(), obj, 0, pgsz)
	if err != nil || !bytes.Equal(data, buf) {
		t.Fatalf("connection unusable after cancellation: err=%v", err)
	}
}

// TestConnectionDeath severs the wire mid-flight: blocked callers get an
// error (not a hang), later calls fail fast, and the kernel-side story
// stays "pager error" — which fallback policy already handles.
func TestConnectionDeath(t *testing.T) {
	client, backend := newPair(t)
	buf := make([]byte, pgsz)
	pageFill(buf, 4)
	backend.Put(1, 0, buf)
	backend.Delay = func(obj, off uint64) time.Duration { return time.Second }

	obj := &core.Object{}
	errc := make(chan error, 1)
	go func() {
		_, err := client.DataRequest(context.Background(), obj, 0, pgsz)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	client.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("in-flight call survived a dead connection")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call hung after connection death")
	}
	if _, err := client.DataRequest(context.Background(), obj, 0, pgsz); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

// TestZtierOverNetpager stacks the full hierarchy: resident memory over
// the compressed tier over the network pager. Evictions stream to the
// remote store, tier hits come back with zero wire round trips, and data
// survives the whole journey.
func TestZtierOverNetpager(t *testing.T) {
	client, backend := newPair(t)
	k, machine := newNetKernel(t, 1, 64)
	tier := ztier.New(client, ztier.Config{
		Budget: 1 << 20, PageSize: pgsz, Stats: k.Stats(), Machine: machine,
	})
	defer tier.Close()

	const pages = 24
	size := uint64(pages) * pgsz
	obj := k.NewObject(size, tier, "remote-tiered")
	m, addr := mapObject(t, k, machine, obj, size)
	defer m.Destroy()
	cpu := machine.CPU(0)

	buf := make([]byte, pgsz)
	for p := 0; p < pages; p++ {
		pageFill(buf, p)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(p*pgsz), buf, true); err != nil {
			t.Fatalf("populate p%d: %v", p, err)
		}
	}
	k.PageoutScan()

	want := make([]byte, pgsz)
	for p := 0; p < pages; p++ {
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(p*pgsz), buf, false); err != nil {
			t.Fatalf("refault p%d: %v", p, err)
		}
		pageFill(want, p)
		if !bytes.Equal(buf, want) {
			t.Fatalf("p%d corrupted through tier+network", p)
		}
	}
	if k.VMStatistics().ZtierHits == 0 {
		t.Fatalf("no tier hits; every refault went over the wire")
	}
	// The pool absorbed the whole working set, so nothing should have
	// crossed the wire to the remote store at all.
	if got := backend.Pages(1); got != 0 {
		t.Fatalf("tier leaked %d chunks to the remote store while under budget", got)
	}
}
