package netpager

// Server side of the network pager: a frame loop that answers each
// request in its own goroutine against a Backend, so replies go back in
// completion order, not arrival order. The tag travels with the request
// and comes back on the reply; the client matches them up.

import (
	"io"
	"sync"
	"time"
)

// Backend is the remote store the server answers from. Objects are
// identified by the wire ID the client assigned; methods may be called
// concurrently from many request handlers.
type Backend interface {
	// DataRequest returns up to length bytes at off, or ErrNoData when
	// the range has never been written (the definitive-absence answer
	// that becomes pager_data_unavailable kernel-side).
	DataRequest(obj, off uint64, length int) ([]byte, error)
	// DataWrite persists data at off.
	DataWrite(obj, off uint64, data []byte) error
	// Init and Terminate bracket an object's lifetime.
	Init(obj uint64)
	Terminate(obj uint64)
}

// Serve answers frames on conn against b until the connection fails,
// then waits for in-flight handlers and returns the read error. Run it
// in its own goroutine; io.EOF / io.ErrClosedPipe are the normal
// shutdown outcomes.
func Serve(conn io.ReadWriteCloser, b Backend) error {
	var wmu sync.Mutex // one reply frame at a time on the wire
	var wg sync.WaitGroup
	reply := func(f frame) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = writeFrame(conn, f) // a dead conn also kills the read loop
	}
	for {
		f, err := readFrame(conn)
		if err != nil {
			wg.Wait()
			return err
		}
		switch f.kind {
		case kInit:
			b.Init(f.obj)
		case kTerm:
			b.Terminate(f.obj)
		case kReq, kWrite:
			wg.Add(1)
			go func(f frame) {
				defer wg.Done()
				reply(handle(f, b))
			}(f)
		default:
			reply(frame{kind: kErr, tag: f.tag, payload: []byte("bad request kind")})
		}
	}
}

// handle runs one request against the backend and builds its reply.
func handle(f frame, b Backend) frame {
	switch f.kind {
	case kReq:
		data, err := b.DataRequest(f.obj, f.off, int(f.aux))
		switch {
		case err == ErrNoData:
			return frame{kind: kUnavail, tag: f.tag}
		case err != nil:
			return frame{kind: kErr, tag: f.tag, payload: []byte(err.Error())}
		default:
			return frame{kind: kData, tag: f.tag, payload: data}
		}
	default: // kWrite
		if err := b.DataWrite(f.obj, f.off, f.payload); err != nil {
			return frame{kind: kErr, tag: f.tag, payload: []byte(err.Error())}
		}
		return frame{kind: kWriteOK, tag: f.tag}
	}
}

// MemBackend is an in-memory Backend: the remote memory server from the
// netmemory example, now reusable. Reads follow the kernel's covered-
// prefix contract: a request starting on a stored page returns the
// longest contiguous stored run (short reads are legal); a request whose
// first page was never written returns ErrNoData.
type MemBackend struct {
	pageSize uint64

	mu    sync.Mutex
	store map[uint64]map[uint64][]byte

	// Delay, if set, is consulted per read request; the handler sleeps
	// that long before touching the store. Tests use it to force replies
	// out of arrival order.
	Delay func(obj, off uint64) time.Duration
}

// NewMemBackend returns an empty store serving pageSize-aligned chunks.
func NewMemBackend(pageSize uint64) *MemBackend {
	return &MemBackend{pageSize: pageSize, store: make(map[uint64]map[uint64][]byte)}
}

// Put seeds a page (or partial tail page) at off, for preloading a
// region before any client attaches.
func (m *MemBackend) Put(obj, off uint64, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pages := m.store[obj]
	if pages == nil {
		pages = make(map[uint64][]byte)
		m.store[obj] = pages
	}
	pages[off] = append([]byte(nil), data...)
}

// Pages reports how many chunks are stored for obj.
func (m *MemBackend) Pages(obj uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.store[obj])
}

func (m *MemBackend) Init(obj uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.store[obj] == nil {
		m.store[obj] = make(map[uint64][]byte)
	}
}

func (m *MemBackend) Terminate(obj uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.store, obj)
}

func (m *MemBackend) DataRequest(obj, off uint64, length int) ([]byte, error) {
	if m.Delay != nil {
		if d := m.Delay(obj, off); d > 0 {
			time.Sleep(d)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	pages := m.store[obj]
	var out []byte
	for uint64(len(out)) < uint64(length) {
		chunk, ok := pages[off+uint64(len(out))]
		if !ok {
			break
		}
		out = append(out, chunk...)
		if uint64(len(chunk)) < m.pageSize {
			break // tail chunk ends the run
		}
	}
	if out == nil {
		return nil, ErrNoData
	}
	if uint64(length) < uint64(len(out)) {
		out = out[:length]
	}
	return out, nil
}

func (m *MemBackend) DataWrite(obj, off uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	pages := m.store[obj]
	if pages == nil {
		pages = make(map[uint64][]byte)
		m.store[obj] = pages
	}
	for lo := uint64(0); lo < uint64(len(data)); lo += m.pageSize {
		hi := lo + m.pageSize
		if hi > uint64(len(data)) {
			hi = uint64(len(data))
		}
		pages[off+lo] = append([]byte(nil), data[lo:hi]...)
	}
	return nil
}
