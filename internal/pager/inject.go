package pager

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"machvm/internal/core"
)

// ErrInjected is the error a FlakyPager returns for injected failures.
var ErrInjected = errors.New("pager: injected failure")

// FlakyPager wraps another core.Pager with injectable misbehaviour —
// delays, dropped requests (never answered), errors, and short reads — so
// the kernel's deadline, retry, degradation and busy-page-abandonment
// machinery can be exercised deterministically from tests and benchmarks.
// All knobs are safe to flip concurrently while faults are in flight.
//
// The zero knobs pass everything straight through to the wrapped pager.
type FlakyPager struct {
	inner core.Pager

	delay        atomic.Int64 // nanoseconds added before every call
	dropRequests atomic.Bool  // DataRequest blocks until ctx fires
	failRequests atomic.Int64 // fail this many DataRequests (-1: all)
	failWrites   atomic.Int64 // fail this many DataWrites (-1: all)
	shortRead    atomic.Int64 // truncate DataRequest results to this many bytes

	requests atomic.Uint64
	writes   atomic.Uint64
}

// NewFlakyPager wraps inner with injectable failures.
func NewFlakyPager(inner core.Pager) *FlakyPager {
	return &FlakyPager{inner: inner}
}

// SetDelay makes every call sleep d first (cancellable by context).
func (fp *FlakyPager) SetDelay(d time.Duration) { fp.delay.Store(int64(d)) }

// SetDrop makes DataRequest swallow requests: the call blocks until the
// caller's context fires — the "hung pager" that never answers.
func (fp *FlakyPager) SetDrop(drop bool) { fp.dropRequests.Store(drop) }

// FailNextRequests makes the next n DataRequests return ErrInjected
// (n < 0: every request fails until reset with 0).
func (fp *FlakyPager) FailNextRequests(n int) { fp.failRequests.Store(int64(n)) }

// FailNextWrites makes the next n DataWrites return ErrInjected
// (n < 0: every write fails until reset with 0).
func (fp *FlakyPager) FailNextWrites(n int) { fp.failWrites.Store(int64(n)) }

// SetShortRead truncates DataRequest results to at most n bytes (0
// disables truncation). The kernel zero-fills the tail.
func (fp *FlakyPager) SetShortRead(n int) { fp.shortRead.Store(int64(n)) }

// Calls reports how many DataRequests and DataWrites reached this
// wrapper (including injected failures).
func (fp *FlakyPager) Calls() (requests, writes uint64) {
	return fp.requests.Load(), fp.writes.Load()
}

// takeFailure consumes one injected failure from the counter.
func takeFailure(c *atomic.Int64) bool {
	for {
		n := c.Load()
		if n == 0 {
			return false
		}
		if n < 0 {
			return true
		}
		if c.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// sleep waits the injected delay, cancellable by ctx.
func (fp *FlakyPager) sleep(ctx context.Context) error {
	d := time.Duration(fp.delay.Load())
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Name implements core.Pager.
func (fp *FlakyPager) Name() string { return "flaky:" + fp.inner.Name() }

// Init implements core.Pager.
func (fp *FlakyPager) Init(obj *core.Object) { fp.inner.Init(obj) }

// DataRequest implements core.Pager with the injected misbehaviour.
func (fp *FlakyPager) DataRequest(ctx context.Context, obj *core.Object, offset uint64, length int) ([]byte, error) {
	fp.requests.Add(1)
	if fp.dropRequests.Load() {
		// Never answer: the hung pager. Only the caller's deadline ends
		// this.
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if err := fp.sleep(ctx); err != nil {
		return nil, err
	}
	if takeFailure(&fp.failRequests) {
		return nil, ErrInjected
	}
	data, err := fp.inner.DataRequest(ctx, obj, offset, length)
	if err != nil {
		return nil, err
	}
	if n := int(fp.shortRead.Load()); n > 0 && len(data) > n {
		data = data[:n]
	}
	return data, nil
}

// DataWrite implements core.Pager with the injected misbehaviour.
func (fp *FlakyPager) DataWrite(ctx context.Context, obj *core.Object, offset uint64, data []byte) error {
	fp.writes.Add(1)
	if err := fp.sleep(ctx); err != nil {
		return err
	}
	if takeFailure(&fp.failWrites) {
		return ErrInjected
	}
	return fp.inner.DataWrite(ctx, obj, offset, data)
}

// Terminate implements core.Pager.
func (fp *FlakyPager) Terminate(obj *core.Object) { fp.inner.Terminate(obj) }
