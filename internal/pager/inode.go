// Package pager implements Mach's memory managers: the inode pager that
// backs memory-mapped files and default pageout on a 4.3bsd filesystem
// ("the current inode pager utilizes 4.3bsd UNIX file systems and
// eliminates the traditional Berkeley UNIX need for separate paging
// partitions", §3.3), and the external-pager message protocol of Tables
// 3-1 and 3-2 that lets an ordinary user task manage a memory object.
package pager

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"machvm/internal/core"
	"machvm/internal/unixfs"
)

// InodePager backs memory objects with files: a page fault on a mapped
// file becomes a direct disk read into the faulting page, and pageout
// becomes a file write. Because the data lives in the object's physical
// pages (retained by the object cache after the last unmap), rereading a
// hot file costs no disk traffic — the behaviour Table 7-1's second-read
// rows measure.
type InodePager struct {
	fs *unixfs.FS

	mu      sync.Mutex
	backing map[*core.Object]*unixfs.Inode

	reads, writes atomic.Uint64
}

// NewInodePager creates an inode pager over the filesystem.
func NewInodePager(fs *unixfs.FS) *InodePager {
	return &InodePager{fs: fs, backing: make(map[*core.Object]*unixfs.Inode)}
}

// Name implements core.Pager.
func (ip *InodePager) Name() string { return "inode-pager" }

// NewFileObject creates a memory object backed by the named file; mapping
// it into a task gives a memory-mapped file. The object persists in the
// object cache after its last unmapping (pager_cache semantics: text
// segments and hot files stay warm).
func (ip *InodePager) NewFileObject(k *core.Kernel, name string) (*core.Object, error) {
	ino, err := ip.fs.Open(name)
	if err != nil {
		return nil, err
	}
	obj := k.NewObject(ino.Size(), ip, "file:"+name)
	ip.mu.Lock()
	ip.backing[obj] = ino
	ip.mu.Unlock()
	obj.SetCanPersist(true)
	return obj, nil
}

// Bind attaches an existing object to a file (used by the default pager
// path, where the object came first).
func (ip *InodePager) Bind(obj *core.Object, ino *unixfs.Inode) {
	ip.mu.Lock()
	ip.backing[obj] = ino
	ip.mu.Unlock()
}

func (ip *InodePager) inode(obj *core.Object) *unixfs.Inode {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	return ip.backing[obj]
}

// Init implements core.Pager (pager_init).
func (ip *InodePager) Init(obj *core.Object) {}

// DataRequest implements core.Pager (pager_data_request): read the file
// block(s) for the page straight from disk.
func (ip *InodePager) DataRequest(ctx context.Context, obj *core.Object, offset uint64, length int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ino := ip.inode(obj)
	if ino == nil {
		return nil, core.ErrDataUnavailable
	}
	if offset >= ino.Size() {
		return nil, core.ErrDataUnavailable
	}
	buf := make([]byte, length)
	n, err := ino.ReadAt(buf, offset)
	if err != nil || n == 0 {
		return nil, core.ErrDataUnavailable
	}
	ip.reads.Add(1)
	return buf, nil
}

// DataWrite implements core.Pager (pager_data_write): pageout goes to the
// file.
func (ip *InodePager) DataWrite(ctx context.Context, obj *core.Object, offset uint64, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ino := ip.inode(obj)
	if ino == nil {
		// No backing file: nowhere to put the data.
		return fmt.Errorf("inode-pager: object %q has no backing inode", obj.Name())
	}
	end := offset + uint64(len(data))
	if sz := ino.Size(); end > sz {
		// Don't grow the file past its logical size with page tail.
		if offset >= sz {
			return nil
		}
		data = data[:sz-offset]
	}
	if err := ino.WriteAt(data, offset); err != nil {
		return err
	}
	ip.writes.Add(1)
	return nil
}

// Terminate implements core.Pager.
func (ip *InodePager) Terminate(obj *core.Object) {
	ip.mu.Lock()
	delete(ip.backing, obj)
	ip.mu.Unlock()
}

// Traffic returns pagein/pageout counts through this pager.
func (ip *InodePager) Traffic() (reads, writes uint64) {
	return ip.reads.Load(), ip.writes.Load()
}

// SwapPager is the default pager built on filesystem swap files: internal
// memory paged out lands in per-object swap files on the 4.3bsd
// filesystem, eliminating the need for separate paging partitions.
type SwapPager struct {
	fs *unixfs.FS

	mu    sync.Mutex
	files map[*core.Object]*unixfs.Inode
	seq   uint64
}

// NewSwapPager creates the default pager over the filesystem.
func NewSwapPager(fs *unixfs.FS) *SwapPager {
	return &SwapPager{fs: fs, files: make(map[*core.Object]*unixfs.Inode)}
}

// Name implements core.Pager.
func (sp *SwapPager) Name() string { return "default-inode-pager" }

// Init implements core.Pager.
func (sp *SwapPager) Init(obj *core.Object) {}

func (sp *SwapPager) fileFor(obj *core.Object, create bool) *unixfs.Inode {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	ino := sp.files[obj]
	if ino == nil && create {
		sp.seq++
		var err error
		ino, err = sp.fs.Create(fmt.Sprintf(".swap/%d", sp.seq), nil)
		if err != nil {
			return nil
		}
		sp.files[obj] = ino
	}
	return ino
}

// DataRequest implements core.Pager: read back previously paged-out data.
func (sp *SwapPager) DataRequest(ctx context.Context, obj *core.Object, offset uint64, length int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ino := sp.fileFor(obj, false)
	if ino == nil || offset >= ino.Size() {
		return nil, core.ErrDataUnavailable
	}
	buf := make([]byte, length)
	if n, err := ino.ReadAt(buf, offset); err != nil || n == 0 {
		return nil, core.ErrDataUnavailable
	}
	return buf, nil
}

// DataWrite implements core.Pager: page out to the swap file.
func (sp *SwapPager) DataWrite(ctx context.Context, obj *core.Object, offset uint64, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ino := sp.fileFor(obj, true)
	if ino == nil {
		return fmt.Errorf("swap-pager: cannot create swap file for object %q", obj.Name())
	}
	return ino.WriteAt(data, offset)
}

// Terminate implements core.Pager: release the swap file.
func (sp *SwapPager) Terminate(obj *core.Object) {
	sp.mu.Lock()
	ino := sp.files[obj]
	delete(sp.files, obj)
	sp.mu.Unlock()
	if ino != nil {
		_ = sp.fs.Remove(ino.Name())
	}
}
