// Package baseline implements the comparison system of the paper's §7:
// a traditional UNIX virtual memory in the style of 4.3bsd (and, with the
// COWFork option, SunOS 3.2), running on the same simulated hardware and
// cost model as the Mach layer so that measured differences are
// algorithmic, not environmental.
//
// The deliberate differences from the Mach side are exactly the ones the
// paper's Table 7-1/7-2 rows exercise:
//
//   - fork copies the address space eagerly, page by page (4.3bsd), or
//     lazily but with heavier per-operation overheads (SunOS variant);
//   - file I/O goes through a fixed-size buffer cache rather than mapped
//     objects backed by all of free memory;
//   - the fault path carries the heavier traditional overheads (validating
//     cluster maps, u-area bookkeeping), modelled by Costs.FaultExtra.
package baseline

import (
	"errors"
	"fmt"
	"sync"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/unixfs"
	"machvm/internal/vmtypes"
)

// Baseline errors.
var (
	// ErrNoMemory means physical memory is exhausted (baseline
	// experiments are sized to fit; exhaustion is a configuration bug).
	ErrNoMemory = errors.New("baseline: out of physical memory")
	// ErrBadAddress means an access touched no segment.
	ErrBadAddress = errors.New("baseline: bad address")
)

// Costs are the baseline's additional per-architecture overheads, tuned so
// each baseline behaves like the system the paper compared against on that
// machine (see EXPERIMENTS.md for the calibration).
type Costs struct {
	// FaultExtra is charged on every page fault on top of the machine's
	// FaultTrap (traditional fault-path bookkeeping).
	FaultExtra int64
	// ForkBaseExtra is charged once per fork on top of TaskCreate.
	ForkBaseExtra int64
	// ForkPerPage is charged per copied (or COW-marked) page at fork.
	ForkPerPage int64
	// COWFork selects SunOS-style lazy copy instead of eager copying.
	COWFork bool
	// ReadExtra is charged per read(2) call (syscall bookkeeping beyond
	// the machine Syscall cost).
	ReadExtra int64
}

// BSD43 returns the 4.3bsd-style overheads (VAX-class comparisons).
func BSD43() Costs {
	return Costs{
		FaultExtra:    hw.Microseconds(600),
		ForkBaseExtra: hw.Microseconds(3000),
		ForkPerPage:   hw.Microseconds(290),
		COWFork:       false,
		ReadExtra:     hw.Microseconds(80),
	}
}

// ACIS42 returns IBM ACIS 4.2a-style overheads (the RT PC comparison).
func ACIS42() Costs {
	return Costs{
		FaultExtra:    hw.Microseconds(130),
		ForkBaseExtra: hw.Microseconds(2000),
		ForkPerPage:   hw.Microseconds(330),
		COWFork:       false,
		ReadExtra:     hw.Microseconds(60),
	}
}

// SunOS32 returns SunOS 3.2-style overheads (the SUN 3 comparison):
// fork is lazy, but every operation carries more weight than Mach's.
func SunOS32() Costs {
	return Costs{
		FaultExtra:    hw.Microseconds(100),
		ForkBaseExtra: hw.Microseconds(15000),
		ForkPerPage:   hw.Microseconds(200),
		COWFork:       true,
		ReadExtra:     hw.Microseconds(40),
	}
}

// System is one booted baseline UNIX: a physical page allocator, a
// buffer cache and a process table, sharing the machine's pmap module for
// hardware mapping.
type System struct {
	machine *hw.Machine
	mod     pmap.Module
	costs   Costs

	fs *unixfs.FS
	bc *unixfs.BufferCache

	pageSize uint64 // baseline page (cluster) size == Mach page size for fairness
	hwRatio  int

	mu        sync.Mutex
	freePages []vmtypes.PFN // first frame of each free cluster
	frameRefs map[vmtypes.PFN]int

	faults, forks, forkPagesCopied uint64
}

// Config configures a baseline system.
type Config struct {
	Machine *hw.Machine
	Module  pmap.Module
	Costs   Costs
	FS      *unixfs.FS
	// NBufs is the buffer-cache size in blocks (the paper's "400
	// buffers" vs "generic configuration" knob).
	NBufs int
	// PageSize is the VM cluster size; 0 uses 4096 or the hardware page
	// size, whichever is larger.
	PageSize int
}

// New boots a baseline system.
func New(cfg Config) *System {
	hwPage := cfg.Machine.Mem.PageSize()
	ps := cfg.PageSize
	if ps == 0 {
		ps = hwPage
		for ps < 4096 {
			ps *= 2
		}
	}
	if ps%hwPage != 0 {
		panic("baseline: page size must be a multiple of the hardware page size")
	}
	s := &System{
		machine:   cfg.Machine,
		mod:       cfg.Module,
		costs:     cfg.Costs,
		fs:        cfg.FS,
		pageSize:  uint64(ps),
		hwRatio:   ps / hwPage,
		frameRefs: make(map[vmtypes.PFN]int),
	}
	if cfg.FS != nil {
		s.bc = unixfs.NewBufferCache(cfg.Machine, cfg.FS.Disk, cfg.NBufs)
	}
	limit := cfg.Module.MaxFrames()
	clusters := cfg.Machine.Mem.NumFrames() / s.hwRatio
	for c := 0; c < clusters; c++ {
		first := vmtypes.PFN(c * s.hwRatio)
		ok := true
		for i := 0; i < s.hwRatio; i++ {
			f := first + vmtypes.PFN(i)
			if int(f) >= limit || !cfg.Machine.Mem.Valid(f) {
				ok = false
				break
			}
		}
		if ok {
			s.freePages = append(s.freePages, first)
		}
	}
	return s
}

// BufferCache returns the system's buffer cache.
func (s *System) BufferCache() *unixfs.BufferCache { return s.bc }

// FS returns the system's filesystem.
func (s *System) FS() *unixfs.FS { return s.fs }

// PageSize returns the baseline page size.
func (s *System) PageSize() uint64 { return s.pageSize }

// FreePages returns the free cluster count.
func (s *System) FreePages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.freePages)
}

// Stats returns fault and fork counters.
func (s *System) Stats() (faults, forks, forkPagesCopied uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults, s.forks, s.forkPagesCopied
}

func (s *System) allocCluster() (vmtypes.PFN, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.freePages) == 0 {
		return 0, ErrNoMemory
	}
	p := s.freePages[len(s.freePages)-1]
	s.freePages = s.freePages[:len(s.freePages)-1]
	s.frameRefs[p] = 1
	return p, nil
}

func (s *System) refCluster(p vmtypes.PFN) {
	s.mu.Lock()
	s.frameRefs[p]++
	s.mu.Unlock()
}

func (s *System) releaseCluster(p vmtypes.PFN) {
	s.mu.Lock()
	s.frameRefs[p]--
	if s.frameRefs[p] <= 0 {
		delete(s.frameRefs, p)
		s.freePages = append(s.freePages, p)
	}
	s.mu.Unlock()
}

func (s *System) clusterRefs(p vmtypes.PFN) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frameRefs[p]
}

// segment is a contiguous region of a process image (text, data, stack —
// a typical 4.3bsd process has a handful).
type segment struct {
	start, end vmtypes.VA
	pages      map[uint64]vmtypes.PFN // page index within segment -> cluster
	cow        map[uint64]bool        // page shared COW after a SunOS fork
}

// Proc is one baseline UNIX process.
type Proc struct {
	sys *System
	pm  pmap.Map

	mu   sync.Mutex
	segs []*segment
	brk  vmtypes.VA
	dead bool
}

// NewProc creates a process with an empty image.
func (s *System) NewProc() *Proc {
	s.machine.Charge(s.machine.Cost.TaskCreate)
	return &Proc{sys: s, pm: s.mod.Create(), brk: vmtypes.VA(s.pageSize)}
}

// Pmap exposes the process's hardware map.
func (p *Proc) Pmap() pmap.Map { return p.pm }

// AllocZeroFill adds a demand-zero segment of the given size and returns
// its base address.
func (p *Proc) AllocZeroFill(size uint64) vmtypes.VA {
	p.sys.machine.Charge(p.sys.machine.Cost.Syscall)
	size = vmtypes.RoundUp(size, p.sys.pageSize)
	p.mu.Lock()
	defer p.mu.Unlock()
	base := p.brk
	p.brk += vmtypes.VA(size)
	p.segs = append(p.segs, &segment{
		start: base,
		end:   base + vmtypes.VA(size),
		pages: make(map[uint64]vmtypes.PFN),
		cow:   make(map[uint64]bool),
	})
	return base
}

func (p *Proc) segFor(va vmtypes.VA) *segment {
	for _, seg := range p.segs {
		if va >= seg.start && va < seg.end {
			return seg
		}
	}
	return nil
}

// fault services one page fault the traditional way.
func (p *Proc) fault(va vmtypes.VA, write bool) error {
	machine := p.sys.machine
	machine.Charge(machine.Cost.FaultTrap + p.sys.costs.FaultExtra)
	p.mu.Lock()
	seg := p.segFor(va)
	if seg == nil {
		p.mu.Unlock()
		return ErrBadAddress
	}
	pageVA := vmtypes.VA(vmtypes.RoundDown(uint64(va), p.sys.pageSize))
	idx := uint64(pageVA-seg.start) / p.sys.pageSize
	cluster, resident := seg.pages[idx]
	isCOW := seg.cow[idx]
	p.mu.Unlock()

	p.sys.mu.Lock()
	p.sys.faults++
	p.sys.mu.Unlock()

	switch {
	case !resident:
		// Demand zero fill.
		c, err := p.sys.allocCluster()
		if err != nil {
			return err
		}
		for i := 0; i < p.sys.hwRatio; i++ {
			p.sys.mod.ZeroPage(c + vmtypes.PFN(i))
		}
		p.mu.Lock()
		seg.pages[idx] = c
		p.mu.Unlock()
		p.enterCluster(pageVA, c, true)
	case isCOW && write:
		// SunOS-style copy-on-write resolution.
		if p.sys.clusterRefs(cluster) > 1 {
			c, err := p.sys.allocCluster()
			if err != nil {
				return err
			}
			for i := 0; i < p.sys.hwRatio; i++ {
				p.sys.mod.CopyPage(cluster+vmtypes.PFN(i), c+vmtypes.PFN(i))
			}
			p.sys.releaseCluster(cluster)
			cluster = c
		}
		p.mu.Lock()
		seg.pages[idx] = cluster
		delete(seg.cow, idx)
		p.mu.Unlock()
		p.enterCluster(pageVA, cluster, true)
	default:
		// Resident but unmapped (or read on COW page): enter with the
		// protection the state allows.
		p.enterCluster(pageVA, cluster, !isCOW)
	}
	return nil
}

// enterCluster maps a cluster's hardware pages.
func (p *Proc) enterCluster(pageVA vmtypes.VA, cluster vmtypes.PFN, writable bool) {
	prot := vmtypes.ProtRead | vmtypes.ProtExecute
	if writable {
		prot |= vmtypes.ProtWrite
	}
	hwPage := vmtypes.VA(p.sys.machine.Mem.PageSize())
	for i := 0; i < p.sys.hwRatio; i++ {
		p.pm.Enter(pageVA+vmtypes.VA(i)*hwPage, cluster+vmtypes.PFN(i), prot, false)
	}
}

// AccessBytes performs a user memory access through the hardware path.
func (p *Proc) AccessBytes(cpu *hw.CPU, va vmtypes.VA, buf []byte, write bool) error {
	access := vmtypes.ProtRead
	if write {
		access = vmtypes.ProtWrite
	}
	machine := p.sys.machine
	hwPage := uint64(machine.Mem.PageSize())
	done := 0
	for done < len(buf) {
		cur := uint64(va) + uint64(done)
		n := len(buf) - done
		if in := int(hwPage - cur%hwPage); n > in {
			n = in
		}
		var pfn vmtypes.PFN
		resolved := false
		for try := 0; try < 8; try++ {
			res := pmap.Access(p.sys.mod, cpu, p.pm, vmtypes.VA(cur), access)
			if res.Fault == vmtypes.FaultNone {
				pfn = res.PFN
				resolved = true
				break
			}
			serviced := res.Reported
			if res.Fault == vmtypes.FaultProtection {
				serviced = p.sys.mod.CorrectFaultAccess(res.Reported, res.MappingProt)
			}
			if err := p.fault(vmtypes.VA(cur), serviced.Allows(vmtypes.ProtWrite)); err != nil {
				return err
			}
		}
		if !resolved {
			return fmt.Errorf("baseline: access did not settle at %#x", cur)
		}
		fb := machine.Mem.Frame(pfn)
		off := int(cur % hwPage)
		if write {
			copy(fb[off:off+n], buf[done:done+n])
		} else {
			copy(buf[done:done+n], fb[off:off+n])
		}
		done += n
	}
	return nil
}

// Touch performs a single-byte access.
func (p *Proc) Touch(cpu *hw.CPU, va vmtypes.VA, write bool) error {
	var b [1]byte
	return p.AccessBytes(cpu, va, b[:], write)
}

// Fork creates a child process. The 4.3bsd variant copies every resident
// page eagerly; the SunOS variant marks pages copy-on-write but pays
// higher fixed costs.
func (p *Proc) Fork() (*Proc, error) {
	s := p.sys
	machine := s.machine
	machine.Charge(machine.Cost.TaskCreate + s.costs.ForkBaseExtra)

	child := &Proc{sys: s, pm: s.mod.Create(), brk: p.brk}
	p.mu.Lock()
	defer p.mu.Unlock()
	s.mu.Lock()
	s.forks++
	s.mu.Unlock()

	for _, seg := range p.segs {
		cs := &segment{
			start: seg.start,
			end:   seg.end,
			pages: make(map[uint64]vmtypes.PFN, len(seg.pages)),
			cow:   make(map[uint64]bool),
		}
		for idx, cluster := range seg.pages {
			machine.Charge(s.costs.ForkPerPage)
			if s.costs.COWFork {
				// Share the cluster copy-on-write.
				s.refCluster(cluster)
				cs.pages[idx] = cluster
				cs.cow[idx] = true
				seg.cow[idx] = true
				// Write-protect the parent's mapping.
				pageVA := seg.start + vmtypes.VA(idx*s.pageSize)
				p.pm.Protect(pageVA, pageVA+vmtypes.VA(s.pageSize), vmtypes.ProtRead|vmtypes.ProtExecute)
				continue
			}
			// Eager copy.
			c, err := s.allocCluster()
			if err != nil {
				child.exitLocked()
				return nil, err
			}
			for i := 0; i < s.hwRatio; i++ {
				s.mod.CopyPage(cluster+vmtypes.PFN(i), c+vmtypes.PFN(i))
			}
			cs.pages[idx] = c
			s.mu.Lock()
			s.forkPagesCopied++
			s.mu.Unlock()
		}
		child.segs = append(child.segs, cs)
	}
	return child, nil
}

// Exit frees the process's memory and hardware map.
func (p *Proc) Exit() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.exitLocked()
}

func (p *Proc) exitLocked() {
	if p.dead {
		return
	}
	p.dead = true
	for _, seg := range p.segs {
		for _, cluster := range seg.pages {
			p.sys.releaseCluster(cluster)
		}
	}
	p.segs = nil
	p.pm.Destroy()
}

// ReadFile implements read(2): data moves from disk through the fixed
// buffer cache into the process's buffer.
func (p *Proc) ReadFile(cpu *hw.CPU, ino *unixfs.Inode, offset uint64, va vmtypes.VA, n int) (int, error) {
	machine := p.sys.machine
	machine.Charge(machine.Cost.Syscall + p.sys.costs.ReadExtra)
	buf := make([]byte, n)
	got, err := p.sys.bc.ReadAt(ino, buf, offset)
	if err != nil {
		return 0, err
	}
	if err := p.AccessBytes(cpu, va, buf[:got], true); err != nil {
		return 0, err
	}
	return got, nil
}

// WriteFile implements write(2) through the buffer cache.
func (p *Proc) WriteFile(cpu *hw.CPU, ino *unixfs.Inode, offset uint64, va vmtypes.VA, n int) error {
	machine := p.sys.machine
	machine.Charge(machine.Cost.Syscall + p.sys.costs.ReadExtra)
	buf := make([]byte, n)
	if err := p.AccessBytes(cpu, va, buf, false); err != nil {
		return err
	}
	return p.sys.bc.WriteAt(ino, buf, offset)
}
