package baseline_test

import (
	"bytes"
	"testing"

	"machvm/internal/baseline"
	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/unixfs"
	"machvm/internal/vmtypes"
)

func newSys(t testing.TB, costs baseline.Costs, frames int) (*baseline.System, *hw.Machine) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: frames,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	fs := unixfs.NewFS(unixfs.NewDisk(machine, 4096))
	sys := baseline.New(baseline.Config{
		Machine: machine, Module: mod, Costs: costs, FS: fs, NBufs: 64, PageSize: 4096,
	})
	return sys, machine
}

func TestProcZeroFillAndReadback(t *testing.T) {
	sys, machine := newSys(t, baseline.BSD43(), 4096)
	cpu := machine.CPU(0)
	p := sys.NewProc()
	defer p.Exit()
	p.Pmap().Activate(cpu)
	va := p.AllocZeroFill(64 * 1024)
	buf := make([]byte, 100)
	if err := p.AccessBytes(cpu, va, buf, false); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("demand-zero memory not zero")
		}
	}
	data := bytes.Repeat([]byte{0x3C}, 20000)
	if err := p.AccessBytes(cpu, va+100, data, true); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.AccessBytes(cpu, va+100, got, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("readback mismatch")
	}
	if err := p.Touch(cpu, 0x7fffff00, false); err == nil {
		t.Fatal("access outside segments must fail")
	}
}

func TestEagerForkCopiesPages(t *testing.T) {
	sys, machine := newSys(t, baseline.BSD43(), 4096)
	cpu := machine.CPU(0)
	p := sys.NewProc()
	defer p.Exit()
	p.Pmap().Activate(cpu)
	va := p.AllocZeroFill(32 * 1024)
	if err := p.AccessBytes(cpu, va, bytes.Repeat([]byte{7}, 32*1024), true); err != nil {
		t.Fatal(err)
	}
	free0 := sys.FreePages()
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer child.Exit()
	// Eager: the child got its own 8 pages immediately.
	if got := free0 - sys.FreePages(); got != 8 {
		t.Fatalf("fork consumed %d pages; want 8 (eager copy)", got)
	}
	_, _, copied := sys.Stats()
	if copied != 8 {
		t.Fatalf("forkPagesCopied = %d", copied)
	}
	// And the copies are isolated.
	child.Pmap().Activate(cpu)
	if err := child.AccessBytes(cpu, va, []byte{9}, true); err != nil {
		t.Fatal(err)
	}
	p.Pmap().Activate(cpu)
	b := make([]byte, 1)
	if err := p.AccessBytes(cpu, va, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 7 {
		t.Fatal("child write leaked into parent")
	}
}

func TestCOWForkSharesThenCopies(t *testing.T) {
	sys, machine := newSys(t, baseline.SunOS32(), 4096)
	cpu := machine.CPU(0)
	p := sys.NewProc()
	defer p.Exit()
	p.Pmap().Activate(cpu)
	va := p.AllocZeroFill(32 * 1024)
	if err := p.AccessBytes(cpu, va, bytes.Repeat([]byte{7}, 32*1024), true); err != nil {
		t.Fatal(err)
	}
	free0 := sys.FreePages()
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer child.Exit()
	// Lazy: no pages consumed at fork.
	if got := free0 - sys.FreePages(); got != 0 {
		t.Fatalf("COW fork consumed %d pages; want 0", got)
	}
	// Child reads parent's data.
	child.Pmap().Activate(cpu)
	b := make([]byte, 1)
	if err := child.AccessBytes(cpu, va, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 7 {
		t.Fatal("child does not see parent data")
	}
	// Child write copies exactly one page and stays isolated.
	if err := child.AccessBytes(cpu, va, []byte{9}, true); err != nil {
		t.Fatal(err)
	}
	if got := free0 - sys.FreePages(); got != 1 {
		t.Fatalf("first COW write consumed %d pages; want 1", got)
	}
	p.Pmap().Activate(cpu)
	if err := p.AccessBytes(cpu, va, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 7 {
		t.Fatal("COW leak")
	}
	// Parent's write to the same page: it is the last sharer, so it
	// reuses the frame without copying.
	if err := p.AccessBytes(cpu, va+1, []byte{8}, true); err != nil {
		t.Fatal(err)
	}
}

func TestExitReleasesMemory(t *testing.T) {
	sys, machine := newSys(t, baseline.BSD43(), 1024)
	cpu := machine.CPU(0)
	free0 := sys.FreePages()
	p := sys.NewProc()
	p.Pmap().Activate(cpu)
	va := p.AllocZeroFill(64 * 1024)
	if err := p.AccessBytes(cpu, va, make([]byte, 64*1024), true); err != nil {
		t.Fatal(err)
	}
	if sys.FreePages() == free0 {
		t.Fatal("touching should consume pages")
	}
	p.Exit()
	if sys.FreePages() != free0 {
		t.Fatalf("exit leaked: %d vs %d", sys.FreePages(), free0)
	}
	// Exit is idempotent.
	p.Exit()
}

func TestReadWriteFileThroughBufferCache(t *testing.T) {
	sys, machine := newSys(t, baseline.BSD43(), 4096)
	cpu := machine.CPU(0)
	p := sys.NewProc()
	defer p.Exit()
	p.Pmap().Activate(cpu)

	content := bytes.Repeat([]byte("unix file "), 2000)
	ino, err := sys.FS().Create("f", content)
	if err != nil {
		t.Fatal(err)
	}
	va := p.AllocZeroFill(uint64(len(content)))
	n, err := p.ReadFile(cpu, ino, 0, va, len(content))
	if err != nil || n != len(content) {
		t.Fatalf("ReadFile = %d, %v", n, err)
	}
	got := make([]byte, len(content))
	if err := p.AccessBytes(cpu, va, got, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("read content mismatch")
	}
	hits0, misses0, _ := sys.BufferCache().Stats()
	if misses0 == 0 {
		t.Fatal("first read should miss the cache")
	}
	// Second read of a small file hits the cache.
	if _, err := p.ReadFile(cpu, ino, 0, va, len(content)); err != nil {
		t.Fatal(err)
	}
	hits1, misses1, _ := sys.BufferCache().Stats()
	if misses1 != misses0 {
		t.Fatal("second read should not miss")
	}
	if hits1 == hits0 {
		t.Fatal("second read should hit")
	}

	// Write a file back out through the cache.
	out, err := sys.FS().Create("out", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile(cpu, out, 0, va, 8192); err != nil {
		t.Fatal(err)
	}
	sys.BufferCache().Sync()
	check := make([]byte, 8192)
	if _, err := out.ReadAt(check, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(check, content[:8192]) {
		t.Fatal("written file content mismatch")
	}
}

func TestMemoryExhaustion(t *testing.T) {
	sys, machine := newSys(t, baseline.BSD43(), 64) // 32KB of memory, 8 clusters
	cpu := machine.CPU(0)
	p := sys.NewProc()
	defer p.Exit()
	p.Pmap().Activate(cpu)
	va := p.AllocZeroFill(1 << 20)
	var failed bool
	for off := uint64(0); off < 1<<20; off += 4096 {
		if err := p.Touch(cpu, va+vmtypes.VA(off), true); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("baseline has no pageout; oversubscription must fail loudly")
	}
}
