// Package core implements the machine-independent half of the Mach virtual
// memory system: the four basic data structures of the paper's §3 —
// the resident page table, the address map, the memory object and (through
// the pmap interface) the physical map — plus the fault handler, the
// paging daemon, sharing maps, shadow-object garbage collection and the
// user-visible VM operations of Table 2-1.
//
// All information important to the management of virtual memory lives
// here, in machine-independent structures; the machine-dependent modules
// under internal/pmap hold only the mappings needed to run the current mix
// of programs and may discard them at will.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"machvm/internal/hw"
	"machvm/internal/measure"
	"machvm/internal/pmap"
	"machvm/internal/trace"
	"machvm/internal/vmtypes"
)

// Kernel is the machine-independent VM system for one machine.
type Kernel struct {
	machine *hw.Machine
	mod     pmap.Module

	// pageSize is the Mach page size: a boot-time parameter, any
	// power-of-two multiple of the hardware page size (§3.1).
	pageSize uint64
	hwRatio  int // hardware pages per Mach page

	// The resident page table is lock-striped (DESIGN.md §7): the
	// object/offset hash and busy-page wait channels are split across
	// numPageShards shards, each pageable queue carries its own lock,
	// and the free count is an atomic so pageout-trigger checks never
	// lock. Free pages live in per-shard magazines over a global depot;
	// the depot lock is touched only for batched exchanges. Lock order:
	// object → shard → queue/magazine → depot; never two shards, never
	// two magazines.
	shards    [numPageShards]pageShard
	pages     []*Page
	magazines [numPageShards]pageMagazine
	depot     lockedQueue
	active    lockedQueue
	inactive  lockedQueue
	freeCount atomic.Int64

	// Pageout tuning: the daemon runs when free pages drop below
	// freeMin and aims for freeTarget.
	freeMin    int
	freeTarget int

	// pageoutWake carries demand wakeups from allocPage to the pageout
	// daemon (capacity 1; a full buffer means one is already pending).
	// Scans are single-flight: scanFlight, guarded by scanMu, is the
	// in-progress scan that late requesters wait on instead of running
	// a redundant scan of their own.
	pageoutWake chan struct{}
	scanMu      sync.Mutex
	scanFlight  *scanFlight

	cache objectCache

	// disableHints and prewarmFork hold the ablation switches.
	disableHints bool
	prewarmFork  bool

	// swap is the pager of last resort for internal objects being
	// paged out (the paper's default pager).
	swap Pager

	// pagerPolicy bounds every kernel→pager conversation (deadline,
	// retries, backoff). flights is the single-flight table of in-progress
	// DataRequest conversations, keyed like the resident page table;
	// flightMu is a leaf lock (never held while taking a shard or object
	// lock).
	pagerPolicyMu sync.Mutex
	pagerPolicy   PagerPolicy
	flightMu      sync.Mutex
	flights       map[pageKey]*pagerFlight

	// pageBufs recycles page-sized staging buffers for pageout and
	// clean requests. Safe because no Pager retains the DataWrite slice
	// beyond the call (see the Pager interface contract).
	pageBufs sync.Pool
	// runBufs recycles the multi-page staging buffers behind clustered
	// pageout writes; pfnBufs and claimBufs recycle the PFN and page
	// scratch slices of range enters and span promotion, keeping the
	// fault path allocation-free.
	runBufs   sync.Pool
	pfnBufs   sync.Pool
	claimBufs sync.Pool
	// objectPool recycles the fault path's internal objects — lazy
	// anonymous zero-fill memory and COW shadows — between termination
	// and the next fault that needs one (see newPooledObject).
	objectPool sync.Pool

	// tracer, when non-nil, receives every externally visible event (map
	// ops, faults, pager conversations, pageout decisions) as a
	// deterministic stream stamped with the virtual clock. The disabled
	// cost on hot paths is one atomic pointer load and a branch.
	tracer atomic.Pointer[trace.Log]

	// mapIDs and objectIDs issue the stable per-kernel identifiers that
	// trace events use to name maps and objects, and that seed the treap
	// priority streams and the page-shard hash. Per-kernel (not global)
	// so two identically driven kernels assign identical IDs.
	mapIDs    atomic.Uint64
	objectIDs atomic.Uint64

	stats Stats

	// faultLatency is the per-fault virtual-nanosecond latency histogram
	// behind SLOReport. Recording is wait-free and allocation-free, so it
	// rides the fault path without disturbing the zero-allocs gate; it is
	// deliberately not part of Stats so trace footers stay unchanged.
	faultLatency measure.Histogram
}

// getPageBuf returns a zero-capable page-sized scratch buffer; return it
// with putPageBuf once the pager call it fed has returned.
func (k *Kernel) getPageBuf() []byte {
	if b, ok := k.pageBufs.Get().(*[]byte); ok {
		return *b
	}
	return make([]byte, k.pageSize)
}

func (k *Kernel) putPageBuf(b []byte) {
	k.pageBufs.Put(&b)
}

// getRunBuf returns a scratch buffer of at least n bytes for a clustered
// pageout write; return it with putRunBuf after the pager call returns.
func (k *Kernel) getRunBuf(n int) *[]byte {
	b, _ := k.runBufs.Get().(*[]byte)
	if b == nil || cap(*b) < n {
		s := make([]byte, n)
		b = &s
	}
	*b = (*b)[:n]
	return b
}

func (k *Kernel) putRunBuf(b *[]byte) { k.runBufs.Put(b) }

// getPFNBuf returns a PFN scratch slice with capacity for at least n
// frames, for EnterRange argument marshalling.
func (k *Kernel) getPFNBuf(n int) *[]vmtypes.PFN {
	b, _ := k.pfnBufs.Get().(*[]vmtypes.PFN)
	if b == nil || cap(*b) < n {
		s := make([]vmtypes.PFN, n)
		b = &s
	}
	*b = (*b)[:n]
	return b
}

func (k *Kernel) putPFNBuf(b *[]vmtypes.PFN) { k.pfnBufs.Put(b) }

// getClaimBuf returns a page-pointer scratch slice for span promotion's
// try-claim pass; putClaimBuf clears it (no page leaks past the return).
func (k *Kernel) getClaimBuf(n int) *[]*Page {
	b, _ := k.claimBufs.Get().(*[]*Page)
	if b == nil || cap(*b) < n {
		s := make([]*Page, n)
		b = &s
	}
	*b = (*b)[:n]
	return b
}

func (k *Kernel) putClaimBuf(b *[]*Page) {
	for i := range *b {
		(*b)[i] = nil
	}
	k.claimBufs.Put(b)
}

// Config configures a kernel.
type Config struct {
	// Machine is the simulated hardware.
	Machine *hw.Machine
	// Module is the machine-dependent pmap module.
	Module pmap.Module
	// PageSize is the Mach page size; 0 selects the smallest legal
	// value of at least 4096 bytes. It must be a power-of-two multiple
	// of the hardware page size.
	PageSize int
	// ObjectCacheSize bounds the cache of unreferenced persistent
	// memory objects; 0 selects a default.
	ObjectCacheSize int
	// FreeTarget and FreeMin tune the paging daemon; 0 selects
	// proportional defaults.
	FreeTarget int
	FreeMin    int
	// DisableMapHints turns off the §3.2 last-fault hints (for the
	// ablation benchmarks).
	DisableMapHints bool
	// PrewarmFork uses the optional pmap_copy routine (Table 3-4), when
	// the module implements it, to duplicate the parent's hardware
	// mappings into the child at fork: the child avoids refaults at the
	// price of a longer fork.
	PrewarmFork bool
	// Pager bounds every kernel→pager conversation; the zero value
	// selects DefaultPagerPolicy.
	Pager PagerPolicy
}

// ErrConfig wraps every configuration error returned by NewKernel.
var ErrConfig = fmt.Errorf("core: invalid config")

// NewKernel boots the machine-independent VM layer. It returns an error
// (wrapping ErrConfig) when the configuration is unusable.
func NewKernel(cfg Config) (*Kernel, error) {
	if cfg.Machine == nil || cfg.Module == nil {
		return nil, fmt.Errorf("%w: Config needs Machine and Module", ErrConfig)
	}
	hwPage := cfg.Machine.Mem.PageSize()
	pageSize := cfg.PageSize
	if pageSize == 0 {
		pageSize = hwPage
		for pageSize < 4096 {
			pageSize *= 2
		}
	}
	if pageSize < hwPage || !vmtypes.IsPowerOfTwo(uint64(pageSize)) || pageSize%hwPage != 0 {
		return nil, fmt.Errorf("%w: Mach page size %d must be a power-of-two multiple of the hardware page size %d", ErrConfig, pageSize, hwPage)
	}
	k := &Kernel{
		machine:     cfg.Machine,
		mod:         cfg.Module,
		pageSize:    uint64(pageSize),
		hwRatio:     pageSize / hwPage,
		pageoutWake: make(chan struct{}, 1),
		pagerPolicy: cfg.Pager.normalize(),
		flights:     make(map[pageKey]*pagerFlight),
	}
	for i := range k.shards {
		// Size hints keep the first faults from growing the hash
		// incrementally: bucket growth is an allocation the steady
		// state never sees.
		k.shards[i].pages = make(map[pageKey]*Page, 32)
		k.shards[i].waiters = make(map[pageKey]chan struct{}, 4)
	}
	k.initResidentPages()
	k.prewarmPools()
	if cfg.FreeTarget > 0 {
		k.freeTarget = cfg.FreeTarget
	} else {
		k.freeTarget = len(k.pages) / 16
		if k.freeTarget < 4 {
			k.freeTarget = 4
		}
	}
	if cfg.FreeMin > 0 {
		k.freeMin = cfg.FreeMin
	} else {
		k.freeMin = k.freeTarget / 2
		if k.freeMin < 2 {
			k.freeMin = 2
		}
	}
	size := cfg.ObjectCacheSize
	if size == 0 {
		size = 64
	}
	k.cache.init(size)
	k.disableHints = cfg.DisableMapHints
	k.prewarmFork = cfg.PrewarmFork
	k.swap = newMemorySwapPager(k.machine, k.pageSize, &k.stats)
	return k, nil
}

// prewarmPools primes the fault path's recycling layers at boot so the
// very first faults already run with the steady-state allocation
// profile: a few pooled objects, pageout staging buffers, and the PFN
// and page scratch slices behind range enters and span promotion. The
// sizes match the largest consumers (maxClusterPages-page pageout runs,
// a 16-Mach-page superpage span); getRunBuf and friends grow a buffer
// that turns out too small, so these are floors, not limits.
func (k *Kernel) prewarmPools() {
	const (
		warmObjects  = 4
		warmSpan     = 64 // Mach pages in the largest superpage span (a full VAX chunk)
		warmPageBufs = 2
	)
	for i := 0; i < warmObjects; i++ {
		o := &Object{}
		o.pooled = true
		k.objectPool.Put(o)
	}
	for i := 0; i < warmPageBufs; i++ {
		b := make([]byte, k.pageSize)
		k.pageBufs.Put(&b)
	}
	run := make([]byte, maxClusterPages*int(k.pageSize))
	k.runBufs.Put(&run)
	pfns := make([]vmtypes.PFN, warmSpan*k.hwRatio)
	k.pfnBufs.Put(&pfns)
	claims := make([]*Page, warmSpan)
	k.claimBufs.Put(&claims)
}

// MustNewKernel is NewKernel, panicking on configuration errors — the
// pre-error-API behaviour, convenient in tests and examples.
func MustNewKernel(cfg Config) *Kernel {
	k, err := NewKernel(cfg)
	if err != nil {
		panic(err)
	}
	return k
}

// initResidentPages builds the resident page table: one entry per Mach
// page of usable physical memory. A Mach page is usable only if all of its
// hardware frames are populated (no SUN 3 display-memory holes) and lie
// below the module's physical addressing limit (the NS32082's 32MB cap).
func (k *Kernel) initResidentPages() {
	mem := k.machine.Mem
	limit := k.mod.MaxFrames()
	machPages := mem.NumFrames() / k.hwRatio
	for mp := 0; mp < machPages; mp++ {
		first := vmtypes.PFN(mp * k.hwRatio)
		usable := true
		for i := 0; i < k.hwRatio; i++ {
			f := first + vmtypes.PFN(i)
			if int(f) >= limit || !mem.Valid(f) {
				usable = false
				break
			}
		}
		if !usable {
			continue
		}
		p := &Page{pfn: first}
		k.pages = append(k.pages, p)
		k.depot.q.pushBack(p)
		p.queue = queueFree
	}
	k.freeCount.Store(int64(k.depot.q.count))
}

// Machine returns the simulated hardware.
func (k *Kernel) Machine() *hw.Machine { return k.machine }

// Module returns the machine-dependent pmap module.
func (k *Kernel) Module() pmap.Module { return k.mod }

// PageSize returns the Mach page size in bytes.
func (k *Kernel) PageSize() uint64 { return k.pageSize }

// HWRatio returns the number of hardware pages per Mach page.
func (k *Kernel) HWRatio() int { return k.hwRatio }

// SetSwapPager replaces the default pager used to back internal objects at
// pageout time (e.g. with the inode pager once a filesystem exists).
func (k *Kernel) SetSwapPager(p Pager) { k.swap = p }

// SwapPager returns the current default pager.
func (k *Kernel) SwapPager() Pager { return k.swap }

// TotalPages returns the number of usable Mach pages of physical memory.
func (k *Kernel) TotalPages() int { return len(k.pages) }

// roundPage and truncPage align addresses to Mach page boundaries — the
// only restriction Mach imposes on regions (§2.1).
func (k *Kernel) roundPage(v uint64) uint64 { return vmtypes.RoundUp(v, k.pageSize) }
func (k *Kernel) truncPage(v uint64) uint64 { return vmtypes.RoundDown(v, k.pageSize) }
