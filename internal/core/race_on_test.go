//go:build race

package core_test

// raceEnabled reports whether the race detector is compiled in; tests
// that count host allocations skip under it (the race runtime allocates
// shadow state at unpredictable points).
const raceEnabled = true
