package core

// Concurrent-fault stress test for the sharded resident-page layer: many
// goroutines fault, copy and deallocate over shared and COW objects while
// the paging daemon scans, then the quiesced page table must still satisfy
// every structural invariant of invariant_test.go. Run with -race.

import (
	"fmt"
	"sync"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

func TestConcurrentFaultStress(t *testing.T) {
	const (
		workers    = 8
		iters      = 60
		churnPages = 24
		cowPages   = 16
	)
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 8192,
		CPUs:       workers,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	// A high free target keeps the daemon actually reclaiming pages
	// underneath the faulting workers instead of idling.
	k := MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096, FreeTarget: 384, FreeMin: 256})
	pageSize := k.PageSize()

	// Parent address space: one shared region every child inherits
	// read/write (each worker writes only its own page of it, plus reads
	// a common page initialized here), and one COW region every child
	// snapshots at fork and then overwrites privately.
	parent := k.NewMap()
	cpu0 := machine.CPU(0)
	parent.Pmap().Activate(cpu0)

	sharedAddr, err := parent.Allocate(0, uint64(workers+1)*pageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.SetInherit(sharedAddr, uint64(workers+1)*pageSize, vmtypes.InheritShared); err != nil {
		t.Fatal(err)
	}
	commonVA := sharedAddr + vmtypes.VA(uint64(workers)*pageSize)
	if err := k.AccessBytes(cpu0, parent, commonVA, []byte{0xA5}, true); err != nil {
		t.Fatal(err)
	}

	cowAddr, err := parent.Allocate(0, cowPages*pageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cowPages; i++ {
		va := cowAddr + vmtypes.VA(uint64(i)*pageSize)
		if err := k.AccessBytes(cpu0, parent, va, []byte{byte(0x10 + i)}, true); err != nil {
			t.Fatal(err)
		}
	}

	children := make([]*Map, workers)
	for w := range children {
		children[w] = parent.Fork()
	}
	parent.Pmap().Deactivate(cpu0)

	// The paging daemon races the workers for the whole run.
	daemonStop := make(chan struct{})
	var daemon sync.WaitGroup
	daemon.Add(1)
	go func() {
		defer daemon.Done()
		for {
			select {
			case <-daemonStop:
				return
			default:
				k.PageoutScan()
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cpu := machine.CPU(w)
			m := children[w]
			m.Pmap().Activate(cpu)
			defer m.Destroy()

			ownVA := sharedAddr + vmtypes.VA(uint64(w)*pageSize)
			b := make([]byte, 1)
			for it := 0; it < iters; it++ {
				// Shared object: write our own page, read the common one.
				if err := k.AccessBytes(cpu, m, ownVA, []byte{byte(it)}, true); err != nil {
					errs <- fmt.Errorf("worker %d shared write: %w", w, err)
					return
				}
				if err := k.AccessBytes(cpu, m, commonVA, b, false); err != nil {
					errs <- fmt.Errorf("worker %d shared read: %w", w, err)
					return
				}
				if b[0] != 0xA5 {
					errs <- fmt.Errorf("worker %d: shared page corrupted: %#x", w, b[0])
					return
				}

				// COW object: overwrite a page of our private snapshot,
				// then verify our writes stick and untouched pages still
				// show the parent's data.
				i := it % cowPages
				va := cowAddr + vmtypes.VA(uint64(i)*pageSize)
				if err := k.AccessBytes(cpu, m, va, []byte{byte(0x80 + w)}, true); err != nil {
					errs <- fmt.Errorf("worker %d cow write: %w", w, err)
					return
				}
				if err := k.AccessBytes(cpu, m, va, b, false); err != nil {
					errs <- fmt.Errorf("worker %d cow readback: %w", w, err)
					return
				}
				if b[0] != byte(0x80+w) {
					errs <- fmt.Errorf("worker %d: cow page lost the private write: %#x", w, b[0])
					return
				}
				j := (it + 1) % cowPages
				if j > it { // not yet written by us this pass
					va := cowAddr + vmtypes.VA(uint64(j)*pageSize)
					if err := k.AccessBytes(cpu, m, va, b, false); err != nil {
						errs <- fmt.Errorf("worker %d cow read: %w", w, err)
						return
					}
					if b[0] != byte(0x10+j) {
						errs <- fmt.Errorf("worker %d: cow page %d lost parent data: %#x", w, j, b[0])
						return
					}
				}

				// Churn: allocate, fault over, snapshot with vm_copy,
				// then deallocate both — keeps the allocator, the COW
				// machinery and the daemon all racing.
				addr, err := m.Allocate(0, churnPages*pageSize, true)
				if err != nil {
					errs <- fmt.Errorf("worker %d alloc: %w", w, err)
					return
				}
				for p := 0; p < churnPages; p += 3 {
					if err := k.Touch(cpu, m, addr+vmtypes.VA(uint64(p)*pageSize), true); err != nil {
						errs <- fmt.Errorf("worker %d churn touch: %w", w, err)
						return
					}
				}
				cp, err := m.CopyTo(m, addr, 6*pageSize, 0, true)
				if err != nil {
					errs <- fmt.Errorf("worker %d vm_copy: %w", w, err)
					return
				}
				if err := k.Touch(cpu, m, cp, true); err != nil {
					errs <- fmt.Errorf("worker %d copy touch: %w", w, err)
					return
				}
				if err := m.Deallocate(cp, 6*pageSize); err != nil {
					errs <- fmt.Errorf("worker %d dealloc copy: %w", w, err)
					return
				}
				if err := m.Deallocate(addr, churnPages*pageSize); err != nil {
					errs <- fmt.Errorf("worker %d dealloc: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(daemonStop)
	daemon.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The system is quiesced: every structural invariant must hold.
	checkPageAccounting(t, k)
	checkMapInvariants(t, parent)
	parent.Destroy()
	checkPageAccounting(t, k)
	if k.FreeCount() != k.TotalPages() {
		t.Fatalf("leak: %d of %d pages free after destroying all maps", k.FreeCount(), k.TotalPages())
	}
}
