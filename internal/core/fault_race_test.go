package core

// TestFaultVsMutatorRace hammers the versioned-revalidation retry path:
// faulting goroutines run against a map whose entries are concurrently
// re-protected, clipped (via sub-range Protect and SetInherit) and
// deallocated/reallocated. A fault may legitimately observe a hole or a
// protection it no longer satisfies — those errors are expected — but it
// must never deadlock, corrupt the map, or map a page the current entries
// do not describe. Run with -race.

import (
	"sync"
	"sync/atomic"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

func TestFaultVsMutatorRace(t *testing.T) {
	const (
		faulters = 6
		iters    = 400
		pages    = 32
	)
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 8192,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
	pageSize := k.PageSize()

	m := k.NewMap()
	defer m.Destroy()
	base, err := m.Allocate(0, pages*pageSize, true)
	if err != nil {
		t.Fatal(err)
	}

	var wg, faultersWG sync.WaitGroup
	var faults, denied, holes atomic.Int64
	var stop atomic.Bool

	// Faulting goroutines: reads and writes across the whole range.
	for g := 0; g < faulters; g++ {
		wg.Add(1)
		faultersWG.Add(1)
		go func(g int) {
			defer wg.Done()
			defer faultersWG.Done()
			for it := 0; it < iters; it++ {
				va := base + vmtypes.VA(uint64((it*7+g*13)%pages)*pageSize)
				access := vmtypes.ProtRead
				if (it+g)%2 == 0 {
					access = vmtypes.ProtWrite
				}
				switch err := k.Fault(m, va, access); err {
				case nil:
					faults.Add(1)
				case ErrFaultProtection:
					denied.Add(1) // raced with Protect: legitimate
				case ErrFaultNoEntry:
					holes.Add(1) // raced with Deallocate: legitimate
				default:
					t.Errorf("fault at %#x: %v", va, err)
					return
				}
			}
		}(g)
	}

	// Mutator 1: flip protections on clipping sub-ranges for as long as
	// the faulters run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prots := []vmtypes.Prot{vmtypes.ProtRead, vmtypes.ProtDefault, vmtypes.ProtRead | vmtypes.ProtExecute, vmtypes.ProtDefault}
		for it := 0; !stop.Load(); it++ {
			off := uint64(it%(pages-4)+1) * pageSize
			_ = m.Protect(base+vmtypes.VA(off), 3*pageSize, false, prots[it%len(prots)])
		}
	}()

	// Mutator 2: clip entries apart and back together via SetInherit and
	// Simplify.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; !stop.Load(); it++ {
			off := uint64(it%(pages-2)) * pageSize
			inh := vmtypes.InheritCopy
			if it%2 == 0 {
				inh = vmtypes.InheritShared
			}
			_ = m.SetInherit(base+vmtypes.VA(off), 2*pageSize, inh)
			if it%16 == 0 {
				m.SimplifyAll()
			}
		}
	}()

	// Mutator 3: punch a hole in the middle and refill it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		holeVA := base + vmtypes.VA(uint64(pages/2)*pageSize)
		for !stop.Load() {
			_ = m.Deallocate(holeVA, 2*pageSize)
			if _, err := m.Allocate(holeVA, 2*pageSize, false); err != nil {
				t.Errorf("refill: %v", err)
				return
			}
		}
	}()

	faultersWG.Wait()
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if faults.Load() == 0 {
		t.Fatal("no fault ever succeeded")
	}
	snap := k.Stats().Snapshot()
	t.Logf("faults=%d denied=%d holes=%d retries=%d hintmiss=%d",
		faults.Load(), denied.Load(), holes.Load(),
		snap.FaultRetries, snap.MapHintMisses)

	// The map survived: full structural check.
	checkMapInvariants(t, m)
	checkPageAccounting(t, k)
}
