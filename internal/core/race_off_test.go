//go:build !race

package core_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
