package core

import "sync/atomic"

// Stats are the machine-independent VM counters, the basis of
// vm_statistics (Table 2-1).
type Stats struct {
	Faults            atomic.Uint64 // total vm_fault calls
	ZeroFillFaults    atomic.Uint64 // faults satisfied by zero fill
	CowFaults         atomic.Uint64 // faults that copied a page
	ReactivateHits    atomic.Uint64 // faults satisfied by a resident page
	Pageins           atomic.Uint64 // pages filled from a pager
	Pageouts          atomic.Uint64 // pages written to a pager
	PageoutsWanted    atomic.Uint64 // times free memory dipped below min
	PageoutWakes      atomic.Uint64 // demand wakeups delivered to the daemon
	PageoutScanJoins  atomic.Uint64 // scan requests that waited on an in-flight scan
	PagesAllocated    atomic.Uint64
	PagesFreed        atomic.Uint64
	MagazineHits      atomic.Uint64 // page grabs satisfied by the shard's own magazine
	DepotRefills      atomic.Uint64 // batched magazine refills from the depot
	DepotDrains       atomic.Uint64 // batched magazine drains back to the depot
	MagazineSteals    atomic.Uint64 // exhaustion-path grabs from a sibling magazine
	BusyWaits         atomic.Uint64 // faults that blocked on a busy page
	AllocRaces        atomic.Uint64 // allocations that lost an install race
	ShardRetries      atomic.Uint64 // shard locks retried after identity change
	PageoutSkips      atomic.Uint64 // stale pageout candidates skipped on revalidation
	ObjectsCreated    atomic.Uint64
	ObjectsTerminated atomic.Uint64
	ShadowsCreated    atomic.Uint64
	ShadowsCollapsed  atomic.Uint64
	CacheRevives      atomic.Uint64
	MapHintHits       atomic.Uint64
	MapHintMisses     atomic.Uint64 // lookups that fell through to the index
	MapLookups        atomic.Uint64
	FaultRetries      atomic.Uint64 // faults restarted after a map version change
	ShareMapsMade     atomic.Uint64
	PagerTimeouts     atomic.Uint64 // pager conversations that exhausted the deadline
	PagerRetries      atomic.Uint64 // pager calls reissued after a retryable error
	PagerErrors       atomic.Uint64 // pager calls that returned an error (excl. unavailable)
	PagerFallbacks    atomic.Uint64 // failures degraded per the object's fallback policy
	PagerFlightJoins  atomic.Uint64 // faulters that joined an in-flight pager request
	PagerAbandons     atomic.Uint64 // faulters whose context fired while a request was in flight
	PageoutWriteFails atomic.Uint64 // DataWrite failures that kept the page dirty and resident
	PagerRoundTrips   atomic.Uint64 // DataRequest conversations issued (clustered or single)
	ClusterExtras     atomic.Uint64 // readahead pages installed beyond the faulting page
	PageoutRuns       atomic.Uint64 // DataWrite conversations issued by the pageout daemon
	PageoutRunPages   atomic.Uint64 // dirty pages carried by those DataWrites
	SpanPromotions    atomic.Uint64 // whole-span EnterRange promotions driven by faults

	// Tiered-paging counters. The Ztier* counters are bumped by the
	// compressed swap tier (internal/pager/ztier) when it is wired to this
	// kernel's Stats; the Tier* and SwapZeroPages counters by the kernel
	// itself.
	ZtierHits            atomic.Uint64 // DataRequests served from the compressed pool
	ZtierMisses          atomic.Uint64 // DataRequests that fell through to the backing tier
	ZtierStoredBytes     atomic.Uint64 // uncompressed bytes accepted into the pool (cumulative)
	ZtierCompressedBytes atomic.Uint64 // compressed bytes those stores occupied (cumulative)
	ZtierEvictions       atomic.Uint64 // blobs written back to the backing tier by the pool
	ZtierBypasses        atomic.Uint64 // pages routed straight to the backing tier (incompressible or cold)
	TierPromotions       atomic.Uint64 // auto-tier objects pinned hot by refault pressure
	TierDemotions        atomic.Uint64 // auto-tier objects demoted cold (eviction stream, no refaults)
	SwapZeroPages        atomic.Uint64 // all-zero pages the default pager elided to a sentinel
}

// Stats returns the kernel's counters.
func (k *Kernel) Stats() *Stats { return &k.stats }

// StatsSnapshot is Stats with every counter captured into a plain field.
// Field set and order mirror Stats exactly (enforced by a reflection test).
type StatsSnapshot struct {
	Faults            uint64
	ZeroFillFaults    uint64
	CowFaults         uint64
	ReactivateHits    uint64
	Pageins           uint64
	Pageouts          uint64
	PageoutsWanted    uint64
	PageoutWakes      uint64
	PageoutScanJoins  uint64
	PagesAllocated    uint64
	PagesFreed        uint64
	MagazineHits      uint64
	DepotRefills      uint64
	DepotDrains       uint64
	MagazineSteals    uint64
	BusyWaits         uint64
	AllocRaces        uint64
	ShardRetries      uint64
	PageoutSkips      uint64
	ObjectsCreated    uint64
	ObjectsTerminated uint64
	ShadowsCreated    uint64
	ShadowsCollapsed  uint64
	CacheRevives      uint64
	MapHintHits       uint64
	MapHintMisses     uint64
	MapLookups        uint64
	FaultRetries      uint64
	ShareMapsMade     uint64
	PagerTimeouts     uint64
	PagerRetries      uint64
	PagerErrors       uint64
	PagerFallbacks    uint64
	PagerFlightJoins  uint64
	PagerAbandons     uint64
	PageoutWriteFails uint64
	PagerRoundTrips   uint64
	ClusterExtras     uint64
	PageoutRuns       uint64
	PageoutRunPages   uint64
	SpanPromotions    uint64

	ZtierHits            uint64
	ZtierMisses          uint64
	ZtierStoredBytes     uint64
	ZtierCompressedBytes uint64
	ZtierEvictions       uint64
	ZtierBypasses        uint64
	TierPromotions       uint64
	TierDemotions        uint64
	SwapZeroPages        uint64
}

// Snapshot captures every counter at once into a plain struct. Use this —
// not a sequence of individual Load calls — whenever more than one counter
// feeds a decision or an assertion: reading live atomics one by one while
// daemons run yields torn cross-counter views (a pagein counted but not
// yet its round trip), which is exactly the flakiness that breaks
// "replayed stats == recorded stats". The snapshot itself is not an atomic
// cut either (Go offers none across 50 counters), but it is taken at one
// point in the code, so quiesced kernels — and record/replay, which only
// snapshots after the event stream is complete — get a stable view.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Faults:            s.Faults.Load(),
		ZeroFillFaults:    s.ZeroFillFaults.Load(),
		CowFaults:         s.CowFaults.Load(),
		ReactivateHits:    s.ReactivateHits.Load(),
		Pageins:           s.Pageins.Load(),
		Pageouts:          s.Pageouts.Load(),
		PageoutsWanted:    s.PageoutsWanted.Load(),
		PageoutWakes:      s.PageoutWakes.Load(),
		PageoutScanJoins:  s.PageoutScanJoins.Load(),
		PagesAllocated:    s.PagesAllocated.Load(),
		PagesFreed:        s.PagesFreed.Load(),
		MagazineHits:      s.MagazineHits.Load(),
		DepotRefills:      s.DepotRefills.Load(),
		DepotDrains:       s.DepotDrains.Load(),
		MagazineSteals:    s.MagazineSteals.Load(),
		BusyWaits:         s.BusyWaits.Load(),
		AllocRaces:        s.AllocRaces.Load(),
		ShardRetries:      s.ShardRetries.Load(),
		PageoutSkips:      s.PageoutSkips.Load(),
		ObjectsCreated:    s.ObjectsCreated.Load(),
		ObjectsTerminated: s.ObjectsTerminated.Load(),
		ShadowsCreated:    s.ShadowsCreated.Load(),
		ShadowsCollapsed:  s.ShadowsCollapsed.Load(),
		CacheRevives:      s.CacheRevives.Load(),
		MapHintHits:       s.MapHintHits.Load(),
		MapHintMisses:     s.MapHintMisses.Load(),
		MapLookups:        s.MapLookups.Load(),
		FaultRetries:      s.FaultRetries.Load(),
		ShareMapsMade:     s.ShareMapsMade.Load(),
		PagerTimeouts:     s.PagerTimeouts.Load(),
		PagerRetries:      s.PagerRetries.Load(),
		PagerErrors:       s.PagerErrors.Load(),
		PagerFallbacks:    s.PagerFallbacks.Load(),
		PagerFlightJoins:  s.PagerFlightJoins.Load(),
		PagerAbandons:     s.PagerAbandons.Load(),
		PageoutWriteFails: s.PageoutWriteFails.Load(),
		PagerRoundTrips:   s.PagerRoundTrips.Load(),
		ClusterExtras:     s.ClusterExtras.Load(),
		PageoutRuns:       s.PageoutRuns.Load(),
		PageoutRunPages:   s.PageoutRunPages.Load(),
		SpanPromotions:    s.SpanPromotions.Load(),

		ZtierHits:            s.ZtierHits.Load(),
		ZtierMisses:          s.ZtierMisses.Load(),
		ZtierStoredBytes:     s.ZtierStoredBytes.Load(),
		ZtierCompressedBytes: s.ZtierCompressedBytes.Load(),
		ZtierEvictions:       s.ZtierEvictions.Load(),
		ZtierBypasses:        s.ZtierBypasses.Load(),
		TierPromotions:       s.TierPromotions.Load(),
		TierDemotions:        s.TierDemotions.Load(),
		SwapZeroPages:        s.SwapZeroPages.Load(),
	}
}

// Statistics is the snapshot returned by vm_statistics (Table 2-1).
type Statistics struct {
	PageSize         uint64
	FreeCount        int
	ActiveCount      int
	InactiveCount    int
	WireCount        int
	Faults           uint64
	ZeroFillFaults   uint64
	CowFaults        uint64
	Pageins          uint64
	Pageouts         uint64
	Reactivations    uint64
	ObjectCacheLen   int
	ShadowsCreated   uint64
	ShadowsCollapsed uint64
	BusyWaits        uint64
	AllocRaces       uint64
	ShardRetries     uint64
	PageoutSkips     uint64
	PageoutWakes     uint64
	PageoutScanJoins uint64
	MagazineHits     uint64
	DepotRefills     uint64
	DepotDrains      uint64
	MagazineSteals   uint64
	MapHintHits      uint64
	MapHintMisses    uint64
	FaultRetries     uint64
	PagerTimeouts    uint64
	PagerRetries     uint64
	PagerErrors      uint64
	PagerFallbacks   uint64
	PagerFlightJoins uint64
	PagerAbandons    uint64
	PagerRoundTrips  uint64
	ClusterExtras    uint64
	PageoutRuns      uint64
	PageoutRunPages  uint64
	SpanPromotions   uint64

	ZtierHits            uint64
	ZtierMisses          uint64
	ZtierStoredBytes     uint64
	ZtierCompressedBytes uint64
	ZtierEvictions       uint64
	ZtierBypasses        uint64
	TierPromotions       uint64
	TierDemotions        uint64
	SwapZeroPages        uint64
}

// VMStatistics implements vm_statistics: statistics about the use of
// memory by the system.
func (k *Kernel) VMStatistics() Statistics {
	wired := 0
	for _, p := range k.pages {
		if p.wireCount.Load() > 0 {
			wired++
		}
	}
	snap := k.stats.Snapshot()
	return Statistics{
		PageSize:      k.pageSize,
		FreeCount:     k.FreeCount(),
		ActiveCount:   k.ActiveCount(),
		InactiveCount: k.InactiveCount(),
		WireCount:     wired,

		Faults:           snap.Faults,
		ZeroFillFaults:   snap.ZeroFillFaults,
		CowFaults:        snap.CowFaults,
		Pageins:          snap.Pageins,
		Pageouts:         snap.Pageouts,
		Reactivations:    snap.ReactivateHits,
		ObjectCacheLen:   k.CachedObjects(),
		ShadowsCreated:   snap.ShadowsCreated,
		ShadowsCollapsed: snap.ShadowsCollapsed,
		BusyWaits:        snap.BusyWaits,
		AllocRaces:       snap.AllocRaces,
		ShardRetries:     snap.ShardRetries,
		PageoutSkips:     snap.PageoutSkips,
		PageoutWakes:     snap.PageoutWakes,
		PageoutScanJoins: snap.PageoutScanJoins,
		MagazineHits:     snap.MagazineHits,
		DepotRefills:     snap.DepotRefills,
		DepotDrains:      snap.DepotDrains,
		MagazineSteals:   snap.MagazineSteals,
		MapHintHits:      snap.MapHintHits,
		MapHintMisses:    snap.MapHintMisses,
		FaultRetries:     snap.FaultRetries,
		PagerTimeouts:    snap.PagerTimeouts,
		PagerRetries:     snap.PagerRetries,
		PagerErrors:      snap.PagerErrors,
		PagerFallbacks:   snap.PagerFallbacks,
		PagerFlightJoins: snap.PagerFlightJoins,
		PagerAbandons:    snap.PagerAbandons,
		PagerRoundTrips:  snap.PagerRoundTrips,
		ClusterExtras:    snap.ClusterExtras,
		PageoutRuns:      snap.PageoutRuns,
		PageoutRunPages:  snap.PageoutRunPages,
		SpanPromotions:   snap.SpanPromotions,

		ZtierHits:            snap.ZtierHits,
		ZtierMisses:          snap.ZtierMisses,
		ZtierStoredBytes:     snap.ZtierStoredBytes,
		ZtierCompressedBytes: snap.ZtierCompressedBytes,
		ZtierEvictions:       snap.ZtierEvictions,
		ZtierBypasses:        snap.ZtierBypasses,
		TierPromotions:       snap.TierPromotions,
		TierDemotions:        snap.TierDemotions,
		SwapZeroPages:        snap.SwapZeroPages,
	}
}
