package core

import "sync/atomic"

// Stats are the machine-independent VM counters, the basis of
// vm_statistics (Table 2-1).
type Stats struct {
	Faults            atomic.Uint64 // total vm_fault calls
	ZeroFillFaults    atomic.Uint64 // faults satisfied by zero fill
	CowFaults         atomic.Uint64 // faults that copied a page
	ReactivateHits    atomic.Uint64 // faults satisfied by a resident page
	Pageins           atomic.Uint64 // pages filled from a pager
	Pageouts          atomic.Uint64 // pages written to a pager
	PageoutsWanted    atomic.Uint64 // times free memory dipped below min
	PageoutWakes      atomic.Uint64 // demand wakeups delivered to the daemon
	PageoutScanJoins  atomic.Uint64 // scan requests that waited on an in-flight scan
	PagesAllocated    atomic.Uint64
	PagesFreed        atomic.Uint64
	MagazineHits      atomic.Uint64 // page grabs satisfied by the shard's own magazine
	DepotRefills      atomic.Uint64 // batched magazine refills from the depot
	DepotDrains       atomic.Uint64 // batched magazine drains back to the depot
	MagazineSteals    atomic.Uint64 // exhaustion-path grabs from a sibling magazine
	BusyWaits         atomic.Uint64 // faults that blocked on a busy page
	AllocRaces        atomic.Uint64 // allocations that lost an install race
	ShardRetries      atomic.Uint64 // shard locks retried after identity change
	PageoutSkips      atomic.Uint64 // stale pageout candidates skipped on revalidation
	ObjectsCreated    atomic.Uint64
	ObjectsTerminated atomic.Uint64
	ShadowsCreated    atomic.Uint64
	ShadowsCollapsed  atomic.Uint64
	CacheRevives      atomic.Uint64
	MapHintHits       atomic.Uint64
	MapHintMisses     atomic.Uint64 // lookups that fell through to the index
	MapLookups        atomic.Uint64
	FaultRetries      atomic.Uint64 // faults restarted after a map version change
	ShareMapsMade     atomic.Uint64
	PagerTimeouts     atomic.Uint64 // pager conversations that exhausted the deadline
	PagerRetries      atomic.Uint64 // pager calls reissued after a retryable error
	PagerErrors       atomic.Uint64 // pager calls that returned an error (excl. unavailable)
	PagerFallbacks    atomic.Uint64 // failures degraded per the object's fallback policy
	PagerFlightJoins  atomic.Uint64 // faulters that joined an in-flight pager request
	PagerAbandons     atomic.Uint64 // faulters whose context fired while a request was in flight
	PageoutWriteFails atomic.Uint64 // DataWrite failures that kept the page dirty and resident
	PagerRoundTrips   atomic.Uint64 // DataRequest conversations issued (clustered or single)
	ClusterExtras     atomic.Uint64 // readahead pages installed beyond the faulting page
	PageoutRuns       atomic.Uint64 // DataWrite conversations issued by the pageout daemon
	PageoutRunPages   atomic.Uint64 // dirty pages carried by those DataWrites
	SpanPromotions    atomic.Uint64 // whole-span EnterRange promotions driven by faults

	// Tiered-paging counters. The Ztier* counters are bumped by the
	// compressed swap tier (internal/pager/ztier) when it is wired to this
	// kernel's Stats; the Tier* and SwapZeroPages counters by the kernel
	// itself.
	ZtierHits            atomic.Uint64 // DataRequests served from the compressed pool
	ZtierMisses          atomic.Uint64 // DataRequests that fell through to the backing tier
	ZtierStoredBytes     atomic.Uint64 // uncompressed bytes accepted into the pool (cumulative)
	ZtierCompressedBytes atomic.Uint64 // compressed bytes those stores occupied (cumulative)
	ZtierEvictions       atomic.Uint64 // blobs written back to the backing tier by the pool
	ZtierBypasses        atomic.Uint64 // pages routed straight to the backing tier (incompressible or cold)
	TierPromotions       atomic.Uint64 // auto-tier objects pinned hot by refault pressure
	TierDemotions        atomic.Uint64 // auto-tier objects demoted cold (eviction stream, no refaults)
	SwapZeroPages        atomic.Uint64 // all-zero pages the default pager elided to a sentinel
}

// Stats returns the kernel's counters.
func (k *Kernel) Stats() *Stats { return &k.stats }

// Statistics is the snapshot returned by vm_statistics (Table 2-1).
type Statistics struct {
	PageSize         uint64
	FreeCount        int
	ActiveCount      int
	InactiveCount    int
	WireCount        int
	Faults           uint64
	ZeroFillFaults   uint64
	CowFaults        uint64
	Pageins          uint64
	Pageouts         uint64
	Reactivations    uint64
	ObjectCacheLen   int
	ShadowsCreated   uint64
	ShadowsCollapsed uint64
	BusyWaits        uint64
	AllocRaces       uint64
	ShardRetries     uint64
	PageoutSkips     uint64
	PageoutWakes     uint64
	PageoutScanJoins uint64
	MagazineHits     uint64
	DepotRefills     uint64
	DepotDrains      uint64
	MagazineSteals   uint64
	MapHintHits      uint64
	MapHintMisses    uint64
	FaultRetries     uint64
	PagerTimeouts    uint64
	PagerRetries     uint64
	PagerErrors      uint64
	PagerFallbacks   uint64
	PagerFlightJoins uint64
	PagerAbandons    uint64
	PagerRoundTrips  uint64
	ClusterExtras    uint64
	PageoutRuns      uint64
	PageoutRunPages  uint64
	SpanPromotions   uint64

	ZtierHits            uint64
	ZtierMisses          uint64
	ZtierStoredBytes     uint64
	ZtierCompressedBytes uint64
	ZtierEvictions       uint64
	ZtierBypasses        uint64
	TierPromotions       uint64
	TierDemotions        uint64
	SwapZeroPages        uint64
}

// VMStatistics implements vm_statistics: statistics about the use of
// memory by the system.
func (k *Kernel) VMStatistics() Statistics {
	wired := 0
	for _, p := range k.pages {
		if p.wireCount.Load() > 0 {
			wired++
		}
	}
	s := Statistics{
		PageSize:      k.pageSize,
		FreeCount:     k.FreeCount(),
		ActiveCount:   k.ActiveCount(),
		InactiveCount: k.InactiveCount(),
		WireCount:     wired,
	}
	s.Faults = k.stats.Faults.Load()
	s.ZeroFillFaults = k.stats.ZeroFillFaults.Load()
	s.CowFaults = k.stats.CowFaults.Load()
	s.Pageins = k.stats.Pageins.Load()
	s.Pageouts = k.stats.Pageouts.Load()
	s.Reactivations = k.stats.ReactivateHits.Load()
	s.ObjectCacheLen = k.CachedObjects()
	s.ShadowsCreated = k.stats.ShadowsCreated.Load()
	s.ShadowsCollapsed = k.stats.ShadowsCollapsed.Load()
	s.BusyWaits = k.stats.BusyWaits.Load()
	s.AllocRaces = k.stats.AllocRaces.Load()
	s.ShardRetries = k.stats.ShardRetries.Load()
	s.PageoutSkips = k.stats.PageoutSkips.Load()
	s.PageoutWakes = k.stats.PageoutWakes.Load()
	s.PageoutScanJoins = k.stats.PageoutScanJoins.Load()
	s.MagazineHits = k.stats.MagazineHits.Load()
	s.DepotRefills = k.stats.DepotRefills.Load()
	s.DepotDrains = k.stats.DepotDrains.Load()
	s.MagazineSteals = k.stats.MagazineSteals.Load()
	s.MapHintHits = k.stats.MapHintHits.Load()
	s.MapHintMisses = k.stats.MapHintMisses.Load()
	s.FaultRetries = k.stats.FaultRetries.Load()
	s.PagerTimeouts = k.stats.PagerTimeouts.Load()
	s.PagerRetries = k.stats.PagerRetries.Load()
	s.PagerErrors = k.stats.PagerErrors.Load()
	s.PagerFallbacks = k.stats.PagerFallbacks.Load()
	s.PagerFlightJoins = k.stats.PagerFlightJoins.Load()
	s.PagerAbandons = k.stats.PagerAbandons.Load()
	s.PagerRoundTrips = k.stats.PagerRoundTrips.Load()
	s.ClusterExtras = k.stats.ClusterExtras.Load()
	s.PageoutRuns = k.stats.PageoutRuns.Load()
	s.PageoutRunPages = k.stats.PageoutRunPages.Load()
	s.SpanPromotions = k.stats.SpanPromotions.Load()
	s.ZtierHits = k.stats.ZtierHits.Load()
	s.ZtierMisses = k.stats.ZtierMisses.Load()
	s.ZtierStoredBytes = k.stats.ZtierStoredBytes.Load()
	s.ZtierCompressedBytes = k.stats.ZtierCompressedBytes.Load()
	s.ZtierEvictions = k.stats.ZtierEvictions.Load()
	s.ZtierBypasses = k.stats.ZtierBypasses.Load()
	s.TierPromotions = k.stats.TierPromotions.Load()
	s.TierDemotions = k.stats.TierDemotions.Load()
	s.SwapZeroPages = k.stats.SwapZeroPages.Load()
	return s
}
