package core

import (
	"context"
	"errors"
	"fmt"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/trace"
	"machvm/internal/vmtypes"
)

// ErrAccessFault is returned when a memory access cannot be resolved even
// after fault handling.
var ErrAccessFault = errors.New("vm: unresolvable memory access")

// maxFaultRetries bounds the access-fault-retry loop. Two retries suffice
// for every legitimate sequence (e.g. the NS32082's misreported write:
// translation fault serviced as read, then protection fault corrected to
// write); more indicates a kernel bug.
const maxFaultRetries = 8

// AccessBytes performs a user memory access of len(buf) bytes at va in
// map m on the given CPU: the full hardware path — TLB probe, table walk,
// fault, machine-dependent fault-report correction, retry. write selects
// load or store. It is the simulation's equivalent of user instructions
// touching memory.
func (k *Kernel) AccessBytes(cpu *hw.CPU, m *Map, va vmtypes.VA, buf []byte, write bool) error {
	return k.AccessBytesContext(context.Background(), cpu, m, va, buf, write)
}

// AccessBytesContext is AccessBytes with caller-controlled cancellation:
// an access stuck faulting against a slow pager returns when ctx fires.
func (k *Kernel) AccessBytesContext(ctx context.Context, cpu *hw.CPU, m *Map, va vmtypes.VA, buf []byte, write bool) error {
	l, top := k.traceBegin()
	err := k.accessBytes(ctx, cpu, m, va, buf, write)
	if l != nil {
		if top {
			e := trace.Event{
				Map: m.id, CPU: -1, Addr: uint64(va),
				Size: uint64(len(buf)), Flag: write, Err: traceErr(err),
			}
			if cpu != nil {
				e.CPU = int64(cpu.ID)
			}
			if write {
				e.Data = trace.FillOf(buf)
			}
			l.Append(k.traceEvent(trace.OpAccess, e))
		}
		l.EndOp()
	}
	return err
}

func (k *Kernel) accessBytes(ctx context.Context, cpu *hw.CPU, m *Map, va vmtypes.VA, buf []byte, write bool) error {
	access := vmtypes.ProtRead
	if write {
		access = vmtypes.ProtWrite
	}
	// Access completion is a batch boundary for the CPU's charge buffer:
	// everything the TLB probes, walks and faults below accumulate
	// locally is flushed to the global clock before returning.
	if cpu != nil {
		defer cpu.FlushCharges()
	}
	hwPage := uint64(k.machine.Mem.PageSize())
	done := 0
	for done < len(buf) {
		cur := uint64(va) + uint64(done)
		inPage := int(hwPage - cur%hwPage)
		n := len(buf) - done
		if n > inPage {
			n = inPage
		}
		frame, err := k.resolveAccess(ctx, cpu, m, vmtypes.VA(cur), access)
		if err != nil {
			return fmt.Errorf("%w at %#x: %w", ErrAccessFault, cur, err)
		}
		fb := k.machine.Mem.Frame(frame)
		off := int(cur % hwPage)
		k.machine.Mem.LockFrame(frame)
		if write {
			copy(fb[off:off+n], buf[done:done+n])
		} else {
			copy(buf[done:done+n], fb[off:off+n])
		}
		k.machine.Mem.UnlockFrame(frame)
		done += n
	}
	return nil
}

// resolveAccess translates one access, servicing faults until it succeeds.
// Fault absorbs concurrent-map-mutation restarts internally (the version
// revalidation of DESIGN.md §7), so every iteration of this loop that
// returns nil made real progress: the bound only has to cover legitimate
// refault sequences, not mutator interference.
func (k *Kernel) resolveAccess(ctx context.Context, cpu *hw.CPU, m *Map, va vmtypes.VA, access vmtypes.Prot) (vmtypes.PFN, error) {
	for try := 0; try < maxFaultRetries; try++ {
		res := pmap.Access(k.mod, cpu, m.pm, va, access)
		if res.Fault == vmtypes.FaultNone {
			return res.PFN, nil
		}
		// The machine reports the fault as its MMU would (possibly
		// wrongly — the NS32082 bug); the machine-dependent hook
		// reconstructs the access the handler must service.
		serviced := res.Reported
		if res.Fault == vmtypes.FaultProtection {
			serviced = k.mod.CorrectFaultAccess(res.Reported, res.MappingProt)
		}
		if err := k.faultContextOn(ctx, cpu, m, va, serviced); err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("access did not settle after %d faults", maxFaultRetries)
}

// Touch provokes a single access of the given type at va (fault benchmark
// helper).
func (k *Kernel) Touch(cpu *hw.CPU, m *Map, va vmtypes.VA, write bool) error {
	var b [1]byte
	return k.AccessBytes(cpu, m, va, b[:], write)
}

// TouchContext is Touch with caller-controlled cancellation.
func (k *Kernel) TouchContext(ctx context.Context, cpu *hw.CPU, m *Map, va vmtypes.VA, write bool) error {
	var b [1]byte
	return k.AccessBytesContext(ctx, cpu, m, va, b[:], write)
}

// CopyOut implements the data movement of vm_write: copy the contents of
// buf into the task address space at va, as the kernel (not through a
// CPU's TLB — the kernel's own mappings are always complete).
func (k *Kernel) CopyOut(m *Map, va vmtypes.VA, buf []byte) error {
	return k.kernelCopy(m, va, buf, true)
}

// CopyIn implements the data movement of vm_read: copy bytes out of the
// task address space into buf.
func (k *Kernel) CopyIn(m *Map, va vmtypes.VA, buf []byte) error {
	return k.kernelCopy(m, va, buf, false)
}

func (k *Kernel) kernelCopy(m *Map, va vmtypes.VA, buf []byte, write bool) error {
	access := vmtypes.ProtRead
	if write {
		access = vmtypes.ProtWrite
	}
	hwPage := uint64(k.machine.Mem.PageSize())
	done := 0
	for done < len(buf) {
		cur := uint64(va) + uint64(done)
		inPage := int(hwPage - cur%hwPage)
		n := len(buf) - done
		if n > inPage {
			n = inPage
		}
		var frame vmtypes.PFN
		resolved := false
		for try := 0; try < maxFaultRetries; try++ {
			// The kernel consults the pmap directly (pmap_extract);
			// on a miss it drives the same fault path a user access
			// would.
			if pfn, ok := m.pm.Extract(vmtypes.VA(cur)); ok {
				if !write || m.mappingWritable(vmtypes.VA(cur)) {
					frame = pfn
					resolved = true
					break
				}
			}
			if err := k.Fault(m, vmtypes.VA(cur), access); err != nil {
				return err
			}
		}
		if !resolved {
			return ErrAccessFault
		}
		fb := k.machine.Mem.Frame(frame)
		off := int(cur % hwPage)
		k.machine.ChargeKB(k.machine.Cost.CopyPerKB, n)
		k.machine.Mem.LockFrame(frame)
		if write {
			copy(fb[off:off+n], buf[done:done+n])
		} else {
			copy(buf[done:done+n], fb[off:off+n])
		}
		k.machine.Mem.UnlockFrame(frame)
		k.mod.MarkAccess(frame, write)
		done += n
	}
	return nil
}

// mappingWritable reports whether the hardware mapping at va permits
// writes (used by kernel copies to respect copy-on-write).
func (m *Map) mappingWritable(va vmtypes.VA) bool {
	pfn, prot, ok := m.pm.Walk(va)
	_ = pfn
	return ok && prot.Allows(vmtypes.ProtWrite)
}

// VMRead implements vm_read (Table 2-1): read the contents of a region of
// a task's address space.
func (k *Kernel) VMRead(m *Map, addr vmtypes.VA, size uint64) ([]byte, error) {
	l, top := k.traceBegin()
	buf, err := k.vmRead(m, addr, size)
	if l != nil {
		if top {
			l.Append(k.traceEvent(trace.OpVMRead, trace.Event{
				Map: m.id, Addr: uint64(addr), Size: size,
				Ret: uint64(len(buf)), Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return buf, err
}

func (k *Kernel) vmRead(m *Map, addr vmtypes.VA, size uint64) ([]byte, error) {
	k.machine.Charge(k.machine.Cost.Syscall)
	buf := make([]byte, size)
	if err := k.CopyIn(m, addr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// VMWrite implements vm_write (Table 2-1): write the contents of a region
// of a task's address space.
func (k *Kernel) VMWrite(m *Map, addr vmtypes.VA, data []byte) error {
	l, top := k.traceBegin()
	err := k.vmWrite(m, addr, data)
	if l != nil {
		if top {
			l.Append(k.traceEvent(trace.OpVMWrite, trace.Event{
				Map: m.id, Addr: uint64(addr), Size: uint64(len(data)),
				Data: trace.FillOf(data), Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return err
}

func (k *Kernel) vmWrite(m *Map, addr vmtypes.VA, data []byte) error {
	k.machine.Charge(k.machine.Cost.Syscall)
	return k.CopyOut(m, addr, data)
}

// Activate makes this map's address space current on cpu (pmap_activate),
// recorded as a trace input so replay binds the same space to the same
// CPU. Sharing and transit maps have no pmap and no-op.
func (m *Map) Activate(cpu *hw.CPU) {
	l, top := m.k.traceBegin()
	if m.pm != nil {
		m.pm.Activate(cpu)
	}
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpActivate, trace.Event{
				Map: m.id, CPU: int64(cpu.ID),
			}))
		}
		l.EndOp()
	}
}

// Deactivate releases this map's address space from cpu (pmap_deactivate).
func (m *Map) Deactivate(cpu *hw.CPU) {
	l, top := m.k.traceBegin()
	if m.pm != nil {
		m.pm.Deactivate(cpu)
	}
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpDeactivate, trace.Event{
				Map: m.id, CPU: int64(cpu.ID),
			}))
		}
		l.EndOp()
	}
}
