package core

// Runtime structural invariant checkers. These are the §3.2 map-structure
// and resident-page accounting checks that the white-box tests have always
// enforced, exported as methods returning violation descriptions instead
// of failing a *testing.T, so the SLO layer and the fault/failover matrix
// can assert "zero invariant violations" on live worlds. The caller must
// have quiesced the kernel (no concurrent faulters or daemon); locks are
// still taken piecewise so the checks are usable right after a concurrent
// phase ends.

import (
	"fmt"

	"machvm/internal/vmtypes"
)

// CheckInvariants verifies the map's §3.2 structure: a sorted,
// non-overlapping entry list whose accounting matches, with a consistent
// treap index. It returns one description per violation, nil when clean.
func (m *Map) CheckInvariants() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var v []string
	bad := func(format string, args ...any) {
		v = append(v, "map: "+fmt.Sprintf(format, args...))
	}
	var prev *MapEntry
	n := 0
	var size uint64
	for e := m.head; e != nil; e = e.next {
		n++
		size += e.Span()
		if e.start >= e.end {
			bad("entry [%x,%x) is empty or inverted", e.start, e.end)
		}
		if e.start < m.min || e.end > m.max {
			bad("entry [%x,%x) outside map bounds [%x,%x)", e.start, e.end, m.min, m.max)
		}
		if prev != nil {
			if prev.next != e || e.prev != prev {
				bad("list links corrupted at [%x,%x)", e.start, e.end)
			}
			if prev.end > e.start {
				bad("entries overlap or unsorted: [%x,%x) then [%x,%x)", prev.start, prev.end, e.start, e.end)
			}
		} else if e.prev != nil {
			bad("head has a prev")
		}
		if e.object != nil && e.submap != nil {
			bad("entry [%x,%x) has both object and submap", e.start, e.end)
		}
		if !e.maxProt.Allows(e.prot) {
			bad("current prot %v exceeds max %v", e.prot, e.maxProt)
		}
		prev = e
	}
	if prev != m.tail {
		bad("tail link corrupted")
	}
	if n != m.nentries {
		bad("nentries = %d, counted %d", m.nentries, n)
	}
	if size != m.sizeBytes {
		bad("sizeBytes = %d, counted %d", m.sizeBytes, size)
	}
	if h := m.hint.Load(); h != nil {
		found := false
		for e := m.head; e != nil; e = e.next {
			if e == h {
				found = true
				break
			}
		}
		if !found {
			bad("hint points at an unlinked entry")
		}
	}
	// The treap index must agree with the list: same membership, sorted
	// keys, heap-ordered priorities, and exact lookups for every entry.
	if got := m.countTreapChecked(m.root, nil, nil, &v); got != n {
		bad("treap holds %d entries, list holds %d", got, n)
	}
	for e := m.head; e != nil; e = e.next {
		found, _ := m.indexLookupLE(e.start)
		if found != e {
			bad("index lookup for [%x,%x) found the wrong entry", e.start, e.end)
		}
	}
	return v
}

// countTreapChecked walks the index checking BST key order and the
// max-heap priority invariant, appending violations and returning the
// node count.
func (m *Map) countTreapChecked(e *MapEntry, lo, hi *vmtypes.VA, v *[]string) int {
	if e == nil {
		return 0
	}
	if lo != nil && e.start < *lo || hi != nil && e.start >= *hi {
		*v = append(*v, fmt.Sprintf("map: treap key %x violates BST order", e.start))
	}
	if e.treeLeft != nil && e.treeLeft.treePrio > e.treePrio ||
		e.treeRight != nil && e.treeRight.treePrio > e.treePrio {
		*v = append(*v, fmt.Sprintf("map: treap priority heap violated at %x", e.start))
	}
	return 1 + m.countTreapChecked(e.treeLeft, lo, &e.start, v) +
		m.countTreapChecked(e.treeRight, &e.start, hi, v)
}

// CheckInvariants verifies the resident page table's three-way linkage —
// sharded hash, object lists, page queues — and the free-layer
// depot/magazine accounting. Returns one description per violation, nil
// when clean.
func (k *Kernel) CheckInvariants() []string {
	var v []string
	bad := func(format string, args ...any) {
		v = append(v, "kernel: "+fmt.Sprintf(format, args...))
	}
	// Every hashed page's identity agrees with its key, shard by shard.
	seen := map[*Object]int{}
	hashed := 0
	for i := range k.shards {
		s := &k.shards[i]
		s.mu.Lock()
		for key, p := range s.pages {
			obj, off, _, ok := p.identity()
			if !ok || obj != key.obj || off != key.offset {
				bad("hash entry disagrees with page identity")
			}
			if k.shardFor(key.obj, key.offset) != s {
				bad("page hashed into the wrong shard")
			}
			seen[obj]++
			hashed++
		}
		s.mu.Unlock()
	}
	// Queue counts are consistent and partition the pages.
	counts := map[int]int{}
	for _, p := range k.pages {
		counts[p.queue]++
		if _, _, _, ok := p.identity(); ok && (p.queue == queueFree || p.queue == queueMagazine) {
			bad("free page still belongs to an object")
		}
		if p.wireCount.Load() > 0 && p.queue != queueNone {
			bad("wired page on a pageable queue")
		}
	}
	if counts[queueActive] != k.ActiveCount() {
		bad("active count %d vs %d", counts[queueActive], k.ActiveCount())
	}
	if counts[queueInactive] != k.InactiveCount() {
		bad("inactive count %d vs %d", counts[queueInactive], k.InactiveCount())
	}
	// Free-layer invariant: every free page is on exactly one of depot or
	// magazine, and FreeCount() equals magazines + depot.
	freeListed := map[*Page]int{}
	k.depot.mu.Lock()
	depotWalk := 0
	for p := k.depot.q.head; p != nil; p = p.qNext {
		freeListed[p]++
		depotWalk++
		if p.queue != queueFree {
			bad("page on the depot has queue id %d", p.queue)
		}
	}
	if depotWalk != k.depot.q.count {
		bad("depot count %d, walked %d", k.depot.q.count, depotWalk)
	}
	k.depot.mu.Unlock()
	magWalk := 0
	for i := range k.magazines {
		mg := &k.magazines[i]
		mg.mu.Lock()
		walked := 0
		for p := mg.q.head; p != nil; p = p.qNext {
			freeListed[p]++
			walked++
			if p.queue != queueMagazine {
				bad("page in magazine %d has queue id %d", i, p.queue)
			}
			if int(p.mag) != i {
				bad("page in magazine %d is tagged for magazine %d", i, p.mag)
			}
		}
		if walked != mg.q.count {
			bad("magazine %d count %d, walked %d", i, mg.q.count, walked)
		}
		magWalk += walked
		mg.mu.Unlock()
	}
	for _, n := range freeListed {
		if n != 1 {
			bad("a page appears %d times across the free layer", n)
		}
	}
	if depotWalk != counts[queueFree] {
		bad("depot holds %d pages, queue ids say %d", depotWalk, counts[queueFree])
	}
	if magWalk != counts[queueMagazine] {
		bad("magazines hold %d pages, queue ids say %d", magWalk, counts[queueMagazine])
	}
	if depotWalk+magWalk != k.FreeCount() {
		bad("free count %d vs depot %d + magazines %d", k.FreeCount(), depotWalk, magWalk)
	}
	// Every non-free page with an identity is hashed exactly once.
	withIdent := 0
	for _, p := range k.pages {
		if _, _, _, ok := p.identity(); ok {
			withIdent++
		}
	}
	if withIdent != hashed {
		bad("%d pages hold an identity but %d are hashed", withIdent, hashed)
	}
	// Object resident counts match the hash, and the object lists agree.
	for obj, n := range seen {
		obj.mu.Lock()
		resident := obj.resident
		listed := 0
		for p := obj.pageList; p != nil; p = p.objNext {
			listed++
		}
		name := obj.name
		obj.mu.Unlock()
		if resident != n {
			bad("object %q resident=%d, hash says %d", name, resident, n)
		}
		if listed != n {
			bad("object %q lists %d pages, hash says %d", name, listed, n)
		}
	}
	return v
}
