package core

import (
	"time"

	"machvm/internal/vmtypes"
)

// The paging daemon (§3.1) maintains the allocation queues: it balances
// the active and inactive queues, reclaims clean inactive pages, and
// writes dirty ones back to their pagers. Before pageout I/O the mapping
// is first removed from every pmap and the deferred TLB flushes are forced
// to completion (pmap_update) — strategy (2) of §5.2: "the system first
// removes the mapping from any primary memory mapping data structures and
// then initiates pageout only after all referencing TLBs have been
// flushed."

// PageoutScan runs one pass of the paging daemon synchronously and returns
// the number of pages freed. It is also invoked from the allocator when
// free memory is exhausted.
func (k *Kernel) PageoutScan() int {
	freed := 0

	// Rebalance: keep roughly a third of non-free pages inactive so the
	// daemon has candidates.
	inactiveCount := k.InactiveCount()
	k.active.mu.Lock()
	wantInactive := (k.active.q.count + inactiveCount) / 3
	var toDeactivate []*Page
	for p := k.active.q.head; p != nil && inactiveCount+len(toDeactivate) < wantInactive; p = p.qNext {
		toDeactivate = append(toDeactivate, p)
	}
	k.active.mu.Unlock()
	for _, p := range toDeactivate {
		k.deactivatePage(p)
	}

	// Snapshot the inactive queue. The snapshot is advisory: pages can be
	// freed, reallocated to other objects, rewired or marked busy while
	// the daemon works through it, so reclaimPage revalidates every
	// candidate under its shard lock before committing to pageout.
	k.inactive.mu.Lock()
	candidates := make([]*Page, 0, k.inactive.q.count)
	for p := k.inactive.q.head; p != nil; p = p.qNext {
		candidates = append(candidates, p)
	}
	k.inactive.mu.Unlock()

	var flushed bool
	for _, p := range candidates {
		if k.FreeCount() >= k.freeTarget {
			break
		}
		if k.isReferenced(p) {
			// Recently used: give it another chance.
			k.activatePage(p)
			k.stats.ReactivateHits.Add(1)
			continue
		}
		if k.reclaimPage(p, &flushed) {
			freed++
		}
	}
	return freed
}

// reclaimPage tries to free one inactive page, writing it to its pager
// first if dirty. flushed tracks whether a pmap_update has been issued for
// this batch of removals. Candidates arrive from a lock-free queue
// snapshot: identity, busy, wiring and queue membership may all have
// changed since the snapshot, so everything is revalidated under the shard
// lock before the page is committed to pageout.
func (k *Kernel) reclaimPage(p *Page, flushed *bool) bool {
	id := p.ident.Load()
	if id == nil {
		k.stats.PageoutSkips.Add(1)
		return false
	}
	obj := id.obj
	// Lock the object without violating the object→shard lock order:
	// try-lock, and skip the page on contention (as Mach's daemon does).
	if !obj.mu.TryLock() {
		k.stats.PageoutSkips.Add(1)
		return false
	}
	defer obj.mu.Unlock()

	s, cur := k.lockPage(p)
	if s == nil {
		k.stats.PageoutSkips.Add(1)
		return false
	}
	// Revalidate after the race window.
	if cur.obj != obj || p.busy || p.wireCount.Load() > 0 || p.queue != queueInactive {
		s.mu.Unlock()
		k.stats.PageoutSkips.Add(1)
		return false
	}
	p.busy = true
	dirty := p.dirty
	offset := cur.offset
	s.mu.Unlock()

	// Remove all mappings; with the deferred strategy the invalidations
	// sit in per-CPU queues until pmap_update forces them — which must
	// happen before the page's frame is reused or written out.
	k.removeAllMappings(p)
	if !*flushed {
		k.mod.Update()
		*flushed = true
	}

	dirty = dirty || k.isModified(p)
	if dirty {
		pager := obj.pager
		if pager == nil {
			// Internal object: the default pager takes the data
			// ("page-out is done to a default pager").
			pager = k.swap
			obj.pager = pager
			obj.mu.Unlock()
			pager.Init(obj)
			obj.mu.Lock()
		}
		data := k.getPageBuf()
		k.snapshotPage(p, data)
		obj.pagingInProgress++
		obj.mu.Unlock()
		pager.DataWrite(obj, offset, data)
		obj.mu.Lock()
		obj.pagingInProgress--
		k.putPageBuf(data)
		k.clearModify(p)
		k.stats.Pageouts.Add(1)
	}

	k.freePageObjLocked(p)
	return true
}

// StartPageoutDaemon runs the paging daemon in the background until stop
// is closed. Tests and benchmarks usually call PageoutScan directly for
// determinism; long-running examples use the daemon.
func (k *Kernel) StartPageoutDaemon(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if k.FreeCount() < k.freeMin {
					k.PageoutScan()
				}
			}
		}
	}()
}

// Wire faults in and wires every page of [addr, addr+size) in the map so
// pageout cannot touch it (used for kernel-critical buffers; the paper's
// kernel mappings "must always be kept complete and accurate").
func (m *Map) Wire(addr vmtypes.VA, size uint64) error {
	k := m.k
	size = k.roundPage(size)
	if err := m.checkRange(addr, size); err != nil {
		return err
	}
	m.mu.Lock()
	e, hit := m.lookupEntryLocked(addr)
	if !hit {
		m.mu.Unlock()
		return ErrInvalidAddress
	}
	m.clipStartLocked(e, addr)
	end := addr + vmtypes.VA(size)
	for e != nil && e.start < end {
		m.clipEndLocked(e, end)
		e.wired = true
		e = e.next
	}
	m.bumpVersion() // faults must pick up the wired attribute
	m.mu.Unlock()

	// Touch every page so it is resident and mapped wired.
	for va := addr; va < addr+vmtypes.VA(size); va += vmtypes.VA(k.pageSize) {
		if err := k.Fault(m, va, vmtypes.ProtRead); err != nil {
			return err
		}
		if p := m.residentPageAt(va); p != nil {
			k.wirePage(p)
		}
	}
	return nil
}

// Unwire releases wiring on [addr, addr+size).
func (m *Map) Unwire(addr vmtypes.VA, size uint64) error {
	k := m.k
	size = k.roundPage(size)
	if err := m.checkRange(addr, size); err != nil {
		return err
	}
	for va := addr; va < addr+vmtypes.VA(size); va += vmtypes.VA(k.pageSize) {
		if p := m.residentPageAt(va); p != nil {
			k.unwirePage(p)
		}
	}
	m.mu.Lock()
	e, hit := m.lookupEntryLocked(addr)
	if hit {
		m.clipStartLocked(e, addr)
		end := addr + vmtypes.VA(size)
		for e != nil && e.start < end {
			m.clipEndLocked(e, end)
			e.wired = false
			e = e.next
		}
		m.bumpVersion()
	}
	m.mu.Unlock()
	return nil
}

// residentPageAt resolves the resident page backing va, if any.
func (m *Map) residentPageAt(va vmtypes.VA) *Page {
	k := m.k
	pageAddr := vmtypes.VA(k.truncPage(uint64(va)))
	m.mu.RLock()
	defer m.mu.RUnlock()
	entry, hit := m.lookupEntryLocked(pageAddr)
	if !hit {
		return nil
	}
	obj := entry.object
	offset := entry.offset + uint64(pageAddr-entry.start)
	if entry.submap != nil {
		sm := entry.submap
		smOff := vmtypes.VA(entry.offset) + (pageAddr - entry.start)
		sm.mu.RLock()
		inner, ok := sm.lookupEntryLocked(smOff)
		if !ok || inner.object == nil {
			sm.mu.RUnlock()
			return nil
		}
		obj = inner.object
		offset = inner.offset + uint64(smOff-inner.start)
		sm.mu.RUnlock()
	}
	if obj == nil {
		return nil
	}
	// Walk the shadow chain without side effects.
	curOffset := k.truncPage(offset)
	for cur := obj; cur != nil; {
		if p := k.lookupPage(cur, curOffset, false); p != nil {
			return p
		}
		cur.mu.Lock()
		next := cur.shadow
		curOffset += cur.shadowOffset
		cur.mu.Unlock()
		cur = next
	}
	return nil
}
