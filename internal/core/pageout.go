package core

import (
	"sort"
	"time"

	"machvm/internal/trace"
	"machvm/internal/vmtypes"
)

// The paging daemon (§3.1) maintains the allocation queues: it balances
// the active and inactive queues, reclaims clean inactive pages, and
// writes dirty ones back to their pagers. Before pageout I/O the mapping
// is first removed from every pmap and the deferred TLB flushes are forced
// to completion (pmap_update) — strategy (2) of §5.2: "the system first
// removes the mapping from any primary memory mapping data structures and
// then initiates pageout only after all referencing TLBs have been
// flushed."

// pageoutBatch is the number of claimed victims whose pmap removals are
// amortized over one pmap_update before their I/O and frees proceed.
const pageoutBatch = 32

// scanFlight is one in-flight pageout scan. Scans are single-flight: a
// requester that finds one already running waits on done and shares its
// result instead of scanning concurrently (redundant scans over the same
// inactive queue reclaim nothing extra and can starve each other into
// spurious memory-exhaustion verdicts).
type scanFlight struct {
	done  chan struct{}
	freed int
}

// PageoutScan runs one pass of the paging daemon synchronously and returns
// the number of pages freed. It is also invoked from the allocator when
// free memory is exhausted. Concurrent calls coalesce into the scan
// already in flight and return its result.
func (k *Kernel) PageoutScan() int {
	l, top := k.traceBegin()
	freed := k.pageoutScanFlight()
	if l != nil {
		if top {
			l.Append(k.traceEvent(trace.OpScan, trace.Event{Ret: uint64(freed)}))
		}
		l.EndOp()
	}
	return freed
}

func (k *Kernel) pageoutScanFlight() int {
	k.scanMu.Lock()
	if f := k.scanFlight; f != nil {
		k.scanMu.Unlock()
		k.stats.PageoutScanJoins.Add(1)
		<-f.done
		return f.freed
	}
	f := &scanFlight{done: make(chan struct{})}
	k.scanFlight = f
	k.scanMu.Unlock()

	f.freed = k.pageoutScan()

	k.scanMu.Lock()
	k.scanFlight = nil
	k.scanMu.Unlock()
	close(f.done)
	return f.freed
}

// pageoutScan is the scan body (the single-flight leader runs it). Reclaim
// is two-phase per batch: claim up to pageoutBatch victims (revalidate,
// set busy, remove every hardware mapping), force ONE pmap_update for the
// whole batch, and only then start writing data out and freeing frames.
// The §5.2 invariant — pageout I/O begins only after every referencing TLB
// has been flushed — therefore holds for every page of the batch, while
// the flush cost stays amortized.
func (k *Kernel) pageoutScan() int {
	// Rebalance: keep roughly a third of non-free pages inactive so the
	// daemon has candidates.
	inactiveCount := k.InactiveCount()
	k.active.mu.Lock()
	wantInactive := (k.active.q.count + inactiveCount) / 3
	var toDeactivate []*Page
	for p := k.active.q.head; p != nil && inactiveCount+len(toDeactivate) < wantInactive; p = p.qNext {
		toDeactivate = append(toDeactivate, p)
	}
	k.active.mu.Unlock()
	for _, p := range toDeactivate {
		k.deactivatePage(p)
	}

	// Snapshot the inactive queue. The snapshot is advisory: pages can be
	// freed, reallocated to other objects, rewired or marked busy while
	// the daemon works through it, so claimPageout revalidates every
	// candidate under its shard lock before committing to pageout.
	k.inactive.mu.Lock()
	candidates := make([]*Page, 0, k.inactive.q.count)
	for p := k.inactive.q.head; p != nil; p = p.qNext {
		candidates = append(candidates, p)
	}
	k.inactive.mu.Unlock()

	freed := 0
	batch := make([]pageoutVictim, 0, pageoutBatch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		// Strategy (2) of §5.2: every victim's mappings are gone from
		// the pmaps; force the deferred per-CPU invalidations to
		// completion before any victim's frame is written out or reused.
		k.mod.Update()
		freed += k.finishPageoutBatch(batch)
		batch = batch[:0]
	}
	for _, p := range candidates {
		// Claimed-but-unflushed victims are as good as freed for the
		// watermark.
		if k.FreeCount()+len(batch) >= k.freeTarget {
			break
		}
		if k.isReferenced(p) {
			// Recently used: give it another chance.
			k.activatePage(p)
			k.stats.ReactivateHits.Add(1)
			continue
		}
		if v, ok := k.claimPageout(p); ok {
			batch = append(batch, v)
			if len(batch) >= pageoutBatch {
				flush()
			}
		}
	}
	flush()
	// The scan's outcome is an observation: replay regenerates the scan
	// (from an OpScan or from allocator pressure inside another op) and
	// must reclaim exactly as much at exactly the same virtual time.
	k.traceObserve(trace.EvScan, trace.Event{Ret: uint64(freed)})
	return freed
}

// pageoutVictim is one claimed page between its unmapping and its I/O or
// free: busy (so faulters wait, terminators block and collapses abort) but
// not yet flushed from every TLB.
type pageoutVictim struct {
	p      *Page
	obj    *Object
	offset uint64
	dirty  bool
}

// claimPageout revalidates one advisory candidate and commits it to
// pageout: busy is set and every hardware mapping removed. With the
// deferred shootdown strategy the invalidations still sit in per-CPU
// queues afterwards — the caller batches claims and issues one pmap_update
// before any victim's data is written out or its frame freed (§5.2).
// Candidates arrive from a lock-free queue snapshot: identity, busy,
// wiring and queue membership may all have changed since the snapshot, so
// everything is revalidated under the shard lock first.
func (k *Kernel) claimPageout(p *Page) (pageoutVictim, bool) {
	obj, _, _, ok := p.identity()
	if !ok {
		k.stats.PageoutSkips.Add(1)
		return pageoutVictim{}, false
	}
	// Lock the object without violating the object→shard lock order:
	// try-lock, and skip the page on contention (as Mach's daemon does).
	if !obj.mu.TryLock() {
		k.stats.PageoutSkips.Add(1)
		return pageoutVictim{}, false
	}
	defer obj.mu.Unlock()

	s, cur, curOff := k.lockPage(p)
	if s == nil {
		k.stats.PageoutSkips.Add(1)
		return pageoutVictim{}, false
	}
	// Revalidate after the race window.
	if cur != obj || p.busy || p.wireCount.Load() > 0 || p.queue != queueInactive {
		s.mu.Unlock()
		k.stats.PageoutSkips.Add(1)
		return pageoutVictim{}, false
	}
	p.busy = true
	v := pageoutVictim{p: p, obj: obj, offset: curOff, dirty: p.dirty}
	s.mu.Unlock()

	k.removeAllMappings(p)
	k.traceObserve(trace.EvReclaim, trace.Event{
		Obj: obj.ID(), Addr: curOff, Flag: v.dirty,
	})
	return v, true
}

// finishPageoutBatch disposes of a whole claimed batch after its
// pmap_update: clean victims are freed outright, dirty ones are coalesced
// into maximal runs of consecutive offsets within the same object and each
// run goes to the pager as ONE DataWrite — the pageout mirror of clustered
// fault-in. Sequentially dirtied memory therefore costs one pager
// conversation (one disk latency) per run instead of one per page.
// Returns the number of frames actually freed.
func (k *Kernel) finishPageoutBatch(batch []pageoutVictim) int {
	freed := 0
	var dirtyByObj map[*Object][]pageoutVictim
	for _, v := range batch {
		if v.dirty || k.isModified(v.p) {
			if dirtyByObj == nil {
				dirtyByObj = make(map[*Object][]pageoutVictim)
			}
			dirtyByObj[v.obj] = append(dirtyByObj[v.obj], v)
		} else {
			k.finishCleanVictim(v)
			freed++
		}
	}
	// Drain objects in stable (creation-order) ID order, never Go map
	// iteration order: the order of DataWrite conversations is externally
	// visible — trace event order, per-write virtual-clock timestamps,
	// which write a failing pager rejects first — and must be identical
	// across record and replay runs.
	objs := make([]*Object, 0, len(dirtyByObj))
	for obj := range dirtyByObj {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].ID() < objs[j].ID() })
	for _, obj := range objs {
		vs := dirtyByObj[obj]
		if _, locking := obj.Pager().(LockingPager); locking {
			// External memory managers negotiate per-offset page locks
			// and the message protocol delivers them one page at a time;
			// keep their writes single-page, mirroring fault-in.
			for i := range vs {
				freed += k.finishPageoutRun(vs[i : i+1])
			}
			continue
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i].offset < vs[j].offset })
		runStart := 0
		for i := 1; i <= len(vs); i++ {
			if i == len(vs) || vs[i].offset != vs[i-1].offset+k.pageSize {
				freed += k.finishPageoutRun(vs[runStart:i])
				runStart = i
			}
		}
	}
	return freed
}

// finishCleanVictim frees one clean claimed victim. The batch flush
// (pmap_update) has already run, so no CPU can still hold a stale
// translation to this frame.
func (k *Kernel) finishCleanVictim(v pageoutVictim) {
	v.obj.mu.Lock()
	k.freePageObjLocked(v.p)
	v.obj.mu.Unlock()
}

// finishPageoutRun writes one maximal run of dirty victims — consecutive
// offsets in one object — to the pager as a single DataWrite and frees the
// frames. Taking the object lock blocking is safe here: nothing is held,
// and every holder of obj.mu that waits on a busy page releases the lock
// first.
//
// A DataWrite failure never loses data: every page of the run stays dirty
// and resident and is reactivated for a later pass. With FallbackSwap the
// object is permanently retargeted to the default pager and the write
// retried there, so dirty pages are not stranded behind a dead manager.
func (k *Kernel) finishPageoutRun(run []pageoutVictim) int {
	obj := run[0].obj
	n := len(run)
	pgsz := int(k.pageSize)
	obj.mu.Lock()
	pager := obj.pager
	if pager == nil {
		// Internal object: the default pager takes the data
		// ("page-out is done to a default pager").
		pager = k.swap
		obj.pager = pager
		obj.mu.Unlock()
		pager.Init(obj)
		obj.mu.Lock()
	}
	buf := k.getRunBuf(n * pgsz)
	data := *buf
	for i, v := range run {
		k.snapshotPage(v.p, data[i*pgsz:(i+1)*pgsz])
	}
	obj.pagingInProgress++
	obj.mu.Unlock()
	err := k.pagerWriteData(pager, obj, run[0].offset, data)
	if err != nil && obj.PagerFallback() == FallbackSwap && pager != k.swap {
		// Degrade: hand the object to the default pager for good and
		// land the data there. Tell the failed pager the object is gone so
		// a tiered pager (ztier wrapping the dead backing store) purges its
		// compressed blobs instead of stranding them keyed by a retargeted
		// object. Terminate is deliberately the full pager teardown, not
		// just tier bookkeeping: it destroys whatever the failed pager
		// still stored for the object (ztier pool purge, netpager remote
		// store drop). The retarget is permanent — nothing will ever read
		// from the old pager again — so pages whose only copy lived there
		// are lost either way; destroying the store makes that explicit
		// and frees its memory rather than leaking an unreachable copy.
		k.stats.PagerFallbacks.Add(1)
		obj.mu.Lock()
		obj.pager = k.swap
		obj.mu.Unlock()
		pager.Terminate(obj)
		k.swap.Init(obj)
		err = k.pagerWriteData(k.swap, obj, run[0].offset, data)
	}
	obj.mu.Lock()
	obj.pagingInProgress--
	k.putRunBuf(buf)
	if err != nil {
		// Keep the pages and give them another chance on a later scan;
		// the pager may recover. The hardware modify bits were consumed
		// when the mappings were removed, so pin dirtiness in the
		// machine-independent structure (we still own the busy bits).
		k.stats.PageoutWriteFails.Add(uint64(n))
		for _, v := range run {
			v.p.dirty = true
		}
		obj.mu.Unlock()
		for _, v := range run {
			k.activatePage(v.p)
			k.pageWakeup(v.p)
		}
		return 0
	}
	k.stats.Pageouts.Add(uint64(n))
	k.stats.PageoutRuns.Add(1)
	k.stats.PageoutRunPages.Add(uint64(n))
	obj.notePageouts(k, n)
	for _, v := range run {
		k.clearModify(v.p)
		k.freePageObjLocked(v.p)
	}
	obj.mu.Unlock()
	return n
}

// wakePageoutDaemon pokes the daemon without blocking; a full buffer means
// a wakeup is already pending.
func (k *Kernel) wakePageoutDaemon() {
	select {
	case k.pageoutWake <- struct{}{}:
		k.stats.PageoutWakes.Add(1)
	default:
	}
}

// StartPageoutDaemon runs the paging daemon in the background until stop
// is closed. The daemon wakes on demand — allocPage pokes it whenever free
// memory dips below freeMin — with the ticker as a fallback for rebalance
// and for wakeups that raced a full buffer. Tests and benchmarks usually
// call PageoutScan directly for determinism; long-running examples use the
// daemon.
func (k *Kernel) StartPageoutDaemon(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-k.pageoutWake:
				k.PageoutScan()
			case <-ticker.C:
				if k.FreeCount() < k.freeMin {
					k.PageoutScan()
				}
			}
		}
	}()
}

// Wire faults in and wires every page of [addr, addr+size) in the map so
// pageout cannot touch it (used for kernel-critical buffers; the paper's
// kernel mappings "must always be kept complete and accurate").
func (m *Map) Wire(addr vmtypes.VA, size uint64) error {
	l, top := m.k.traceBegin()
	err := m.wire(addr, size)
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpWire, trace.Event{
				Map: m.id, Addr: uint64(addr), Size: size, Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return err
}

func (m *Map) wire(addr vmtypes.VA, size uint64) error {
	k := m.k
	size = k.roundPage(size)
	if err := m.checkRange(addr, size); err != nil {
		return err
	}
	m.mu.Lock()
	e, hit := m.lookupEntryLocked(addr)
	if !hit {
		m.mu.Unlock()
		return ErrInvalidAddress
	}
	m.clipStartLocked(e, addr)
	end := addr + vmtypes.VA(size)
	for e != nil && e.start < end {
		m.clipEndLocked(e, end)
		e.wired = true
		e = e.next
	}
	m.bumpVersion() // faults must pick up the wired attribute
	m.mu.Unlock()

	// Touch every page so it is resident and mapped wired.
	for va := addr; va < addr+vmtypes.VA(size); va += vmtypes.VA(k.pageSize) {
		if err := k.Fault(m, va, vmtypes.ProtRead); err != nil {
			return err
		}
		if p := m.residentPageAt(va); p != nil {
			k.wirePage(p)
		}
	}
	return nil
}

// Unwire releases wiring on [addr, addr+size).
func (m *Map) Unwire(addr vmtypes.VA, size uint64) error {
	l, top := m.k.traceBegin()
	err := m.unwire(addr, size)
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpUnwire, trace.Event{
				Map: m.id, Addr: uint64(addr), Size: size, Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return err
}

func (m *Map) unwire(addr vmtypes.VA, size uint64) error {
	k := m.k
	size = k.roundPage(size)
	if err := m.checkRange(addr, size); err != nil {
		return err
	}
	for va := addr; va < addr+vmtypes.VA(size); va += vmtypes.VA(k.pageSize) {
		if p := m.residentPageAt(va); p != nil {
			k.unwirePage(p)
		}
	}
	m.mu.Lock()
	e, hit := m.lookupEntryLocked(addr)
	if hit {
		m.clipStartLocked(e, addr)
		end := addr + vmtypes.VA(size)
		for e != nil && e.start < end {
			m.clipEndLocked(e, end)
			e.wired = false
			e = e.next
		}
		m.bumpVersion()
	}
	m.mu.Unlock()
	return nil
}

// residentPageAt resolves the resident page backing va, if any.
func (m *Map) residentPageAt(va vmtypes.VA) *Page {
	k := m.k
	pageAddr := vmtypes.VA(k.truncPage(uint64(va)))
	m.mu.RLock()
	defer m.mu.RUnlock()
	entry, hit := m.lookupEntryLocked(pageAddr)
	if !hit {
		return nil
	}
	obj := entry.object
	offset := entry.offset + uint64(pageAddr-entry.start)
	if entry.submap != nil {
		sm := entry.submap
		smOff := vmtypes.VA(entry.offset) + (pageAddr - entry.start)
		sm.mu.RLock()
		inner, ok := sm.lookupEntryLocked(smOff)
		if !ok || inner.object == nil {
			sm.mu.RUnlock()
			return nil
		}
		obj = inner.object
		offset = inner.offset + uint64(smOff-inner.start)
		sm.mu.RUnlock()
	}
	if obj == nil {
		return nil
	}
	// Walk the shadow chain without side effects.
	curOffset := k.truncPage(offset)
	for cur := obj; cur != nil; {
		if p := k.lookupPage(cur, curOffset, false); p != nil {
			return p
		}
		cur.mu.Lock()
		next := cur.shadow
		curOffset += cur.shadowOffset
		cur.mu.Unlock()
		cur = next
	}
	return nil
}
