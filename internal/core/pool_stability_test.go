package core_test

// Pool prewarm smoke: kernel construction primes the fault path's
// recycling layers (object pool, map-entry pool, staging buffers, shard
// hashes), so the very first zero-fill cycle allocates at most a small
// constant more than a steady-state cycle — alloc counts are stable
// from the first benchmark iteration instead of settling after a
// warm-up.

import (
	"runtime"
	"runtime/debug"
	"testing"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

func TestColdFaultAllocStability(t *testing.T) {
	if raceEnabled {
		t.Skip("host alloc counts are not stable under the race detector")
	}
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 8192,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := core.MustNewKernel(core.Config{Machine: machine, Module: mod, PageSize: 4096})
	cpu := machine.CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	defer m.Pmap().Deactivate(cpu)

	pageSize := k.PageSize()
	const pages = 64
	size := pages * pageSize

	cycle := func() {
		addr, err := m.Allocate(0, size, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			if err := k.Touch(cpu, m, addr+vmtypes.VA(uint64(i)*pageSize), true); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Deallocate(addr, size); err != nil {
			t.Fatal(err)
		}
	}

	// Keep the collector out of the measurement: a GC cycle both
	// allocates and drops sync.Pool per-P local arrays, whose re-pinning
	// would then count against the first post-GC fault.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	counts := make([]uint64, 3)
	var before, after runtime.MemStats
	for i := range counts {
		runtime.ReadMemStats(&before)
		cycle()
		runtime.ReadMemStats(&after)
		counts[i] = after.Mallocs - before.Mallocs
	}

	cold, warm := counts[0], counts[2]
	t.Logf("mallocs per cycle: cold=%d then %d, steady=%d", cold, counts[1], warm)
	// The prewarmed pools should leave the first cycle within a small
	// constant of steady state (ReadMemStats bookkeeping itself costs a
	// few). Without prewarming the gap is an order of magnitude.
	const slack = 8
	if cold > warm+slack {
		t.Fatalf("first cycle allocated %d times vs %d steady-state (+%d slack): pools not prewarmed", cold, warm, slack)
	}
}
