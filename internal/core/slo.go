package core

import "machvm/internal/measure"

// FaultLatency exposes the kernel's per-fault virtual-latency histogram,
// live. Percentiles read from it while faulters run are exact counts but
// not an atomic cut; quiesce (or use SLOReport) for a stable snapshot.
func (k *Kernel) FaultLatency() *measure.Histogram {
	return &k.faultLatency
}

// SLOReport assembles the typed service-level snapshot the gate reporter
// consumes: fault latency percentiles, pager health, the structural
// invariant verdict and sustained fault throughput, all in virtual time
// so a deterministic world yields bit-identical reports on any host.
// Pending CPU charges are flushed first so the clock reading is final;
// the caller should have quiesced concurrent faulters.
func (k *Kernel) SLOReport() measure.SLOReport {
	k.machine.FlushAllCharges()
	snap := k.stats.Snapshot()
	h := &k.faultLatency
	now := k.machine.Clock.Now()

	r := measure.SLOReport{
		Faults:              snap.Faults,
		FaultP50NS:          h.Percentile(0.50),
		FaultP90NS:          h.Percentile(0.90),
		FaultP99NS:          h.Percentile(0.99),
		FaultMaxNS:          h.Max(),
		FaultMeanNS:         h.Mean(),
		PagerRoundTrips:     snap.PagerRoundTrips,
		PagerTimeouts:       snap.PagerTimeouts,
		PagerErrors:         snap.PagerErrors,
		PagerFallbacks:      snap.PagerFallbacks,
		InvariantViolations: len(k.CheckInvariants()),
		VirtualNS:           now,
	}
	if snap.PagerRoundTrips > 0 {
		r.PagerTimeoutRate = float64(snap.PagerTimeouts) / float64(snap.PagerRoundTrips)
	}
	if now > 0 {
		r.FaultsPerVirtualSec = float64(snap.Faults) / (float64(now) / 1e9)
	}
	return r
}
