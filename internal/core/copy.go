package core

import (
	"machvm/internal/pmap"
	"machvm/internal/trace"
	"machvm/internal/vmtypes"
)

// This file implements the copy-on-write machinery: vm_copy within a task,
// copying ranges between maps (the substrate of large message transfers —
// "an entire address space may be sent in a single message with no actual
// data copy operations performed", §2.1), and fork inheritance (§2.1).

// copyEntryCOWLocked prepares copy-on-write clones of src (already clipped
// to the exact range being copied) and returns the unlinked clones. For a
// plain object entry there is exactly one clone; a share-mapped entry
// yields one clone per underlying sharing-map entry, because the *copy*
// must be a by-value snapshot of the shared data, not another sharer.
//
// Both sides are marked needs-copy and the source's hardware mappings are
// write-protected, so the first write on either side takes a fault and
// pushes the page into a fresh shadow object (§3.4).
func (m *Map) copyEntryCOWLocked(src *MapEntry) []*MapEntry {
	if src.submap != nil {
		return m.copyShareEntryCOWLocked(src)
	}
	clone := &MapEntry{
		start:     src.start,
		end:       src.end,
		object:    src.object,
		offset:    src.offset,
		prot:      src.prot,
		maxProt:   src.maxProt,
		inherit:   src.inherit,
		needsCopy: src.needsCopy,
	}
	if src.object == nil {
		// Unfaulted zero-fill memory: the copy is also zero-fill.
		return []*MapEntry{clone}
	}
	src.object.Reference()
	clone.needsCopy = true
	if !src.needsCopy {
		src.needsCopy = true
		m.bumpVersion() // in-flight faults must re-check needs-copy
		if m.pm != nil && src.prot.Allows(vmtypes.ProtWrite) {
			// Revoke write access so the source faults on its next
			// write too (pmap_protect on the source range).
			m.pm.Protect(src.start, src.end, src.prot.Intersect(vmtypes.ProtRead|vmtypes.ProtExecute))
		}
	}
	return []*MapEntry{clone}
}

// copyShareEntryCOWLocked snapshots the window of a sharing map that src
// covers: each underlying object entry is cloned copy-on-write, and the
// needs-copy marking is applied to the sharing map itself so that *every*
// sharer's next write is pushed into a shadow ("map operations that should
// apply to all maps sharing the data are simply applied to the sharing
// map", §3.4).
func (m *Map) copyShareEntryCOWLocked(src *MapEntry) []*MapEntry {
	sm := src.submap
	winStart := vmtypes.VA(src.offset)
	winEnd := winStart + vmtypes.VA(src.Span())

	sm.mu.Lock()
	defer sm.mu.Unlock()
	var clones []*MapEntry
	e, hit := sm.lookupEntryLocked(winStart)
	if hit {
		sm.clipStartLocked(e, winStart)
	} else {
		if e == nil {
			e = sm.head
		} else {
			e = e.next
		}
	}
	for e != nil && e.start < winEnd {
		sm.clipEndLocked(e, winEnd)
		if e.object != nil {
			e.object.Reference()
			if !e.needsCopy {
				e.needsCopy = true
				sm.bumpVersion() // sharers' in-flight faults must re-check
				m.k.writeProtectObjectRange(e.object, e.offset, e.Span())
			}
		}
		clones = append(clones, &MapEntry{
			start:     src.start + (e.start - winStart),
			end:       src.start + (e.end - winStart),
			object:    e.object,
			offset:    e.offset,
			prot:      src.prot,
			maxProt:   src.maxProt,
			inherit:   src.inherit,
			needsCopy: e.object != nil,
		})
		e = e.next
	}
	return clones
}

// writeProtectObjectRange revokes write access to every resident page of
// obj within [offset, offset+size) in every pmap (pmap_copy_on_write).
func (k *Kernel) writeProtectObjectRange(obj *Object, offset, size uint64) {
	for _, p := range k.collectObjectRange(obj, offset, size) {
		k.writeProtectAll(p)
	}
}

// CopyTo virtually copies [srcAddr, srcAddr+size) of this map into dst at
// dstAddr (anywhere if requested), copy-on-write. It returns the address
// chosen in dst. This is the engine behind both vm_copy and out-of-line
// message data transfer.
func (m *Map) CopyTo(dst *Map, srcAddr vmtypes.VA, size uint64, dstAddr vmtypes.VA, anywhere bool) (vmtypes.VA, error) {
	l, top := m.k.traceBegin()
	va, err := m.copyTo(dst, srcAddr, size, dstAddr, anywhere)
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpCopyTo, trace.Event{
				Map: m.id, Map2: dst.id, Addr: uint64(srcAddr), Size: size,
				Addr2: uint64(dstAddr), Flag: anywhere,
				Ret: uint64(va), Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return va, err
}

func (m *Map) copyTo(dst *Map, srcAddr vmtypes.VA, size uint64, dstAddr vmtypes.VA, anywhere bool) (vmtypes.VA, error) {
	size = m.k.roundPage(size)
	if err := m.checkRange(srcAddr, size); err != nil {
		return 0, err
	}
	srcEnd := srcAddr + vmtypes.VA(size)

	// Lock ordering: source before destination; a map is never copied
	// into itself at an overlapping range by callers (vm_copy uses
	// distinct ranges and clips them apart).
	sameMap := m == dst
	m.mu.Lock()
	if !sameMap {
		dst.mu.Lock()
	}
	unlock := func() {
		if !sameMap {
			dst.mu.Unlock()
		}
		m.mu.Unlock()
	}

	if anywhere {
		var err error
		dstAddr, err = dst.findSpaceLocked(size)
		if err != nil {
			unlock()
			return 0, err
		}
	}
	if err := dst.checkRange(dstAddr, size); err != nil {
		unlock()
		return 0, err
	}
	// Destination must be vacant.
	if prev, hit := dst.lookupEntryLocked(dstAddr); hit {
		unlock()
		return 0, ErrInvalidAddress
	} else {
		next := dst.head
		if prev != nil {
			next = prev.next
		}
		if next != nil && next.start < dstAddr+vmtypes.VA(size) {
			unlock()
			return 0, ErrInvalidAddress
		}
	}

	// Source must be fully allocated.
	e, hit := m.lookupEntryLocked(srcAddr)
	if !hit {
		unlock()
		return 0, ErrInvalidAddress
	}
	m.clipStartLocked(e, srcAddr)
	var clones []*MapEntry
	for e != nil && e.start < srcEnd {
		m.clipEndLocked(e, srcEnd)
		if e.start >= srcEnd {
			break
		}
		delta := int64(dstAddr) - int64(srcAddr)
		for _, clone := range m.copyEntryCOWLocked(e) {
			clone.start = vmtypes.VA(int64(clone.start) + delta)
			clone.end = vmtypes.VA(int64(clone.end) + delta)
			clones = append(clones, clone)
		}
		if e.next != nil && e.next.start != e.end && e.end < srcEnd {
			// Hole inside the source range.
			for _, c := range clones {
				if c.object != nil {
					defer m.k.releaseObject(c.object)
				}
				if c.submap != nil {
					defer c.submap.Destroy()
				}
			}
			unlock()
			return 0, ErrInvalidAddress
		}
		e = e.next
	}
	// Insert the clones into dst.
	prev, _ := dst.lookupEntryLocked(dstAddr)
	for _, c := range clones {
		dst.insertAfterLocked(prev, c)
		prev = c
	}
	unlock()
	return dstAddr, nil
}

// Copy implements vm_copy: virtually copy a range of memory from one
// address to another within the task (Table 2-1). The destination range
// is replaced.
func (m *Map) Copy(srcAddr vmtypes.VA, size uint64, dstAddr vmtypes.VA) error {
	l, top := m.k.traceBegin()
	err := m.copyRange(srcAddr, size, dstAddr)
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpCopy, trace.Event{
				Map: m.id, Addr: uint64(srcAddr), Size: size,
				Addr2: uint64(dstAddr), Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return err
}

func (m *Map) copyRange(srcAddr vmtypes.VA, size uint64, dstAddr vmtypes.VA) error {
	m.k.machine.Charge(m.k.machine.Cost.Syscall)
	size = m.k.roundPage(size)
	if err := m.Deallocate(dstAddr, size); err != nil && err != ErrInvalidAddress {
		return err
	}
	_, err := m.CopyTo(m, srcAddr, size, dstAddr, false)
	return err
}

// Fork builds a child address map from this one according to the
// inheritance values of its entries (§2.1): shared entries are shared
// read/write through a sharing map, copy entries are copied by value with
// copy-on-write, and none entries leave the child's range unallocated.
func (m *Map) Fork() *Map {
	l, top := m.k.traceBegin()
	child := m.fork()
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpFork, trace.Event{
				Map: m.id, Ret: child.id,
			}))
		}
		l.EndOp()
	}
	return child
}

func (m *Map) fork() *Map {
	child := m.k.NewMap()
	m.k.machine.Charge(m.k.machine.Cost.TaskCreate)

	m.mu.Lock()
	defer m.mu.Unlock()
	for e := m.head; e != nil; e = e.next {
		switch e.inherit {
		case vmtypes.InheritNone:
			continue
		case vmtypes.InheritCopy:
			for _, clone := range m.copyEntryCOWLocked(e) {
				child.mu.Lock()
				child.insertAfterLocked(child.tail, clone)
				child.mu.Unlock()
			}
			if m.k.prewarmFork && m.pm != nil {
				// Optional pmap_copy (Table 3-4): duplicate the
				// parent's (now write-protected) mappings so the
				// child's first reads do not fault.
				if c, ok := m.pm.(pmap.Copier); ok {
					c.CopyMappings(child.pm, e.start, e.Span(), e.start)
				}
			}
		case vmtypes.InheritShared:
			m.shareEntryLocked(e)
			e.submap.Reference()
			clone := &MapEntry{
				start:   e.start,
				end:     e.end,
				submap:  e.submap,
				offset:  e.offset,
				prot:    e.prot,
				maxProt: e.maxProt,
				inherit: e.inherit,
			}
			child.mu.Lock()
			child.insertAfterLocked(child.tail, clone)
			child.mu.Unlock()
		}
	}
	return child
}

// shareEntryLocked converts an object entry into a sharing-map entry:
// read/write sharing needs a map-like structure that other address maps
// can reference (§3.4), so the entry's object moves into a fresh sharing
// map and the entry points at the sharing map instead.
func (m *Map) shareEntryLocked(e *MapEntry) {
	if e.submap != nil {
		return
	}
	sm := m.k.newShareMap(e.Span())
	inner := &MapEntry{
		start:     0,
		end:       vmtypes.VA(e.Span()),
		object:    e.object, // transfer the reference
		offset:    e.offset,
		prot:      vmtypes.ProtAll,
		maxProt:   vmtypes.ProtAll,
		inherit:   vmtypes.InheritShared,
		needsCopy: e.needsCopy,
	}
	sm.mu.Lock()
	sm.insertAfterLocked(nil, inner)
	sm.mu.Unlock()
	e.object = nil
	e.submap = sm
	e.offset = 0
	e.needsCopy = false
	m.bumpVersion() // the entry now resolves through the sharing map
}
