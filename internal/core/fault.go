package core

import (
	"errors"
	"fmt"

	"machvm/internal/vmtypes"
)

// Fault errors.
var (
	// ErrFaultNoEntry means the address is not allocated.
	ErrFaultNoEntry = errors.New("vm_fault: no map entry for address")
	// ErrFaultProtection means the access exceeds the entry's current
	// protection.
	ErrFaultProtection = errors.New("vm_fault: protection violation")
	// ErrFaultUnavailable means the object's pager reported the data
	// does not exist.
	ErrFaultUnavailable = errors.New("vm_fault: data unavailable from pager")
)

// Fault resolves one page fault at va in map m for the given access
// (§3 and DESIGN.md §5: the fault path). All virtual memory information
// can be reconstructed here from the machine-independent structures, which
// is what lets the pmap layer forget mappings at will.
func (k *Kernel) Fault(m *Map, va vmtypes.VA, access vmtypes.Prot) error {
	k.stats.Faults.Add(1)
	k.machine.Charge(k.machine.Cost.FaultTrap)

	pageAddr := vmtypes.VA(k.truncPage(uint64(va)))

	m.mu.Lock()
	entry, hit := m.lookupEntryLocked(pageAddr)
	if !hit {
		m.mu.Unlock()
		return ErrFaultNoEntry
	}

	// Resolve a sharing map: the target entry lives one level down.
	if entry.submap != nil {
		sm := entry.submap
		smOff := vmtypes.VA(entry.offset) + (pageAddr - entry.start)
		outerProt := entry.prot
		sm.mu.Lock()
		inner, ok := sm.lookupEntryLocked(smOff)
		if !ok {
			sm.mu.Unlock()
			m.mu.Unlock()
			return ErrFaultNoEntry
		}
		if !outerProt.Allows(access) {
			sm.mu.Unlock()
			m.mu.Unlock()
			return ErrFaultProtection
		}
		err := k.faultResolveLocked(m, sm, inner, pageAddr, smOff, outerProt, access)
		sm.mu.Unlock()
		m.mu.Unlock()
		return err
	}

	if !entry.prot.Allows(access) {
		m.mu.Unlock()
		return ErrFaultProtection
	}
	err := k.faultResolveLocked(m, m, entry, pageAddr, pageAddr, entry.prot, access)
	m.mu.Unlock()
	return err
}

// faultResolveLocked finishes a fault against entry, which lives in
// entryMap (either topMap itself or a sharing map reached from it); both
// maps' locks are held. pageAddr is the faulting page address in topMap;
// entryAddr the corresponding address in entryMap's coordinates.
func (k *Kernel) faultResolveLocked(topMap, entryMap *Map, entry *MapEntry, pageAddr, entryAddr vmtypes.VA, prot vmtypes.Prot, access vmtypes.Prot) error {
	wantWrite := access.Allows(vmtypes.ProtWrite)

	// Remember the pager-backed object the data will come from; the
	// pager_data_lock negotiation below applies to it (a private shadow
	// copy created for COW is never pager-locked).
	lockObj := entry.object
	lockOffset := uint64(0)
	if lockObj != nil {
		lockOffset = k.truncPage(entry.offset + uint64(entryAddr-entry.start))
	}

	// Copy-on-write: a write through a needs-copy entry pushes data into
	// a fresh shadow object first (§3.4).
	if wantWrite && entry.needsCopy {
		k.shadowEntryLocked(entryMap, entry)
		lockObj = nil
	}

	// Lazy allocation: zero-fill memory gets its internal object on
	// first touch.
	if entry.object == nil {
		entry.object = k.NewObject(entry.Span(), nil, "anonymous")
		entry.offset = 0
	}

	offset := entry.offset + uint64(entryAddr-entry.start)
	offset = k.truncPage(offset)

	page, firstObj, err := k.faultPageLookup(entry.object, offset, wantWrite, entryMap.isShare)
	if err != nil {
		return err
	}
	// The page comes back busy-claimed by this fault (fresh or resident)
	// and stays claimed until the hardware mapping is entered: otherwise
	// the pageout daemon could free it in between and leave a brand-new
	// mapping pointing at a reused frame.
	defer k.pageWakeup(page)

	// pager_data_lock enforcement: the pager may have delivered the data
	// locked (pager_data_provided's lock_value). If the lock forbids this
	// access, send pager_data_unlock and block until the pager grants it;
	// whatever the pager still prohibits is withheld from the hardware
	// mapping so those accesses refault and renegotiate.
	var pagerProhibits vmtypes.Prot
	if lockObj != nil {
		pagerProhibits, err = k.checkPagerLock(lockObj, lockOffset, access)
		if err != nil {
			return err
		}
	}

	// Decide the hardware protection: reads through needs-copy entries
	// or of pages still owned by a backing object must not be writable,
	// so the eventual write faults and copies.
	enterProt := prot &^ pagerProhibits
	if !wantWrite && (entry.needsCopy || !firstObj) {
		enterProt = enterProt.Intersect(vmtypes.ProtRead | vmtypes.ProtExecute)
	}

	// Enter the mapping in the top map's pmap, one hardware page at a
	// time (a Mach page is a power-of-two multiple of hardware pages).
	if topMap.pm != nil {
		hwSize := vmtypes.VA(k.machine.Mem.PageSize())
		for i := 0; i < k.hwRatio; i++ {
			topMap.pm.Enter(pageAddr+vmtypes.VA(i)*hwSize, page.pfn+vmtypes.PFN(i), enterProt, entry.wired)
		}
	}
	if wantWrite {
		// Safe without the shard lock: this fault owns the page's busy bit.
		page.dirty = true
	}
	k.activatePage(page)
	return nil
}

// shadowEntryLocked replaces entry's object with a new shadow (§3.4).
// The entry map's lock is held.
func (k *Kernel) shadowEntryLocked(m *Map, entry *MapEntry) {
	if entry.object == nil {
		// Nothing to copy from: plain zero-fill memory needs no shadow.
		entry.needsCopy = false
		return
	}
	shadow := k.shadowObject(entry.object, entry.offset, entry.Span())
	entry.object = shadow
	entry.offset = 0
	entry.needsCopy = false
	// The shadow chain behind the new shadow may now be collapsible.
	k.collapseShadow(shadow)
}

// faultPageLookup walks the shadow chain from obj looking for the page at
// offset (§3.4: "the system will find the page in some object in the list
// and make a copy, if necessary"). It returns the page to map and whether
// it belongs to the first object. For a write, a page found in a backing
// object is copied into the first object; for a read it is mapped
// read-only in place.
//
// sharedFront is true when the first object belongs to a sharing map: in
// that case every sharer resolves through the same shadow, so after a copy
// the backing page's existing hardware mappings are stale for the sharers
// and must be removed (they refault and find the shadow's page; snapshot
// holders refault and still reach the original).
//
// Every page this function returns is busy-claimed by the caller (claimed
// by lookupPage on a resident hit, freshly allocated otherwise); the
// caller releases the claim with pageWakeup once the mapping is entered.
//
// The walk needs no guard against a concurrent collapseShadow transiting
// pages between chain levels: a fault runs entirely under its map's lock
// (faults through a shared entry serialize on the sharing map's lock), so
// a concurrent collapse belongs to a different map, and collapseShadow
// only drains a backing object whose sole reference is the collapsing
// front. Every object this walk visits is referenced from this chain —
// entry.object by the map entry, each deeper level by its front's shadow
// pointer — so any object we can reach has refs >= 2 from the collapser's
// point of view and the collapse aborts before touching it.
func (k *Kernel) faultPageLookup(obj *Object, offset uint64, wantWrite, sharedFront bool) (*Page, bool, error) {
	first := obj

	// copyUp copies a page found in a backing object into the first
	// object (§3.4). fresh=false means a concurrent faulter installed the
	// first object's page before us; rewalk and use theirs. Either way the
	// claim on the backing page is released here.
	copyUp := func(page *Page) (*Page, bool) {
		newPage, fresh := k.allocPage(first, offset)
		if !fresh {
			k.pageWakeup(page)
			return nil, false
		}
		k.copyPage(page, newPage)
		k.stats.CowFaults.Add(1)
		newPage.dirty = true
		if sharedFront {
			// Sharers must not keep reading the superseded page.
			k.removeAllMappings(page)
		}
		k.pageWakeup(page)
		// The new page hides the backing page for this object chain;
		// other chains may still share the old page, so it simply stays
		// where it is.
		return newPage, true
	}

restart:
	for {
		cur := first
		curOffset := offset
		depth := 0
		for {
			depth++
			if depth > 1000 {
				panic(fmt.Sprintf("vm_fault: runaway shadow chain at depth %d", depth))
			}
			if page := k.lookupPage(cur, curOffset, true); page != nil {
				if cur == first {
					k.stats.ReactivateHits.Add(1)
					return page, true, nil
				}
				// Found in a backing object.
				if !wantWrite {
					return page, false, nil
				}
				newPage, ok := copyUp(page)
				if !ok {
					continue restart
				}
				return newPage, true, nil
			}

			cur.mu.Lock()
			pager := cur.pager
			shadow := cur.shadow
			shadowOffset := cur.shadowOffset
			cur.mu.Unlock()
			if pager != nil {
				page, retry, err := k.pageIn(cur, curOffset, pager)
				if err != nil {
					return nil, false, err
				}
				if retry {
					continue restart
				}
				if page != nil {
					if cur == first {
						return page, true, nil
					}
					if !wantWrite {
						return page, false, nil
					}
					newPage, ok := copyUp(page)
					if !ok {
						continue restart
					}
					return newPage, true, nil
				}
				// Pager has no data: fall through to the shadow, or
				// zero-fill at the end of the chain.
			}

			if shadow == nil {
				// End of the chain: zero fill in the first object
				// ("memory with no pager is automatically zero filled").
				page, fresh := k.allocPage(first, offset)
				if !fresh {
					continue restart
				}
				k.zeroPage(page)
				k.stats.ZeroFillFaults.Add(1)
				if wantWrite {
					page.dirty = true
				}
				return page, true, nil
			}
			curOffset += shadowOffset
			cur = shadow
		}
	}
}

// pageIn asks the object's pager for the page at offset. page is nil with
// no error if the pager reports the data unavailable, in which case the
// caller continues down the chain or zero-fills. retry means a concurrent
// faulter beat us to the offset and the caller should rewalk the chain.
// A returned page is still busy-claimed by the caller.
func (k *Kernel) pageIn(obj *Object, offset uint64, pager Pager) (page *Page, retry bool, err error) {
	// Insert a busy page first so concurrent faulters wait instead of
	// issuing duplicate requests.
	page, fresh := k.allocPage(obj, offset)
	if !fresh {
		return nil, true, nil
	}
	page.absent = true

	// The pager conversation happens with no locks held; raising
	// pagingInProgress keeps the object from being collapsed or torn down
	// while the request is in flight.
	obj.mu.Lock()
	obj.pagingInProgress++
	obj.mu.Unlock()
	data, unavailable := pager.DataRequest(obj, offset, int(k.pageSize))
	obj.mu.Lock()
	obj.pagingInProgress--
	obj.mu.Unlock()
	if unavailable {
		k.freePage(page)
		return nil, false, nil
	}
	// Copy the pager's data into physical memory, charging the copy.
	k.machine.ChargeKB(k.machine.Cost.CopyPerKB, len(data))
	hwPage := k.machine.Mem.PageSize()
	for i := 0; i < k.hwRatio; i++ {
		pfn := page.pfn + vmtypes.PFN(i)
		k.machine.Mem.LockFrame(pfn)
		frame := k.machine.Mem.Frame(pfn)
		lo := i * hwPage
		if lo >= len(data) {
			clear(frame)
		} else {
			n := copy(frame, data[lo:])
			clear(frame[n:])
		}
		k.machine.Mem.UnlockFrame(pfn)
	}
	page.absent = false
	k.stats.Pageins.Add(1)
	return page, false, nil
}
