package core

import (
	"context"
	"errors"
	"fmt"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/trace"
	"machvm/internal/vmtypes"
)

// Fault errors.
var (
	// ErrFaultNoEntry means the address is not allocated.
	ErrFaultNoEntry = errors.New("vm_fault: no map entry for address")
	// ErrFaultProtection means the access exceeds the entry's current
	// protection.
	ErrFaultProtection = errors.New("vm_fault: protection violation")
	// ErrFaultUnavailable means the object's pager reported the data
	// does not exist.
	ErrFaultUnavailable = errors.New("vm_fault: data unavailable from pager")
	// ErrNoMemory (page.go) is also returned here: physical memory is
	// exhausted and repeated pageout scans reclaimed nothing.
)

// faultState is the per-fault scratch: the entry snapshot taken under the
// map read lock, carried across the unlocked resolution phase (shadow
// walk, pager I/O, zero-fill) and checked again before the hardware
// mapping is entered. It lives on the Fault frame — never heap-allocated —
// which is what keeps the resident-hit fast path at zero allocations.
type faultState struct {
	topMap    *Map
	pageAddr  vmtypes.VA
	access    vmtypes.Prot
	wantWrite bool

	// Snapshot of the resolved entry (possibly one level down a sharing
	// map). obj carries a reference taken under the lock; holding it
	// keeps the whole shadow chain collapse-safe while the map lock is
	// dropped (see faultPageLookup).
	obj       *Object
	offset    uint64 // page-aligned offset of the fault within obj
	prot      vmtypes.Prot
	wired     bool
	needsCopy bool
	share     bool // obj was reached through a sharing map

	// Cluster window: the resolved entry's object range [winLo, winHi) in
	// obj's byte coordinates. Fault-in clustering never reads outside it,
	// so readahead cannot touch offsets the entry does not map.
	winLo uint64
	winHi uint64

	// Entry bounds in the top map's address space (direct entries only),
	// used to clip superpage-span promotion to the entry.
	entryStart vmtypes.VA
	entryEnd   vmtypes.VA

	// sm is the sharing map the entry resolved through (referenced;
	// released with Destroy), nil for direct entries. smOff is the fault
	// address in sm's coordinates.
	sm    *Map
	smOff vmtypes.VA

	version   uint64 // topMap.version at snapshot time
	smVersion uint64 // sm.version at snapshot time
}

// Fault resolves one page fault at va in map m for the given access
// (§3 and DESIGN.md §5: the fault path). All virtual memory information
// can be reconstructed here from the machine-independent structures, which
// is what lets the pmap layer forget mappings at will.
//
// The fault is read-mostly (DESIGN.md §7): the map lock is held shared for
// the entry lookup and again for revalidate + pmap enter, and not at all
// across page resolution. When a concurrent mutator changes the map in
// between, the fault restarts from scratch — the same discipline Mach uses
// when it restarts the faulting instruction.
func (k *Kernel) Fault(m *Map, va vmtypes.VA, access vmtypes.Prot) error {
	return k.FaultContext(context.Background(), m, va, access)
}

// FaultContext is Fault with caller-controlled cancellation: a fault stuck
// behind a slow pager returns when ctx fires instead of blocking for the
// kernel's full pager deadline. The underlying pager conversation keeps
// running to its own deadline and resolves the busy page either way.
func (k *Kernel) FaultContext(ctx context.Context, m *Map, va vmtypes.VA, access vmtypes.Prot) error {
	l, top := k.traceBegin()
	err := k.faultContextOn(ctx, nil, m, va, access)
	if l != nil {
		if top {
			l.Append(k.traceEvent(trace.OpFault, trace.Event{
				Map: m.id, Addr: uint64(va), Arg: int64(access),
				Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return err
}

// faultContextOn is the fault entry point with CPU attribution: when cpu
// is non-nil the trap cost (and any per-CPU hardware costs charged deeper
// in the path) accumulate in cpu's local buffer, and the fault return is
// a batch boundary that flushes them to the global clock. A nil cpu
// (kernel-initiated faults, vm_read/vm_write) charges the clock directly.
func (k *Kernel) faultContextOn(ctx context.Context, cpu *hw.CPU, m *Map, va vmtypes.VA, access vmtypes.Prot) error {
	err := k.faultRun(ctx, cpu, m, va, access)
	// Every serviced fault is an observation the replayer must reproduce —
	// same address, same access, same virtual-clock completion time.
	k.traceObserve(trace.EvFault, trace.Event{
		Map: m.id, Addr: uint64(va), Arg: int64(access), Err: traceErr(err),
	})
	return err
}

func (k *Kernel) faultRun(ctx context.Context, cpu *hw.CPU, m *Map, va vmtypes.VA, access vmtypes.Prot) error {
	// Per-fault latency is the virtual-clock delta across the whole fault.
	// CPU-buffered charges are flushed explicitly before the closing read
	// so they land inside the window; direct Machine charges (pager waits,
	// frame copies) are already on the clock. Exact under the
	// single-goroutine deterministic-world discipline; under parallel load
	// other CPUs advance the same clock, so the recorded value includes
	// contention — which is the latency a tenant actually observes.
	start := k.machine.Clock.Now()
	k.stats.Faults.Add(1)
	k.machine.ChargeOn(cpu, k.machine.Cost.FaultTrap)

	pageAddr := vmtypes.VA(k.truncPage(uint64(va)))
	err := func() error {
		for {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("vm_fault: %w", err)
			}
			done, err := k.faultOnce(ctx, m, pageAddr, access)
			if done {
				return err
			}
			k.stats.FaultRetries.Add(1)
		}
	}()
	if cpu != nil {
		cpu.FlushCharges()
	}
	k.faultLatency.Record(k.machine.Clock.Now() - start)
	return err
}

// faultOnce runs one attempt: snapshot, resolve, revalidate. done=false
// means the map mutated underneath the attempt and the caller must retry.
func (k *Kernel) faultOnce(ctx context.Context, m *Map, pageAddr vmtypes.VA, access vmtypes.Prot) (done bool, err error) {
	var fs faultState
	fs.topMap = m
	fs.pageAddr = pageAddr
	fs.access = access
	fs.wantWrite = access.Allows(vmtypes.ProtWrite)

	retry, err := k.faultSnapshot(&fs)
	if err != nil {
		return true, err
	}
	if retry {
		return false, nil
	}
	done, err = k.faultFinish(ctx, &fs)
	k.releaseObject(fs.obj)
	if fs.sm != nil {
		fs.sm.Destroy() // drops the reference taken in faultSnapshot
	}
	return done, err
}

// faultSnapshot looks up the faulting entry and captures everything the
// unlocked resolution phase needs. On success fs.obj holds a reference
// (and fs.sm one on the sharing map, if any); on error or retry nothing
// is held. Entry mutations the fault itself requires — the COW shadow of
// §3.4 and the lazy zero-fill object — upgrade to the write lock.
func (k *Kernel) faultSnapshot(fs *faultState) (retry bool, err error) {
	m := fs.topMap
	m.mu.RLock()
	entry, hit := m.lookupEntryLocked(fs.pageAddr)
	if !hit {
		m.mu.RUnlock()
		return false, ErrFaultNoEntry
	}

	// Resolve a sharing map: the target entry lives one level down.
	if sm := entry.submap; sm != nil {
		fs.sm = sm
		fs.smOff = vmtypes.VA(entry.offset) + (fs.pageAddr - entry.start)
		fs.prot = entry.prot
		fs.share = true
		fs.version = m.version.Load()
		sm.Reference()
		m.mu.RUnlock()
		return k.faultSnapshotInner(fs)
	}

	if !entry.prot.Allows(fs.access) {
		m.mu.RUnlock()
		return false, ErrFaultProtection
	}
	if (fs.wantWrite && entry.needsCopy) || entry.object == nil {
		// The entry itself must mutate: redo the lookup under the write
		// lock (the entry may have changed while no lock was held).
		m.mu.RUnlock()
		m.mu.Lock()
		entry, hit = m.lookupEntryLocked(fs.pageAddr)
		if !hit {
			m.mu.Unlock()
			return false, ErrFaultNoEntry
		}
		if entry.submap != nil {
			// Raced with a share conversion; restart the fault.
			m.mu.Unlock()
			return true, nil
		}
		if !entry.prot.Allows(fs.access) {
			m.mu.Unlock()
			return false, ErrFaultProtection
		}
		if fs.wantWrite && entry.needsCopy {
			// Copy-on-write: a write through a needs-copy entry pushes
			// data into a fresh shadow object first (§3.4).
			k.shadowEntryLocked(m, entry)
			m.bumpVersion()
		}
		if entry.object == nil {
			// Lazy allocation: zero-fill memory gets its internal
			// object on first touch.
			entry.object = k.newAnonObject(entry.Span())
			entry.offset = 0
			m.bumpVersion()
		}
		fs.snapEntry(k, entry, fs.pageAddr)
		fs.version = m.version.Load()
		m.mu.Unlock()
		return false, nil
	}
	fs.snapEntry(k, entry, fs.pageAddr)
	fs.version = m.version.Load()
	m.mu.RUnlock()
	return false, nil
}

// faultSnapshotInner snapshots the entry one level down the sharing map.
// fs.sm is referenced by the caller; error paths release it.
func (k *Kernel) faultSnapshotInner(fs *faultState) (retry bool, err error) {
	sm := fs.sm
	dropSM := func() {
		sm.Destroy()
		fs.sm = nil
	}
	sm.mu.RLock()
	inner, ok := sm.lookupEntryLocked(fs.smOff)
	if !ok {
		sm.mu.RUnlock()
		dropSM()
		return false, ErrFaultNoEntry
	}
	// The outer entry's protection governs the access (the inner entries
	// of a sharing map are kept fully permissive).
	if !fs.prot.Allows(fs.access) {
		sm.mu.RUnlock()
		dropSM()
		return false, ErrFaultProtection
	}
	if (fs.wantWrite && inner.needsCopy) || inner.object == nil {
		sm.mu.RUnlock()
		sm.mu.Lock()
		inner, ok = sm.lookupEntryLocked(fs.smOff)
		if !ok {
			sm.mu.Unlock()
			dropSM()
			return false, ErrFaultNoEntry
		}
		if fs.wantWrite && inner.needsCopy {
			// Shadowing the sharing map's entry is the §3.4 "applies to
			// all sharers" action, so doing it here is correct even if
			// our own top-level entry is concurrently deallocated.
			k.shadowEntryLocked(sm, inner)
			sm.bumpVersion()
		}
		if inner.object == nil {
			inner.object = k.newAnonObject(inner.Span())
			inner.offset = 0
			sm.bumpVersion()
		}
		fs.snapInner(k, inner)
		fs.smVersion = sm.version.Load()
		sm.mu.Unlock()
		return false, nil
	}
	fs.snapInner(k, inner)
	fs.smVersion = sm.version.Load()
	sm.mu.RUnlock()
	return false, nil
}

// snapEntry records a direct entry's coordinates and references its
// object. The map lock (read or write) is held.
func (fs *faultState) snapEntry(k *Kernel, entry *MapEntry, entryAddr vmtypes.VA) {
	fs.obj = entry.object
	fs.obj.Reference()
	fs.offset = k.truncPage(entry.offset + uint64(entryAddr-entry.start))
	fs.prot = entry.prot
	fs.wired = entry.wired
	fs.needsCopy = entry.needsCopy
	fs.winLo = k.truncPage(entry.offset)
	fs.winHi = k.roundPage(entry.offset + entry.Span())
	fs.entryStart = entry.start
	fs.entryEnd = entry.end
}

// snapInner records a sharing-map entry's coordinates; the outer prot
// recorded by faultSnapshot stays authoritative.
func (fs *faultState) snapInner(k *Kernel, inner *MapEntry) {
	fs.obj = inner.object
	fs.obj.Reference()
	fs.offset = k.truncPage(inner.offset + uint64(fs.smOff-inner.start))
	fs.wired = inner.wired
	fs.needsCopy = inner.needsCopy
	fs.winLo = k.truncPage(inner.offset)
	fs.winHi = k.roundPage(inner.offset + inner.Span())
}

// faultFinish resolves the page with no map lock held, then revalidates
// the snapshot under the read lock and enters the hardware mapping.
func (k *Kernel) faultFinish(ctx context.Context, fs *faultState) (done bool, err error) {
	page, firstObj, installed, err := k.faultPageLookup(ctx, fs.obj, fs.offset, fs.wantWrite, fs.share, fs.winLo, fs.winHi)
	if err != nil {
		return true, err
	}
	// The page comes back busy-claimed by this fault (fresh or resident)
	// and stays claimed until the hardware mapping is entered: otherwise
	// the pageout daemon could free it in between and leave a brand-new
	// mapping pointing at a reused frame.

	// pager_data_lock enforcement: the pager may have delivered the data
	// locked (pager_data_provided's lock_value). If the lock forbids this
	// access, send pager_data_unlock and block until the pager grants it;
	// whatever the pager still prohibits is withheld from the hardware
	// mapping so those accesses refault and renegotiate. A COW shadow
	// created above is internal (no pager), so the check no-ops for it —
	// a private copy is never pager-locked.
	pagerProhibits, err := k.checkPagerLock(ctx, fs.obj, fs.offset, fs.access)
	if err != nil {
		k.pageWakeup(page)
		return true, err
	}

	// Revalidate the snapshot and enter the mapping under the read lock:
	// mutators are excluded, so a concurrent Deallocate/Protect cannot
	// interleave its pmap_remove with this pmap_enter.
	m := fs.topMap
	m.mu.RLock()
	prot, wired, needsCopy, ok := fs.revalidate(k)
	if !ok {
		m.mu.RUnlock()
		k.pageWakeup(page)
		return false, nil // the map changed underneath us: retry
	}

	// Decide the hardware protection: reads through needs-copy entries
	// or of pages still owned by a backing object must not be writable,
	// so the eventual write faults and copies.
	enterProt := prot &^ pagerProhibits
	if !fs.wantWrite && (needsCopy || !firstObj) {
		enterProt = enterProt.Intersect(vmtypes.ProtRead | vmtypes.ProtExecute)
	}

	// Enter the mapping in the top map's pmap. A module with range
	// support takes the whole Mach page (its run of hardware pages) in
	// one EnterRange; others get one Enter per hardware page.
	if m.pm != nil {
		re, isRange := m.pm.(pmap.RangeEnterer)
		if isRange && k.hwRatio > 1 {
			buf := k.getPFNBuf(k.hwRatio)
			pfns := (*buf)[:k.hwRatio]
			for i := range pfns {
				pfns[i] = page.pfn + vmtypes.PFN(i)
			}
			re.EnterRange(fs.pageAddr, pfns, enterProt, wired)
			k.putPFNBuf(buf)
		} else {
			hwSize := vmtypes.VA(k.machine.Mem.PageSize())
			for i := 0; i < k.hwRatio; i++ {
				m.pm.Enter(fs.pageAddr+vmtypes.VA(i)*hwSize, page.pfn+vmtypes.PFN(i), enterProt, wired)
			}
		}
		// Superpage-span promotion: when this fault did installation work
		// (never on the resident fast path, which stays zero-overhead) and
		// the mapping is an unrestricted direct one, try to upgrade the
		// whole surrounding promotion granule in one range operation.
		if isRange && installed && fs.sm == nil && !needsCopy && firstObj && pagerProhibits == 0 {
			k.trySpanPromote(re, fs, page, enterProt, wired)
		}
	}
	if fs.sm != nil {
		fs.sm.mu.RUnlock() // acquired by revalidate
	}
	m.mu.RUnlock()

	if fs.wantWrite {
		// Safe without the shard lock: this fault owns the page's busy bit.
		page.dirty = true
	}
	k.activatePage(page)
	k.pageWakeup(page)
	return true, nil
}

// revalidate checks that the snapshot still describes the map, under the
// top map's read lock. For sharing-map entries it also takes the sharing
// map's read lock and — on success — leaves it held, so the caller's pmap
// enter is still ordered against sharers' copy-on-write marking
// (copyShareEntryCOWLocked write-protects under the sharing map's write
// lock). Fast path: version counters unchanged, snapshot values stand.
// Slow path: re-look-up and verify the entry still resolves to the same
// (object, offset) with compatible attributes; current protection, wiring
// and needs-copy state are returned so the mapping is entered with
// up-to-date values.
func (fs *faultState) revalidate(k *Kernel) (prot vmtypes.Prot, wired bool, needsCopy bool, ok bool) {
	m := fs.topMap
	if fs.sm == nil {
		if m.version.Load() == fs.version {
			return fs.prot, fs.wired, fs.needsCopy, true
		}
		entry, hit := m.lookupEntryLocked(fs.pageAddr)
		if !hit || entry.submap != nil || entry.object != fs.obj ||
			k.truncPage(entry.offset+uint64(fs.pageAddr-entry.start)) != fs.offset ||
			!entry.prot.Allows(fs.access) ||
			(fs.wantWrite && entry.needsCopy) {
			return 0, false, false, false
		}
		// The entry may have been clipped while no lock was held; span
		// promotion must respect the current bounds.
		fs.entryStart = entry.start
		fs.entryEnd = entry.end
		return entry.prot, entry.wired, entry.needsCopy, true
	}

	sm := fs.sm
	sm.mu.RLock()
	if m.version.Load() == fs.version && sm.version.Load() == fs.smVersion {
		return fs.prot, fs.wired, fs.needsCopy, true
	}
	entry, hit := m.lookupEntryLocked(fs.pageAddr)
	if !hit || entry.submap != sm ||
		vmtypes.VA(entry.offset)+(fs.pageAddr-entry.start) != fs.smOff ||
		!entry.prot.Allows(fs.access) {
		sm.mu.RUnlock()
		return 0, false, false, false
	}
	inner, iok := sm.lookupEntryLocked(fs.smOff)
	if !iok || inner.object != fs.obj ||
		k.truncPage(inner.offset+uint64(fs.smOff-inner.start)) != fs.offset ||
		(fs.wantWrite && inner.needsCopy) {
		sm.mu.RUnlock()
		return 0, false, false, false
	}
	return entry.prot, inner.wired, inner.needsCopy, true
}

// shadowEntryLocked replaces entry's object with a new shadow (§3.4).
// The entry map's write lock is held.
func (k *Kernel) shadowEntryLocked(m *Map, entry *MapEntry) {
	if entry.object == nil {
		// Nothing to copy from: plain zero-fill memory needs no shadow.
		entry.needsCopy = false
		return
	}
	shadow := k.shadowObject(entry.object, entry.offset, entry.Span())
	entry.object = shadow
	entry.offset = 0
	entry.needsCopy = false
	// The shadow chain behind the new shadow may now be collapsible.
	k.collapseShadow(shadow)
}

// copyUpPage copies a page found in a backing object into the first
// object (§3.4). fresh=false means a concurrent faulter installed the
// first object's page before us; rewalk and use theirs. Either way the
// claim on the backing page is released here, including on an allocation
// error (out of memory), which propagates to the faulter.
func (k *Kernel) copyUpPage(first *Object, offset uint64, sharedFront bool, page *Page) (*Page, bool, error) {
	newPage, fresh, err := k.allocPage(first, offset)
	if err != nil {
		k.pageWakeup(page)
		return nil, false, err
	}
	if !fresh {
		k.pageWakeup(page)
		return nil, false, nil
	}
	k.copyPage(page, newPage)
	k.stats.CowFaults.Add(1)
	newPage.dirty = true
	if sharedFront {
		// Sharers must not keep reading the superseded page.
		k.removeAllMappings(page)
	}
	k.pageWakeup(page)
	// The new page hides the backing page for this object chain; other
	// chains may still share the old page, so it simply stays where it
	// is.
	return newPage, true, nil
}

// faultPageLookup walks the shadow chain from obj looking for the page at
// offset (§3.4: "the system will find the page in some object in the list
// and make a copy, if necessary"). It returns the page to map and whether
// it belongs to the first object. For a write, a page found in a backing
// object is copied into the first object; for a read it is mapped
// read-only in place.
//
// sharedFront is true when the first object belongs to a sharing map: in
// that case every sharer resolves through the same shadow, so after a copy
// the backing page's existing hardware mappings are stale for the sharers
// and must be removed (they refault and find the shadow's page; snapshot
// holders refault and still reach the original).
//
// Every page this function returns is busy-claimed by the caller (claimed
// by lookupPage on a resident hit, freshly allocated otherwise); the
// caller releases the claim with pageWakeup once the mapping is entered.
//
// The walk runs with no map lock held and needs no guard against a
// concurrent collapseShadow transiting pages between chain levels: the
// caller holds its own reference on obj (taken under the map lock when the
// entry was snapshotted), and each deeper level is referenced by its
// front's shadow pointer. collapseShadow only drains a backing object
// whose sole reference is the collapsing front, so every object this walk
// can reach has refs >= 2 from any collapser's point of view and the
// collapse aborts before touching it.
// [winLo, winHi) is the entry's window in obj's byte coordinates; it is
// translated down the chain alongside the offset and bounds fault-in
// clustering. The returned installed flag reports whether this fault did
// installation work (pager fill, copy-up, zero fill) as opposed to a pure
// resident fast-path hit — the caller uses it to gate span promotion.
func (k *Kernel) faultPageLookup(ctx context.Context, obj *Object, offset uint64, wantWrite, sharedFront bool, winLo, winHi uint64) (*Page, bool, bool, error) {
	first := obj
	installed := false

restart:
	for {
		cur := first
		curOffset := offset
		lo, hi := winLo, winHi
		depth := 0
		for {
			depth++
			if depth > 1000 {
				panic(fmt.Sprintf("vm_fault: runaway shadow chain at depth %d", depth))
			}
			page, flight := k.claimPageOrFlight(cur, curOffset)
			if page != nil {
				if cur == first {
					k.stats.ReactivateHits.Add(1)
					return page, true, installed, nil
				}
				// Found in a backing object.
				if !wantWrite {
					return page, false, installed, nil
				}
				newPage, ok, err := k.copyUpPage(first, offset, sharedFront, page)
				if err != nil {
					return nil, false, installed, err
				}
				if !ok {
					continue restart
				}
				installed = true
				return newPage, true, installed, nil
			}

			// A busy absent page is owned by another faulter's pager
			// conversation: join its flight and share the outcome instead
			// of issuing a duplicate request. After a definitive "no data"
			// (or a zero-fill degradation) this level's pager must not be
			// re-asked.
			skipPager := false
			if flight != nil {
				retry, err := k.resolveFlight(ctx, cur, curOffset, flight)
				if err != nil {
					return nil, false, installed, err
				}
				if retry {
					installed = true
					continue restart
				}
				skipPager = true
			}

			cur.mu.Lock()
			pager := cur.pager
			shadow := cur.shadow
			shadowOffset := cur.shadowOffset
			cur.mu.Unlock()
			if pager != nil && !skipPager {
				retry, err := k.pageIn(ctx, cur, curOffset, pager, lo, hi)
				if err != nil {
					return nil, false, installed, err
				}
				if retry {
					installed = true
					continue restart
				}
				// Pager has no data: fall through to the shadow, or
				// zero-fill at the end of the chain.
			}

			if shadow == nil {
				// End of the chain: zero fill in the first object
				// ("memory with no pager is automatically zero filled").
				page, fresh, err := k.allocPage(first, offset)
				if err != nil {
					return nil, false, installed, err
				}
				if !fresh {
					continue restart
				}
				k.zeroPage(page)
				k.stats.ZeroFillFaults.Add(1)
				if wantWrite {
					page.dirty = true
				}
				installed = true
				return page, true, installed, nil
			}
			curOffset += shadowOffset
			lo += shadowOffset
			hi += shadowOffset
			cur = shadow
		}
	}
}

// tryClaimResident busy-claims the resident page at (obj, offset) without
// blocking: nil if no page is resident or it is busy or absent. Used by
// span promotion, which must never wait behind another fault.
func (k *Kernel) tryClaimResident(obj *Object, offset uint64) *Page {
	s := k.shardFor(obj, offset)
	key := pageKey{obj: obj, offset: offset}
	s.mu.Lock()
	p := s.pages[key]
	if p == nil || p.busy || p.absent {
		s.mu.Unlock()
		return nil
	}
	p.busy = true
	s.mu.Unlock()
	return p
}

// trySpanPromote upgrades the fault's mapping to the module's whole
// promotion granule (vax: one page-table chunk; sun3: one PMEG segment)
// when every Mach page of the surrounding span is already resident in the
// first object — the dense-run case clustered fault-in produces. One
// EnterRange covering the full span makes the module's promotion invariant
// (all entries valid, uniform protection) hold by construction.
//
// Called under the top map's read lock with the faulting page
// busy-claimed. Every other span page is try-claimed non-blocking; any
// obstacle (absent, busy, not resident) aborts the attempt, so promotion
// can never deadlock or stall the fault it rides on. Demotion is the
// module's job: any later Remove/Protect/Collect that breaks the span's
// uniformity downgrades it to per-page mappings.
func (k *Kernel) trySpanPromote(re pmap.RangeEnterer, fs *faultState, page *Page, enterProt vmtypes.Prot, wired bool) {
	span := re.SuperSpan()
	if span <= k.pageSize || span%k.pageSize != 0 || span&(span-1) != 0 {
		return
	}
	spanBase := fs.pageAddr & ^vmtypes.VA(span-1)
	spanEnd := spanBase + vmtypes.VA(span)
	if spanBase < fs.entryStart || spanEnd > fs.entryEnd {
		return
	}
	if re.SuperActive(fs.pageAddr) {
		return
	}
	if _, locking := fs.obj.Pager().(LockingPager); locking {
		// Per-offset pager locks can restrict individual pages; a span
		// mapping could not honor them.
		return
	}

	nPages := int(span / k.pageSize)
	offBase := fs.offset - uint64(fs.pageAddr-spanBase)
	claimedBuf := k.getClaimBuf(nPages)
	claimed := (*claimedBuf)[:nPages]
	ok := true
	for j := 0; j < nPages && ok; j++ {
		off := offBase + uint64(j)*k.pageSize
		if off == fs.offset {
			claimed[j] = page
			continue
		}
		if claimed[j] = k.tryClaimResident(fs.obj, off); claimed[j] == nil {
			ok = false
		}
	}
	if ok {
		pfnBuf := k.getPFNBuf(nPages * k.hwRatio)
		pfns := (*pfnBuf)[:nPages*k.hwRatio]
		for j, p := range claimed {
			for i := 0; i < k.hwRatio; i++ {
				pfns[j*k.hwRatio+i] = p.pfn + vmtypes.PFN(i)
			}
		}
		re.EnterRange(spanBase, pfns, enterProt, wired)
		k.putPFNBuf(pfnBuf)
		k.stats.SpanPromotions.Add(1)
	}
	for _, p := range claimed {
		if p == nil || p == page {
			continue // the faulting page stays claimed by faultFinish
		}
		if ok {
			k.activatePage(p) // mapped into hardware: it is in use now
		}
		k.pageWakeup(p)
	}
	k.putClaimBuf(claimedBuf)
}
