package core

// Fuzzers for the map-op grammar. FuzzMapOps drives a byte-coded program
// of Allocate/Deallocate/Protect/SetInherit/CopyTo/Fork/Wire/Fault/
// PageoutScan against one kernel, maintaining a shadow content model
// (first byte of every written page) and running the structural invariant
// walkers as it goes — any accounting drift, treap/list disagreement or
// stale page content is a crash. FuzzFaultVsMutator races a faulting
// goroutine against a map-mutating goroutine and checks the same
// invariants after the dust settles; run it with -race.
//
// The checked-in corpus under testdata/fuzz seeds the shapes of bugs
// found by earlier PRs (flush-before-pageout stale reads, fork/COW write
// visibility) so they stay covered forever.

import (
	"sync"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

// newFuzzKernel is newTestKernel with a quarter of the frames: the page
// accounting walker visits every frame, and fuzzing throughput is bounded
// by boot + walk cost per exec.
func newFuzzKernel(t testing.TB) *Kernel {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 2048,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	return MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
}

const (
	fuzzOpAlloc = iota
	fuzzOpDealloc
	fuzzOpDeallocPage
	fuzzOpProtect
	fuzzOpInherit
	fuzzOpWrite
	fuzzOpRead
	fuzzOpFork
	fuzzOpCopyTo
	fuzzOpWire
	fuzzOpUnwire
	fuzzOpScan
	fuzzOpFault
	fuzzOpDestroyMap
	fuzzOpSwitchMap
	fuzzOpCount
)

type fregion struct {
	addr  vmtypes.VA
	pages uint64
	inh   vmtypes.Inherit
}

type fmapState struct {
	m       *Map
	regions []fregion
	model   map[vmtypes.VA]byte // expected first byte per page; 0 if absent
	untrack map[vmtypes.VA]bool // pages with shared-inheritance history
}

func (ms *fmapState) forEachPage(r fregion, fn func(va vmtypes.VA)) {
	for i := uint64(0); i < r.pages; i++ {
		fn(r.addr + vmtypes.VA(i*4096))
	}
}

func FuzzMapOps(f *testing.F) {
	pg := func(ops ...byte) []byte { return ops }
	// Flush-before-pageout shape: written page paged out and read back must
	// return the written bytes, not a stale pager copy (the PR-4 bug).
	f.Add(pg(fuzzOpAlloc, 8, fuzzOpWrite, 0, 2, 0xAB, fuzzOpScan, fuzzOpRead, 0, 2, fuzzOpScan, fuzzOpRead, 0, 2))
	// Fork/COW visibility: parent writes after fork must not leak into the
	// child, across an intervening pageout.
	f.Add(pg(fuzzOpAlloc, 4, fuzzOpWrite, 0, 1, 0x11, fuzzOpFork, fuzzOpWrite, 0, 1, 0x22,
		fuzzOpScan, fuzzOpSwitchMap, 1, fuzzOpRead, 0, 1))
	// Copy + diverge: COW copy keeps the pre-copy bytes while the source
	// moves on, with wire/unwire churn in between.
	f.Add(pg(fuzzOpAlloc, 6, fuzzOpWrite, 0, 0, 0x33, fuzzOpCopyTo, 0, fuzzOpWrite, 0, 0, 0x44,
		fuzzOpWire, 1, fuzzOpScan, fuzzOpUnwire, 1, fuzzOpRead, 1, 0, fuzzOpRead, 0, 0))
	// Clipping churn: partial deallocate splits entries; protect and
	// inherit sub-ranges on the fragments, then fault through them.
	f.Add(pg(fuzzOpAlloc, 9, fuzzOpWrite, 0, 4, 0x55, fuzzOpDeallocPage, 0, 2, fuzzOpProtect, 1, 1,
		fuzzOpInherit, 0, 1, fuzzOpFault, 1, 0, 1, fuzzOpRead, 1, 1, fuzzOpDealloc, 0))

	f.Fuzz(func(t *testing.T, program []byte) {
		k := newFuzzKernel(t)
		cpu := k.Machine().CPU(0)
		root := k.NewMap()
		root.Activate(cpu)
		states := []*fmapState{{m: root, model: map[vmtypes.VA]byte{}, untrack: map[vmtypes.VA]bool{}}}
		cur := 0

		pos := 0
		next := func() (byte, bool) {
			if pos >= len(program) {
				return 0, false
			}
			b := program[pos]
			pos++
			return b, true
		}
		region := func(ms *fmapState) (fregion, int, bool) {
			b, ok := next()
			if !ok || len(ms.regions) == 0 {
				return fregion{}, 0, false
			}
			i := int(b) % len(ms.regions)
			return ms.regions[i], i, true
		}
		pageOf := func(r fregion) (vmtypes.VA, bool) {
			b, ok := next()
			if !ok {
				return 0, false
			}
			return r.addr + vmtypes.VA(uint64(b)%r.pages*k.PageSize()), true
		}

		steps := 0
		for {
			op, ok := next()
			if !ok || steps > 512 {
				break
			}
			steps++
			ms := states[cur]
			switch int(op) % fuzzOpCount {
			case fuzzOpAlloc:
				b, ok := next()
				if !ok || len(ms.regions) >= 8 {
					break
				}
				pages := uint64(b)%16 + 1
				addr, err := ms.m.Allocate(0, pages*k.PageSize(), true)
				if err == nil {
					ms.regions = append(ms.regions, fregion{addr, pages, vmtypes.InheritCopy})
				}
			case fuzzOpDealloc:
				r, i, ok := region(ms)
				if !ok {
					break
				}
				if err := ms.m.Deallocate(r.addr, r.pages*k.PageSize()); err == nil {
					ms.forEachPage(r, func(va vmtypes.VA) { delete(ms.model, va); delete(ms.untrack, va) })
					ms.regions = append(ms.regions[:i], ms.regions[i+1:]...)
				}
			case fuzzOpDeallocPage:
				r, i, ok := region(ms)
				if !ok || r.pages < 3 {
					break
				}
				va, ok := pageOf(r)
				if !ok {
					break
				}
				if err := ms.m.Deallocate(va, k.PageSize()); err != nil {
					break
				}
				delete(ms.model, va)
				delete(ms.untrack, va)
				// Split the record around the hole.
				left := fregion{r.addr, uint64(va-r.addr) / k.PageSize(), r.inh}
				right := fregion{va + vmtypes.VA(k.PageSize()), r.pages - left.pages - 1, r.inh}
				ms.regions = append(ms.regions[:i], ms.regions[i+1:]...)
				if left.pages > 0 {
					ms.regions = append(ms.regions, left)
				}
				if right.pages > 0 {
					ms.regions = append(ms.regions, right)
				}
			case fuzzOpProtect:
				r, _, ok := region(ms)
				if !ok {
					break
				}
				b, ok := next()
				if !ok {
					break
				}
				prots := []vmtypes.Prot{vmtypes.ProtRead, vmtypes.ProtDefault, vmtypes.ProtRead | vmtypes.ProtExecute, vmtypes.ProtNone}
				_ = ms.m.Protect(r.addr, r.pages*k.PageSize(), false, prots[int(b)%len(prots)])
			case fuzzOpInherit:
				r, i, ok := region(ms)
				if !ok {
					break
				}
				b, ok := next()
				if !ok {
					break
				}
				inhs := []vmtypes.Inherit{vmtypes.InheritCopy, vmtypes.InheritShared, vmtypes.InheritNone}
				inh := inhs[int(b)%len(inhs)]
				if err := ms.m.SetInherit(r.addr, r.pages*k.PageSize(), inh); err == nil {
					ms.regions[i].inh = inh
				}
			case fuzzOpWrite:
				r, _, ok := region(ms)
				if !ok {
					break
				}
				va, ok := pageOf(r)
				if !ok {
					break
				}
				v, ok := next()
				if !ok {
					break
				}
				if err := k.AccessBytes(cpu, ms.m, va, []byte{v}, true); err == nil && !ms.untrack[va] {
					ms.model[va] = v
				}
			case fuzzOpRead:
				r, _, ok := region(ms)
				if !ok {
					break
				}
				va, ok := pageOf(r)
				if !ok {
					break
				}
				buf := make([]byte, 1)
				if err := k.AccessBytes(cpu, ms.m, va, buf, false); err == nil && !ms.untrack[va] {
					if want := ms.model[va]; buf[0] != want {
						t.Fatalf("map %d va %#x read %#x, model says %#x (stale or lost write)", cur, va, buf[0], want)
					}
				}
			case fuzzOpFork:
				if len(states) >= 4 {
					break
				}
				child := ms.m.Fork()
				cs := &fmapState{m: child, model: map[vmtypes.VA]byte{}, untrack: map[vmtypes.VA]bool{}}
				for _, r := range ms.regions {
					switch r.inh {
					case vmtypes.InheritNone:
					case vmtypes.InheritShared:
						cs.regions = append(cs.regions, r)
						// Writes now travel both ways; stop predicting
						// content for these pages on either side.
						ms.forEachPage(r, func(va vmtypes.VA) {
							delete(ms.model, va)
							ms.untrack[va] = true
							cs.untrack[va] = true
						})
					default:
						cs.regions = append(cs.regions, r)
						ms.forEachPage(r, func(va vmtypes.VA) {
							if ms.untrack[va] {
								cs.untrack[va] = true
							} else if v, okm := ms.model[va]; okm {
								cs.model[va] = v
							}
						})
					}
				}
				states = append(states, cs)
			case fuzzOpCopyTo:
				r, _, ok := region(ms)
				if !ok || len(ms.regions) >= 8 {
					break
				}
				dst, err := ms.m.CopyTo(ms.m, r.addr, r.pages*k.PageSize(), 0, true)
				if err != nil {
					break
				}
				nr := fregion{dst, r.pages, vmtypes.InheritCopy}
				ms.regions = append(ms.regions, nr)
				for i := uint64(0); i < r.pages; i++ {
					src := r.addr + vmtypes.VA(i*k.PageSize())
					d := dst + vmtypes.VA(i*k.PageSize())
					if ms.untrack[src] {
						ms.untrack[d] = true
					} else if v, okm := ms.model[src]; okm {
						ms.model[d] = v
					}
				}
			case fuzzOpWire:
				r, _, ok := region(ms)
				if !ok {
					break
				}
				_ = ms.m.Wire(r.addr, r.pages*k.PageSize())
			case fuzzOpUnwire:
				r, _, ok := region(ms)
				if !ok {
					break
				}
				_ = ms.m.Unwire(r.addr, r.pages*k.PageSize())
			case fuzzOpScan:
				k.PageoutScan()
			case fuzzOpFault:
				r, _, ok := region(ms)
				if !ok {
					break
				}
				va, ok := pageOf(r)
				if !ok {
					break
				}
				b, ok := next()
				if !ok {
					break
				}
				access := vmtypes.ProtRead
				if b%2 == 1 {
					access = vmtypes.ProtWrite
				}
				_ = k.Fault(ms.m, va, access)
			case fuzzOpDestroyMap:
				if len(states) < 2 || cur == 0 {
					break
				}
				ms.m.Destroy()
				states = append(states[:cur], states[cur+1:]...)
				cur = 0
			case fuzzOpSwitchMap:
				b, ok := next()
				if !ok {
					break
				}
				states[cur].m.Deactivate(cpu)
				cur = int(b) % len(states)
				states[cur].m.Activate(cpu)
			}
			checkMapInvariants(t, states[cur].m)
			if steps%16 == 0 {
				checkPageAccounting(t, k)
				if sp, okm := states[cur].m.Pmap().(interface{ CheckSuperInvariants() error }); okm {
					if err := sp.CheckSuperInvariants(); err != nil {
						t.Fatalf("superpage invariants after step %d: %v", steps, err)
					}
				}
			}
		}
		for _, ms := range states {
			checkMapInvariants(t, ms.m)
		}
		checkPageAccounting(t, k)
	})
}

// FuzzFaultVsMutator races faults and pageout scans against map mutation
// on one address space. The content model cannot be checked concurrently;
// the properties under test are crash-freedom, race-cleanliness (run with
// -race) and intact structural invariants once both sides quiesce.
func FuzzFaultVsMutator(f *testing.F) {
	f.Add([]byte{0x10, 0x31, 0x52, 0x73, 0x04, 0x25}, []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0x00, 0x11, 0x22, 0x33}, []byte{7, 6, 5, 4, 3, 2, 1, 0})

	f.Fuzz(func(t *testing.T, mutOps, faultOps []byte) {
		k := newFuzzKernel(t)
		cpu := k.Machine().CPU(0)
		m := k.NewMap()
		m.Activate(cpu)
		const pages = 32
		base, err := m.Allocate(0, pages*4096, true)
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i+1 < len(mutOps); i += 2 {
				va := base + vmtypes.VA(uint64(mutOps[i+1])%pages*4096)
				switch mutOps[i] % 6 {
				case 0:
					_ = m.Protect(va, 4096, false, vmtypes.ProtRead)
				case 1:
					_ = m.Protect(va, 4096, false, vmtypes.ProtDefault)
				case 2:
					_ = m.Wire(va, 4096)
				case 3:
					_ = m.Unwire(va, 4096)
				case 4:
					_ = m.SetInherit(va, 4096, vmtypes.InheritShared)
				case 5:
					k.PageoutScan()
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i, b := range faultOps {
				va := base + vmtypes.VA(uint64(b)%pages*4096)
				_ = k.Fault(m, va, []vmtypes.Prot{vmtypes.ProtRead, vmtypes.ProtWrite}[i%2])
			}
		}()
		wg.Wait()

		checkMapInvariants(t, m)
		checkPageAccounting(t, k)
		m.Destroy()
		checkPageAccounting(t, k)
	})
}
