package core_test

import (
	"sync"
	"testing"
	"time"

	"machvm/internal/core"
	"machvm/internal/vmtypes"
)

func TestSimplifyMergesRestoredAttributes(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)

	addr, _ := m.Allocate(0, 8*4096, true)
	if err := k.AccessBytes(cpu, m, addr, make([]byte, 8*4096), true); err != nil {
		t.Fatal(err)
	}
	// Fragment the entry: protect the middle read-only.
	if err := m.Protect(addr+2*4096, 2*4096, false, vmtypes.ProtRead); err != nil {
		t.Fatal(err)
	}
	if got := m.EntryCount(); got != 3 {
		t.Fatalf("after middle protect: %d entries; want 3", got)
	}
	// Restore: the fragments are now identical but still split.
	if err := m.Protect(addr+2*4096, 2*4096, false, vmtypes.ProtDefault); err != nil {
		t.Fatal(err)
	}
	merged := m.SimplifyAll()
	if merged != 2 {
		t.Fatalf("Simplify merged %d; want 2", merged)
	}
	if got := m.EntryCount(); got != 1 {
		t.Fatalf("after simplify: %d entries; want 1", got)
	}
	// Data is intact and the map still works.
	b := make([]byte, 1)
	for off := 0; off < 8*4096; off += 4096 {
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(off), b, false); err != nil {
			t.Fatalf("read after simplify at %d: %v", off, err)
		}
	}
}

func TestSimplifyRespectsDifferences(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	addr, _ := m.Allocate(0, 4*4096, true)
	if err := m.SetInherit(addr, 4096, vmtypes.InheritShared); err != nil {
		t.Fatal(err)
	}
	// Different inheritance: must not merge.
	if merged := m.SimplifyAll(); merged != 0 {
		t.Fatalf("merged %d entries with differing inheritance", merged)
	}
	// Fresh zero-fill allocations with identical attributes do merge.
	a1, _ := m.Allocate(0, 4096, true)
	a2, _ := m.Allocate(a1+4096, 4096, false)
	_ = a2
	before := m.EntryCount()
	merged := m.Simplify(a1, a1+2*4096)
	if merged == 0 {
		t.Fatal("adjacent identical zero-fill entries should merge")
	}
	if m.EntryCount() != before-merged {
		t.Fatalf("entry count %d after merging %d from %d", m.EntryCount(), merged, before)
	}
}

func TestSimplifyAccountsObjectRefs(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, _ := m.Allocate(0, 4*4096, true)
	if err := k.Touch(cpu, m, addr, true); err != nil {
		t.Fatal(err)
	}
	// Clip via protect round-trip; both halves now reference the same
	// object with two references.
	if err := m.Protect(addr, 2*4096, false, vmtypes.ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := m.Protect(addr, 2*4096, false, vmtypes.ProtDefault); err != nil {
		t.Fatal(err)
	}
	if m.SimplifyAll() == 0 {
		t.Fatal("expected a merge")
	}
	// Destroying the map must free everything exactly once (no
	// double-release panic, no leak).
	m.Destroy()
	if k.FreeCount() != k.TotalPages() {
		t.Fatal("object reference accounting leaked pages")
	}
}

func TestPageoutDaemonBackground(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)
	stop := make(chan struct{})
	k.StartPageoutDaemon(stop, time.Millisecond)
	defer close(stop)

	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	// Walk through 3/4 of memory repeatedly; the daemon keeps free
	// memory above zero without explicit PageoutScan calls.
	size := uint64(k.TotalPages()) * k.PageSize() * 3 / 4
	addr, err := m.Allocate(0, size, true)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for off := uint64(0); off < size; off += k.PageSize() {
			if err := k.Touch(cpu, m, addr+vmtypes.VA(off), true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if k.FreeCount() == 0 {
		t.Fatal("free memory exhausted despite the daemon")
	}
}

func TestParallelFaultsAcrossCPUs(t *testing.T) {
	// Threads on two CPUs hammer a shared region and private regions
	// concurrently; run under -race this exercises the locking rules
	// §3.5 complains about.
	k, machine := newVAXKernel(t, 2)
	parent := k.NewMap()
	defer parent.Destroy()
	shared, _ := parent.Allocate(0, 64*4096, true)
	if err := parent.SetInherit(shared, 64*4096, vmtypes.InheritShared); err != nil {
		t.Fatal(err)
	}
	priv, _ := parent.Allocate(0, 64*4096, true)
	child := parent.Fork()
	defer child.Destroy()

	var wg sync.WaitGroup
	run := func(m *core.Map, cpuID, seed int) {
		defer wg.Done()
		cpu := machine.CPU(cpuID)
		m.Pmap().Activate(cpu)
		for i := 0; i < 400; i++ {
			off := vmtypes.VA(((i*seed + i) % 64) * 4096)
			if err := k.Touch(cpu, m, shared+off, i%2 == 0); err != nil {
				t.Errorf("shared touch: %v", err)
				return
			}
			if err := k.Touch(cpu, m, priv+off, true); err != nil {
				t.Errorf("private touch: %v", err)
				return
			}
		}
	}
	wg.Add(2)
	go run(parent, 0, 3)
	go run(child, 1, 7)
	wg.Wait()
}
