package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"machvm/internal/hw"
	"machvm/internal/trace"
	"machvm/internal/vmtypes"
)

// Pager errors. The kernel↔pager boundary is error-returning and
// context-aware: a pager that is slow, hung or crashed surfaces a bounded
// error instead of wedging the faulting thread or the pageout daemon.
var (
	// ErrDataUnavailable is the error a Pager returns from DataRequest
	// when it holds no data for the range (pager_data_unavailable); the
	// kernel continues down the shadow chain or zero-fills. It is a
	// definitive answer, never retried.
	ErrDataUnavailable = errors.New("pager: data unavailable")

	// ErrPagerTimeout is wrapped into the error returned when a pager
	// conversation exceeded the kernel's configured deadline (including
	// retries). How it surfaces to the faulter is governed by the
	// object's fallback policy (see PagerFallback).
	ErrPagerTimeout = errors.New("pager: request timed out")
)

// Pager is the kernel-side view of a memory manager. An important feature
// of Mach's virtual memory is that page faults and page-out requests can
// be handled outside the kernel (§3.3): the kernel translates a fault into
// a request for data from whatever task manages the object. The message
// protocol of Tables 3-1/3-2 lives in internal/pager; at this layer the
// conversation appears as synchronous calls, because the faulting thread
// blocks until pager_data_provided arrives anyway.
//
// Because the task servicing the object may be untrusted, slow or dead,
// every data call takes a context carrying the kernel's deadline and
// returns an error. The kernel wraps each call with its PagerPolicy
// (deadline, bounded retries with exponential backoff) and applies the
// object's fallback policy when the pager ultimately fails.
type Pager interface {
	// Name identifies the pager for diagnostics.
	Name() string

	// Init introduces a memory object to the pager (pager_init).
	Init(obj *Object)

	// DataRequest asks for [offset, offset+length) of the object
	// (pager_data_request). It returns the data, or ErrDataUnavailable if
	// the pager has none (pager_data_unavailable), in which case the
	// kernel zero-fills. A short read is legal: the kernel zero-fills the
	// tail. Implementations should honor ctx cancellation promptly; the
	// kernel abandons callers at the deadline either way.
	DataRequest(ctx context.Context, obj *Object, offset uint64, length int) ([]byte, error)

	// DataWrite returns modified data to the pager (pager_data_write,
	// issued by the pageout daemon). data is only valid for the duration
	// of the call — the kernel recycles the buffer — so an implementation
	// that keeps the bytes must copy them. On error the kernel keeps the
	// page dirty and resident (or degrades per the object's fallback
	// policy), so returning an error never loses data silently.
	DataWrite(ctx context.Context, obj *Object, offset uint64, data []byte) error

	// Terminate tells the pager the kernel is done with the object.
	Terminate(obj *Object)
}

// PagerPolicy bounds every kernel→pager conversation (per kernel,
// Config.Pager). The zero value selects defaults; negative values disable
// the corresponding bound explicitly.
type PagerPolicy struct {
	// Deadline is the overall wall-clock budget for one logical request,
	// including every retry and backoff sleep. 0 selects the default
	// (2s); negative means no deadline (a hung pager then relies solely
	// on caller-context cancellation — the pre-redesign behaviour).
	Deadline time.Duration
	// Retries is the number of additional attempts after a failed one
	// (errors other than ErrDataUnavailable). 0 selects the default (2);
	// negative means no retries.
	Retries int
	// BackoffBase is the sleep before the first retry; it doubles per
	// retry up to BackoffMax. 0 selects defaults (2ms base, 250ms max).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// DefaultPagerPolicy returns the policy used when Config.Pager is zero.
func DefaultPagerPolicy() PagerPolicy {
	return PagerPolicy{
		Deadline:    2 * time.Second,
		Retries:     2,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  250 * time.Millisecond,
	}
}

// normalize resolves the zero-value defaults and negative sentinels.
func (p PagerPolicy) normalize() PagerPolicy {
	def := DefaultPagerPolicy()
	if p.Deadline == 0 {
		p.Deadline = def.Deadline
	} else if p.Deadline < 0 {
		p.Deadline = 0 // no deadline
	}
	if p.Retries == 0 {
		p.Retries = def.Retries
	} else if p.Retries < 0 {
		p.Retries = 0
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = def.BackoffBase
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = def.BackoffMax
	}
	return p
}

// SetPagerPolicy replaces the kernel's pager deadline/retry policy (it
// normalizes defaults exactly as Config.Pager does). Calls already in
// flight keep the policy they started with.
func (k *Kernel) SetPagerPolicy(p PagerPolicy) {
	k.pagerPolicyMu.Lock()
	k.pagerPolicy = p.normalize()
	k.pagerPolicyMu.Unlock()
}

// PagerPolicy returns the kernel's current pager policy.
func (k *Kernel) PagerPolicy() PagerPolicy {
	k.pagerPolicyMu.Lock()
	defer k.pagerPolicyMu.Unlock()
	return k.pagerPolicy
}

// pagerCall runs one logical pager conversation under the kernel's policy:
// an overall deadline spanning bounded retries with exponential backoff.
// ErrDataUnavailable is definitive and returned as-is; exhaustion of the
// deadline is classified as ErrPagerTimeout. The op string labels errors.
func (k *Kernel) pagerCall(pager Pager, op string, call func(context.Context) ([]byte, error)) ([]byte, error) {
	pol := k.PagerPolicy()
	ctx := context.Background()
	if pol.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pol.Deadline)
		defer cancel()
	}
	backoff := pol.BackoffBase
	for attempt := 0; ; attempt++ {
		data, err := call(ctx)
		if err == nil {
			return data, nil
		}
		if errors.Is(err, ErrDataUnavailable) {
			return nil, err
		}
		k.stats.PagerErrors.Add(1)
		timedOut := ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded)
		if timedOut {
			k.stats.PagerTimeouts.Add(1)
			return nil, fmt.Errorf("%w: %s %s after %d attempt(s): %v",
				ErrPagerTimeout, pager.Name(), op, attempt+1, err)
		}
		if attempt >= pol.Retries {
			return nil, fmt.Errorf("pager %s: %s failed after %d attempt(s): %w",
				pager.Name(), op, attempt+1, err)
		}
		// Back off before the retry, still bounded by the deadline.
		k.stats.PagerRetries.Add(1)
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			k.stats.PagerTimeouts.Add(1)
			return nil, fmt.Errorf("%w: %s %s deadline during retry backoff: %v",
				ErrPagerTimeout, pager.Name(), op, err)
		}
		backoff *= 2
		if backoff > pol.BackoffMax {
			backoff = pol.BackoffMax
		}
	}
}

// pagerRequestData is DataRequest under the kernel policy.
func (k *Kernel) pagerRequestData(pager Pager, obj *Object, offset uint64, length int) ([]byte, error) {
	data, err := k.pagerCall(pager, "data_request", func(ctx context.Context) ([]byte, error) {
		return pager.DataRequest(ctx, obj, offset, length)
	})
	k.traceObserve(trace.EvPagerRead, trace.Event{
		Obj: obj.ID(), Addr: offset, Size: uint64(length),
		Ret: uint64(len(data)), Err: traceErr(err),
	})
	return data, err
}

// pagerWriteData is DataWrite under the kernel policy.
func (k *Kernel) pagerWriteData(pager Pager, obj *Object, offset uint64, data []byte) error {
	_, err := k.pagerCall(pager, "data_write", func(ctx context.Context) ([]byte, error) {
		return nil, pager.DataWrite(ctx, obj, offset, data)
	})
	k.traceObserve(trace.EvPagerWrite, trace.Event{
		Obj: obj.ID(), Addr: offset, Size: uint64(len(data)),
		Err: traceErr(err),
	})
	return err
}

// memorySwapPager is the built-in default pager used when no filesystem-
// backed inode pager has been configured. It stores paged-out data per
// object in page-granule chunks, charging disk costs so that paging is not
// free. The chunking matters for clustered reads: a multi-page DataRequest
// returns the contiguous run of chunks actually written starting at the
// requested offset, and stops at the first gap — a never-written neighbor
// must fall through the shadow chain, not read back as zeroes. The
// per-object index makes Terminate an O(object) purge — a terminated
// object's entries (and the dead *Object key) can never linger in the
// store.
//
// Zero-page elision: a full-page DataWrite of all zeroes stores a shared
// zero-length sentinel chunk instead of a 4KB copy, and DataRequest
// reconstitutes the zeroes on the way out. Sparse workloads (mostly-zero
// heaps paged out under pressure) therefore cost the store almost nothing,
// and the elided pages skip the per-KB transfer charge — only the
// per-operation latency remains.
type memorySwapPager struct {
	machine  *hw.Machine
	pageSize uint64
	zero     []byte // shared all-zero page for sentinel reconstitution
	stats    *Stats // kernel counters (SwapZeroPages); never nil

	mu    sync.Mutex
	store map[*Object]map[uint64][]byte
}

// swapZeroChunk is the stored sentinel for an elided all-zero page. Only
// full-page chunks are elided, so a zero length is unambiguous.
var swapZeroChunk = []byte{}

func newMemorySwapPager(m *hw.Machine, pageSize uint64, stats *Stats) *memorySwapPager {
	return &memorySwapPager{
		machine:  m,
		pageSize: pageSize,
		zero:     make([]byte, pageSize),
		stats:    stats,
		store:    make(map[*Object]map[uint64][]byte),
	}
}

func (s *memorySwapPager) Name() string { return "default-swap" }

func (s *memorySwapPager) Init(obj *Object) {}

func (s *memorySwapPager) DataRequest(ctx context.Context, obj *Object, offset uint64, length int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	chunks := s.store[obj]
	first, ok := chunks[offset]
	if !ok {
		s.mu.Unlock()
		return nil, ErrDataUnavailable
	}
	// A zero-length chunk is the elided-zero-page sentinel: reconstitute a
	// full page of zeroes in its place. Elided pages also skip the per-KB
	// transfer charge below — they were never really moved.
	data := make([]byte, 0, length)
	elided := 0
	appendChunk := func(chunk []byte) {
		if len(chunk) == 0 {
			data = append(data, s.zero...)
			elided++
			return
		}
		data = append(data, chunk...)
	}
	appendChunk(first)
	for next := offset + s.pageSize; len(data) < length; next += s.pageSize {
		chunk, ok := chunks[next]
		if !ok {
			break
		}
		appendChunk(chunk)
	}
	s.mu.Unlock()
	if len(data) > length {
		data = data[:length]
	}
	s.machine.Charge(s.machine.Cost.DiskLatency)
	moved := len(data) - elided*int(s.pageSize)
	if moved > 0 {
		s.machine.ChargeKB(s.machine.Cost.DiskPerKB, moved)
	}
	return data, nil
}

func (s *memorySwapPager) DataWrite(ctx context.Context, obj *Object, offset uint64, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	m := s.store[obj]
	if m == nil {
		m = make(map[uint64][]byte)
		s.store[obj] = m
	}
	moved := 0
	for lo := uint64(0); lo < uint64(len(data)); lo += s.pageSize {
		hi := lo + s.pageSize
		if hi > uint64(len(data)) {
			hi = uint64(len(data))
		}
		chunk := data[lo:hi]
		// Zero-page elision: a full page of zeroes stores the shared
		// sentinel instead of a 4KB copy and skips the transfer charge.
		if hi-lo == s.pageSize && vmtypes.IsZero(chunk) {
			m[offset+lo] = swapZeroChunk
			s.stats.SwapZeroPages.Add(1)
			continue
		}
		cp := make([]byte, hi-lo)
		copy(cp, chunk)
		m[offset+lo] = cp
		moved += len(cp)
	}
	s.mu.Unlock()
	s.machine.Charge(s.machine.Cost.DiskLatency)
	if moved > 0 {
		s.machine.ChargeKB(s.machine.Cost.DiskPerKB, moved)
	}
	return nil
}

func (s *memorySwapPager) Terminate(obj *Object) {
	s.mu.Lock()
	delete(s.store, obj)
	s.mu.Unlock()
}

// storedObjects reports how many objects hold swap entries (leak tests).
func (s *memorySwapPager) storedObjects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.store)
}
