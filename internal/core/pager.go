package core

import (
	"sync"

	"machvm/internal/hw"
)

// Pager is the kernel-side view of a memory manager. An important feature
// of Mach's virtual memory is that page faults and page-out requests can
// be handled outside the kernel (§3.3): the kernel translates a fault into
// a request for data from whatever task manages the object. The message
// protocol of Tables 3-1/3-2 lives in internal/pager; at this layer the
// conversation appears as synchronous calls, because the faulting thread
// blocks until pager_data_provided arrives anyway.
type Pager interface {
	// Name identifies the pager for diagnostics.
	Name() string

	// Init introduces a memory object to the pager (pager_init).
	Init(obj *Object)

	// DataRequest asks for [offset, offset+length) of the object
	// (pager_data_request). It returns the data, or unavailable=true if
	// the pager has none (pager_data_unavailable), in which case the
	// kernel zero-fills.
	DataRequest(obj *Object, offset uint64, length int) (data []byte, unavailable bool)

	// DataWrite returns modified data to the pager (pager_data_write,
	// issued by the pageout daemon). data is only valid for the duration
	// of the call — the kernel recycles the buffer — so an implementation
	// that keeps the bytes must copy them.
	DataWrite(obj *Object, offset uint64, data []byte)

	// Terminate tells the pager the kernel is done with the object.
	Terminate(obj *Object)
}

// memorySwapPager is the built-in default pager used when no filesystem-
// backed inode pager has been configured. It stores paged-out data in a
// map, charging disk costs so that paging is not free.
type memorySwapPager struct {
	machine *hw.Machine

	mu    sync.Mutex
	store map[swapKey][]byte
}

type swapKey struct {
	obj    *Object
	offset uint64
}

func newMemorySwapPager(m *hw.Machine) *memorySwapPager {
	return &memorySwapPager{machine: m, store: make(map[swapKey][]byte)}
}

func (s *memorySwapPager) Name() string { return "default-swap" }

func (s *memorySwapPager) Init(obj *Object) {}

func (s *memorySwapPager) DataRequest(obj *Object, offset uint64, length int) ([]byte, bool) {
	s.mu.Lock()
	data, ok := s.store[swapKey{obj: obj, offset: offset}]
	s.mu.Unlock()
	if !ok {
		return nil, true
	}
	s.machine.Charge(s.machine.Cost.DiskLatency)
	s.machine.ChargeKB(s.machine.Cost.DiskPerKB, length)
	return data, false
}

func (s *memorySwapPager) DataWrite(obj *Object, offset uint64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.machine.Charge(s.machine.Cost.DiskLatency)
	s.machine.ChargeKB(s.machine.Cost.DiskPerKB, len(data))
	s.mu.Lock()
	s.store[swapKey{obj: obj, offset: offset}] = cp
	s.mu.Unlock()
}

func (s *memorySwapPager) Terminate(obj *Object) {
	s.mu.Lock()
	for k := range s.store {
		if k.obj == obj {
			delete(s.store, k)
		}
	}
	s.mu.Unlock()
}
