package core

// White-box structural invariant tests: whatever sequence of operations
// runs, an address map must remain a sorted, non-overlapping list of
// entries whose accounting matches (§3.2), and every resident page must be
// exactly where the hash, the object list and the queues agree it is.

import (
	"math/rand"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

func newTestKernel(t testing.TB) *Kernel {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 8192,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	return MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
}

// checkMapInvariants verifies the §3.2 structure.
func checkMapInvariants(t *testing.T, m *Map) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	var prev *MapEntry
	n := 0
	var size uint64
	for e := m.head; e != nil; e = e.next {
		n++
		size += e.Span()
		if e.start >= e.end {
			t.Fatalf("entry [%x,%x) is empty or inverted", e.start, e.end)
		}
		if e.start < m.min || e.end > m.max {
			t.Fatalf("entry [%x,%x) outside map bounds [%x,%x)", e.start, e.end, m.min, m.max)
		}
		if prev != nil {
			if prev.next != e || e.prev != prev {
				t.Fatal("list links corrupted")
			}
			if prev.end > e.start {
				t.Fatalf("entries overlap or unsorted: [%x,%x) then [%x,%x)", prev.start, prev.end, e.start, e.end)
			}
		} else if e.prev != nil {
			t.Fatal("head has a prev")
		}
		if e.object != nil && e.submap != nil {
			t.Fatal("entry has both object and submap")
		}
		if !e.maxProt.Allows(e.prot) {
			t.Fatalf("current prot %v exceeds max %v", e.prot, e.maxProt)
		}
		prev = e
	}
	if prev != m.tail {
		t.Fatal("tail link corrupted")
	}
	if n != m.nentries {
		t.Fatalf("nentries = %d, counted %d", m.nentries, n)
	}
	if size != m.sizeBytes {
		t.Fatalf("sizeBytes = %d, counted %d", m.sizeBytes, size)
	}
	if h := m.hint.Load(); h != nil {
		found := false
		for e := m.head; e != nil; e = e.next {
			if e == h {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("hint points at an unlinked entry")
		}
	}
	// The treap index must agree with the list: same membership, sorted
	// keys, heap-ordered priorities, and exact lookups for every entry.
	if got := countTreap(t, m.root, nil, nil); got != n {
		t.Fatalf("treap holds %d entries, list holds %d", got, n)
	}
	for e := m.head; e != nil; e = e.next {
		found, _ := m.indexLookupLE(e.start)
		if found != e {
			t.Fatalf("index lookup for [%x,%x) found %p, want %p", e.start, e.end, found, e)
		}
	}
}

// countTreap walks the index checking BST key order and the max-heap
// priority invariant, returning the node count.
func countTreap(t *testing.T, e *MapEntry, lo, hi *vmtypes.VA) int {
	t.Helper()
	if e == nil {
		return 0
	}
	if lo != nil && e.start < *lo || hi != nil && e.start >= *hi {
		t.Fatalf("treap key %x violates BST order", e.start)
	}
	if e.treeLeft != nil && e.treeLeft.treePrio > e.treePrio ||
		e.treeRight != nil && e.treeRight.treePrio > e.treePrio {
		t.Fatalf("treap priority heap violated at %x", e.start)
	}
	return 1 + countTreap(t, e.treeLeft, lo, &e.start) + countTreap(t, e.treeRight, &e.start, hi)
}

// checkPageAccounting verifies the resident page table's three-way
// linkage: sharded hash, object lists, queues. The caller must have
// quiesced the kernel (no concurrent faulters or daemon); the locks are
// still taken shard by shard so the helper is usable right after a
// concurrent phase ends.
func checkPageAccounting(t *testing.T, k *Kernel) {
	t.Helper()
	// Every hashed page's identity agrees with its key, shard by shard.
	seen := map[*Object]int{}
	hashed := 0
	for i := range k.shards {
		s := &k.shards[i]
		s.mu.Lock()
		for key, p := range s.pages {
			obj, off, _, ok := p.identity()
			if !ok || obj != key.obj || off != key.offset {
				s.mu.Unlock()
				t.Fatal("hash entry disagrees with page identity")
			}
			if k.shardFor(key.obj, key.offset) != s {
				s.mu.Unlock()
				t.Fatal("page hashed into the wrong shard")
			}
			seen[obj]++
			hashed++
		}
		s.mu.Unlock()
	}
	// Queue counts are consistent and partition the pages.
	counts := map[int]int{}
	for _, p := range k.pages {
		counts[p.queue]++
		if _, _, _, ok := p.identity(); ok && (p.queue == queueFree || p.queue == queueMagazine) {
			t.Fatal("free page still belongs to an object")
		}
		if p.wireCount.Load() > 0 && p.queue != queueNone {
			t.Fatal("wired page on a pageable queue")
		}
	}
	if counts[queueActive] != k.ActiveCount() {
		t.Fatalf("active count %d vs %d", counts[queueActive], k.ActiveCount())
	}
	if counts[queueInactive] != k.InactiveCount() {
		t.Fatalf("inactive count %d vs %d", counts[queueInactive], k.InactiveCount())
	}
	// Free-layer invariant: every free page is on exactly one of depot or
	// magazine (list membership walked and checked against the queue ids),
	// and FreeCount() equals magazines + depot.
	freeListed := map[*Page]int{}
	k.depot.mu.Lock()
	depotWalk := 0
	for p := k.depot.q.head; p != nil; p = p.qNext {
		freeListed[p]++
		depotWalk++
		if p.queue != queueFree {
			k.depot.mu.Unlock()
			t.Fatalf("page on the depot has queue id %d", p.queue)
		}
	}
	if depotWalk != k.depot.q.count {
		k.depot.mu.Unlock()
		t.Fatalf("depot count %d, walked %d", k.depot.q.count, depotWalk)
	}
	k.depot.mu.Unlock()
	magWalk := 0
	for i := range k.magazines {
		m := &k.magazines[i]
		m.mu.Lock()
		walked := 0
		for p := m.q.head; p != nil; p = p.qNext {
			freeListed[p]++
			walked++
			if p.queue != queueMagazine {
				m.mu.Unlock()
				t.Fatalf("page in magazine %d has queue id %d", i, p.queue)
			}
			if int(p.mag) != i {
				m.mu.Unlock()
				t.Fatalf("page in magazine %d is tagged for magazine %d", i, p.mag)
			}
		}
		if walked != m.q.count {
			m.mu.Unlock()
			t.Fatalf("magazine %d count %d, walked %d", i, m.q.count, walked)
		}
		magWalk += walked
		m.mu.Unlock()
	}
	for p, n := range freeListed {
		if n != 1 {
			t.Fatalf("page %p appears %d times across the free layer", p, n)
		}
	}
	if depotWalk != counts[queueFree] {
		t.Fatalf("depot holds %d pages, queue ids say %d", depotWalk, counts[queueFree])
	}
	if magWalk != counts[queueMagazine] {
		t.Fatalf("magazines hold %d pages, queue ids say %d", magWalk, counts[queueMagazine])
	}
	if depotWalk+magWalk != k.FreeCount() {
		t.Fatalf("free count %d vs depot %d + magazines %d", k.FreeCount(), depotWalk, magWalk)
	}
	// Every non-free page with an identity is hashed exactly once.
	withIdent := 0
	for _, p := range k.pages {
		if _, _, _, ok := p.identity(); ok {
			withIdent++
		}
	}
	if withIdent != hashed {
		t.Fatalf("%d pages hold an identity but %d are hashed", withIdent, hashed)
	}
	// Object resident counts match the hash, and the object lists agree.
	for obj, n := range seen {
		obj.mu.Lock()
		resident := obj.resident
		listed := 0
		for p := obj.pageList; p != nil; p = p.objNext {
			listed++
		}
		name := obj.name
		obj.mu.Unlock()
		if resident != n {
			t.Fatalf("object %q resident=%d, hash says %d", name, resident, n)
		}
		if listed != n {
			t.Fatalf("object %q lists %d pages, hash says %d", name, listed, n)
		}
	}
}

func TestMapInvariantsUnderRandomOps(t *testing.T) {
	k := newTestKernel(t)
	cpu := k.Machine().CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)

	rng := rand.New(rand.NewSource(42))
	type region struct {
		addr vmtypes.VA
		size uint64
	}
	var regions []region

	const steps = 600
	for i := 0; i < steps; i++ {
		switch op := rng.Intn(10); {
		case op < 3: // allocate
			size := uint64(rng.Intn(16)+1) * k.PageSize()
			addr, err := m.Allocate(0, size, true)
			if err == nil {
				regions = append(regions, region{addr, size})
			}
		case op < 5 && len(regions) > 0: // deallocate whole region
			idx := rng.Intn(len(regions))
			r := regions[idx]
			if err := m.Deallocate(r.addr, r.size); err != nil {
				t.Fatalf("dealloc: %v", err)
			}
			regions = append(regions[:idx], regions[idx+1:]...)
		case op < 6 && len(regions) > 0: // partial deallocate (forces clipping)
			r := regions[rng.Intn(len(regions))]
			if r.size >= 3*k.PageSize() {
				_ = m.Deallocate(r.addr+vmtypes.VA(k.PageSize()), k.PageSize())
				// The region record is now stale; drop all records and
				// rediscover from the map to keep the test simple.
				regions = regions[:0]
				for _, ri := range m.Regions() {
					regions = append(regions, region{ri.Start, uint64(ri.End - ri.Start)})
				}
			}
		case op < 8 && len(regions) > 0: // protect a sub-range
			r := regions[rng.Intn(len(regions))]
			prot := []vmtypes.Prot{vmtypes.ProtRead, vmtypes.ProtDefault, vmtypes.ProtRead | vmtypes.ProtExecute}[rng.Intn(3)]
			off := uint64(rng.Intn(int(r.size/k.PageSize()))) * k.PageSize()
			sz := r.size - off
			_ = m.Protect(r.addr+vmtypes.VA(off), sz, false, prot)
		case op < 9 && len(regions) > 0: // inherit a sub-range
			r := regions[rng.Intn(len(regions))]
			inh := []vmtypes.Inherit{vmtypes.InheritShared, vmtypes.InheritCopy, vmtypes.InheritNone}[rng.Intn(3)]
			_ = m.SetInherit(r.addr, r.size, inh)
		default: // touch something
			if len(regions) > 0 {
				r := regions[rng.Intn(len(regions))]
				_ = k.Touch(cpu, m, r.addr, rng.Intn(2) == 0)
			}
		}
		checkMapInvariants(t, m)
	}
	checkPageAccounting(t, k)
}

func TestPageAccountingAfterChurn(t *testing.T) {
	k := newTestKernel(t)
	cpu := k.Machine().CPU(0)
	rng := rand.New(rand.NewSource(7))

	for round := 0; round < 5; round++ {
		m := k.NewMap()
		m.Pmap().Activate(cpu)
		addr, err := m.Allocate(0, 64*k.PageSize(), true)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if rng.Intn(2) == 0 {
				if err := k.Touch(cpu, m, addr+vmtypes.VA(uint64(i)*k.PageSize()), true); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Copy half of it, touch the copy.
		dst, err := m.CopyTo(m, addr, 32*k.PageSize(), 0, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i += 3 {
			if err := k.Touch(cpu, m, dst+vmtypes.VA(uint64(i)*k.PageSize()), true); err != nil {
				t.Fatal(err)
			}
		}
		checkPageAccounting(t, k)
		m.Pmap().Deactivate(cpu)
		m.Destroy()
		checkPageAccounting(t, k)
	}
	// After everything is destroyed, all pages must be free again.
	if k.FreeCount() != k.TotalPages() {
		t.Fatalf("leak: %d of %d pages free after destroying all maps", k.FreeCount(), k.TotalPages())
	}
}

func TestShadowChainBoundedByCollapse(t *testing.T) {
	k := newTestKernel(t)
	cpu := k.Machine().CPU(0)
	m := k.NewMap()
	m.Pmap().Activate(cpu)
	addr, _ := m.Allocate(0, 4*k.PageSize(), true)
	_ = k.Touch(cpu, m, addr, true)

	for i := 0; i < 24; i++ {
		child := m.Fork()
		_ = k.Touch(cpu, m, addr, true) // parent write forces a shadow
		m.Destroy()
		m = child
		m.Pmap().Activate(cpu)
		_ = k.Touch(cpu, m, addr, true)

		m.mu.Lock()
		e, ok := m.lookupEntryLocked(addr)
		var chain int
		if ok && e.object != nil {
			chain = e.object.ChainLength()
		}
		m.mu.Unlock()
		if chain > 4 {
			t.Fatalf("generation %d: shadow chain length %d; collapse is not keeping up", i, chain)
		}
	}
	m.Destroy()
}

func TestTransitMapHoldsNoPmap(t *testing.T) {
	k := newTestKernel(t)
	tm := k.NewTransitMap(64 * 1024)
	if tm.Pmap() != nil {
		t.Fatal("transit map must not own hardware state")
	}
	if !tm.IsShareMap() {
		t.Fatal("transit map should be pmap-less (share-map-like)")
	}
	tm.Destroy()
}
