package core

// White-box structural invariant tests: whatever sequence of operations
// runs, an address map must remain a sorted, non-overlapping list of
// entries whose accounting matches (§3.2), and every resident page must be
// exactly where the hash, the object list and the queues agree it is.

import (
	"math/rand"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

func newTestKernel(t testing.TB) *Kernel {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 8192,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	return MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
}

// checkMapInvariants verifies the §3.2 structure via the runtime checker
// in invariant.go (also used by the SLO layer and the failover matrix).
func checkMapInvariants(t *testing.T, m *Map) {
	t.Helper()
	for _, v := range m.CheckInvariants() {
		t.Error(v)
	}
	if t.Failed() {
		t.FailNow()
	}
}

// checkPageAccounting verifies the resident page table's three-way
// linkage — sharded hash, object lists, queues — via the runtime checker
// in invariant.go. The caller must have quiesced the kernel (no
// concurrent faulters or daemon); the locks are still taken shard by
// shard so the helper is usable right after a concurrent phase ends.
func checkPageAccounting(t *testing.T, k *Kernel) {
	t.Helper()
	for _, v := range k.CheckInvariants() {
		t.Error(v)
	}
	if t.Failed() {
		t.FailNow()
	}
}

func TestMapInvariantsUnderRandomOps(t *testing.T) {
	k := newTestKernel(t)
	cpu := k.Machine().CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)

	rng := rand.New(rand.NewSource(42))
	type region struct {
		addr vmtypes.VA
		size uint64
	}
	var regions []region

	const steps = 600
	for i := 0; i < steps; i++ {
		switch op := rng.Intn(10); {
		case op < 3: // allocate
			size := uint64(rng.Intn(16)+1) * k.PageSize()
			addr, err := m.Allocate(0, size, true)
			if err == nil {
				regions = append(regions, region{addr, size})
			}
		case op < 5 && len(regions) > 0: // deallocate whole region
			idx := rng.Intn(len(regions))
			r := regions[idx]
			if err := m.Deallocate(r.addr, r.size); err != nil {
				t.Fatalf("dealloc: %v", err)
			}
			regions = append(regions[:idx], regions[idx+1:]...)
		case op < 6 && len(regions) > 0: // partial deallocate (forces clipping)
			r := regions[rng.Intn(len(regions))]
			if r.size >= 3*k.PageSize() {
				_ = m.Deallocate(r.addr+vmtypes.VA(k.PageSize()), k.PageSize())
				// The region record is now stale; drop all records and
				// rediscover from the map to keep the test simple.
				regions = regions[:0]
				for _, ri := range m.Regions() {
					regions = append(regions, region{ri.Start, uint64(ri.End - ri.Start)})
				}
			}
		case op < 8 && len(regions) > 0: // protect a sub-range
			r := regions[rng.Intn(len(regions))]
			prot := []vmtypes.Prot{vmtypes.ProtRead, vmtypes.ProtDefault, vmtypes.ProtRead | vmtypes.ProtExecute}[rng.Intn(3)]
			off := uint64(rng.Intn(int(r.size/k.PageSize()))) * k.PageSize()
			sz := r.size - off
			_ = m.Protect(r.addr+vmtypes.VA(off), sz, false, prot)
		case op < 9 && len(regions) > 0: // inherit a sub-range
			r := regions[rng.Intn(len(regions))]
			inh := []vmtypes.Inherit{vmtypes.InheritShared, vmtypes.InheritCopy, vmtypes.InheritNone}[rng.Intn(3)]
			_ = m.SetInherit(r.addr, r.size, inh)
		default: // touch something
			if len(regions) > 0 {
				r := regions[rng.Intn(len(regions))]
				_ = k.Touch(cpu, m, r.addr, rng.Intn(2) == 0)
			}
		}
		checkMapInvariants(t, m)
	}
	checkPageAccounting(t, k)
}

func TestPageAccountingAfterChurn(t *testing.T) {
	k := newTestKernel(t)
	cpu := k.Machine().CPU(0)
	rng := rand.New(rand.NewSource(7))

	for round := 0; round < 5; round++ {
		m := k.NewMap()
		m.Pmap().Activate(cpu)
		addr, err := m.Allocate(0, 64*k.PageSize(), true)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if rng.Intn(2) == 0 {
				if err := k.Touch(cpu, m, addr+vmtypes.VA(uint64(i)*k.PageSize()), true); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Copy half of it, touch the copy.
		dst, err := m.CopyTo(m, addr, 32*k.PageSize(), 0, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i += 3 {
			if err := k.Touch(cpu, m, dst+vmtypes.VA(uint64(i)*k.PageSize()), true); err != nil {
				t.Fatal(err)
			}
		}
		checkPageAccounting(t, k)
		m.Pmap().Deactivate(cpu)
		m.Destroy()
		checkPageAccounting(t, k)
	}
	// After everything is destroyed, all pages must be free again.
	if k.FreeCount() != k.TotalPages() {
		t.Fatalf("leak: %d of %d pages free after destroying all maps", k.FreeCount(), k.TotalPages())
	}
}

func TestShadowChainBoundedByCollapse(t *testing.T) {
	k := newTestKernel(t)
	cpu := k.Machine().CPU(0)
	m := k.NewMap()
	m.Pmap().Activate(cpu)
	addr, _ := m.Allocate(0, 4*k.PageSize(), true)
	_ = k.Touch(cpu, m, addr, true)

	for i := 0; i < 24; i++ {
		child := m.Fork()
		_ = k.Touch(cpu, m, addr, true) // parent write forces a shadow
		m.Destroy()
		m = child
		m.Pmap().Activate(cpu)
		_ = k.Touch(cpu, m, addr, true)

		m.mu.Lock()
		e, ok := m.lookupEntryLocked(addr)
		var chain int
		if ok && e.object != nil {
			chain = e.object.ChainLength()
		}
		m.mu.Unlock()
		if chain > 4 {
			t.Fatalf("generation %d: shadow chain length %d; collapse is not keeping up", i, chain)
		}
	}
	m.Destroy()
}

func TestTransitMapHoldsNoPmap(t *testing.T) {
	k := newTestKernel(t)
	tm := k.NewTransitMap(64 * 1024)
	if tm.Pmap() != nil {
		t.Fatal("transit map must not own hardware state")
	}
	if !tm.IsShareMap() {
		t.Fatal("transit map should be pmap-less (share-map-like)")
	}
	tm.Destroy()
}
