package core_test

// Model-based equivalence testing: a reference model (flat Go byte maps)
// runs the same random operation stream — writes, reads, virtual copies,
// forks, protection flips, deallocations — as the full VM stack, on every
// architecture, under memory pressure that forces paging. Any divergence
// between what a task reads and what the model says is a correctness bug
// somewhere in the maps / objects / shadow chains / pmaps / pageout.

import (
	"fmt"
	"math/rand"
	"testing"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/ns32082"
	"machvm/internal/pmap/rtpc"
	"machvm/internal/pmap/sun3"
	"machvm/internal/pmap/tlbonly"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

type modelArch struct {
	name     string
	hwPage   int
	machPage int
	frames   int
	build    func(*hw.Machine, pmap.Strategy) pmap.Module
	cost     hw.CostModel
}

func modelArchs() []modelArch {
	return []modelArch{
		{"vax", vax.HWPageSize, 4096, 8192, func(m *hw.Machine, s pmap.Strategy) pmap.Module { return vax.New(m, s) }, vax.DefaultCost()},
		{"rtpc", rtpc.HWPageSize, 4096, 2048, func(m *hw.Machine, s pmap.Strategy) pmap.Module { return rtpc.New(m, s) }, rtpc.DefaultCost()},
		{"sun3", sun3.HWPageSize, 8192, 512, func(m *hw.Machine, s pmap.Strategy) pmap.Module { return sun3.New(m, s) }, sun3.DefaultCost()},
		{"ns32082", ns32082.HWPageSize, 4096, 8192, func(m *hw.Machine, s pmap.Strategy) pmap.Module { return ns32082.New(m, s) }, ns32082.DefaultCost()},
		{"tlbonly", tlbonly.HWPageSize, 4096, 1024, func(m *hw.Machine, s pmap.Strategy) pmap.Module { return tlbonly.New(m, s) }, tlbonly.DefaultCost()},
	}
}

// modelTask pairs a real map with its reference model.
type modelTask struct {
	m       *core.Map
	mem     map[vmtypes.VA]byte // expected content of every allocated+touched byte
	ro      map[vmtypes.VA]bool // pages currently read-only (by page address)
	regions []modelRegion
}

type modelRegion struct {
	addr vmtypes.VA
	size uint64
}

func TestModelEquivalenceAllArchs(t *testing.T) {
	for _, a := range modelArchs() {
		for _, strategy := range []pmap.Strategy{pmap.ShootImmediate, pmap.ShootDeferred} {
			t.Run(fmt.Sprintf("%s/%s", a.name, strategy), func(t *testing.T) {
				runModelEquivalence(t, a, strategy)
			})
		}
	}
}

func runModelEquivalence(t *testing.T, a modelArch, strategy pmap.Strategy) {
	machine := hw.NewMachine(hw.Config{
		Cost:       a.cost,
		HWPageSize: a.hwPage,
		PhysFrames: a.frames,
		CPUs:       2,
		TLBSize:    32,
	})
	mod := a.build(machine, strategy)
	k := core.MustNewKernel(core.Config{Machine: machine, Module: mod, PageSize: a.machPage})
	cpu := machine.CPU(0)
	pageSize := k.PageSize()

	rng := rand.New(rand.NewSource(int64(len(a.name)) * 7919))
	newTask := func() *modelTask {
		mt := &modelTask{
			m:   k.NewMap(),
			mem: make(map[vmtypes.VA]byte),
			ro:  make(map[vmtypes.VA]bool),
		}
		mt.m.Pmap().Activate(cpu)
		return mt
	}
	tasks := []*modelTask{newTask()}
	defer func() {
		for _, mt := range tasks {
			mt.m.Destroy()
		}
	}()

	pickRegion := func(mt *modelTask) (modelRegion, bool) {
		if len(mt.regions) == 0 {
			return modelRegion{}, false
		}
		return mt.regions[rng.Intn(len(mt.regions))], true
	}

	readCheck := func(mt *modelTask, va vmtypes.VA, n int) {
		buf := make([]byte, n)
		if err := k.AccessBytes(cpu, mt.m, va, buf, false); err != nil {
			t.Fatalf("read %#x+%d: %v", va, n, err)
		}
		for i := range buf {
			want := mt.mem[va+vmtypes.VA(i)] // zero if never written
			if buf[i] != want {
				t.Fatalf("divergence at %#x: got %d want %d", va+vmtypes.VA(i), buf[i], want)
			}
		}
	}

	const steps = 400
	for step := 0; step < steps; step++ {
		mt := tasks[rng.Intn(len(tasks))]
		mt.m.Pmap().Activate(cpu)
		switch op := rng.Intn(20); {
		case op < 5: // allocate
			size := uint64(rng.Intn(8)+1) * pageSize
			addr, err := mt.m.Allocate(0, size, true)
			if err != nil {
				continue
			}
			mt.regions = append(mt.regions, modelRegion{addr, size})
			// Model: fresh memory reads zero (delete any stale keys).
			for off := uint64(0); off < size; off++ {
				delete(mt.mem, addr+vmtypes.VA(off))
			}
		case op < 11: // write random bytes
			r, ok := pickRegion(mt)
			if !ok {
				continue
			}
			off := uint64(rng.Intn(int(r.size)))
			n := rng.Intn(200) + 1
			if uint64(n) > r.size-off {
				n = int(r.size - off)
			}
			va := r.addr + vmtypes.VA(off)
			pageVA := vmtypes.VA(uint64(va) &^ (pageSize - 1))
			if mt.ro[pageVA] {
				continue // writes on read-only pages are tested separately
			}
			data := make([]byte, n)
			rng.Read(data)
			if err := k.AccessBytes(cpu, mt.m, va, data, true); err != nil {
				for _, ri := range mt.m.Regions() {
					if ri.Start <= va && va < ri.End {
						t.Logf("faulting region %#x-%#x prot=%v max=%v nc=%v shared=%v; model ro=%v",
							ri.Start, ri.End, ri.Prot, ri.MaxProt, ri.NeedsCopy, ri.Shared, mt.ro[pageVA])
					}
				}
				t.Fatalf("write %#x+%d at step %d: %v", va, n, step, err)
			}
			for i, b := range data {
				mt.mem[va+vmtypes.VA(i)] = b
			}
		case op < 15: // read + verify
			r, ok := pickRegion(mt)
			if !ok {
				continue
			}
			off := uint64(rng.Intn(int(r.size)))
			n := rng.Intn(300) + 1
			if uint64(n) > r.size-off {
				n = int(r.size - off)
			}
			readCheck(mt, r.addr+vmtypes.VA(off), n)
		case op < 16: // vm_copy into a fresh place
			r, ok := pickRegion(mt)
			if !ok {
				continue
			}
			dst, err := mt.m.CopyTo(mt.m, r.addr, r.size, 0, true)
			if err != nil {
				continue
			}
			mt.regions = append(mt.regions, modelRegion{dst, r.size})
			for off := uint64(0); off < r.size; off++ {
				src := r.addr + vmtypes.VA(off)
				d := dst + vmtypes.VA(off)
				if b, ok := mt.mem[src]; ok {
					mt.mem[d] = b
				} else {
					delete(mt.mem, d)
				}
			}
			// The clone inherits the source's protections.
			for off := uint64(0); off < r.size; off += pageSize {
				if mt.ro[r.addr+vmtypes.VA(off)] {
					mt.ro[dst+vmtypes.VA(off)] = true
				} else {
					delete(mt.ro, dst+vmtypes.VA(off))
				}
			}
		case op < 17 && len(tasks) < 5: // fork
			child := &modelTask{
				m:   mt.m.Fork(),
				mem: make(map[vmtypes.VA]byte, len(mt.mem)),
				ro:  make(map[vmtypes.VA]bool, len(mt.ro)),
			}
			for kk, v := range mt.mem {
				child.mem[kk] = v
			}
			// The child inherits the parent's protections with its
			// entries.
			for kk, v := range mt.ro {
				child.ro[kk] = v
			}
			child.regions = append([]modelRegion(nil), mt.regions...)
			tasks = append(tasks, child)
		case op < 18: // protect a region read-only or back
			r, ok := pickRegion(mt)
			if !ok {
				continue
			}
			pageVA := r.addr
			if rng.Intn(2) == 0 {
				if err := mt.m.Protect(r.addr, r.size, false, vmtypes.ProtRead); err == nil {
					for off := uint64(0); off < r.size; off += pageSize {
						mt.ro[pageVA+vmtypes.VA(off)] = true
					}
				}
			} else {
				if err := mt.m.Protect(r.addr, r.size, false, vmtypes.ProtDefault); err == nil {
					for off := uint64(0); off < r.size; off += pageSize {
						delete(mt.ro, pageVA+vmtypes.VA(off))
					}
				}
			}
		case op < 19 && len(mt.regions) > 2: // deallocate a region
			idx := rng.Intn(len(mt.regions))
			r := mt.regions[idx]
			if err := mt.m.Deallocate(r.addr, r.size); err != nil {
				continue
			}
			mt.regions = append(mt.regions[:idx], mt.regions[idx+1:]...)
			for off := uint64(0); off < r.size; off++ {
				delete(mt.mem, r.addr+vmtypes.VA(off))
			}
			for off := uint64(0); off < r.size; off += pageSize {
				delete(mt.ro, r.addr+vmtypes.VA(off))
			}
		default: // pmap forgets everything (legal at any time!)
			mt.m.Pmap().Collect()
			mod.Update()
		}
	}

	// Final sweep: every byte of every task matches its model.
	for ti, mt := range tasks {
		mt.m.Pmap().Activate(cpu)
		for _, r := range mt.regions {
			buf := make([]byte, r.size)
			if err := k.AccessBytes(cpu, mt.m, r.addr, buf, false); err != nil {
				t.Fatalf("task %d final read: %v", ti, err)
			}
			for i := range buf {
				want := mt.mem[r.addr+vmtypes.VA(i)]
				if buf[i] != want {
					t.Fatalf("task %d final divergence at %#x: got %d want %d",
						ti, r.addr+vmtypes.VA(i), buf[i], want)
				}
			}
		}
	}
}
