package core_test

import (
	"testing"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

// TestForkPrewarmUsesOptionalPmapCopy verifies Table 3-4's optional
// pmap_copy: with PrewarmFork enabled on a machine that implements it
// (VAX), the child's first reads after fork take no faults, data is still
// correct, and copy-on-write isolation still holds.
func TestForkPrewarmUsesOptionalPmapCopy(t *testing.T) {
	for _, prewarm := range []bool{false, true} {
		machine := hw.NewMachine(hw.Config{
			Cost:       vax.DefaultCost(),
			HWPageSize: vax.HWPageSize,
			PhysFrames: 4096,
			CPUs:       1,
			TLBSize:    64,
		})
		mod := vax.New(machine, pmap.ShootImmediate)
		k := core.MustNewKernel(core.Config{
			Machine: machine, Module: mod, PageSize: 4096, PrewarmFork: prewarm,
		})
		cpu := machine.CPU(0)

		parent := k.NewMap()
		parent.Pmap().Activate(cpu)
		const pages = 16
		addr, _ := parent.Allocate(0, pages*4096, true)
		for i := 0; i < pages; i++ {
			if err := k.AccessBytes(cpu, parent, addr+vmtypes.VA(i*4096), []byte{byte(i)}, true); err != nil {
				t.Fatal(err)
			}
		}
		child := parent.Fork()
		child.Pmap().Activate(cpu)

		faults0 := k.Stats().Faults.Load()
		for i := 0; i < pages; i++ {
			b := make([]byte, 1)
			if err := k.AccessBytes(cpu, child, addr+vmtypes.VA(i*4096), b, false); err != nil {
				t.Fatal(err)
			}
			if b[0] != byte(i) {
				t.Fatalf("prewarm=%v: child page %d corrupted", prewarm, i)
			}
		}
		readFaults := k.Stats().Faults.Load() - faults0
		if prewarm && readFaults != 0 {
			t.Fatalf("prewarmed child took %d read faults; want 0", readFaults)
		}
		if !prewarm && readFaults == 0 {
			t.Fatal("lazy child should fault on first reads")
		}

		// COW isolation must survive prewarming (copies entered
		// read-only).
		if err := k.AccessBytes(cpu, child, addr, []byte{99}, true); err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 1)
		parent.Pmap().Activate(cpu)
		if err := k.AccessBytes(cpu, parent, addr, b, false); err != nil {
			t.Fatal(err)
		}
		if b[0] != 0 {
			t.Fatalf("prewarm=%v: child write leaked into parent", prewarm)
		}
		child.Destroy()
		parent.Destroy()
	}
}

// TestMapHintsSaveLookups verifies the §3.2 hint ablation switch.
func TestMapHintsSaveLookups(t *testing.T) {
	run := func(disable bool) (hintHits uint64) {
		machine := hw.NewMachine(hw.Config{
			Cost:       vax.DefaultCost(),
			HWPageSize: vax.HWPageSize,
			PhysFrames: 4096,
			CPUs:       1,
		})
		mod := vax.New(machine, pmap.ShootImmediate)
		k := core.MustNewKernel(core.Config{
			Machine: machine, Module: mod, PageSize: 4096, DisableMapHints: disable,
		})
		cpu := machine.CPU(0)
		m := k.NewMap()
		defer m.Destroy()
		m.Pmap().Activate(cpu)
		// Many entries, then a sequential fault scan — the hint's best
		// case.
		var addrs []vmtypes.VA
		for i := 0; i < 32; i++ {
			a, _ := m.Allocate(0, 4096, true)
			addrs = append(addrs, a)
		}
		for _, a := range addrs {
			if err := k.Touch(cpu, m, a, true); err != nil {
				t.Fatal(err)
			}
		}
		return k.Stats().MapHintHits.Load()
	}
	withHints := run(false)
	withoutHints := run(true)
	if withHints == 0 {
		t.Fatal("sequential scan should hit the hint")
	}
	if withoutHints != 0 {
		t.Fatalf("disabled hints still hit %d times", withoutHints)
	}
}
