package core

// Regression test for the memorySwapPager object leak: the built-in swap
// pager keys its store by *Object, so an entry that survives the object's
// termination pins the dead Object (and its page data) forever. Terminate
// must drop the object's entire store in O(1).

import (
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

func TestSwapPagerReleasesTerminatedObjects(t *testing.T) {
	machine := hw.NewMachine(hw.Config{
		Cost: vax.DefaultCost(), HWPageSize: 512, PhysFrames: 2048, CPUs: 1, TLBSize: 64,
	})
	mod := vax.New(machine, 0)
	k := MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
	cpu := machine.CPU(0)

	sw, ok := k.swap.(*memorySwapPager)
	if !ok {
		t.Fatalf("default swap pager is %T, not memorySwapPager", k.swap)
	}

	for round := 0; round < 4; round++ {
		m := k.NewMap()
		m.Pmap().Activate(cpu)
		// Allocate more than physical memory so pageout to swap happens.
		size := uint64(len(k.pages)) * k.pageSize * 3 / 2
		addr, err := m.Allocate(0, size, true)
		if err != nil {
			t.Fatal(err)
		}
		buf := []byte{1, 2, 3}
		for va := addr; va < addr+vmtypes.VA(size); va += vmtypes.VA(k.pageSize) {
			if err := k.CopyOut(m, va, buf); err != nil {
				t.Fatal(err)
			}
		}
		// Fork a COW copy and dirty it so shadow objects hit swap too.
		child := m.Fork()
		for va := addr; va < addr+vmtypes.VA(size); va += vmtypes.VA(2 * k.pageSize) {
			if err := k.CopyOut(child, va, buf); err != nil {
				t.Fatal(err)
			}
		}
		k.PageoutScan()
		child.Destroy()
		m.Destroy()
	}
	if k.stats.Pageouts.Load() == 0 {
		t.Fatal("workload never paged out; the test exercised nothing")
	}
	if n := sw.storedObjects(); n != 0 {
		t.Fatalf("leak: %d dead objects still pinned by the swap pager", n)
	}
}
