package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"machvm/internal/pmap"
	"machvm/internal/trace"
	"machvm/internal/vmtypes"
)

// VM operation errors.
var (
	// ErrNoSpace means no address range of the requested size exists.
	ErrNoSpace = errors.New("vm: no space in address map")
	// ErrInvalidAddress means the range touches unallocated space.
	ErrInvalidAddress = errors.New("vm: invalid address")
	// ErrBadAlignment means an address was not page aligned.
	ErrBadAlignment = errors.New("vm: address not page aligned")
	// ErrProtectionFailure means the requested protection exceeds the
	// maximum protection of the range.
	ErrProtectionFailure = errors.New("vm: protection failure")
	// ErrOutOfRange means the range exceeds the hardware addressing
	// limits.
	ErrOutOfRange = errors.New("vm: address beyond machine limit")
)

// MapEntry maps a contiguous range of virtual addresses onto a contiguous
// area of a memory object (§3.2). All addresses within the range share the
// same inheritance and protection attributes — which can force two entries
// for adjacent regions of one object when the attributes differ.
type MapEntry struct {
	prev, next *MapEntry

	// Treap index links (mapindex.go), guarded by the map's write lock.
	treeLeft, treeRight *MapEntry
	treePrio            uint64

	start, end vmtypes.VA

	// Exactly one of object/submap is non-nil, or both are nil for
	// unfaulted zero-fill memory (the object is created lazily).
	object *Object
	submap *Map

	// offset locates start within the object or submap.
	offset uint64

	// prot is the current protection; maxProt the ceiling it may never
	// exceed (§2.1).
	prot    vmtypes.Prot
	maxProt vmtypes.Prot

	inherit vmtypes.Inherit

	// needsCopy means the entry's object must be shadowed before any
	// write through this entry (the copy-on-write state).
	needsCopy bool

	// wired prevents pageout of the entry's pages.
	wired bool
}

// Span returns the entry's size in bytes.
func (e *MapEntry) Span() uint64 { return uint64(e.end - e.start) }

// Start and End expose the entry's range.
func (e *MapEntry) Start() vmtypes.VA { return e.start }
func (e *MapEntry) End() vmtypes.VA   { return e.end }

// Protections returns the entry's current and maximum protection.
func (e *MapEntry) Protections() (cur, max vmtypes.Prot) { return e.prot, e.maxProt }

// Inheritance returns the entry's inheritance attribute.
func (e *MapEntry) Inheritance() vmtypes.Inherit { return e.inherit }

// NeedsCopy reports the entry's copy-on-write state.
func (e *MapEntry) NeedsCopy() bool { return e.needsCopy }

// IsSubmap reports whether the entry points to a sharing map.
func (e *MapEntry) IsSubmap() bool { return e.submap != nil }

// Map is an address map (§3.2): a doubly-linked list of entries sorted by
// ascending virtual address (range operations iterate it), doubled by a
// treap index keyed by start address for O(log n) fault lookups
// (mapindex.go). A sharing map is identical to an address map but is
// referenced by other maps' entries and has no pmap.
//
// Concurrency: the map lock is a read-write lock. Mutators (Allocate,
// Deallocate, Protect, SetInherit, CopyTo, Fork, Wire, Simplify, and the
// fault paths that clip or re-point entries) hold it exclusively and bump
// the version counter; Fault holds it shared, only long enough to look up
// and snapshot an entry and later to revalidate and enter the hardware
// mapping, so concurrent faults on one map no longer serialize across
// pager I/O or zero-fill (DESIGN.md §7).
type Map struct {
	k *Kernel

	mu sync.RWMutex

	// id is the map's stable per-kernel identifier, assigned in creation
	// order. Trace events name maps by this id.
	id uint64

	// version counts entry mutations (structure or attributes). Bumped
	// under the write lock; Fault snapshots it under the read lock and
	// revalidates before pmap enter (fault.go).
	version atomic.Uint64

	head, tail *MapEntry
	nentries   int
	sizeBytes  uint64

	// root is the treap index over the entries; prioState feeds treap
	// priorities. Both are guarded by the write lock.
	root      *MapEntry
	prioState uint64

	min, max vmtypes.VA

	// hint remembers the last entry found, so lookups start from the
	// last fault's position (§3.2 "last fault hints"). Atomic because
	// concurrent read-locked faulters update it; a stale hint is only a
	// wasted probe, never a correctness problem (writers holding the
	// write lock fix it whenever an entry is unlinked).
	hint atomic.Pointer[MapEntry]

	// pm is the task's physical map; nil for sharing maps.
	pm pmap.Map

	isShare bool
	refs    atomic.Int32

	// entryPool recycles MapEntry structs freed by Deallocate and
	// Simplify for reuse by splits and allocations, so steady-state
	// clip/merge traffic (Wire, Protect, fault-driven clips) stops
	// allocating. Guarded by the write lock, linked through next,
	// capped at entryPoolMax.
	entryPool     *MapEntry
	entryPoolSize int
}

// entryPoolMax bounds the per-map free list of recycled entries.
const entryPoolMax = 64

// newEntryLocked returns a zeroed MapEntry, reusing a recycled one when
// available. Caller holds the write lock.
func (m *Map) newEntryLocked() *MapEntry {
	if e := m.entryPool; e != nil {
		m.entryPool = e.next
		m.entryPoolSize--
		e.next = nil
		return e
	}
	return &MapEntry{}
}

// recycleEntryLocked returns an unlinked entry to the pool. Only safe once
// nothing can reach e anymore: it must be out of the entry list, the treap
// and the hint (removeEntryLocked guarantees all three), and the caller
// must be done reading its fields. Caller holds the write lock.
func (m *Map) recycleEntryLocked(e *MapEntry) {
	if m.entryPoolSize >= entryPoolMax {
		return
	}
	*e = MapEntry{next: m.entryPool}
	m.entryPool = e
	m.entryPoolSize++
}

// bumpVersion records an entry mutation. Caller holds the write lock.
func (m *Map) bumpVersion() { m.version.Add(1) }

// NewMap creates a task address map covering [0, limit) where limit is the
// machine's user address-space bound.
func (k *Kernel) NewMap() *Map {
	id := k.mapIDs.Add(1)
	m := &Map{
		k:         k,
		id:        id,
		min:       0,
		max:       k.mod.MaxVA(),
		pm:        k.mod.Create(),
		prioState: seedPrioState(id),
	}
	m.refs.Store(1)
	m.primeEntryPool(4)
	if l, top := k.traceBegin(); l != nil {
		if top {
			l.Append(k.traceEvent(trace.OpNewMap, trace.Event{Ret: id}))
		}
		l.EndOp()
	}
	return m
}

// ID returns the map's stable per-kernel identifier.
func (m *Map) ID() uint64 { return m.id }

// primeEntryPool pre-populates the map's entry free list so the first
// allocations and clips recycle instead of allocating — part of keeping
// alloc counts stable from the very first fault (the pool refills
// itself from Deallocate in the steady state).
func (m *Map) primeEntryPool(n int) {
	for i := 0; i < n && m.entryPoolSize < entryPoolMax; i++ {
		e := &MapEntry{next: m.entryPool}
		m.entryPool = e
		m.entryPoolSize++
	}
}

// NewTransitMap creates a pmap-less holding map used to keep out-of-line
// message data in transit between a sender and a receiver: the data is
// copied into it copy-on-write at send time and copied out at receive
// time, so no physical copy happens end to end.
func (k *Kernel) NewTransitMap(size uint64) *Map {
	id := k.mapIDs.Add(1)
	m := &Map{
		k:         k,
		id:        id,
		min:       0,
		max:       vmtypes.VA(k.roundPage(size)*2 + k.pageSize*2),
		isShare:   true,
		prioState: seedPrioState(id),
	}
	m.refs.Store(1)
	return m
}

// newShareMap creates a sharing map spanning [0, size).
func (k *Kernel) newShareMap(size uint64) *Map {
	id := k.mapIDs.Add(1)
	m := &Map{
		k:         k,
		id:        id,
		min:       0,
		max:       vmtypes.VA(size),
		isShare:   true,
		prioState: seedPrioState(id),
	}
	m.refs.Store(1)
	k.stats.ShareMapsMade.Add(1)
	return m
}

// Pmap returns the map's physical map (nil for sharing maps).
func (m *Map) Pmap() pmap.Map { return m.pm }

// IsShareMap reports whether this is a sharing map.
func (m *Map) IsShareMap() bool { return m.isShare }

// Kernel returns the owning kernel.
func (m *Map) Kernel() *Kernel { return m.k }

// Size returns the total bytes of allocated virtual memory.
func (m *Map) Size() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.sizeBytes
}

// EntryCount returns the number of map entries (a typical VAX UNIX
// process has five upon creation, §3.2).
func (m *Map) EntryCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.nentries
}

// Reference adds a reference to the map (used for sharing maps).
func (m *Map) Reference() { m.refs.Add(1) }

// Destroy releases the map; the last release deallocates everything and
// destroys the pmap.
func (m *Map) Destroy() {
	l, top := m.k.traceBegin()
	m.destroy()
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpDestroyMap, trace.Event{Map: m.id}))
		}
		l.EndOp()
	}
}

func (m *Map) destroy() {
	if m.refs.Add(-1) > 0 {
		return
	}
	m.mu.Lock()
	// Stack-backed collections: teardown of typical maps (a handful of
	// entries) must not allocate. Larger maps spill to the heap via
	// append, which is fine off the fault path.
	var objArr [8]*Object
	var subArr [4]*Map
	objs := objArr[:0]
	subs := subArr[:0]
	for e := m.head; e != nil; e = e.next {
		if e.object != nil {
			objs = append(objs, e.object)
		}
		if e.submap != nil {
			subs = append(subs, e.submap)
		}
	}
	m.head, m.tail, m.root = nil, nil, nil
	m.hint.Store(nil)
	m.nentries = 0
	m.sizeBytes = 0
	m.bumpVersion()
	m.mu.Unlock()
	if m.pm != nil {
		m.pm.Destroy()
	}
	for _, o := range objs {
		m.k.releaseObject(o)
	}
	for _, s := range subs {
		s.destroy()
	}
}

// charge accounts one address-map entry operation.
func (m *Map) charge() { m.k.machine.Charge(m.k.machine.Cost.MapEntryOp) }

// lookupEntryLocked finds the entry containing va, probing the hint before
// descending the treap index. Safe under the read lock: the only writes
// are atomic hint updates and atomic statistics.
func (m *Map) lookupEntryLocked(va vmtypes.VA) (*MapEntry, bool) {
	k := m.k
	k.stats.MapLookups.Add(1)
	if !k.disableHints {
		if h := m.hint.Load(); h != nil {
			if h.start <= va && va < h.end {
				k.stats.MapHintHits.Add(1)
				k.machine.Charge(k.machine.Cost.MemAccess)
				return h, true
			}
			// Faults walk forward: try the next entry before searching.
			if n := h.next; n != nil && n.start <= va && va < n.end {
				k.stats.MapHintHits.Add(1)
				k.machine.Charge(2 * k.machine.Cost.MemAccess)
				m.hint.Store(n)
				return n, true
			}
			k.stats.MapHintMisses.Add(1)
		}
	}
	e, steps := m.indexLookupLE(va)
	k.machine.Charge(int64(steps+1) * k.machine.Cost.MemAccess)
	if e != nil && va < e.end {
		m.hint.Store(e)
		return e, true
	}
	// Miss: e is the predecessor entry (nil means insert at head).
	return e, false
}

// insertAfterLocked links e after prev (nil prev = head) in both the list
// and the index. Caller holds the write lock.
func (m *Map) insertAfterLocked(prev, e *MapEntry) {
	e.prev = prev
	if prev != nil {
		e.next = prev.next
		prev.next = e
	} else {
		e.next = m.head
		m.head = e
	}
	if e.next != nil {
		e.next.prev = e
	} else {
		m.tail = e
	}
	m.indexInsert(e)
	m.nentries++
	m.sizeBytes += e.Span()
	m.bumpVersion()
	m.charge()
}

// removeEntryLocked unlinks e from the list and the index.
func (m *Map) removeEntryLocked(e *MapEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	if m.hint.Load() == e {
		m.hint.Store(e.prev)
	}
	m.indexRemove(e)
	m.nentries--
	m.sizeBytes -= e.Span()
	e.prev, e.next = nil, nil
	m.bumpVersion()
	m.charge()
}

// clipStartLocked splits e so that it begins exactly at va.
func (m *Map) clipStartLocked(e *MapEntry, va vmtypes.VA) {
	if va <= e.start || va >= e.end {
		return
	}
	left := m.newEntryLocked()
	*left = MapEntry{
		start:     e.start,
		end:       va,
		object:    e.object,
		submap:    e.submap,
		offset:    e.offset,
		prot:      e.prot,
		maxProt:   e.maxProt,
		inherit:   e.inherit,
		needsCopy: e.needsCopy,
		wired:     e.wired,
	}
	if left.object != nil {
		left.object.Reference()
	}
	if left.submap != nil {
		left.submap.Reference()
	}
	// e's index key is its start address: take it out of the treap
	// around the mutation.
	m.indexRemove(e)
	e.offset += uint64(va - e.start)
	m.sizeBytes -= uint64(va - e.start) // the insert adds it back
	e.start = va
	m.indexInsert(e)
	m.insertAfterLocked(e.prev, left)
}

// clipEndLocked splits e so that it ends exactly at va.
func (m *Map) clipEndLocked(e *MapEntry, va vmtypes.VA) {
	if va <= e.start || va >= e.end {
		return
	}
	right := m.newEntryLocked()
	*right = MapEntry{
		start:     va,
		end:       e.end,
		object:    e.object,
		submap:    e.submap,
		offset:    e.offset + uint64(va-e.start),
		prot:      e.prot,
		maxProt:   e.maxProt,
		inherit:   e.inherit,
		needsCopy: e.needsCopy,
		wired:     e.wired,
	}
	if right.object != nil {
		right.object.Reference()
	}
	if right.submap != nil {
		right.submap.Reference()
	}
	m.sizeBytes -= uint64(e.end - va)
	e.end = va
	m.insertAfterLocked(e, right)
}

// findSpaceLocked finds a first-fit hole of the given size.
func (m *Map) findSpaceLocked(size uint64) (vmtypes.VA, error) {
	// Leave page 0 unmapped so nil-pointer-style bugs fault.
	start := m.min + vmtypes.VA(m.k.pageSize)
	for e := m.head; e != nil; e = e.next {
		if uint64(e.start)-uint64(start) >= size && e.start > start {
			return start, nil
		}
		if e.end > start {
			start = e.end
		}
	}
	if uint64(m.max)-uint64(start) >= size {
		return start, nil
	}
	return 0, ErrNoSpace
}

// checkRange validates page alignment and machine limits.
func (m *Map) checkRange(addr vmtypes.VA, size uint64) error {
	if uint64(addr)%m.k.pageSize != 0 {
		return ErrBadAlignment
	}
	if size == 0 || uint64(addr)+size > uint64(m.max) {
		return ErrOutOfRange
	}
	return nil
}

// Allocate implements vm_allocate: allocate and fill with zeros new
// virtual memory, either anywhere or at a specified address (Table 2-1).
// The memory is zero-filled lazily, at fault time.
func (m *Map) Allocate(addr vmtypes.VA, size uint64, anywhere bool) (vmtypes.VA, error) {
	l, top := m.k.traceBegin()
	va, err := m.allocate(addr, size, anywhere)
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpAllocate, trace.Event{
				Map: m.id, Addr: uint64(addr), Size: size, Flag: anywhere,
				Ret: uint64(va), Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return va, err
}

func (m *Map) allocate(addr vmtypes.VA, size uint64, anywhere bool) (vmtypes.VA, error) {
	m.k.machine.Charge(m.k.machine.Cost.Syscall)
	size = m.k.roundPage(size)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocateLocked(addr, size, anywhere, nil, 0, vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
}

// AllocateWithObject maps object bytes [offset, offset+size) at addr (or
// anywhere). This is vm_allocate_with_pager (Table 3-2) generalised: the
// object may come from any pager.
func (m *Map) AllocateWithObject(addr vmtypes.VA, size uint64, anywhere bool, obj *Object, offset uint64, prot, maxProt vmtypes.Prot, inherit vmtypes.Inherit, copyOnWrite bool) (vmtypes.VA, error) {
	l, top := m.k.traceBegin()
	va, err := m.allocateWithObject(addr, size, anywhere, obj, offset, prot, maxProt, inherit, copyOnWrite)
	if l != nil {
		if top {
			var objID uint64
			if obj != nil {
				objID = obj.ID()
			}
			cow := int64(0)
			if copyOnWrite {
				cow = 1
			}
			l.Append(m.k.traceEvent(trace.OpAllocObject, trace.Event{
				Map: m.id, Obj: objID, Addr: uint64(addr), Addr2: offset,
				Size: size, Flag: anywhere,
				Arg: int64(prot) | int64(maxProt)<<8 | int64(inherit)<<16 | cow<<24,
				Ret: uint64(va), Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return va, err
}

func (m *Map) allocateWithObject(addr vmtypes.VA, size uint64, anywhere bool, obj *Object, offset uint64, prot, maxProt vmtypes.Prot, inherit vmtypes.Inherit, copyOnWrite bool) (vmtypes.VA, error) {
	m.k.machine.Charge(m.k.machine.Cost.Syscall)
	size = m.k.roundPage(size)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocateLocked(addr, size, anywhere, obj, offset, prot, maxProt, inherit, copyOnWrite)
}

func (m *Map) allocateLocked(addr vmtypes.VA, size uint64, anywhere bool, obj *Object, offset uint64, prot, maxProt vmtypes.Prot, inherit vmtypes.Inherit, needsCopy bool) (vmtypes.VA, error) {
	if anywhere {
		var err error
		addr, err = m.findSpaceLocked(size)
		if err != nil {
			return 0, err
		}
	}
	if err := m.checkRange(addr, size); err != nil {
		return 0, err
	}
	// The range must be vacant.
	prev, hit := m.lookupEntryLocked(addr)
	if hit {
		return 0, ErrInvalidAddress
	}
	next := m.head
	if prev != nil {
		next = prev.next
	}
	if next != nil && next.start < addr+vmtypes.VA(size) {
		return 0, ErrInvalidAddress
	}
	entry := m.newEntryLocked()
	*entry = MapEntry{
		start:     addr,
		end:       addr + vmtypes.VA(size),
		object:    obj,
		offset:    offset,
		prot:      prot,
		maxProt:   maxProt,
		inherit:   inherit,
		needsCopy: needsCopy,
	}
	m.insertAfterLocked(prev, entry)
	return addr, nil
}

// Deallocate implements vm_deallocate: make a range of addresses no
// longer valid (Table 2-1).
func (m *Map) Deallocate(addr vmtypes.VA, size uint64) error {
	l, top := m.k.traceBegin()
	err := m.deallocate(addr, size)
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpDeallocate, trace.Event{
				Map: m.id, Addr: uint64(addr), Size: size, Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return err
}

func (m *Map) deallocate(addr vmtypes.VA, size uint64) error {
	m.k.machine.Charge(m.k.machine.Cost.Syscall)
	size = m.k.roundPage(size)
	if err := m.checkRange(addr, size); err != nil {
		return err
	}
	end := addr + vmtypes.VA(size)

	m.mu.Lock()
	// Stack-backed as in Destroy: the common deallocate covers one or
	// two entries and must stay allocation-free (the zero-fill benchmark
	// cycles Allocate/Touch/Deallocate in its steady state).
	var objArr [8]*Object
	var subArr [4]*Map
	objs := objArr[:0]
	subs := subArr[:0]
	e, hit := m.lookupEntryLocked(addr)
	if !hit {
		if e == nil {
			e = m.head
		} else {
			e = e.next
		}
	} else {
		m.clipStartLocked(e, addr)
	}
	for e != nil && e.start < end {
		m.clipEndLocked(e, end)
		next := e.next
		if e.object != nil {
			objs = append(objs, e.object)
		}
		if e.submap != nil {
			subs = append(subs, e.submap)
		}
		m.removeEntryLocked(e)
		if m.pm != nil {
			m.pm.Remove(e.start, e.end)
		}
		m.recycleEntryLocked(e)
		e = next
	}
	m.mu.Unlock()

	for _, o := range objs {
		m.k.releaseObject(o)
	}
	for _, s := range subs {
		s.destroy()
	}
	return nil
}

// Protect implements vm_protect: set the protection attribute of an
// address range (Table 2-1). If setMax is true the maximum protection is
// lowered (it can never be raised); lowering it below the current
// protection drags the current protection down with it.
func (m *Map) Protect(addr vmtypes.VA, size uint64, setMax bool, prot vmtypes.Prot) error {
	l, top := m.k.traceBegin()
	err := m.protect(addr, size, setMax, prot)
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpProtect, trace.Event{
				Map: m.id, Addr: uint64(addr), Size: size, Flag: setMax,
				Arg: int64(prot), Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return err
}

func (m *Map) protect(addr vmtypes.VA, size uint64, setMax bool, prot vmtypes.Prot) error {
	m.k.machine.Charge(m.k.machine.Cost.Syscall)
	size = m.k.roundPage(size)
	if err := m.checkRange(addr, size); err != nil {
		return err
	}
	end := addr + vmtypes.VA(size)

	m.mu.Lock()
	defer m.mu.Unlock()
	e, hit := m.lookupEntryLocked(addr)
	if !hit {
		return ErrInvalidAddress
	}
	m.bumpVersion()
	m.clipStartLocked(e, addr)
	for e != nil && e.start < end {
		m.clipEndLocked(e, end)
		if setMax {
			// The maximum protection can only be lowered.
			e.maxProt = e.maxProt.Intersect(prot)
			if !e.maxProt.Allows(e.prot) {
				e.prot = e.prot.Intersect(e.maxProt)
				if m.pm != nil {
					m.pm.Protect(e.start, e.end, e.prot)
				}
			}
		} else {
			if !e.maxProt.Allows(prot) {
				return ErrProtectionFailure
			}
			raised := prot&^e.prot != 0
			e.prot = prot
			if m.pm != nil {
				if raised {
					// Raising protection cannot be done by a
					// pmap_protect (it only reduces); drop the
					// mappings and let faults re-enter with the
					// new protection.
					m.pm.Remove(e.start, e.end)
				} else {
					m.pm.Protect(e.start, e.end, prot)
				}
			}
		}
		if e.next == nil || e.next.start != e.end {
			if e.end < end {
				return ErrInvalidAddress
			}
		}
		e = e.next
	}
	return nil
}

// SetInherit implements vm_inherit: set the inheritance attribute of an
// address range (Table 2-1).
func (m *Map) SetInherit(addr vmtypes.VA, size uint64, inherit vmtypes.Inherit) error {
	l, top := m.k.traceBegin()
	err := m.setInherit(addr, size, inherit)
	if l != nil {
		if top {
			l.Append(m.k.traceEvent(trace.OpInherit, trace.Event{
				Map: m.id, Addr: uint64(addr), Size: size,
				Arg: int64(inherit), Err: traceErr(err),
			}))
		}
		l.EndOp()
	}
	return err
}

func (m *Map) setInherit(addr vmtypes.VA, size uint64, inherit vmtypes.Inherit) error {
	m.k.machine.Charge(m.k.machine.Cost.Syscall)
	size = m.k.roundPage(size)
	if err := m.checkRange(addr, size); err != nil {
		return err
	}
	end := addr + vmtypes.VA(size)
	m.mu.Lock()
	defer m.mu.Unlock()
	e, hit := m.lookupEntryLocked(addr)
	if !hit {
		return ErrInvalidAddress
	}
	m.bumpVersion()
	m.clipStartLocked(e, addr)
	for e != nil && e.start < end {
		m.clipEndLocked(e, end)
		e.inherit = inherit
		e = e.next
	}
	return nil
}

// RegionInfo describes one allocated region (vm_regions).
type RegionInfo struct {
	Start, End vmtypes.VA
	Prot       vmtypes.Prot
	MaxProt    vmtypes.Prot
	Inherit    vmtypes.Inherit
	Shared     bool
	NeedsCopy  bool
	ObjectName string
}

// Regions implements vm_regions: return descriptions of the regions of
// the address space (Table 2-1).
func (m *Map) Regions() []RegionInfo {
	m.k.machine.Charge(m.k.machine.Cost.Syscall)
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []RegionInfo
	for e := m.head; e != nil; e = e.next {
		ri := RegionInfo{
			Start:     e.start,
			End:       e.end,
			Prot:      e.prot,
			MaxProt:   e.maxProt,
			Inherit:   e.inherit,
			Shared:    e.submap != nil,
			NeedsCopy: e.needsCopy,
		}
		if e.object != nil {
			ri.ObjectName = e.object.name
		} else if e.submap != nil {
			ri.ObjectName = "(share map)"
		}
		out = append(out, ri)
	}
	return out
}

// String renders the map for debugging.
func (m *Map) String() string {
	regions := m.Regions()
	s := fmt.Sprintf("map[%d entries]", len(regions))
	for _, r := range regions {
		s += fmt.Sprintf(" [%x-%x %v %v]", r.Start, r.End, r.Prot, r.Inherit)
	}
	return s
}
