package core

// BenchmarkParallelFaults measures fault-path throughput when every
// goroutine faults against its own address map and objects — the workload
// the sharded resident-page layer exists for. With the old global page
// lock this curve was flat; with lock striping it should scale with
// -cpu 1,4,8.

import (
	"runtime"
	"sync/atomic"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

func BenchmarkParallelFaults(b *testing.B) {
	nproc := runtime.GOMAXPROCS(0)
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 65536,
		CPUs:       nproc,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := NewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
	pageSize := k.PageSize()
	const regionPages = 64

	var cpuIdx atomic.Int32
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cpu := machine.CPU(int(cpuIdx.Add(1)-1) % nproc)
		m := k.NewMap()
		defer m.Destroy()
		m.Pmap().Activate(cpu)
		defer m.Pmap().Deactivate(cpu)

		size := regionPages * pageSize
		addr, err := m.Allocate(0, size, true)
		if err != nil {
			b.Error(err)
			return
		}
		i := 0
		for pb.Next() {
			va := addr + vmtypes.VA(uint64(i%regionPages)*pageSize)
			if err := k.Touch(cpu, m, va, true); err != nil {
				b.Error(err)
				return
			}
			i++
			if i%regionPages == 0 {
				// Recycle the region so every Touch stays a real
				// zero-fill fault instead of a TLB hit.
				if err := m.Deallocate(addr, size); err != nil {
					b.Error(err)
					return
				}
				if addr, err = m.Allocate(0, size, true); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}
