package core

// BenchmarkParallelFaults measures fault-path throughput when every
// goroutine faults against its own address map and objects — the workload
// the sharded resident-page layer exists for. With the old global page
// lock this curve was flat; with lock striping it should scale with
// -cpu 1,4,8.

import (
	"runtime"
	"sync/atomic"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

func BenchmarkParallelFaults(b *testing.B) {
	nproc := runtime.GOMAXPROCS(0)
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 65536,
		CPUs:       nproc,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
	pageSize := k.PageSize()
	const regionPages = 64

	var cpuIdx atomic.Int32
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cpu := machine.CPU(int(cpuIdx.Add(1)-1) % nproc)
		m := k.NewMap()
		defer m.Destroy()
		m.Pmap().Activate(cpu)
		defer m.Pmap().Deactivate(cpu)

		size := regionPages * pageSize
		addr, err := m.Allocate(0, size, true)
		if err != nil {
			b.Error(err)
			return
		}
		i := 0
		for pb.Next() {
			va := addr + vmtypes.VA(uint64(i%regionPages)*pageSize)
			if err := k.Touch(cpu, m, va, true); err != nil {
				b.Error(err)
				return
			}
			i++
			if i%regionPages == 0 {
				// Recycle the region so every Touch stays a real
				// zero-fill fault instead of a TLB hit.
				if err := m.Deallocate(addr, size); err != nil {
					b.Error(err)
					return
				}
				if addr, err = m.Allocate(0, size, true); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

// BenchmarkParallelFaultsSharedMap is the single-map variant: every
// goroutine faults against one shared address map (each over its own page
// range). Before the map lock became a read-write lock with versioned
// revalidation, all of these faults serialized on the map mutex for their
// entire duration, pager I/O included; now only the occasional region
// recycle (a mutator) takes the lock exclusively.
func BenchmarkParallelFaultsSharedMap(b *testing.B) {
	runSharedMapZeroFill(b)
}

// BenchmarkParallelZeroFill is the allocator-path benchmark tracked in
// BENCH_faults.json (same workload as the shared-map fault benchmark, under
// the name the baseline uses): every fault takes a page from the free
// layer, so this is the benchmark that shows whether page allocation hits
// the per-shard magazines or serializes on the depot lock.
func BenchmarkParallelZeroFill(b *testing.B) {
	runSharedMapZeroFill(b)
}

func runSharedMapZeroFill(b *testing.B) {
	nproc := runtime.GOMAXPROCS(0)
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 65536,
		CPUs:       nproc,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
	pageSize := k.PageSize()
	const regionPages = 64

	m := k.NewMap()
	defer m.Destroy()

	var cpuIdx atomic.Int32
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cpu := machine.CPU(int(cpuIdx.Add(1)-1) % nproc)
		m.Pmap().Activate(cpu)
		defer m.Pmap().Deactivate(cpu)

		size := regionPages * pageSize
		addr, err := m.Allocate(0, size, true)
		if err != nil {
			b.Error(err)
			return
		}
		i := 0
		for pb.Next() {
			va := addr + vmtypes.VA(uint64(i%regionPages)*pageSize)
			if err := k.Touch(cpu, m, va, true); err != nil {
				b.Error(err)
				return
			}
			i++
			if i%regionPages == 0 {
				if err := m.Deallocate(addr, size); err != nil {
					b.Error(err)
					return
				}
				if addr, err = m.Allocate(0, size, true); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
}

// BenchmarkParallelResidentFaults isolates the map-lock effect: one shared
// map, all pages resident, every goroutine re-faulting its own page. No
// page allocation, no pager — the fault is lookup + revalidate + pmap
// enter. Under the old exclusive map mutex this serialized completely;
// under the read-write lock the goroutines only share read locks.
func BenchmarkParallelResidentFaults(b *testing.B) {
	nproc := runtime.GOMAXPROCS(0)
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 65536,
		CPUs:       nproc,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
	pageSize := k.PageSize()

	m := k.NewMap()
	defer m.Destroy()
	const slots = 64
	addr, err := m.Allocate(0, slots*pageSize, true)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < slots; i++ {
		if err := k.Fault(m, addr+vmtypes.VA(uint64(i)*pageSize), vmtypes.ProtWrite); err != nil {
			b.Fatal(err)
		}
	}

	var slot atomic.Int32
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		va := addr + vmtypes.VA(uint64(slot.Add(1)-1)%slots*pageSize)
		for pb.Next() {
			if err := k.Fault(m, va, vmtypes.ProtWrite); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkFaultResidentHit measures the fault fast path: the page is
// resident and the hardware mapping identical, so vm_fault does a hint
// lookup, claims the page, revalidates the map version and re-enters the
// unchanged PTE. This path must stay allocation-free — it is the one every
// TLB-forgetting architecture (and every pmap_collect) replays constantly.
func BenchmarkFaultResidentHit(b *testing.B) {
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 8192,
		CPUs:       1,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
	cpu := machine.CPU(0)

	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	defer m.Pmap().Deactivate(cpu)

	addr, err := m.Allocate(0, k.PageSize(), true)
	if err != nil {
		b.Fatal(err)
	}
	// Fault the page in once; every iteration after that is a pure
	// resident-page re-fault.
	if err := k.Fault(m, addr, vmtypes.ProtWrite); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.Fault(m, addr, vmtypes.ProtWrite); err != nil {
			b.Fatal(err)
		}
	}
}
