package core_test

import (
	"testing"

	"machvm/internal/core"
	"machvm/internal/vmtypes"
)

func TestAllocateErrors(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()

	if _, err := m.Allocate(0, 0, true); err != core.ErrOutOfRange {
		t.Fatalf("zero-size allocate: %v", err)
	}
	// Exhaust the address space search: a map the size of the whole VA
	// space cannot be found twice.
	max := uint64(2) << 30
	if _, err := m.Allocate(0, max*2, true); err != core.ErrNoSpace {
		t.Fatalf("oversized allocate: %v", err)
	}
}

func TestDeallocateErrors(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	if err := m.Deallocate(0x1001, 4096); err != core.ErrBadAlignment {
		t.Fatalf("unaligned dealloc: %v", err)
	}
	// Deallocating never-allocated space is harmless (Mach semantics:
	// the range simply becomes/"stays" invalid).
	if err := m.Deallocate(0x10000, 8192); err != nil {
		t.Fatalf("dealloc of hole: %v", err)
	}
}

func TestProtectErrors(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	if err := m.Protect(0x10000, 4096, false, vmtypes.ProtRead); err != core.ErrInvalidAddress {
		t.Fatalf("protect of unallocated: %v", err)
	}
	addr, _ := m.Allocate(0, 8192, true)
	if err := m.Protect(addr, 16384, false, vmtypes.ProtRead); err != core.ErrInvalidAddress {
		t.Fatalf("protect past the end: %v", err)
	}
}

func TestInheritClipsEntries(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	addr, _ := m.Allocate(0, 4*4096, true)
	if err := m.SetInherit(addr+4096, 8192, vmtypes.InheritShared); err != nil {
		t.Fatal(err)
	}
	regions := m.Regions()
	if len(regions) != 3 {
		t.Fatalf("expected 3 entries after middle inherit, got %d", len(regions))
	}
	if regions[0].Inherit != vmtypes.InheritCopy ||
		regions[1].Inherit != vmtypes.InheritShared ||
		regions[2].Inherit != vmtypes.InheritCopy {
		t.Fatalf("inherit pattern wrong: %+v", regions)
	}
	if regions[1].Start != addr+4096 || regions[1].End != addr+4096+8192 {
		t.Fatal("clip boundaries wrong")
	}
}

func TestEntryCountMatchesPaperExample(t *testing.T) {
	// "A typical VAX UNIX process has five mapping entries upon creation
	// — one for its u-area and one each for code, stack, initialized and
	// uninitialized data" (§3.2). Build that process shape and verify
	// the map stays at five entries.
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	for i, r := range []struct {
		size uint64
		prot vmtypes.Prot
	}{
		{16 * 1024, vmtypes.ProtDefault},                     // u-area
		{256 * 1024, vmtypes.ProtRead | vmtypes.ProtExecute}, // code
		{64 * 1024, vmtypes.ProtDefault},                     // stack
		{128 * 1024, vmtypes.ProtDefault},                    // data
		{512 * 1024, vmtypes.ProtDefault},                    // bss
	} {
		addr, err := m.Allocate(0, r.size, true)
		if err != nil {
			t.Fatalf("region %d: %v", i, err)
		}
		if err := m.Protect(addr, r.size, false, r.prot); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.EntryCount(); got != 5 {
		t.Fatalf("process has %d entries; the paper's example has 5", got)
	}
}

func TestCopyWithinTaskReplacesDestination(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)

	src, _ := m.Allocate(0, 8192, true)
	dst, _ := m.Allocate(0, 8192, true)
	if err := k.AccessBytes(cpu, m, src, []byte{1}, true); err != nil {
		t.Fatal(err)
	}
	if err := k.AccessBytes(cpu, m, dst, []byte{2}, true); err != nil {
		t.Fatal(err)
	}
	if err := m.Copy(src, 8192, dst); err != nil {
		t.Fatalf("vm_copy: %v", err)
	}
	b := make([]byte, 1)
	if err := k.AccessBytes(cpu, m, dst, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 {
		t.Fatalf("destination reads %d after vm_copy; want 1", b[0])
	}
}

func TestCopyToWithHoleFails(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	a, _ := m.Allocate(0x10000, 4096, false)
	if _, err := m.Allocate(0x13000, 4096, false); err != nil {
		t.Fatal(err)
	}
	// [a, a+3 pages) contains a hole at 0x11000-0x13000.
	if _, err := m.CopyTo(m, a, 3*4096, 0, true); err != core.ErrInvalidAddress {
		t.Fatalf("copy across hole: %v", err)
	}
}

func TestSharedRangeSurvivesGrandchildren(t *testing.T) {
	// Sharing maps must not need to reference other sharing maps for
	// full task-to-task sharing (§3.4): share a range down three
	// generations and write from each.
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)
	gen0 := k.NewMap()
	gen0.Pmap().Activate(cpu)
	addr, _ := gen0.Allocate(0, 8192, true)
	if err := gen0.SetInherit(addr, 8192, vmtypes.InheritShared); err != nil {
		t.Fatal(err)
	}
	if err := k.Touch(cpu, gen0, addr, true); err != nil {
		t.Fatal(err)
	}

	gen1 := gen0.Fork()
	gen2 := gen1.Fork()
	maps := []*core.Map{gen0, gen1, gen2}
	for i, m := range maps {
		m.Pmap().Activate(cpu)
		if err := k.AccessBytes(cpu, m, addr, []byte{byte(10 + i)}, true); err != nil {
			t.Fatalf("gen%d write: %v", i, err)
		}
		// All generations see it.
		for j, mm := range maps {
			mm.Pmap().Activate(cpu)
			b := make([]byte, 1)
			if err := k.AccessBytes(cpu, mm, addr, b, false); err != nil {
				t.Fatalf("gen%d read after gen%d write: %v", j, i, err)
			}
			if b[0] != byte(10+i) {
				t.Fatalf("gen%d sees %d after gen%d wrote %d", j, b[0], i, 10+i)
			}
		}
	}
	// No nested share maps were needed.
	if k.Stats().ShareMapsMade.Load() != 1 {
		t.Fatalf("created %d share maps; 1 should serve all generations", k.Stats().ShareMapsMade.Load())
	}
	gen2.Destroy()
	gen1.Destroy()
	gen0.Destroy()
}

func TestCopyOfSharedRegionIsSnapshot(t *testing.T) {
	// vm_copy of a share-mapped region must be a by-value snapshot, not
	// another sharer.
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)
	parent := k.NewMap()
	parent.Pmap().Activate(cpu)
	addr, _ := parent.Allocate(0, 8192, true)
	if err := parent.SetInherit(addr, 8192, vmtypes.InheritShared); err != nil {
		t.Fatal(err)
	}
	if err := k.AccessBytes(cpu, parent, addr, []byte{0xAA}, true); err != nil {
		t.Fatal(err)
	}
	child := parent.Fork()
	defer child.Destroy()
	defer parent.Destroy()

	// Snapshot the shared region.
	snap, err := parent.CopyTo(parent, addr, 8192, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	// A sharer writes after the snapshot.
	child.Pmap().Activate(cpu)
	if err := k.AccessBytes(cpu, child, addr, []byte{0xBB}, true); err != nil {
		t.Fatal(err)
	}
	// The other sharer sees the write; the snapshot does not.
	parent.Pmap().Activate(cpu)
	b := make([]byte, 1)
	if err := k.AccessBytes(cpu, parent, addr, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xBB {
		t.Fatalf("sharer sees %x; want BB", b[0])
	}
	if err := k.AccessBytes(cpu, parent, snap, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xAA {
		t.Fatalf("snapshot sees %x; want AA (copy must not track later writes)", b[0])
	}
}

func TestMapStringAndAccessors(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	addr, _ := m.Allocate(0, 8192, true)
	_ = addr
	if m.String() == "" {
		t.Fatal("String should render")
	}
	if m.Size() != 8192 {
		t.Fatalf("Size = %d", m.Size())
	}
	if m.IsShareMap() {
		t.Fatal("task map is not a share map")
	}
	if m.Kernel() != k {
		t.Fatal("Kernel accessor wrong")
	}
	if m.Pmap() == nil {
		t.Fatal("task map needs a pmap")
	}
}

func TestFaultErrors(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	if err := k.Fault(m, 0x40000, vmtypes.ProtRead); err != core.ErrFaultNoEntry {
		t.Fatalf("fault on hole: %v", err)
	}
	addr, _ := m.Allocate(0, 4096, true)
	if err := m.Protect(addr, 4096, false, vmtypes.ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := k.Fault(m, addr, vmtypes.ProtWrite); err != core.ErrFaultProtection {
		t.Fatalf("write fault on read-only: %v", err)
	}
}
