package core

import (
	"context"
	"errors"
	"fmt"

	"machvm/internal/vmtypes"
)

// LockingPager is the optional interface behind pager_data_lock /
// pager_data_unlock (Tables 3-1/3-2): a pager may deliver data with a lock
// value that forbids some access kinds ("prevents further access to the
// specified data until an unlock"); when a fault needs more access than
// the lock allows, the kernel asks the pager to unlock
// (pager_data_unlock) and blocks the faulting thread until the pager
// grants it (a new pager_data_lock with permissive bits).
//
// Simple pagers do not implement this interface and their data is always
// fully accessible — "simple pagers can be implemented by largely ignoring
// the more sophisticated interface calls".
type LockingPager interface {
	Pager

	// CheckLock reports whether the access is currently permitted at
	// offset.
	CheckLock(obj *Object, offset uint64, access vmtypes.Prot) bool

	// RequestUnlock asks the pager to permit the access, blocking until it
	// answers or ctx fires. A nil return means the access was granted; any
	// error (a refusal, or ctx expiring) blocks the fault.
	RequestUnlock(ctx context.Context, obj *Object, offset uint64, length int, access vmtypes.Prot) error
}

// checkPagerLock enforces a locking pager's lock values on the fault
// path. It returns the access kinds that remain prohibited (so the
// mapping is entered without them and later faults renegotiate). The
// unlock wait is bounded by both the caller's context and the kernel's
// pager deadline; exhausting the deadline surfaces ErrPagerTimeout.
func (k *Kernel) checkPagerLock(ctx context.Context, obj *Object, offset uint64, access vmtypes.Prot) (vmtypes.Prot, error) {
	obj.mu.Lock()
	pager := obj.pager
	obj.mu.Unlock()
	lp, ok := pager.(LockingPager)
	if !ok {
		return 0, nil
	}
	if !lp.CheckLock(obj, offset, access) {
		// pager_data_unlock: the faulting thread blocks on the pager.
		pol := k.PagerPolicy()
		uctx := ctx
		if pol.Deadline > 0 {
			var cancel context.CancelFunc
			uctx, cancel = context.WithTimeout(ctx, pol.Deadline)
			defer cancel()
		}
		if err := lp.RequestUnlock(uctx, obj, offset, int(k.pageSize), access); err != nil {
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				k.stats.PagerTimeouts.Add(1)
				return 0, fmt.Errorf("%w: %s data_unlock: %v", ErrPagerTimeout, pager.Name(), err)
			}
			k.stats.PagerErrors.Add(1)
			return 0, fmt.Errorf("vm_fault: pager %s refused unlock: %w", pager.Name(), err)
		}
	}
	// Compute the residual prohibitions. The requested access was just
	// granted (or was never locked) and must not be re-checked: a pager
	// re-asserting its lock concurrently could make CheckLock report the
	// access prohibited again, and the faulter would enter a mapping
	// without the access it negotiated and refault forever.
	var prohibited vmtypes.Prot
	for _, bit := range []vmtypes.Prot{vmtypes.ProtRead, vmtypes.ProtWrite, vmtypes.ProtExecute} {
		if access.Allows(bit) {
			continue
		}
		if !lp.CheckLock(obj, offset, bit) {
			prohibited |= bit
		}
	}
	return prohibited &^ access, nil
}
