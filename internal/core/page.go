package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"machvm/internal/vmtypes"
)

// ErrNoMemory is returned when physical memory is exhausted and repeated
// pageout scans reclaim nothing (every page wired or busy). It surfaces
// through Fault to the faulting caller instead of panicking the kernel.
var ErrNoMemory = errors.New("vm: out of physical memory and nothing is reclaimable")

// Page is one entry of the resident page table (§3.1). Physical memory is
// treated primarily as a cache for the contents of virtual memory objects;
// each page entry may simultaneously be linked into a memory-object list,
// a memory-allocation queue, and an object/offset hash bucket.
//
// Locking (DESIGN.md §7): the resident page table is lock-striped. A
// page's state fields (busy, dirty, precious, wireCount, queue id) are
// guarded by the shard lock of its current identity; the object list links
// by the owning object's lock; the queue links by the owning queue's lock.
// A free page has no identity and belongs exclusively to the thread that
// popped it from the free list.
type Page struct {
	// pfn is the first hardware frame of this Mach page.
	pfn vmtypes.PFN

	// The page's (object, offset) identity — byte offsets are used
	// throughout to avoid linking the implementation to a notion of page
	// size. identObj is nil while the page is free or in transit between
	// objects. The pair is published under a seqlock (identSeq odd while
	// a change is in flight, bumped to a new even value after) so that
	// lock-free holders of a *Page (the pageout daemon's queue
	// snapshots) can read a consistent snapshot, locate the owning
	// shard, lock it, and revalidate by re-reading identSeq: identity
	// changes happen only under the owning shard's lock, and identSeq is
	// monotonic, so an unchanged sequence number proves the identity is
	// stable until that lock is released. The previous design published
	// a freshly allocated immutable pair per identity change; the
	// seqlock keeps the same protocol with zero allocation, which is
	// what the zero-fill fault path needs.
	identObj atomic.Pointer[Object]
	identOff atomic.Uint64
	identSeq atomic.Uint64

	// Memory-object list links, guarded by the owning object's mutex.
	objPrev, objNext *Page

	// queue names the allocation queue holding the page. Transitions are
	// serialized by the shard lock of the page's identity (free-list
	// transitions instead rely on the exclusive ownership of the thread
	// that popped or unlinked the page); the intrusive links are guarded
	// by the owning queue's own lock.
	queue        int
	qPrev, qNext *Page

	// wireCount pins the page in memory while > 0. Mutated under the
	// shard lock; atomic so statistics can sample it without locking.
	wireCount atomic.Int32

	// mag is the index of the free-page magazine this page drains to: the
	// shard index of its current (or, once freed, most recent) identity.
	// Written only by the page's exclusive owner (insertPageLocked under
	// the shard lock, grabFreePage on a just-popped page).
	mag uint8

	// busy marks a page with I/O or fill in progress; faulters wait on a
	// per-key wait channel in the shard. Guarded by the shard lock. The
	// thread that set busy (the owner) may write absent/dirty directly:
	// everyone else reads them only after taking the shard lock and
	// seeing busy clear, which the owner also does under the lock.
	busy bool
	// absent marks a busy page whose data has not yet arrived from the
	// pager.
	absent bool
	// dirty means the page has data its object's pager has not seen.
	dirty bool
	// precious means the pager wants the data back even if clean.
	precious bool
}

// identity returns a consistent snapshot of the page's (object, offset)
// identity plus the seqlock value it was read at; ok=false means the
// page has no identity (free or in transit). Safe with no locks held —
// an in-flight change (odd or moved sequence) is simply re-read.
func (p *Page) identity() (obj *Object, off uint64, seq uint64, ok bool) {
	for {
		seq = p.identSeq.Load()
		if seq&1 == 0 {
			obj = p.identObj.Load()
			off = p.identOff.Load()
			if p.identSeq.Load() == seq {
				return obj, off, seq, obj != nil
			}
		}
	}
}

// setIdentity publishes a new identity. The caller holds the shard lock
// the identity hashes to, which serializes all writers for this page.
func (p *Page) setIdentity(obj *Object, off uint64) {
	p.identSeq.Add(1) // odd: change in progress
	p.identObj.Store(obj)
	p.identOff.Store(off)
	p.identSeq.Add(1) // even again: stable
}

// clearIdentity retires the page's identity (same locking as setIdentity).
func (p *Page) clearIdentity() {
	p.identSeq.Add(1)
	p.identObj.Store(nil)
	p.identOff.Store(0)
	p.identSeq.Add(1)
}

// PFN returns the page's first hardware frame number.
func (p *Page) PFN() vmtypes.PFN { return p.pfn }

// Offset returns the page's byte offset within its object (0 when free).
func (p *Page) Offset() uint64 {
	if _, off, _, ok := p.identity(); ok {
		return off
	}
	return 0
}

// Queue identifiers. queueFree is the global depot; queueMagazine marks a
// free page cached in one of the per-shard magazines.
const (
	queueNone = iota
	queueFree
	queueMagazine
	queueActive
	queueInactive
)

type pageKey struct {
	obj    *Object
	offset uint64
}

// numPageShards stripes the object/offset hash and the page-state locks so
// faults on unrelated objects never contend. Power of two.
const numPageShards = 64

// pageShard is one stripe of the resident page table: a slice of the
// object/offset hash (§3.1: "fast lookup of a physical page associated
// with an object/offset at the time of a page fault") plus per-key wait
// channels for busy pages, so a fault blocked on one busy page never wakes
// faulters waiting on an unrelated one.
type pageShard struct {
	mu      sync.Mutex
	pages   map[pageKey]*Page
	waiters map[pageKey]chan struct{}
}

// waitChan returns the channel that will be closed when the page at key is
// woken (busy cleared or page removed). The shard lock must be held.
func (s *pageShard) waitChan(key pageKey) chan struct{} {
	ch := s.waiters[key]
	if ch == nil {
		ch = make(chan struct{})
		s.waiters[key] = ch
	}
	return ch
}

// wake closes and forgets the wait channel for key, releasing every waiter
// on that page only. The shard lock must be held.
func (s *pageShard) wake(key pageKey) {
	if ch := s.waiters[key]; ch != nil {
		delete(s.waiters, key)
		close(ch)
	}
}

// shardIndexFor returns the index of the shard owning (obj, offset); the
// free-page magazine with the same index serves allocations for it.
func (k *Kernel) shardIndexFor(obj *Object, offset uint64) int {
	h := obj.generation.Load() * 0x9e3779b97f4a7c15
	h ^= (offset >> 12) * 0xbf58476d1ce4e5b9
	h ^= h >> 29
	return int(h & (numPageShards - 1))
}

// shardFor returns the shard owning (obj, offset).
func (k *Kernel) shardFor(obj *Object, offset uint64) *pageShard {
	return &k.shards[k.shardIndexFor(obj, offset)]
}

// lockPage locks the shard guarding p's current identity and returns it
// with the identity, or a nil shard for a page with no identity (free or
// in transit). While the returned lock is held the identity cannot
// change, because identity changes require the same lock; an unchanged
// identSeq after acquiring it proves the snapshot is still current (the
// sequence is monotonic, so ABA is impossible).
func (k *Kernel) lockPage(p *Page) (*pageShard, *Object, uint64) {
	for {
		obj, off, seq, ok := p.identity()
		if !ok {
			return nil, nil, 0
		}
		s := k.shardFor(obj, off)
		s.mu.Lock()
		if p.identSeq.Load() == seq {
			return s, obj, off
		}
		// The page changed identity while we chased its shard.
		s.mu.Unlock()
		k.stats.ShardRetries.Add(1)
	}
}

// pageQueue is an intrusive FIFO of pages.
type pageQueue struct {
	head, tail *Page
	count      int
}

func (q *pageQueue) pushBack(p *Page) {
	p.qPrev = q.tail
	p.qNext = nil
	if q.tail != nil {
		q.tail.qNext = p
	} else {
		q.head = p
	}
	q.tail = p
	q.count++
}

func (q *pageQueue) remove(p *Page) {
	if p.qPrev != nil {
		p.qPrev.qNext = p.qNext
	} else {
		q.head = p.qNext
	}
	if p.qNext != nil {
		p.qNext.qPrev = p.qPrev
	} else {
		q.tail = p.qPrev
	}
	p.qPrev, p.qNext = nil, nil
	q.count--
}

func (q *pageQueue) popFront() *Page {
	p := q.head
	if p != nil {
		q.remove(p)
	}
	return p
}

// lockedQueue is an allocation queue with its own lock — free, active and
// inactive no longer share one mutex.
type lockedQueue struct {
	mu sync.Mutex
	q  pageQueue
}

// The free list is a magazine layer (DESIGN.md §7): one free-page cache
// per page shard over a global depot. An allocation for (obj, offset)
// draws from the magazine with the object's shard index and a freed page
// returns to the magazine of its last identity, so faults on unrelated
// objects never meet on a free-list lock; the depot is touched only for
// batched magazineExchange-page refills and drains, which keeps its lock
// off the fault path entirely. The atomic freeCount spans magazines +
// depot, so the freeMin/freeTarget watermarks see every free page no
// matter where it is cached.
const (
	// magazineExchange is the number of pages moved per magazine↔depot
	// exchange.
	magazineExchange = 32
	// magazineCap bounds a magazine so free memory cannot silt up in one
	// shard's cache; beyond it a batch drains back to the depot.
	magazineCap = 2 * magazineExchange
)

// pageMagazine is one per-shard free-page cache. The pad keeps
// neighbouring magazines off one cache line.
type pageMagazine struct {
	mu sync.Mutex
	q  pageQueue
	_  [64]byte
}

// magazinePop takes one free page out of magazine mag, refilling from the
// depot in a batch when the magazine is dry and stealing from sibling
// magazines when the depot is dry too. It returns nil only when no free
// page exists anywhere. The page comes back exclusively owned, with
// queue already set to queueNone.
func (k *Kernel) magazinePop(mag int) *Page {
	m := &k.magazines[mag]
	m.mu.Lock()
	if p := m.q.popFront(); p != nil {
		p.queue = queueNone
		m.mu.Unlock()
		k.stats.MagazineHits.Add(1)
		return p
	}
	// Refill: move a batch from the depot, keeping the first page for the
	// caller. Lock order: magazine → depot.
	k.depot.mu.Lock()
	p := k.depot.q.popFront()
	if p != nil {
		p.queue = queueNone
		for i := 1; i < magazineExchange; i++ {
			r := k.depot.q.popFront()
			if r == nil {
				break
			}
			r.queue = queueMagazine
			r.mag = uint8(mag)
			m.q.pushBack(r)
		}
	}
	k.depot.mu.Unlock()
	m.mu.Unlock()
	if p != nil {
		k.stats.DepotRefills.Add(1)
		return p
	}
	// Memory pressure: free pages may still sit in other shards'
	// magazines (freeCount counts them). Never hold two magazine locks.
	for i := 1; i < numPageShards; i++ {
		s := &k.magazines[(mag+i)&(numPageShards-1)]
		s.mu.Lock()
		p := s.q.popFront()
		if p != nil {
			p.queue = queueNone
		}
		s.mu.Unlock()
		if p != nil {
			k.stats.MagazineSteals.Add(1)
			return p
		}
	}
	return nil
}

// magazinePush returns an exclusively-owned free page to its magazine,
// draining a batch to the depot when the cache overfills. The caller
// maintains the free count.
func (k *Kernel) magazinePush(p *Page) {
	m := &k.magazines[p.mag]
	m.mu.Lock()
	p.queue = queueMagazine
	m.q.pushBack(p)
	if m.q.count > magazineCap {
		// Lock order: magazine → depot.
		k.depot.mu.Lock()
		for i := 0; i < magazineExchange; i++ {
			d := m.q.popFront()
			d.queue = queueFree
			k.depot.q.pushBack(d)
		}
		k.depot.mu.Unlock()
		k.stats.DepotDrains.Add(1)
	}
	m.mu.Unlock()
}

// queueFor returns the pageable queue with the given id. The free layer
// (magazines + depot) is deliberately excluded: free-list membership is
// managed only by grabFreePage, releaseFreePage and detachAndFree, which
// also maintain the atomic free count.
func (k *Kernel) queueFor(id int) *lockedQueue {
	switch id {
	case queueActive:
		return &k.active
	case queueInactive:
		return &k.inactive
	default:
		return nil
	}
}

// setQueue moves p between the pageable queues (never to or from the free
// list). The caller must hold p's shard lock, or own the page exclusively,
// so that transitions for one page never race; only the queue's own lock
// guards the intrusive list.
func (k *Kernel) setQueue(p *Page, id int) {
	if q := k.queueFor(p.queue); q != nil {
		q.mu.Lock()
		q.q.remove(p)
		q.mu.Unlock()
	}
	p.queue = id
	if q := k.queueFor(id); q != nil {
		q.mu.Lock()
		q.q.pushBack(p)
		q.mu.Unlock()
	}
}

// grabFreePage removes one page from the free layer, drawing from
// magazine mag, and returns it exclusively owned and marked busy. When
// memory is exhausted it runs pageout synchronously — single-flight, so
// concurrent losers wait for the in-flight scan instead of piling
// redundant scans on top of it — and returns ErrNoMemory only after
// repeated scans reclaim nothing.
func (k *Kernel) grabFreePage(mag int) (*Page, error) {
	futile := 0
	for {
		if p := k.magazinePop(mag); p != nil {
			k.freeCount.Add(-1)
			p.mag = uint8(mag)
			p.busy = true
			p.absent = false
			p.dirty = false
			p.precious = false
			p.wireCount.Store(0)
			return p, nil
		}
		if k.PageoutScan() == 0 && k.FreeCount() == 0 {
			// The scan we ran (or waited on) freed nothing and nothing
			// is free anywhere; only repeated futile passes mean memory
			// is truly exhausted rather than transiently contended.
			if futile++; futile >= 8 {
				return nil, ErrNoMemory
			}
		} else {
			futile = 0
		}
	}
}

// releaseFreePage returns a grabbed-but-never-installed page to the free
// layer (the caller lost an installation race).
func (k *Kernel) releaseFreePage(p *Page) {
	p.busy = false
	p.absent = false
	p.dirty = false
	p.precious = false
	k.magazinePush(p)
	k.freeCount.Add(1)
}

// detachAndFree takes a page whose identity has been removed — so no other
// thread can reach it through the page table — detaches it from its
// allocation queue and returns it to the free layer.
func (k *Kernel) detachAndFree(p *Page) {
	k.setQueue(p, queueNone)
	p.busy = false
	p.absent = false
	p.dirty = false
	p.precious = false
	p.wireCount.Store(0)
	k.magazinePush(p)
	k.freeCount.Add(1)
	k.stats.PagesFreed.Add(1)
}

// allocPage grabs a free page and inserts it, busy, into obj at offset so
// the caller can fill it without any page-table lock. It blocks (running
// pageout synchronously) if memory is exhausted, returning ErrNoMemory
// when repeated scans reclaim nothing. fresh=false means a concurrent
// faulter installed a page at (obj, offset) first; the returned page is
// that one, and the caller should rewalk rather than fill it.
func (k *Kernel) allocPage(obj *Object, offset uint64) (*Page, bool, error) {
	mag := k.shardIndexFor(obj, offset)
	p, err := k.grabFreePage(mag)
	if err != nil {
		return nil, false, err
	}
	obj.mu.Lock()
	s := &k.shards[mag]
	s.mu.Lock()
	if existing := s.pages[pageKey{obj: obj, offset: offset}]; existing != nil {
		s.mu.Unlock()
		obj.mu.Unlock()
		k.releaseFreePage(p)
		k.stats.AllocRaces.Add(1)
		return existing, false, nil
	}
	k.insertPageLocked(s, p, obj, offset)
	s.mu.Unlock()
	obj.mu.Unlock()
	if k.FreeCount() < k.freeMin {
		k.stats.PageoutsWanted.Add(1)
		k.wakePageoutDaemon()
	}
	k.stats.PagesAllocated.Add(1)
	return p, true, nil
}

// insertPageLocked links p into obj's resident list and the hash. The
// caller holds obj's lock and the shard lock for (obj, offset).
func (k *Kernel) insertPageLocked(s *pageShard, p *Page, obj *Object, offset uint64) {
	key := pageKey{obj: obj, offset: offset}
	if s.pages[key] != nil {
		panic(fmt.Sprintf("core: duplicate resident page for object %p offset %d", obj, offset))
	}
	p.setIdentity(obj, offset)
	p.mag = uint8(k.shardIndexFor(obj, offset))
	s.pages[key] = p
	// Object list: push front (cheap; order is not semantic).
	p.objNext = obj.pageList
	p.objPrev = nil
	if obj.pageList != nil {
		obj.pageList.objPrev = p
	}
	obj.pageList = p
	obj.resident++
}

// removePageLocked unlinks p from its object and the hash, waking any
// faulters parked on its key (they re-look-up and find the page gone). The
// caller holds the owning object's lock and the shard lock of p's
// identity.
func (k *Kernel) removePageLocked(s *pageShard, p *Page) {
	// The caller holds the identity's shard lock, so no identity change
	// is in flight and the fields can be read directly.
	obj := p.identObj.Load()
	if obj == nil {
		return
	}
	key := pageKey{obj: obj, offset: p.identOff.Load()}
	delete(s.pages, key)
	s.wake(key)
	p.clearIdentity()
	if p.objPrev != nil {
		p.objPrev.objNext = p.objNext
	} else {
		obj.pageList = p.objNext
	}
	if p.objNext != nil {
		p.objNext.objPrev = p.objPrev
	}
	p.objPrev, p.objNext = nil, nil
	obj.resident--
}

// freePage returns p to the free list, severing object links. The caller
// must have made the page unreclaimable by others (typically by owning its
// busy bit).
func (k *Kernel) freePage(p *Page) {
	for {
		obj, off, seq, ok := p.identity()
		if !ok {
			break
		}
		obj.mu.Lock()
		s := k.shardFor(obj, off)
		s.mu.Lock()
		if p.identSeq.Load() != seq {
			s.mu.Unlock()
			obj.mu.Unlock()
			continue
		}
		k.removePageLocked(s, p)
		s.mu.Unlock()
		obj.mu.Unlock()
		break
	}
	k.detachAndFree(p)
}

// freePageObjLocked is freePage for callers already holding the owning
// object's lock (the pageout daemon).
func (k *Kernel) freePageObjLocked(p *Page) {
	if obj, off, _, ok := p.identity(); ok {
		s := k.shardFor(obj, off)
		s.mu.Lock()
		k.removePageLocked(s, p)
		s.mu.Unlock()
	}
	k.detachAndFree(p)
}

// lookupPage finds the resident page for (obj, offset) via the sharded
// hash. With wait=true it waits for a busy page (on a per-key channel, so
// completion of an unrelated page never wakes this faulter) and returns
// the page busy-claimed: the caller owns it until pageWakeup, which is
// what keeps the pageout daemon from freeing a page between fault lookup
// and hardware-mapping entry. With wait=false the page is returned as-is,
// unclaimed, possibly busy.
func (k *Kernel) lookupPage(obj *Object, offset uint64, wait bool) *Page {
	s := k.shardFor(obj, offset)
	key := pageKey{obj: obj, offset: offset}
	s.mu.Lock()
	for {
		p := s.pages[key]
		if p == nil || !wait {
			s.mu.Unlock()
			return p
		}
		if !p.busy {
			p.busy = true
			s.mu.Unlock()
			return p
		}
		k.stats.BusyWaits.Add(1)
		ch := s.waitChan(key)
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
}

// pageWakeup clears busy and wakes the waiters parked on this page.
func (k *Kernel) pageWakeup(p *Page) {
	s, obj, off := k.lockPage(p)
	if s == nil {
		p.busy = false
		return
	}
	p.busy = false
	s.wake(pageKey{obj: obj, offset: off})
	s.mu.Unlock()
}

// activatePage puts p on the active queue (it is in use).
func (k *Kernel) activatePage(p *Page) {
	s, _, _ := k.lockPage(p)
	if s == nil {
		return
	}
	if p.wireCount.Load() == 0 {
		k.setQueue(p, queueActive)
	}
	s.mu.Unlock()
}

// deactivatePage moves p to the inactive queue (pageout candidate).
func (k *Kernel) deactivatePage(p *Page) {
	s, _, _ := k.lockPage(p)
	if s == nil {
		return
	}
	if p.queue == queueActive {
		k.setQueue(p, queueInactive)
		for i := 0; i < k.hwRatio; i++ {
			k.mod.ClearReference(p.pfn + vmtypes.PFN(i))
		}
	}
	s.mu.Unlock()
}

// wirePage pins p in memory (removing it from pageout's reach).
func (k *Kernel) wirePage(p *Page) {
	s, _, _ := k.lockPage(p)
	if s == nil {
		return
	}
	if p.wireCount.Add(1) == 1 {
		k.setQueue(p, queueNone)
	}
	s.mu.Unlock()
}

// unwirePage releases a pin.
func (k *Kernel) unwirePage(p *Page) {
	s, _, _ := k.lockPage(p)
	if s == nil {
		return
	}
	if p.wireCount.Load() > 0 && p.wireCount.Add(-1) == 0 {
		k.setQueue(p, queueActive)
	}
	s.mu.Unlock()
}

// FreeCount returns the number of free Mach pages across the magazines
// and the depot. It reads an atomic counter, so pageout-trigger checks
// never take a lock.
func (k *Kernel) FreeCount() int { return int(k.freeCount.Load()) }

// ActiveCount returns the number of active Mach pages.
func (k *Kernel) ActiveCount() int {
	k.active.mu.Lock()
	defer k.active.mu.Unlock()
	return k.active.q.count
}

// InactiveCount returns the number of inactive Mach pages.
func (k *Kernel) InactiveCount() int {
	k.inactive.mu.Lock()
	defer k.inactive.mu.Unlock()
	return k.inactive.q.count
}

// zeroPage zero-fills every hardware frame of the Mach page.
func (k *Kernel) zeroPage(p *Page) {
	for i := 0; i < k.hwRatio; i++ {
		k.mod.ZeroPage(p.pfn + vmtypes.PFN(i))
	}
}

// copyPage copies the contents of one Mach page to another.
func (k *Kernel) copyPage(src, dst *Page) {
	for i := 0; i < k.hwRatio; i++ {
		k.mod.CopyPage(src.pfn+vmtypes.PFN(i), dst.pfn+vmtypes.PFN(i))
	}
}

// frameBytes returns the raw bytes of one hardware frame of the Mach page.
// Callers that may run concurrently with user accesses must bracket their
// use with Mem.LockFrame/UnlockFrame.
func (k *Kernel) frameBytes(p *Page, hwIndex int) []byte {
	return k.machine.Mem.Frame(p.pfn + vmtypes.PFN(hwIndex))
}

// snapshotPage copies the Mach page's bytes into data under the per-frame
// locks (used before handing the data to a pager).
func (k *Kernel) snapshotPage(p *Page, data []byte) {
	hwPage := k.machine.Mem.PageSize()
	for i := 0; i < k.hwRatio; i++ {
		pfn := p.pfn + vmtypes.PFN(i)
		k.machine.Mem.LockFrame(pfn)
		copy(data[i*hwPage:], k.machine.Mem.Frame(pfn))
		k.machine.Mem.UnlockFrame(pfn)
	}
}

// removeAllMappings removes every hardware mapping of the Mach page
// (pmap_remove_all over each frame).
func (k *Kernel) removeAllMappings(p *Page) {
	for i := 0; i < k.hwRatio; i++ {
		k.mod.RemoveAll(p.pfn + vmtypes.PFN(i))
	}
}

// writeProtectAll write-protects every hardware mapping of the Mach page
// (pmap_copy_on_write over each frame).
func (k *Kernel) writeProtectAll(p *Page) {
	for i := 0; i < k.hwRatio; i++ {
		k.mod.CopyOnWrite(p.pfn + vmtypes.PFN(i))
	}
}

// isModified reports whether any frame of the Mach page is dirty at the
// hardware level.
func (k *Kernel) isModified(p *Page) bool {
	for i := 0; i < k.hwRatio; i++ {
		if k.mod.IsModified(p.pfn + vmtypes.PFN(i)) {
			return true
		}
	}
	return false
}

// isReferenced reports whether any frame of the Mach page was referenced.
func (k *Kernel) isReferenced(p *Page) bool {
	for i := 0; i < k.hwRatio; i++ {
		if k.mod.IsReferenced(p.pfn + vmtypes.PFN(i)) {
			return true
		}
	}
	return false
}

// clearModify clears the hardware modify bits of the Mach page.
func (k *Kernel) clearModify(p *Page) {
	for i := 0; i < k.hwRatio; i++ {
		k.mod.ClearModify(p.pfn + vmtypes.PFN(i))
	}
}
