package core

import (
	"fmt"

	"machvm/internal/vmtypes"
)

// Page is one entry of the resident page table (§3.1). Physical memory is
// treated primarily as a cache for the contents of virtual memory objects;
// each page entry may simultaneously be linked into a memory-object list,
// a memory-allocation queue, and an object/offset hash bucket.
type Page struct {
	// pfn is the first hardware frame of this Mach page.
	pfn vmtypes.PFN

	// Object membership (nil object when free). offset is the byte
	// offset within the object — byte offsets are used throughout to
	// avoid linking the implementation to a notion of page size.
	object *Object
	offset uint64

	// Memory-object list links.
	objPrev, objNext *Page

	// Allocation-queue links and membership.
	queue int
	qPrev *Page
	qNext *Page

	// wireCount pins the page in memory while > 0.
	wireCount int

	// busy marks a page with I/O or fill in progress; faulters wait.
	busy bool
	// absent marks a busy page whose data has not yet arrived from the
	// pager.
	absent bool
	// dirty means the page has data its object's pager has not seen.
	dirty bool
	// precious means the pager wants the data back even if clean.
	precious bool
}

// PFN returns the page's first hardware frame number.
func (p *Page) PFN() vmtypes.PFN { return p.pfn }

// Offset returns the page's byte offset within its object.
func (p *Page) Offset() uint64 { return p.offset }

// Queue identifiers.
const (
	queueNone = iota
	queueFree
	queueActive
	queueInactive
)

type pageKey struct {
	obj    *Object
	offset uint64
}

// pageQueue is an intrusive FIFO of pages.
type pageQueue struct {
	head, tail *Page
	count      int
}

func (q *pageQueue) pushBack(p *Page) {
	p.qPrev = q.tail
	p.qNext = nil
	if q.tail != nil {
		q.tail.qNext = p
	} else {
		q.head = p
	}
	q.tail = p
	q.count++
}

func (q *pageQueue) remove(p *Page) {
	if p.qPrev != nil {
		p.qPrev.qNext = p.qNext
	} else {
		q.head = p.qNext
	}
	if p.qNext != nil {
		p.qNext.qPrev = p.qPrev
	} else {
		q.tail = p.qPrev
	}
	p.qPrev, p.qNext = nil, nil
	q.count--
}

func (q *pageQueue) popFront() *Page {
	p := q.head
	if p != nil {
		q.remove(p)
	}
	return p
}

// queueFor returns the kernel queue with the given id.
func (k *Kernel) queueFor(id int) *pageQueue {
	switch id {
	case queueFree:
		return &k.free
	case queueActive:
		return &k.active
	case queueInactive:
		return &k.inactive
	default:
		return nil
	}
}

// removeFromQueueLocked detaches p from whatever queue holds it.
func (k *Kernel) removeFromQueueLocked(p *Page) {
	if q := k.queueFor(p.queue); q != nil {
		q.remove(p)
	}
	p.queue = queueNone
}

// setQueueLocked moves p to the queue with the given id.
func (k *Kernel) setQueueLocked(p *Page, id int) {
	k.removeFromQueueLocked(p)
	if q := k.queueFor(id); q != nil {
		q.pushBack(p)
	}
	p.queue = id
}

// allocPage grabs a free page and inserts it, busy, into obj at offset.
// It blocks (running pageout synchronously) if memory is exhausted.
// The object lock must be held; the page is returned busy so the caller
// can fill it without the kernel lock.
func (k *Kernel) allocPage(obj *Object, offset uint64) *Page {
	k.pageMu.Lock()
	for k.free.count == 0 {
		k.pageMu.Unlock()
		freed := k.PageoutScan()
		k.pageMu.Lock()
		if freed == 0 && k.free.count == 0 {
			k.pageMu.Unlock()
			panic("core: out of physical memory and nothing is reclaimable")
		}
	}
	p := k.free.popFront()
	p.queue = queueNone
	p.busy = true
	p.absent = false
	p.dirty = false
	p.precious = false
	p.wireCount = 0
	k.insertPageLocked(p, obj, offset)
	if k.free.count < k.freeMin {
		k.stats.PageoutsWanted.Add(1)
	}
	k.pageMu.Unlock()
	k.stats.PagesAllocated.Add(1)
	return p
}

// insertPageLocked links p into obj's resident list and the hash.
func (k *Kernel) insertPageLocked(p *Page, obj *Object, offset uint64) {
	p.object = obj
	p.offset = offset
	key := pageKey{obj: obj, offset: offset}
	if k.hash[key] != nil {
		panic(fmt.Sprintf("core: duplicate resident page for object %p offset %d", obj, offset))
	}
	k.hash[key] = p
	// Object list: push front (cheap; order is not semantic).
	p.objNext = obj.pageList
	p.objPrev = nil
	if obj.pageList != nil {
		obj.pageList.objPrev = p
	}
	obj.pageList = p
	obj.resident++
}

// removePageLocked unlinks p from its object and the hash.
func (k *Kernel) removePageLocked(p *Page) {
	obj := p.object
	if obj == nil {
		return
	}
	delete(k.hash, pageKey{obj: obj, offset: p.offset})
	if p.objPrev != nil {
		p.objPrev.objNext = p.objNext
	} else {
		obj.pageList = p.objNext
	}
	if p.objNext != nil {
		p.objNext.objPrev = p.objPrev
	}
	p.objPrev, p.objNext = nil, nil
	obj.resident--
	p.object = nil
}

// freePage returns p to the free list, severing object links.
func (k *Kernel) freePage(p *Page) {
	k.pageMu.Lock()
	k.removePageLocked(p)
	k.removeFromQueueLocked(p)
	p.busy = false
	p.absent = false
	p.dirty = false
	p.wireCount = 0
	k.setQueueLocked(p, queueFree)
	k.pageMu.Unlock()
	k.stats.PagesFreed.Add(1)
}

// lookupPage finds the resident page for (obj, offset) via the bucket hash
// (§3.1: "fast lookup of a physical page associated with an object/offset
// at the time of a page fault"). If the page is busy, lookupPage waits for
// it unless wait is false.
func (k *Kernel) lookupPage(obj *Object, offset uint64, wait bool) *Page {
	k.pageMu.Lock()
	defer k.pageMu.Unlock()
	for {
		p := k.hash[pageKey{obj: obj, offset: offset}]
		if p == nil {
			return nil
		}
		if !p.busy || !wait {
			return p
		}
		k.stats.BusyWaits.Add(1)
		k.pageCond.Wait()
	}
}

// pageWakeup clears busy and wakes waiters.
func (k *Kernel) pageWakeup(p *Page) {
	k.pageMu.Lock()
	p.busy = false
	k.pageMu.Unlock()
	k.pageCond.Broadcast()
}

// activatePage puts p on the active queue (it is in use).
func (k *Kernel) activatePage(p *Page) {
	k.pageMu.Lock()
	if p.queue != queueFree && p.wireCount == 0 {
		k.setQueueLocked(p, queueActive)
	}
	k.pageMu.Unlock()
}

// deactivatePage moves p to the inactive queue (pageout candidate).
func (k *Kernel) deactivatePage(p *Page) {
	k.pageMu.Lock()
	if p.queue == queueActive {
		k.setQueueLocked(p, queueInactive)
		for i := 0; i < k.hwRatio; i++ {
			k.mod.ClearReference(p.pfn + vmtypes.PFN(i))
		}
	}
	k.pageMu.Unlock()
}

// wirePage pins p in memory (removing it from pageout's reach).
func (k *Kernel) wirePage(p *Page) {
	k.pageMu.Lock()
	p.wireCount++
	if p.wireCount == 1 {
		k.removeFromQueueLocked(p)
	}
	k.pageMu.Unlock()
}

// unwirePage releases a pin.
func (k *Kernel) unwirePage(p *Page) {
	k.pageMu.Lock()
	if p.wireCount > 0 {
		p.wireCount--
		if p.wireCount == 0 {
			k.setQueueLocked(p, queueActive)
		}
	}
	k.pageMu.Unlock()
}

// FreeCount returns the number of free Mach pages.
func (k *Kernel) FreeCount() int {
	k.pageMu.Lock()
	defer k.pageMu.Unlock()
	return k.free.count
}

// ActiveCount returns the number of active Mach pages.
func (k *Kernel) ActiveCount() int {
	k.pageMu.Lock()
	defer k.pageMu.Unlock()
	return k.active.count
}

// InactiveCount returns the number of inactive Mach pages.
func (k *Kernel) InactiveCount() int {
	k.pageMu.Lock()
	defer k.pageMu.Unlock()
	return k.inactive.count
}

// zeroPage zero-fills every hardware frame of the Mach page.
func (k *Kernel) zeroPage(p *Page) {
	for i := 0; i < k.hwRatio; i++ {
		k.mod.ZeroPage(p.pfn + vmtypes.PFN(i))
	}
}

// copyPage copies the contents of one Mach page to another.
func (k *Kernel) copyPage(src, dst *Page) {
	for i := 0; i < k.hwRatio; i++ {
		k.mod.CopyPage(src.pfn+vmtypes.PFN(i), dst.pfn+vmtypes.PFN(i))
	}
}

// pageBytes returns the raw bytes of the Mach page as a contiguous slice
// view (copying across hardware frames is handled by the callers, who work
// frame by frame).
func (k *Kernel) frameBytes(p *Page, hwIndex int) []byte {
	return k.machine.Mem.Frame(p.pfn + vmtypes.PFN(hwIndex))
}

// removeAllMappings removes every hardware mapping of the Mach page
// (pmap_remove_all over each frame).
func (k *Kernel) removeAllMappings(p *Page) {
	for i := 0; i < k.hwRatio; i++ {
		k.mod.RemoveAll(p.pfn + vmtypes.PFN(i))
	}
}

// writeProtectAll write-protects every hardware mapping of the Mach page
// (pmap_copy_on_write over each frame).
func (k *Kernel) writeProtectAll(p *Page) {
	for i := 0; i < k.hwRatio; i++ {
		k.mod.CopyOnWrite(p.pfn + vmtypes.PFN(i))
	}
}

// isModified reports whether any frame of the Mach page is dirty at the
// hardware level.
func (k *Kernel) isModified(p *Page) bool {
	for i := 0; i < k.hwRatio; i++ {
		if k.mod.IsModified(p.pfn + vmtypes.PFN(i)) {
			return true
		}
	}
	return false
}

// isReferenced reports whether any frame of the Mach page was referenced.
func (k *Kernel) isReferenced(p *Page) bool {
	for i := 0; i < k.hwRatio; i++ {
		if k.mod.IsReferenced(p.pfn + vmtypes.PFN(i)) {
			return true
		}
	}
	return false
}

// clearModify clears the hardware modify bits of the Mach page.
func (k *Kernel) clearModify(p *Page) {
	for i := 0; i < k.hwRatio; i++ {
		k.mod.ClearModify(p.pfn + vmtypes.PFN(i))
	}
}
