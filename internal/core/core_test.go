package core_test

import (
	"bytes"
	"testing"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

// newVAXKernel builds a small VAX machine: 512-byte hardware pages, 4096
// frames (2MB), 4KB Mach pages.
func newVAXKernel(t testing.TB, cpus int) (*core.Kernel, *hw.Machine) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 4096,
		CPUs:       cpus,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := core.MustNewKernel(core.Config{Machine: machine, Module: mod, PageSize: 4096})
	return k, machine
}

func TestAllocateTouchDeallocate(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)

	addr, err := m.Allocate(0, 64*1024, true)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Fresh memory is zero filled.
	buf := make([]byte, 128)
	if err := k.AccessBytes(cpu, m, addr, buf, false); err != nil {
		t.Fatalf("read: %v", err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh memory must be zero")
		}
	}
	// Write and read back across page boundaries.
	data := bytes.Repeat([]byte("mach!"), 2000)
	if err := k.AccessBytes(cpu, m, addr+100, data, true); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(data))
	if err := k.AccessBytes(cpu, m, addr+100, got, false); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
	if k.Stats().ZeroFillFaults.Load() == 0 {
		t.Fatal("expected zero-fill faults")
	}

	if err := m.Deallocate(addr, 64*1024); err != nil {
		t.Fatalf("Deallocate: %v", err)
	}
	if err := k.Touch(cpu, m, addr, false); err == nil {
		t.Fatal("access after deallocate must fail")
	}
}

func TestAllocateAtAddressAndOverlap(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()

	addr := vmtypes.VA(0x10000)
	got, err := m.Allocate(addr, 8192, false)
	if err != nil || got != addr {
		t.Fatalf("Allocate at %x: got %x err %v", addr, got, err)
	}
	if _, err := m.Allocate(addr+4096, 4096, false); err != core.ErrInvalidAddress {
		t.Fatalf("overlapping allocate: err=%v; want ErrInvalidAddress", err)
	}
	if _, err := m.Allocate(addr+1, 4096, false); err != core.ErrBadAlignment {
		t.Fatalf("unaligned allocate: err=%v; want ErrBadAlignment", err)
	}
	if k.PageSize() != 4096 {
		t.Fatalf("page size = %d", k.PageSize())
	}
}

func TestProtectionSemantics(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)

	addr, _ := m.Allocate(0, 8192, true)
	if err := k.Touch(cpu, m, addr, true); err != nil {
		t.Fatalf("initial write: %v", err)
	}

	// Drop current protection to read-only: writes must fail.
	if err := m.Protect(addr, 8192, false, vmtypes.ProtRead); err != nil {
		t.Fatalf("Protect: %v", err)
	}
	if err := k.Touch(cpu, m, addr, true); err == nil {
		t.Fatal("write through read-only range must fail")
	}
	if err := k.Touch(cpu, m, addr, false); err != nil {
		t.Fatalf("read through read-only range: %v", err)
	}

	// Raise it back (still below max): writes work again.
	if err := m.Protect(addr, 8192, false, vmtypes.ProtDefault); err != nil {
		t.Fatalf("Protect raise: %v", err)
	}
	if err := k.Touch(cpu, m, addr, true); err != nil {
		t.Fatalf("write after raise: %v", err)
	}

	// Lower the maximum below write: current drops too and cannot be
	// raised back ("while the maximum protection can never be raised").
	if err := m.Protect(addr, 8192, true, vmtypes.ProtRead); err != nil {
		t.Fatalf("Protect setMax: %v", err)
	}
	if err := k.Touch(cpu, m, addr, true); err == nil {
		t.Fatal("write after max lowered must fail")
	}
	if err := m.Protect(addr, 8192, false, vmtypes.ProtDefault); err != core.ErrProtectionFailure {
		t.Fatalf("raising above max: err=%v; want ErrProtectionFailure", err)
	}
}

func TestVMCopyIsCopyOnWrite(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)

	src, _ := m.Allocate(0, 16384, true)
	payload := bytes.Repeat([]byte{0xAB}, 16384)
	if err := k.AccessBytes(cpu, m, src, payload, true); err != nil {
		t.Fatalf("fill: %v", err)
	}

	dst, _ := m.Allocate(0, 16384, true)
	if err := m.Deallocate(dst, 16384); err != nil {
		t.Fatal(err)
	}
	copies := k.Stats().Snapshot().CowFaults
	if _, err := m.CopyTo(m, src, 16384, dst, false); err != nil {
		t.Fatalf("CopyTo: %v", err)
	}
	// No data copied yet.
	if got := k.Stats().Snapshot().CowFaults; got != copies {
		t.Fatalf("virtual copy performed %d physical copies", got-copies)
	}

	// Read through the copy sees the source data.
	b := make([]byte, 16)
	if err := k.AccessBytes(cpu, m, dst, b, false); err != nil {
		t.Fatalf("read copy: %v", err)
	}
	if b[0] != 0xAB {
		t.Fatal("copy does not see source data")
	}

	// Writing the copy must not disturb the source.
	if err := k.AccessBytes(cpu, m, dst, []byte{0x11}, true); err != nil {
		t.Fatalf("write copy: %v", err)
	}
	if err := k.AccessBytes(cpu, m, src, b[:1], false); err != nil {
		t.Fatalf("read src: %v", err)
	}
	if b[0] != 0xAB {
		t.Fatal("write to copy leaked into source")
	}
	// Writing the source must not disturb the copy.
	if err := k.AccessBytes(cpu, m, src+4096, []byte{0x22}, true); err != nil {
		t.Fatalf("write src: %v", err)
	}
	if err := k.AccessBytes(cpu, m, dst+4096, b[:1], false); err != nil {
		t.Fatalf("read copy2: %v", err)
	}
	if b[0] != 0xAB {
		t.Fatal("write to source leaked into copy")
	}
	if k.Stats().Snapshot().CowFaults == copies {
		t.Fatal("writes after virtual copy should have copied pages")
	}
}

func TestForkInheritance(t *testing.T) {
	k, machine := newVAXKernel(t, 2)
	parent := k.NewMap()
	defer parent.Destroy()
	cpuP := machine.CPU(0)
	cpuC := machine.CPU(1)
	parent.Pmap().Activate(cpuP)

	copyAddr, _ := parent.Allocate(0, 8192, true)
	sharedAddr, _ := parent.Allocate(0, 8192, true)
	noneAddr, _ := parent.Allocate(0, 8192, true)
	if err := parent.SetInherit(sharedAddr, 8192, vmtypes.InheritShared); err != nil {
		t.Fatal(err)
	}
	if err := parent.SetInherit(noneAddr, 8192, vmtypes.InheritNone); err != nil {
		t.Fatal(err)
	}

	if err := k.AccessBytes(cpuP, parent, copyAddr, []byte{1}, true); err != nil {
		t.Fatal(err)
	}
	if err := k.AccessBytes(cpuP, parent, sharedAddr, []byte{2}, true); err != nil {
		t.Fatal(err)
	}

	child := parent.Fork()
	defer child.Destroy()
	child.Pmap().Activate(cpuC)

	// Copy range: child sees parent data, then diverges.
	b := make([]byte, 1)
	if err := k.AccessBytes(cpuC, child, copyAddr, b, false); err != nil {
		t.Fatalf("child read copy range: %v", err)
	}
	if b[0] != 1 {
		t.Fatalf("child copy range = %d; want 1", b[0])
	}
	if err := k.AccessBytes(cpuC, child, copyAddr, []byte{9}, true); err != nil {
		t.Fatal(err)
	}
	if err := k.AccessBytes(cpuP, parent, copyAddr, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 {
		t.Fatal("child write leaked into parent (copy inheritance)")
	}

	// Shared range: writes are visible both ways.
	if err := k.AccessBytes(cpuC, child, sharedAddr, []byte{7}, true); err != nil {
		t.Fatalf("child write shared: %v", err)
	}
	if err := k.AccessBytes(cpuP, parent, sharedAddr, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 7 {
		t.Fatalf("parent sees %d in shared range; want 7", b[0])
	}
	if err := k.AccessBytes(cpuP, parent, sharedAddr+100, []byte{8}, true); err != nil {
		t.Fatal(err)
	}
	if err := k.AccessBytes(cpuC, child, sharedAddr+100, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 8 {
		t.Fatalf("child sees %d in shared range; want 8", b[0])
	}

	// None range: unallocated in the child.
	if err := k.Touch(cpuC, child, noneAddr, false); err == nil {
		t.Fatal("inherit-none range must be unallocated in child")
	}
}

func TestRepeatedForkCollapsesShadowChains(t *testing.T) {
	// §3.5: a process that repeatedly forks would otherwise build a long
	// shadow chain down to the object backing the stack.
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)

	m := k.NewMap()
	addr, _ := m.Allocate(0, 8192, true)
	m.Pmap().Activate(cpu)
	if err := k.AccessBytes(cpu, m, addr, []byte{1}, true); err != nil {
		t.Fatal(err)
	}

	const generations = 12
	for i := 0; i < generations; i++ {
		child := m.Fork()
		// Parent keeps writing, forcing shadows.
		m.Pmap().Activate(cpu)
		if err := k.AccessBytes(cpu, m, addr, []byte{byte(i)}, true); err != nil {
			t.Fatal(err)
		}
		// The previous generation exits.
		m.Destroy()
		m = child
		m.Pmap().Activate(cpu)
		if err := k.AccessBytes(cpu, m, addr, []byte{byte(i + 100)}, true); err != nil {
			t.Fatal(err)
		}
	}
	if k.Stats().ShadowsCollapsed.Load() == 0 {
		t.Fatal("no shadow collapses after repeated fork; chains are leaking")
	}
	m.Destroy()
}

func TestVMReadWrite(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()

	addr, _ := m.Allocate(0, 8192, true)
	data := []byte("hello from the kernel interface")
	if err := k.VMWrite(m, addr+10, data); err != nil {
		t.Fatalf("VMWrite: %v", err)
	}
	got, err := k.VMRead(m, addr+10, uint64(len(data)))
	if err != nil {
		t.Fatalf("VMRead: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("VMRead = %q; want %q", got, data)
	}
}

func TestRegions(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()

	a1, _ := m.Allocate(0, 8192, true)
	a2, _ := m.Allocate(0, 4096, true)
	regions := m.Regions()
	if len(regions) < 2 {
		t.Fatalf("Regions returned %d entries; want >= 2", len(regions))
	}
	found1, found2 := false, false
	for _, r := range regions {
		if r.Start == a1 && r.End == a1+8192 {
			found1 = true
		}
		if r.Start == a2 && r.End == a2+4096 {
			found2 = true
		}
		if r.Inherit != vmtypes.InheritCopy {
			t.Fatal("default inheritance must be copy")
		}
	}
	if !found1 || !found2 {
		t.Fatal("Regions missed an allocation")
	}
}

func TestPageoutReclaimsAndPagesBackIn(t *testing.T) {
	// A machine with little memory: allocate more anonymous memory than
	// physical memory and touch it all twice. The paging daemon must
	// write dirty pages to the default pager and the second pass must
	// page them back in intact.
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 512, // 256KB
		CPUs:       1,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootDeferred)
	k := core.MustNewKernel(core.Config{Machine: machine, Module: mod, PageSize: 4096})
	cpu := machine.CPU(0)

	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)

	const size = 512 * 1024 // 2x physical memory
	addr, err := m.Allocate(0, size, true)
	if err != nil {
		t.Fatal(err)
	}
	// Write a recognizable pattern into every page.
	for off := uint64(0); off < size; off += 4096 {
		tag := []byte{byte(off >> 12), byte(off >> 20), 0x5A}
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(off), tag, true); err != nil {
			t.Fatalf("write page %d: %v", off/4096, err)
		}
	}
	if k.Stats().Snapshot().Pageouts == 0 {
		t.Fatal("expected pageouts with memory oversubscribed 2x")
	}
	// Read everything back and verify.
	for off := uint64(0); off < size; off += 4096 {
		b := make([]byte, 3)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(off), b, false); err != nil {
			t.Fatalf("read page %d: %v", off/4096, err)
		}
		if b[0] != byte(off>>12) || b[1] != byte(off>>20) || b[2] != 0x5A {
			t.Fatalf("page %d corrupted after pageout: % x", off/4096, b)
		}
	}
	if k.Stats().Snapshot().Pageins == 0 {
		t.Fatal("expected pageins on the second pass")
	}
}

func TestWirePreventsPageout(t *testing.T) {
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 512,
		CPUs:       1,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := core.MustNewKernel(core.Config{Machine: machine, Module: mod, PageSize: 4096})
	cpu := machine.CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)

	wiredAddr, _ := m.Allocate(0, 32*1024, true)
	if err := m.Wire(wiredAddr, 32*1024); err != nil {
		t.Fatalf("Wire: %v", err)
	}
	// Oversubscribe the rest of memory.
	bigAddr, _ := m.Allocate(0, 400*1024, true)
	for off := uint64(0); off < 400*1024; off += 4096 {
		if err := k.AccessBytes(cpu, m, bigAddr+vmtypes.VA(off), []byte{1}, true); err != nil {
			t.Fatal(err)
		}
	}
	st := k.VMStatistics()
	if st.WireCount < 8 {
		t.Fatalf("WireCount = %d; want >= 8", st.WireCount)
	}
	if err := m.Unwire(wiredAddr, 32*1024); err != nil {
		t.Fatalf("Unwire: %v", err)
	}
}

func TestStatisticsShape(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	addr, _ := m.Allocate(0, 16*4096, true)
	for i := 0; i < 16; i++ {
		if err := k.Touch(cpu, m, addr+vmtypes.VA(i*4096), true); err != nil {
			t.Fatal(err)
		}
	}
	st := k.VMStatistics()
	if st.ZeroFillFaults < 16 {
		t.Fatalf("ZeroFillFaults = %d; want >= 16", st.ZeroFillFaults)
	}
	if st.ActiveCount < 16 {
		t.Fatalf("ActiveCount = %d; want >= 16", st.ActiveCount)
	}
	if st.PageSize != 4096 {
		t.Fatalf("PageSize = %d", st.PageSize)
	}
	if st.FreeCount+st.ActiveCount+st.InactiveCount+st.WireCount > k.TotalPages() {
		t.Fatal("queue accounting exceeds physical memory")
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	before := machine.Clock.Now()
	addr, _ := m.Allocate(0, 4096, true)
	if err := k.Touch(cpu, m, addr, true); err != nil {
		t.Fatal(err)
	}
	if machine.Clock.Now() <= before {
		t.Fatal("virtual clock did not advance across allocate+fault")
	}
}
