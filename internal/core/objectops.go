package core

// Object-range operations used by the external pager interface: a pager
// may force its modified cached data back (pager_clean_request) or have
// the cached copies destroyed outright (pager_flush_request), Table 3-2.

// collectObjectRange snapshots the object's resident pages overlapping
// [offset, offset+length).
func (k *Kernel) collectObjectRange(obj *Object, offset, length uint64) []*Page {
	var pages []*Page
	k.pageMu.Lock()
	for p := obj.pageList; p != nil; p = p.objNext {
		if p.offset >= offset && p.offset < offset+length {
			pages = append(pages, p)
		}
	}
	k.pageMu.Unlock()
	return pages
}

// CleanObjectRange forces modified physically cached data in the range
// back to the object's pager (pager_clean_request).
func (k *Kernel) CleanObjectRange(obj *Object, offset, length uint64) {
	obj.mu.Lock()
	pager := obj.pager
	obj.mu.Unlock()
	if pager == nil {
		return
	}
	for _, p := range k.collectObjectRange(obj, offset, length) {
		k.pageMu.Lock()
		if p.object != obj || p.busy {
			k.pageMu.Unlock()
			continue
		}
		dirty := p.dirty
		pOff := p.offset
		p.busy = true
		k.pageMu.Unlock()

		if dirty || k.isModified(p) {
			// Write-protect so post-clean writes dirty it again.
			k.writeProtectAll(p)
			k.mod.Update()
			data := make([]byte, k.pageSize)
			hwPage := k.machine.Mem.PageSize()
			for i := 0; i < k.hwRatio; i++ {
				copy(data[i*hwPage:], k.frameBytes(p, i))
			}
			pager.DataWrite(obj, pOff, data)
			k.clearModify(p)
			k.pageMu.Lock()
			p.dirty = false
			k.pageMu.Unlock()
			k.stats.Pageouts.Add(1)
		}
		k.pageWakeup(p)
	}
}

// FlushObjectRange forces physically cached data in the range to be
// destroyed (pager_flush_request). Mappings are removed first; the next
// touch refaults and asks the pager again.
func (k *Kernel) FlushObjectRange(obj *Object, offset, length uint64) {
	for _, p := range k.collectObjectRange(obj, offset, length) {
		k.pageMu.Lock()
		if p.object != obj || p.busy || p.wireCount > 0 {
			k.pageMu.Unlock()
			continue
		}
		p.busy = true
		k.pageMu.Unlock()
		k.removeAllMappings(p)
		k.mod.Update()
		k.freePage(p)
		k.pageCond.Broadcast()
	}
}
