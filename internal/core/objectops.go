package core

// Object-range operations used by the external pager interface: a pager
// may force its modified cached data back (pager_clean_request) or have
// the cached copies destroyed outright (pager_flush_request), Table 3-2.

// collectObjectRange snapshots the object's resident pages overlapping
// [offset, offset+length). The object's lock guards its page list, and
// list membership implies identity, so the offsets read here are stable
// while the lock is held; the snapshot itself is advisory and callers
// revalidate per page.
func (k *Kernel) collectObjectRange(obj *Object, offset, length uint64) []*Page {
	var pages []*Page
	obj.mu.Lock()
	for p := obj.pageList; p != nil; p = p.objNext {
		if o := p.ident.Load().offset; o >= offset && o < offset+length {
			pages = append(pages, p)
		}
	}
	obj.mu.Unlock()
	return pages
}

// CleanObjectRange forces modified physically cached data in the range
// back to the object's pager (pager_clean_request).
func (k *Kernel) CleanObjectRange(obj *Object, offset, length uint64) {
	obj.mu.Lock()
	pager := obj.pager
	obj.mu.Unlock()
	if pager == nil {
		return
	}
	for _, p := range k.collectObjectRange(obj, offset, length) {
		s, id := k.lockPage(p)
		if s == nil {
			continue
		}
		if id.obj != obj || p.busy {
			s.mu.Unlock()
			continue
		}
		dirty := p.dirty
		pOff := id.offset
		p.busy = true
		s.mu.Unlock()

		if dirty || k.isModified(p) {
			// Write-protect so post-clean writes dirty it again.
			k.writeProtectAll(p)
			k.mod.Update()
			data := k.getPageBuf()
			k.snapshotPage(p, data)
			pager.DataWrite(obj, pOff, data)
			k.putPageBuf(data)
			k.clearModify(p)
			p.dirty = false
			k.stats.Pageouts.Add(1)
		}
		k.pageWakeup(p)
	}
}

// FlushObjectRange forces physically cached data in the range to be
// destroyed (pager_flush_request). Mappings are removed first; the next
// touch refaults and asks the pager again.
func (k *Kernel) FlushObjectRange(obj *Object, offset, length uint64) {
	for _, p := range k.collectObjectRange(obj, offset, length) {
		s, id := k.lockPage(p)
		if s == nil {
			continue
		}
		if id.obj != obj || p.busy || p.wireCount.Load() > 0 {
			s.mu.Unlock()
			continue
		}
		p.busy = true
		s.mu.Unlock()
		k.removeAllMappings(p)
		k.mod.Update()
		k.freePage(p)
	}
}
