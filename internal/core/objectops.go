package core

// Object-range operations used by the external pager interface: a pager
// may force its modified cached data back (pager_clean_request) or have
// the cached copies destroyed outright (pager_flush_request), Table 3-2.

// collectObjectRange snapshots the object's resident pages overlapping
// [offset, offset+length). The object's lock guards its page list, and
// list membership implies identity, so the offsets read here are stable
// while the lock is held; the snapshot itself is advisory and callers
// revalidate per page.
func (k *Kernel) collectObjectRange(obj *Object, offset, length uint64) []*Page {
	var pages []*Page
	obj.mu.Lock()
	for p := obj.pageList; p != nil; p = p.objNext {
		if o := p.Offset(); o >= offset && o < offset+length {
			pages = append(pages, p)
		}
	}
	obj.mu.Unlock()
	return pages
}

// CleanObjectRange forces modified physically cached data in the range
// back to the object's pager (pager_clean_request). A page whose
// DataWrite fails stays dirty and resident; the first such error is
// returned after the whole range has been attempted.
func (k *Kernel) CleanObjectRange(obj *Object, offset, length uint64) error {
	obj.mu.Lock()
	pager := obj.pager
	obj.mu.Unlock()
	if pager == nil {
		return nil
	}
	var firstErr error
	for _, p := range k.collectObjectRange(obj, offset, length) {
		s, pObj, pOff := k.lockPage(p)
		if s == nil {
			continue
		}
		if pObj != obj || p.busy {
			s.mu.Unlock()
			continue
		}
		dirty := p.dirty
		p.busy = true
		s.mu.Unlock()

		if dirty || k.isModified(p) {
			// Write-protect so post-clean writes dirty it again.
			k.writeProtectAll(p)
			k.mod.Update()
			data := k.getPageBuf()
			k.snapshotPage(p, data)
			err := k.pagerWriteData(pager, obj, pOff, data)
			k.putPageBuf(data)
			if err != nil {
				// Keep the page dirty for a later clean or pageout.
				k.stats.PageoutWriteFails.Add(1)
				p.dirty = true
				if firstErr == nil {
					firstErr = err
				}
				k.pageWakeup(p)
				continue
			}
			k.clearModify(p)
			p.dirty = false
			k.stats.Pageouts.Add(1)
		}
		k.pageWakeup(p)
	}
	return firstErr
}

// FlushObjectRange forces physically cached data in the range to be
// destroyed (pager_flush_request). Mappings are removed first; the next
// touch refaults and asks the pager again.
func (k *Kernel) FlushObjectRange(obj *Object, offset, length uint64) {
	for _, p := range k.collectObjectRange(obj, offset, length) {
		s, pObj, _ := k.lockPage(p)
		if s == nil {
			continue
		}
		if pObj != obj || p.busy || p.wireCount.Load() > 0 {
			s.mu.Unlock()
			continue
		}
		p.busy = true
		s.mu.Unlock()
		k.removeAllMappings(p)
		k.mod.Update()
		k.freePage(p)
	}
}
