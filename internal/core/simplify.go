package core

// Map simplification (vm_map_simplify): §3.2 notes the address-map design
// "can force the system to allocate two address map entries that map
// adjacent memory regions to the same memory object simply because the
// properties of the two regions are different". When later operations make
// the properties equal again, Simplify merges the fragments back, keeping
// maps small.

import "machvm/internal/vmtypes"

// canMergeLocked reports whether e and its successor describe one
// contiguous mapping with identical attributes.
func (m *Map) canMergeLocked(e *MapEntry) bool {
	n := e.next
	if n == nil || e.end != n.start {
		return false
	}
	if e.prot != n.prot || e.maxProt != n.maxProt || e.inherit != n.inherit ||
		e.needsCopy != n.needsCopy || e.wired != n.wired {
		return false
	}
	switch {
	case e.object != nil:
		return e.object == n.object && e.offset+e.Span() == n.offset
	case e.submap != nil:
		return e.submap == n.submap && e.offset+e.Span() == n.offset
	default:
		// Two untouched zero-fill entries merge trivially; they have
		// no object yet, so there is no offset to respect.
		return n.object == nil && n.submap == nil
	}
}

// mergeWithNextLocked folds e.next into e.
func (m *Map) mergeWithNextLocked(e *MapEntry) {
	n := e.next
	if n.object != nil {
		// e and n hold two references to the same object; one goes.
		defer m.k.releaseObject(n.object)
	}
	if n.submap != nil {
		defer n.submap.Destroy()
	}
	e.end = n.end
	m.sizeBytes += n.Span() // removeEntryLocked subtracts it again
	m.removeEntryLocked(n)
	// The deferred releases above captured their pointers when the defers
	// were registered, so zeroing n for reuse is safe here.
	m.recycleEntryLocked(n)
	m.charge()
}

// Simplify merges adjacent entries with identical attributes in
// [start, end). It returns the number of entries eliminated.
func (m *Map) Simplify(start, end vmtypes.VA) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	merged := 0
	e, hit := m.lookupEntryLocked(start)
	if !hit {
		if e == nil {
			e = m.head
		} else {
			e = e.next
		}
	}
	// Consider the predecessor too: the boundary at start may itself be
	// mergeable.
	if e != nil && e.prev != nil {
		e = e.prev
	}
	for e != nil && e.start < end {
		if m.canMergeLocked(e) {
			m.mergeWithNextLocked(e)
			merged++
			continue // e may merge again with its new successor
		}
		e = e.next
	}
	return merged
}

// SimplifyAll merges across the whole map.
func (m *Map) SimplifyAll() int {
	return m.Simplify(m.min, m.max)
}
