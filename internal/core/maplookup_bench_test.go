package core

// BenchmarkMapLookup measures address-map entry lookup at 10/100/1000
// entries, sequential (hint-friendly) and random (hint-hostile). The
// paper's linear list made the random column scale with the entry count;
// the treap index keeps it logarithmic, which is what the 1000-entry row
// demonstrates.

import (
	"fmt"
	"math/rand"
	"testing"

	"machvm/internal/vmtypes"
)

// buildLookupMap makes a map with n single-page entries separated by
// one-page holes, so they can never merge into fewer entries.
func buildLookupMap(b *testing.B, k *Kernel, n int) (*Map, []vmtypes.VA) {
	b.Helper()
	m := k.NewMap()
	pageSize := k.PageSize()
	addrs := make([]vmtypes.VA, n)
	for i := 0; i < n; i++ {
		addr := vmtypes.VA(uint64(i*2+1) * pageSize)
		if _, err := m.Allocate(addr, pageSize, false); err != nil {
			b.Fatal(err)
		}
		addrs[i] = addr
	}
	if m.EntryCount() != n {
		b.Fatalf("map built with %d entries, want %d", m.EntryCount(), n)
	}
	return m, addrs
}

func BenchmarkMapLookup(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("%dentries/sequential", n), func(b *testing.B) {
			k := newTestKernel(b)
			m, addrs := buildLookupMap(b, k, n)
			defer m.Destroy()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.mu.RLock()
				_, hit := m.lookupEntryLocked(addrs[i%n])
				m.mu.RUnlock()
				if !hit {
					b.Fatal("lookup missed an allocated page")
				}
			}
		})
		b.Run(fmt.Sprintf("%dentries/random", n), func(b *testing.B) {
			k := newTestKernel(b)
			m, addrs := buildLookupMap(b, k, n)
			defer m.Destroy()
			rng := rand.New(rand.NewSource(1))
			order := make([]vmtypes.VA, 8192)
			for i := range order {
				order[i] = addrs[rng.Intn(n)]
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.mu.RLock()
				_, hit := m.lookupEntryLocked(order[i%len(order)])
				m.mu.RUnlock()
				if !hit {
					b.Fatal("lookup missed an allocated page")
				}
			}
		})
	}
}
