package core

// Tests for per-CPU virtual-clock charge buffering (DESIGN.md §2): the
// batching invariant (buffered and write-through charging produce the
// same virtual totals), determinism (two identical runs produce
// byte-identical totals), and flush correctness under concurrency (run
// with -race).

import (
	"sync"
	"testing"
	"time"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

// chargeWorkload runs a fixed serial fault workload on nCPUs simulated
// CPUs — each with its own single-entry map, so address-map index shape
// (whose treap priorities differ between in-process runs) cannot affect
// costs — and returns the final virtual-clock total.
func chargeWorkload(t *testing.T, nCPUs int, unbatched bool) int64 {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 8192,
		CPUs:       nCPUs,
		TLBSize:    64,
	})
	machine.SetUnbatchedCharging(unbatched)
	mod := vax.New(machine, pmap.ShootImmediate)
	k := MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
	pageSize := k.PageSize()
	const pages = 16

	for i := 0; i < nCPUs; i++ {
		cpu := machine.CPU(i)
		m := k.NewMap()
		m.Pmap().Activate(cpu)
		addr, err := m.Allocate(0, pages*pageSize, true)
		if err != nil {
			t.Fatal(err)
		}
		for cycle := 0; cycle < 3; cycle++ {
			for p := 0; p < pages; p++ {
				va := addr + vmtypes.VA(uint64(p)*pageSize)
				if err := k.Touch(cpu, m, va, cycle%2 == 1); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Deallocate(addr, pages*pageSize); err != nil {
				t.Fatal(err)
			}
			if addr, err = m.Allocate(0, pages*pageSize, true); err != nil {
				t.Fatal(err)
			}
		}
		m.Pmap().Deactivate(cpu)
		m.Destroy()
	}
	machine.FlushAllCharges()
	return machine.Clock.Now()
}

// TestChargeBatchingInvariant: batched per-CPU charging and unbatched
// write-through charging must produce identical virtual totals — the
// buffers only delay when work reaches the clock, never how much.
func TestChargeBatchingInvariant(t *testing.T) {
	batched := chargeWorkload(t, 4, false)
	direct := chargeWorkload(t, 4, true)
	if batched != direct {
		t.Fatalf("batched charging total %d != unbatched total %d", batched, direct)
	}
	if batched == 0 {
		t.Fatal("workload charged nothing")
	}
}

// TestVirtualClockDeterminism: the same serial workload run twice must
// land on the byte-identical virtual total — the property the scaling
// curves in BENCH_faults.json rely on.
func TestVirtualClockDeterminism(t *testing.T) {
	first := chargeWorkload(t, 4, false)
	second := chargeWorkload(t, 4, false)
	if first != second {
		t.Fatalf("two identical runs diverged: %d vs %d virtual ns", first, second)
	}
}

// TestChargeFlushRace exercises the per-CPU charge buffers under
// concurrent faults, the pageout daemon, map activate/deactivate churn
// and batching-mode flips. After everything joins and a final flush, no
// CPU may hold pending charges and the clock must account for at least
// every CPU-attributed nanosecond. Run with -race.
func TestChargeFlushRace(t *testing.T) {
	const (
		nCPUs = 4
		iters = 300
		pages = 16
	)
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 2048,
		CPUs:       nCPUs,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096})
	pageSize := k.PageSize()

	stop := make(chan struct{})
	k.StartPageoutDaemon(stop, time.Millisecond)

	var wg sync.WaitGroup
	for g := 0; g < nCPUs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cpu := machine.CPU(g)
			m := k.NewMap()
			defer m.Destroy()
			addr, err := m.Allocate(0, pages*pageSize, true)
			if err != nil {
				t.Error(err)
				return
			}
			for it := 0; it < iters; it++ {
				// Activate/deactivate churn: CPU teardown must not
				// strand buffered charges.
				m.Pmap().Activate(cpu)
				va := addr + vmtypes.VA(uint64(it%pages)*pageSize)
				if err := k.Touch(cpu, m, va, it%2 == 0); err != nil {
					t.Error(err)
					return
				}
				if it%32 == 0 {
					cpu.Tick()
				}
				m.Pmap().Deactivate(cpu)
			}
		}(g)
	}

	// Batching-mode flipper: SetUnbatchedCharging must flush on every
	// transition without losing concurrent charges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			machine.SetUnbatchedCharging(i%2 == 0)
			time.Sleep(200 * time.Microsecond)
		}
		machine.SetUnbatchedCharging(false)
	}()

	wg.Wait()
	close(stop)
	machine.FlushAllCharges()

	var attributed int64
	for i := 0; i < nCPUs; i++ {
		cpu := machine.CPU(i)
		if p := cpu.PendingNS(); p != 0 {
			t.Errorf("cpu %d still holds %d pending virtual ns after final flush", i, p)
		}
		attributed += cpu.ChargedNS()
	}
	if total := machine.Clock.Now(); total < attributed {
		t.Errorf("clock total %d < %d CPU-attributed ns: charges were lost in a flush", total, attributed)
	}
}
