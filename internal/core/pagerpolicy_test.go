package core_test

// Tests for the context-aware pager boundary: deadline/retry/backoff
// accounting, single-flight deduplication of concurrent faults, the
// busy-page claim protocol under abandonment, and per-object degradation.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"machvm/internal/core"
	"machvm/internal/vmtypes"
)

// scriptedPager fails a configurable number of DataRequests before
// serving, and can be parked (blocking until released or ctx fires).
type scriptedPager struct {
	mu        sync.Mutex
	failFirst int // fail this many requests with errFlaky
	hang      bool
	requests  int
	started   chan struct{} // signalled once per request that begins
	release   chan struct{} // hung/parked requests wait here
	data      []byte
}

var errFlaky = errors.New("scripted pager failure")

func newScriptedPager(data []byte) *scriptedPager {
	return &scriptedPager{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
		data:    data,
	}
}

func (p *scriptedPager) Name() string             { return "scripted" }
func (p *scriptedPager) Init(obj *core.Object)    {}
func (p *scriptedPager) Terminate(o *core.Object) {}
func (p *scriptedPager) DataWrite(ctx context.Context, o *core.Object, off uint64, d []byte) error {
	return nil
}
func (p *scriptedPager) DataRequest(ctx context.Context, o *core.Object, off uint64, n int) ([]byte, error) {
	p.mu.Lock()
	p.requests++
	fail := p.failFirst > 0
	if fail {
		p.failFirst--
	}
	hang := p.hang
	p.mu.Unlock()
	select {
	case p.started <- struct{}{}:
	default:
	}
	if hang {
		select {
		case <-p.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if fail {
		return nil, errFlaky
	}
	return p.data, nil
}

func (p *scriptedPager) requestCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.requests
}

// mapPagerObject maps a one-page object backed by pg and returns its
// address.
func mapPagerObject(t *testing.T, k *core.Kernel, pg core.Pager) (*core.Map, *core.Object, vmtypes.VA) {
	t.Helper()
	obj := k.NewObject(4096, pg, "policy-test")
	m := k.NewMap()
	t.Cleanup(m.Destroy)
	addr, err := m.AllocateWithObject(0, 4096, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatalf("AllocateWithObject: %v", err)
	}
	return m, obj, addr
}

func TestPagerPolicyNormalization(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	// The zero value selects defaults.
	if got, want := k.PagerPolicy(), core.DefaultPagerPolicy(); got != want {
		t.Fatalf("zero policy normalized to %+v, want %+v", got, want)
	}
	// Negative sentinels disable the bound.
	k.SetPagerPolicy(core.PagerPolicy{Deadline: -1, Retries: -1})
	got := k.PagerPolicy()
	if got.Deadline != 0 || got.Retries != 0 {
		t.Fatalf("negative sentinels not disabled: %+v", got)
	}
	if got.BackoffBase == 0 || got.BackoffMax == 0 {
		t.Fatalf("backoff defaults missing: %+v", got)
	}
}

func TestPagerRetryRecoversFromTransientFailures(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	k.SetPagerPolicy(core.PagerPolicy{
		Deadline:    time.Second,
		Retries:     2,
		BackoffBase: time.Millisecond,
	})
	want := bytes.Repeat([]byte{0x5A}, 4096)
	pg := newScriptedPager(want)
	pg.failFirst = 2
	m, _, addr := mapPagerObject(t, k, pg)
	m.Pmap().Activate(machine.CPU(0))

	got := make([]byte, 8)
	if err := k.AccessBytes(machine.CPU(0), m, addr, got, false); err != nil {
		t.Fatalf("fault after transient failures: %v", err)
	}
	if !bytes.Equal(got, want[:8]) {
		t.Fatalf("read %x, want %x", got, want[:8])
	}
	if n := pg.requestCount(); n != 3 {
		t.Fatalf("pager saw %d requests, want 3 (1 + 2 retries)", n)
	}
	st := k.VMStatistics()
	if st.PagerRetries != 2 {
		t.Fatalf("PagerRetries = %d, want 2", st.PagerRetries)
	}
	if st.PagerErrors != 2 {
		t.Fatalf("PagerErrors = %d, want 2", st.PagerErrors)
	}
	if st.Pageins != 1 {
		t.Fatalf("Pageins = %d, want 1", st.Pageins)
	}
}

func TestPagerRetriesExhaustedSurfaceError(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	k.SetPagerPolicy(core.PagerPolicy{
		Deadline:    time.Second,
		Retries:     1,
		BackoffBase: time.Millisecond,
	})
	pg := newScriptedPager(nil)
	pg.failFirst = 1 << 20 // effectively always
	m, _, addr := mapPagerObject(t, k, pg)
	m.Pmap().Activate(machine.CPU(0))

	err := k.Touch(machine.CPU(0), m, addr, false)
	if err == nil {
		t.Fatal("exhausted retries should fail the fault")
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("error should wrap the pager's failure, got %v", err)
	}
	if errors.Is(err, core.ErrPagerTimeout) {
		t.Fatalf("plain failure misclassified as timeout: %v", err)
	}
	if n := pg.requestCount(); n != 2 {
		t.Fatalf("pager saw %d requests, want 2 (1 + 1 retry)", n)
	}
	// The failed flight must not leave a busy page behind: a later fault
	// reissues the request.
	_ = k.Touch(machine.CPU(0), m, addr, false)
	if n := pg.requestCount(); n != 4 {
		t.Fatalf("refault saw %d total requests, want 4", n)
	}
}

func TestPagerSingleFlightDeduplicates(t *testing.T) {
	k, machine := newVAXKernel(t, 2)
	k.SetPagerPolicy(core.PagerPolicy{Deadline: 5 * time.Second})
	want := bytes.Repeat([]byte{0xC3}, 4096)
	pg := newScriptedPager(want)
	pg.hang = true
	m, _, addr := mapPagerObject(t, k, pg)
	m.Pmap().Activate(machine.CPU(0))
	m.Pmap().Activate(machine.CPU(1))

	const joiners = 7
	var wg sync.WaitGroup
	errs := make(chan error, joiners+1)
	// The leader starts the pager conversation and parks inside it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs <- k.Touch(machine.CPU(0), m, addr, false)
	}()
	<-pg.started // flight registered, page busy, pager parked
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- k.Touch(machine.CPU(i%2), m, addr, false)
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the joiners reach the flight
	close(pg.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("joined fault failed: %v", err)
		}
	}
	if n := pg.requestCount(); n != 1 {
		t.Fatalf("pager saw %d requests for one page, want 1", n)
	}
	st := k.VMStatistics()
	if st.PagerFlightJoins == 0 {
		t.Fatal("no faulter joined the flight")
	}
	if st.Pageins != 1 {
		t.Fatalf("Pageins = %d, want 1", st.Pageins)
	}
	got := make([]byte, 4)
	if err := k.AccessBytes(machine.CPU(0), m, addr, got, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[:4]) {
		t.Fatalf("read %x, want %x", got, want[:4])
	}
}

func TestPagerAbandonmentReleasesBusyPage(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	k.SetPagerPolicy(core.PagerPolicy{
		Deadline: 150 * time.Millisecond,
		Retries:  -1,
	})
	pg := newScriptedPager(bytes.Repeat([]byte{1}, 4096))
	pg.hang = true
	m, _, addr := mapPagerObject(t, k, pg)
	m.Pmap().Activate(machine.CPU(0))

	// A cancellable faulter abandons the wait long before the pager
	// deadline; the flight keeps owning the busy page.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- k.TouchContext(ctx, machine.CPU(0), m, addr, false) }()
	<-pg.started
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("abandoned fault should return an error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandonment should surface ctx.Err, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled faulter did not return")
	}
	if st := k.VMStatistics(); st.PagerAbandons != 1 {
		t.Fatalf("PagerAbandons = %d, want 1", st.PagerAbandons)
	}

	// The orphaned flight resolves at its own deadline and frees the
	// page; a fresh fault must not find it wedged busy. The pager now
	// answers, so the refault succeeds.
	start := time.Now()
	close(pg.release)
	pg.mu.Lock()
	pg.hang = false
	pg.mu.Unlock()
	b := []byte{9}
	if err := k.AccessBytes(machine.CPU(0), m, addr, b, false); err != nil {
		t.Fatalf("refault after abandonment: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("refault blocked %v on an abandoned page", elapsed)
	}
	if b[0] != 1 {
		t.Fatalf("refault read %d, want pager data", b[0])
	}
}

func TestFallbackSwapReadsDefaultPager(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	k.SetPagerPolicy(core.PagerPolicy{
		Deadline:    time.Second,
		Retries:     -1,
		BackoffBase: time.Millisecond,
	})
	pg := newScriptedPager(nil)
	pg.failFirst = 1 << 20
	_, obj, _ := mapPagerObject(t, k, pg)
	obj.SetPagerFallback(core.FallbackSwap)
	m := k.NewMap()
	defer m.Destroy()
	addr, err := m.AllocateWithObject(0, 4096, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	obj.Reference()
	m.Pmap().Activate(machine.CPU(0))

	// Seed the default pager with the data the failing pager can't serve.
	seeded := bytes.Repeat([]byte{0x77}, 4096)
	if err := k.SwapPager().DataWrite(context.Background(), obj, 0, seeded); err != nil {
		t.Fatalf("seeding swap: %v", err)
	}

	got := make([]byte, 4)
	if err := k.AccessBytes(machine.CPU(0), m, addr, got, false); err != nil {
		t.Fatalf("FallbackSwap fault: %v", err)
	}
	if !bytes.Equal(got, seeded[:4]) {
		t.Fatalf("read %x, want swap data %x", got, seeded[:4])
	}
	st := k.VMStatistics()
	if st.PagerFallbacks == 0 {
		t.Fatal("PagerFallbacks not incremented")
	}
}

func TestPagerTimeoutClassification(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	k.SetPagerPolicy(core.PagerPolicy{
		Deadline: 50 * time.Millisecond,
		Retries:  -1,
	})
	pg := newScriptedPager(nil)
	pg.hang = true // honours ctx: the deadline classifies this as timeout
	m, _, addr := mapPagerObject(t, k, pg)
	m.Pmap().Activate(machine.CPU(0))

	start := time.Now()
	err := k.Touch(machine.CPU(0), m, addr, false)
	if !errors.Is(err, core.ErrPagerTimeout) {
		t.Fatalf("hung pager should surface ErrPagerTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, deadline is 50ms", elapsed)
	}
	if st := k.VMStatistics(); st.PagerTimeouts == 0 {
		t.Fatal("PagerTimeouts not incremented")
	}
	_ = fmt.Sprintf("%v", err) // the error formats without panicking
}
