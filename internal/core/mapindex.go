package core

// The O(log n) map-entry index. The paper's §3.2 address map is a plain
// sorted doubly-linked list with a last-fault hint, which degrades to a
// linear walk whenever the hint misses; production descendants of this
// code replaced the walk with a balanced search structure. This file keeps
// the list (range operations still iterate it) but adds a treap keyed by
// entry start address alongside it, with the tree links embedded directly
// in MapEntry so index maintenance never allocates. See DESIGN.md §6 for
// the deviation note.
//
// All index operations run under the map's write lock except
// indexLookupLE, which is read-only and safe under the read lock.

import (
	"machvm/internal/vmtypes"
)

// seedPrioState returns a non-zero xorshift state for a new map, derived
// from its per-kernel id so the treap priority stream — and hence the tree
// shape and the per-lookup step counts charged to the virtual clock — is
// deterministic for a deterministically driven kernel. (A process-global
// seed here made record/replay diverge: any other kernel in the process
// shifted the stream.)
func seedPrioState(id uint64) uint64 {
	s := id * 0x9e3779b97f4a7c15
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return s
}

// nextPrio draws the next treap priority (xorshift64*). Caller holds the
// write lock; the state needs no further synchronization.
func (m *Map) nextPrio() uint64 {
	x := m.prioState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.prioState = x
	return x * 0x2545f4914f6cdd1d
}

// indexInsert adds e (not currently in the tree) to the index.
func (m *Map) indexInsert(e *MapEntry) {
	e.treeLeft, e.treeRight = nil, nil
	e.treePrio = m.nextPrio()
	lt, ge := treapSplitLT(m.root, e.start)
	m.root = treapMerge(treapMerge(lt, e), ge)
}

// indexRemove takes e out of the index.
func (m *Map) indexRemove(e *MapEntry) {
	m.root = treapRemove(m.root, e)
	e.treeLeft, e.treeRight = nil, nil
}

// indexLookupLE returns the entry with the greatest start <= va, or nil,
// plus the number of tree nodes visited (for the machine cost model).
func (m *Map) indexLookupLE(va vmtypes.VA) (*MapEntry, int) {
	var best *MapEntry
	steps := 0
	for t := m.root; t != nil; {
		steps++
		if va < t.start {
			t = t.treeLeft
		} else {
			best = t
			t = t.treeRight
		}
	}
	return best, steps
}

// treapSplitLT splits t into entries with start < key and start >= key.
// Entry starts are unique (entries are disjoint), so no equal-key case.
func treapSplitLT(t *MapEntry, key vmtypes.VA) (lt, ge *MapEntry) {
	if t == nil {
		return nil, nil
	}
	if t.start < key {
		l, g := treapSplitLT(t.treeRight, key)
		t.treeRight = l
		return t, g
	}
	l, g := treapSplitLT(t.treeLeft, key)
	t.treeLeft = g
	return l, t
}

// treapMerge joins a and b, where every key in a precedes every key in b.
func treapMerge(a, b *MapEntry) *MapEntry {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.treePrio >= b.treePrio {
		a.treeRight = treapMerge(a.treeRight, b)
		return a
	}
	b.treeLeft = treapMerge(a, b.treeLeft)
	return b
}

// treapRemove deletes e from the subtree rooted at t and returns the new
// root. e must be present; a miss means the list and index diverged.
func treapRemove(t, e *MapEntry) *MapEntry {
	if t == nil {
		panic("core: map index lost an entry")
	}
	if t == e {
		return treapMerge(t.treeLeft, t.treeRight)
	}
	if e.start < t.start {
		t.treeLeft = treapRemove(t.treeLeft, e)
	} else {
		t.treeRight = treapRemove(t.treeRight, e)
	}
	return t
}
