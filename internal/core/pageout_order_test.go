package core

// Regression test for the §5.2 flush-before-pageout batching bug. The old
// reclaim path carried a per-scan "flushed" flag: only the first victim of
// a scan got a pmap_update between pmap_remove_all and its pageout I/O;
// every later victim was written out while its TLB invalidations could
// still sit in per-CPU deferred queues. Strategy (2) of §5.2 requires the
// opposite: "the system first removes the mapping from any primary memory
// mapping data structures and then initiates pageout only after all
// referencing TLBs have been flushed." This test fails against the old
// reclaimPage (one Update per scan) and passes against the batched
// two-phase scan (one Update per batch, before any victim's I/O).

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

// updateOrderModule wraps a pmap module and tracks which frames have had
// RemoveAll issued without a subsequent Update: the set of mappings whose
// TLB shootdown may still be pending.
type updateOrderModule struct {
	pmap.Module
	mu        sync.Mutex
	unflushed map[vmtypes.PFN]bool
}

func (m *updateOrderModule) RemoveAll(pfn vmtypes.PFN) {
	m.Module.RemoveAll(pfn)
	m.mu.Lock()
	m.unflushed[pfn] = true
	m.mu.Unlock()
}

func (m *updateOrderModule) Update() {
	m.Module.Update()
	m.mu.Lock()
	m.unflushed = make(map[vmtypes.PFN]bool)
	m.mu.Unlock()
}

// pending reports whether any frame of the Mach page starting at pfn still
// awaits a flush.
func (m *updateOrderModule) pending(pfn vmtypes.PFN, hwRatio int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < hwRatio; i++ {
		if m.unflushed[pfn+vmtypes.PFN(i)] {
			return true
		}
	}
	return false
}

// orderCheckPager asserts, at the moment pageout I/O starts, that the page
// being written has no pending TLB flush.
type orderCheckPager struct {
	Pager
	k          *Kernel
	mod        *updateOrderModule
	mu         sync.Mutex
	violations []string
	writes     int
}

func (p *orderCheckPager) DataWrite(ctx context.Context, obj *Object, offset uint64, data []byte) error {
	if pg := p.k.lookupPage(obj, offset, false); pg != nil {
		if p.mod.pending(pg.pfn, p.k.hwRatio) {
			p.mu.Lock()
			p.violations = append(p.violations,
				fmt.Sprintf("pageout I/O for pfn %d (offset %#x) before its TLB flush", pg.pfn, offset))
			p.mu.Unlock()
		}
	}
	p.mu.Lock()
	p.writes++
	p.mu.Unlock()
	return p.Pager.DataWrite(ctx, obj, offset, data)
}

func TestPageoutFlushBeforeWrite(t *testing.T) {
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 1024, // 128 Mach pages of 4KB
		CPUs:       2,
		TLBSize:    64,
	})
	// Deferred shootdown is the strategy the §5.2 protocol exists for:
	// RemoveAll only queues per-CPU invalidations; Update forces them.
	mod := &updateOrderModule{
		Module:    vax.New(machine, pmap.ShootDeferred),
		unflushed: make(map[vmtypes.PFN]bool),
	}
	k := MustNewKernel(Config{
		Machine:    machine,
		Module:     mod,
		PageSize:   4096,
		FreeTarget: 128, // everything reclaimable is wanted back
		FreeMin:    2,
	})
	pager := &orderCheckPager{Pager: k.SwapPager(), k: k, mod: mod}
	k.SetSwapPager(pager)

	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)

	const pages = 48
	addr, err := m.Allocate(0, pages*4096, true)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Dirty every page, then make them all pageout candidates.
	for i := 0; i < pages; i++ {
		va := addr + vmtypes.VA(i*4096)
		if err := k.AccessBytes(cpu, m, va, []byte{byte(i)}, true); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	for i := 0; i < pages; i++ {
		if p := m.residentPageAt(addr + vmtypes.VA(i*4096)); p != nil {
			k.deactivatePage(p)
		}
	}

	k.PageoutScan()

	pager.mu.Lock()
	writes, violations := pager.writes, pager.violations
	pager.mu.Unlock()
	// More than one dirty victim per scan is the precondition the old
	// single-flush path got wrong; without it the test proves nothing.
	if writes < 2 {
		t.Fatalf("scan wrote only %d dirty pages; test needs a multi-victim scan", writes)
	}
	if len(violations) != 0 {
		t.Fatalf("%d §5.2 ordering violations, e.g. %s", len(violations), violations[0])
	}
}
