package core_test

// Tests for range-first paging: clustered fault-in (one pager
// conversation covering a run of pages), its correctness edges (shadow
// chains, short reads, entry bounds), clustered pageout runs, and the
// fault-driven superpage-span promotion on the VAX module.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

// newReclaimKernel is newVAXKernel with an unreachable free target, so
// every PageoutScan reclaims as hard as it can — the way eviction-path
// tests force pages out to their pagers.
func newReclaimKernel(t testing.TB, cpus int) (*core.Kernel, *hw.Machine) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 4096,
		CPUs:       cpus,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	k := core.MustNewKernel(core.Config{
		Machine:    machine,
		Module:     mod,
		PageSize:   4096,
		FreeTarget: 4096, // more than exists: scans always reclaim
		FreeMin:    2,
	})
	return k, machine
}

// patternPager serves byte(pageIndex+1) for every byte of a page and
// records each DataRequest/DataWrite conversation.
type patternPager struct {
	pageSize uint64
	maxReply int // cap on reply length (0 = serve everything asked)

	mu       sync.Mutex
	requests [][2]uint64 // (offset, length) per DataRequest
	writes   [][2]uint64 // (offset, length) per DataWrite
}

func (p *patternPager) Name() string             { return "pattern" }
func (p *patternPager) Init(obj *core.Object)    {}
func (p *patternPager) Terminate(o *core.Object) {}

func (p *patternPager) DataRequest(ctx context.Context, o *core.Object, off uint64, n int) ([]byte, error) {
	p.mu.Lock()
	p.requests = append(p.requests, [2]uint64{off, uint64(n)})
	p.mu.Unlock()
	if p.maxReply > 0 && n > p.maxReply {
		n = p.maxReply
	}
	data := make([]byte, n)
	for i := range data {
		data[i] = byte((off+uint64(i))/p.pageSize + 1)
	}
	return data, nil
}

func (p *patternPager) DataWrite(ctx context.Context, o *core.Object, off uint64, d []byte) error {
	p.mu.Lock()
	p.writes = append(p.writes, [2]uint64{off, uint64(len(d))})
	p.mu.Unlock()
	return nil
}

func (p *patternPager) requestLog() [][2]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([][2]uint64(nil), p.requests...)
}

func TestPagerClusterReducesRoundTrips(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	const pages = 16
	size := uint64(pages) * k.PageSize()
	pg := &patternPager{pageSize: k.PageSize()}
	obj := k.NewObject(size, pg, "clustered")
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, size, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential read of every page: with the default cluster of 8 pages
	// the whole object should cost 2 conversations, not 16.
	for i := 0; i < pages; i++ {
		b := make([]byte, 1)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(uint64(i)*k.PageSize()), b, false); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if b[0] != byte(i+1) {
			t.Fatalf("page %d read %#x, want %#x", i, b[0], byte(i+1))
		}
	}
	st := k.VMStatistics()
	if st.PagerRoundTrips != 2 {
		t.Errorf("PagerRoundTrips = %d, want 2 (16 pages / cluster 8)", st.PagerRoundTrips)
	}
	if st.ClusterExtras != 14 {
		t.Errorf("ClusterExtras = %d, want 14", st.ClusterExtras)
	}
	if st.Pageins != 16 {
		t.Errorf("Pageins = %d, want 16", st.Pageins)
	}
	for _, r := range pg.requestLog() {
		if r[0]%(8*k.PageSize()) != 0 || r[1] != 8*k.PageSize() {
			t.Errorf("conversation (off=%d len=%d) not an aligned 8-page cluster", r[0], r[1])
		}
	}
}

func TestSetClusterSizeDisablesReadahead(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	const pages = 8
	size := uint64(pages) * k.PageSize()
	pg := &patternPager{pageSize: k.PageSize()}
	obj := k.NewObject(size, pg, "uncluster")
	obj.SetClusterSize(1)
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, size, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		b := make([]byte, 1)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(uint64(i)*k.PageSize()), b, false); err != nil {
			t.Fatal(err)
		}
	}
	if st := k.VMStatistics(); st.PagerRoundTrips != pages {
		t.Errorf("PagerRoundTrips = %d, want %d with clustering off", st.PagerRoundTrips, pages)
	}
	for _, r := range pg.requestLog() {
		if r[1] != k.PageSize() {
			t.Errorf("conversation length %d, want single page %d", r[1], k.PageSize())
		}
	}
}

func TestClusterShortReadResolvesTailSeparately(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	const pages = 8
	size := uint64(pages) * k.PageSize()
	// The pager serves at most 2 pages per conversation: a short read.
	pg := &patternPager{pageSize: k.PageSize(), maxReply: int(2 * k.PageSize())}
	obj := k.NewObject(size, pg, "short-read")
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, size, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	// Every byte must still be correct: the uncovered cluster tail is
	// freed (never zero-filled behind the pager's back) and re-requested
	// when actually faulted.
	for i := 0; i < pages; i++ {
		b := make([]byte, 1)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(uint64(i)*k.PageSize()), b, false); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if b[0] != byte(i+1) {
			t.Fatalf("page %d read %#x, want %#x", i, b[0], byte(i+1))
		}
	}
	// 2 pages per conversation -> 4 conversations for 8 pages.
	if st := k.VMStatistics(); st.PagerRoundTrips != 4 {
		t.Errorf("PagerRoundTrips = %d, want 4", st.PagerRoundTrips)
	}
}

func TestClusterRespectsEntryBounds(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	const pages = 16
	size := uint64(pages) * k.PageSize()
	pg := &patternPager{pageSize: k.PageSize()}
	obj := k.NewObject(size, pg, "windowed")
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	// Map only object pages [5, 9): the cluster around a fault in the
	// window must never read object offsets outside it.
	winLo := 5 * k.PageSize()
	span := 4 * k.PageSize()
	addr, err := m.AllocateWithObject(0, span, true, obj, winLo,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		b := make([]byte, 1)
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(i*k.PageSize()), b, false); err != nil {
			t.Fatal(err)
		}
		if want := byte(5 + i + 1); b[0] != want {
			t.Fatalf("window page %d read %#x, want %#x", i, b[0], want)
		}
	}
	for _, r := range pg.requestLog() {
		if r[0] < winLo || r[0]+r[1] > winLo+span {
			t.Errorf("conversation (off=%d len=%d) outside entry window [%d, %d)",
				r[0], r[1], winLo, winLo+span)
		}
	}
}

// chunkPager holds data only at the offsets it was explicitly given,
// mimicking the default swap pager's chunk store: a DataRequest whose
// offset has no chunk is answered with ErrDataUnavailable even when later
// offsets in the requested range do have data.
type chunkPager struct {
	pageSize uint64

	mu       sync.Mutex
	chunks   map[uint64][]byte
	requests [][2]uint64
}

func (p *chunkPager) Name() string             { return "chunks" }
func (p *chunkPager) Init(obj *core.Object)    {}
func (p *chunkPager) Terminate(o *core.Object) {}

func (p *chunkPager) DataRequest(ctx context.Context, o *core.Object, off uint64, n int) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests = append(p.requests, [2]uint64{off, uint64(n)})
	if _, ok := p.chunks[off]; !ok {
		return nil, core.ErrDataUnavailable
	}
	var out []byte
	for o := off; len(out) < n; o += p.pageSize {
		c, ok := p.chunks[o]
		if !ok {
			break // stop at the first gap
		}
		out = append(out, c...)
	}
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}

func (p *chunkPager) DataWrite(ctx context.Context, o *core.Object, off uint64, d []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for lo := uint64(0); lo < uint64(len(d)); lo += p.pageSize {
		hi := lo + p.pageSize
		if hi > uint64(len(d)) {
			hi = uint64(len(d))
		}
		p.chunks[off+lo] = append([]byte(nil), d[lo:hi]...)
	}
	return nil
}

// TestClusterGapAnchorRetry is the gap-correctness test: when a clustered
// request lands on a pager (chunk-keyed, like the default swap store)
// that has no data at the run's start but does hold the faulting page
// further in, the skipped pages must NOT be papered over with zeroes —
// the anchor gets its own single-page retry conversation and comes back
// with the pager's real data.
func TestClusterGapAnchorRetry(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	const pages = 8
	pgsz := k.PageSize()
	size := uint64(pages) * pgsz
	pg := &chunkPager{pageSize: pgsz, chunks: map[uint64][]byte{}}
	// Data only at page 3; everything else is a gap.
	marked := make([]byte, pgsz)
	for i := range marked {
		marked[i] = 0xEE
	}
	pg.chunks[3*pgsz] = marked
	obj := k.NewObject(size, pg, "gappy")
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, size, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}

	// Page 0: the clustered request at offset 0 is unavailable, so the
	// faulting page itself zero-fills. Pages 1..7 were merely "skipped"
	// (the pager said nothing about them) and must not materialize.
	b := make([]byte, 1)
	if err := k.AccessBytes(cpu, m, addr, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Fatalf("page 0 read %#x, want zero fill", b[0])
	}

	// Page 3: the run starts at page 1 (page 0 is resident), and the
	// pager is unavailable there — but page 3 has data. A skipped anchor
	// must be retried alone, never zero-filled.
	if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(3*pgsz), b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xEE {
		t.Fatalf("page 3 read %#x, want 0xEE: a skipped cluster page was zero-filled", b[0])
	}
	pg.mu.Lock()
	sawRetry := false
	for _, r := range pg.requests {
		if r[0] == 3*pgsz && r[1] == pgsz {
			sawRetry = true
		}
	}
	pg.mu.Unlock()
	if !sawRetry {
		t.Error("pager never saw the anchor's single-page retry at page 3")
	}

	// The gap pages really are zero-filled once actually faulted.
	for _, page := range []uint64{1, 2, 4, 7} {
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(page*pgsz), b, false); err != nil {
			t.Fatalf("page %d: %v", page, err)
		}
		if b[0] != 0 {
			t.Fatalf("page %d read %#x, want zero fill", page, b[0])
		}
	}
}

func TestPageoutRunsCoalesceDirtyNeighbors(t *testing.T) {
	k, machine := newReclaimKernel(t, 1)
	const pages = 16
	size := uint64(pages) * k.PageSize()
	pg := &patternPager{pageSize: k.PageSize()}
	obj := k.NewObject(size, pg, "writeback")
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, size, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty every page, then pad the active queue with anonymous memory:
	// the daemon's one-third rebalance needs a long queue to keep feeding
	// candidates, and FIFO order deactivates the pattern pages first.
	for i := 0; i < pages; i++ {
		if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(uint64(i)*k.PageSize()), []byte{byte(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	pad, err := m.Allocate(0, 64*k.PageSize(), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		if err := k.AccessBytes(cpu, m, pad+vmtypes.VA(i*k.PageSize()), []byte{1}, true); err != nil {
			t.Fatal(err)
		}
	}
	written := func() uint64 {
		pg.mu.Lock()
		defer pg.mu.Unlock()
		var n uint64
		for _, w := range pg.writes {
			n += w[1]
		}
		return n
	}
	for i := 0; i < 256 && written() < size; i++ {
		k.PageoutScan()
	}
	if got := written(); got < size {
		t.Fatalf("pager received only %d of %d dirty bytes back", got, size)
	}
	st := k.VMStatistics()
	if st.PageoutRuns == 0 {
		t.Fatal("no pageout runs recorded")
	}
	if st.PageoutRunPages != st.Pageouts {
		t.Errorf("PageoutRunPages = %d, Pageouts = %d; every dirty page should ride a run",
			st.PageoutRunPages, st.Pageouts)
	}
	if st.PageoutRuns >= st.Pageouts {
		t.Errorf("PageoutRuns = %d for %d pageouts: adjacent dirty pages did not coalesce",
			st.PageoutRuns, st.Pageouts)
	}
	pg.mu.Lock()
	multi := 0
	for _, w := range pg.writes {
		if w[1] > k.PageSize() {
			multi++
		}
	}
	pg.mu.Unlock()
	if multi == 0 {
		t.Error("pager never saw a multi-page DataWrite")
	}
}

func TestSuperpagePromotionAndDemotion(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	m := k.NewMap()
	defer m.Destroy()
	cpu := machine.CPU(0)
	m.Pmap().Activate(cpu)

	sp, ok := m.Pmap().(interface {
		SuperSpan() uint64
		SuperCount() int
		CheckSuperInvariants() error
	})
	if !ok {
		t.Fatal("vax pmap does not expose superpage introspection")
	}
	span := sp.SuperSpan() // 64KB: one page-table chunk
	// Two whole spans of pager-backed memory at a span-aligned address.
	// Clustered fault-in installs readahead pages resident-but-unmapped,
	// which is exactly the dense-run state the core's span promotion
	// upgrades with one EnterRange (a fully per-page-mapped span would be
	// promoted by the module's own uniformity tracking instead).
	size := 2 * span
	pg := &patternPager{pageSize: k.PageSize()}
	obj := k.NewObject(size, pg, "superpage")
	base := vmtypes.VA(2 * span)
	if _, err := m.AllocateWithObject(base, size, false, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false); err != nil {
		t.Fatal(err)
	}
	// Touch every Mach page sequentially; verify contents through the
	// promoted mapping as we go.
	for off := uint64(0); off < size; off += k.PageSize() {
		b := make([]byte, 1)
		if err := k.AccessBytes(cpu, m, base+vmtypes.VA(off), b, false); err != nil {
			t.Fatal(err)
		}
		if want := byte(off/k.PageSize() + 1); b[0] != want {
			t.Fatalf("offset %#x read %#x, want %#x", off, b[0], want)
		}
	}
	if err := sp.CheckSuperInvariants(); err != nil {
		t.Fatalf("after promotion: %v", err)
	}
	c0 := sp.SuperCount()
	if c0 == 0 {
		t.Fatal("no span ever promoted")
	}
	if k.Stats().SpanPromotions.Load() == 0 {
		t.Fatal("SpanPromotions counter never moved")
	}

	// Demotion trigger 1: a protection change on a sub-range breaks the
	// first span's uniformity.
	if err := m.Protect(base, k.PageSize(), false, vmtypes.ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := sp.CheckSuperInvariants(); err != nil {
		t.Fatalf("after protect demotion: %v", err)
	}
	c1 := sp.SuperCount()
	if c1 >= c0 {
		t.Fatalf("SuperCount = %d after partial Protect, want < %d", c1, c0)
	}

	// Demotion trigger 2: removing one page of the second span.
	if err := m.Deallocate(base+vmtypes.VA(span), k.PageSize()); err != nil {
		t.Fatal(err)
	}
	if err := sp.CheckSuperInvariants(); err != nil {
		t.Fatalf("after deallocate demotion: %v", err)
	}
	if got := sp.SuperCount(); got != 0 {
		t.Fatalf("SuperCount = %d after both demotions, want 0", got)
	}
}

// TestPagerClusterStress hammers clustered fault-in from many goroutines
// while the pageout daemon reclaims behind them; it rides in the CI race
// matrix (-race, name matches the injection regex).
func TestPagerClusterStress(t *testing.T) {
	k, machine := newReclaimKernel(t, 4)
	const pages = 256
	size := uint64(pages) * k.PageSize()
	pg := &patternPager{pageSize: k.PageSize()}
	obj := k.NewObject(size, pg, "stress")
	m := k.NewMap()
	defer m.Destroy()
	addr, err := m.AllocateWithObject(0, size, true, obj, 0,
		vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < machine.NumCPUs(); c++ {
		m.Pmap().Activate(machine.CPU(c))
	}

	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cpu := machine.CPU(g % machine.NumCPUs())
			for rep := 0; rep < 4; rep++ {
				for i := 0; i < pages; i++ {
					// Interleave strides so goroutines collide on flights.
					page := (i*7 + g*13) % pages
					b := make([]byte, 1)
					if err := k.AccessBytes(cpu, m, addr+vmtypes.VA(uint64(page)*k.PageSize()), b, false); err != nil {
						errs <- fmt.Errorf("g%d page %d: %w", g, page, err)
						return
					}
					if b[0] != byte(page+1) {
						errs <- fmt.Errorf("g%d page %d read %#x, want %#x", g, page, b[0], byte(page+1))
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 32; i++ {
			k.PageoutScan()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
