package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
)

func newSmallKernel(t testing.TB, frames int) (*Kernel, *hw.Machine) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: frames,
		CPUs:       2,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	return MustNewKernel(Config{Machine: machine, Module: mod, PageSize: 4096}), machine
}

// TestOOMReturnsError pins every physical page and checks that the next
// fault comes back with ErrNoMemory instead of spinning or panicking, and
// that the system recovers once memory is unwired.
func TestOOMReturnsError(t *testing.T) {
	k, machine := newSmallKernel(t, 512) // 64 Mach pages
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(machine.CPU(0))

	total := uint64(k.TotalPages()) * k.pageSize
	addr, err := m.Allocate(0, total, true)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := m.Wire(addr, total); err != nil {
		t.Fatalf("wiring all of memory should just fit: %v", err)
	}
	if free := k.FreeCount(); free != 0 {
		t.Fatalf("free count %d after wiring everything", free)
	}

	extra, err := m.Allocate(0, k.pageSize, true)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Nothing is reclaimable: every page is wired, so repeated pageout
	// scans free nothing and the fault must fail cleanly.
	err = k.Fault(m, extra, vmtypes.ProtWrite)
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("fault with all memory wired: got %v, want ErrNoMemory", err)
	}

	if err := m.Unwire(addr, total); err != nil {
		t.Fatalf("Unwire: %v", err)
	}
	if err := k.Fault(m, extra, vmtypes.ProtWrite); err != nil {
		t.Fatalf("fault after unwiring must recover: %v", err)
	}
}

// TestExhaustionStress runs allocators, the pageout daemon and object
// teardown against each other with the working set roughly 1.5x physical
// memory, so the free count rides the watermarks the whole time. Run under
// -race this exercises the magazine/depot layer, the single-flight scan
// and the demand wakeup path; afterwards the free-layer invariants must
// hold and every page must come home.
func TestExhaustionStress(t *testing.T) {
	k, machine := newSmallKernel(t, 512) // 64 Mach pages
	stop := make(chan struct{})
	k.StartPageoutDaemon(stop, time.Millisecond)

	const (
		workers     = 4
		regionPages = 24 // 4*24 = 96 pages of demand vs 64 physical
		iters       = 300
	)
	var wg sync.WaitGroup
	maps := make([]*Map, workers)
	for w := 0; w < workers; w++ {
		maps[w] = k.NewMap()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := maps[w]
			cpu := machine.CPU(w % machine.NumCPUs())
			m.Pmap().Activate(cpu)
			rng := rand.New(rand.NewSource(int64(w)))
			size := uint64(regionPages) * k.pageSize
			addr, err := m.Allocate(0, size, true)
			if err != nil {
				t.Errorf("worker %d: Allocate: %v", w, err)
				return
			}
			for i := 0; i < iters; i++ {
				va := addr + vmtypes.VA(uint64(rng.Intn(regionPages))*k.pageSize)
				buf := []byte{byte(i)}
				if err := k.AccessBytes(cpu, m, va, buf, i%2 == 0); err != nil {
					t.Errorf("worker %d: access: %v", w, err)
					return
				}
				// Teardown under pressure: periodically throw the whole
				// region away (terminating its object while the daemon
				// may hold candidates from it) and start over.
				if i%100 == 99 {
					if err := m.Deallocate(addr, size); err != nil {
						t.Errorf("worker %d: Deallocate: %v", w, err)
						return
					}
					addr, err = m.Allocate(0, size, true)
					if err != nil {
						t.Errorf("worker %d: Allocate: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	for _, m := range maps {
		m.Destroy()
	}
	// Let any scan that was in flight during teardown finish.
	k.PageoutScan()
	checkPageAccounting(t, k)
	if free := k.FreeCount(); free != k.TotalPages() {
		t.Fatalf("free count %d after teardown, want %d", free, k.TotalPages())
	}
}
