package core_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"machvm/internal/core"
	"machvm/internal/vmtypes"
)

// countingPager records pager traffic for object-level tests.
type countingPager struct {
	mu       sync.Mutex
	name     string
	data     map[uint64][]byte
	requests int
	writes   int
	inits    int
	terms    int
}

func newCountingPager(name string) *countingPager {
	return &countingPager{name: name, data: make(map[uint64][]byte)}
}

func (p *countingPager) Name() string { return p.name }
func (p *countingPager) Init(obj *core.Object) {
	p.mu.Lock()
	p.inits++
	p.mu.Unlock()
}
func (p *countingPager) DataRequest(ctx context.Context, obj *core.Object, offset uint64, length int) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	d, ok := p.data[offset]
	if !ok {
		return nil, core.ErrDataUnavailable
	}
	return d, nil
}
func (p *countingPager) DataWrite(ctx context.Context, obj *core.Object, offset uint64, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writes++
	cp := make([]byte, len(data))
	copy(cp, data)
	p.data[offset] = cp
	return nil
}
func (p *countingPager) Terminate(obj *core.Object) {
	p.mu.Lock()
	p.terms++
	p.mu.Unlock()
}

func (p *countingPager) counts() (req, wr, init, term int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.requests, p.writes, p.inits, p.terms
}

func TestObjectLifecycle(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	p := newCountingPager("test")
	obj := k.NewObject(64*1024, p, "lifecycle")
	if obj.Size() != 64*1024 {
		t.Fatalf("size = %d", obj.Size())
	}
	if obj.Refs() != 1 {
		t.Fatalf("fresh refs = %d", obj.Refs())
	}
	if _, _, inits, _ := p.counts(); inits != 1 {
		t.Fatal("pager_init not delivered")
	}
	obj.Reference()
	if obj.Refs() != 2 {
		t.Fatal("Reference did not count")
	}
	k.ReleaseObjectRef(obj)
	k.ReleaseObjectRef(obj)
	if _, _, _, terms := p.counts(); terms != 1 {
		t.Fatal("pager not terminated on last release")
	}
}

func TestObjectCacheEviction(t *testing.T) {
	machineKernel, _ := newVAXKernel(t, 1)
	k := machineKernel
	// Small cache: 2 objects.
	var objs []*core.Object
	p := newCountingPager("cache")
	_ = p
	// Rebuild kernel with tiny cache: use a fresh kernel.
	// (newVAXKernel uses default cache size 64; create objects enough to
	// evict is cheap either way — use 70.)
	for i := 0; i < 70; i++ {
		pg := newCountingPager("c")
		obj := k.NewObject(4096, pg, "cached")
		obj.SetCanPersist(true)
		objs = append(objs, obj)
		k.ReleaseObjectRef(obj) // goes to cache
	}
	if got := k.CachedObjects(); got > 64 {
		t.Fatalf("cache grew past its limit: %d", got)
	}
	// The earliest objects were evicted and terminated; reviving them
	// fails.
	if k.LookupCached(objs[0]) {
		t.Fatal("evicted object should not revive")
	}
	// The latest are revivable.
	if !k.LookupCached(objs[69]) {
		t.Fatal("recent object should revive")
	}
	k.ReleaseObjectRef(objs[69])
}

func TestNonPersistentObjectNeverCached(t *testing.T) {
	k, _ := newVAXKernel(t, 1)
	p := newCountingPager("np")
	obj := k.NewObject(4096, p, "np")
	before := k.CachedObjects()
	k.ReleaseObjectRef(obj)
	if k.CachedObjects() != before {
		t.Fatal("non-persistent object entered the cache")
	}
	if _, _, _, terms := p.counts(); terms != 1 {
		t.Fatal("object should be terminated immediately")
	}
}

func TestCleanObjectRangeWritesDirtyData(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)
	p := newCountingPager("clean")
	obj := k.NewObject(8*4096, p, "clean")

	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, err := m.AllocateWithObject(0, obj.Size(), true, obj, 0, vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("dirty page content")
	if err := k.AccessBytes(cpu, m, addr, payload, true); err != nil {
		t.Fatal(err)
	}
	k.CleanObjectRange(obj, 0, obj.Size())
	_, writes, _, _ := p.counts()
	if writes == 0 {
		t.Fatal("clean should have written the dirty page")
	}
	if got := p.data[0]; !bytes.HasPrefix(got, payload) {
		t.Fatalf("pager received %q", got[:20])
	}
	// The page is still resident and mapped; a read works without a
	// pager request.
	req0, _, _, _ := p.counts()
	b := make([]byte, len(payload))
	if err := k.AccessBytes(cpu, m, addr, b, false); err != nil {
		t.Fatal(err)
	}
	if req1, _, _, _ := p.counts(); req1 != req0 {
		t.Fatal("clean must not evict the page")
	}
	// A write after clean redirties (write-protect was reasserted).
	if err := k.AccessBytes(cpu, m, addr, []byte("more"), true); err != nil {
		t.Fatal(err)
	}
}

func TestFlushObjectRangeDestroysCachedCopies(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)
	p := newCountingPager("flush")
	p.data[0] = bytes.Repeat([]byte{9}, 4096)
	obj := k.NewObject(4*4096, p, "flush")

	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, _ := m.AllocateWithObject(0, obj.Size(), true, obj, 0, vmtypes.ProtRead, vmtypes.ProtAll, vmtypes.InheritCopy, false)
	b := make([]byte, 1)
	if err := k.AccessBytes(cpu, m, addr, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != 9 {
		t.Fatal("pager data missing")
	}
	req0, _, _, _ := p.counts()
	k.FlushObjectRange(obj, 0, obj.Size())
	if obj.Resident() != 0 {
		t.Fatalf("flush left %d resident pages", obj.Resident())
	}
	// Next touch must ask the pager again.
	if err := k.AccessBytes(cpu, m, addr, b, false); err != nil {
		t.Fatal(err)
	}
	if req1, _, _, _ := p.counts(); req1 != req0+1 {
		t.Fatalf("refault did not reach the pager (req %d -> %d)", req0, req1)
	}
}

func TestChainLengthAndShadowAccessors(t *testing.T) {
	k, machine := newVAXKernel(t, 1)
	cpu := machine.CPU(0)
	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(cpu)
	addr, _ := m.Allocate(0, 8192, true)
	if err := k.Touch(cpu, m, addr, true); err != nil {
		t.Fatal(err)
	}
	// Force one COW level.
	dst, err := m.CopyTo(m, addr, 8192, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Touch(cpu, m, dst, true); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range m.Regions() {
		if r.Start == dst && r.ObjectName == "shadow" {
			found = true
		}
	}
	if !found {
		t.Fatal("written copy should be backed by a shadow object")
	}
}

func TestBusyPageWaiters(t *testing.T) {
	// Two goroutines fault the same pager-backed page; the pager blocks
	// the first request until the second goroutine is provably waiting.
	k, machine := newVAXKernel(t, 2)
	release := make(chan struct{})
	slow := &slowPager{release: release, data: bytes.Repeat([]byte{5}, 4096)}
	obj := k.NewObject(4096, slow, "slow")

	m := k.NewMap()
	defer m.Destroy()
	m.Pmap().Activate(machine.CPU(0))
	m.Pmap().Activate(machine.CPU(1))
	addr, _ := m.AllocateWithObject(0, 4096, true, obj, 0, vmtypes.ProtDefault, vmtypes.ProtAll, vmtypes.InheritCopy, false)

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cpu := machine.CPU(i)
		go func() {
			b := make([]byte, 1)
			results <- k.AccessBytes(cpu, m, addr, b, false)
		}()
	}
	// Let both faulters arrive, then release the pager.
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("concurrent fault: %v", err)
		}
	}
	if got := slow.requests.Load(); got > 2 {
		t.Fatalf("pager asked %d times; busy-page waiting should bound duplicates", got)
	}
}

type slowPager struct {
	release  chan struct{}
	data     []byte
	requests atomicInt64
}

type atomicInt64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomicInt64) Add(d int64) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.v += d
	return a.v
}
func (a *atomicInt64) Load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

func (p *slowPager) Name() string             { return "slow" }
func (p *slowPager) Init(obj *core.Object)    {}
func (p *slowPager) Terminate(o *core.Object) {}
func (p *slowPager) DataWrite(ctx context.Context, o *core.Object, off uint64, d []byte) error {
	return nil
}
func (p *slowPager) DataRequest(ctx context.Context, o *core.Object, off uint64, n int) ([]byte, error) {
	p.requests.Add(1)
	<-p.release
	return p.data, nil
}
