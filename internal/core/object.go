package core

import (
	"sync"
	"sync/atomic"

	"machvm/internal/trace"
)

// Object is a memory object (§3.3): logically a repository for data,
// indexed by byte, in many respects resembling a UNIX file. All backing
// store is implemented by memory objects; address maps map address ranges
// to byte offsets within them. A reference counter lets the object be
// garbage collected when all mapped references are removed — or cached,
// for frequently used objects like text segments.
type Object struct {
	mu sync.Mutex

	refs int

	// size is the object's extent in bytes.
	size uint64

	// pager manages this object's non-resident data; nil means the
	// object is internal (zero-filled on first touch, paged to the
	// default pager).
	pager Pager

	// internal objects are kernel-created anonymous memory; external
	// objects belong to user or file pagers.
	internal bool

	// canPersist allows the object to enter the object cache when the
	// last reference disappears (pager_cache).
	canPersist bool

	// cached is true while the object sits unreferenced in the cache.
	cached bool

	// shadow chains (§3.4): this object relies on the shadowed object
	// for all data it does not hold itself. shadowOffset locates this
	// object's byte 0 within the shadow.
	shadow       *Object
	shadowOffset uint64

	// pageList heads the memory-object page list; resident counts it.
	pageList *Page
	resident int

	// pagingInProgress delays destruction and collapse while a pager
	// conversation is outstanding.
	pagingInProgress int

	// name is a debugging label.
	name string

	// pooled marks fault-path internal objects (lazy anonymous memory
	// and COW shadows) that recycle through the kernel's object pool at
	// termination instead of being garbage. Only terminateObject may
	// recycle: at that point refs is 0, every page is gone, and no
	// shadow-chain walker can stand on the object.
	pooled bool

	// generation distinguishes cache or pool reuse from a fresh object.
	// Atomic because the page-shard hash reads it from lock-free
	// identity snapshots that may race with a pooled reinitialization
	// (such stale readers then fail seqlock revalidation and retry).
	// Assigned from a per-kernel counter so generations — and everything
	// derived from them: the shard hash, trace object IDs — are
	// deterministic for a deterministically driven kernel, regardless of
	// what other kernels exist in the process.
	generation atomic.Uint64

	// clusterPages is the fault-in cluster size in Mach pages (atomic:
	// read on the fault path without the object lock). 0 selects the
	// default; 1 disables clustering for this object.
	clusterPages atomic.Int32

	// fallback is the object's PagerFallback degradation policy, applied
	// when its pager fails (atomic: read on the fault path without the
	// object lock).
	fallback atomic.Int32

	// tier is the caller-requested storage-tier placement (Tier); autoTier
	// is the kernel's decision when tier is TierAuto, driven by the
	// pageout daemon's reference information (see noteRefaults /
	// notePageouts). Both atomic: a tiered pager reads them during
	// DataWrite with no object lock held.
	tier     atomic.Int32
	autoTier atomic.Int32

	// tierRefaults counts pages paged back in from the object's pager;
	// tierPageouts counts pages the daemon wrote out. Together they are
	// the signal for automatic tier placement: an object whose pages keep
	// refaulting after eviction is hot, one that pours pages out and never
	// asks for them back is cold.
	tierRefaults atomic.Uint64
	tierPageouts atomic.Uint64
}

// PagerFallback selects how a fault degrades when the object's pager
// ultimately fails (deadline exhausted or a non-ErrDataUnavailable error
// after retries).
type PagerFallback int32

const (
	// FallbackError surfaces the pager error (wrapping ErrPagerTimeout on
	// deadline exhaustion) through Fault. The default.
	FallbackError PagerFallback = iota
	// FallbackZeroFill treats the failure as pager_data_unavailable: the
	// fault continues down the shadow chain and zero-fills at the end.
	FallbackZeroFill
	// FallbackSwap re-asks the kernel's default pager for the data; on
	// pageout it retargets the object to the default pager so dirty pages
	// are never stranded behind a dead manager.
	FallbackSwap
)

// Tier is an object's storage-tier placement hint, consumed by tiered
// pagers (internal/pager/ztier) on the pageout path. The kernel itself
// attaches no mechanism to a tier beyond computing the automatic placement;
// a flat pager is free to ignore it.
type Tier int32

const (
	// TierAuto lets the pageout daemon's reference information decide:
	// objects whose pages keep refaulting after eviction are promoted hot,
	// objects that stream pages out without ever refaulting demote cold.
	// The default.
	TierAuto Tier = iota
	// TierHot pins the object's evictions in the fast tier: a tiered
	// pager keeps its compressed blobs resident and evicts them to the
	// backing store only under hard memory pressure.
	TierHot
	// TierCold marks the object writeback-eager: a tiered pager bypasses
	// the fast tier entirely and writes straight to the backing store, so
	// a cold object never occupies compressed-pool budget.
	TierCold
)

func (t Tier) String() string {
	switch t {
	case TierAuto:
		return "auto"
	case TierHot:
		return "hot"
	case TierCold:
		return "cold"
	default:
		return "tier(?)"
	}
}

// Automatic tier-placement thresholds: an auto object is promoted hot once
// this many pages refaulted back from its pager, and demoted cold once it
// paged out this many pages without a single refault.
const (
	tierPromoteRefaults = 16
	tierDemotePageouts  = 64
)

// SetTier sets the object's storage-tier placement. TierAuto (the default)
// re-enables automatic placement from the pageout daemon's reference
// information.
func (o *Object) SetTier(t Tier) {
	o.tier.Store(int32(t))
	if t != TierAuto {
		o.autoTier.Store(int32(TierAuto)) // forget the automatic verdict
	}
}

// RequestedTier returns the tier set with SetTier (TierAuto by default).
func (o *Object) RequestedTier() Tier { return Tier(o.tier.Load()) }

// EffectiveTier returns the placement a tiered pager should honor: the
// explicit SetTier value when one is set, otherwise the kernel's automatic
// verdict (TierAuto until enough reference information accumulates).
func (o *Object) EffectiveTier() Tier {
	if t := Tier(o.tier.Load()); t != TierAuto {
		return t
	}
	return Tier(o.autoTier.Load())
}

// noteRefaults records n pages paged back in from the object's pager and
// applies the automatic promotion rule: refaulting evictions mean the
// working set is larger than memory but live — exactly what the fast tier
// is for — so the object is pinned hot.
func (o *Object) noteRefaults(k *Kernel, n int) {
	if o.tierRefaults.Add(uint64(n)) >= tierPromoteRefaults &&
		Tier(o.tier.Load()) == TierAuto &&
		o.autoTier.CompareAndSwap(int32(TierAuto), int32(TierHot)) {
		k.stats.TierPromotions.Add(1)
	}
	// Any refault rescinds a cold verdict: the object is being read again.
	o.autoTier.CompareAndSwap(int32(TierCold), int32(TierAuto))
}

// notePageouts records n pages written out and applies the automatic
// demotion rule: a stream of evictions with no refault at all is cold data
// (a scan, a log, a dropped cache) that should not occupy fast-tier budget.
func (o *Object) notePageouts(k *Kernel, n int) {
	if o.tierPageouts.Add(uint64(n)) >= tierDemotePageouts &&
		o.tierRefaults.Load() == 0 &&
		Tier(o.tier.Load()) == TierAuto &&
		o.autoTier.CompareAndSwap(int32(TierAuto), int32(TierCold)) {
		k.stats.TierDemotions.Add(1)
	}
}

// NewObject creates a memory object of the given size, managed by pager
// (nil for internal zero-fill memory).
func (k *Kernel) NewObject(size uint64, pager Pager, name string) *Object {
	o := &Object{
		refs:     1,
		size:     k.roundPage(size),
		pager:    pager,
		internal: pager == nil,
		name:     name,
	}
	o.generation.Store(k.objectIDs.Add(1))
	if pager != nil {
		pager.Init(o)
	}
	k.stats.ObjectsCreated.Add(1)
	return o
}

// newPooledObject returns a recycled (or fresh) fault-path object with
// every field reset and a new generation. Pooled objects are the
// fault path's internal creations — lazy anonymous zero-fill memory and
// COW shadows: they never have a pager and never enter the object
// cache, so terminateObject is their only exit and the recycle point.
// Fields are reset one by one (never by struct copy — the mutex and
// atomics must not be overwritten while a stale lock-free reader still
// holds the pointer).
func (k *Kernel) newPooledObject() *Object {
	o, _ := k.objectPool.Get().(*Object)
	if o == nil {
		o = &Object{}
	}
	o.refs = 1
	o.size = 0
	o.pager = nil
	o.internal = true
	o.canPersist = false
	o.cached = false
	o.shadow = nil
	o.shadowOffset = 0
	o.pageList = nil
	o.resident = 0
	o.pagingInProgress = 0
	o.name = ""
	o.pooled = true
	o.clusterPages.Store(0)
	o.fallback.Store(0)
	o.tier.Store(0)
	o.autoTier.Store(0)
	o.tierRefaults.Store(0)
	o.tierPageouts.Store(0)
	o.generation.Store(k.objectIDs.Add(1))
	return o
}

// newAnonObject is the pooled equivalent of NewObject(size, nil,
// "anonymous"), used by the fault path's lazy zero-fill allocation.
func (k *Kernel) newAnonObject(size uint64) *Object {
	o := k.newPooledObject()
	o.size = k.roundPage(size)
	o.name = "anonymous"
	k.stats.ObjectsCreated.Add(1)
	return o
}

// ID returns the object's stable per-kernel identifier (its generation):
// unique per object incarnation, assigned in creation order. Trace events
// name objects by this ID.
func (o *Object) ID() uint64 { return o.generation.Load() }

// Name returns the object's debugging label.
func (o *Object) Name() string { return o.name }

// Size returns the object's extent in bytes.
func (o *Object) Size() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.size
}

// Resident returns the number of resident pages.
func (o *Object) Resident() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.resident
}

// Refs returns the current reference count.
func (o *Object) Refs() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.refs
}

// Pager returns the object's pager (nil for internal memory).
func (o *Object) Pager() Pager {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.pager
}

// defaultClusterPages is the fault-in cluster applied to objects that
// never called SetClusterSize: one pager-backed miss reads an aligned run
// of up to this many Mach pages (clipped to the entry and object bounds).
const defaultClusterPages = 8

// maxClusterPages bounds SetClusterSize; larger requests are clamped so a
// single conversation cannot monopolize free memory.
const maxClusterPages = 64

// SetClusterSize sets the object's fault-in cluster size in Mach pages:
// how much a single pager-backed miss reads around the faulting offset.
// 1 disables clustering; 0 restores the default (8). Values are clamped
// to [1, 64]. The extra pages are installed resident-but-unmapped, so
// neighboring faults hit the resident fast path without a conversation.
func (o *Object) SetClusterSize(pages int) {
	if pages < 0 {
		pages = 0
	}
	if pages > maxClusterPages {
		pages = maxClusterPages
	}
	o.clusterPages.Store(int32(pages))
}

// ClusterSize returns the effective fault-in cluster size in Mach pages.
func (o *Object) ClusterSize() int {
	if n := o.clusterPages.Load(); n > 0 {
		return int(n)
	}
	return defaultClusterPages
}

// SetCanPersist marks the object cacheable after its last release
// (the pager_cache call of Table 3-2).
func (o *Object) SetCanPersist(v bool) {
	o.mu.Lock()
	o.canPersist = v
	o.mu.Unlock()
}

// Shadow returns the object this object shadows, if any.
func (o *Object) Shadow() *Object {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.shadow
}

// ChainLength returns the length of the shadow chain starting here
// (1 for an unshadowed object) — the quantity §3.5's garbage collection
// exists to bound.
func (o *Object) ChainLength() int {
	n := 0
	for cur := o; cur != nil; {
		n++
		cur.mu.Lock()
		next := cur.shadow
		cur.mu.Unlock()
		cur = next
	}
	return n
}

// Reference adds a reference.
func (o *Object) Reference() {
	o.mu.Lock()
	o.refs++
	o.mu.Unlock()
}

// releaseObject drops a reference. When the last reference disappears the
// object is either cached (if it can persist — keeping its physical pages
// so reuse is very inexpensive) or terminated.
func (k *Kernel) releaseObject(o *Object) {
	for o != nil {
		o.mu.Lock()
		o.refs--
		if o.refs > 0 {
			// Somebody still needs it; but a shadow chain whose
			// intermediate links have a single reference may now be
			// collapsible from above. Collapse is driven by the
			// shadow-creation and fault paths.
			o.mu.Unlock()
			return
		}
		if o.canPersist && o.pager != nil {
			// Keep it warm in the object cache.
			o.refs = 0
			o.cached = true
			o.mu.Unlock()
			k.cache.insert(k, o)
			return
		}
		shadow := o.shadow
		o.shadow = nil
		o.mu.Unlock()
		k.terminateObject(o)
		o = shadow // drop our reference on the backing object too
	}
}

// terminateObject frees the object's pages and tells its pager.
func (k *Kernel) terminateObject(o *Object) {
	// Free every resident page. Hardware mappings are removed before a
	// page reaches the free list so it can never be reallocated while a
	// stale translation survives.
	for {
		o.mu.Lock()
		p := o.pageList
		if p == nil {
			o.mu.Unlock()
			break
		}
		// List membership implies identity, so the identity is stable
		// while o's lock is held.
		off := p.Offset()
		s := k.shardFor(o, off)
		s.mu.Lock()
		if p.busy {
			// Wait for the page's I/O to settle before freeing.
			k.stats.BusyWaits.Add(1)
			ch := s.waitChan(pageKey{obj: o, offset: off})
			s.mu.Unlock()
			o.mu.Unlock()
			<-ch
			continue
		}
		k.removePageLocked(s, p)
		s.mu.Unlock()
		o.mu.Unlock()
		// The page is unreachable now (no identity); unmap it before it
		// becomes allocatable again.
		k.removeAllMappings(p)
		k.detachAndFree(p)
	}
	if o.pager != nil {
		o.pager.Terminate(o)
	}
	k.stats.ObjectsTerminated.Add(1)
	if o.pooled {
		// Refs hit zero and every page is gone, so nothing reaches this
		// object through a map entry or its page list anymore; lock-free
		// page-identity snapshots that still hold the pointer revalidate
		// against the seqlock and retry. (The collapseShadow bypass path
		// deliberately does NOT recycle: a shadow-chain walker may still
		// stand on the bypassed backing object.)
		k.objectPool.Put(o)
	}
}

// shadowObject makes a new shadow object in front of o: an initially empty
// internal object, without a pager but with a pointer to the shadowed
// object (§3.4). The caller transfers its reference on o to the shadow.
func (k *Kernel) shadowObject(o *Object, offset, size uint64) *Object {
	s := k.newPooledObject()
	s.size = k.roundPage(size)
	s.shadow = o
	s.shadowOffset = offset
	s.name = "shadow"
	k.stats.ObjectsCreated.Add(1)
	k.stats.ShadowsCreated.Add(1)
	return s
}

// collapseShadow attempts the shadow-chain garbage collection of §3.5:
// when an intermediate shadow is no longer needed — its only reference is
// the object shadowing it — its pages are swallowed and it is bypassed.
// The argument is the front object whose backing chain should be checked.
func (k *Kernel) collapseShadow(front *Object) {
	for {
		front.mu.Lock()
		backing := front.shadow
		if backing == nil {
			front.mu.Unlock()
			return
		}
		backing.mu.Lock()
		// The backing object can be collapsed into front only when
		// front holds the sole reference, no pager owns the backing
		// data, and no paging conversation is in flight.
		if backing.refs != 1 || backing.pager != nil || backing.pagingInProgress > 0 || front.pagingInProgress > 0 {
			backing.mu.Unlock()
			front.mu.Unlock()
			return
		}
		shadowOffset := front.shadowOffset
		// Move every page of backing that front lacks (and that falls
		// inside front's window) into front; free the rest. Pages are
		// handled one at a time: the lock discipline allows at most one
		// shard lock, so a move is remove-under-old-shard followed by
		// insert-under-new-shard. In between the page has no identity
		// and is unreachable, which is safe because both objects' locks
		// are held and concurrent faulters pin the chain (raising
		// pagingInProgress) before walking past front — pinned chains
		// make this collapse abort above.
		var frees []*Page
		aborted := false
		for p := backing.pageList; p != nil; {
			next := p.objNext
			off := p.Offset()
			s := k.shardFor(backing, off)
			s.mu.Lock()
			if p.busy {
				// Give up; try again another time.
				s.mu.Unlock()
				aborted = true
				break
			}
			k.removePageLocked(s, p)
			s.mu.Unlock()
			newOffset := int64(off) - int64(shadowOffset)
			moved := false
			if newOffset >= 0 && uint64(newOffset) < front.size {
				d := k.shardFor(front, uint64(newOffset))
				d.mu.Lock()
				if d.pages[pageKey{obj: front, offset: uint64(newOffset)}] == nil {
					k.insertPageLocked(d, p, front, uint64(newOffset))
					moved = true
				}
				d.mu.Unlock()
			}
			if !moved {
				frees = append(frees, p)
			}
			p = next
		}
		for _, p := range frees {
			// Unmap before the page becomes allocatable again.
			k.removeAllMappings(p)
			k.detachAndFree(p)
		}
		if aborted {
			backing.mu.Unlock()
			front.mu.Unlock()
			return
		}
		// Bypass: front now shadows what backing shadowed.
		front.shadow = backing.shadow
		front.shadowOffset = shadowOffset + backing.shadowOffset
		backing.shadow = nil
		backing.refs = 0
		backing.mu.Unlock()
		front.mu.Unlock()
		k.stats.ShadowsCollapsed.Add(1)
		k.stats.ObjectsTerminated.Add(1)
		// Loop: the new backing may be collapsible as well.
	}
}

// objectCache retains frequently used memory objects after their last
// mapping reference disappears (§3.3), so reusing a text segment or hot
// file is very inexpensive.
type objectCache struct {
	mu    sync.Mutex
	limit int
	// FIFO of cached objects, oldest first.
	objs                    []*Object
	hits, misses, evictions uint64
}

func (c *objectCache) init(limit int) { c.limit = limit }

// insert places an unreferenced, persistent object in the cache, evicting
// the oldest entry beyond the limit.
func (c *objectCache) insert(k *Kernel, o *Object) {
	var evict *Object
	c.mu.Lock()
	c.objs = append(c.objs, o)
	if len(c.objs) > c.limit {
		evict = c.objs[0]
		c.objs = c.objs[1:]
		c.evictions++
	}
	c.mu.Unlock()
	if evict != nil {
		evict.mu.Lock()
		stillCached := evict.cached && evict.refs == 0
		evict.cached = false
		shadow := evict.shadow
		evict.shadow = nil
		evict.mu.Unlock()
		if stillCached {
			k.terminateObject(evict)
			if shadow != nil {
				k.releaseObject(shadow)
			}
		}
	}
}

// take removes o from the cache if present, returning whether it was.
func (c *objectCache) take(o *Object) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cand := range c.objs {
		if cand == o {
			c.objs = append(c.objs[:i], c.objs[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the number of cached objects.
func (c *objectCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.objs)
}

// LookupCached revives an object from the cache: the caller gets a fresh
// reference and the object keeps its resident pages — this is what makes
// the second read of a hot file cheap under Mach.
func (k *Kernel) LookupCached(o *Object) bool {
	o.mu.Lock()
	if !o.cached {
		o.mu.Unlock()
		k.cache.mu.Lock()
		k.cache.misses++
		k.cache.mu.Unlock()
		return false
	}
	o.mu.Unlock()
	if !k.cache.take(o) {
		return false
	}
	o.mu.Lock()
	o.cached = false
	o.refs = 1
	o.mu.Unlock()
	k.cache.mu.Lock()
	k.cache.hits++
	k.cache.mu.Unlock()
	k.stats.CacheRevives.Add(1)
	return true
}

// CachedObjects returns the current object-cache population.
func (k *Kernel) CachedObjects() int { return k.cache.Len() }

// CanPersist reports whether the object will enter the cache on its last
// release.
func (o *Object) CanPersist() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.canPersist
}

// ReleaseObjectRef drops one reference to the object (the public face of
// object deallocation; maps drop their references automatically).
func (k *Kernel) ReleaseObjectRef(o *Object) {
	l, top := k.traceBegin()
	id := o.ID()
	k.releaseObject(o)
	if l != nil {
		if top {
			l.Append(k.traceEvent(trace.OpReleaseObject, trace.Event{Obj: id}))
		}
		l.EndOp()
	}
}
