package core

import (
	"reflect"
	"testing"
)

// TestStatsSnapshotParity keeps StatsSnapshot in lockstep with Stats: every
// atomic counter must have a same-named plain field in the same order, and
// Snapshot must copy each one. Adding a counter to Stats without extending
// StatsSnapshot (or Snapshot) fails here instead of silently dropping the
// counter from traces and tools.
func TestStatsSnapshotParity(t *testing.T) {
	st := reflect.TypeOf(Stats{})
	snapT := reflect.TypeOf(StatsSnapshot{})
	if st.NumField() != snapT.NumField() {
		t.Fatalf("Stats has %d fields, StatsSnapshot has %d", st.NumField(), snapT.NumField())
	}
	for i := 0; i < st.NumField(); i++ {
		sf, pf := st.Field(i), snapT.Field(i)
		if sf.Name != pf.Name {
			t.Errorf("field %d: Stats.%s vs StatsSnapshot.%s (order/name mismatch)", i, sf.Name, pf.Name)
		}
		if pf.Type.Kind() != reflect.Uint64 {
			t.Errorf("StatsSnapshot.%s is %s, want uint64", pf.Name, pf.Type)
		}
	}

	// Set each counter to a distinct value and verify Snapshot copies all.
	var s Stats
	sv := reflect.ValueOf(&s).Elem()
	for i := 0; i < st.NumField(); i++ {
		sv.Field(i).Addr().MethodByName("Store").Call([]reflect.Value{reflect.ValueOf(uint64(i + 1))})
	}
	snap := s.Snapshot()
	nv := reflect.ValueOf(snap)
	for i := 0; i < snapT.NumField(); i++ {
		if got := nv.Field(i).Uint(); got != uint64(i+1) {
			t.Errorf("Snapshot dropped %s: got %d, want %d", snapT.Field(i).Name, got, i+1)
		}
	}
}
