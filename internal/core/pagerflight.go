package core

import (
	"context"
	"errors"
	"fmt"

	"machvm/internal/vmtypes"
)

// A pagerFlight is one in-flight DataRequest conversation for a contiguous
// run of pages in one object. Flights are single-flight per page: the
// first faulter (the leader) allocates the busy anchor page, extends the
// run around it up to the object's cluster size, registers the flight
// under every page of the run and issues one conversation for the whole
// range; every concurrent faulter for any page of the run joins the flight
// and shares its per-page outcome instead of issuing a duplicate request
// or paying a fresh deadline of its own.
//
// The busy-page claim protocol survives abandonment: the flight, not any
// particular faulter, owns the pages' busy bits. A faulter whose context
// is cancelled walks away immediately while the flight keeps running to
// its own deadline, after which each page is either filled (clearing busy)
// or freed (waking every waiter) — a page can never stay busy forever
// because the thread that wanted it gave up.
type pagerFlight struct {
	// done is closed once every page of the run is resolved.
	done chan struct{}
	// isFallback marks a flight already running against the default swap
	// pager as a degradation, so a failure never re-applies FallbackSwap.
	isFallback bool

	// The run this flight owns: len(pages) busy absent pages, pages[i]
	// at object byte offset start + i*pageSize. errs[i] is page i's
	// outcome, valid only after done is closed: nil (filled and
	// resident), errClusterSkipped (freed without a definitive answer),
	// ErrDataUnavailable or a pager error (freed).
	start uint64
	pages []*Page
	errs  []error
}

// errClusterSkipped marks a cluster page the pager's reply did not reach:
// neither filled nor definitively absent. The page is freed and its
// waiters re-walk the chain; whoever reaches pageIn first becomes the
// anchor of its own conversation, which resolves that page definitively —
// so progress is guaranteed and a gap in one pager's data is never papered
// over with zeroes that would hide a backing object's pages.
var errClusterSkipped = errors.New("pager: cluster page not covered by reply")

// Flight outcomes as seen by a waiter.
const (
	flightResident    = iota + 1 // page filled and resident: rewalk and claim it
	flightUnavailable            // definitive no-data: continue down the chain
	flightFailed                 // pager failure: apply the object's fallback
	flightAbandoned              // the caller's context fired first
	flightSkipped                // not covered by the clustered reply: rewalk
)

// registerFlight publishes f as the in-flight request for every page of
// its run. Lock order: flightMu is a leaf (never held while taking a shard
// or object lock).
func (k *Kernel) registerFlight(obj *Object, f *pagerFlight) {
	k.flightMu.Lock()
	for i := range f.pages {
		k.flights[pageKey{obj: obj, offset: f.start + uint64(i)*k.pageSize}] = f
	}
	k.flightMu.Unlock()
}

// unregisterFlight removes every key of f's run from the flight table.
func (k *Kernel) unregisterFlight(obj *Object, f *pagerFlight) {
	k.flightMu.Lock()
	for i := range f.pages {
		delete(k.flights, pageKey{obj: obj, offset: f.start + uint64(i)*k.pageSize})
	}
	k.flightMu.Unlock()
}

// flightFor returns the in-flight request covering key, if any.
func (k *Kernel) flightFor(key pageKey) *pagerFlight {
	k.flightMu.Lock()
	f := k.flights[key]
	k.flightMu.Unlock()
	return f
}

// indexOf translates an object offset into the flight's page index. Only
// valid for offsets within the run (waiters join through registered keys).
func (f *pagerFlight) indexOf(offset, pageSize uint64) int {
	return int((offset - f.start) / pageSize)
}

// fillPageFrom copies one page's worth of pager data starting at data[lo]
// into p's hardware frames, zero-filling the tail of a short read.
func (k *Kernel) fillPageFrom(p *Page, data []byte, lo int) {
	hwPage := k.machine.Mem.PageSize()
	for i := 0; i < k.hwRatio; i++ {
		pfn := p.pfn + vmtypes.PFN(i)
		k.machine.Mem.LockFrame(pfn)
		frame := k.machine.Mem.Frame(pfn)
		off := lo + i*hwPage
		if off >= len(data) {
			clear(frame)
		} else {
			n := copy(frame, data[off:])
			clear(frame[n:])
		}
		k.machine.Mem.UnlockFrame(pfn)
	}
}

// runClusterFlight runs the pager conversation for the flight's run of
// busy pages and resolves each page individually. Filled pages go resident
// (readahead extras on the inactive queue, so a wrong guess stays
// reclaimable); pages the reply did not cover are freed with
// errClusterSkipped so their waiters re-look-up; the anchor — the page the
// leading faulter actually needs — is always resolved definitively, with a
// single-page retry conversation if the clustered reply fell short of it.
// The flight is unregistered before any page is released, so a faulter can
// never join a flight whose pages have already moved on.
func (k *Kernel) runClusterFlight(f *pagerFlight, obj *Object, pager Pager, anchor int) {
	n := len(f.pages)
	pgsz := int(k.pageSize)
	data, err := k.pagerRequestData(pager, obj, f.start, n*pgsz)
	k.stats.PagerRoundTrips.Add(1)
	switch {
	case err == nil:
		// A short read is legal: the reply covers a prefix of the run
		// and the rest is resolved separately. A successful reply always
		// covers at least the first page (zero-filling its tail), which
		// preserves the single-page semantics exactly.
		covered := (len(data) + pgsz - 1) / pgsz
		if covered < 1 {
			covered = 1
		}
		if covered > n {
			covered = n
		}
		k.machine.ChargeKB(k.machine.Cost.CopyPerKB, len(data))
		for i := 0; i < n; i++ {
			if i < covered {
				k.fillPageFrom(f.pages[i], data, i*pgsz)
				f.errs[i] = nil
			} else {
				f.errs[i] = errClusterSkipped
			}
		}
	case errors.Is(err, ErrDataUnavailable):
		// Definitive only for the first page: the pager said nothing
		// about what lies beyond the offset it rejected.
		f.errs[0] = err
		for i := 1; i < n; i++ {
			f.errs[i] = errClusterSkipped
		}
	default:
		// Conversation failure (timeout, pager error): there is no
		// per-page information to extract, so every page shares the
		// failure — exactly as single-page flights always have.
		for i := 0; i < n; i++ {
			f.errs[i] = err
		}
	}

	if errors.Is(f.errs[anchor], errClusterSkipped) {
		// The faulting page itself must leave the flight with a
		// definitive answer; re-ask for it alone.
		aoff := f.start + uint64(anchor)*k.pageSize
		adata, aerr := k.pagerRequestData(pager, obj, aoff, pgsz)
		k.stats.PagerRoundTrips.Add(1)
		if aerr == nil {
			k.machine.ChargeKB(k.machine.Cost.CopyPerKB, len(adata))
			k.fillPageFrom(f.pages[anchor], adata, 0)
			f.errs[anchor] = nil
		} else {
			f.errs[anchor] = aerr
		}
	}

	// Unregister before releasing any page, so no faulter can join a dead
	// flight, then resolve every page: fill-and-wake or free-and-wake.
	k.unregisterFlight(obj, f)
	obj.mu.Lock()
	obj.pagingInProgress--
	obj.mu.Unlock()

	filled := 0
	for i, p := range f.pages {
		if f.errs[i] != nil {
			// Freeing removes the page's identity and wakes the waiters
			// parked on its busy bit; they re-look-up and find it gone.
			k.freePage(p)
			continue
		}
		p.absent = false
		filled++
		// Resident-but-unmapped: a neighboring fault claims the page off
		// the inactive queue without a conversation, while an unused
		// readahead page stays within the pageout daemon's easy reach.
		// The anchor is activated by its faulter right after wakeup.
		if s, _, _ := k.lockPage(p); s != nil {
			if p.wireCount.Load() == 0 {
				k.setQueue(p, queueInactive)
			}
			s.mu.Unlock()
		}
		k.pageWakeup(p)
	}
	if filled > 0 {
		k.stats.Pageins.Add(uint64(filled))
		// Pages coming back from a pager are refaults in the tier-placement
		// sense: the object's data was evicted and wanted again. Feed the
		// auto-tier machinery (resident hits and zero fills stay untouched,
		// keeping the fast fault paths free of this accounting).
		obj.noteRefaults(k, filled)
		extras := filled
		if f.errs[anchor] == nil {
			extras--
		}
		if extras > 0 {
			k.stats.ClusterExtras.Add(uint64(extras))
		}
	}
	close(f.done)
}

// awaitPageFlight waits for the flight's outcome for the page at offset,
// or for the caller's context — whichever comes first. An abandoning
// caller returns an error immediately; the flight continues in the
// background and resolves its busy pages on its own deadline.
func (k *Kernel) awaitPageFlight(ctx context.Context, f *pagerFlight, offset uint64) (int, error) {
	if ctx.Done() != nil {
		select {
		case <-f.done:
		case <-ctx.Done():
			k.stats.PagerAbandons.Add(1)
			return flightAbandoned, fmt.Errorf("vm_fault: pager wait abandoned: %w", ctx.Err())
		}
	} else {
		<-f.done
	}
	err := f.errs[f.indexOf(offset, k.pageSize)]
	switch {
	case err == nil:
		return flightResident, nil
	case errors.Is(err, errClusterSkipped):
		return flightSkipped, nil
	case errors.Is(err, ErrDataUnavailable):
		return flightUnavailable, nil
	default:
		return flightFailed, err
	}
}

// resolveFlight waits for f's outcome at offset and applies obj's
// degradation policy to a failure. It returns pageIn's pair: retry=true
// means rewalk the chain (the page is resident, or its fate is unknown and
// the rewalk will settle it); retry=false with no error means "no data
// here" (continue down the shadow chain without re-asking this level's
// pager); an error aborts the fault.
func (k *Kernel) resolveFlight(ctx context.Context, obj *Object, offset uint64, f *pagerFlight) (retry bool, err error) {
	st, ferr := k.awaitPageFlight(ctx, f, offset)
	switch st {
	case flightResident, flightSkipped:
		return true, nil
	case flightUnavailable:
		return false, nil
	case flightAbandoned:
		// Caller context fired first: the fault is abandoned outright, no
		// fallback applies (the flight may yet succeed for others).
		return false, ferr
	}
	// flightFailed: degrade per the object's policy.
	switch fb := obj.PagerFallback(); {
	case fb == FallbackZeroFill:
		k.stats.PagerFallbacks.Add(1)
		return false, nil
	case fb == FallbackSwap && !f.isFallback:
		k.stats.PagerFallbacks.Add(1)
		return k.pageInFallback(ctx, obj, offset)
	default:
		return false, ferr
	}
}

// claimPageOrFlight looks up the resident page for (obj, offset) and
// busy-claims it. When the page is busy it first consults the flight
// table: a page owned by an in-flight pager request is joined (the flight
// is returned) rather than waited on, so a failure is delivered to every
// waiter at once. Other busy pages (pageout, clean, copy) are waited for
// on the per-key channel as before. Returns (nil, nil) when no page is
// resident.
func (k *Kernel) claimPageOrFlight(obj *Object, offset uint64) (*Page, *pagerFlight) {
	s := k.shardFor(obj, offset)
	key := pageKey{obj: obj, offset: offset}
	s.mu.Lock()
	for {
		p := s.pages[key]
		if p == nil {
			s.mu.Unlock()
			return nil, nil
		}
		if !p.busy {
			p.busy = true
			s.mu.Unlock()
			return p, nil
		}
		s.mu.Unlock()
		if f := k.flightFor(key); f != nil {
			k.stats.PagerFlightJoins.Add(1)
			return nil, f
		}
		s.mu.Lock()
		if p2 := s.pages[key]; p2 != p || !p.busy {
			continue // the page moved on while we checked the flights
		}
		k.stats.BusyWaits.Add(1)
		ch := s.waitChan(key)
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
}

// pageIn asks the object's pager for the page at offset — and, when the
// object's cluster size allows, for an aligned run of neighbors around it
// in the same conversation — through a registered single-flight bounded by
// the kernel's PagerPolicy. [winLo, winHi) is the map entry's window in
// obj's byte coordinates; the cluster never reads past it. Returns as
// resolveFlight does: retry=true means rewalk the chain; retry=false with
// no error means the pager has no data (or degradation chose zero-fill)
// and the caller continues down the chain.
func (k *Kernel) pageIn(ctx context.Context, obj *Object, offset uint64, pager Pager, winLo, winHi uint64) (retry bool, err error) {
	return k.pageInWith(ctx, obj, offset, pager, pager == k.swap, winLo, winHi)
}

// pageInFallback is the FallbackSwap degradation read: ask the default
// pager for the data instead. Marked as a fallback so a swap failure
// surfaces instead of recursing; a degraded read stays single-page.
func (k *Kernel) pageInFallback(ctx context.Context, obj *Object, offset uint64) (retry bool, err error) {
	return k.pageInWith(ctx, obj, offset, k.swap, true, offset, offset+k.pageSize)
}

// clusterBounds computes the aligned cluster window around a faulting
// offset: [lo, hi) in obj's byte coordinates, clipped to the map entry's
// window and the object's size. Locking pagers negotiate per-offset locks
// on data delivery, so clustering is disabled for them — a cluster page
// must never bypass a lock the pager would have attached.
func (k *Kernel) clusterBounds(obj *Object, pager Pager, offset, winLo, winHi uint64) (lo, hi uint64) {
	lo, hi = offset, offset+k.pageSize
	cluster := obj.ClusterSize()
	if cluster <= 1 {
		return lo, hi
	}
	if _, ok := pager.(LockingPager); ok {
		return lo, hi
	}
	span := uint64(cluster) * k.pageSize
	clo := offset - offset%span
	chi := clo + span
	if clo < winLo {
		clo = winLo
	}
	if chi > winHi {
		chi = winHi
	}
	if size := k.roundPage(obj.Size()); chi > size {
		chi = size
	}
	// The run always contains the faulting page, whatever the window
	// arithmetic produced.
	if clo > lo {
		clo = lo
	}
	if chi < hi {
		chi = hi
	}
	return clo, chi
}

// clusterAllocOK reports whether readahead may take another free page.
// Clustering never digs into the pageout reserve the way a demand fault
// must: a cluster under memory pressure just shrinks to the anchor.
func (k *Kernel) clusterAllocOK() bool {
	return k.FreeCount() > k.freeMin
}

func (k *Kernel) pageInWith(ctx context.Context, obj *Object, offset uint64, pager Pager, isFallback bool, winLo, winHi uint64) (retry bool, err error) {
	// Insert a busy anchor page first so concurrent faulters wait instead
	// of issuing duplicate requests.
	p, fresh, err := k.allocPage(obj, offset)
	if err != nil {
		return false, err
	}
	if !fresh {
		return true, nil
	}
	p.absent = true

	// Extend the run contiguously around the anchor within the cluster
	// window, claiming each neighbor as a fresh busy absent page.
	// Best-effort: the run stops at an already-resident neighbor, at an
	// allocation failure, or when free memory is too tight for readahead.
	lo, hi := k.clusterBounds(obj, pager, offset, winLo, winHi)
	var below, above []*Page
	for o := offset; o > lo && k.clusterAllocOK(); o -= k.pageSize {
		q, qfresh, qerr := k.allocPage(obj, o-k.pageSize)
		if qerr != nil || !qfresh {
			break
		}
		q.absent = true
		below = append(below, q) // nearest first
	}
	for o := offset + k.pageSize; o < hi && k.clusterAllocOK(); o += k.pageSize {
		q, qfresh, qerr := k.allocPage(obj, o)
		if qerr != nil || !qfresh {
			break
		}
		q.absent = true
		above = append(above, q)
	}

	f := &pagerFlight{done: make(chan struct{}), isFallback: isFallback}
	f.start = offset - uint64(len(below))*k.pageSize
	f.pages = make([]*Page, 0, len(below)+1+len(above))
	for i := len(below) - 1; i >= 0; i-- {
		f.pages = append(f.pages, below[i])
	}
	f.pages = append(f.pages, p)
	f.pages = append(f.pages, above...)
	f.errs = make([]error, len(f.pages))
	anchor := len(below)

	// The pager conversation happens with no locks held; raising
	// pagingInProgress keeps the object from being collapsed or torn down
	// while the request is in flight.
	obj.mu.Lock()
	obj.pagingInProgress++
	obj.mu.Unlock()

	k.registerFlight(obj, f)
	if ctx.Done() == nil {
		// The caller cannot be cancelled, so waiting for the flight is
		// the same as running it: skip the goroutine handoff. The
		// conversation is still bounded by the kernel's deadline.
		k.runClusterFlight(f, obj, pager, anchor)
	} else {
		go k.runClusterFlight(f, obj, pager, anchor)
	}
	return k.resolveFlight(ctx, obj, offset, f)
}

// SetPagerFallback selects the object's degradation policy for pager
// failures (timeouts and errors other than ErrDataUnavailable).
func (o *Object) SetPagerFallback(fb PagerFallback) {
	o.fallback.Store(int32(fb))
}

// PagerFallback returns the object's degradation policy.
func (o *Object) PagerFallback() PagerFallback {
	return PagerFallback(o.fallback.Load())
}
