package core

import (
	"context"
	"errors"
	"fmt"

	"machvm/internal/vmtypes"
)

// A pagerFlight is one in-flight DataRequest conversation for a single
// (object, offset). Flights are single-flight: the first faulter (the
// leader) allocates the busy page, registers the flight and runs the pager
// conversation; every concurrent faulter for the same page joins the
// flight and shares its outcome — including its error — instead of
// issuing a duplicate request or paying a fresh deadline of its own.
//
// The busy-page claim protocol survives abandonment: the flight, not any
// particular faulter, owns the page's busy bit. A faulter whose context is
// cancelled walks away immediately while the flight keeps running to its
// own deadline, after which it either fills the page (clearing busy) or
// frees it (waking every waiter) — a page can never stay busy forever
// because the thread that wanted it gave up.
type pagerFlight struct {
	// done is closed once the flight resolved the page: filled and
	// resident (err == nil), or removed (err != nil).
	done chan struct{}
	// err is valid only after done is closed.
	err error
	// isFallback marks a flight already running against the default swap
	// pager as a degradation, so a failure never re-applies FallbackSwap.
	isFallback bool
}

// Flight outcomes as seen by a waiter.
const (
	flightResident    = iota + 1 // page filled and resident: rewalk and claim it
	flightUnavailable            // definitive no-data: continue down the chain
	flightFailed                 // pager failure: apply the object's fallback
	flightAbandoned              // the caller's context fired first
)

// registerFlight publishes f as the in-flight request for key. Lock order:
// flightMu is a leaf (never held while taking a shard or object lock).
func (k *Kernel) registerFlight(key pageKey, f *pagerFlight) {
	k.flightMu.Lock()
	k.flights[key] = f
	k.flightMu.Unlock()
}

// flightFor returns the in-flight request for key, if any.
func (k *Kernel) flightFor(key pageKey) *pagerFlight {
	k.flightMu.Lock()
	f := k.flights[key]
	k.flightMu.Unlock()
	return f
}

// runPageInFlight runs the pager conversation for the flight's busy page
// and resolves it. On success the page is filled and woken; on failure
// (including ErrDataUnavailable) it is freed, so waiters parked on the
// busy channel re-look-up and find it gone. The flight is unregistered
// before the page is released either way, so a faulter can never join a
// flight whose page has already moved on.
func (k *Kernel) runPageInFlight(f *pagerFlight, key pageKey, p *Page, pager Pager) {
	obj, offset := key.obj, key.offset
	data, err := k.pagerRequestData(pager, obj, offset, int(k.pageSize))
	if err == nil {
		// Copy the pager's data into physical memory, charging the copy.
		// A short read zero-fills the tail.
		k.machine.ChargeKB(k.machine.Cost.CopyPerKB, len(data))
		hwPage := k.machine.Mem.PageSize()
		for i := 0; i < k.hwRatio; i++ {
			pfn := p.pfn + vmtypes.PFN(i)
			k.machine.Mem.LockFrame(pfn)
			frame := k.machine.Mem.Frame(pfn)
			lo := i * hwPage
			if lo >= len(data) {
				clear(frame)
			} else {
				n := copy(frame, data[lo:])
				clear(frame[n:])
			}
			k.machine.Mem.UnlockFrame(pfn)
		}
		p.absent = false
		k.stats.Pageins.Add(1)

		k.flightMu.Lock()
		delete(k.flights, key)
		k.flightMu.Unlock()
		obj.mu.Lock()
		obj.pagingInProgress--
		obj.mu.Unlock()
		f.err = nil
		k.pageWakeup(p)
		close(f.done)
		return
	}

	// Failure or no data: the busy page must not linger. Remove it and
	// wake anyone parked on it before publishing the outcome.
	k.flightMu.Lock()
	delete(k.flights, key)
	k.flightMu.Unlock()
	obj.mu.Lock()
	obj.pagingInProgress--
	obj.mu.Unlock()
	f.err = err
	k.freePage(p)
	close(f.done)
}

// awaitPageFlight waits for the flight's outcome, or for the caller's
// context — whichever comes first. An abandoning caller returns an error
// immediately; the flight continues in the background and resolves the
// busy page on its own deadline.
func (k *Kernel) awaitPageFlight(ctx context.Context, f *pagerFlight) (int, error) {
	if ctx.Done() != nil {
		select {
		case <-f.done:
		case <-ctx.Done():
			k.stats.PagerAbandons.Add(1)
			return flightAbandoned, fmt.Errorf("vm_fault: pager wait abandoned: %w", ctx.Err())
		}
	} else {
		<-f.done
	}
	if f.err == nil {
		return flightResident, nil
	}
	if errors.Is(f.err, ErrDataUnavailable) {
		return flightUnavailable, nil
	}
	return flightFailed, f.err
}

// resolveFlight waits for f and applies obj's degradation policy to a
// failure. It returns pageIn's pair: retry=true means the page is
// resident (rewalk the chain and claim it); retry=false with no error
// means "no data here" (continue down the shadow chain without re-asking
// this level's pager); an error aborts the fault.
func (k *Kernel) resolveFlight(ctx context.Context, obj *Object, offset uint64, f *pagerFlight) (retry bool, err error) {
	st, ferr := k.awaitPageFlight(ctx, f)
	switch st {
	case flightResident:
		return true, nil
	case flightUnavailable:
		return false, nil
	case flightAbandoned:
		// Caller context fired first: the fault is abandoned outright, no
		// fallback applies (the flight may yet succeed for others).
		return false, ferr
	}
	// flightFailed: degrade per the object's policy.
	switch fb := obj.PagerFallback(); {
	case fb == FallbackZeroFill:
		k.stats.PagerFallbacks.Add(1)
		return false, nil
	case fb == FallbackSwap && !f.isFallback:
		k.stats.PagerFallbacks.Add(1)
		return k.pageInFallback(ctx, obj, offset)
	default:
		return false, ferr
	}
}

// claimPageOrFlight looks up the resident page for (obj, offset) and
// busy-claims it. When the page is busy it first consults the flight
// table: a page owned by an in-flight pager request is joined (the flight
// is returned) rather than waited on, so a failure is delivered to every
// waiter at once. Other busy pages (pageout, clean, copy) are waited for
// on the per-key channel as before. Returns (nil, nil) when no page is
// resident.
func (k *Kernel) claimPageOrFlight(obj *Object, offset uint64) (*Page, *pagerFlight) {
	s := k.shardFor(obj, offset)
	key := pageKey{obj: obj, offset: offset}
	s.mu.Lock()
	for {
		p := s.pages[key]
		if p == nil {
			s.mu.Unlock()
			return nil, nil
		}
		if !p.busy {
			p.busy = true
			s.mu.Unlock()
			return p, nil
		}
		s.mu.Unlock()
		if f := k.flightFor(key); f != nil {
			k.stats.PagerFlightJoins.Add(1)
			return nil, f
		}
		s.mu.Lock()
		if p2 := s.pages[key]; p2 != p || !p.busy {
			continue // the page moved on while we checked the flights
		}
		k.stats.BusyWaits.Add(1)
		ch := s.waitChan(key)
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
}

// pageIn asks the object's pager for the page at offset, through a
// registered single-flight conversation bounded by the kernel's
// PagerPolicy. Returns as resolveFlight does: retry=true means rewalk the
// chain (the page is resident, or a concurrent faulter owns the offset);
// retry=false with no error means the pager has no data (or degradation
// chose zero-fill) and the caller continues down the chain.
func (k *Kernel) pageIn(ctx context.Context, obj *Object, offset uint64, pager Pager) (retry bool, err error) {
	return k.pageInWith(ctx, obj, offset, pager, pager == k.swap)
}

// pageInFallback is the FallbackSwap degradation read: ask the default
// pager for the data instead. Marked as a fallback so a swap failure
// surfaces instead of recursing.
func (k *Kernel) pageInFallback(ctx context.Context, obj *Object, offset uint64) (retry bool, err error) {
	return k.pageInWith(ctx, obj, offset, k.swap, true)
}

func (k *Kernel) pageInWith(ctx context.Context, obj *Object, offset uint64, pager Pager, isFallback bool) (retry bool, err error) {
	// Insert a busy page first so concurrent faulters wait instead of
	// issuing duplicate requests.
	p, fresh, err := k.allocPage(obj, offset)
	if err != nil {
		return false, err
	}
	if !fresh {
		return true, nil
	}
	p.absent = true

	// The pager conversation happens with no locks held; raising
	// pagingInProgress keeps the object from being collapsed or torn down
	// while the request is in flight.
	obj.mu.Lock()
	obj.pagingInProgress++
	obj.mu.Unlock()

	f := &pagerFlight{done: make(chan struct{}), isFallback: isFallback}
	key := pageKey{obj: obj, offset: offset}
	k.registerFlight(key, f)
	if ctx.Done() == nil {
		// The caller cannot be cancelled, so waiting for the flight is
		// the same as running it: skip the goroutine handoff. The
		// conversation is still bounded by the kernel's deadline.
		k.runPageInFlight(f, key, p, pager)
	} else {
		go k.runPageInFlight(f, key, p, pager)
	}
	return k.resolveFlight(ctx, obj, offset, f)
}

// SetPagerFallback selects the object's degradation policy for pager
// failures (timeouts and errors other than ErrDataUnavailable).
func (o *Object) SetPagerFallback(fb PagerFallback) {
	o.fallback.Store(int32(fb))
}

// PagerFallback returns the object's degradation policy.
func (o *Object) PagerFallback() PagerFallback {
	return PagerFallback(o.fallback.Load())
}
