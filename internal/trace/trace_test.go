package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: OpNewMap, Time: 10, Ret: 2},
		{Kind: OpAllocate, Time: 20, Map: 2, Addr: 0x1000, Size: 8192, Flag: true, Ret: 0x10000},
		{Kind: OpAccess, Time: 30, Map: 2, CPU: -1, Addr: 0x10000, Size: 16, Flag: true,
			Data: FillOf(bytes.Repeat([]byte{0xAB}, 16))},
		{Kind: OpFileCreate, Time: 40, Name: "obj/fork test program-0.o", Size: 5,
			Data: FillOf([]byte{1, 2, 3, 4, 5})},
		{Kind: EvFault, Time: 50, Map: 2, Addr: 0x10000, Arg: 3, Err: `quoted "err" text`},
		{Kind: OpCharge, Time: 60, CPU: -1, Arg: 12345},
	}
}

func TestEventStringParseRoundTrip(t *testing.T) {
	for _, e := range sampleEvents() {
		got, err := ParseEvent(e.String())
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", e.String(), err)
		}
		if !got.Equal(e) {
			t.Fatalf("round trip changed event:\n  in:  %s\n  out: %s", e, got)
		}
	}
}

func TestSplitFieldsQuotedSpaces(t *testing.T) {
	line := `a err="has spaces" name="back\\slash \"q\"" data=-`
	got := splitFields(line)
	want := []string{"a", `err="has spaces"`, `name="back\\slash \"q\""`, "data=-"}
	if len(got) != len(want) {
		t.Fatalf("got %d fields %q, want %d", len(got), got, len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("field %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestTraceEncodeDecode(t *testing.T) {
	tr := &Trace{
		Header: Header{Arch: 1, MemoryMB: 8, CPUs: 2, DiskMB: 16, ObjectCache: 64, Strategy: 1, PageSize: 4096},
		Events: sampleEvents(),
		Clock:  123456,
		Stats:  "{Faults:3 ZeroFills:2}",
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Header != tr.Header {
		t.Fatalf("header changed: %+v vs %+v", got.Header, tr.Header)
	}
	if got.Clock != tr.Clock || got.Stats != tr.Stats {
		t.Fatalf("footer changed: clock=%d stats=%q", got.Clock, got.Stats)
	}
	if d := Diff(tr.Events, got.Events); d != "" {
		t.Fatalf("events changed: %s", d)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	tr := &Trace{Header: Header{PageSize: 4096}, Events: sampleEvents()}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	truncated := strings.Join(lines[:len(lines)-2], "\n") + "\n" + lines[len(lines)-1] + "\n"
	if _, err := Decode(strings.NewReader(truncated)); err == nil {
		t.Fatal("decode accepted a trace with a missing event")
	}
}

func TestDiff(t *testing.T) {
	a := sampleEvents()
	if d := Diff(a, sampleEvents()); d != "" {
		t.Fatalf("identical streams diff: %s", d)
	}
	b := sampleEvents()
	b[2].Time++
	if d := Diff(a, b); d == "" || !strings.Contains(d, "event 2") {
		t.Fatalf("want divergence at event 2, got %q", d)
	}
	if d := Diff(a, a[:len(a)-1]); d == "" {
		t.Fatal("want divergence on shorter stream")
	}
	if d := Diff(a[:len(a)-1], a); d == "" {
		t.Fatal("want divergence on longer stream")
	}
}

func TestDataFill(t *testing.T) {
	uni := FillOf(bytes.Repeat([]byte{7}, 100))
	if !uni.Uniform || uni.Byte != 7 || uni.Len != 100 {
		t.Fatalf("uniform fill not detected: %+v", uni)
	}
	raw := FillOf([]byte{1, 2, 3})
	if raw.Uniform {
		t.Fatalf("non-uniform detected as uniform: %+v", raw)
	}
	for _, d := range []DataFill{uni, raw, {}} {
		dec, err := decodeData(d.encode())
		if err != nil {
			t.Fatalf("decodeData(%q): %v", d.encode(), err)
		}
		if !bytes.Equal(dec.Bytes(), d.Bytes()) || dec.Len != d.Len {
			t.Fatalf("data round trip changed: %q", d.encode())
		}
	}
}

func TestLogDepth(t *testing.T) {
	l := NewLog()
	if !l.BeginOp() {
		t.Fatal("outermost BeginOp must report true")
	}
	if l.BeginOp() {
		t.Fatal("nested BeginOp must report false")
	}
	l.EndOp()
	if l.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", l.Depth())
	}
	l.EndOp()
	if l.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", l.Depth())
	}
}
