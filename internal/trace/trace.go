// Package trace records the externally visible events of a VM kernel —
// map operations, faults, pager conversations, pageout decisions — as a
// portable, deterministic event stream stamped with the virtual clock.
//
// The stream has two species of event:
//
//   - Input ops (Op*): the calls a driver made into the kernel. A replayer
//     re-executes exactly these against a fresh kernel.
//   - Observations (Ev*): what the kernel did while servicing those ops
//     (faults taken, pager round trips, reclaim decisions). A replayer never
//     executes these; it verifies that the fresh kernel reproduces them
//     bit-for-bit, timestamps included.
//
// Only top-level ops are recorded: an op issued while another op is being
// serviced (Wire faulting pages in, Copy deallocating its destination) is an
// implementation detail that replay regenerates. The Log owns the nesting
// depth counter that enforces this; recording is therefore single-threaded
// by contract (see DESIGN.md §11 for the full determinism requirements).
package trace

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind identifies one event type.
type Kind uint8

const (
	KindInvalid Kind = iota

	// Input ops: replayed.
	OpNewMap        // Ret=map id
	OpDestroyMap    // Map
	OpActivate      // Map, CPU
	OpDeactivate    // Map, CPU
	OpAllocate      // Map, Addr=hint, Size, Flag=anywhere, Ret=addr
	OpAllocObject   // Map, Obj, Addr=hint, Addr2=offset, Size, Flag=anywhere, Arg=prot|maxProt<<8|inherit<<16|cow<<24, Ret=addr
	OpDeallocate    // Map, Addr, Size
	OpProtect       // Map, Addr, Size, Flag=setMax, Arg=prot
	OpInherit       // Map, Addr, Size, Arg=inherit
	OpWire          // Map, Addr, Size
	OpUnwire        // Map, Addr, Size
	OpCopy          // Map, Addr=src, Size, Addr2=dst
	OpCopyTo        // Map=src, Map2=dst, Addr=srcAddr, Size, Addr2=dstAddr hint, Flag=anywhere, Ret=dstAddr
	OpFork          // Map, Ret=child map id
	OpFault         // Map, Addr, Arg=access
	OpAccess        // Map, CPU, Addr, Size, Flag=write, Data=write payload, Ret=bytes done
	OpVMRead        // Map, Addr, Size, Ret=bytes read
	OpVMWrite       // Map, Addr, Data, Ret=bytes written
	OpScan          // Ret=pages freed
	OpCharge        // Arg=ns charged directly on the machine by a driver
	OpFileCreate    // Name, Data
	OpFileObject    // Name, Ret=obj id
	OpReleaseObject // Obj

	// Observations: verified, never replayed.
	EvFault      // Map, Addr, Arg=access
	EvPagerRead  // Obj, Addr=offset, Size=bytes asked, Ret=bytes returned
	EvPagerWrite // Obj, Addr=offset, Size=bytes written
	EvReclaim    // Obj, Addr=offset, Flag=dirty
	EvScan       // Ret=pages freed
)

var kindNames = map[Kind]string{
	OpNewMap: "new-map", OpDestroyMap: "destroy-map",
	OpActivate: "activate", OpDeactivate: "deactivate",
	OpAllocate: "allocate", OpAllocObject: "alloc-object",
	OpDeallocate: "deallocate", OpProtect: "protect", OpInherit: "inherit",
	OpWire: "wire", OpUnwire: "unwire",
	OpCopy: "copy", OpCopyTo: "copy-to", OpFork: "fork",
	OpFault: "fault", OpAccess: "access",
	OpVMRead: "vm-read", OpVMWrite: "vm-write",
	OpScan: "scan", OpCharge: "charge",
	OpFileCreate: "file-create", OpFileObject: "file-object",
	OpReleaseObject: "release-object",
	EvFault:         "ev-fault", EvPagerRead: "ev-pager-read",
	EvPagerWrite: "ev-pager-write", EvReclaim: "ev-reclaim", EvScan: "ev-scan",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsOp reports whether k is an input op (replayed) as opposed to an
// observation (verified only).
func (k Kind) IsOp() bool { return k >= OpNewMap && k <= OpReleaseObject }

// DataFill is a byte payload with uniform-fill compression: the workloads
// write bytes.Repeat patterns, so most payloads encode as (len, byte).
type DataFill struct {
	Len     int
	Uniform bool   // every byte is Byte
	Byte    byte   // fill value when Uniform
	Raw     []byte // exact bytes when !Uniform and Len > 0
}

// FillOf captures b, detecting a uniform fill. It copies non-uniform data.
func FillOf(b []byte) DataFill {
	if len(b) == 0 {
		return DataFill{}
	}
	uniform := true
	for _, c := range b {
		if c != b[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return DataFill{Len: len(b), Uniform: true, Byte: b[0]}
	}
	return DataFill{Len: len(b), Raw: bytes.Clone(b)}
}

// Bytes materializes the payload.
func (d DataFill) Bytes() []byte {
	if d.Len == 0 {
		return nil
	}
	if d.Uniform {
		return bytes.Repeat([]byte{d.Byte}, d.Len)
	}
	return bytes.Clone(d.Raw)
}

func (d DataFill) encode() string {
	switch {
	case d.Len == 0:
		return "-"
	case d.Uniform:
		return fmt.Sprintf("fill:%d:%d", d.Len, d.Byte)
	default:
		return "raw:" + base64.StdEncoding.EncodeToString(d.Raw)
	}
}

func decodeData(s string) (DataFill, error) {
	switch {
	case s == "-":
		return DataFill{}, nil
	case strings.HasPrefix(s, "fill:"):
		var n int
		var b int
		if _, err := fmt.Sscanf(s, "fill:%d:%d", &n, &b); err != nil {
			return DataFill{}, fmt.Errorf("bad fill %q: %v", s, err)
		}
		return DataFill{Len: n, Uniform: true, Byte: byte(b)}, nil
	case strings.HasPrefix(s, "raw:"):
		raw, err := base64.StdEncoding.DecodeString(s[len("raw:"):])
		if err != nil {
			return DataFill{}, fmt.Errorf("bad raw data: %v", err)
		}
		return DataFill{Len: len(raw), Raw: raw}, nil
	default:
		return DataFill{}, fmt.Errorf("bad data field %q", s)
	}
}

// Event is one trace record. Field meaning is per Kind (see the Kind
// constants); unused fields stay zero so events compare with ==, modulo Data.
type Event struct {
	Kind  Kind
	Time  int64  // virtual clock (ns) when the event completed
	Map   uint64 // primary map id
	Map2  uint64 // secondary map id (CopyTo destination)
	Obj   uint64 // object id
	CPU   int64  // cpu index, -1 when none
	Addr  uint64 // va or pager offset
	Addr2 uint64 // secondary address (copy dst, alloc-object offset)
	Size  uint64
	Arg   int64  // prot / inherit / access / charge ns
	Flag  bool   // anywhere / write / setMax / dirty
	Ret   uint64 // result value: returned address, child id, count
	Err   string // error text, "" on success
	Name  string // file name
	Data  DataFill
}

// Equal reports whether two events are bit-identical.
func (e Event) Equal(o Event) bool {
	return e.Kind == o.Kind && e.Time == o.Time && e.Map == o.Map &&
		e.Map2 == o.Map2 && e.Obj == o.Obj && e.CPU == o.CPU &&
		e.Addr == o.Addr && e.Addr2 == o.Addr2 && e.Size == o.Size &&
		e.Arg == o.Arg && e.Flag == o.Flag && e.Ret == o.Ret &&
		e.Err == o.Err && e.Name == o.Name &&
		e.Data.Len == o.Data.Len && bytes.Equal(e.Data.Bytes(), o.Data.Bytes())
}

// String renders the event as its one-line trace encoding.
func (e Event) String() string {
	return fmt.Sprintf("%s t=%d map=%d map2=%d obj=%d cpu=%d addr=%#x addr2=%#x size=%d arg=%d flag=%t ret=%#x err=%s name=%s data=%s",
		e.Kind, e.Time, e.Map, e.Map2, e.Obj, e.CPU, e.Addr, e.Addr2,
		e.Size, e.Arg, e.Flag, e.Ret,
		strconv.Quote(e.Err), strconv.Quote(e.Name), e.Data.encode())
}

// splitFields splits an event line on spaces, except inside double-quoted
// regions (err= and name= values are %q-quoted and may contain spaces).
func splitFields(line string) []string {
	var fields []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(line):
			cur.WriteByte(c)
			i++
			cur.WriteByte(line[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ' ' && !inQuote:
			if cur.Len() > 0 {
				fields = append(fields, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		fields = append(fields, cur.String())
	}
	return fields
}

// ParseEvent decodes one event line produced by Event.String.
func ParseEvent(line string) (Event, error) {
	fields := splitFields(line)
	if len(fields) != 15 {
		return Event{}, fmt.Errorf("bad event line (%d fields): %q", len(fields), line)
	}
	var e Event
	var ok bool
	e.Kind, ok = kindByName[fields[0]]
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", fields[0])
	}
	get := func(i int, prefix string) (string, error) {
		if !strings.HasPrefix(fields[i], prefix) {
			return "", fmt.Errorf("field %d: want prefix %q, got %q", i, prefix, fields[i])
		}
		return fields[i][len(prefix):], nil
	}
	var err error
	parse := []struct {
		prefix string
		fn     func(string) error
	}{
		{"t=", func(s string) error { e.Time, err = strconv.ParseInt(s, 10, 64); return err }},
		{"map=", func(s string) error { e.Map, err = strconv.ParseUint(s, 10, 64); return err }},
		{"map2=", func(s string) error { e.Map2, err = strconv.ParseUint(s, 10, 64); return err }},
		{"obj=", func(s string) error { e.Obj, err = strconv.ParseUint(s, 10, 64); return err }},
		{"cpu=", func(s string) error { e.CPU, err = strconv.ParseInt(s, 10, 64); return err }},
		{"addr=", func(s string) error { e.Addr, err = strconv.ParseUint(s, 0, 64); return err }},
		{"addr2=", func(s string) error { e.Addr2, err = strconv.ParseUint(s, 0, 64); return err }},
		{"size=", func(s string) error { e.Size, err = strconv.ParseUint(s, 10, 64); return err }},
		{"arg=", func(s string) error { e.Arg, err = strconv.ParseInt(s, 10, 64); return err }},
		{"flag=", func(s string) error { e.Flag, err = strconv.ParseBool(s); return err }},
		{"ret=", func(s string) error { e.Ret, err = strconv.ParseUint(s, 0, 64); return err }},
		{"err=", func(s string) error { e.Err, err = strconv.Unquote(s); return err }},
		{"name=", func(s string) error { e.Name, err = strconv.Unquote(s); return err }},
		{"data=", func(s string) error { e.Data, err = decodeData(s); return err }},
	}
	for i, p := range parse {
		v, gerr := get(i+1, p.prefix)
		if gerr != nil {
			return Event{}, gerr
		}
		if perr := p.fn(v); perr != nil {
			return Event{}, fmt.Errorf("field %s%s: %v", p.prefix, v, perr)
		}
	}
	return e, nil
}

// Log is an append-only event log. It also owns the op nesting depth
// counter: layers that record composite operations bracket them with
// BeginOp/EndOp, and only the outermost bracket records the op.
type Log struct {
	mu     sync.Mutex
	events []Event
	depth  atomic.Int32
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append adds one event.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// BeginOp enters an op bracket; it reports whether this bracket is the
// outermost one (and should therefore record the op). Pair with EndOp.
func (l *Log) BeginOp() bool { return l.depth.Add(1) == 1 }

// EndOp leaves an op bracket.
func (l *Log) EndOp() { l.depth.Add(-1) }

// Depth returns the current op nesting depth. Driver-level hooks (machine
// charges) record only at depth 0 so charges made while servicing a
// recorded op are not double-counted.
func (l *Log) Depth() int { return int(l.depth.Load()) }

// Len returns the number of events recorded so far.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Header describes the world a trace was recorded on; a replayer boots an
// identical one.
type Header struct {
	Arch        int
	MemoryMB    int
	CPUs        int
	DiskMB      int
	ObjectCache int
	Strategy    int
	PageSize    uint64
}

// Trace is a complete recording: the world it ran on, the event stream, and
// the final virtual clock and stats snapshot for end-state verification.
type Trace struct {
	Header Header
	Events []Event
	Clock  int64
	Stats  string // deterministic rendering of the final stats snapshot
}

const traceMagic = "machvm-trace v1"

// Encode writes the trace in its line-oriented text format.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, traceMagic)
	h := t.Header
	fmt.Fprintf(bw, "world arch=%d mem=%d cpus=%d disk=%d objcache=%d strategy=%d pagesize=%d\n",
		h.Arch, h.MemoryMB, h.CPUs, h.DiskMB, h.ObjectCache, h.Strategy, h.PageSize)
	for _, e := range t.Events {
		fmt.Fprintln(bw, e.String())
	}
	fmt.Fprintf(bw, "end events=%d clock=%d stats=%s\n",
		len(t.Events), t.Clock, strconv.Quote(t.Stats))
	return bw.Flush()
}

// Decode parses a trace written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() || sc.Text() != traceMagic {
		return nil, fmt.Errorf("not a machvm trace (missing %q header)", traceMagic)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("truncated trace: missing world line")
	}
	t := &Trace{}
	h := &t.Header
	if _, err := fmt.Sscanf(sc.Text(), "world arch=%d mem=%d cpus=%d disk=%d objcache=%d strategy=%d pagesize=%d",
		&h.Arch, &h.MemoryMB, &h.CPUs, &h.DiskMB, &h.ObjectCache, &h.Strategy, &h.PageSize); err != nil {
		return nil, fmt.Errorf("bad world line %q: %v", sc.Text(), err)
	}
	sawEnd := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "end ") {
			var n int
			var clock int64
			rest := line
			if i := strings.Index(line, "stats="); i >= 0 {
				rest = line[:i]
				stats, err := strconv.Unquote(strings.TrimSpace(line[i+len("stats="):]))
				if err != nil {
					return nil, fmt.Errorf("bad end stats: %v", err)
				}
				t.Stats = stats
			}
			if _, err := fmt.Sscanf(rest, "end events=%d clock=%d", &n, &clock); err != nil {
				return nil, fmt.Errorf("bad end line %q: %v", line, err)
			}
			if n != len(t.Events) {
				return nil, fmt.Errorf("trace truncated: end says %d events, read %d", n, len(t.Events))
			}
			t.Clock = clock
			sawEnd = true
			break
		}
		e, err := ParseEvent(line)
		if err != nil {
			return nil, fmt.Errorf("event %d: %v", len(t.Events), err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEnd {
		return nil, fmt.Errorf("truncated trace: missing end line")
	}
	return t, nil
}

// Diff compares two event streams and describes the first divergence.
// It returns "" when the streams are bit-identical.
func Diff(recorded, replayed []Event) string {
	n := len(recorded)
	if len(replayed) < n {
		n = len(replayed)
	}
	for i := 0; i < n; i++ {
		if !recorded[i].Equal(replayed[i]) {
			return fmt.Sprintf("event %d diverged:\n  recorded: %s\n  replayed: %s",
				i, recorded[i], replayed[i])
		}
	}
	if len(recorded) != len(replayed) {
		extra, who := recorded, "recorded"
		if len(replayed) > len(recorded) {
			extra, who = replayed, "replayed"
		}
		return fmt.Sprintf("event count diverged: recorded=%d replayed=%d; first extra %s event:\n  %s",
			len(recorded), len(replayed), who, extra[n])
	}
	return ""
}
