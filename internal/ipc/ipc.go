// Package ipc implements the Mach communication abstractions of §2:
// ports — kernel-protected message queues used as object references — and
// typed messages, which may carry port capabilities and out-of-line memory
// moved by copy-on-write mapping rather than physical copy.
//
// The key to efficiency in Mach is that virtual memory management is
// integrated with the message facility: "large amounts of data including
// whole files and even whole address spaces [can] be sent in a single
// message with the efficiency of simple memory remapping". Out-of-line
// regions here ride exactly that machinery (core.Map.CopyTo).
package ipc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"machvm/internal/core"
	"machvm/internal/vmtypes"
)

// IPC errors.
var (
	// ErrPortDead means the port has been destroyed.
	ErrPortDead = errors.New("ipc: port is dead")
	// ErrWouldBlock is returned by non-blocking receives on empty ports.
	ErrWouldBlock = errors.New("ipc: no message available")
)

// MsgID identifies the operation a message requests.
type MsgID uint32

// A small well-known ID space for the kernel interfaces; user protocols
// may use any values at or above MsgUserBase.
const (
	MsgInvalid MsgID = iota
	// Kernel → external pager (Table 3-1).
	MsgPagerInit
	MsgPagerCreate
	MsgPagerDataRequest
	MsgPagerDataUnlock
	MsgPagerDataWrite
	// External pager → kernel (Table 3-2).
	MsgPagerDataProvided
	MsgPagerDataUnavailable
	MsgPagerDataLock
	MsgPagerCleanRequest
	MsgPagerFlushRequest
	MsgPagerReadonly
	MsgPagerCache
	// Task control.
	MsgTaskSuspend
	MsgTaskResume

	// MsgUserBase is the first ID available to user protocols.
	MsgUserBase MsgID = 0x1000
)

// TypeTag describes a typed data item in a message, in the spirit of
// Mach's typed message format.
type TypeTag uint8

// Message item types.
const (
	TypeInt TypeTag = iota
	TypeBytes
	TypeString
	TypePort
	TypeOOL
)

// Item is one typed datum.
type Item struct {
	Tag   TypeTag
	Int   uint64
	Bytes []byte
	Str   string
	Port  *Port
	OOL   *OOLRegion
}

// OOLRegion is out-of-line data: a memory region detached from the
// sender's address space at send time (held copy-on-write in a transit
// map) and mapped into the receiver at receive time.
type OOLRegion struct {
	transit *core.Map
	base    vmtypes.VA
	size    uint64
}

// Size returns the region's size in bytes.
func (o *OOLRegion) Size() uint64 { return o.size }

// Message is a typed collection of data objects used in communication
// between threads (§2). It may be of any size and may contain port
// capabilities and out-of-line memory.
type Message struct {
	ID    MsgID
	Items []Item
	// Reply is the port to answer on, if the operation expects one.
	Reply *Port
	// Remote names the sender for diagnostics.
	Remote string
}

// intItem, bytesItem etc. are convenience constructors.

// Int builds an integer item.
func Int(v uint64) Item { return Item{Tag: TypeInt, Int: v} }

// Bytes builds a byte-slice item.
func Bytes(b []byte) Item { return Item{Tag: TypeBytes, Bytes: b} }

// String builds a string item.
func String(s string) Item { return Item{Tag: TypeString, Str: s} }

// PortItem builds a port-capability item.
func PortItem(p *Port) Item { return Item{Tag: TypePort, Port: p} }

// Port is a communication channel: logically a queue for messages
// protected by the kernel, used the way object references would be used in
// an object-oriented system (§2).
type Port struct {
	name string
	id   uint64

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*Message
	dead  bool
	limit int
	sends atomic.Uint64
	recvs atomic.Uint64
}

var portIDs atomic.Uint64

// NewPort allocates a port. The name is a debugging label.
func NewPort(name string) *Port {
	p := &Port{name: name, id: portIDs.Add(1), limit: 1024}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Name returns the port's debugging label.
func (p *Port) Name() string { return p.name }

// ID returns a unique port identifier.
func (p *Port) ID() uint64 { return p.id }

// String renders the port for diagnostics.
func (p *Port) String() string { return fmt.Sprintf("port(%s#%d)", p.name, p.id) }

// Send enqueues a message. Send is the fundamental primitive operation on
// ports, together with Receive.
func (p *Port) Send(m *Message) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.dead && len(p.queue) >= p.limit {
		p.cond.Wait()
	}
	if p.dead {
		return ErrPortDead
	}
	p.queue = append(p.queue, m)
	p.sends.Add(1)
	p.cond.Broadcast()
	return nil
}

// Receive dequeues the next message, blocking until one arrives or the
// port dies.
func (p *Port) Receive() (*Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 && !p.dead {
		p.cond.Wait()
	}
	if len(p.queue) == 0 {
		return nil, ErrPortDead
	}
	m := p.queue[0]
	p.queue = p.queue[1:]
	p.recvs.Add(1)
	p.cond.Broadcast()
	return m, nil
}

// TryReceive dequeues a message without blocking.
func (p *Port) TryReceive() (*Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead && len(p.queue) == 0 {
		return nil, ErrPortDead
	}
	if len(p.queue) == 0 {
		return nil, ErrWouldBlock
	}
	m := p.queue[0]
	p.queue = p.queue[1:]
	p.recvs.Add(1)
	p.cond.Broadcast()
	return m, nil
}

// Destroy kills the port; blocked senders and receivers fail.
func (p *Port) Destroy() {
	p.mu.Lock()
	p.dead = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Pending returns the queued message count.
func (p *Port) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Traffic returns the send and receive counts.
func (p *Port) Traffic() (sends, recvs uint64) {
	return p.sends.Load(), p.recvs.Load()
}

// MoveOut detaches [addr, addr+size) of the sender's map into an
// out-of-line region: a copy-on-write snapshot with no physical copying.
// If dealloc is true the range is removed from the sender afterwards
// (move semantics, as used for whole-address-space transfers).
func MoveOut(k *core.Kernel, src *core.Map, addr vmtypes.VA, size uint64, dealloc bool) (*OOLRegion, error) {
	k.Machine().Charge(k.Machine().Cost.MsgOp)
	transit := k.NewTransitMap(size)
	base, err := src.CopyTo(transit, addr, size, 0, true)
	if err != nil {
		transit.Destroy()
		return nil, err
	}
	if dealloc {
		if err := src.Deallocate(addr, size); err != nil {
			transit.Destroy()
			return nil, err
		}
	}
	return &OOLRegion{transit: transit, base: base, size: size}, nil
}

// MoveIn maps an out-of-line region into the receiver's address space and
// consumes the region. It returns the chosen address.
func (o *OOLRegion) MoveIn(k *core.Kernel, dst *core.Map) (vmtypes.VA, error) {
	k.Machine().Charge(k.Machine().Cost.MsgOp)
	if o.transit == nil {
		return 0, errors.New("ipc: out-of-line region already consumed")
	}
	va, err := o.transit.CopyTo(dst, o.base, o.size, 0, true)
	if err != nil {
		return 0, err
	}
	o.transit.Destroy()
	o.transit = nil
	return va, nil
}

// Discard drops an unconsumed region.
func (o *OOLRegion) Discard() {
	if o.transit != nil {
		o.transit.Destroy()
		o.transit = nil
	}
}

// OOLItem builds an out-of-line data item from a sender region.
func OOLItem(k *core.Kernel, src *core.Map, addr vmtypes.VA, size uint64, dealloc bool) (Item, error) {
	r, err := MoveOut(k, src, addr, size, dealloc)
	if err != nil {
		return Item{}, err
	}
	return Item{Tag: TypeOOL, OOL: r}, nil
}
