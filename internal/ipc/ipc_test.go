package ipc_test

import (
	"bytes"
	"sync"
	"testing"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/ipc"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
)

func newKernel(t testing.TB) (*core.Kernel, *hw.Machine) {
	t.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.DefaultCost(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 4096,
		CPUs:       2,
		TLBSize:    64,
	})
	mod := vax.New(machine, pmap.ShootImmediate)
	return core.MustNewKernel(core.Config{Machine: machine, Module: mod, PageSize: 4096}), machine
}

func TestPortSendReceive(t *testing.T) {
	p := ipc.NewPort("test")
	go func() {
		_ = p.Send(&ipc.Message{ID: ipc.MsgUserBase, Items: []ipc.Item{ipc.String("hi")}})
	}()
	m, err := p.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if m.Items[0].Str != "hi" {
		t.Fatalf("got %q", m.Items[0].Str)
	}
	if _, err := p.TryReceive(); err != ipc.ErrWouldBlock {
		t.Fatalf("TryReceive on empty = %v; want ErrWouldBlock", err)
	}
	p.Destroy()
	if err := p.Send(&ipc.Message{}); err != ipc.ErrPortDead {
		t.Fatalf("send to dead port = %v; want ErrPortDead", err)
	}
	if _, err := p.Receive(); err != ipc.ErrPortDead {
		t.Fatalf("receive from dead port = %v; want ErrPortDead", err)
	}
}

func TestPortFIFOAndConcurrency(t *testing.T) {
	p := ipc.NewPort("fifo")
	const n = 200
	for i := 0; i < n; i++ {
		if err := p.Send(&ipc.Message{ID: ipc.MsgID(ipc.MsgUserBase) + ipc.MsgID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m, err := p.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if m.ID != ipc.MsgID(ipc.MsgUserBase)+ipc.MsgID(i) {
			t.Fatalf("out of order: got %d at %d", m.ID, i)
		}
	}

	// Concurrent senders/receivers do not lose messages.
	var wg sync.WaitGroup
	const senders, per = 8, 50
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = p.Send(&ipc.Message{ID: ipc.MsgUserBase})
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < senders*per {
			if _, err := p.Receive(); err != nil {
				return
			}
			got++
		}
	}()
	wg.Wait()
	<-done
	if got != senders*per {
		t.Fatalf("received %d of %d", got, senders*per)
	}
}

func TestOOLTransferIsCopyOnWrite(t *testing.T) {
	k, machine := newKernel(t)
	sender := k.NewMap()
	receiver := k.NewMap()
	defer sender.Destroy()
	defer receiver.Destroy()
	cpuS, cpuR := machine.CPU(0), machine.CPU(1)
	sender.Pmap().Activate(cpuS)
	receiver.Pmap().Activate(cpuR)

	const size = 256 * 1024
	addr, err := sender.Allocate(0, size, true)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), size/16)
	if err := k.AccessBytes(cpuS, sender, addr, payload, true); err != nil {
		t.Fatal(err)
	}

	copiesBefore := k.Stats().CowFaults.Load()
	port := ipc.NewPort("ool")
	item, err := ipc.OOLItem(k, sender, addr, size, false)
	if err != nil {
		t.Fatalf("OOLItem: %v", err)
	}
	if err := port.Send(&ipc.Message{ID: ipc.MsgUserBase, Items: []ipc.Item{item}}); err != nil {
		t.Fatal(err)
	}
	msg, err := port.Receive()
	if err != nil {
		t.Fatal(err)
	}
	rAddr, err := msg.Items[0].OOL.MoveIn(k, receiver)
	if err != nil {
		t.Fatalf("MoveIn: %v", err)
	}
	// The transfer itself must not have copied page data.
	if got := k.Stats().CowFaults.Load(); got != copiesBefore {
		t.Fatalf("OOL transfer physically copied %d pages", got-copiesBefore)
	}

	// Receiver sees the payload.
	got := make([]byte, size)
	if err := k.AccessBytes(cpuR, receiver, rAddr, got, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after OOL transfer")
	}

	// Writes after the transfer do not leak either way.
	if err := k.AccessBytes(cpuS, sender, addr, []byte{0xFF}, true); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if err := k.AccessBytes(cpuR, receiver, rAddr, b, false); err != nil {
		t.Fatal(err)
	}
	if b[0] != payload[0] {
		t.Fatal("sender write leaked into receiver after transfer")
	}
}

func TestOOLMoveSemantics(t *testing.T) {
	k, machine := newKernel(t)
	sender := k.NewMap()
	receiver := k.NewMap()
	defer sender.Destroy()
	defer receiver.Destroy()
	cpu := machine.CPU(0)
	sender.Pmap().Activate(cpu)

	addr, _ := sender.Allocate(0, 8192, true)
	if err := k.AccessBytes(cpu, sender, addr, []byte{42}, true); err != nil {
		t.Fatal(err)
	}
	region, err := ipc.MoveOut(k, sender, addr, 8192, true)
	if err != nil {
		t.Fatal(err)
	}
	// Moved out: the sender's range is gone.
	if err := k.Touch(cpu, sender, addr, false); err == nil {
		t.Fatal("moved-out range still accessible in sender")
	}
	rAddr, err := region.MoveIn(k, receiver)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.VMRead(receiver, rAddr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("receiver sees %d; want 42", got[0])
	}
	// Double consume fails.
	if _, err := region.MoveIn(k, receiver); err == nil {
		t.Fatal("double MoveIn must fail")
	}
}

func TestPortCapabilityTransfer(t *testing.T) {
	// Ports can be carried in messages and used by the receiver — the
	// object-reference style of §2.
	service := ipc.NewPort("service")
	intro := ipc.NewPort("intro")
	if err := intro.Send(&ipc.Message{ID: ipc.MsgUserBase, Items: []ipc.Item{ipc.PortItem(service)}}); err != nil {
		t.Fatal(err)
	}
	m, _ := intro.Receive()
	carried := m.Items[0].Port
	go func() { _ = carried.Send(&ipc.Message{ID: ipc.MsgUserBase + 1}) }()
	reply, err := service.Receive()
	if err != nil || reply.ID != ipc.MsgUserBase+1 {
		t.Fatalf("reply %v err %v", reply, err)
	}
}

func TestPortAccessors(t *testing.T) {
	p := ipc.NewPort("acc")
	if p.Name() != "acc" || p.ID() == 0 || p.String() == "" {
		t.Fatal("port accessors broken")
	}
	if p.Pending() != 0 {
		t.Fatal("fresh port has pending messages")
	}
	_ = p.Send(&ipc.Message{ID: ipc.MsgUserBase})
	if p.Pending() != 1 {
		t.Fatal("Pending should count")
	}
	if _, err := p.TryReceive(); err != nil {
		t.Fatal(err)
	}
	sends, recvs := p.Traffic()
	if sends != 1 || recvs != 1 {
		t.Fatalf("traffic = %d/%d", sends, recvs)
	}
	p.Destroy()
	if _, err := p.TryReceive(); err != ipc.ErrPortDead {
		t.Fatalf("TryReceive on dead empty port = %v", err)
	}
}

func TestItemConstructors(t *testing.T) {
	if ipc.Int(7).Int != 7 || ipc.Int(7).Tag != ipc.TypeInt {
		t.Fatal("Int item wrong")
	}
	if string(ipc.Bytes([]byte("x")).Bytes) != "x" || ipc.Bytes(nil).Tag != ipc.TypeBytes {
		t.Fatal("Bytes item wrong")
	}
	if ipc.String("s").Str != "s" || ipc.String("s").Tag != ipc.TypeString {
		t.Fatal("String item wrong")
	}
	port := ipc.NewPort("cap")
	if ipc.PortItem(port).Port != port || ipc.PortItem(port).Tag != ipc.TypePort {
		t.Fatal("Port item wrong")
	}
}

func TestOOLDiscardAndErrors(t *testing.T) {
	k, machine := newKernel(t)
	sender := k.NewMap()
	defer sender.Destroy()
	cpu := machine.CPU(0)
	sender.Pmap().Activate(cpu)

	// MoveOut of unallocated memory fails cleanly.
	if _, err := ipc.MoveOut(k, sender, 0x100000, 8192, false); err == nil {
		t.Fatal("MoveOut of a hole should fail")
	}

	addr, _ := sender.Allocate(0, 8192, true)
	if err := k.AccessBytes(cpu, sender, addr, []byte{1}, true); err != nil {
		t.Fatal(err)
	}
	region, err := ipc.MoveOut(k, sender, addr, 8192, false)
	if err != nil {
		t.Fatal(err)
	}
	if region.Size() != 8192 {
		t.Fatalf("Size = %d", region.Size())
	}
	region.Discard()
	receiver := k.NewMap()
	defer receiver.Destroy()
	if _, err := region.MoveIn(k, receiver); err == nil {
		t.Fatal("MoveIn after Discard must fail")
	}
	// Discard is idempotent.
	region.Discard()

	// OOLItem wraps MoveOut.
	item, err := ipc.OOLItem(k, sender, addr, 8192, false)
	if err != nil || item.Tag != ipc.TypeOOL || item.OOL == nil {
		t.Fatalf("OOLItem = %+v, %v", item, err)
	}
	item.OOL.Discard()
	if _, err := ipc.OOLItem(k, sender, 0x200000, 8192, false); err == nil {
		t.Fatal("OOLItem of a hole should fail")
	}
}
