package hw

// Exact-total flush correctness: concurrent chargers, flushers and
// batching-mode flips must conspire to deliver every charged nanosecond
// to the clock exactly once. Run with -race.

import (
	"sync"
	"testing"
)

func TestChargeFlushConcurrentExact(t *testing.T) {
	const (
		nCPUs   = 4
		iters   = 5000
		perIter = 7
	)
	m := NewMachine(Config{HWPageSize: 512, PhysFrames: 16, CPUs: nCPUs, TLBSize: 8})

	var wg sync.WaitGroup
	for i := 0; i < nCPUs; i++ {
		wg.Add(1)
		go func(cpu *CPU) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				cpu.Charge(perIter)
				if j%64 == 0 {
					cpu.FlushCharges()
				}
				if j%97 == 0 {
					cpu.Tick()
				}
			}
		}(m.CPU(i))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			m.SetUnbatchedCharging(i%2 == 0)
		}
		m.SetUnbatchedCharging(false)
	}()
	wg.Wait()
	m.FlushAllCharges()

	want := int64(nCPUs) * iters * perIter
	if got := m.Clock.Now(); got != want {
		t.Fatalf("clock total %d after concurrent charging, want exactly %d", got, want)
	}
	for i := 0; i < nCPUs; i++ {
		if p := m.CPU(i).PendingNS(); p != 0 {
			t.Errorf("cpu %d: %d pending ns after final flush", i, p)
		}
	}
}
