package hw_test

import (
	"sync"
	"testing"
	"testing/quick"

	"machvm/internal/hw"
	"machvm/internal/vmtypes"
)

func testCost() hw.CostModel {
	return hw.CostModel{
		Name: "test", TLBMiss: 10, WalkLevel: 20, MemAccess: 1,
		FaultTrap: 100, Syscall: 50, ZeroPerKB: 1000, CopyPerKB: 2000,
		PTEOp: 5, MapEntryOp: 7, TLBFlushPage: 2, TLBFlushAll: 9,
		IPI: 30, ContextLoad: 11, TaskCreate: 500, MsgOp: 13,
		DiskLatency: 10000, DiskPerKB: 400,
	}
}

func TestClockMonotonic(t *testing.T) {
	var c hw.Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock should read zero")
	}
	c.Advance(5)
	if c.Now() != 5 {
		t.Fatalf("Now = %d after Advance(5)", c.Now())
	}
	c.Advance(-3)
	if c.Now() != 5 {
		t.Fatal("negative charges must be ignored")
	}
	c.Advance(0)
	if c.Now() != 5 {
		t.Fatal("zero charges must be ignored")
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c hw.Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000 {
		t.Fatalf("lost updates: %d", c.Now())
	}
}

func TestPhysMemBasics(t *testing.T) {
	m := hw.NewPhysMem(512, 16)
	if m.PageSize() != 512 || m.NumFrames() != 16 || m.PopulatedFrames() != 16 {
		t.Fatal("geometry wrong")
	}
	f := m.Frame(3)
	f[0] = 0xAB
	if m.Frame(3)[0] != 0xAB {
		t.Fatal("frame bytes are not stable")
	}
	m.Zero(3)
	if m.Frame(3)[0] != 0 {
		t.Fatal("Zero did not clear")
	}
	m.Frame(4)[0] = 0xCD
	m.Copy(4, 5)
	if m.Frame(5)[0] != 0xCD {
		t.Fatal("Copy did not copy")
	}
	if m.Addr(2) != 1024 || m.FrameOf(1025) != 2 {
		t.Fatal("address arithmetic wrong")
	}
}

func TestPhysMemHoles(t *testing.T) {
	hole := hw.FrameRange{Start: 4, End: 8}
	m := hw.NewPhysMem(512, 16, hole)
	if m.PopulatedFrames() != 12 {
		t.Fatalf("populated = %d; want 12", m.PopulatedFrames())
	}
	for f := vmtypes.PFN(0); f < 16; f++ {
		want := !hole.Contains(f)
		if m.Valid(f) != want {
			t.Fatalf("Valid(%d) = %v", f, m.Valid(f))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("touching a hole frame must panic")
		}
	}()
	_ = m.Frame(5)
}

func TestPhysMemRejectsBadGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { hw.NewPhysMem(500, 16) }, // not a power of two
		func() { hw.NewPhysMem(512, 0) },  // no frames
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTLBInsertLookupFlush(t *testing.T) {
	tlb := hw.NewTLB(4)
	k1 := hw.TLBKey{Space: 1, VPN: 10}
	tlb.Insert(k1, hw.TLBEntry{PFN: 7, Prot: vmtypes.ProtRead})
	if e, ok := tlb.Lookup(k1); !ok || e.PFN != 7 {
		t.Fatal("lookup after insert failed")
	}
	// Reinsert updates in place.
	tlb.Insert(k1, hw.TLBEntry{PFN: 8, Prot: vmtypes.ProtDefault})
	if e, _ := tlb.Lookup(k1); e.PFN != 8 || !e.Prot.Allows(vmtypes.ProtWrite) {
		t.Fatal("reinsert did not update")
	}
	if tlb.Len() != 1 {
		t.Fatalf("Len = %d", tlb.Len())
	}
	tlb.FlushPage(k1)
	if _, ok := tlb.Lookup(k1); ok {
		t.Fatal("flush page failed")
	}
}

func TestTLBEvictionFIFO(t *testing.T) {
	tlb := hw.NewTLB(2)
	a := hw.TLBKey{Space: 1, VPN: 1}
	b := hw.TLBKey{Space: 1, VPN: 2}
	c := hw.TLBKey{Space: 1, VPN: 3}
	tlb.Insert(a, hw.TLBEntry{PFN: 1})
	tlb.Insert(b, hw.TLBEntry{PFN: 2})
	tlb.Insert(c, hw.TLBEntry{PFN: 3}) // evicts a
	if _, ok := tlb.Lookup(a); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := tlb.Lookup(b); !ok {
		t.Fatal("b should survive")
	}
	if tlb.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", tlb.Stats().Evictions)
	}
}

func TestTLBFlushSpace(t *testing.T) {
	tlb := hw.NewTLB(8)
	for vpn := uint64(0); vpn < 3; vpn++ {
		tlb.Insert(hw.TLBKey{Space: 1, VPN: vpn}, hw.TLBEntry{PFN: vmtypes.PFN(vpn)})
		tlb.Insert(hw.TLBKey{Space: 2, VPN: vpn}, hw.TLBEntry{PFN: vmtypes.PFN(vpn)})
	}
	tlb.FlushSpace(1)
	for vpn := uint64(0); vpn < 3; vpn++ {
		if _, ok := tlb.Lookup(hw.TLBKey{Space: 1, VPN: vpn}); ok {
			t.Fatal("space 1 should be flushed")
		}
		if _, ok := tlb.Lookup(hw.TLBKey{Space: 2, VPN: vpn}); !ok {
			t.Fatal("space 2 must survive")
		}
	}
	tlb.FlushAll()
	if tlb.Len() != 0 {
		t.Fatal("FlushAll left entries")
	}
}

func TestTLBNeverExceedsCapacity(t *testing.T) {
	// Property: whatever sequence of inserts happens, Len() <= size.
	err := quick.Check(func(vpns []uint16) bool {
		tlb := hw.NewTLB(8)
		for _, v := range vpns {
			tlb.Insert(hw.TLBKey{Space: uint32(v % 3), VPN: uint64(v)}, hw.TLBEntry{PFN: vmtypes.PFN(v)})
		}
		return tlb.Len() <= 8
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCPUDeferAndTick(t *testing.T) {
	m := hw.NewMachine(hw.Config{Cost: testCost(), HWPageSize: 512, PhysFrames: 8, CPUs: 2})
	cpu := m.CPU(0)
	ran := 0
	cpu.Defer(func(*hw.CPU) { ran++ })
	cpu.Defer(func(*hw.CPU) { ran++ })
	if cpu.DeferredLen() != 2 {
		t.Fatalf("DeferredLen = %d", cpu.DeferredLen())
	}
	cpu.Tick()
	if ran != 2 || cpu.DeferredLen() != 0 {
		t.Fatalf("tick ran %d, pending %d", ran, cpu.DeferredLen())
	}
	if cpu.TicksHandled() != 1 {
		t.Fatal("tick not counted")
	}
	// TickAll reaches every CPU.
	other := 0
	m.CPU(1).Defer(func(*hw.CPU) { other++ })
	m.TickAll()
	if other != 1 {
		t.Fatal("TickAll missed CPU 1")
	}
}

func TestMachineIPI(t *testing.T) {
	m := hw.NewMachine(hw.Config{Cost: testCost(), HWPageSize: 512, PhysFrames: 8, CPUs: 2})
	before := m.Clock.Now()
	hit := false
	m.IPI(m.CPU(1), func(c *hw.CPU) {
		if c.ID != 1 {
			t.Error("IPI ran on wrong CPU")
		}
		hit = true
	})
	if !hit {
		t.Fatal("IPI handler did not run")
	}
	if m.IPIsSent() != 1 || m.CPU(1).IPIsReceived() != 1 {
		t.Fatal("IPI accounting wrong")
	}
	if m.Clock.Now()-before != testCost().IPI {
		t.Fatalf("IPI cost = %d", m.Clock.Now()-before)
	}
}

func TestMachineCharges(t *testing.T) {
	m := hw.NewMachine(hw.Config{Cost: testCost(), HWPageSize: 1024, PhysFrames: 8, CPUs: 1})
	t0 := m.Clock.Now()
	m.ZeroFrame(0)
	if d := m.Clock.Now() - t0; d != testCost().ZeroPerKB {
		t.Fatalf("zero charge = %d", d)
	}
	t0 = m.Clock.Now()
	m.CopyFrame(0, 1)
	if d := m.Clock.Now() - t0; d != testCost().CopyPerKB {
		t.Fatalf("copy charge = %d", d)
	}
	t0 = m.Clock.Now()
	m.ChargeKB(1000, 512) // half a KB
	if d := m.Clock.Now() - t0; d != 500 {
		t.Fatalf("ChargeKB = %d", d)
	}
}

// TestChargeKBRoundsUp is the regression test for the sub-1KB truncation
// bug: perKB*bytes/1024 charged 0 virtual ns for short pager reads and
// sub-page DataWrite tails. Any nonzero transfer must cost at least its
// proportional share, rounded up.
func TestChargeKBRoundsUp(t *testing.T) {
	m := hw.NewMachine(hw.Config{Cost: testCost(), HWPageSize: 1024, PhysFrames: 8, CPUs: 1})
	cases := []struct {
		perKB int64
		bytes int
		want  int64
	}{
		{1000, 512, 500}, // exact half KB: unchanged by rounding
		{1000, 1024, 1000},
		{1000, 1, 1},   // 1 byte at 1000 ns/KB: ceil(1000/1024) = 1
		{400, 100, 40}, // ceil(40000/1024) = 40 (trunc gave 39)
		{1, 1, 1},      // smallest nonzero transfer is never free
		{1000, 0, 0},   // nothing moved, nothing charged
		{0, 512, 0},    // free rate stays free
	}
	for _, c := range cases {
		t0 := m.Clock.Now()
		m.ChargeKB(c.perKB, c.bytes)
		if d := m.Clock.Now() - t0; d != c.want {
			t.Errorf("ChargeKB(%d, %d) charged %d, want %d", c.perKB, c.bytes, d, c.want)
		}
	}
}

// TestCPUChargeBuffer checks the per-CPU batching protocol: charges
// accumulate locally, reach the global clock only on flush, and the
// totals are identical to write-through (unbatched) charging.
func TestCPUChargeBuffer(t *testing.T) {
	m := hw.NewMachine(hw.Config{Cost: testCost(), HWPageSize: 1024, PhysFrames: 8, CPUs: 2})
	c0, c1 := m.CPU(0), m.CPU(1)
	c0.Charge(100)
	c1.ChargeKB(1000, 512)
	if m.Clock.Now() != 0 {
		t.Fatalf("batched charges leaked to the clock early: %d", m.Clock.Now())
	}
	if c0.PendingNS() != 100 || c1.PendingNS() != 500 {
		t.Fatalf("pending = %d/%d, want 100/500", c0.PendingNS(), c1.PendingNS())
	}
	c0.FlushCharges()
	if m.Clock.Now() != 100 {
		t.Fatalf("flush of CPU 0 should advance clock to 100, got %d", m.Clock.Now())
	}
	m.FlushAllCharges()
	if m.Clock.Now() != 600 {
		t.Fatalf("FlushAllCharges total = %d, want 600", m.Clock.Now())
	}
	if c0.ChargedNS() != 100 || c1.ChargedNS() != 500 {
		t.Fatalf("lifetime totals = %d/%d", c0.ChargedNS(), c1.ChargedNS())
	}

	// A timer tick is a batch boundary.
	c0.Charge(7)
	c0.Tick()
	if m.Clock.Now() != 607 {
		t.Fatalf("Tick did not flush: %d", m.Clock.Now())
	}

	// Unbatched mode writes through immediately; totals stay identical.
	m.SetUnbatchedCharging(true)
	c1.Charge(3)
	if m.Clock.Now() != 610 || c1.PendingNS() != 0 {
		t.Fatalf("unbatched charge not written through: now=%d pending=%d",
			m.Clock.Now(), c1.PendingNS())
	}
	m.SetUnbatchedCharging(false)
}

// TestChargeOnNilCPU checks the nil-CPU fallback charges the global
// clock directly.
func TestChargeOnNilCPU(t *testing.T) {
	m := hw.NewMachine(hw.Config{Cost: testCost(), HWPageSize: 1024, PhysFrames: 8, CPUs: 1})
	m.ChargeOn(nil, 42)
	m.ChargeKBOn(nil, 1000, 512)
	if m.Clock.Now() != 542 {
		t.Fatalf("nil-CPU charges = %d, want 542", m.Clock.Now())
	}
	m.ChargeOn(m.CPU(0), 8)
	if m.Clock.Now() != 542 {
		t.Fatal("CPU-attributed charge must stay buffered")
	}
	m.CPU(0).FlushCharges()
	if m.Clock.Now() != 550 {
		t.Fatalf("after flush = %d, want 550", m.Clock.Now())
	}
}

func TestMachineCPUPanicsOutOfRange(t *testing.T) {
	m := hw.NewMachine(hw.Config{Cost: testCost(), HWPageSize: 512, PhysFrames: 8, CPUs: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.CPU(3)
}

func TestHelpers(t *testing.T) {
	if hw.Microseconds(3) != 3000 || hw.Milliseconds(2) != 2000000 {
		t.Fatal("unit helpers wrong")
	}
}
