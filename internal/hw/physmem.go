package hw

import (
	"fmt"
	"sync"

	"machvm/internal/vmtypes"
)

// FrameRange is a half-open range [Start, End) of hardware page frame
// numbers. It is used to describe holes in the physical address space —
// the SUN 3's display memory appears as "high" physical memory, leaving a
// large unpopulated gap that the resident page table must cope with (§5.1).
type FrameRange struct {
	Start, End vmtypes.PFN
}

// Contains reports whether the range contains pfn.
func (r FrameRange) Contains(pfn vmtypes.PFN) bool {
	return pfn >= r.Start && pfn < r.End
}

// PhysMem is the simulated physical memory: an array of hardware page
// frames holding real bytes. Frames inside declared holes are unpopulated
// and must never be touched.
type PhysMem struct {
	pageSize  int
	frames    [][]byte
	holes     []FrameRange
	populated int

	// locks serialize byte-level access to each frame, one lock per
	// frame: the VM system moves frame contents concurrently with user
	// accesses (pageout write-back, page-in fill, COW copies), and the
	// simulated "hardware" needs the same per-cell atomicity real DMA
	// engines get for free.
	locks []sync.Mutex
}

// NewPhysMem creates physical memory of nframes hardware pages of
// pageSize bytes each, excluding the given holes. pageSize must be a power
// of two.
func NewPhysMem(pageSize int, nframes int, holes ...FrameRange) *PhysMem {
	if !vmtypes.IsPowerOfTwo(uint64(pageSize)) {
		panic(fmt.Sprintf("hw: page size %d is not a power of two", pageSize))
	}
	if nframes <= 0 {
		panic("hw: physical memory needs at least one frame")
	}
	m := &PhysMem{
		pageSize: pageSize,
		frames:   make([][]byte, nframes),
		holes:    holes,
		locks:    make([]sync.Mutex, nframes),
	}
	for i := range m.frames {
		if m.inHole(vmtypes.PFN(i)) {
			continue
		}
		m.frames[i] = make([]byte, pageSize)
		m.populated++
	}
	return m
}

func (m *PhysMem) inHole(pfn vmtypes.PFN) bool {
	for _, h := range m.holes {
		if h.Contains(pfn) {
			return true
		}
	}
	return false
}

// PageSize returns the hardware page size in bytes.
func (m *PhysMem) PageSize() int { return m.pageSize }

// NumFrames returns the total number of frame numbers, including holes.
func (m *PhysMem) NumFrames() int { return len(m.frames) }

// PopulatedFrames returns the number of frames backed by real memory.
func (m *PhysMem) PopulatedFrames() int { return m.populated }

// Holes returns the declared holes in the physical address space.
func (m *PhysMem) Holes() []FrameRange { return m.holes }

// Valid reports whether pfn names a populated frame.
func (m *PhysMem) Valid(pfn vmtypes.PFN) bool {
	return pfn < vmtypes.PFN(len(m.frames)) && m.frames[pfn] != nil
}

// Frame returns the byte contents of a frame. It panics on an invalid or
// hole frame: touching a hole is a simulation bug, exactly as touching
// display memory through the page cache would be a kernel bug on a SUN 3.
func (m *PhysMem) Frame(pfn vmtypes.PFN) []byte {
	if !m.Valid(pfn) {
		panic(fmt.Sprintf("hw: access to invalid physical frame %d", pfn))
	}
	return m.frames[pfn]
}

// LockFrame acquires the byte lock of a frame. Callers copying bytes in
// or out of a frame that other threads may touch concurrently must hold
// it. Frame locks are leaves: no other lock is acquired under one.
func (m *PhysMem) LockFrame(pfn vmtypes.PFN) { m.locks[pfn].Lock() }

// UnlockFrame releases the byte lock of a frame.
func (m *PhysMem) UnlockFrame(pfn vmtypes.PFN) { m.locks[pfn].Unlock() }

// Zero clears a frame (pmap_zero_page's data movement).
func (m *PhysMem) Zero(pfn vmtypes.PFN) {
	f := m.Frame(pfn)
	m.LockFrame(pfn)
	clear(f)
	m.UnlockFrame(pfn)
}

// Copy copies a whole frame (pmap_copy_page's data movement). The two
// frame locks are taken in address order so concurrent copies never
// deadlock.
func (m *PhysMem) Copy(src, dst vmtypes.PFN) {
	s, d := m.Frame(src), m.Frame(dst)
	lo, hi := src, dst
	if lo > hi {
		lo, hi = hi, lo
	}
	m.LockFrame(lo)
	if hi != lo {
		m.LockFrame(hi)
	}
	copy(d, s)
	if hi != lo {
		m.UnlockFrame(hi)
	}
	m.UnlockFrame(lo)
}

// Addr converts a frame number to the physical address of its first byte.
func (m *PhysMem) Addr(pfn vmtypes.PFN) vmtypes.PA {
	return vmtypes.PA(uint64(pfn) * uint64(m.pageSize))
}

// FrameOf converts a physical address to its frame number.
func (m *PhysMem) FrameOf(pa vmtypes.PA) vmtypes.PFN {
	return vmtypes.PFN(uint64(pa) / uint64(m.pageSize))
}
