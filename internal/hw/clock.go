// Package hw simulates the hardware substrate the Mach VM reproduction runs
// on: physical memory holding real bytes, a virtual clock driven by a
// per-architecture cost model, CPUs with private translation lookaside
// buffers, and inter-processor interrupts.
//
// The paper's machine-independent claim is about software structure, so the
// substrate's job is to recreate the *pressures* each 1987 machine put on
// the pmap layer — TLBs that go stale, page tables that cost memory, a
// physical address space with holes — rather than to emulate instruction
// sets. See DESIGN.md §2 for the substitution argument.
package hw

import (
	"sync/atomic"
	"unsafe"
)

// clockStripes is the number of independent accumulation cells. Charges
// land on one cell chosen by the calling goroutine's stack address; Now
// sums them all. Addition is commutative and every charge is an exact
// integer, so the total is independent of which cell each charge landed
// on — striping changes contention, never the virtual time.
const clockStripes = 8

// clockCell is one padded accumulator; the padding keeps adjacent cells
// on different cache lines so concurrent charges do not false-share.
type clockCell struct {
	ns atomic.Int64
	_  [56]byte
}

// Clock is the virtual clock. It advances only when components charge
// simulated time against it, so identical workloads produce identical
// virtual durations regardless of host speed. Internally it is striped
// across cache-line-padded cells so that charges from different CPUs do
// not serialize on one hot line (§5.2's shared-point argument applies to
// the simulator itself).
type Clock struct {
	cells [clockStripes]clockCell
}

// Now returns the current virtual time in nanoseconds: the sum of every
// stripe. The sum is exact — each Advance added its full amount to
// exactly one stripe.
func (c *Clock) Now() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].ns.Load()
	}
	return total
}

// Advance adds d virtual nanoseconds to one stripe. Negative and zero
// charges are ignored. The stripe is picked from the address of a stack
// local: goroutines get stable, spread-out stacks, so repeated charges
// from one goroutine stay on one cell while different goroutines tend to
// use different cells.
func (c *Clock) Advance(d int64) {
	if d <= 0 {
		return
	}
	var probe byte
	idx := (uintptr(unsafe.Pointer(&probe)) >> 10) % clockStripes
	c.cells[idx].ns.Add(d)
}
