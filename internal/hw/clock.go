// Package hw simulates the hardware substrate the Mach VM reproduction runs
// on: physical memory holding real bytes, a virtual clock driven by a
// per-architecture cost model, CPUs with private translation lookaside
// buffers, and inter-processor interrupts.
//
// The paper's machine-independent claim is about software structure, so the
// substrate's job is to recreate the *pressures* each 1987 machine put on
// the pmap layer — TLBs that go stale, page tables that cost memory, a
// physical address space with holes — rather than to emulate instruction
// sets. See DESIGN.md §2 for the substitution argument.
package hw

import "sync/atomic"

// Clock is the virtual clock. It advances only when components charge
// simulated time against it, so identical workloads produce identical
// virtual durations regardless of host speed.
type Clock struct {
	ns atomic.Int64
}

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.ns.Load() }

// Advance adds d virtual nanoseconds and returns the new time.
// Negative charges are ignored.
func (c *Clock) Advance(d int64) int64 {
	if d <= 0 {
		return c.ns.Load()
	}
	return c.ns.Add(d)
}
