package hw

import (
	"fmt"
	"sync/atomic"

	"machvm/internal/vmtypes"
)

// Machine bundles the simulated hardware: cost model, virtual clock,
// physical memory and CPUs.
type Machine struct {
	Cost  CostModel
	Clock *Clock
	Mem   *PhysMem

	cpus []*CPU

	ipisSent atomic.Uint64

	// unbatched forces per-CPU charges to write through to the global
	// clock immediately instead of accumulating in the CPU's local
	// buffer. Both modes must produce identical virtual totals; tests
	// flip this to prove the batching invariant.
	unbatched atomic.Bool

	// chargeHook, when set, observes direct (non-CPU-attributed) Charge
	// and ChargeKB calls after the clock advances. The trace recorder uses
	// it to capture driver-level charges — simulated compute time billed
	// straight to the machine — as replayable events. Per-CPU buffered
	// charges and their flushes are deliberately not hooked: they happen
	// while servicing ops that are themselves recorded.
	chargeHook atomic.Pointer[func(ns int64)]
}

// Config describes a machine to construct.
type Config struct {
	// Cost is the architecture cost model.
	Cost CostModel
	// HWPageSize is the hardware page size in bytes (power of two).
	HWPageSize int
	// PhysFrames is the number of hardware page frames.
	PhysFrames int
	// Holes lists unpopulated frame ranges (e.g. SUN 3 display memory).
	Holes []FrameRange
	// CPUs is the processor count (>= 1).
	CPUs int
	// TLBSize is the per-CPU TLB capacity in entries.
	TLBSize int
}

// NewMachine constructs a machine from a configuration.
func NewMachine(cfg Config) *Machine {
	if cfg.CPUs <= 0 {
		cfg.CPUs = 1
	}
	if cfg.TLBSize <= 0 {
		cfg.TLBSize = 64
	}
	m := &Machine{
		Cost:  cfg.Cost,
		Clock: &Clock{},
		Mem:   NewPhysMem(cfg.HWPageSize, cfg.PhysFrames, cfg.Holes...),
	}
	for i := 0; i < cfg.CPUs; i++ {
		m.cpus = append(m.cpus, &CPU{
			ID:      i,
			TLB:     NewTLB(cfg.TLBSize),
			machine: m,
		})
	}
	return m
}

// CPUs returns the machine's processors.
func (m *Machine) CPUs() []*CPU { return m.cpus }

// CPU returns processor i.
func (m *Machine) CPU(i int) *CPU {
	if i < 0 || i >= len(m.cpus) {
		panic(fmt.Sprintf("hw: no CPU %d on a %d-CPU machine", i, len(m.cpus)))
	}
	return m.cpus[i]
}

// NumCPUs returns the processor count.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// Charge advances the virtual clock by d nanoseconds.
func (m *Machine) Charge(d int64) {
	m.Clock.Advance(d)
	m.noteCharge(d)
}

// SetChargeHook installs (nil removes) the observer for direct charges.
func (m *Machine) SetChargeHook(h func(ns int64)) {
	if h == nil {
		m.chargeHook.Store(nil)
		return
	}
	m.chargeHook.Store(&h)
}

func (m *Machine) noteCharge(d int64) {
	if d == 0 {
		return
	}
	if h := m.chargeHook.Load(); h != nil {
		(*h)(d)
	}
}

// chargeKBAmount converts a per-kilobyte rate applied to n bytes into a
// charge, rounding up so that any nonzero transfer costs at least one
// proportional unit (a 512-byte pager read at 1000 ns/KB charges 500 ns,
// a 1-byte tail still charges 1 ns — never silently free).
func chargeKBAmount(perKB int64, bytes int) int64 {
	if perKB <= 0 || bytes <= 0 {
		return 0
	}
	return (perKB*int64(bytes) + 1023) / 1024
}

// ChargeKB advances the clock by a per-kilobyte rate applied to n bytes,
// rounding up so sub-1KB transfers are never free.
func (m *Machine) ChargeKB(perKB int64, bytes int) {
	d := chargeKBAmount(perKB, bytes)
	m.Clock.Advance(d)
	m.noteCharge(d)
}

// ChargeOn charges d nanoseconds to cpu's local buffer when cpu is
// non-nil (batched; flushed at the next batch boundary), or directly to
// the global clock when no CPU context is available.
func (m *Machine) ChargeOn(cpu *CPU, d int64) {
	if cpu != nil {
		cpu.Charge(d)
		return
	}
	m.Charge(d)
}

// ChargeKBOn is ChargeKB attributed to a CPU's local buffer (nil falls
// back to the global clock).
func (m *Machine) ChargeKBOn(cpu *CPU, perKB int64, bytes int) {
	m.ChargeOn(cpu, chargeKBAmount(perKB, bytes))
}

// SetUnbatchedCharging switches per-CPU charging between batched (local
// buffers flushed at batch boundaries) and write-through mode. Pending
// buffers are flushed on every transition so no charge is stranded.
func (m *Machine) SetUnbatchedCharging(on bool) {
	m.unbatched.Store(on)
	m.FlushAllCharges()
}

// FlushAllCharges drains every CPU's pending charge buffer into the
// global clock. Callers that need Clock.Now() to reflect all work done
// so far (statistics snapshots, end-of-run totals) call this first.
func (m *Machine) FlushAllCharges() {
	for _, c := range m.cpus {
		c.FlushCharges()
	}
}

// IPI interrupts the target CPU and runs fn on it, charging the sender's
// IPI cost. It is how a mapping change is "propagated at all costs"
// (strategy 1 in §5.2).
func (m *Machine) IPI(target *CPU, fn func(*CPU)) {
	m.Charge(m.Cost.IPI)
	m.ipisSent.Add(1)
	target.interrupt(fn)
}

// IPIsSent returns the total IPIs sent on this machine.
func (m *Machine) IPIsSent() uint64 { return m.ipisSent.Load() }

// TickAll delivers a timer interrupt to every CPU, draining their deferred
// flush queues (strategy 2 in §5.2).
func (m *Machine) TickAll() {
	for _, c := range m.cpus {
		c.Tick()
	}
}

// ZeroFrame zero-fills a frame, charging the zero-fill rate.
func (m *Machine) ZeroFrame(pfn vmtypes.PFN) {
	m.ChargeKB(m.Cost.ZeroPerKB, m.Mem.PageSize())
	m.Mem.Zero(pfn)
}

// CopyFrame copies a frame, charging the copy rate.
func (m *Machine) CopyFrame(src, dst vmtypes.PFN) {
	m.ChargeKB(m.Cost.CopyPerKB, m.Mem.PageSize())
	m.Mem.Copy(src, dst)
}
