package hw

import (
	"fmt"
	"sync/atomic"

	"machvm/internal/vmtypes"
)

// Machine bundles the simulated hardware: cost model, virtual clock,
// physical memory and CPUs.
type Machine struct {
	Cost  CostModel
	Clock *Clock
	Mem   *PhysMem

	cpus []*CPU

	ipisSent atomic.Uint64
}

// Config describes a machine to construct.
type Config struct {
	// Cost is the architecture cost model.
	Cost CostModel
	// HWPageSize is the hardware page size in bytes (power of two).
	HWPageSize int
	// PhysFrames is the number of hardware page frames.
	PhysFrames int
	// Holes lists unpopulated frame ranges (e.g. SUN 3 display memory).
	Holes []FrameRange
	// CPUs is the processor count (>= 1).
	CPUs int
	// TLBSize is the per-CPU TLB capacity in entries.
	TLBSize int
}

// NewMachine constructs a machine from a configuration.
func NewMachine(cfg Config) *Machine {
	if cfg.CPUs <= 0 {
		cfg.CPUs = 1
	}
	if cfg.TLBSize <= 0 {
		cfg.TLBSize = 64
	}
	m := &Machine{
		Cost:  cfg.Cost,
		Clock: &Clock{},
		Mem:   NewPhysMem(cfg.HWPageSize, cfg.PhysFrames, cfg.Holes...),
	}
	for i := 0; i < cfg.CPUs; i++ {
		m.cpus = append(m.cpus, &CPU{
			ID:      i,
			TLB:     NewTLB(cfg.TLBSize),
			machine: m,
		})
	}
	return m
}

// CPUs returns the machine's processors.
func (m *Machine) CPUs() []*CPU { return m.cpus }

// CPU returns processor i.
func (m *Machine) CPU(i int) *CPU {
	if i < 0 || i >= len(m.cpus) {
		panic(fmt.Sprintf("hw: no CPU %d on a %d-CPU machine", i, len(m.cpus)))
	}
	return m.cpus[i]
}

// NumCPUs returns the processor count.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// Charge advances the virtual clock by d nanoseconds.
func (m *Machine) Charge(d int64) { m.Clock.Advance(d) }

// ChargeKB advances the clock by a per-kilobyte rate applied to n bytes.
func (m *Machine) ChargeKB(perKB int64, bytes int) {
	m.Clock.Advance(perKB * int64(bytes) / 1024)
}

// IPI interrupts the target CPU and runs fn on it, charging the sender's
// IPI cost. It is how a mapping change is "propagated at all costs"
// (strategy 1 in §5.2).
func (m *Machine) IPI(target *CPU, fn func(*CPU)) {
	m.Charge(m.Cost.IPI)
	m.ipisSent.Add(1)
	target.interrupt(fn)
}

// IPIsSent returns the total IPIs sent on this machine.
func (m *Machine) IPIsSent() uint64 { return m.ipisSent.Load() }

// TickAll delivers a timer interrupt to every CPU, draining their deferred
// flush queues (strategy 2 in §5.2).
func (m *Machine) TickAll() {
	for _, c := range m.cpus {
		c.Tick()
	}
}

// ZeroFrame zero-fills a frame, charging the zero-fill rate.
func (m *Machine) ZeroFrame(pfn vmtypes.PFN) {
	m.ChargeKB(m.Cost.ZeroPerKB, m.Mem.PageSize())
	m.Mem.Zero(pfn)
}

// CopyFrame copies a frame, charging the copy rate.
func (m *Machine) CopyFrame(src, dst vmtypes.PFN) {
	m.ChargeKB(m.Cost.CopyPerKB, m.Mem.PageSize())
	m.Mem.Copy(src, dst)
}
