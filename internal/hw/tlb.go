package hw

import (
	"sync"

	"machvm/internal/vmtypes"
)

// TLBKey identifies one translation: an address-space identifier assigned
// by the pmap layer plus a virtual page number (in hardware pages).
type TLBKey struct {
	Space uint32
	VPN   uint64
}

// TLBEntry is a cached translation.
type TLBEntry struct {
	PFN  vmtypes.PFN
	Prot vmtypes.Prot
}

// TLBStats counts TLB traffic. None of the paper's multiprocessors could
// reference or modify a remote TLB (§5.2), so these counters — especially
// flushes induced by shootdowns — are a primary evaluation signal.
type TLBStats struct {
	Hits         uint64
	Misses       uint64
	PageFlushes  uint64
	SpaceFlushes uint64
	FullFlushes  uint64
	Evictions    uint64
}

// TLB is a finite translation lookaside buffer with FIFO replacement.
// Replacement order is deterministic so simulations are reproducible.
type TLB struct {
	mu      sync.Mutex
	size    int
	entries map[TLBKey]*TLBEntry
	fifo    []TLBKey
	stats   TLBStats
}

// NewTLB creates a TLB holding at most size entries.
func NewTLB(size int) *TLB {
	if size <= 0 {
		size = 64
	}
	return &TLB{
		size:    size,
		entries: make(map[TLBKey]*TLBEntry, size),
	}
}

// Size returns the TLB capacity in entries.
func (t *TLB) Size() int { return t.size }

// Lookup probes the TLB. It returns the cached entry and whether the probe
// hit.
func (t *TLB) Lookup(key TLBKey) (TLBEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[key]; ok {
		t.stats.Hits++
		return *e, true
	}
	t.stats.Misses++
	return TLBEntry{}, false
}

// Insert loads a translation, evicting the oldest entry if full.
func (t *TLB) Insert(key TLBKey, entry TLBEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[key]; ok {
		*e = entry
		return
	}
	for len(t.entries) >= t.size {
		victim := t.fifo[0]
		t.fifo = t.fifo[1:]
		if _, ok := t.entries[victim]; ok {
			delete(t.entries, victim)
			t.stats.Evictions++
		}
	}
	e := entry
	t.entries[key] = &e
	t.fifo = append(t.fifo, key)
}

// FlushPage invalidates a single translation if present.
func (t *TLB) FlushPage(key TLBKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.entries[key]; ok {
		delete(t.entries, key)
	}
	t.stats.PageFlushes++
}

// FlushSpace invalidates every translation belonging to one address space.
func (t *TLB) FlushSpace(space uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := range t.entries {
		if k.Space == space {
			delete(t.entries, k)
		}
	}
	t.stats.SpaceFlushes++
}

// FlushAll empties the TLB.
func (t *TLB) FlushAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.entries)
	t.fifo = t.fifo[:0]
	t.stats.FullFlushes++
}

// Stats returns a snapshot of the TLB counters.
func (t *TLB) Stats() TLBStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Len returns the number of currently valid entries.
func (t *TLB) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
