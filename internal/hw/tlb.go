package hw

import (
	"sync"

	"machvm/internal/vmtypes"
)

// TLBKey identifies one translation: an address-space identifier assigned
// by the pmap layer plus a virtual page number (in hardware pages).
type TLBKey struct {
	Space uint32
	VPN   uint64
}

// TLBEntry is a cached translation.
type TLBEntry struct {
	PFN  vmtypes.PFN
	Prot vmtypes.Prot
}

// TLBStats counts TLB traffic. None of the paper's multiprocessors could
// reference or modify a remote TLB (§5.2), so these counters — especially
// flushes induced by shootdowns — are a primary evaluation signal.
type TLBStats struct {
	Hits         uint64
	Misses       uint64
	PageFlushes  uint64
	SpaceFlushes uint64
	FullFlushes  uint64
	Evictions    uint64
}

// tlbSlot is a cached translation plus the sequence number of the FIFO
// record that owns it, so stale FIFO records (left by FlushPage or
// FlushSpace, or by a flush-then-reinsert of the same key) can be
// recognized without being removed eagerly.
type tlbSlot struct {
	entry TLBEntry
	seq   uint64
}

// tlbRec is one FIFO ring record.
type tlbRec struct {
	key TLBKey
	seq uint64
}

// TLB is a finite translation lookaside buffer with FIFO replacement.
// Replacement order is deterministic so simulations are reproducible.
//
// The FIFO is a fixed ring of 2×size records and the map stores entries
// by value, so steady-state operation — insert, evict, flush, reinsert —
// performs no heap allocation (a hot fault path inserts on every TLB
// miss). Flushes leave stale records in the ring; they are skipped
// during eviction and compacted in place when the ring fills.
type TLB struct {
	mu      sync.Mutex
	size    int
	entries map[TLBKey]tlbSlot
	ring    []tlbRec
	head    int // index of the oldest record
	count   int // live+stale records in the ring
	seq     uint64
	stats   TLBStats
}

// NewTLB creates a TLB holding at most size entries.
func NewTLB(size int) *TLB {
	if size <= 0 {
		size = 64
	}
	return &TLB{
		size:    size,
		entries: make(map[TLBKey]tlbSlot, size),
		ring:    make([]tlbRec, 2*size),
	}
}

// Size returns the TLB capacity in entries.
func (t *TLB) Size() int { return t.size }

// Lookup probes the TLB. It returns the cached entry and whether the probe
// hit.
func (t *TLB) Lookup(key TLBKey) (TLBEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.entries[key]; ok {
		t.stats.Hits++
		return s.entry, true
	}
	t.stats.Misses++
	return TLBEntry{}, false
}

// pushRec appends a record to the ring, compacting stale records in
// place (preserving order) when it is full. At most size records can be
// live, so compaction of a full 2×size ring always frees space.
func (t *TLB) pushRec(rec tlbRec) {
	if t.count == len(t.ring) {
		kept := 0
		for i := 0; i < t.count; i++ {
			r := t.ring[(t.head+i)%len(t.ring)]
			if s, ok := t.entries[r.key]; ok && s.seq == r.seq {
				t.ring[kept] = r
				kept++
			}
		}
		t.head = 0
		t.count = kept
	}
	t.ring[(t.head+t.count)%len(t.ring)] = rec
	t.count++
}

// Insert loads a translation, evicting the oldest entry if full.
func (t *TLB) Insert(key TLBKey, entry TLBEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.entries[key]; ok {
		s.entry = entry
		t.entries[key] = s
		return
	}
	for len(t.entries) >= t.size {
		rec := t.ring[t.head]
		t.head = (t.head + 1) % len(t.ring)
		t.count--
		if s, ok := t.entries[rec.key]; ok && s.seq == rec.seq {
			delete(t.entries, rec.key)
			t.stats.Evictions++
		}
	}
	t.seq++
	t.entries[key] = tlbSlot{entry: entry, seq: t.seq}
	t.pushRec(tlbRec{key: key, seq: t.seq})
}

// FlushPage invalidates a single translation if present.
func (t *TLB) FlushPage(key TLBKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.entries[key]; ok {
		delete(t.entries, key)
	}
	t.stats.PageFlushes++
}

// FlushSpace invalidates every translation belonging to one address space.
func (t *TLB) FlushSpace(space uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := range t.entries {
		if k.Space == space {
			delete(t.entries, k)
		}
	}
	t.stats.SpaceFlushes++
}

// FlushAll empties the TLB.
func (t *TLB) FlushAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.entries)
	t.head, t.count = 0, 0
	t.stats.FullFlushes++
}

// Stats returns a snapshot of the TLB counters.
func (t *TLB) Stats() TLBStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Len returns the number of currently valid entries.
func (t *TLB) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
