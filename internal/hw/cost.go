package hw

// CostModel holds the virtual-time charges (nanoseconds) for the primitive
// operations of one architecture. The evaluation in the paper compares
// algorithms — lazy copy-on-write against eager copying, an object cache
// against a fixed buffer cache — so what matters is that each machine's
// relative costs are plausible for its era, not that absolute 1987
// latencies are matched (DESIGN.md §2).
//
// All values are in virtual nanoseconds.
type CostModel struct {
	// Name identifies the modelled machine, e.g. "uVAX II".
	Name string

	// TLBMiss is charged when a translation misses the TLB, before any
	// table walk begins.
	TLBMiss int64
	// WalkLevel is charged per level of page-table walk (or per hash
	// probe on an inverted-page-table machine).
	WalkLevel int64
	// MemAccess is the cost of one word-sized access to simulated
	// physical memory that hits the TLB.
	MemAccess int64

	// FaultTrap is the fixed cost of taking a page fault into the kernel
	// and returning (trap, register save, dispatch, return).
	FaultTrap int64
	// Syscall is the fixed cost of a kernel call (e.g. vm_allocate).
	Syscall int64

	// ZeroPerKB and CopyPerKB are the per-kilobyte costs of zero-filling
	// and copying physical pages.
	ZeroPerKB int64
	CopyPerKB int64

	// PTEOp is the cost of creating, modifying or invalidating one
	// hardware mapping entry (PTE, IPT slot, segment-map slot).
	PTEOp int64
	// MapEntryOp is the cost of one machine-independent address-map
	// entry operation (allocate, clip, copy, link).
	MapEntryOp int64

	// TLBFlushPage and TLBFlushAll are the local costs of invalidating a
	// single TLB entry and the whole TLB.
	TLBFlushPage int64
	TLBFlushAll  int64
	// IPI is the cost, on the sending CPU, of interrupting one other CPU
	// (the receiver is additionally charged TLBFlush* for the flush).
	IPI int64
	// ContextLoad is the cost of activating an address space on a CPU
	// (loading a root pointer, or finding/stealing a SUN 3 context).
	ContextLoad int64

	// TaskCreate is the fixed overhead of creating a task/process
	// (ports, accounting, thread setup) beyond address-space work.
	TaskCreate int64

	// MsgOp is the fixed cost of one port message send or receive.
	MsgOp int64

	// DiskLatency is the fixed per-operation cost of a disk transfer
	// (seek + rotation), and DiskPerKB the per-kilobyte transfer cost.
	DiskLatency int64
	DiskPerKB   int64
}

// Microseconds converts a microsecond count to the nanoseconds this
// package's charges are expressed in.
func Microseconds(us int64) int64 { return us * 1000 }

// Milliseconds converts a millisecond count to nanoseconds.
func Milliseconds(ms int64) int64 { return ms * 1000 * 1000 }
