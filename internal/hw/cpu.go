package hw

import (
	"sync"
	"sync/atomic"
)

// CPU is one simulated processor. Each CPU owns a private TLB — the paper's
// central multiprocessor difficulty is that none of the machines running
// Mach could reference or modify a remote CPU's TLB (§5.2), so all remote
// invalidation goes through IPIs or deferred timer-tick flushes.
type CPU struct {
	ID  int
	TLB *TLB

	machine *Machine

	// activeSpace is the address-space identifier most recently
	// activated on this CPU (informational; the pmap layer is the
	// authority on which map is active where).
	activeSpace atomic.Uint32

	// pendingNS is this CPU's local charge buffer: virtual nanoseconds
	// accumulated since the last flush to the global clock. Batching
	// keeps the cost model from becoming a cross-CPU contention point;
	// the total is unchanged because every buffered nanosecond reaches
	// the clock at a batch boundary (fault return, access return,
	// quantum end).
	pendingNS atomic.Int64
	// chargedNS is the lifetime total charged through this CPU,
	// flushed or not (observability and invariant checks).
	chargedNS atomic.Int64

	mu       sync.Mutex
	deferred []func(*CPU)

	ipisReceived atomic.Uint64
	ticksHandled atomic.Uint64
	deferredPeak int
}

// Machine returns the machine this CPU belongs to.
func (c *CPU) Machine() *Machine { return c.machine }

// SetActiveSpace records the space activated on this CPU.
func (c *CPU) SetActiveSpace(space uint32) { c.activeSpace.Store(space) }

// ActiveSpace returns the space most recently activated on this CPU.
func (c *CPU) ActiveSpace() uint32 { return c.activeSpace.Load() }

// Charge accumulates d virtual nanoseconds in this CPU's local buffer
// (or writes through to the global clock when the machine is in
// unbatched mode). Negative and zero charges are ignored.
func (c *CPU) Charge(d int64) {
	if d <= 0 {
		return
	}
	c.chargedNS.Add(d)
	if c.machine.unbatched.Load() {
		c.machine.Clock.Advance(d)
		return
	}
	c.pendingNS.Add(d)
}

// ChargeKB charges a per-kilobyte rate applied to n bytes to this CPU,
// rounded up like Machine.ChargeKB.
func (c *CPU) ChargeKB(perKB int64, bytes int) {
	c.Charge(chargeKBAmount(perKB, bytes))
}

// FlushCharges drains this CPU's pending buffer into the global clock.
// Called at batch boundaries: fault return, access completion, and the
// timer tick (quantum end).
func (c *CPU) FlushCharges() {
	if d := c.pendingNS.Swap(0); d > 0 {
		c.machine.Clock.Advance(d)
	}
}

// PendingNS returns the not-yet-flushed charge in this CPU's buffer.
func (c *CPU) PendingNS() int64 { return c.pendingNS.Load() }

// ChargedNS returns the lifetime virtual nanoseconds charged through
// this CPU (flushed or pending).
func (c *CPU) ChargedNS() int64 { return c.chargedNS.Load() }

// IPIsReceived returns how many inter-processor interrupts this CPU has
// handled.
func (c *CPU) IPIsReceived() uint64 { return c.ipisReceived.Load() }

// TicksHandled returns how many timer ticks this CPU has processed.
func (c *CPU) TicksHandled() uint64 { return c.ticksHandled.Load() }

// Defer queues work to run on this CPU at its next timer tick. This is the
// substrate for the paper's strategy (2): "postpone use of a changed
// mapping until all CPUs have taken a timer interrupt (and had a chance to
// flush)".
func (c *CPU) Defer(fn func(*CPU)) {
	c.mu.Lock()
	c.deferred = append(c.deferred, fn)
	if len(c.deferred) > c.deferredPeak {
		c.deferredPeak = len(c.deferred)
	}
	c.mu.Unlock()
}

// DeferredLen returns the number of actions awaiting the next tick.
func (c *CPU) DeferredLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.deferred)
}

// Tick simulates a timer interrupt on this CPU: it runs and clears the
// deferred actions, then flushes the CPU's charge buffer — the quantum
// end is a batch boundary for per-CPU charging.
func (c *CPU) Tick() {
	c.mu.Lock()
	work := c.deferred
	c.deferred = nil
	c.mu.Unlock()
	c.ticksHandled.Add(1)
	for _, fn := range work {
		fn(c)
	}
	c.FlushCharges()
}

// interrupt delivers an IPI: the handler runs "on" this CPU immediately.
// Interrupt return is a batch boundary — anything the handler charged to
// this CPU reaches the global clock before the sender proceeds.
func (c *CPU) interrupt(fn func(*CPU)) {
	c.ipisReceived.Add(1)
	fn(c)
	c.FlushCharges()
}
