package hw

import (
	"sync"
	"sync/atomic"
)

// CPU is one simulated processor. Each CPU owns a private TLB — the paper's
// central multiprocessor difficulty is that none of the machines running
// Mach could reference or modify a remote CPU's TLB (§5.2), so all remote
// invalidation goes through IPIs or deferred timer-tick flushes.
type CPU struct {
	ID  int
	TLB *TLB

	machine *Machine

	// activeSpace is the address-space identifier most recently
	// activated on this CPU (informational; the pmap layer is the
	// authority on which map is active where).
	activeSpace atomic.Uint32

	mu       sync.Mutex
	deferred []func(*CPU)

	ipisReceived atomic.Uint64
	ticksHandled atomic.Uint64
	deferredPeak int
}

// Machine returns the machine this CPU belongs to.
func (c *CPU) Machine() *Machine { return c.machine }

// SetActiveSpace records the space activated on this CPU.
func (c *CPU) SetActiveSpace(space uint32) { c.activeSpace.Store(space) }

// ActiveSpace returns the space most recently activated on this CPU.
func (c *CPU) ActiveSpace() uint32 { return c.activeSpace.Load() }

// IPIsReceived returns how many inter-processor interrupts this CPU has
// handled.
func (c *CPU) IPIsReceived() uint64 { return c.ipisReceived.Load() }

// TicksHandled returns how many timer ticks this CPU has processed.
func (c *CPU) TicksHandled() uint64 { return c.ticksHandled.Load() }

// Defer queues work to run on this CPU at its next timer tick. This is the
// substrate for the paper's strategy (2): "postpone use of a changed
// mapping until all CPUs have taken a timer interrupt (and had a chance to
// flush)".
func (c *CPU) Defer(fn func(*CPU)) {
	c.mu.Lock()
	c.deferred = append(c.deferred, fn)
	if len(c.deferred) > c.deferredPeak {
		c.deferredPeak = len(c.deferred)
	}
	c.mu.Unlock()
}

// DeferredLen returns the number of actions awaiting the next tick.
func (c *CPU) DeferredLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.deferred)
}

// Tick simulates a timer interrupt on this CPU: it runs and clears the
// deferred actions, charging the machine's tick cost.
func (c *CPU) Tick() {
	c.mu.Lock()
	work := c.deferred
	c.deferred = nil
	c.mu.Unlock()
	c.ticksHandled.Add(1)
	for _, fn := range work {
		fn(c)
	}
}

// interrupt delivers an IPI: the handler runs "on" this CPU immediately.
func (c *CPU) interrupt(fn func(*CPU)) {
	c.ipisReceived.Add(1)
	fn(c)
}
