package machvm_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// last-fault hints (§3.2), the object cache (§3.3), the optional
// pmap_copy fork prewarming (Table 3-4), the boot-time Mach page size
// (§3.1), and the per-CPU TLB size. Each reports virtual time so the
// effect of the mechanism, not the simulator, is measured.

import (
	"fmt"
	"testing"

	"machvm/internal/core"
	"machvm/internal/hw"
	"machvm/internal/pmap"
	"machvm/internal/pmap/vax"
	"machvm/internal/vmtypes"
	"machvm/internal/workload"
)

func newAblationKernel(b *testing.B, cfg core.Config) (*core.Kernel, *hw.Machine) {
	b.Helper()
	machine := hw.NewMachine(hw.Config{
		Cost:       vax.Cost8650(),
		HWPageSize: vax.HWPageSize,
		PhysFrames: 32768, // 16MB
		CPUs:       1,
		TLBSize:    64,
	})
	cfg.Machine = machine
	cfg.Module = vax.New(machine, pmap.ShootImmediate)
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	return core.MustNewKernel(cfg), machine
}

// BenchmarkAblationMapHints: a sequential fault scan over many entries,
// with and without the §3.2 hints.
func BenchmarkAblationMapHints(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "hints=on"
		if disable {
			name = "hints=off"
		}
		b.Run(name, func(b *testing.B) {
			k, machine := newAblationKernel(b, core.Config{DisableMapHints: disable})
			cpu := machine.CPU(0)
			m := k.NewMap()
			defer m.Destroy()
			m.Pmap().Activate(cpu)
			// 128 separate entries (alternating protections prevent
			// merging), then scan.
			var addrs []vmtypes.VA
			for i := 0; i < 128; i++ {
				a, err := m.Allocate(0, 4096, true)
				if err != nil {
					b.Fatal(err)
				}
				addrs = append(addrs, a)
			}
			t0 := machine.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, a := range addrs {
					if err := k.Touch(cpu, m, a, true); err != nil {
						b.Fatal(err)
					}
				}
				m.Pmap().Collect() // force refaults next round
			}
			b.StopTimer()
			b.ReportMetric(float64(machine.Clock.Now()-t0)/float64(b.N)/1e3, "vus/op")
			hits := k.Stats().MapHintHits.Load()
			lookups := k.Stats().MapLookups.Load()
			b.ReportMetric(float64(hits)/float64(lookups)*100, "hint-hit-%")
		})
	}
}

// BenchmarkAblationForkPrewarm: fork + child touches a fraction of the
// parent's pages. Lazy fork wins when the child touches little; prewarm
// pays off as the touched fraction grows.
func BenchmarkAblationForkPrewarm(b *testing.B) {
	for _, prewarm := range []bool{false, true} {
		for _, touchPct := range []int{5, 50, 100} {
			name := fmt.Sprintf("prewarm=%v/touch=%d%%", prewarm, touchPct)
			b.Run(name, func(b *testing.B) {
				k, machine := newAblationKernel(b, core.Config{PrewarmFork: prewarm})
				cpu := machine.CPU(0)
				parent := k.NewMap()
				defer parent.Destroy()
				parent.Pmap().Activate(cpu)
				const pages = 128
				addr, _ := parent.Allocate(0, pages*4096, true)
				for i := 0; i < pages; i++ {
					if err := k.Touch(cpu, parent, addr+vmtypes.VA(i*4096), true); err != nil {
						b.Fatal(err)
					}
				}
				t0 := machine.Clock.Now()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					child := parent.Fork()
					child.Pmap().Activate(cpu)
					step := 100 / touchPct
					for p := 0; p < pages; p += step {
						if err := k.Touch(cpu, child, addr+vmtypes.VA(p*4096), false); err != nil {
							b.Fatal(err)
						}
					}
					child.Pmap().Deactivate(cpu)
					child.Destroy()
					parent.Pmap().Activate(cpu)
					// Re-dirty so the next fork starts identically.
					if err := k.Touch(cpu, parent, addr, true); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(machine.Clock.Now()-t0)/float64(b.N)/1e3, "vus/op")
			})
		}
	}
}

// BenchmarkAblationObjectCache: repeated map/read/unmap of a hot file with
// the object cache enabled vs effectively disabled (size 1 with a decoy).
func BenchmarkAblationObjectCache(b *testing.B) {
	for _, cacheSize := range []int{1, 256} {
		b.Run(fmt.Sprintf("cache=%d", cacheSize), func(b *testing.B) {
			w := workload.MustNewMachWorld(workload.ArchVAX8650, workload.Options{
				MemoryMB:        16,
				ObjectCacheSize: cacheSize,
			})
			if _, err := w.FS.Create("hot", make([]byte, 256<<10)); err != nil {
				b.Fatal(err)
			}
			if _, err := w.FS.Create("decoy", make([]byte, 4096)); err != nil {
				b.Fatal(err)
			}
			cpu := w.Machine.CPU(0)
			m := w.Kernel.NewMap()
			defer m.Destroy()
			m.Pmap().Activate(cpu)
			buf := make([]byte, 256<<10)
			t0 := w.Machine.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.ReadFileMach(cpu, m, "hot", buf); err != nil {
					b.Fatal(err)
				}
				// The decoy evicts "hot" from a size-1 cache.
				if _, err := w.ReadFileMach(cpu, m, "decoy", buf[:4096]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(w.Machine.Clock.Now()-t0)/float64(b.N)/1e6, "vms/op")
			reads, _ := w.Inode.Traffic()
			b.ReportMetric(float64(reads)/float64(b.N), "pager-reads/op")
		})
	}
}

// BenchmarkAblationMachPageSize: the boot-time page size parameter (§3.1)
// on the VAX: bigger Mach pages amortize fault overhead but zero more.
func BenchmarkAblationMachPageSize(b *testing.B) {
	for _, pageSize := range []int{512, 1024, 4096, 8192} {
		b.Run(fmt.Sprintf("page=%d", pageSize), func(b *testing.B) {
			k, machine := newAblationKernel(b, core.Config{PageSize: pageSize})
			cpu := machine.CPU(0)
			m := k.NewMap()
			defer m.Destroy()
			m.Pmap().Activate(cpu)
			const region = 256 << 10
			t0 := machine.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr, err := m.Allocate(0, region, true)
				if err != nil {
					b.Fatal(err)
				}
				for off := 0; off < region; off += pageSize {
					if err := k.Touch(cpu, m, addr+vmtypes.VA(off), true); err != nil {
						b.Fatal(err)
					}
				}
				if err := m.Deallocate(addr, region); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(machine.Clock.Now()-t0)/float64(b.N)/1e6, "vms/op")
		})
	}
}

// BenchmarkAblationTLBSize: the same touch loop under different TLB
// capacities (the §5 observation that the pmap is a cache hierarchy's
// bottom layer).
func BenchmarkAblationTLBSize(b *testing.B) {
	for _, tlbSize := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("tlb=%d", tlbSize), func(b *testing.B) {
			machine := hw.NewMachine(hw.Config{
				Cost:       vax.Cost8650(),
				HWPageSize: vax.HWPageSize,
				PhysFrames: 32768,
				CPUs:       1,
				TLBSize:    tlbSize,
			})
			mod := vax.New(machine, pmap.ShootImmediate)
			k := core.MustNewKernel(core.Config{Machine: machine, Module: mod, PageSize: 4096})
			cpu := machine.CPU(0)
			m := k.NewMap()
			defer m.Destroy()
			m.Pmap().Activate(cpu)
			const pages = 256
			addr, _ := m.Allocate(0, pages*4096, true)
			// Warm everything once.
			for p := 0; p < pages; p++ {
				if err := k.Touch(cpu, m, addr+vmtypes.VA(p*4096), true); err != nil {
					b.Fatal(err)
				}
			}
			t0 := machine.Clock.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for p := 0; p < pages; p++ {
					if err := k.Touch(cpu, m, addr+vmtypes.VA(p*4096), false); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(machine.Clock.Now()-t0)/float64(b.N)/1e3, "vus/op")
			st := cpu.TLB.Stats()
			b.ReportMetric(float64(st.Misses)/float64(st.Hits+st.Misses)*100, "tlb-miss-%")
		})
	}
}
